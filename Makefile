# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench cover experiments experiments-full tools clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Regenerates every paper table/figure at quick scale via the root
# benchmark harness.
bench:
	go test -bench=. -benchmem ./...

cover:
	go test -cover ./internal/...

# Quick-scale experiment tables via the CLI (minutes).
experiments:
	go run ./cmd/spirebench -quick -expt all

# Paper-scale experiment tables (multi-hour traces; expect ~1 h total).
experiments-full:
	go run ./cmd/spirebench -expt all

tools:
	go build -o bin/spire ./cmd/spire
	go build -o bin/spiresim ./cmd/spiresim
	go build -o bin/spirebench ./cmd/spirebench
	go build -o bin/spirequery ./cmd/spirequery
	go build -o bin/spiredecompress ./cmd/spiredecompress

clean:
	rm -rf bin
