# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-infer bench-ingest bench-cep bench-json bench-check cover experiments experiments-full tools clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Go benchmarks only (-run '^$$' skips the unit tests, which `make test`
# already covers).
bench:
	go test -run '^$$' -bench=. -benchmem ./...

# Component-sharded inference benchmarks: serial full sweep, 4-way worker
# fan-out, and cached steady state, with allocation counts.
bench-infer:
	go test -run '^$$' -bench 'InferComponents' -benchmem ./internal/inference/

# Ingest front-half throughput: the bench-ingest experiment (readings/s
# vs tag population, reference vs batched path) plus the per-stage Go
# benchmarks. CI runs this in the bench-regression job and uploads
# BENCH_ingest.json; the committed baseline gates the serial rows via
# spirebenchdiff (as part of bench-check's -expt all run).
bench-ingest:
	go run ./cmd/spirebench -quick -expt bench-ingest -json BENCH_ingest.json
	go test -run '^$$' -bench 'BenchmarkIngest' -benchmem ./internal/stream/ ./internal/dedup/ ./internal/graph/

# Subscription-engine quality and dispatch cost: the cep experiment
# (detector P/R/F1 vs reader dropout) and cep-perf (s/Mevent idle and at
# 1k/10k subscriptions), plus the Go dispatch benchmarks. spirebenchdiff
# gates the idle and 10k dispatch keys via bench-check's -expt all run.
bench-cep:
	go run ./cmd/spirebench -quick -expt cep,cep-perf
	go test -run '^$$' -bench 'BenchmarkCEPDispatch' -benchmem ./internal/cep/

# Quick-scale experiment tables plus a machine-readable snapshot, for
# tracking headline metrics across revisions.
bench-json:
	go run ./cmd/spirebench -quick -expt all -json BENCH_$$(date +%Y%m%d_%H%M%S).json

# Rerun the quick-scale experiments and gate against the committed
# baseline: fails when a Table III timing regresses more than 20%.
# This is what the CI bench-regression job runs.
bench-check:
	go run ./cmd/spirebench -quick -expt all -json BENCH_check.json
	go run ./cmd/spirebenchdiff -baseline BENCH_baseline.json -current BENCH_check.json -max-regression 0.20

cover:
	go test -cover ./internal/...

# Quick-scale experiment tables via the CLI (minutes).
experiments:
	go run ./cmd/spirebench -quick -expt all

# Paper-scale experiment tables (multi-hour traces; expect ~1 h total).
experiments-full:
	go run ./cmd/spirebench -expt all

tools:
	go build -o bin/spire ./cmd/spire
	go build -o bin/spiresim ./cmd/spiresim
	go build -o bin/spirebench ./cmd/spirebench
	go build -o bin/spirebenchdiff ./cmd/spirebenchdiff
	go build -o bin/spirequery ./cmd/spirequery
	go build -o bin/spiredecompress ./cmd/spiredecompress

clean:
	rm -rf bin
