// Cold-chain / hazmat compliance: use SPIRE's containment stream to check
// packaging policies that raw RFID readings cannot express.
//
// The paper's introduction motivates exactly this: an RFID stream does
// not directly reveal "whether flammable objects are secured in a
// fire-proof container". This example tags a subset of items as
// flammable and a subset of cases as fire-proof (by EPC item reference,
// the way a real deployment encodes product classes), then audits the
// inferred containment stream continuously: a flammable item contained in
// a non-fire-proof case is a violation, as is a flammable item reported
// with no container at all outside the packing areas.
//
//	go run ./examples/coldchain
package main

import (
	"fmt"
	"log"

	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

// Product classes are encoded in the EPC item reference: odd item
// references are flammable goods; cases with even item references are
// fire-proof. The simulator mints item references deterministically, so
// roughly half the inventory is in each class.
func flammable(g model.Tag) bool {
	id, err := epc.Decode(g)
	return err == nil && id.Level == model.LevelItem && id.Serial%2 == 1
}

func fireproof(g model.Tag) bool {
	id, err := epc.Decode(g)
	return err == nil && id.Level == model.LevelCase && id.Serial%2 == 0
}

func main() {
	cfg := sim.DefaultConfig()
	cfg.Duration = 2 * 3600
	cfg.PalletInterval = 300
	cfg.CasesMin, cfg.CasesMax = 4, 6
	cfg.ItemsPerCase = 6
	cfg.ShelfTime = 1200
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:   s.Readers(),
		Locations: s.Locations(),
		Inference: inference.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The audit consumes only the containment sub-stream — the location
	// stream can be suppressed entirely, the independence property of
	// range compression the paper points out.
	container := make(map[model.Tag]model.Tag) // current container per item
	violations := make(map[model.Tag]model.Epoch)
	checked := 0
	report := func(item model.Tag, into model.Tag, t model.Epoch) {
		checked++
		if !flammable(item) {
			return
		}
		if fireproof(into) {
			delete(violations, item)
			return
		}
		if _, open := violations[item]; !open {
			violations[item] = t
			fmt.Printf("VIOLATION t=%-5d flammable %s packed into non-fire-proof %s\n",
				t, name(item), name(into))
		}
	}

	for !s.Done() {
		obs, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		out, err := sub.ProcessEpoch(obs)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range out.Events {
			switch e.Kind {
			case event.StartContainment:
				if levelOf(e.Object) == model.LevelItem && levelOf(e.Container) == model.LevelCase {
					container[e.Object] = e.Container
					report(e.Object, e.Container, e.Vs)
				}
			case event.EndContainment:
				if container[e.Object] == e.Container {
					delete(container, e.Object)
					delete(violations, e.Object)
				}
			}
		}
	}

	fmt.Printf("\n--- audit summary ---\n")
	fmt.Printf("item-into-case packings checked: %d\n", checked)
	fmt.Printf("standing violations:             %d\n", len(violations))
	fmt.Printf("(the simulator packs at random, so roughly half of all\n")
	fmt.Printf(" flammable items should land in non-fire-proof cases)\n")
}

func levelOf(g model.Tag) model.Level {
	l, _ := epc.LevelOf(g)
	return l
}

func name(g model.Tag) string {
	id, err := epc.Decode(g)
	if err != nil {
		return fmt.Sprint(g)
	}
	return fmt.Sprintf("%s-%d", id.Level, id.Serial)
}
