// On-demand decompression: run SPIRE with level-2 compression (locations
// of contained objects suppressed), then reconstruct a chosen item's full
// location timeline through the Decompressor — the query-processor
// front-end pattern of the paper's Section V-C.
//
//	go run ./examples/decompress
package main

import (
	"fmt"
	"log"

	"spire/internal/compress"
	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Duration = 1200
	cfg.PalletInterval = 300
	cfg.CasesMin, cfg.CasesMax = 3, 3
	cfg.ItemsPerCase = 4
	cfg.ShelfTime = 300
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: core.Level2,
	})
	if err != nil {
		log.Fatal(err)
	}
	locName := make(map[model.LocationID]string)
	for _, l := range s.Locations() {
		locName[l.ID] = l.Name
	}

	// The level-2 stream travels "over the wire"; the decompressor sits
	// in front of the query processor and reconstructs per-object
	// locations on demand.
	dec := compress.NewDecompressor()
	var compressed, reconstructed []event.Event
	for !s.Done() {
		obs, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		out, err := sub.ProcessEpoch(obs)
		if err != nil {
			log.Fatal(err)
		}
		compressed = append(compressed, out.Events...)
		d, err := dec.Step(out.Events)
		if err != nil {
			log.Fatal(err)
		}
		reconstructed = append(reconstructed, d...)
	}
	end := s.Now() + 1
	closing := sub.Close(end)
	compressed = append(compressed, closing...)
	d, err := dec.Step(closing)
	if err != nil {
		log.Fatal(err)
	}
	reconstructed = append(reconstructed, d...)
	reconstructed = append(reconstructed, dec.Close(end)...)

	// Pick the first item that appeared and print its reconstructed
	// timeline; under level 2 the compressed stream itself may have no
	// location events for it at all.
	var target model.Tag
	for _, e := range compressed {
		if l, _ := epc.LevelOf(e.Object); l == model.LevelItem {
			target = e.Object
			break
		}
	}
	if target == model.NoTag {
		log.Fatal("no item observed")
	}

	direct, viaDecomp := 0, 0
	fmt.Printf("location timeline of %s (reconstructed):\n", name(target))
	for _, e := range compressed {
		if e.Object == target && e.Kind.Location() {
			direct++
		}
	}
	for _, e := range reconstructed {
		if e.Object != target || e.Kind.Containment() {
			continue
		}
		viaDecomp++
		if e.Kind == event.StartLocation {
			fmt.Printf("  [%5d .. ", e.Vs)
		} else if e.Kind == event.EndLocation {
			fmt.Printf("%5d)  %s\n", e.Ve, locName[e.Location])
		}
	}
	fmt.Printf("\nlevel-2 stream carried %d location events for this item;\n", direct)
	fmt.Printf("decompression reconstructed %d from its containers' movements.\n", viaDecomp)
	fmt.Printf("stream sizes: level-2 %d B, reconstructed level-1 %d B (%.1f%% saved on the wire)\n",
		event.StreamSize(compressed), event.StreamSize(reconstructed),
		100*(1-float64(event.StreamSize(compressed))/float64(event.StreamSize(reconstructed))))
}

func name(g model.Tag) string {
	id, err := epc.Decode(g)
	if err != nil {
		return fmt.Sprint(g)
	}
	return fmt.Sprintf("%s-%d", id.Level, id.Serial)
}
