// Warehouse monitoring: use SPIRE's Missing messages to raise theft
// alerts in a warehouse where shelved cases occasionally disappear.
//
// The example runs a multi-hour trace with one theft every ~3 minutes,
// watches the compressed output stream for Missing messages on objects
// that never properly exited, and finally scores its alerts against the
// simulator's ground-truth theft log — the application-level view of the
// paper's Expt 4.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"sort"

	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/metrics"
	"spire/internal/model"
	"spire/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Duration = 4 * 3600
	cfg.PalletInterval = 400
	cfg.ItemsPerCase = 10
	cfg.ShelfTime = 1800
	cfg.TheftInterval = 187
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:   s.Readers(),
		Locations: s.Locations(),
		Inference: inference.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	locName := make(map[model.LocationID]string)
	for _, l := range s.Locations() {
		locName[l.ID] = l.Name
	}

	// The monitoring application: Missing messages become alerts, unless
	// the object reappears (a false alarm retracted by a later
	// StartLocation).
	alerts := make(map[model.Tag]model.Epoch)
	retracted := 0
	var allEvents []event.Event
	for !s.Done() {
		obs, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		out, err := sub.ProcessEpoch(obs)
		if err != nil {
			log.Fatal(err)
		}
		allEvents = append(allEvents, out.Events...)
		for _, e := range out.Events {
			switch e.Kind {
			case event.Missing:
				if _, seen := alerts[e.Object]; !seen {
					alerts[e.Object] = e.Vs
					fmt.Printf("ALERT t=%-5d %s missing from %s\n",
						e.Vs, describe(e.Object), locName[e.Location])
				}
			case event.StartLocation:
				if _, seen := alerts[e.Object]; seen {
					delete(alerts, e.Object)
					retracted++
					fmt.Printf("clear t=%-5d %s reappeared at %s\n",
						e.Vs, describe(e.Object), locName[e.Location])
				}
			}
		}
	}

	// Score the standing alerts against the ground truth.
	thefts := make(map[model.Tag]model.Epoch)
	for _, th := range s.Thefts() {
		thefts[th.Case] = th.At
	}
	det := metrics.DetectionDelays(allEvents, thefts)
	truePos := 0
	var falsePos []model.Tag
	for g := range alerts {
		// Items inside a stolen case alert along with it; attribute them
		// to the theft of their case for scoring.
		if _, stolen := thefts[g]; stolen {
			truePos++
		} else if _, stolenParent := thefts[stolenAncestor(s, g, thefts)]; !stolenParent {
			falsePos = append(falsePos, g)
		}
	}
	sort.Slice(falsePos, func(i, j int) bool { return falsePos[i] < falsePos[j] })

	fmt.Printf("\n--- shift report ---\n")
	fmt.Printf("thefts staged:        %d\n", det.Total)
	fmt.Printf("thefts detected:      %d (%.0f%%)\n", det.Detected,
		100*float64(det.Detected)/float64(max(det.Total, 1)))
	fmt.Printf("mean detection delay: %.1f s (max %d s)\n", det.MeanDelay, det.MaxDelay)
	fmt.Printf("standing alerts:      %d (%d case-level true positives)\n", len(alerts), truePos)
	fmt.Printf("false alarms retracted during the run: %d\n", retracted)
	if len(falsePos) > 0 {
		fmt.Printf("unattributed standing alerts: %d (first: %s)\n", len(falsePos), describe(falsePos[0]))
	}
}

// stolenAncestor maps an item to its stolen case, if any, using ground
// truth (application-side scoring only).
func stolenAncestor(s *sim.Simulator, g model.Tag, thefts map[model.Tag]model.Epoch) model.Tag {
	p := s.World().ParentOf(g)
	for p != model.NoTag {
		if _, ok := thefts[p]; ok {
			return p
		}
		p = s.World().ParentOf(p)
	}
	return model.NoTag
}

func describe(g model.Tag) string {
	id, err := epc.Decode(g)
	if err != nil {
		return fmt.Sprint(g)
	}
	return fmt.Sprintf("%s-%d", id.Level, id.Serial)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
