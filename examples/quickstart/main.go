// Quickstart: run the SPIRE substrate over a short simulated warehouse
// trace and print the compressed event stream it produces.
//
// This is the smallest end-to-end use of the library: build a simulator
// (or any source of per-epoch observations), wire a core.Substrate over
// its reader deployment, feed observations epoch by epoch, and consume
// the emitted events.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

func main() {
	// A small warehouse: one pallet of 3 cases × 4 items arrives, flows
	// through belt and shelves, is repackaged and ships out.
	cfg := sim.DefaultConfig()
	cfg.Duration = 400
	cfg.PalletInterval = 1000 // a single arrival
	cfg.CasesMin, cfg.CasesMax = 3, 3
	cfg.ItemsPerCase = 4
	cfg.ShelfTime = 120
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The substrate: deduplication, graph capture, inference, and level-1
	// (range) compression, configured with the paper's default inference
	// parameters.
	sub, err := core.New(core.Config{
		Readers:   s.Readers(),
		Locations: s.Locations(),
		Inference: inference.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}

	locName := make(map[model.LocationID]string)
	for _, l := range s.Locations() {
		locName[l.ID] = l.Name
	}

	for !s.Done() {
		obs, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		out, err := sub.ProcessEpoch(obs)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range out.Events {
			switch {
			case e.Kind.Containment():
				fmt.Printf("t=%-4d %-17s %s inside %s\n",
					obs.Time, e.Kind, tag(e.Object), tag(e.Container))
			case e.Location.Known():
				fmt.Printf("t=%-4d %-17s %s at %s\n",
					obs.Time, e.Kind, tag(e.Object), locName[e.Location])
			default:
				fmt.Printf("t=%-4d %-17s %s\n", obs.Time, e.Kind, tag(e.Object))
			}
		}
	}
	st := sub.Stats()
	fmt.Printf("\n%d raw readings (%d bytes) became %d events (%d bytes): ratio %.3f\n",
		st.Readings, st.RawBytes, st.Events, st.EventBytes,
		float64(st.EventBytes)/float64(st.RawBytes))
}

func tag(g model.Tag) string {
	id, err := epc.Decode(g)
	if err != nil {
		return fmt.Sprint(g)
	}
	return fmt.Sprintf("%s-%d", id.Level, id.Serial)
}
