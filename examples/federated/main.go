// Federated zones: run one SPIRE substrate per warehouse zone and merge
// their output streams into a single consistent, warehouse-wide stream —
// the distributed deployment sketched in the paper's future work.
//
// The warehouse is split at the packaging area: zone 0 owns the entry
// door, receiving belt, and shelves; zone 1 owns the packaging area,
// shipping belt, and exit door. Each zone's substrate only sees its own
// readers, so each believes objects vanish when they cross the boundary
// (zone 0 eventually reports them missing) and appear from nowhere on the
// other side. The federate.Merger reconciles the handoffs: stale
// intervals are closed at the crossing epoch and at most one zone at a
// time speaks for each object.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/federate"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Duration = 1800
	cfg.PalletInterval = 200
	cfg.CasesMin, cfg.CasesMax = 3, 3
	cfg.ItemsPerCase = 5
	cfg.ShelfTime = 300
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Split the deployment: readers at the packaging area and beyond
	// belong to zone 1.
	var pack model.LocationID
	for _, l := range s.Locations() {
		if l.Name == "packaging-area" {
			pack = l.ID
		}
	}
	var zoneReaders [2][]model.Reader
	zoneOf := make(map[model.ReaderID]int)
	for _, r := range s.Readers() {
		z := 0
		if r.Location >= pack {
			z = 1
		}
		zoneReaders[z] = append(zoneReaders[z], r)
		zoneOf[r.ID] = z
	}

	var subs [2]*core.Substrate
	for z := 0; z < 2; z++ {
		subs[z], err = core.New(core.Config{
			Readers:   zoneReaders[z],
			Locations: s.Locations(),
			Inference: inference.DefaultConfig(),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	merger := federate.NewMerger()
	var merged []event.Event
	var perZone [2]int
	handoffs := 0
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		// Split the epoch's observation by zone.
		var zobs [2]*model.Observation
		for z := range zobs {
			zobs[z] = model.NewObservation(o.Time)
		}
		for r, tags := range o.ByReader {
			zobs[zoneOf[r]].ByReader[r] = tags
		}
		for z := 0; z < 2; z++ {
			out, err := subs[z].ProcessEpoch(zobs[z])
			if err != nil {
				log.Fatal(err)
			}
			perZone[z] += len(out.Events)
			m, err := merger.Ingest(federate.ZoneID(z), out.Events)
			if err != nil {
				log.Fatal(err)
			}
			// Handoffs show up as merger-synthesized closes: more merged
			// output than zone input means a stale interval was closed.
			if len(m) > len(out.Events) {
				handoffs += len(m) - len(out.Events)
			}
			merged = append(merged, m...)
		}
		// Epoch barrier: resolve alarms for objects no zone re-claimed
		// this epoch.
		merged = append(merged, merger.EndEpoch()...)
	}
	end := s.Now() + 1
	for z := 0; z < 2; z++ {
		m, err := merger.Ingest(federate.ZoneID(z), subs[z].Close(end))
		if err != nil {
			log.Fatal(err)
		}
		merged = append(merged, m...)
	}
	merged = append(merged, merger.Close(end)...)

	if err := event.CheckWellFormed(merged, true); err != nil {
		log.Fatalf("merged stream malformed: %v", err)
	}
	fmt.Printf("zone 0 emitted %d events, zone 1 emitted %d events\n", perZone[0], perZone[1])
	fmt.Printf("merged warehouse-wide stream: %d events (well-formed), %d objects\n",
		len(merged), merger.Objects())
	fmt.Printf("cross-zone handoffs reconciled: %d\n", handoffs)
}
