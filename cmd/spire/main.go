// Command spire runs the SPIRE interpretation and compression substrate
// over a raw RFID stream and emits the compressed event stream.
//
// The input is either a binary raw stream produced by cmd/spiresim for
// the default warehouse deployment (-input), or a freshly simulated trace
// (-simulate, the default). Events are printed in the paper's message
// notation, or written in the binary event wire format with -o.
//
//	spire -simulate -duration 1800 -level 2 -o events.bin
//	spiresim -duration 1800 | spire -input -
//
// Crash recovery: -checkpoint writes an atomic snapshot of the full
// pipeline state every -checkpoint-every epochs (and at end of input);
// -restore resumes from such a snapshot, skipping already-processed
// epochs of the replayed input, and continues the event stream exactly
// where the snapshot left off:
//
//	spire -simulate -checkpoint state.ckpt -o events.bin
//	spire -simulate -restore state.ckpt -checkpoint state.ckpt -o more-events.bin
//
// -ingest-policy selects how malformed input ordering is handled: strict
// (fail the run), reject (drop stale/duplicate epochs), or repair
// (reorder and merge within a window).
//
// Telemetry: -metrics-addr serves GET /metrics (Prometheus text format)
// with per-stage latency histograms, graph gauges, and compressor
// counters while the pipeline runs; -pprof additionally mounts
// /debug/pprof on the same listener; -telemetry-dump prints a final
// metrics snapshot to stderr after the run. Instrumentation is
// observation-only — the emitted event stream and checkpoints are
// byte-identical with or without it.
//
// Tracing: -trace-epochs keeps a flight recorder of the last N epochs'
// spans; -trace-tags records per-tag decision provenance ('all' or a
// comma-separated tag list), served as GET /v1/explain/{tag} and
// GET /debug/trace on the metrics listener; -trace-dump writes the
// recorder as JSONL at exit. SIGQUIT dumps the recorder to stderr while
// the run continues; SIGINT/SIGTERM shut down gracefully, flushing the
// output sink, a final checkpoint, and the telemetry/trace dumps. Like
// telemetry, tracing is observation-only. -log-level sets the structured
// log level, optionally per component ("warn,ingest=debug").
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"strings"

	"spire/internal/cep"
	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/httpapi"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/sim"
	"spire/internal/stream"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ", ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spire:", err)
		os.Exit(1)
	}
}

func run() error {
	simCfg := sim.DefaultConfig()
	var (
		input    = flag.String("input", "", "raw stream file ('-' for stdin); readings must come from the default warehouse layout")
		simulate = flag.Bool("simulate", false, "generate the trace in-process instead of reading one")
		out      = flag.String("o", "", "write events in binary wire format to this file instead of printing")
		level    = flag.Int("level", 1, "compression level (1 = range, 2 = containment-based)")
		duration = flag.Int64("duration", int64(simCfg.Duration), "simulated duration in epochs (with -simulate)")
		rate     = flag.Float64("read-rate", simCfg.ReadRate, "simulated read rate (with -simulate)")
		shelfP   = flag.Int64("shelf-period", int64(simCfg.ShelfPeriod), "shelf reader period (with -simulate)")
		theft    = flag.Int64("theft-interval", int64(simCfg.TheftInterval), "simulated theft interval (with -simulate)")
		seed     = flag.Int64("seed", simCfg.Seed, "simulation seed (with -simulate)")
		beta     = flag.Float64("beta", inference.DefaultConfig().Beta, "edge inference β")
		gamma    = flag.Float64("gamma", inference.DefaultConfig().Gamma, "node inference γ")
		theta    = flag.Float64("theta", inference.DefaultConfig().Theta, "node inference θ")
		adaptive = flag.Bool("adaptive-beta", false, "use the adaptive β heuristic")
		prune    = flag.Float64("prune", 0, "edge prune threshold (0 = off)")
		inferW   = flag.Int("infer-workers", 0, "inference worker-pool width (0 = GOMAXPROCS, 1 = serial); outputs are identical for any value")
		ingestW  = flag.Int("ingest-workers", 0, "batched-ingest worker-pool width for sharded dedup and the reader-group-parallel graph update (0 = GOMAXPROCS, 1 = serial); outputs are identical for any value")

		ckptPath  = flag.String("checkpoint", "", "write atomic pipeline snapshots to this file")
		ckptEvery = flag.Int("checkpoint-every", 60, "epochs between checkpoints (with -checkpoint)")
		restore   = flag.String("restore", "", "resume from a snapshot file written by -checkpoint")
		policy    = flag.String("ingest-policy", "strict", "malformed-input policy: strict, reject, or repair")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) on this address while running")
		pprofFlag   = flag.Bool("pprof", false, "also serve /debug/pprof on -metrics-addr")
		telDump     = flag.Bool("telemetry-dump", false, "print a final metrics snapshot to stderr after the run")

		traceEpochs = flag.Int("trace-epochs", 0, "flight-recorder capacity in epochs (0 = default 256 when tracing is otherwise enabled)")
		traceTags   = flag.String("trace-tags", "", "record per-tag decision provenance: 'all' or comma-separated decimal tags")
		traceDump   = flag.String("trace-dump", "", "write the flight recorder and provenance records as JSONL to this file at exit")
		logSpec     = flag.String("log-level", "", "log level (debug|info|warn|error), optionally per component: 'warn,ingest=debug'")
	)
	var subscribePatterns multiFlag
	flag.Var(&subscribePatterns, "subscribe", "register a complex-event subscription pattern, e.g. 'SEQ(missing(), NOT start()) WITHIN 120' (repeatable); matches log as they fire, and -metrics-addr additionally serves /v1/subscriptions")
	flag.Parse()
	logging, err := trace.NewLogging(os.Stderr, *logSpec)
	if err != nil {
		return err
	}
	logMain := logging.Component("spire")
	if *input == "" && !*simulate {
		*simulate = true
	}
	ingestPolicy, ok := core.ParseIngestPolicy(*policy)
	if !ok {
		return fmt.Errorf("unknown ingest policy %q (want strict, reject, or repair)", *policy)
	}

	simCfg.Seed = *seed
	simCfg.Duration = model.Epoch(*duration)
	simCfg.ReadRate = *rate
	simCfg.ShelfPeriod = model.Epoch(*shelfP)
	simCfg.TheftInterval = model.Epoch(*theft)
	s, err := sim.New(simCfg)
	if err != nil {
		return err
	}

	if *inferW < 0 {
		return fmt.Errorf("-infer-workers %d must be >= 0", *inferW)
	}
	if *ingestW < 0 {
		return fmt.Errorf("-ingest-workers %d must be >= 0", *ingestW)
	}
	var sub *core.Substrate
	if *restore != "" {
		// A snapshot is self-contained: it carries the reader deployment
		// and inference parameters, so the tuning flags are ignored here.
		// The worker pool is runtime tuning, not state — it is applied
		// below on the restored substrate too.
		sub, err = core.RestoreSubstrateFromFile(*restore)
		if err != nil {
			return fmt.Errorf("restore %s: %w", *restore, err)
		}
		logMain.Info("restored snapshot", "path", *restore, "epoch", sub.LastEpoch())
		sub.SetInferWorkers(*inferW)
	} else {
		icfg := inference.DefaultConfig()
		icfg.Beta, icfg.Gamma, icfg.Theta = *beta, *gamma, *theta
		icfg.AdaptiveBeta = *adaptive
		icfg.PruneThreshold = *prune
		icfg.Workers = *inferW
		sub, err = core.New(core.Config{
			Readers:     s.Readers(),
			Locations:   s.Locations(),
			Inference:   icfg,
			Compression: core.CompressionLevel(*level),
		})
		if err != nil {
			return err
		}
	}

	// The ingest pool is runtime tuning like the inference pool: applied
	// to fresh and restored substrates alike, never persisted.
	sub.SetIngestWorkers(*ingestW)

	// Telemetry is opt-in: with no registry the substrate keeps its
	// uninstrumented hot path. Instrument after the restore branch so a
	// resumed run is observable too.
	var reg *telemetry.Registry
	if *metricsAddr != "" || *telDump || *pprofFlag {
		reg = telemetry.NewRegistry()
		sub.Instrument(reg)
	}

	// Tracing is likewise opt-in: any trace flag attaches a recorder.
	var rec *trace.Recorder
	if *traceEpochs > 0 || *traceTags != "" || *traceDump != "" {
		all, tags, err := trace.ParseTags(*traceTags)
		if err != nil {
			return err
		}
		rec = trace.New(trace.Config{Epochs: *traceEpochs, All: all, Tags: tags})
		sub.Trace(rec)
	}
	// On panic, salvage the flight recorder before dying: the last few
	// epochs' spans are exactly the forensics a crash needs.
	defer func() {
		if p := recover(); p != nil {
			if rec != nil {
				fmt.Fprintln(os.Stderr, "spire: panic, dumping flight recorder:")
				_ = rec.DumpJSONL(os.Stderr)
			}
			panic(p)
		}
	}()

	// Subscriptions are opt-in like telemetry and tracing: the engine
	// rides the watcher hook behind the substrate, so with no -subscribe
	// flag the pipeline output stays byte-identical and unwatched.
	var engine *cep.Engine
	if len(subscribePatterns) > 0 {
		engine = cep.NewEngine(cep.Config{})
		logCEP := logging.Component("cep")
		for _, p := range subscribePatterns {
			id, err := engine.SubscribeFunc(p, func(m cep.Match) {
				logCEP.Info("match", "sub", m.Sub, "object", m.Object, "start", m.Start, "at", m.At)
			})
			if err != nil {
				return fmt.Errorf("-subscribe %q: %w", p, err)
			}
			logCEP.Info("subscribed", "id", id, "pattern", p)
		}
		if reg != nil {
			engine.Instrument(reg)
		}
		w := query.NewWatcher()
		engine.Attach(w)
		sub.Watch(w)
	}

	if *metricsAddr != "" || *pprofFlag {
		addr := *metricsAddr
		if addr == "" {
			addr = "localhost:0"
		}
		h := httpapi.New(nil, nil).EnableMetrics(reg)
		if *pprofFlag {
			h.EnablePprof()
		}
		if rec != nil {
			h.EnableTrace(rec)
		}
		if engine != nil {
			h.EnableCEP(engine)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		logMain.Info("serving metrics", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
		go func() {
			if err := http.Serve(ln, h); err != nil {
				logMain.Error("metrics server failed", "error", err)
			}
		}()
	}

	emit, flush, err := makeSink(*out)
	if err != nil {
		return err
	}

	runner := core.NewRunnerConfigured(sub, core.RunnerConfig{
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Ingest:          core.IngestConfig{Policy: ingestPolicy},
	})

	// SIGINT/SIGTERM cancel the runner's context for a graceful shutdown:
	// the output sink, a final checkpoint, and the telemetry/trace dumps
	// all still flush. SIGQUIT dumps the flight recorder to stderr and
	// lets the run continue.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if rec != nil {
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		defer signal.Stop(sigq)
		go func() {
			for range sigq {
				fmt.Fprintln(os.Stderr, "spire: SIGQUIT, dumping flight recorder:")
				_ = rec.DumpJSONL(os.Stderr)
			}
		}()
	}

	// Feed observations to the runner, skipping epochs a restored snapshot
	// already processed (the input is replayed from its beginning).
	skipThrough := sub.LastEpoch()
	obsCh := make(chan *model.Observation, 4)
	outCh := make(chan *core.EpochOutput, 4)
	feedErr := make(chan error, 1)
	runErr := make(chan error, 1)
	go func() {
		defer close(obsCh)
		if *simulate {
			feedErr <- feedSim(s, skipThrough, obsCh)
		} else {
			feedErr <- feedStream(*input, skipThrough, obsCh)
		}
	}()
	go func() { runErr <- runner.Run(ctx, obsCh, outCh) }()

	for po := range outCh {
		if err := emit(po.Events); err != nil {
			return err
		}
	}
	switch err := <-runErr; {
	case err == nil:
		if err := <-feedErr; err != nil {
			return err
		}
	case errors.Is(err, context.Canceled):
		// Interrupted: the feed goroutine may be blocked sending into
		// obsCh, so don't wait on it. The runner has quiesced, so the
		// substrate is safe to snapshot; then fall through to the normal
		// flush/dump path.
		logMain.Warn("interrupted, flushing output and dumps")
		if *ckptPath != "" {
			if cerr := sub.SnapshotToFile(*ckptPath); cerr != nil {
				logMain.Error("final checkpoint failed", "error", cerr)
			} else {
				logMain.Info("wrote final checkpoint", "path", *ckptPath, "epoch", sub.LastEpoch())
			}
		}
	default:
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	st := sub.Stats()
	ratio := 0.0
	if st.RawBytes > 0 {
		ratio = float64(st.EventBytes) / float64(st.RawBytes)
	}
	logMain.Info("run complete",
		"epochs", st.Epochs, "readings", st.Readings, "raw_bytes", st.RawBytes,
		"events", st.Events, "event_bytes", st.EventBytes, "ratio", ratio,
		"update", st.UpdateTime, "inference", st.InferenceTime)
	if engine != nil {
		logCEP := logging.Component("cep")
		for _, sst := range engine.Subscriptions() {
			logCEP.Info("subscription summary",
				"id", sst.ID, "pattern", sst.Pattern,
				"matches", sst.Matches, "dropped", sst.Dropped, "evicted", sst.Evicted)
		}
	}
	if ingestPolicy != core.IngestStrict {
		ist := runner.IngestStats()
		logging.Component("ingest").Info("ingest summary",
			"policy", ingestPolicy.String(),
			"accepted", ist.Accepted, "stale", ist.Stale,
			"merged", ist.Merged, "reordered", ist.Reordered)
	}
	if *telDump {
		fmt.Fprintln(os.Stderr, "spire: final telemetry snapshot:")
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			return err
		}
	}
	if *traceDump != "" {
		f, err := os.Create(*traceDump)
		if err != nil {
			return fmt.Errorf("trace dump: %w", err)
		}
		if err := rec.DumpJSONL(f); err != nil {
			f.Close()
			return fmt.Errorf("trace dump: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		logMain.Info("wrote trace dump", "path", *traceDump)
	}
	return nil
}

// feedSim streams freshly simulated observations.
func feedSim(s *sim.Simulator, skipThrough model.Epoch, obsCh chan<- *model.Observation) error {
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return err
		}
		if o.Time <= skipThrough {
			continue
		}
		obsCh <- o
	}
	return nil
}

// feedStream parses a raw binary reading stream into per-epoch
// observations. Epoch-0 readings are treated as preamble and skipped, as
// before.
func feedStream(path string, skipThrough model.Epoch, obsCh chan<- *model.Observation) error {
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	r := stream.NewReader(src)
	obs := model.NewObservation(0)
	flushObs := func() {
		if obs.Time == 0 || obs.Time <= skipThrough {
			return
		}
		obsCh <- obs
	}
	for {
		rd, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rd.Time != obs.Time {
			if rd.Time < obs.Time {
				return fmt.Errorf("raw stream not ordered by epoch (%d after %d)", rd.Time, obs.Time)
			}
			flushObs()
			obs = model.NewObservation(rd.Time)
		}
		obs.Add(rd.Reader, rd.Tag)
	}
	flushObs()
	return nil
}

// pretty renders an event with decoded EPC identities instead of raw
// 64-bit tags.
func pretty(e event.Event) string {
	name := func(g model.Tag) string {
		id, err := epc.Decode(g)
		if err != nil {
			return fmt.Sprintf("%d", g)
		}
		return fmt.Sprintf("%s-%d.%d", id.Level, id.ItemRef, id.Serial)
	}
	ve := fmt.Sprintf("%d", e.Ve)
	if e.Ve == model.InfiniteEpoch {
		ve = "inf"
	}
	if e.Kind.Containment() {
		return fmt.Sprintf("%s(%s, %s, %d, %s)", e.Kind, name(e.Object), name(e.Container), e.Vs, ve)
	}
	return fmt.Sprintf("%s(%s, %v, %d, %s)", e.Kind, name(e.Object), e.Location, e.Vs, ve)
}

// makeSink returns an event consumer: pretty printing to stdout, or the
// binary wire format when path is set.
func makeSink(path string) (emit func([]event.Event) error, flush func() error, err error) {
	if path == "" {
		w := bufio.NewWriter(os.Stdout)
		return func(evs []event.Event) error {
				for _, e := range evs {
					if _, err := fmt.Fprintln(w, pretty(e)); err != nil {
						return err
					}
				}
				return nil
			}, func() error {
				return w.Flush()
			}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := event.NewWriter(f)
	return func(evs []event.Event) error {
			for _, e := range evs {
				if err := w.Write(e); err != nil {
					return err
				}
			}
			return nil
		}, func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Close()
		}, nil
}
