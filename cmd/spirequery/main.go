// Command spirequery answers tracking queries over a SPIRE output stream.
//
// The stream is loaded either from a binary event file written by
// cmd/spire -o, or from a durable event log directory written with
// internal/eventlog. Level-2 streams are decompressed on the fly with
// -level2, the paper's on-demand decompression pattern.
//
//	spire -simulate -duration 1200 -o events.bin
//	spirequery -events events.bin -summary
//	spirequery -events events.bin -obj 7696581394433 -at 500
//	spirequery -events events.bin -path 7696581394433
//	spirequery -events events.bin -missing-at 900
//	spirequery -events events.bin -loc 2 -at 500
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"spire/internal/compress"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/eventlog"
	"spire/internal/httpapi"
	"spire/internal/model"
	"spire/internal/query"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirequery:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		eventsFile = flag.String("events", "", "binary event stream file")
		logDir     = flag.String("log", "", "event log directory (alternative to -events)")
		level2     = flag.Bool("level2", false, "input is a level-2 stream: decompress while loading")
		summary    = flag.Bool("summary", false, "print stream summary")
		obj        = flag.Uint64("obj", 0, "object tag for -at/-path/-history queries")
		at         = flag.Int64("at", -1, "query timestamp")
		path       = flag.Uint64("path", 0, "print the location path of this tag")
		history    = flag.Uint64("history", 0, "print the stay history of this tag")
		missingAt  = flag.Int64("missing-at", -1, "list objects missing at this time")
		loc        = flag.Int64("loc", -1, "location id for -at occupancy queries")
		serve      = flag.String("serve", "", "serve the loaded stream over HTTP on this address (e.g. :8080)")
	)
	flag.Parse()

	store := query.NewStore()
	var dec *compress.Decompressor
	if *level2 {
		dec = compress.NewDecompressor()
	}
	feed := func(e event.Event) error {
		if dec != nil {
			out, err := dec.Step([]event.Event{e})
			if err != nil {
				return err
			}
			return store.Feed(out...)
		}
		return store.Feed(e)
	}

	switch {
	case *eventsFile != "":
		f, err := os.Open(*eventsFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r := event.NewReader(f)
		for {
			e, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := feed(e); err != nil {
				return err
			}
		}
	case *logDir != "":
		if err := eventlog.Replay(*logDir, feed); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -events or -log is required")
	}

	if *serve != "" {
		fmt.Fprintf(os.Stderr, "spirequery: serving %d events over http on %s\n", store.Events(), *serve)
		return http.ListenAndServe(*serve, httpapi.New(store, nil))
	}

	ran := false
	if *summary {
		ran = true
		fmt.Printf("events: %d, objects: %d\n", store.Events(), len(store.Objects()))
	}
	if *obj != 0 && *at >= 0 {
		ran = true
		g := model.Tag(*obj)
		t := model.Epoch(*at)
		if l, ok := store.LocationAt(g, t); ok {
			fmt.Printf("%s @%d: location L%d\n", name(g), t, l)
		} else {
			fmt.Printf("%s @%d: location unknown\n", name(g), t)
		}
		if c, ok := store.ContainerAt(g, t); ok {
			fmt.Printf("%s @%d: inside %s (top: %s)\n", name(g), t, name(c), name(store.TopContainerAt(g, t)))
		} else {
			fmt.Printf("%s @%d: not contained\n", name(g), t)
		}
	}
	if *path != 0 {
		ran = true
		fmt.Printf("path of %s:", name(model.Tag(*path)))
		for _, l := range store.Path(model.Tag(*path)) {
			fmt.Printf(" L%d", l)
		}
		fmt.Println()
	}
	if *history != 0 {
		ran = true
		for _, st := range store.History(model.Tag(*history)) {
			ve := fmt.Sprintf("%d", st.Ve)
			if st.Ve == model.InfiniteEpoch {
				ve = "open"
			}
			fmt.Printf("[%6d .. %6s)  L%d\n", st.Vs, ve, st.Location)
		}
	}
	if *missingAt >= 0 {
		ran = true
		miss := store.MissingAt(model.Epoch(*missingAt))
		fmt.Printf("missing at %d: %d objects\n", *missingAt, len(miss))
		for _, g := range miss {
			fmt.Printf("  %s\n", name(g))
		}
	}
	if *loc >= 0 && *at >= 0 {
		ran = true
		objs := store.ObjectsAt(model.LocationID(*loc), model.Epoch(*at))
		fmt.Printf("at L%d @%d: %d objects\n", *loc, *at, len(objs))
		for _, g := range objs {
			fmt.Printf("  %s\n", name(g))
		}
	}
	if !ran {
		return fmt.Errorf("no query requested (try -summary)")
	}
	return nil
}

func name(g model.Tag) string {
	id, err := epc.Decode(g)
	if err != nil {
		return fmt.Sprintf("tag-%d", g)
	}
	return fmt.Sprintf("%s-%d.%d(%d)", id.Level, id.ItemRef, id.Serial, g)
}
