// Command spirequery answers tracking queries over a SPIRE output stream.
//
// The stream is loaded either from a binary event file written by
// cmd/spire -o, or from a durable event log directory written with
// internal/eventlog. Level-2 streams are decompressed on the fly with
// -level2, the paper's on-demand decompression pattern.
//
//	spire -simulate -duration 1200 -o events.bin
//	spirequery -events events.bin -summary
//	spirequery -events events.bin -obj 7696581394433 -at 500
//	spirequery -events events.bin -path 7696581394433
//	spirequery -events events.bin -missing-at 900
//	spirequery -events events.bin -loc 2 -at 500
//
// -watch replays the stream through the complex-event engine of
// internal/cep and prints each match as it completes, reconstructing
// the dispatch clock from the events themselves (start and Missing
// messages fire at Vs, end messages at Ve). Windows still open when
// the stream ends are reported as pending, not matched.
//
//	spirequery -events events.bin -watch 'SEQ(missing(), NOT start()) WITHIN 60'
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"spire/internal/cep"
	"spire/internal/compress"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/eventlog"
	"spire/internal/httpapi"
	"spire/internal/model"
	"spire/internal/query"
)

// multiFlag collects repeated occurrences of a string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// dispatchEpoch reconstructs the epoch a stored event was dispatched in:
// start and Missing messages are emitted when the interval opens, end
// messages when it closes. The live pipeline dispatches in this order,
// so replaying with these epochs reproduces the watcher's clock.
func dispatchEpoch(e event.Event) model.Epoch {
	switch e.Kind {
	case event.EndLocation, event.EndContainment:
		return e.Ve
	default:
		return e.Vs
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirequery:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		eventsFile = flag.String("events", "", "binary event stream file")
		logDir     = flag.String("log", "", "event log directory (alternative to -events)")
		level2     = flag.Bool("level2", false, "input is a level-2 stream: decompress while loading")
		summary    = flag.Bool("summary", false, "print stream summary")
		obj        = flag.Uint64("obj", 0, "object tag for -at/-path/-history queries")
		at         = flag.Int64("at", -1, "query timestamp")
		path       = flag.Uint64("path", 0, "print the location path of this tag")
		history    = flag.Uint64("history", 0, "print the stay history of this tag")
		missingAt  = flag.Int64("missing-at", -1, "list objects missing at this time")
		loc        = flag.Int64("loc", -1, "location id for -at occupancy queries")
		serve      = flag.String("serve", "", "serve the loaded stream over HTTP on this address (e.g. :8080)")
	)
	var watch multiFlag
	flag.Var(&watch, "watch", "replay the stream through this complex-event pattern and print matches (repeatable)")
	flag.Parse()

	var engine *cep.Engine
	var clock model.Epoch
	matches := 0
	if len(watch) > 0 {
		engine = cep.NewEngine(cep.Config{})
		for _, p := range watch {
			id, err := engine.SubscribeFunc(p, func(m cep.Match) {
				matches++
				fmt.Printf("match sub=%d object=%s start=%d at=%d\n", m.Sub, name(m.Object), m.Start, m.At)
			})
			if err != nil {
				return fmt.Errorf("-watch %q: %w", p, err)
			}
			fmt.Fprintf(os.Stderr, "spirequery: watching [%d] %s\n", id, p)
		}
	}

	store := query.NewStore()
	var dec *compress.Decompressor
	if *level2 {
		dec = compress.NewDecompressor()
	}
	feed := func(e event.Event) error {
		if dec != nil {
			out, err := dec.Step([]event.Event{e})
			if err != nil {
				return err
			}
			if engine != nil {
				for _, o := range out {
					watchEvent(engine, &clock, o)
				}
			}
			return store.Feed(out...)
		}
		if engine != nil {
			watchEvent(engine, &clock, e)
		}
		return store.Feed(e)
	}

	switch {
	case *eventsFile != "":
		f, err := os.Open(*eventsFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r := event.NewReader(f)
		for {
			e, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := feed(e); err != nil {
				return err
			}
		}
	case *logDir != "":
		if err := eventlog.Replay(*logDir, feed); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -events or -log is required")
	}

	if engine != nil {
		// Resolve windows that closed by the last reconstructed epoch;
		// anything still open is pending, not matched.
		engine.Epoch(clock, nil)
		pendingRuns := 0
		for _, st := range engine.Subscriptions() {
			pendingRuns += st.Runs
		}
		fmt.Fprintf(os.Stderr, "spirequery: watch replay done: %d matches, %d windows still open at epoch %d\n",
			matches, pendingRuns, clock)
	}

	if *serve != "" {
		fmt.Fprintf(os.Stderr, "spirequery: serving %d events over http on %s\n", store.Events(), *serve)
		return http.ListenAndServe(*serve, httpapi.New(store, nil))
	}

	ran := engine != nil
	if *summary {
		ran = true
		fmt.Printf("events: %d, objects: %d\n", store.Events(), len(store.Objects()))
	}
	if *obj != 0 && *at >= 0 {
		ran = true
		g := model.Tag(*obj)
		t := model.Epoch(*at)
		if l, ok := store.LocationAt(g, t); ok {
			fmt.Printf("%s @%d: location L%d\n", name(g), t, l)
		} else {
			fmt.Printf("%s @%d: location unknown\n", name(g), t)
		}
		if c, ok := store.ContainerAt(g, t); ok {
			fmt.Printf("%s @%d: inside %s (top: %s)\n", name(g), t, name(c), name(store.TopContainerAt(g, t)))
		} else {
			fmt.Printf("%s @%d: not contained\n", name(g), t)
		}
	}
	if *path != 0 {
		ran = true
		fmt.Printf("path of %s:", name(model.Tag(*path)))
		for _, l := range store.Path(model.Tag(*path)) {
			fmt.Printf(" L%d", l)
		}
		fmt.Println()
	}
	if *history != 0 {
		ran = true
		for _, st := range store.History(model.Tag(*history)) {
			ve := fmt.Sprintf("%d", st.Ve)
			if st.Ve == model.InfiniteEpoch {
				ve = "open"
			}
			fmt.Printf("[%6d .. %6s)  L%d\n", st.Vs, ve, st.Location)
		}
	}
	if *missingAt >= 0 {
		ran = true
		miss := store.MissingAt(model.Epoch(*missingAt))
		fmt.Printf("missing at %d: %d objects\n", *missingAt, len(miss))
		for _, g := range miss {
			fmt.Printf("  %s\n", name(g))
		}
	}
	if *loc >= 0 && *at >= 0 {
		ran = true
		objs := store.ObjectsAt(model.LocationID(*loc), model.Epoch(*at))
		fmt.Printf("at L%d @%d: %d objects\n", *loc, *at, len(objs))
		for _, g := range objs {
			fmt.Printf("  %s\n", name(g))
		}
	}
	if !ran {
		return fmt.Errorf("no query requested (try -summary)")
	}
	return nil
}

// watchEvent feeds one stored event into the engine at its reconstructed
// dispatch epoch. The clock only moves forward: a closing interval can
// carry a Ve older than epochs already replayed, and the engine clock is
// monotonic like the live watcher's.
func watchEvent(e *cep.Engine, clock *model.Epoch, ev event.Event) {
	if t := dispatchEpoch(ev); t > *clock {
		*clock = t
	}
	e.Epoch(*clock, []event.Event{ev})
}

func name(g model.Tag) string {
	id, err := epc.Decode(g)
	if err != nil {
		return fmt.Sprintf("tag-%d", g)
	}
	return fmt.Sprintf("%s-%d.%d(%d)", id.Level, id.ItemRef, id.Serial, g)
}
