// Command spirezone runs one zone of a distributed SPIRE deployment.
//
// The warehouse's locations are partitioned into -zones contiguous
// zones; this process interprets zone -zone: it runs the deterministic
// warehouse simulation from -seed, feeds its own zone's readers through
// a full interpretation substrate, and streams the per-epoch compressed
// output to the federation coordinator (cmd/spirefed) at -addr.
//
// By default the worker consumes the columnar zone-batch feed
// (-feed=batch): the simulation observes only this zone's readers into
// reusable columns and the substrate ingests them without per-reading
// staging, so a zone's ingest cost scales with its own traffic, not the
// whole deployment's. -feed=obs selects the original per-epoch
// observation feed. The two modes are distinct deterministic traces, so
// every zone in a cluster must use the same mode.
//
// The connection is resilient: the worker retries with capped
// exponential backoff, keeps every un-acked epoch in a replay buffer,
// and re-synchronizes from the coordinator's ack high-water mark on
// reconnect. With -checkpoint, the substrate is snapshotted every
// -checkpoint-every epochs and the snapshot persisted once the
// coordinator acks past it; restarting the same command line resumes
// from the checkpoint and replays the simulation, delivering exactly
// the epochs the coordinator has not merged.
//
// A 2-zone cluster on loopback:
//
//	spirefed -zones 2 -listen 127.0.0.1:7412 -o merged.bin &
//	spirezone -zone 0 -zones 2 -addr 127.0.0.1:7412 -checkpoint z0.ckpt &
//	spirezone -zone 1 -zones 2 -addr 127.0.0.1:7412 -checkpoint z1.ckpt &
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"spire/internal/core"
	"spire/internal/federate"
	"spire/internal/httpapi"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirezone:", err)
		os.Exit(1)
	}
}

func run() error {
	simCfg := sim.DefaultConfig()
	var (
		zone        = flag.Int("zone", -1, "this worker's zone ID (0-based)")
		zones       = flag.Int("zones", 2, "total zones in the cluster")
		addr        = flag.String("addr", "127.0.0.1:7412", "coordinator address")
		level       = flag.Int("level", 1, "compression level (1 or 2)")
		ckpt        = flag.String("checkpoint", "", "checkpoint file; written on ack, resumed from when present")
		ckptEvery   = flag.Int64("checkpoint-every", 50, "epochs between checkpoint snapshots")
		ackWindow   = flag.Int("ack-window", 64, "max epochs in flight past the coordinator's acks")
		jitterSeed  = flag.Int64("jitter-seed", 0, "seed for reconnect-backoff jitter (0 derives one from the clock and zone)")
		feed        = flag.String("feed", "batch", "zone feed mode: 'batch' (columnar zone-batch ingest) or 'obs' (per-epoch observation staging); every zone in a cluster must use the same mode")
		metricsAddr = flag.String("metrics-addr", "", "serve the worker health plane on this address: /metrics, /v1/cluster, /healthz, /readyz, /debug/fedtrace")
		pprofFlag   = flag.Bool("pprof", false, "also serve /debug/pprof on -metrics-addr")
		logSpec     = flag.String("log-level", "", "log level (debug|info|warn|error), optionally per component: 'warn,federate=debug'")
		quiet       = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Int64Var(&simCfg.Seed, "seed", simCfg.Seed, "simulation seed (identical across the cluster)")
	flag.Int64Var((*int64)(&simCfg.Duration), "duration", int64(simCfg.Duration), "simulation length in epochs")
	flag.Int64Var((*int64)(&simCfg.TheftInterval), "theft-interval", int64(simCfg.TheftInterval), "steal a shelved case every N epochs (0 disables)")
	flag.Parse()

	if *zone < 0 || *zone >= *zones {
		return fmt.Errorf("-zone %d out of range for -zones %d", *zone, *zones)
	}
	s, err := sim.New(simCfg)
	if err != nil {
		return err
	}
	parts, err := s.PartitionZones(*zones)
	if err != nil {
		return err
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "spirezone: "+format+"\n", args...)
		}
	}
	logging, err := trace.NewLogging(os.Stderr, *logSpec)
	if err != nil {
		return err
	}
	var fedLog *slog.Logger
	if *logSpec != "" {
		fedLog = logging.Component("federate")
	}

	var sub *core.Substrate
	if *ckpt != "" {
		if _, statErr := os.Stat(*ckpt); statErr == nil {
			if sub, err = core.RestoreSubstrateFromFile(*ckpt); err != nil {
				return fmt.Errorf("restore %s: %w", *ckpt, err)
			}
			logf("zone %d: resumed from checkpoint at epoch %d", *zone, sub.LastEpoch())
		}
	}
	if sub == nil {
		sub, err = core.New(core.Config{
			Readers:        parts[*zone],
			Locations:      s.Locations(),
			Inference:      inference.DefaultConfig(),
			Compression:    core.CompressionLevel(*level),
			WarmupLocation: s.EntryLocation(),
		})
		if err != nil {
			return err
		}
	}

	w, err := federate.NewWorker(federate.WorkerConfig{
		Zone:            federate.ZoneID(*zone),
		Addr:            *addr,
		Substrate:       sub,
		CheckpointPath:  *ckpt,
		CheckpointEvery: model.Epoch(*ckptEvery),
		AckWindow:       *ackWindow,
		JitterSeed:      *jitterSeed,
		Logf:            logf,
		Log:             fedLog,
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		w.Instrument(reg)
		rec := trace.NewConnRecorder(0)
		w.TraceConn(rec)
		plane := httpapi.New(nil, nil).
			EnableMetrics(reg).
			EnableClusterStatus(func() any { return w.Status() }).
			EnableHealth(w.Ready).
			EnableConnTrace(rec)
		if *pprofFlag {
			plane.EnablePprof()
		}
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		go http.Serve(mln, plane) //nolint:errcheck — dies with the process
		logf("zone %d: health plane on %s", *zone, mln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The two feed modes are distinct deterministic traces (zone-batch
	// observation draws from per-reader RNG streams; the observation feed
	// draws from the simulation's stepping RNG), so a cluster must agree
	// on the mode or the zones interpret different warehouses.
	switch *feed {
	case "batch":
		streams, err := s.PartitionZonesBatch(*zones)
		if err != nil {
			return err
		}
		if err := w.RunBatches(ctx, streams[*zone]); err != nil {
			return err
		}
	case "obs":
		src := sim.NewZoneStream(s, sim.ZoneOfReaders(parts), *zone)
		if err := w.Run(ctx, src); err != nil {
			return err
		}
	default:
		return fmt.Errorf("-feed %q: want 'batch' or 'obs'", *feed)
	}
	st := sub.Stats()
	logf("zone %d: done — %d epochs, %d readings, %d events (%d bytes)",
		*zone, st.Epochs, st.Readings, st.Events, st.EventBytes)
	return nil
}
