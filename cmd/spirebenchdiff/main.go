// Command spirebenchdiff compares two spirebench -json reports and fails
// when a headline timing metric regresses beyond a threshold. CI runs it
// against the committed BENCH_baseline.json so a change that slows the
// Table III pipeline stages by more than the threshold fails the build:
//
//	spirebench -quick -expt all -json BENCH_new.json
//	spirebenchdiff -baseline BENCH_baseline.json -current BENCH_new.json
//
// Only the Table III wall-clock keys gate (update, inference, and total
// seconds per epoch at the largest trace size): they are the paper's
// throughput claim, and unlike the quality metrics they are what a hot-path
// change can silently regress. Quality headline keys (Fig. 11 F-measures
// and compression ratios) are printed for the record but compared exactly
// in the unit tests, not thresholded here. Keys missing from either report
// fail loudly — a renamed key must not silently stop gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// gatedKeys are the headline metrics where larger is worse and noise-bound
// regressions gate the build, in report order.
var gatedKeys = []string{
	"table3_update_s_max",
	"table3_inference_s_max",
	"table3_s_per_epoch_max",
	// Component-sharded inference: the serial full-sweep cost at the
	// largest size gates like the Table III timings, and the steady-state
	// dirty-node fraction gates the incrementality claim — it is
	// deterministic (fixed grower seed), so a change that starts sweeping
	// clean components again fails the build rather than just slowing it.
	"infercomp_serial_s",
	"infercomp_dirty_node_frac",
	// Batched ingest: seconds per million readings through the serial
	// reference and batched front halves at the largest population, and
	// the three per-stage baselines (decode, dedup, update). All are
	// serial (width 1) so they compare across hosts with different core
	// counts; the wide-width throughput and speedup are informational.
	"ingest_ref_s_per_mread",
	"ingest_batch1_s_per_mread",
	"ingest_decode_s_per_mread",
	"ingest_dedup_s_per_mread",
	"ingest_update_s_per_mread",
	// Federated scaling: the single-substrate interpretation cost and the
	// coordinator-side merge cost per input event, both serial. The
	// multi-zone throughput rows time genuinely parallel work and stay
	// informational — they depend on the host's idle core count.
	"zones_single_s_per_mread",
	"zones_merge_s_per_mevent",
	// The same merge replay with live coordinator instruments attached —
	// gating it keeps the cluster-health plane's per-epoch metric work
	// out of the serial merge stage's budget.
	"zones_merge_instr_s_per_mevent",
	// The sharded parallel merge over the same slates (one MergeEpoch per
	// epoch barrier) and the batch-feed worker's per-zone ingest cost at
	// the largest zone count. The worker-feed number is what the columnar
	// feed keeps flat as the deployment grows; the obs-feed contrast
	// column scales with population by construction and stays
	// informational.
	"zones_merge_par_s_per_mevent",
	"zones_worker_feed_s_per_mevent",
	// Subscription-engine dispatch: seconds per million events with no
	// subscriptions (the observer overhead every watched deployment pays),
	// at 10k subscriptions (the dense per-object alerting load), and at
	// 100k (the per-(kind, tag) anchor map's regime — cost must track
	// watchers-per-tag, not the raw subscription count). All
	// single-threaded under the engine mutex. The detector F1 keys
	// (cep_*_f1) are informational — the unit tests assert their floors.
	"cep_dispatch_idle_s_per_mevent",
	"cep_dispatch_10k_s_per_mevent",
	"cep_dispatch_100k_s_per_mevent",
}

type report struct {
	Quick    bool               `json:"quick"`
	Headline map[string]float64 `json:"headline"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirebenchdiff:", err)
		os.Exit(1)
	}
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Headline) == 0 {
		return nil, fmt.Errorf("%s: no headline metrics (written by spirebench -json)", path)
	}
	return &r, nil
}

func run() error {
	var (
		basePath = flag.String("baseline", "BENCH_baseline.json", "baseline spirebench -json report")
		curPath  = flag.String("current", "", "report to compare against the baseline")
		maxRatio = flag.Float64("max-regression", 0.20, "fail when a gated metric exceeds baseline by more than this fraction")
	)
	flag.Parse()
	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}

	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}
	if base.Quick != cur.Quick {
		return fmt.Errorf("scale mismatch: baseline quick=%v, current quick=%v — timings are not comparable", base.Quick, cur.Quick)
	}

	var failed int
	for _, k := range gatedKeys {
		b, okB := base.Headline[k]
		c, okC := cur.Headline[k]
		switch {
		case !okB || !okC:
			fmt.Printf("FAIL %-28s missing (baseline %v, current %v)\n", k, okB, okC)
			failed++
		case b <= 0:
			fmt.Printf("FAIL %-28s baseline %g is not a positive timing\n", k, b)
			failed++
		default:
			ratio := c/b - 1
			verdict := "ok  "
			if ratio > *maxRatio {
				verdict = "FAIL"
				failed++
			}
			fmt.Printf("%s %-28s %12.6f -> %12.6f  (%+.1f%%, limit +%.0f%%)\n",
				verdict, k, b, c, 100*ratio, 100**maxRatio)
		}
	}

	// Informational: the quality metrics, so the CI log shows the whole
	// headline even though only the timings gate.
	for k, c := range cur.Headline {
		if gated := func() bool {
			for _, g := range gatedKeys {
				if g == k {
					return true
				}
			}
			return false
		}(); gated {
			continue
		}
		if b, ok := base.Headline[k]; ok {
			fmt.Printf("info %-28s %12.6f -> %12.6f\n", k, b, c)
		}
	}

	if failed > 0 {
		return fmt.Errorf("%d gated metric(s) regressed more than %.0f%%", failed, 100**maxRatio)
	}
	fmt.Println("all gated metrics within threshold")
	return nil
}
