// Command spiresim generates synthetic raw RFID streams from the
// simulated warehouse of the paper's evaluation (Table II parameters).
//
// The stream is written in the binary wire format of internal/stream
// (20 bytes per <tag, reader, time> reading), suitable for piping into
// cmd/spire:
//
//	spiresim -duration 3600 -read-rate 0.85 -o trace.bin
//	spire -input trace.bin
//
// -metrics-addr serves generation progress counters on GET /metrics in
// Prometheus text format; -telemetry-dump prints a final snapshot to
// stderr. -trace-epochs keeps a flight recorder of per-epoch generation
// spans (readings, bytes, wall-clock), dumped as JSONL by -trace-dump,
// on SIGQUIT, or via GET /debug/trace on the metrics listener. None of
// these affect the generated stream. SIGINT/SIGTERM stop generation
// early but still flush the stream writer and the dumps; the truncated
// stream stays well-formed. -log-level sets the structured log level,
// optionally per component.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spire/internal/cep"
	"spire/internal/httpapi"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/stream"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spiresim:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated occurrences of a string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run() error {
	cfg := sim.DefaultConfig()
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress the summary on stderr")
		seed    = flag.Int64("seed", cfg.Seed, "random seed")
		dur     = flag.Int64("duration", int64(cfg.Duration), "simulation length in epochs (seconds)")
		pallets = flag.Int64("pallet-interval", int64(cfg.PalletInterval), "epochs between pallet arrivals")
		casesMn = flag.Int("cases-min", cfg.CasesMin, "minimum cases per pallet")
		casesMx = flag.Int("cases-max", cfg.CasesMax, "maximum cases per pallet")
		items   = flag.Int("items", cfg.ItemsPerCase, "items per case")
		rate    = flag.Float64("read-rate", cfg.ReadRate, "per-interrogation read rate (0..1)")
		shelfP  = flag.Int64("shelf-period", int64(cfg.ShelfPeriod), "shelf reader period in epochs")
		shelves = flag.Int("shelves", cfg.NumShelves, "number of shelf locations")
		shelfT  = flag.Int64("shelf-time", int64(cfg.ShelfTime), "mean shelving duration in epochs")
		theft   = flag.Int64("theft-interval", int64(cfg.TheftInterval), "epochs between thefts (0 = none)")
		misrt   = flag.Int64("misroute-interval", int64(cfg.MisrouteInterval), "epochs between misroutes — cases diverted off outbound pallets (0 = none)")
		coldP   = flag.Int("cold-case-period", cfg.ColdCasePeriod, "every Nth injected case is cold-chain cargo on the cold shelf (0 = none)")
		excI    = flag.Int64("excursion-interval", int64(cfg.ExcursionInterval), "epochs between cold-chain excursions (0 = none; needs -cold-case-period)")
		excD    = flag.Int64("excursion-dwell", int64(cfg.ExcursionDwell), "epochs an excursed cold case dwells on a warm shelf")
		shufI   = flag.Int64("cold-shuffle-interval", int64(cfg.ColdShuffleInterval), "epochs between benign cold-case shuffles (0 = none; needs -cold-case-period)")
		shufD   = flag.Int64("cold-shuffle-dwell", int64(cfg.ColdShuffleDwell), "epochs a shuffled cold case dwells on a warm shelf")
		inferW  = flag.Int("infer-workers", 0, "accepted for symmetry with cmd/spire; the generator runs no inference, so this does not affect the stream")
		ingestW = flag.Int("ingest-workers", 0, "accepted for symmetry with cmd/spire; the generator runs no ingest pipeline, so this does not affect the stream")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) on this address while generating")
		telDump     = flag.Bool("telemetry-dump", false, "print a final metrics snapshot to stderr")

		traceEpochs = flag.Int("trace-epochs", 0, "flight-recorder capacity in epochs (0 = default 256 when tracing is otherwise enabled)")
		traceTags   = flag.String("trace-tags", "", "accepted for symmetry with cmd/spire; the generator makes no per-tag decisions, so only epoch spans are recorded")
		traceDump   = flag.String("trace-dump", "", "write the flight recorder as JSONL to this file at exit")
		logSpec     = flag.String("log-level", "", "log level (debug|info|warn|error), optionally per component: 'warn,metrics=debug'")
	)
	var subscribePatterns multiFlag
	flag.Var(&subscribePatterns, "subscribe", "accepted for symmetry with cmd/spire: patterns are validated, but the generator runs no interpretation, so nothing matches here — pipe the stream into spire -subscribe instead")
	flag.Parse()
	logging, err := trace.NewLogging(os.Stderr, *logSpec)
	if err != nil {
		return err
	}
	logMain := logging.Component("spiresim")
	if *inferW < 0 {
		return fmt.Errorf("-infer-workers %d must be >= 0", *inferW)
	}
	if *ingestW < 0 {
		return fmt.Errorf("-ingest-workers %d must be >= 0", *ingestW)
	}

	cfg.Seed = *seed
	cfg.Duration = model.Epoch(*dur)
	cfg.PalletInterval = model.Epoch(*pallets)
	cfg.CasesMin, cfg.CasesMax = *casesMn, *casesMx
	cfg.ItemsPerCase = *items
	cfg.ReadRate = *rate
	cfg.ShelfPeriod = model.Epoch(*shelfP)
	cfg.NumShelves = *shelves
	cfg.ShelfTime = model.Epoch(*shelfT)
	cfg.TheftInterval = model.Epoch(*theft)
	cfg.MisrouteInterval = model.Epoch(*misrt)
	cfg.ColdCasePeriod = *coldP
	cfg.ExcursionInterval, cfg.ExcursionDwell = model.Epoch(*excI), model.Epoch(*excD)
	cfg.ColdShuffleInterval, cfg.ColdShuffleDwell = model.Epoch(*shufI), model.Epoch(*shufD)

	for _, p := range subscribePatterns {
		if err := cep.Validate(p); err != nil {
			return fmt.Errorf("-subscribe %q: %w", p, err)
		}
		logMain.Warn("pattern accepted but the generator runs no interpretation; pipe into spire -subscribe to match it", "pattern", p)
	}

	s, err := sim.New(cfg)
	if err != nil {
		return err
	}

	// Progress counters for long generations; scraping them never touches
	// the simulator state, so the generated stream is unaffected.
	var reg *telemetry.Registry
	var epochsC, readingsC, bytesC *telemetry.Counter
	if *metricsAddr != "" || *telDump {
		reg = telemetry.NewRegistry()
		epochsC = reg.Counter("spiresim_epochs_total", "Simulated epochs generated.")
		readingsC = reg.Counter("spiresim_readings_total", "Raw tag readings written.")
		bytesC = reg.Counter("spiresim_bytes_total", "Raw stream bytes written.")
	}

	// The generator makes no per-tag inference decisions, so its recorder
	// carries epoch spans only: per-epoch readings, bytes, and wall-clock.
	var rec *trace.Recorder
	if *traceEpochs > 0 || *traceTags != "" || *traceDump != "" {
		if _, _, err := trace.ParseTags(*traceTags); err != nil {
			return err
		}
		rec = trace.New(trace.Config{Epochs: *traceEpochs})
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		h := httpapi.New(nil, nil).EnableMetrics(reg)
		if rec != nil {
			h.EnableTrace(rec)
		}
		logMain.Info("serving metrics", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
		go func() {
			if err := http.Serve(ln, h); err != nil {
				logMain.Error("metrics server failed", "error", err)
			}
		}()
	}

	// SIGINT/SIGTERM stop generation at the next epoch boundary; the
	// writer and dumps still flush below, so a truncated stream stays
	// well-formed. SIGQUIT dumps the flight recorder and continues.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if rec != nil {
		sigq := make(chan os.Signal, 1)
		signal.Notify(sigq, syscall.SIGQUIT)
		defer signal.Stop(sigq)
		go func() {
			for range sigq {
				fmt.Fprintln(os.Stderr, "spiresim: SIGQUIT, dumping flight recorder:")
				_ = rec.DumpJSONL(os.Stderr)
			}
		}()
	}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := stream.NewWriter(dst)
	var lastReadings, lastBytes int64
	interrupted := false
	for !s.Done() {
		if ctx.Err() != nil {
			interrupted = true
			logMain.Warn("interrupted, flushing stream and dumps", "epoch", s.Now())
			break
		}
		var mark time.Time
		if rec != nil {
			mark = time.Now()
		}
		o, err := s.Step()
		if err != nil {
			return err
		}
		if err := w.WriteObservation(o); err != nil {
			return err
		}
		if reg != nil {
			epochsC.Inc()
			readingsC.Add(w.Count() - lastReadings)
			bytesC.Add(w.Bytes() - lastBytes)
		}
		if rec != nil {
			rec.EndEpoch(trace.Span{
				Epoch:    o.Time,
				Readings: w.Count() - lastReadings,
				Bytes:    w.Bytes() - lastBytes,
				UpdateNS: time.Since(mark).Nanoseconds(),
			})
		}
		if reg != nil || rec != nil {
			lastReadings, lastBytes = w.Count(), w.Bytes()
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *telDump {
		fmt.Fprintln(os.Stderr, "spiresim: final telemetry snapshot:")
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			return err
		}
	}
	if *traceDump != "" {
		f, err := os.Create(*traceDump)
		if err != nil {
			return fmt.Errorf("trace dump: %w", err)
		}
		if err := rec.DumpJSONL(f); err != nil {
			f.Close()
			return fmt.Errorf("trace dump: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		logMain.Info("wrote trace dump", "path", *traceDump)
	}
	if !*quiet {
		logMain.Info("generation complete",
			"epochs", s.Now(), "readings", w.Count(), "bytes", w.Bytes(),
			"thefts", len(s.Thefts()), "misroutes", len(s.Misroutes()),
			"excursions", len(s.Excursions()), "cold_shuffles", len(s.ColdShuffles()),
			"peak_population", s.SteadyStateCount(),
			"interrupted", interrupted)
	}
	return nil
}
