// Command spiresim generates synthetic raw RFID streams from the
// simulated warehouse of the paper's evaluation (Table II parameters).
//
// The stream is written in the binary wire format of internal/stream
// (20 bytes per <tag, reader, time> reading), suitable for piping into
// cmd/spire:
//
//	spiresim -duration 3600 -read-rate 0.85 -o trace.bin
//	spire -input trace.bin
//
// -metrics-addr serves generation progress counters on GET /metrics in
// Prometheus text format; -telemetry-dump prints a final snapshot to
// stderr. Neither affects the generated stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"spire/internal/httpapi"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/stream"
	"spire/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spiresim:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.DefaultConfig()
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress the summary on stderr")
		seed    = flag.Int64("seed", cfg.Seed, "random seed")
		dur     = flag.Int64("duration", int64(cfg.Duration), "simulation length in epochs (seconds)")
		pallets = flag.Int64("pallet-interval", int64(cfg.PalletInterval), "epochs between pallet arrivals")
		casesMn = flag.Int("cases-min", cfg.CasesMin, "minimum cases per pallet")
		casesMx = flag.Int("cases-max", cfg.CasesMax, "maximum cases per pallet")
		items   = flag.Int("items", cfg.ItemsPerCase, "items per case")
		rate    = flag.Float64("read-rate", cfg.ReadRate, "per-interrogation read rate (0..1)")
		shelfP  = flag.Int64("shelf-period", int64(cfg.ShelfPeriod), "shelf reader period in epochs")
		shelves = flag.Int("shelves", cfg.NumShelves, "number of shelf locations")
		shelfT  = flag.Int64("shelf-time", int64(cfg.ShelfTime), "mean shelving duration in epochs")
		theft   = flag.Int64("theft-interval", int64(cfg.TheftInterval), "epochs between thefts (0 = none)")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) on this address while generating")
		telDump     = flag.Bool("telemetry-dump", false, "print a final metrics snapshot to stderr")
	)
	flag.Parse()

	cfg.Seed = *seed
	cfg.Duration = model.Epoch(*dur)
	cfg.PalletInterval = model.Epoch(*pallets)
	cfg.CasesMin, cfg.CasesMax = *casesMn, *casesMx
	cfg.ItemsPerCase = *items
	cfg.ReadRate = *rate
	cfg.ShelfPeriod = model.Epoch(*shelfP)
	cfg.NumShelves = *shelves
	cfg.ShelfTime = model.Epoch(*shelfT)
	cfg.TheftInterval = model.Epoch(*theft)

	s, err := sim.New(cfg)
	if err != nil {
		return err
	}

	// Progress counters for long generations; scraping them never touches
	// the simulator state, so the generated stream is unaffected.
	var reg *telemetry.Registry
	var epochsC, readingsC, bytesC *telemetry.Counter
	if *metricsAddr != "" || *telDump {
		reg = telemetry.NewRegistry()
		epochsC = reg.Counter("spiresim_epochs_total", "Simulated epochs generated.")
		readingsC = reg.Counter("spiresim_readings_total", "Raw tag readings written.")
		bytesC = reg.Counter("spiresim_bytes_total", "Raw stream bytes written.")
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "spiresim: serving /metrics on http://%s/metrics\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, httpapi.New(nil, nil).EnableMetrics(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "spiresim: metrics server:", err)
			}
		}()
	}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := stream.NewWriter(dst)
	var lastReadings, lastBytes int64
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return err
		}
		if err := w.WriteObservation(o); err != nil {
			return err
		}
		if reg != nil {
			epochsC.Inc()
			readingsC.Add(w.Count() - lastReadings)
			bytesC.Add(w.Bytes() - lastBytes)
			lastReadings, lastBytes = w.Count(), w.Bytes()
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *telDump {
		fmt.Fprintln(os.Stderr, "spiresim: final telemetry snapshot:")
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			return err
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "spiresim: %d epochs, %d readings, %d bytes, %d thefts, peak population %d\n",
			s.Now(), w.Count(), w.Bytes(), len(s.Thefts()), s.SteadyStateCount())
	}
	return nil
}
