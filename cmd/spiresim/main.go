// Command spiresim generates synthetic raw RFID streams from the
// simulated warehouse of the paper's evaluation (Table II parameters).
//
// The stream is written in the binary wire format of internal/stream
// (20 bytes per <tag, reader, time> reading), suitable for piping into
// cmd/spire:
//
//	spiresim -duration 3600 -read-rate 0.85 -o trace.bin
//	spire -input trace.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spiresim:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := sim.DefaultConfig()
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress the summary on stderr")
		seed    = flag.Int64("seed", cfg.Seed, "random seed")
		dur     = flag.Int64("duration", int64(cfg.Duration), "simulation length in epochs (seconds)")
		pallets = flag.Int64("pallet-interval", int64(cfg.PalletInterval), "epochs between pallet arrivals")
		casesMn = flag.Int("cases-min", cfg.CasesMin, "minimum cases per pallet")
		casesMx = flag.Int("cases-max", cfg.CasesMax, "maximum cases per pallet")
		items   = flag.Int("items", cfg.ItemsPerCase, "items per case")
		rate    = flag.Float64("read-rate", cfg.ReadRate, "per-interrogation read rate (0..1)")
		shelfP  = flag.Int64("shelf-period", int64(cfg.ShelfPeriod), "shelf reader period in epochs")
		shelves = flag.Int("shelves", cfg.NumShelves, "number of shelf locations")
		shelfT  = flag.Int64("shelf-time", int64(cfg.ShelfTime), "mean shelving duration in epochs")
		theft   = flag.Int64("theft-interval", int64(cfg.TheftInterval), "epochs between thefts (0 = none)")
	)
	flag.Parse()

	cfg.Seed = *seed
	cfg.Duration = model.Epoch(*dur)
	cfg.PalletInterval = model.Epoch(*pallets)
	cfg.CasesMin, cfg.CasesMax = *casesMn, *casesMx
	cfg.ItemsPerCase = *items
	cfg.ReadRate = *rate
	cfg.ShelfPeriod = model.Epoch(*shelfP)
	cfg.NumShelves = *shelves
	cfg.ShelfTime = model.Epoch(*shelfT)
	cfg.TheftInterval = model.Epoch(*theft)

	s, err := sim.New(cfg)
	if err != nil {
		return err
	}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := stream.NewWriter(dst)
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return err
		}
		if err := w.WriteObservation(o); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "spiresim: %d epochs, %d readings, %d bytes, %d thefts, peak population %d\n",
			s.Now(), w.Count(), w.Bytes(), len(s.Thefts()), s.SteadyStateCount())
	}
	return nil
}
