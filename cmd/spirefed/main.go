// Command spirefed is the federation coordinator of a distributed SPIRE
// deployment: it accepts one connection per zone worker (cmd/spirezone),
// aligns their per-epoch batches on an epoch barrier, merges them into a
// single consistent warehouse-wide stream via zone-priority
// reconciliation, and acks each merged epoch back to the workers.
//
// The merged stream goes to -o in the binary event wire format (readable
// by cmd/spiredecompress and cmd/spirequery) and, with -serve, into an
// in-memory query index served over HTTP (the cmd/spirequery API):
// object history, containment, location occupancy, and missing reports —
// warehouse-wide, while the zones only ever saw their own readers.
//
// A zone that stalls the barrier longer than -straggler-timeout fails
// the run with an error naming the zone. Workers may crash, reconnect,
// and resume from checkpoints freely within that budget; the ack
// protocol guarantees the merged stream neither loses nor duplicates
// epochs across such restarts.
//
//	spirefed -zones 2 -listen 127.0.0.1:7412 -o merged.bin -serve :8080
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"spire/internal/event"
	"spire/internal/federate"
	"spire/internal/httpapi"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirefed:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		zones       = flag.Int("zones", 2, "number of zone workers to coordinate")
		listen      = flag.String("listen", "127.0.0.1:7412", "address to accept zone workers on")
		out         = flag.String("o", "", "write the merged stream to this file (binary event wire format)")
		serve       = flag.String("serve", "", "serve the query API for the merged stream on this address")
		straggler   = flag.Duration("straggler-timeout", 30*time.Second, "max barrier stall before failing and naming the lagging zone")
		serialMerge = flag.Bool("serial-merge", false, "merge with the serial reference merger instead of the sharded parallel merger (byte-identical output)")
		mergeShards = flag.Int("merge-shards", 0, "shard count for the parallel merger (0: default)")
		warnFrac    = flag.Float64("straggler-warn", 0.5, "fraction of -straggler-timeout after which a stalled barrier logs a near-miss naming the lagging zone")
		metricsAddr = flag.String("metrics-addr", "", "serve the cluster health plane on this address: /metrics, /v1/cluster, /healthz, /readyz, /debug/fedtrace")
		pprofFlag   = flag.Bool("pprof", false, "also serve /debug/pprof on -metrics-addr")
		logSpec     = flag.String("log-level", "", "log level (debug|info|warn|error), optionally per component: 'warn,federate=debug'")
		quiet       = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "spirefed: "+format+"\n", args...)
		}
	}
	logging, err := trace.NewLogging(os.Stderr, *logSpec)
	if err != nil {
		return err
	}

	var sink struct {
		mu     sync.Mutex // serializes Feed with query API reads
		store  *query.Store
		w      *event.Writer
		file   *os.File
		buf    *bufio.Writer
		events int64
		epochs int64
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		sink.file = f
		sink.buf = bufio.NewWriter(f)
		sink.w = event.NewWriter(sink.buf)
	}
	if *serve != "" {
		sink.store = query.NewStore()
	}

	var fedLog *slog.Logger
	if *logSpec != "" {
		fedLog = logging.Component("federate")
	}
	coord, err := federate.NewCoordinator(federate.CoordinatorConfig{
		Zones:                 *zones,
		StragglerTimeout:      *straggler,
		StragglerWarnFraction: *warnFrac,
		SerialMerge:           *serialMerge,
		MergeShards:           *mergeShards,
		Logf:                  logf,
		Log:                   fedLog,
		Sink: func(epoch model.Epoch, events []event.Event) error {
			sink.mu.Lock()
			defer sink.mu.Unlock()
			sink.epochs++
			sink.events += int64(len(events))
			if sink.w != nil {
				for _, e := range events {
					if err := sink.w.Write(e); err != nil {
						return err
					}
				}
			}
			if sink.store != nil {
				if err := sink.store.Feed(events...); err != nil {
					return fmt.Errorf("query index: %w", err)
				}
			}
			return nil
		},
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		coord.Instrument(reg)
		rec := trace.NewConnRecorder(0)
		coord.TraceConn(rec)
		plane := httpapi.New(nil, nil).
			EnableMetrics(reg).
			EnableClusterStatus(func() any { return coord.Status() }).
			EnableHealth(coord.Ready).
			EnableConnTrace(rec)
		if *pprofFlag {
			plane.EnablePprof()
		}
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		go http.Serve(mln, plane) //nolint:errcheck — dies with the process
		logf("cluster health plane on %s", mln.Addr())
	}

	if *serve != "" {
		api := httpapi.New(sink.store, func() any {
			sink.mu.Lock()
			defer sink.mu.Unlock()
			return map[string]any{
				"zones":         *zones,
				"merged_epochs": sink.epochs,
				"merged_events": sink.events,
			}
		})
		locked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sink.mu.Lock()
			defer sink.mu.Unlock()
			api.ServeHTTP(w, r)
		})
		hln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		defer hln.Close()
		go http.Serve(hln, locked) //nolint:errcheck — dies with the process
		logf("query API on %s", hln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logf("coordinating %d zones on %s", *zones, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := coord.Serve(ctx, ln); err != nil {
		return err
	}

	if sink.w != nil {
		if err := sink.buf.Flush(); err != nil {
			return err
		}
		if err := sink.file.Close(); err != nil {
			return err
		}
		logf("wrote %d events (%d bytes) to %s", sink.w.Count(), sink.w.Bytes(), *out)
	}
	logf("merged %d epochs, %d events from %d zones", sink.epochs, sink.events, *zones)
	// With -serve, keep answering queries until interrupted.
	if *serve != "" {
		logf("cluster run complete; query API stays up (interrupt to exit)")
		<-ctx.Done()
	}
	return nil
}
