// Command spiredecompress converts a level-2 compressed event stream into
// the equivalent level-1 stream — the standalone form of the on-demand
// decompression routine of the paper's Section V-C, suitable for plugging
// in front of any event processor that expects complete per-object
// location information.
//
//	spire -simulate -level 2 -o l2.bin
//	spiredecompress -i l2.bin -o l1.bin
//	spirequery -events l1.bin -summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spire/internal/compress"
	"spire/internal/event"
	"spire/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spiredecompress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("i", "", "level-2 stream file ('-' for stdin)")
		out      = flag.String("o", "", "level-1 output file (default stdout)")
		closeAt  = flag.Int64("close", -1, "close intervals still open at this epoch (default: leave open)")
		validate = flag.Bool("validate", true, "verify the output stream is well-formed")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-i is required")
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	r := event.NewReader(src)
	w := event.NewWriter(dst)
	dec := compress.NewDecompressor()
	var all []event.Event
	var inBytes int64
	emit := func(evs []event.Event) error {
		for _, e := range evs {
			if err := w.Write(e); err != nil {
				return err
			}
		}
		if *validate {
			all = append(all, evs...)
		}
		return nil
	}
	// Batch by epoch: the decompressor's alignment pass needs whole
	// epochs.
	var batch []event.Event
	var batchTime model.Epoch = model.EpochNone
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		outEvs, err := dec.Step(batch)
		if err != nil {
			return err
		}
		batch = batch[:0]
		return emit(outEvs)
	}
	for {
		e, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		inBytes += int64(event.WireSize(e))
		t := e.Vs
		if e.Kind == event.EndLocation || e.Kind == event.EndContainment {
			t = e.Ve
		}
		if t != batchTime {
			if err := flush(); err != nil {
				return err
			}
			batchTime = t
		}
		batch = append(batch, e)
	}
	if err := flush(); err != nil {
		return err
	}
	if *closeAt >= 0 {
		if err := emit(dec.Close(model.Epoch(*closeAt))); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *validate {
		if err := event.CheckWellFormed(all, *closeAt >= 0); err != nil {
			return fmt.Errorf("output malformed: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "spiredecompress: %d B level-2 in -> %d events, %d B level-1 out\n",
		inBytes, w.Count(), w.Bytes())
	return nil
}
