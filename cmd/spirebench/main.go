// Command spirebench regenerates the tables and figures of the paper's
// evaluation (Section VI).
//
//	spirebench -list
//	spirebench -expt fig9d -quick
//	spirebench -expt all > results.txt
//
// Full runs replicate the paper's multi-hour workloads and can take a
// long time; -quick shrinks every workload while preserving the shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spire/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expt  = flag.String("expt", "all", "experiment id, comma-separated list, or 'all'")
		quick = flag.Bool("quick", false, "shrunken workloads (minutes instead of hours)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	reg := experiments.Registry()
	var ids []string
	if *expt == "all" {
		// fig11 covers fig11a/b/c in one sweep; skip the single-figure
		// aliases to avoid rerunning it three times.
		for _, id := range experiments.IDs() {
			switch id {
			case "fig11a", "fig11b", "fig11c":
				continue
			}
			ids = append(ids, id)
		}
	} else {
		for _, id := range strings.Split(*expt, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			ids = append(ids, id)
		}
	}

	opts := experiments.Options{Quick: *quick}
	for _, id := range ids {
		start := time.Now()
		tables, err := reg[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "spirebench: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
