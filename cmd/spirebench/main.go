// Command spirebench regenerates the tables and figures of the paper's
// evaluation (Section VI).
//
//	spirebench -list
//	spirebench -expt fig9d -quick
//	spirebench -expt all -j 8 > results.txt
//	spirebench -expt all -quick -json bench.json
//
// Full runs replicate the paper's multi-hour workloads and can take a
// long time; -quick shrinks every workload while preserving the shapes.
// Independent sweep cells run concurrently (-j, default all CPUs); table
// output is identical for any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"spire/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spirebench:", err)
		os.Exit(1)
	}
}

// benchReport is the machine-readable run summary written by -json, so
// headline metrics can accumulate across revisions (BENCH_*.json).
type benchReport struct {
	Quick        bool               `json:"quick"`
	Workers      int                `json:"workers"`
	GoMaxProcs   int                `json:"gomaxprocs"`
	TotalSeconds float64            `json:"total_seconds"`
	Experiments  []benchExperiment  `json:"experiments"`
	Headline     map[string]float64 `json:"headline"`
}

type benchExperiment struct {
	ID      string       `json:"id"`
	Seconds float64      `json:"seconds"`
	Tables  []benchTable `json:"tables"`
}

type benchTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    []benchRow `json:"rows"`
}

type benchRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

func run() error {
	var (
		expt     = flag.String("expt", "all", "experiment id, comma-separated list, or 'all'")
		quick    = flag.Bool("quick", false, "shrunken workloads (minutes instead of hours)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		workers  = flag.Int("j", runtime.NumCPU(), "max concurrently running sweep cells")
		jsonPath = flag.String("json", "", "also write results as JSON to this path")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	reg := experiments.Registry()
	var ids []string
	if *expt == "all" {
		// fig11 covers fig11a/b/c in one sweep; skip the single-figure
		// aliases to avoid rerunning it three times.
		for _, id := range experiments.IDs() {
			switch id {
			case "fig11a", "fig11b", "fig11c":
				continue
			}
			ids = append(ids, id)
		}
	} else {
		for _, id := range strings.Split(*expt, ",") {
			id = strings.TrimSpace(id)
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			ids = append(ids, id)
		}
	}

	opts := experiments.Options{Quick: *quick, Workers: *workers}
	report := benchReport{Quick: *quick, Workers: *workers, GoMaxProcs: runtime.GOMAXPROCS(0)}
	suiteStart := time.Now()
	for _, id := range ids {
		start := time.Now()
		tables, err := reg[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		be := benchExperiment{ID: id, Seconds: elapsed.Seconds()}
		for _, t := range tables {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			bt := benchTable{ID: t.ID, Title: t.Title, Columns: t.Columns}
			for _, r := range t.Rows {
				bt.Rows = append(bt.Rows, benchRow{Label: r.Label, Values: r.Values})
			}
			be.Tables = append(be.Tables, bt)
		}
		report.Experiments = append(report.Experiments, be)
		fmt.Fprintf(os.Stderr, "spirebench: %s done in %v\n", id, elapsed.Round(time.Millisecond))
	}
	report.TotalSeconds = time.Since(suiteStart).Seconds()

	if *jsonPath != "" {
		report.Headline = headline(report.Experiments)
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spirebench: wrote %s\n", *jsonPath)
	}
	return nil
}

// headline extracts the cross-revision trackable metrics: Table III
// seconds-per-epoch at the largest size, Fig. 11 compression ratios and
// F-measures at the sweep's highest read rate, and total wall clock.
func headline(exps []benchExperiment) map[string]float64 {
	h := make(map[string]float64)
	cell := func(t benchTable, label, column string) (float64, bool) {
		for ci, c := range t.Columns {
			if c != column {
				continue
			}
			for _, r := range t.Rows {
				if r.Label == label && ci < len(r.Values) {
					return r.Values[ci], true
				}
			}
		}
		return 0, false
	}
	for _, e := range exps {
		for _, t := range e.Tables {
			if len(t.Rows) == 0 {
				continue
			}
			last := t.Rows[len(t.Rows)-1]
			switch t.ID {
			case "table3":
				if len(last.Values) == 3 {
					h["table3_s_per_epoch_max"] = last.Values[2]
					h["table3_update_s_max"] = last.Values[0]
					h["table3_inference_s_max"] = last.Values[1]
				}
			case "bench-ingest":
				// Gate seconds per million readings (larger is worse) at
				// the largest population. The wide-width figures are
				// recorded for the chart but not gated: they depend on
				// the host's core count.
				if len(last.Values) == 4 {
					if last.Values[0] > 0 {
						h["ingest_ref_s_per_mread"] = 1e6 / last.Values[0]
					}
					if last.Values[1] > 0 {
						h["ingest_batch1_s_per_mread"] = 1e6 / last.Values[1]
					}
					if last.Values[2] > 0 {
						h["ingest_batchn_s_per_mread"] = 1e6 / last.Values[2]
					}
					h["ingest_batch_speedup"] = last.Values[3]
				}
			case "bench-zones":
				// Gate the single-substrate cost (serial); the federated
				// rows time genuinely parallel work, so their throughput
				// and speedup are recorded but depend on idle cores.
				for _, r := range t.Rows {
					if len(r.Values) != 4 {
						continue
					}
					if r.Label == "single" {
						h["zones_single_s_per_mread"] = r.Values[1]
					}
				}
				if len(last.Values) == 4 {
					h["zones_par_speedup_max"] = last.Values[2]
					h["zones_s_per_mread_max"] = last.Values[1]
				}
			case "zones-merge":
				if v, ok := cell(t, "MergerIngest", "s/Mevent"); ok {
					h["zones_merge_s_per_mevent"] = v
				}
				if v, ok := cell(t, "MergerIngest+telemetry", "s/Mevent"); ok {
					h["zones_merge_instr_s_per_mevent"] = v
				}
				if v, ok := cell(t, "ParallelMerge", "s/Mevent"); ok {
					h["zones_merge_par_s_per_mevent"] = v
				}
			case "zones-worker-feed":
				// Gate the batch feed's per-zone ingest cost at the
				// largest zone count — the quantity the columnar feed
				// keeps flat as the deployment grows. The obs column is
				// the contrast and scales with population by
				// construction, so it is recorded but not gated.
				if len(last.Values) == 3 {
					h["zones_worker_feed_s_per_mevent"] = last.Values[0]
				}
			case "ingest-stages":
				for _, r := range t.Rows {
					if len(r.Values) != 2 {
						continue
					}
					switch r.Label {
					case "BenchmarkIngestDecode":
						h["ingest_decode_s_per_mread"] = r.Values[1]
					case "BenchmarkIngestDedup":
						h["ingest_dedup_s_per_mread"] = r.Values[1]
					case "BenchmarkIngestUpdate":
						h["ingest_update_s_per_mread"] = r.Values[1]
					}
				}
			case "cep":
				// Detector quality across the dropout sweep: F1 on the
				// clean trace and at the heaviest dropout, per detector.
				// Quality keys are informational here; the unit tests
				// assert the floors exactly.
				for _, det := range []string{"theft", "misroute", "cold"} {
					if v, ok := cell(t, "none "+det, "F1"); ok {
						h["cep_"+det+"_f1"] = v
					}
					if v, ok := cell(t, "60x12 "+det, "F1"); ok {
						h["cep_"+det+"_f1_dropout"] = v
					}
				}
			case "cep-perf":
				// Gate dispatch cost (larger is worse) idle and at 10k
				// subscriptions; the 1k row is recorded for the curve.
				for _, r := range t.Rows {
					if len(r.Values) != 2 {
						continue
					}
					switch r.Label {
					case "BenchmarkCEPDispatchIdle":
						h["cep_dispatch_idle_s_per_mevent"] = r.Values[1]
					case "BenchmarkCEPDispatch1kSubs":
						h["cep_dispatch_1k_s_per_mevent"] = r.Values[1]
					case "BenchmarkCEPDispatch10kSubs":
						h["cep_dispatch_10k_s_per_mevent"] = r.Values[1]
					case "BenchmarkCEPDispatch100kSubs":
						h["cep_dispatch_100k_s_per_mevent"] = r.Values[1]
					}
				}
			case "infercomp":
				if len(last.Values) == 5 {
					h["infercomp_serial_s"] = last.Values[0]
					h["infercomp_parallel4_s"] = last.Values[1]
					h["infercomp_cached_s"] = last.Values[2]
					h["infercomp_cached_speedup"] = last.Values[3]
					h["infercomp_dirty_node_frac"] = last.Values[4]
				}
			case "fig11a":
				if v, ok := cell(t, last.Label, "SPIRE"); ok {
					h["fig11a_spire_f_max_rate"] = v
				}
				if v, ok := cell(t, last.Label, "SMURF"); ok {
					h["fig11a_smurf_f_max_rate"] = v
				}
			case "fig11b":
				if v, ok := cell(t, last.Label, "SPIRE L1"); ok {
					h["fig11b_l1_ratio_max_rate"] = v
				}
				if v, ok := cell(t, last.Label, "SPIRE L2"); ok {
					h["fig11b_l2_ratio_max_rate"] = v
				}
			case "fig11c":
				if v, ok := cell(t, last.Label, "L1 full"); ok {
					h["fig11c_l1_full_ratio_max_rate"] = v
				}
				if v, ok := cell(t, last.Label, "L2 full"); ok {
					h["fig11c_l2_full_ratio_max_rate"] = v
				}
			}
		}
	}
	return h
}
