// Package spire_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section VI).
//
// Each benchmark runs the corresponding experiment driver at quick scale
// (shapes preserved, minutes not hours) and reports the headline numbers
// as custom benchmark metrics; the rendered tables go to the benchmark
// log. For paper-scale runs use:
//
//	go run ./cmd/spirebench -expt all
package spire_test

import (
	"testing"

	"spire/internal/experiments"
)

// Benchmarks run their sweep cells serially (Workers: 1) so per-op times
// and the custom timing metrics stay comparable across machines and with
// earlier revisions; `spirebench -j` is where parallel wall clock is
// measured.
var benchOpts = experiments.Options{Quick: true, Workers: 1}

func runTable(b *testing.B, f func(experiments.Options) (*experiments.Table, error)) *experiments.Table {
	b.Helper()
	b.ReportAllocs()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = f(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + t.String())
	return t
}

// BenchmarkFig9aContainmentVsBeta regenerates Fig. 9(a): containment
// error as β sweeps, per shelf-reader frequency, plus adaptive β.
func BenchmarkFig9aContainmentVsBeta(b *testing.B) {
	t := runTable(b, experiments.Fig9a)
	if v, ok := t.Cell("adaptive", t.Columns[0]); ok {
		b.ReportMetric(v, "adaptive-err")
	}
}

// BenchmarkFig9bLocationVsGamma regenerates Fig. 9(b): location error as
// γ sweeps.
func BenchmarkFig9bLocationVsGamma(b *testing.B) {
	runTable(b, experiments.Fig9b)
}

// BenchmarkFig9cLocationVsTheta regenerates Fig. 9(c): location error as
// θ sweeps.
func BenchmarkFig9cLocationVsTheta(b *testing.B) {
	runTable(b, experiments.Fig9c)
}

// BenchmarkFig9dErrorVsReadRate regenerates Fig. 9(d): location and
// containment error across read rates.
func BenchmarkFig9dErrorVsReadRate(b *testing.B) {
	t := runTable(b, experiments.Fig9d)
	if v, ok := t.Cell("0.85", "location"); ok {
		b.ReportMetric(v, "loc-err@0.85")
	}
	if v, ok := t.Cell("0.85", "containment"); ok {
		b.ReportMetric(v, "cont-err@0.85")
	}
}

// BenchmarkFig9eAnomalyError regenerates Fig. 9(e): error rate under the
// theft workload as θ sweeps.
func BenchmarkFig9eAnomalyError(b *testing.B) {
	runTable(b, experiments.Fig9e)
}

// BenchmarkFig9fDetectionDelay regenerates Fig. 9(f): anomaly detection
// delay as θ sweeps.
func BenchmarkFig9fDetectionDelay(b *testing.B) {
	runTable(b, experiments.Fig9f)
}

// BenchmarkTable3ProcessingSpeed regenerates Table III: per-epoch update
// and inference cost at growing node counts.
func BenchmarkTable3ProcessingSpeed(b *testing.B) {
	t := runTable(b, experiments.Table3)
	if len(t.Rows) > 0 {
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Values[2], "s/epoch@max")
	}
}

// BenchmarkFig10Memory regenerates Fig. 10: graph memory under different
// edge-pruning thresholds.
func BenchmarkFig10Memory(b *testing.B) {
	runTable(b, experiments.Fig10)
}

// BenchmarkFig11aFMeasure, BenchmarkFig11bCompressionLocation, and
// BenchmarkFig11cCompressionFull regenerate Fig. 11. The underlying sweep
// is shared; each bench reruns it so the reported time reflects one
// artifact's cost honestly.
func BenchmarkFig11aFMeasure(b *testing.B) {
	b.ReportAllocs()
	var a *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		a, _, _, err = experiments.Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + a.String())
	if v, ok := a.Cell("0.85", "SPIRE"); ok {
		b.ReportMetric(v, "spire-F@0.85")
	}
	if v, ok := a.Cell("0.85", "SMURF"); ok {
		b.ReportMetric(v, "smurf-F@0.85")
	}
}

func BenchmarkFig11bCompressionLocation(b *testing.B) {
	b.ReportAllocs()
	var tb *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, tb, _, err = experiments.Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tb.String())
	if v, ok := tb.Cell("0.85", "SPIRE L2"); ok {
		b.ReportMetric(v, "l2-ratio@0.85")
	}
}

func BenchmarkFig11cCompressionFull(b *testing.B) {
	b.ReportAllocs()
	var tc *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		_, _, tc, err = experiments.Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tc.String())
	if v, ok := tc.Cell("0.85", "L2 full"); ok {
		b.ReportMetric(v, "l2-full-ratio@0.85")
	}
}

// BenchmarkAblationPartialInference quantifies the partial/complete
// inference schedule of Section IV-D.
func BenchmarkAblationPartialInference(b *testing.B) {
	runTable(b, experiments.AblationPartialInference)
}

// BenchmarkAblationPruneThreshold quantifies the accuracy cost of edge
// pruning (Expt 6's accuracy notes).
func BenchmarkAblationPruneThreshold(b *testing.B) {
	runTable(b, experiments.AblationPruneThreshold)
}
