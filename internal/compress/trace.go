package compress

import "spire/internal/trace"

// SetTracer attaches a decision-provenance recorder. Level 1 emits every
// state change explicitly, so it has no suppression decisions to record;
// the hook exists so both levels satisfy the substrate's compressor
// surface uniformly.
func (c *Level1) SetTracer(rec *trace.Recorder) { c.rec = rec }

// SetTracer attaches a decision-provenance recorder; level 2 records a
// suppression decision for each traced object whose location update is
// withheld because a container reports for it (§V-C).
func (c *Level2) SetTracer(rec *trace.Recorder) { c.rec = rec }
