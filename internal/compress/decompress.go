package compress

import (
	"fmt"
	"sort"

	"spire/internal/event"
	"spire/internal/model"
)

// Decompressor transforms a level-2 compressed stream back into a level-1
// compressed stream on demand (§V-C). It maintains the containment
// hierarchy from the containment messages and propagates each container's
// location updates to its (transitively) contained objects, suppressing
// the duplicate events that arise at containment boundaries and the
// artificial pair breaks level-2 introduces when a containment starts.
//
// Feed events one epoch at a time via Step; within an epoch the level-2
// compressor guarantees containment messages precede location messages and
// containers precede their contents, which Step relies on.
type Decompressor struct {
	children map[model.Tag]map[model.Tag]struct{}
	parents  map[model.Tag]model.Tag

	// Open location pair per object in the *reconstructed* stream.
	loc   map[model.Tag]model.LocationID
	locVs map[model.Tag]model.Epoch

	// lastClosed remembers where and when each object's pair last closed;
	// the zero-length-couple handling below uses it to distinguish "this
	// object's stay here was already closed this epoch" (cascade did the
	// work) from "the object arrived here this epoch" (a genuine
	// zero-length stay that must be reproduced).
	lastClosed map[model.Tag]closedPair

	// pending holds the containments started in the current epoch; after
	// the epoch's location events are processed, children that still
	// disagree with their new container's open location are aligned (the
	// container may itself move within the joining epoch, so alignment
	// cannot happen eagerly).
	pending []event.Event

	out []emission
}

// closedPair records the closing of an object's location pair.
type closedPair struct {
	loc model.LocationID
	at  model.Epoch
}

// NewDecompressor creates an empty decompressor.
func NewDecompressor() *Decompressor {
	return &Decompressor{
		children:   make(map[model.Tag]map[model.Tag]struct{}),
		parents:    make(map[model.Tag]model.Tag),
		loc:        make(map[model.Tag]model.LocationID),
		locVs:      make(map[model.Tag]model.Epoch),
		lastClosed: make(map[model.Tag]closedPair),
	}
}

// Step decompresses one epoch's worth of level-2 events and returns the
// corresponding level-1 events, in the order the level-2 compressor (and
// its Retire calls) emitted them. A batch may contain several
// containment-phase/location-phase segments — one per Compress or Retire
// call — which are processed in sequence.
func (d *Decompressor) Step(events []event.Event) ([]event.Event, error) {
	d.out = d.out[:0]
	for len(events) > 0 {
		// A segment is a run of containment events followed by a run of
		// location events.
		i := 0
		for i < len(events) && events[i].Kind.Containment() {
			i++
		}
		for i < len(events) && !events[i].Kind.Containment() {
			i++
		}
		if err := d.stepSegment(events[:i]); err != nil {
			return nil, err
		}
		events = events[i:]
	}
	out := make([]event.Event, len(d.out))
	for i, em := range d.out {
		out[i] = em.ev
	}
	return out, nil
}

func (d *Decompressor) stepSegment(events []event.Event) error {
	d.pending = d.pending[:0]
	phase := 0
	for _, e := range events {
		if e.Kind.Containment() {
			if phase == 1 {
				return fmt.Errorf("compress: containment event %v after location events in segment", e)
			}
			d.applyContainment(e)
		} else {
			phase = 1
		}
	}
	var deferredEnds []event.Event
	for i := 0; i < len(events); i++ {
		e := events[i]
		if e.Kind.Containment() {
			continue
		}
		// A zero-length Start/End couple means "this object's presence ends
		// here at t". If the reconstructed pair is still open, close it
		// (the pair's real extent replaces the zero-length one). If it was
		// already closed this epoch at this very location, a cascade did
		// the work and nothing remains. Otherwise the object genuinely
		// arrived here this epoch and the zero-length stay is reproduced
		// literally.
		if e.Kind == event.StartLocation && i+1 < len(events) {
			n := events[i+1]
			if n.Kind == event.EndLocation && n.Object == e.Object &&
				n.Location == e.Location && n.Vs == e.Vs && n.Ve == e.Vs {
				if cur, open := d.loc[e.Object]; open {
					d.endCascade(e.Object, cur, n.Ve)
				} else if lc, ok := d.lastClosed[e.Object]; !ok || lc.at != n.Ve || lc.loc != e.Location {
					d.startPair(e.Object, e.Location, e.Vs)
					d.endPair(e.Object, n.Ve)
				}
				i++
				continue
			}
		}
		// An EndLocation for a currently contained object is level-2's
		// containment-start artifact; whether the level-1 pair really
		// closes depends on where the container finally settles this
		// epoch, so judge it after the alignment pass below.
		if e.Kind == event.EndLocation {
			if _, contained := d.parents[e.Object]; contained {
				deferredEnds = append(deferredEnds, e)
				continue
			}
		}
		d.applyLocation(e)
	}
	// Align this epoch's joiners with their containers' settled locations:
	// a child that joined a container which emitted no location event this
	// epoch inherits the container's open pair now.
	for _, e := range d.pending {
		if d.parents[e.Object] != e.Container {
			continue // re-parented or detached again within the epoch
		}
		if ploc, ok := d.loc[e.Container]; ok {
			if cloc, open := d.loc[e.Object]; !open || cloc != ploc {
				d.startCascade(e.Object, ploc, e.Vs)
			}
		}
	}
	for _, e := range deferredEnds {
		d.applyLocation(e)
	}
	return nil
}

// Close ends every reconstructed pair still open at epoch now. Call it
// after feeding the final (closing) batch of the level-2 stream: the
// level-2 Close detaches containments before its location ends, so
// contained objects' reconstructed pairs are left for this sweep.
func (d *Decompressor) Close(now model.Epoch) []event.Event {
	objs := make([]model.Tag, 0, len(d.loc))
	for obj := range d.loc {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	d.out = d.out[:0]
	for _, obj := range objs {
		d.endPair(obj, now)
	}
	out := make([]event.Event, len(d.out))
	for i, em := range d.out {
		out[i] = em.ev
	}
	return out
}

func (d *Decompressor) applyContainment(e event.Event) {
	// Containment messages pass through unchanged.
	d.out = append(d.out, emission{ev: e})
	switch e.Kind {
	case event.StartContainment:
		if d.parents[e.Object] == e.Container {
			return
		}
		d.detach(e.Object)
		d.parents[e.Object] = e.Container
		kids := d.children[e.Container]
		if kids == nil {
			kids = make(map[model.Tag]struct{})
			d.children[e.Container] = kids
		}
		kids[e.Object] = struct{}{}
		d.pending = append(d.pending, e)
	case event.EndContainment:
		if d.parents[e.Object] == e.Container {
			d.detach(e.Object)
		}
	}
}

func (d *Decompressor) detach(obj model.Tag) {
	if p, ok := d.parents[obj]; ok {
		delete(d.children[p], obj)
		if len(d.children[p]) == 0 {
			delete(d.children, p)
		}
		delete(d.parents, obj)
	}
}

func (d *Decompressor) applyLocation(e event.Event) {
	switch e.Kind {
	case event.StartLocation:
		d.startCascade(e.Object, e.Location, e.Vs)
	case event.EndLocation:
		cur, open := d.loc[e.Object]
		if !open || cur != e.Location {
			// The pair this event refers to was already closed (or moved)
			// by a container's cascading update earlier in the epoch.
			return
		}
		// Suppress the artificial close that level-2 emits when an object
		// becomes contained in a container already open at the same
		// location: in the level-1 view the pair simply continues.
		if p, contained := d.parents[e.Object]; contained {
			if ploc, ok := d.loc[p]; ok && ploc == e.Location {
				return
			}
		}
		d.endCascade(e.Object, e.Location, e.Ve)
	case event.Missing:
		d.missingCascade(e.Object, e.Location, e.Vs)
	}
}

// startCascade opens a pair at loc for obj and, recursively, for its
// contents, skipping duplicates (already open at the same location).
func (d *Decompressor) startCascade(obj model.Tag, loc model.LocationID, t model.Epoch) {
	if cur, open := d.loc[obj]; open {
		if cur == loc {
			// Duplicate: e.g. the StartLocation level-2 emits when a
			// containment ends but the object has not actually moved.
			return
		}
		d.endPair(obj, t)
	}
	d.startPair(obj, loc, t)
	for _, c := range d.childList(obj) {
		d.startCascade(c, loc, t)
	}
}

// endCascade closes obj's pair at loc and recurses into the contents that
// shared that location. A child open elsewhere did not co-reside with the
// departing container (it joined this very epoch from the container's
// destination); its pair is left for the container's Start cascade or the
// deferred alignment.
func (d *Decompressor) endCascade(obj model.Tag, loc model.LocationID, t model.Epoch) {
	if cur, open := d.loc[obj]; !open || cur != loc {
		return
	}
	d.endPair(obj, t)
	for _, c := range d.childList(obj) {
		d.endCascade(c, loc, t)
	}
}

func (d *Decompressor) missingCascade(obj model.Tag, from model.LocationID, t model.Epoch) {
	d.endPair(obj, t)
	d.out = append(d.out, emission{ev: event.NewMissing(obj, from, t)})
	for _, c := range d.childList(obj) {
		d.missingCascade(c, from, t)
	}
}

func (d *Decompressor) startPair(obj model.Tag, loc model.LocationID, t model.Epoch) {
	d.out = append(d.out, emission{ev: event.NewStartLocation(obj, loc, t)})
	d.loc[obj] = loc
	d.locVs[obj] = t
}

// endPair closes obj's open pair, rewriting Vs to the reconstructed pair's
// true start (level-2 pairs can start later than the level-1 ones).
func (d *Decompressor) endPair(obj model.Tag, t model.Epoch) {
	loc, open := d.loc[obj]
	if !open {
		return
	}
	d.out = append(d.out, emission{ev: event.NewEndLocation(obj, loc, d.locVs[obj], t)})
	d.lastClosed[obj] = closedPair{loc: loc, at: t}
	delete(d.loc, obj)
	delete(d.locVs, obj)
}

func (d *Decompressor) childList(obj model.Tag) []model.Tag {
	kids := d.children[obj]
	if len(kids) == 0 {
		return nil
	}
	out := make([]model.Tag, 0, len(kids))
	for c := range kids {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
