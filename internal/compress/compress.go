// Package compress implements SPIRE's output module (Section V of the
// paper): translation of per-epoch inference results into a compressed,
// well-formed event stream.
//
// Two compression levels are provided:
//
//   - Level1 (range compression, §V-B): only state *changes* are emitted —
//     a stationary object's entire stay collapses into one
//     start/end-location pair, a stable containment into one
//     start/end-containment pair. The location and containment streams are
//     independent and the output is directly queriable.
//
//   - Level2 (location compression using containment, §V-C): additionally,
//     the location updates of contained objects are suppressed — only
//     top-level containers report locations. A Decompressor reconstructs
//     the level-1 stream on demand.
//
// Both are lossless with respect to interpreted state: every reported
// state change is preserved, and level-2 locations are recoverable through
// the containment hierarchy.
package compress

import (
	"sort"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

// LevelFunc reports the packaging level of a tag. Compressors use it only
// to order emissions (containers before their contents within an epoch),
// which is what makes level-2 decompression exact.
type LevelFunc func(model.Tag) model.Level

// objState is the per-object reporting state shared by both compressors.
type objState struct {
	level model.Level

	// Open location pair (locOpen) and its start epoch.
	loc     model.LocationID
	locOpen bool
	locVs   model.Epoch

	// lastKnown is the most recent known reported (or, for level-2
	// contained objects, virtual) location — the locationMissingFrom of a
	// Missing message.
	lastKnown model.LocationID

	// Reported containment pair.
	parent   model.Tag
	parentVs model.Epoch

	// missing latches so a vanished object emits a single Missing message
	// per disappearance.
	missing bool
}

// emission is an event staged for in-epoch ordering.
type emission struct {
	ev    event.Event
	level model.Level
	seq   int // ordering among same-object emissions (End before Start)
}

// sortEpoch orders one epoch's emissions: containment messages first, then
// location messages; within each phase containers (higher packaging
// levels) come before their contents, then tag order, then the staging
// sequence (which puts an object's End before its Start).
func sortEpoch(ems []emission) {
	sort.SliceStable(ems, func(i, j int) bool {
		ci, cj := ems[i].ev.Kind.Containment(), ems[j].ev.Kind.Containment()
		if ci != cj {
			return ci
		}
		if ems[i].level != ems[j].level {
			return ems[i].level > ems[j].level
		}
		if ems[i].ev.Object != ems[j].ev.Object {
			return ems[i].ev.Object < ems[j].ev.Object
		}
		return ems[i].seq < ems[j].seq
	})
}

func finish(ems []emission) []event.Event {
	if len(ems) == 0 {
		return nil
	}
	sortEpoch(ems)
	out := make([]event.Event, len(ems))
	for i, e := range ems {
		out[i] = e.ev
	}
	return out
}

// sortedTags returns the result's interpreted objects in tag order.
func sortedTags(res *inference.Result) []model.Tag {
	tags := make([]model.Tag, 0, len(res.Locations))
	for t := range res.Locations {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// compressContainment updates the containment pair of one object and
// stages the End/Start messages. Shared by both levels — containment
// output is identical between them. Returns true if containment changed.
func (st *objState) compressContainment(obj model.Tag, newParent model.Tag, now model.Epoch, ems *[]emission) bool {
	if st.parent == newParent {
		return false
	}
	if st.parent != model.NoTag {
		*ems = append(*ems, emission{
			ev:    event.NewEndContainment(obj, st.parent, st.parentVs, now),
			level: st.level, seq: 0,
		})
	}
	if newParent != model.NoTag {
		*ems = append(*ems, emission{
			ev:    event.NewStartContainment(obj, newParent, now),
			level: st.level, seq: 1,
		})
	}
	st.parent = newParent
	st.parentVs = now
	return true
}

// closeLocation stages the EndLocation for an open pair, if any.
func (st *objState) closeLocation(obj model.Tag, now model.Epoch, ems *[]emission) {
	if st.locOpen {
		*ems = append(*ems, emission{
			ev:    event.NewEndLocation(obj, st.loc, st.locVs, now),
			level: st.level, seq: 2,
		})
		st.locOpen = false
	}
}

// openLocation stages a StartLocation and opens the pair.
func (st *objState) openLocation(obj model.Tag, loc model.LocationID, now model.Epoch, ems *[]emission) {
	*ems = append(*ems, emission{
		ev:    event.NewStartLocation(obj, loc, now),
		level: st.level, seq: 3,
	})
	st.loc = loc
	st.locOpen = true
	st.locVs = now
	st.lastKnown = loc
}

// goMissing stages the End + singleton Missing transition.
func (st *objState) goMissing(obj model.Tag, now model.Epoch, ems *[]emission) {
	st.closeLocation(obj, now, ems)
	if !st.missing {
		from := st.lastKnown
		if !from.Known() {
			from = model.LocationUnknown
		}
		*ems = append(*ems, emission{
			ev:    event.NewMissing(obj, from, now),
			level: st.level, seq: 4,
		})
		st.missing = true
	}
}
