package compress

import (
	"spire/internal/model"
	"spire/internal/telemetry"
)

// Instruments are the compressor's runtime-telemetry metrics. The open
// interval counts are the compressor's entire cumulative state — every
// open pair is a future End event the stream still owes — so they are the
// gauge to watch for output-side state growth; the counters track the
// emitted volume the compression experiments report offline. All metrics
// carry a level label so multi-process deployments running different
// compression levels stay distinguishable on one dashboard. A nil
// *Instruments records nothing.
type Instruments struct {
	OpenLocations    *telemetry.Gauge
	OpenContainments *telemetry.Gauge
	Events           *telemetry.Counter
	Bytes            *telemetry.Counter
}

// NewInstruments registers the compressor metrics on reg with the given
// compression-level label value ("1" or "2"). Returns nil when reg is
// nil, which makes every Record call a no-op.
func NewInstruments(reg *telemetry.Registry, level string) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		OpenLocations: reg.Gauge("spire_compress_open_locations",
			"Objects with an open (unterminated) location interval.", "level", level),
		OpenContainments: reg.Gauge("spire_compress_open_containments",
			"Objects with an open (unterminated) containment interval.", "level", level),
		Events: reg.Counter("spire_compress_events_total",
			"Compressed output events emitted.", "level", level),
		Bytes: reg.Counter("spire_compress_bytes_total",
			"Compressed output bytes emitted (binary wire format).", "level", level),
	}
}

// Record captures the open-interval gauges and adds one epoch's emission
// to the counters. The substrate calls it once per epoch.
func (ins *Instruments) Record(openLocs, openConts int, events int, bytes int64) {
	if ins == nil {
		return
	}
	ins.OpenLocations.Set(int64(openLocs))
	ins.OpenContainments.Set(int64(openConts))
	ins.Events.Add(int64(events))
	ins.Bytes.Add(bytes)
}

// opens counts the open location and containment intervals across a
// compressor's tracked states: one O(n) read-only pass, cheap next to the
// per-epoch sort Compress already does.
func opens(states map[model.Tag]*objState) (locs, conts int) {
	for _, st := range states {
		if st.locOpen {
			locs++
		}
		if st.parent != model.NoTag {
			conts++
		}
	}
	return locs, conts
}

// Opens reports the number of open location and containment intervals.
func (c *Level1) Opens() (locs, conts int) { return opens(c.states) }

// Opens reports the number of open location and containment intervals.
// Level-2 location intervals count only uncontained objects, whose
// locations are the ones actually being reported.
func (c *Level2) Opens() (locs, conts int) { return opens(c.states) }
