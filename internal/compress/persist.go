package compress

import (
	"fmt"
	"sort"

	"spire/internal/checkpoint"
	"spire/internal/model"
)

// Snapshot serialization of the compressors' open-interval state. The
// per-object objState is the complete memory of both levels: the open
// location pair, the reported containment pair, the last known (virtual)
// location, and the missing latch. Without it a restored pipeline would
// re-emit Start events for intervals that are already open in the
// downstream stream, breaking well-formedness. States are written in tag
// order for byte-stable output.

const (
	sectionLevel1 = "CMP1"
	sectionLevel2 = "CMP2"
)

// stateEncSize is the encoded size of one objState entry, used to
// validate the count before allocating.
const stateEncSize = 8 + 1 + 8 + 1 + 8 + 8 + 8 + 8 + 1

func encodeStates(e *checkpoint.Encoder, states map[model.Tag]*objState) {
	tags := make([]model.Tag, 0, len(states))
	for t := range states {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	e.Uint64(uint64(len(tags)))
	for _, t := range tags {
		st := states[t]
		e.Uint64(uint64(t))
		e.Uint8(uint8(st.level))
		e.Int64(int64(st.loc))
		e.Bool(st.locOpen)
		e.Int64(int64(st.locVs))
		e.Int64(int64(st.lastKnown))
		e.Uint64(uint64(st.parent))
		e.Int64(int64(st.parentVs))
		e.Bool(st.missing)
	}
}

func decodeStates(d *checkpoint.Decoder) (map[model.Tag]*objState, error) {
	n := d.Count(stateEncSize)
	states := make(map[model.Tag]*objState, n)
	for i := 0; i < n; i++ {
		t := model.Tag(d.Uint64())
		st := &objState{
			level:     model.Level(d.Uint8()),
			loc:       model.LocationID(d.Int64()),
			locOpen:   d.Bool(),
			locVs:     model.Epoch(d.Int64()),
			lastKnown: model.LocationID(d.Int64()),
			parent:    model.Tag(d.Uint64()),
			parentVs:  model.Epoch(d.Int64()),
			missing:   d.Bool(),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if t == model.NoTag {
			return nil, fmt.Errorf("%w: compressor state %d has zero tag", checkpoint.ErrCorrupt, i)
		}
		if _, dup := states[t]; dup {
			return nil, fmt.Errorf("%w: duplicate compressor state for tag %d", checkpoint.ErrCorrupt, t)
		}
		states[t] = st
	}
	return states, d.Err()
}

// EncodeState appends the level-1 compressor's open-interval state to e.
func (c *Level1) EncodeState(e *checkpoint.Encoder) {
	e.Section(sectionLevel1)
	encodeStates(e, c.states)
}

// DecodeLevel1 reconstructs a level-1 compressor from d. levelOf is
// configuration and comes from the caller, as in NewLevel1.
func DecodeLevel1(d *checkpoint.Decoder, levelOf LevelFunc) (*Level1, error) {
	d.Section(sectionLevel1)
	states, err := decodeStates(d)
	if err != nil {
		return nil, err
	}
	return &Level1{levelOf: levelOf, states: states}, nil
}

// EncodeState appends the level-2 compressor's open-interval state to e.
func (c *Level2) EncodeState(e *checkpoint.Encoder) {
	e.Section(sectionLevel2)
	encodeStates(e, c.states)
}

// DecodeLevel2 reconstructs a level-2 compressor from d.
func DecodeLevel2(d *checkpoint.Decoder, levelOf LevelFunc) (*Level2, error) {
	d.Section(sectionLevel2)
	states, err := decodeStates(d)
	if err != nil {
		return nil, err
	}
	return &Level2{levelOf: levelOf, states: states}, nil
}
