package compress

import (
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/trace"
)

// Level1 is the range compressor (§V-B): it compares each object's newly
// inferred state with its previously reported state and emits events only
// on change. Location and containment are compressed independently, so the
// output can be split into two self-contained streams.
type Level1 struct {
	levelOf LevelFunc
	states  map[model.Tag]*objState
	rec     *trace.Recorder
}

// NewLevel1 creates a range compressor.
func NewLevel1(levelOf LevelFunc) *Level1 {
	return &Level1{levelOf: levelOf, states: make(map[model.Tag]*objState)}
}

func (c *Level1) state(obj model.Tag) *objState {
	st, ok := c.states[obj]
	if !ok {
		st = &objState{
			level:     c.levelOf(obj),
			loc:       model.LocationNone,
			lastKnown: model.LocationNone,
			parent:    model.NoTag,
		}
		c.states[obj] = st
	}
	return st
}

// Compress turns one epoch's inference result into output events. Objects
// absent from the result (withheld under partial inference) keep their
// previously reported state and produce nothing.
func (c *Level1) Compress(res *inference.Result) []event.Event {
	var ems []emission
	now := res.Now
	for _, obj := range sortedTags(res) {
		st := c.state(obj)

		// Containment stream.
		if newParent, ok := res.Parents[obj]; ok {
			st.compressContainment(obj, newParent, now, &ems)
		}

		// Location stream.
		loc := res.Locations[obj]
		switch {
		case loc.Known():
			st.missing = false
			if !st.locOpen || st.loc != loc {
				st.closeLocation(obj, now, &ems)
				st.openLocation(obj, loc, now, &ems)
			}
		default: // model.LocationUnknown: away from every known location
			st.goMissing(obj, now, &ems)
		}
	}
	return finish(ems)
}

// Retire closes the open pairs of an object that exited the physical
// world through a proper channel and forgets its state.
func (c *Level1) Retire(obj model.Tag, now model.Epoch) []event.Event {
	st, ok := c.states[obj]
	if !ok {
		return nil
	}
	var ems []emission
	st.compressContainment(obj, model.NoTag, now, &ems)
	st.closeLocation(obj, now, &ems)
	delete(c.states, obj)
	return finish(ems)
}

// Close ends every open pair at epoch now, yielding a closed well-formed
// stream at the end of a run.
func (c *Level1) Close(now model.Epoch) []event.Event {
	var ems []emission
	for obj, st := range c.states {
		st.compressContainment(obj, model.NoTag, now, &ems)
		st.closeLocation(obj, now, &ems)
	}
	c.states = make(map[model.Tag]*objState)
	return finish(ems)
}
