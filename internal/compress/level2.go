package compress

import (
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/trace"
)

// Level2 is the containment-based location compressor (§V-C). Containment
// output is identical to level 1, but while an object has a reported
// container its location updates are suppressed: the object's location is
// recoverable from its container's, so only top-level containers emit
// location events. When a containment starts, the child's open location
// pair is closed; when it ends, a fresh pair opens at the child's current
// location.
type Level2 struct {
	levelOf LevelFunc
	states  map[model.Tag]*objState
	rec     *trace.Recorder
}

// NewLevel2 creates a containment-based compressor.
func NewLevel2(levelOf LevelFunc) *Level2 {
	return &Level2{levelOf: levelOf, states: make(map[model.Tag]*objState)}
}

func (c *Level2) state(obj model.Tag) *objState {
	st, ok := c.states[obj]
	if !ok {
		st = &objState{
			level:     c.levelOf(obj),
			loc:       model.LocationNone,
			lastKnown: model.LocationNone,
			parent:    model.NoTag,
		}
		c.states[obj] = st
	}
	return st
}

// Compress turns one epoch's inference result into level-2 output events.
func (c *Level2) Compress(res *inference.Result) []event.Event {
	var ems []emission
	now := res.Now
	for _, obj := range sortedTags(res) {
		st := c.state(obj)

		contained := st.parent != model.NoTag
		if newParent, ok := res.Parents[obj]; ok {
			st.compressContainment(obj, newParent, now, &ems)
			nowContained := newParent != model.NoTag
			if nowContained && !contained {
				// Containment starts: close the child's own pair — from
				// here its location rides on the container's reports.
				st.closeLocation(obj, now, &ems)
			}
			contained = nowContained
		}

		loc := res.Locations[obj]
		if contained {
			// Location suppressed; remember the child's virtual location
			// so a later containment end can reopen the pair correctly.
			// A disappearance is latched here too: the container's own
			// Missing message covers the whole group, so the child must
			// not re-report it if detached while still missing.
			if loc.Known() {
				st.lastKnown = loc
				st.missing = false
			} else {
				st.missing = true
			}
			if c.rec != nil && c.rec.Traces(obj) {
				rloc := loc
				if !loc.Known() {
					rloc = st.lastKnown
				}
				c.rec.Record(trace.Record{
					Epoch: now, Tag: obj, Mech: trace.MechSuppressed,
					Loc: rloc, Other: st.parent,
				})
			}
			continue
		}
		switch {
		case loc.Known():
			st.missing = false
			if !st.locOpen || st.loc != loc {
				st.closeLocation(obj, now, &ems)
				st.openLocation(obj, loc, now, &ems)
			}
		default:
			st.goMissing(obj, now, &ems)
		}
	}
	return finish(ems)
}

// Retire closes the open pairs of an exiting object and forgets it. A
// still-contained object has no open location pair of its own; its stay
// was implied by the container. To let a decompressor close the implied
// pair at the exit epoch, Retire emits a zero-length Start/End location
// pair at the object's last known (virtual) location — the stream stays
// well-formed on its own, and decompression rewrites the pair's start back
// to its true beginning.
func (c *Level2) Retire(obj model.Tag, now model.Epoch) []event.Event {
	st, ok := c.states[obj]
	if !ok {
		return nil
	}
	wasContained := st.parent != model.NoTag
	var ems []emission
	st.compressContainment(obj, model.NoTag, now, &ems)
	out := finish(ems)
	if wasContained && !st.missing && st.lastKnown.Known() {
		out = append(out,
			event.NewStartLocation(obj, st.lastKnown, now),
			event.NewEndLocation(obj, st.lastKnown, now, now))
	} else if st.locOpen {
		out = append(out, event.NewEndLocation(obj, st.loc, st.locVs, now))
	}
	delete(c.states, obj)
	return out
}

// Close ends every open pair at epoch now.
func (c *Level2) Close(now model.Epoch) []event.Event {
	var ems []emission
	for obj, st := range c.states {
		st.compressContainment(obj, model.NoTag, now, &ems)
		st.closeLocation(obj, now, &ems)
	}
	c.states = make(map[model.Tag]*objState)
	return finish(ems)
}
