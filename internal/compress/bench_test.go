package compress

import (
	"testing"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

// benchResults synthesizes a cycle of inference results over nObjects:
// mostly stationary epochs with a rolling 5% of objects moving, the
// workload profile compression exists for.
func benchResults(nObjects int, epochs int) []*inference.Result {
	out := make([]*inference.Result, 0, epochs)
	locs := make([]model.LocationID, nObjects)
	for e := 0; e < epochs; e++ {
		r := &inference.Result{
			Now:       model.Epoch(e + 1),
			Locations: make(map[model.Tag]model.LocationID, nObjects),
			Parents:   make(map[model.Tag]model.Tag, nObjects),
			Observed:  map[model.Tag]bool{},
		}
		for i := 0; i < nObjects; i++ {
			if (i+e)%20 == 0 {
				locs[i] = (locs[i] + 1) % 4
			}
			g := model.Tag(i + 1)
			r.Locations[g] = locs[i]
			r.Parents[g] = model.NoTag
			if i%21 != 0 { // every 21st object is a "case"
				parent := model.Tag(i/21*21 + 1)
				if parent != g {
					r.Parents[g] = parent
					r.Locations[g] = locs[i/21*21]
				}
			}
		}
		out = append(out, r)
	}
	return out
}

func levelOfBench(g model.Tag) model.Level {
	if int(g-1)%21 == 0 {
		return model.LevelCase
	}
	return model.LevelItem
}

func BenchmarkLevel1Compress(b *testing.B) {
	results := benchResults(2000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewLevel1(levelOfBench)
		for _, r := range results {
			c.Compress(r)
		}
	}
	b.ReportMetric(float64(2000*16)/float64(16), "objects/epoch")
}

func BenchmarkLevel2Compress(b *testing.B) {
	results := benchResults(2000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewLevel2(levelOfBench)
		for _, r := range results {
			c.Compress(r)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	results := benchResults(2000, 16)
	c := NewLevel2(levelOfBench)
	var batches [][]event.Event
	for _, r := range results {
		batches = append(batches, c.Compress(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecompressor()
		for _, batch := range batches {
			if _, err := d.Step(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
}
