package compress

import (
	"os"
	"strconv"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

// TestDebugDivergence replays seeds and, for a chosen object, prints the
// level-1, level-2, and decompressed events side by side. Run with -v.
func TestDebugDivergence(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	seed := int64(0)
	if s := os.Getenv("DBG_SEED"); s != "" {
		v, _ := strconv.ParseInt(s, 10, 64)
		seed = v
	}
	const obj = model.Tag(0) // 0 = report first diverging object

	w := newGenWorld(seed)
	l1c := NewLevel1(levelOfT)
	l2c := NewLevel2(levelOfT)
	d := NewDecompressor()
	type rec struct {
		epoch model.Epoch
		src   string
		ev    event.Event
	}
	var log []rec
	var l1all, decall []event.Event
	add := func(now model.Epoch, src string, evs []event.Event) {
		for _, e := range evs {
			log = append(log, rec{now, src, e})
		}
	}
	const epochs = 120
	for now := model.Epoch(1); now <= epochs; now++ {
		res, retire := w.step(now)
		e1 := l1c.Compress(res)
		e2 := l2c.Compress(res)
		dec, err := d.Step(e2)
		if err != nil {
			t.Fatal(err)
		}
		add(now, "L1 ", e1)
		add(now, "L2 ", e2)
		add(now, "DEC", dec)
		l1all = append(l1all, e1...)
		decall = append(decall, dec...)
		for _, g := range retire {
			r1 := l1c.Retire(g, now)
			r2 := l2c.Retire(g, now)
			dec, err := d.Step(r2)
			if err != nil {
				t.Fatal(err)
			}
			add(now, "L1r", r1)
			add(now, "L2r", r2)
			add(now, "DECr", dec)
			l1all = append(l1all, r1...)
			decall = append(decall, dec...)
		}
	}
	// Find first diverging object by location substream.
	perObj := func(evs []event.Event) map[model.Tag][]event.Event {
		m := make(map[model.Tag][]event.Event)
		for _, e := range evs {
			if !e.Kind.Containment() {
				m[e.Object] = append(m[e.Object], e)
			}
		}
		return m
	}
	target := obj
	if target == 0 {
		gm, wm := perObj(decall), perObj(l1all)
		for _, g := range []model.Tag{100, 101, 200, 201, 202, 203, 300, 301, 302, 303, 304, 305, 306, 307} {
			gs, ws := gm[g], wm[g]
			same := len(gs) == len(ws)
			if same {
				for i := range ws {
					if gs[i] != ws[i] {
						same = false
						break
					}
				}
			}
			if !same {
				target = g
				break
			}
		}
	}
	if target == 0 {
		t.Log("no divergence at this seed")
		return
	}
	t.Logf("diverging object: %d", target)
	for _, r := range log {
		if r.ev.Object == target || r.ev.Container == target || (r.ev.Kind.Containment() && d.parents[r.ev.Object] == target) {
			t.Logf("e%03d %s %v", r.epoch, r.src, r.ev)
		}
	}
}
