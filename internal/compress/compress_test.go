package compress

import (
	"testing"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

// Fixture tags with fixed levels; levelOfT resolves them without the EPC
// codec so tests stay readable.
const (
	tP  = model.Tag(100) // pallet
	tP2 = model.Tag(101) // pallet
	tC1 = model.Tag(200) // case
	tC2 = model.Tag(201) // case
	tI1 = model.Tag(300) // item
	tI2 = model.Tag(301) // item
)

func levelOfT(g model.Tag) model.Level {
	switch {
	case g >= 300:
		return model.LevelItem
	case g >= 200:
		return model.LevelCase
	default:
		return model.LevelPallet
	}
}

const (
	l1 = model.LocationID(0)
	l2 = model.LocationID(1)
	l3 = model.LocationID(2)
	l4 = model.LocationID(3)
)

func res(now model.Epoch, locs map[model.Tag]model.LocationID, parents map[model.Tag]model.Tag) *inference.Result {
	r := &inference.Result{
		Now:       now,
		Locations: locs,
		Parents:   make(map[model.Tag]model.Tag, len(locs)),
		Observed:  map[model.Tag]bool{},
	}
	for t := range locs {
		r.Parents[t] = model.NoTag
	}
	for t, p := range parents {
		r.Parents[t] = p
	}
	return r
}

func wantEvents(t *testing.T, got, want []event.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d:\ngot:  %v\nwant: %v", i, got[i], want[i])
		}
	}
}

func TestLevel1StationaryObjectEmitsOnce(t *testing.T) {
	c := NewLevel1(levelOfT)
	out := c.Compress(res(1, map[model.Tag]model.LocationID{tI1: l1}, nil))
	wantEvents(t, out, []event.Event{event.NewStartLocation(tI1, l1, 1)})
	for e := model.Epoch(2); e <= 10; e++ {
		if out := c.Compress(res(e, map[model.Tag]model.LocationID{tI1: l1}, nil)); len(out) != 0 {
			t.Fatalf("epoch %d: stationary object emitted %v", e, out)
		}
	}
	out = c.Compress(res(11, map[model.Tag]model.LocationID{tI1: l2}, nil))
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tI1, l1, 1, 11),
		event.NewStartLocation(tI1, l2, 11),
	})
}

func TestLevel1MissingAndReappear(t *testing.T) {
	c := NewLevel1(levelOfT)
	c.Compress(res(1, map[model.Tag]model.LocationID{tI1: l1}, nil))
	out := c.Compress(res(2, map[model.Tag]model.LocationID{tI1: model.LocationUnknown}, nil))
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tI1, l1, 1, 2),
		event.NewMissing(tI1, l1, 2),
	})
	// Still missing: the Missing message is a singleton, not repeated.
	out = c.Compress(res(3, map[model.Tag]model.LocationID{tI1: model.LocationUnknown}, nil))
	if len(out) != 0 {
		t.Fatalf("repeated missing emitted %v", out)
	}
	out = c.Compress(res(4, map[model.Tag]model.LocationID{tI1: l2}, nil))
	wantEvents(t, out, []event.Event{event.NewStartLocation(tI1, l2, 4)})
	// Disappearing again yields another Missing, now from l2.
	out = c.Compress(res(5, map[model.Tag]model.LocationID{tI1: model.LocationUnknown}, nil))
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tI1, l2, 4, 5),
		event.NewMissing(tI1, l2, 5),
	})
}

func TestLevel1ContainmentRange(t *testing.T) {
	c := NewLevel1(levelOfT)
	locs := map[model.Tag]model.LocationID{tC1: l1, tP: l1}
	out := c.Compress(res(1, locs, map[model.Tag]model.Tag{tC1: tP}))
	wantEvents(t, out, []event.Event{
		event.NewStartContainment(tC1, tP, 1),
		event.NewStartLocation(tP, l1, 1),
		event.NewStartLocation(tC1, l1, 1),
	})
	// Stable containment: nothing.
	if out := c.Compress(res(2, locs, map[model.Tag]model.Tag{tC1: tP})); len(out) != 0 {
		t.Fatalf("stable containment emitted %v", out)
	}
	// Container switch: End then Start, containment phase first.
	locs2 := map[model.Tag]model.LocationID{tC1: l1, tP: l1, tP2: l1}
	out = c.Compress(res(3, locs2, map[model.Tag]model.Tag{tC1: tP2}))
	wantEvents(t, out, []event.Event{
		event.NewEndContainment(tC1, tP, 1, 3),
		event.NewStartContainment(tC1, tP2, 3),
		event.NewStartLocation(tP2, l1, 3),
	})
}

func TestLevel1WithheldObjectUntouched(t *testing.T) {
	c := NewLevel1(levelOfT)
	c.Compress(res(1, map[model.Tag]model.LocationID{tI1: l1}, nil))
	// Epoch 2's result omits tI1 entirely (partial inference withheld it).
	if out := c.Compress(res(2, map[model.Tag]model.LocationID{tI2: l2}, nil)); len(out) != 1 {
		t.Fatalf("unexpected output %v", out)
	}
	// Epoch 3 re-reports the same location: still nothing for tI1.
	if out := c.Compress(res(3, map[model.Tag]model.LocationID{tI1: l1}, nil)); len(out) != 0 {
		t.Fatalf("withheld object state lost: %v", out)
	}
}

func TestLevel1RetireAndClose(t *testing.T) {
	c := NewLevel1(levelOfT)
	c.Compress(res(1, map[model.Tag]model.LocationID{tC1: l1, tP: l1, tI1: l1},
		map[model.Tag]model.Tag{tC1: tP}))
	out := c.Retire(tC1, 5)
	wantEvents(t, out, []event.Event{
		event.NewEndContainment(tC1, tP, 1, 5),
		event.NewEndLocation(tC1, l1, 1, 5),
	})
	if out := c.Retire(tC1, 6); out != nil {
		t.Fatalf("double retire emitted %v", out)
	}
	out = c.Close(9)
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tP, l1, 1, 9),
		event.NewEndLocation(tI1, l1, 1, 9),
	})
}

// TestLevel2Fig8 replays the paper's Fig. 8 scenario and checks the exact
// level-2 output at each step.
func TestLevel2Fig8(t *testing.T) {
	c := NewLevel2(levelOfT)

	// T1: pallet P with cases C1, C2 at L1.
	out := c.Compress(res(1,
		map[model.Tag]model.LocationID{tP: l1, tC1: l1, tC2: l1},
		map[model.Tag]model.Tag{tC1: tP, tC2: tP}))
	wantEvents(t, out, []event.Event{
		event.NewStartContainment(tC1, tP, 1),
		event.NewStartContainment(tC2, tP, 1),
		event.NewStartLocation(tP, l1, 1),
	})

	// T2: the group moves to L2; only the pallet's location is updated.
	out = c.Compress(res(2,
		map[model.Tag]model.LocationID{tP: l2, tC1: l2, tC2: l2},
		map[model.Tag]model.Tag{tC1: tP, tC2: tP}))
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tP, l1, 1, 2),
		event.NewStartLocation(tP, l2, 2),
	})

	// T3: the group splits — P and C1 move to L3, C2 stays at L2 and
	// leaves the pallet.
	out = c.Compress(res(3,
		map[model.Tag]model.LocationID{tP: l3, tC1: l3, tC2: l2},
		map[model.Tag]model.Tag{tC1: tP}))
	wantEvents(t, out, []event.Event{
		event.NewEndContainment(tC2, tP, 1, 3),
		event.NewEndLocation(tP, l2, 2, 3),
		event.NewStartLocation(tP, l3, 3),
		event.NewStartLocation(tC2, l2, 3),
	})

	// T4: C2 moves alone to L4; its location updates are no longer
	// suppressed.
	out = c.Compress(res(4,
		map[model.Tag]model.LocationID{tP: l3, tC1: l3, tC2: l4},
		map[model.Tag]model.Tag{tC1: tP}))
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tC2, l2, 3, 4),
		event.NewStartLocation(tC2, l4, 4),
	})
}

func TestLevel2SuppressesContainedLocations(t *testing.T) {
	c := NewLevel2(levelOfT)
	// An uncontained item with an open pair becomes contained: its pair
	// closes and subsequent moves emit nothing for it.
	c.Compress(res(1, map[model.Tag]model.LocationID{tI1: l1, tC1: l1}, nil))
	out := c.Compress(res(2, map[model.Tag]model.LocationID{tI1: l1, tC1: l1},
		map[model.Tag]model.Tag{tI1: tC1}))
	wantEvents(t, out, []event.Event{
		event.NewStartContainment(tI1, tC1, 2),
		event.NewEndLocation(tI1, l1, 1, 2),
	})
	out = c.Compress(res(3, map[model.Tag]model.LocationID{tI1: l2, tC1: l2},
		map[model.Tag]model.Tag{tI1: tC1}))
	wantEvents(t, out, []event.Event{
		event.NewEndLocation(tC1, l1, 1, 3),
		event.NewStartLocation(tC1, l2, 3),
	})
}

func TestLevel2ContainerSwitchKeepsSuppression(t *testing.T) {
	// An item re-packed directly from one case to another emits only the
	// containment switch — its location stays suppressed throughout, and
	// the decompressor keeps its reconstructed pair continuous.
	l2c := NewLevel2(levelOfT)
	d := NewDecompressor()
	var dec []event.Event
	feed := func(r *inference.Result) {
		out, err := d.Step(l2c.Compress(r))
		if err != nil {
			t.Fatal(err)
		}
		dec = append(dec, out...)
	}
	feed(res(1, map[model.Tag]model.LocationID{tC1: l1, tC2: l1, tI1: l1},
		map[model.Tag]model.Tag{tI1: tC1}))
	feed(res(2, map[model.Tag]model.LocationID{tC1: l1, tC2: l1, tI1: l1},
		map[model.Tag]model.Tag{tI1: tC2})) // switch containers in place
	feed(res(3, map[model.Tag]model.LocationID{tC1: l1, tC2: l2, tI1: l2},
		map[model.Tag]model.Tag{tI1: tC2})) // move with the new container

	var stays []event.Event
	for _, e := range dec {
		if e.Object == tI1 && !e.Kind.Containment() {
			stays = append(stays, e)
		}
	}
	want := []event.Event{
		event.NewStartLocation(tI1, l1, 1),
		event.NewEndLocation(tI1, l1, 1, 3),
		event.NewStartLocation(tI1, l2, 3),
	}
	if len(stays) != len(want) {
		t.Fatalf("item location events = %v, want %v", stays, want)
	}
	for i := range want {
		if stays[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, stays[i], want[i])
		}
	}
}

// TestDecompressorFig8 checks that decompressing the level-2 stream of the
// Fig. 8 scenario yields exactly the level-1 stream.
func TestDecompressorFig8(t *testing.T) {
	l1c := NewLevel1(levelOfT)
	l2c := NewLevel2(levelOfT)
	d := NewDecompressor()

	steps := []*inference.Result{
		res(1, map[model.Tag]model.LocationID{tP: l1, tC1: l1, tC2: l1},
			map[model.Tag]model.Tag{tC1: tP, tC2: tP}),
		res(2, map[model.Tag]model.LocationID{tP: l2, tC1: l2, tC2: l2},
			map[model.Tag]model.Tag{tC1: tP, tC2: tP}),
		res(3, map[model.Tag]model.LocationID{tP: l3, tC1: l3, tC2: l2},
			map[model.Tag]model.Tag{tC1: tP}),
		res(4, map[model.Tag]model.LocationID{tP: l3, tC1: l3, tC2: l4},
			map[model.Tag]model.Tag{tC1: tP}),
	}
	var want, got []event.Event
	for _, r := range steps {
		want = append(want, l1c.Compress(r)...)
		dec, err := d.Step(l2c.Compress(r))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dec...)
	}
	if err := event.CheckWellFormed(got, false); err != nil {
		t.Fatalf("decompressed stream malformed: %v", err)
	}
	compareByObject(t, got, want)
}

func TestDecompressorSegmentsMixedBatch(t *testing.T) {
	// A batch may concatenate several Compress/Retire outputs; containment
	// events after location events open a new segment. Here the pallet's
	// location arrives first, then a second segment attaches the case,
	// whose alignment must still see the pallet's pair.
	d := NewDecompressor()
	batch := []event.Event{
		event.NewStartLocation(tP, l1, 1),
		event.NewStartContainment(tC1, tP, 1),
	}
	out, err := d.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents(t, out, []event.Event{
		event.NewStartLocation(tP, l1, 1),
		event.NewStartContainment(tC1, tP, 1),
		event.NewStartLocation(tC1, l1, 1),
	})
}

func TestDecompressorAlignsLateJoiner(t *testing.T) {
	// A new object joins a stationary container: level-2 emits only the
	// StartContainment, and the decompressor must synthesize the child's
	// StartLocation from the container's open pair.
	d := NewDecompressor()
	if _, err := d.Step([]event.Event{
		event.NewStartLocation(tP, l1, 1),
	}); err != nil {
		t.Fatal(err)
	}
	out, err := d.Step([]event.Event{event.NewStartContainment(tC1, tP, 5)})
	if err != nil {
		t.Fatal(err)
	}
	wantEvents(t, out, []event.Event{
		event.NewStartContainment(tC1, tP, 5),
		event.NewStartLocation(tC1, l1, 5),
	})
}

// compareByObject compares the location sub-streams of two event streams
// object by object, and the containment sub-streams as exact sequences.
func compareByObject(t *testing.T, got, want []event.Event) {
	t.Helper()
	gl, gc := event.SplitStreams(got)
	wl, wc := event.SplitStreams(want)
	if len(gc) != len(wc) {
		t.Fatalf("containment events: got %d, want %d\ngot:  %v\nwant: %v", len(gc), len(wc), gc, wc)
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Errorf("containment event %d: got %v, want %v", i, gc[i], wc[i])
		}
	}
	perObj := func(evs []event.Event) map[model.Tag][]event.Event {
		m := make(map[model.Tag][]event.Event)
		for _, e := range evs {
			m[e.Object] = append(m[e.Object], e)
		}
		return m
	}
	gm, wm := perObj(gl), perObj(wl)
	for obj, ws := range wm {
		gs := gm[obj]
		if len(gs) != len(ws) {
			t.Errorf("object %d: got %d location events, want %d\ngot:  %v\nwant: %v",
				obj, len(gs), len(ws), gs, ws)
			continue
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Errorf("object %d event %d: got %v, want %v", obj, i, gs[i], ws[i])
			}
		}
	}
	for obj := range gm {
		if _, ok := wm[obj]; !ok {
			t.Errorf("object %d: unexpected location events %v", obj, gm[obj])
		}
	}
}
