package compress

import (
	"math/rand"
	"sort"
	"testing"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

// genWorldImpl evolves a random containment forest with inherited
// locations — the invariant conflict resolution guarantees (a contained
// object is always reported at its container's location) — and
// occasionally retires whole top-level groups, mirroring proper warehouse
// exits.
func newGenWorld(seed int64) *genWorldImpl {
	w := &genWorldImpl{
		rng:     rand.New(rand.NewSource(seed)),
		parent:  make(map[model.Tag]model.Tag),
		rootLoc: make(map[model.Tag]model.LocationID),
		retired: make(map[model.Tag]bool),
	}
	// 2 pallets, 4 cases, 8 items (tag ranges per levelOfT).
	w.tags = []model.Tag{100, 101, 200, 201, 202, 203, 300, 301, 302, 303, 304, 305, 306, 307}
	for _, g := range w.tags {
		w.rootLoc[g] = model.LocationID(w.rng.Intn(4))
	}
	return w
}

type genWorldImpl struct {
	rng     *rand.Rand
	tags    []model.Tag
	parent  map[model.Tag]model.Tag
	rootLoc map[model.Tag]model.LocationID
	retired map[model.Tag]bool
}

func (w *genWorldImpl) root(g model.Tag) model.Tag {
	for {
		p, ok := w.parent[g]
		if !ok {
			return g
		}
		g = p
	}
}

func (w *genWorldImpl) locOf(g model.Tag) model.LocationID {
	return w.rootLoc[w.root(g)]
}

// step mutates the world for one epoch and returns the inference result
// plus the tags retired this epoch (in retirement order: containers
// first).
func (w *genWorldImpl) step(now model.Epoch) (*inference.Result, []model.Tag) {
	// Root movement / disappearance / reappearance first, so containment
	// churn (and its Known-location constraint) sees this epoch's
	// locations — conflict resolution never attaches an object into the
	// "unknown" location.
	roots := make([]model.Tag, 0, len(w.rootLoc))
	for g := range w.rootLoc {
		roots = append(roots, g)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, g := range roots {
		if w.retired[g] {
			continue
		}
		loc := w.rootLoc[g]
		r := w.rng.Float64()
		switch {
		case r < 0.15:
			w.rootLoc[g] = model.LocationID(w.rng.Intn(4))
		case r < 0.20:
			w.rootLoc[g] = model.LocationUnknown
		case r < 0.25 && loc == model.LocationUnknown:
			w.rootLoc[g] = model.LocationID(w.rng.Intn(4))
		}
	}
	// Containment churn.
	for i := 0; i < 2; i++ {
		g := w.tags[w.rng.Intn(len(w.tags))]
		if w.retired[g] || levelOfT(g) == model.LevelPallet {
			continue
		}
		if _, has := w.parent[g]; has && w.rng.Float64() < 0.5 {
			loc := w.locOf(g) // inherited location at detach time
			delete(w.parent, g)
			w.rootLoc[g] = loc
			continue
		}
		if !w.locOf(g).Known() {
			continue // a missing object cannot be observed joining a group
		}
		cands := w.candidates(g)
		if len(cands) > 0 {
			p := cands[w.rng.Intn(len(cands))]
			w.parent[g] = p
			delete(w.rootLoc, g)
		}
	}
	// Occasional retirement of one whole top-level group.
	var retire []model.Tag
	if w.rng.Float64() < 0.03 {
		root := w.tags[w.rng.Intn(len(w.tags))]
		root = w.root(root)
		if !w.retired[root] {
			group := []model.Tag{root}
			for _, g := range w.tags {
				if g != root && !w.retired[g] && w.root(g) == root {
					group = append(group, g)
				}
			}
			sort.Slice(group, func(i, j int) bool {
				li, lj := levelOfT(group[i]), levelOfT(group[j])
				if li != lj {
					return li > lj
				}
				return group[i] < group[j]
			})
			for _, g := range group {
				w.retired[g] = true
				delete(w.parent, g)
				delete(w.rootLoc, g)
			}
			retire = group
		}
	}

	r := &inference.Result{
		Now:       now,
		Locations: make(map[model.Tag]model.LocationID),
		Parents:   make(map[model.Tag]model.Tag),
		Observed:  map[model.Tag]bool{},
	}
	for _, g := range w.tags {
		if w.retired[g] {
			continue
		}
		r.Locations[g] = w.locOf(g)
		if p, ok := w.parent[g]; ok {
			r.Parents[g] = p
		} else {
			r.Parents[g] = model.NoTag
		}
	}
	return r, retire
}

func (w *genWorldImpl) locOfAfterDetach(g model.Tag) model.LocationID {
	return w.locOf(g) // still attached at call time
}

func (w *genWorldImpl) candidates(g model.Tag) []model.Tag {
	var out []model.Tag
	for _, p := range w.tags {
		if w.retired[p] || levelOfT(p) <= levelOfT(g) {
			continue
		}
		if !w.locOf(p).Known() {
			continue
		}
		// No cycles possible since parents are strictly higher-level.
		out = append(out, p)
	}
	return out
}

// TestRandomizedLevel2Equivalence drives both compressors with hundreds of
// random state sequences and checks that (a) all three streams are
// well-formed, (b) decompressing level 2 reproduces level 1 exactly, and
// (c) the level-2 stream is never larger than the level-1 stream.
func TestRandomizedLevel2Equivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		w := newGenWorld(seed)
		l1c := NewLevel1(levelOfT)
		l2c := NewLevel2(levelOfT)
		d := NewDecompressor()
		var l1all, l2all, decall []event.Event

		const epochs = 120
		for now := model.Epoch(1); now <= epochs; now++ {
			res, retire := w.step(now)
			e1 := l1c.Compress(res)
			e2 := l2c.Compress(res)
			dec, err := d.Step(e2)
			if err != nil {
				t.Fatalf("seed %d epoch %d: %v", seed, now, err)
			}
			l1all = append(l1all, e1...)
			l2all = append(l2all, e2...)
			decall = append(decall, dec...)
			for _, g := range retire {
				r1 := l1c.Retire(g, now)
				r2 := l2c.Retire(g, now)
				dec, err := d.Step(r2)
				if err != nil {
					t.Fatalf("seed %d epoch %d retire: %v", seed, now, err)
				}
				l1all = append(l1all, r1...)
				l2all = append(l2all, r2...)
				decall = append(decall, dec...)
			}
		}
		c1 := l1c.Close(epochs + 1)
		c2 := l2c.Close(epochs + 1)
		dec, err := d.Step(c2)
		if err != nil {
			t.Fatalf("seed %d close: %v", seed, err)
		}
		l1all = append(l1all, c1...)
		l2all = append(l2all, c2...)
		decall = append(decall, dec...)
		decall = append(decall, d.Close(epochs+1)...)

		if err := event.CheckWellFormed(l1all, true); err != nil {
			t.Fatalf("seed %d: level-1 stream: %v", seed, err)
		}
		if err := event.CheckWellFormed(l2all, true); err != nil {
			t.Fatalf("seed %d: level-2 stream: %v", seed, err)
		}
		if err := event.CheckWellFormed(decall, true); err != nil {
			t.Fatalf("seed %d: decompressed stream: %v", seed, err)
		}
		if event.StreamSize(l2all) > event.StreamSize(l1all) {
			t.Errorf("seed %d: level-2 stream (%d B) larger than level-1 (%d B)",
				seed, event.StreamSize(l2all), event.StreamSize(l1all))
		}
		compareByObject(t, decall, l1all)
	}
}
