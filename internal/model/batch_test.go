package model

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	o := NewObservation(42)
	o.Add(3, 100)
	o.Add(3, 101)
	o.Add(1, 200)
	o.ByReader[7] = []Tag{} // active reader that read nothing

	var b Batch
	b.FromObservation(o)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.Time != 42 || b.Total() != 3 {
		t.Fatalf("Time=%d Total=%d, want 42/3", b.Time, b.Total())
	}
	got := b.Observation()
	if !reflect.DeepEqual(got, o) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, o)
	}
	// The empty group must survive as a non-nil empty slice.
	tags, ok := got.ByReader[7]
	if !ok || tags == nil || len(tags) != 0 {
		t.Fatalf("empty reader entry lost: %v (ok=%v)", tags, ok)
	}
}

func TestBatchGroupsAscending(t *testing.T) {
	o := NewObservation(1)
	for r := ReaderID(20); r >= 1; r-- {
		o.Add(r, Tag(r)*10)
	}
	var b Batch
	b.FromObservation(o)
	for i := 1; i < len(b.Groups); i++ {
		if b.Groups[i-1].Reader >= b.Groups[i].Reader {
			t.Fatalf("groups not ascending at %d: %v", i, b.Groups)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBatchBuilderAPI(t *testing.T) {
	var b Batch
	b.Reset(9)
	b.BeginReader(1)
	b.Append(11)
	b.Append(12)
	b.BeginReader(4) // empty group
	b.BeginReader(5)
	b.Append(13)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := b.GroupTags(0); !reflect.DeepEqual(got, []Tag{11, 12}) {
		t.Fatalf("group 0 tags = %v", got)
	}
	if b.Groups[1].Len() != 0 {
		t.Fatalf("group 1 should be empty")
	}
	want := []Reading{
		{Tag: 11, Reader: 1, Time: 9},
		{Tag: 12, Reader: 1, Time: 9},
		{Tag: 13, Reader: 5, Time: 9},
	}
	if got := b.Readings(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Readings = %v, want %v", got, want)
	}
	c := b.Clone()
	b.Reset(10)
	if c.Time != 9 || c.Total() != 3 {
		t.Fatalf("clone mutated by Reset: %+v", c)
	}
}

func TestBatchValidateRejects(t *testing.T) {
	bad := []Batch{
		{Groups: []ReaderGroup{{Reader: 2}, {Reader: 1}}},
		{Groups: []ReaderGroup{{Reader: 1, Start: 1, End: 1}}},
		{Groups: []ReaderGroup{{Reader: 1, Start: 0, End: 2}}, Tags: []Tag{1}},
		{Tags: []Tag{1}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid batch %+v", i, b)
		}
	}
}

func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b Batch
	for trial := 0; trial < 200; trial++ {
		o := NewObservation(Epoch(trial))
		nr := rng.Intn(8)
		for i := 0; i < nr; i++ {
			r := ReaderID(1 + rng.Intn(12))
			if _, ok := o.ByReader[r]; ok {
				continue
			}
			nt := rng.Intn(5)
			tags := make([]Tag, 0, nt)
			for j := 0; j < nt; j++ {
				tags = append(tags, Tag(1+rng.Intn(30)))
			}
			o.ByReader[r] = tags
		}
		b.FromObservation(o)
		if err := b.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v", trial, err)
		}
		got := b.Observation()
		if got.Time != o.Time || len(got.ByReader) != len(o.ByReader) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for r, tags := range o.ByReader {
			if !reflect.DeepEqual(got.ByReader[r], tags) {
				t.Fatalf("trial %d reader %d: %v != %v", trial, r, got.ByReader[r], tags)
			}
		}
		// Reading order must match Observation.Readings exactly.
		if !reflect.DeepEqual(b.Readings(), o.Readings()) {
			t.Fatalf("trial %d: reading order diverged", trial)
		}
	}
}
