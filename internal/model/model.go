// Package model defines the vocabulary of the SPIRE system: RFID tags,
// packaging levels, locations, epochs, readings, and the state of the
// physical world (the "ground truth" of the paper's Section II).
//
// All other packages are written in terms of these types. The model is
// deliberately small and allocation-free where possible: a Tag is a 64-bit
// EPC-style identifier, a LocationID is a small integer index into a
// Location table, and an Epoch is a discrete timestamp.
package model

import (
	"fmt"
	"slices"
)

// Tag identifies an RFID-tagged object. The packaging level is encoded in
// the tag itself (see package epc), mirroring the EPCglobal tag data
// standard the paper relies on for arranging graph layers.
type Tag uint64

// NoTag is the zero Tag; it never identifies a real object.
const NoTag Tag = 0

// Level is the packaging level of an object in a supply-chain environment.
// The EPC standard requires every object to carry one of these levels in
// its tag ID; SPIRE's graph is layered by level.
type Level uint8

// Packaging levels, ordered from innermost to outermost.
const (
	LevelItem Level = iota
	LevelCase
	LevelPallet
	numLevels
)

// NumLevels is the number of packaging levels in the supply-chain model.
const NumLevels = int(numLevels)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelItem:
		return "item"
	case LevelCase:
		return "case"
	case LevelPallet:
		return "pallet"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Valid reports whether l is one of the defined packaging levels.
func (l Level) Valid() bool { return l < numLevels }

// LocationID identifies one of the pre-defined fixed locations of the
// physical world, or one of the two sentinel locations below. In the graph
// model a LocationID doubles as a node color.
type LocationID int32

const (
	// LocationUnknown is the special "unknown" location of the paper: an
	// object is here when it is in transit between readers or has left the
	// world improperly (e.g. was stolen). As a node color it means
	// "uncolored with no estimate".
	LocationUnknown LocationID = -1

	// LocationNone marks a node that currently has no color at all (not
	// even a fading recent color). It is distinct from LocationUnknown,
	// which is a positive inference verdict.
	LocationNone LocationID = -2
)

// Known reports whether id names a real, pre-defined location (not one of
// the sentinels).
func (id LocationID) Known() bool { return id >= 0 }

// String renders the id; real locations print their index.
func (id LocationID) String() string {
	switch id {
	case LocationUnknown:
		return "unknown"
	case LocationNone:
		return "none"
	default:
		return fmt.Sprintf("L%d", int32(id))
	}
}

// Location describes one fixed, pre-defined location of the physical world
// (e.g. "aisle 1 in warehouse A", or a conveyor belt under a reader).
type Location struct {
	ID   LocationID
	Name string
	// Exit marks a designated exit channel: objects read here are about to
	// leave the physical world properly, so the substrate may retire their
	// graph nodes after inference.
	Exit bool
}

// Epoch is a discrete time instant. The paper divides time into epochs
// (1 second each in the evaluation) and updates the graph once per epoch.
type Epoch int64

// EpochNone marks "never" (e.g. a node that has not been seen yet).
const EpochNone Epoch = -1

// InfiniteEpoch is used as the open end V_e = ∞ of a validity interval.
const InfiniteEpoch Epoch = 1<<62 - 1

// ReaderID identifies an RFID reader mounted at a fixed location.
type ReaderID int32

// Reader describes a fixed RFID reader.
type Reader struct {
	ID       ReaderID
	Location LocationID
	// Period is the read frequency: the reader interrogates every Period
	// epochs (Period 1 = every epoch). The partial/complete inference
	// schedule is derived from the LCM of all reader periods.
	Period Epoch
	// ReadRate is the per-object probability that an object within range
	// responds to an interrogation (the paper sweeps 0.5–1.0).
	ReadRate float64
	// Confirming marks a "special reader" (e.g. a conveyor-belt reader)
	// that scans containers of a particular type one at a time, and can
	// therefore confirm top-level containers and their contents.
	Confirming bool
	// ConfirmLevel is the packaging level of the container type this
	// special reader scans one at a time (cases for a receiving belt,
	// pallets for a shipping belt). Only meaningful when Confirming.
	ConfirmLevel Level
}

// Active reports whether the reader interrogates during the given epoch.
func (r *Reader) Active(t Epoch) bool {
	if r.Period <= 1 {
		return true
	}
	return t%r.Period == 0
}

// Reading is the basic RFID datum: a <tag id, reader id, timestamp>
// triplet.
type Reading struct {
	Tag    Tag
	Reader ReaderID
	Time   Epoch
}

// Observation is the set of readings produced across all readers at one
// epoch, grouped per reader. The graph update consumes one reader group at
// a time, which is what lets SPIRE tolerate coarsely synchronized readers.
type Observation struct {
	Time Epoch
	// ByReader holds, for each reader that interrogated this epoch, the
	// tags it read. Readers that read nothing may appear with empty
	// slices; readers that did not interrogate are absent.
	ByReader map[ReaderID][]Tag
}

// NewObservation returns an empty observation for epoch t.
func NewObservation(t Epoch) *Observation {
	return &Observation{Time: t, ByReader: make(map[ReaderID][]Tag)}
}

// Add records that reader r read tag g at this epoch.
func (o *Observation) Add(r ReaderID, g Tag) {
	o.ByReader[r] = append(o.ByReader[r], g)
}

// Clone returns a deep copy of the observation. ProcessEpoch mutates its
// input in place (dedup, tombstone filtering), so callers that feed one
// observation to several consumers — fault injectors, replay tests — must
// clone first.
func (o *Observation) Clone() *Observation {
	c := &Observation{Time: o.Time, ByReader: make(map[ReaderID][]Tag, len(o.ByReader))}
	for r, tags := range o.ByReader {
		cp := make([]Tag, len(tags))
		copy(cp, tags)
		c.ByReader[r] = cp
	}
	return c
}

// Total returns the total number of readings in the observation.
func (o *Observation) Total() int {
	n := 0
	for _, tags := range o.ByReader {
		n += len(tags)
	}
	return n
}

// Readings flattens the observation into raw readings in ascending reader
// order (useful for wire encoding and for measuring the raw input size).
// The order is deterministic.
func (o *Observation) Readings() []Reading {
	readers := make([]ReaderID, 0, len(o.ByReader))
	for r := range o.ByReader {
		readers = append(readers, r)
	}
	slices.Sort(readers)
	out := make([]Reading, 0, o.Total())
	for _, r := range readers {
		for _, g := range o.ByReader[r] {
			out = append(out, Reading{Tag: g, Reader: r, Time: o.Time})
		}
	}
	return out
}
