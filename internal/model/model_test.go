package model

import (
	"testing"
	"testing/quick"
)

func TestLevelString(t *testing.T) {
	cases := []struct {
		lvl  Level
		want string
	}{
		{LevelItem, "item"},
		{LevelCase, "case"},
		{LevelPallet, "pallet"},
		{Level(9), "level(9)"},
	}
	for _, c := range cases {
		if got := c.lvl.String(); got != c.want {
			t.Errorf("Level(%d).String() = %q, want %q", c.lvl, got, c.want)
		}
	}
}

func TestLevelValid(t *testing.T) {
	for _, l := range []Level{LevelItem, LevelCase, LevelPallet} {
		if !l.Valid() {
			t.Errorf("Level %v should be valid", l)
		}
	}
	if Level(3).Valid() {
		t.Error("Level(3) should be invalid")
	}
}

func TestLocationIDKnown(t *testing.T) {
	if !LocationID(0).Known() || !LocationID(5).Known() {
		t.Error("non-negative location IDs must be Known")
	}
	if LocationUnknown.Known() || LocationNone.Known() {
		t.Error("sentinel locations must not be Known")
	}
}

func TestLocationIDString(t *testing.T) {
	if got := LocationUnknown.String(); got != "unknown" {
		t.Errorf("LocationUnknown.String() = %q", got)
	}
	if got := LocationNone.String(); got != "none" {
		t.Errorf("LocationNone.String() = %q", got)
	}
	if got := LocationID(3).String(); got != "L3" {
		t.Errorf("LocationID(3).String() = %q", got)
	}
}

func TestReaderActive(t *testing.T) {
	r := Reader{Period: 10}
	if !r.Active(0) || !r.Active(10) || !r.Active(20) {
		t.Error("reader with period 10 must be active at multiples of 10")
	}
	if r.Active(5) || r.Active(11) {
		t.Error("reader with period 10 must be inactive off the period")
	}
	every := Reader{Period: 1}
	for e := Epoch(0); e < 5; e++ {
		if !every.Active(e) {
			t.Errorf("period-1 reader must always be active (epoch %d)", e)
		}
	}
	zero := Reader{}
	if !zero.Active(7) {
		t.Error("zero-period reader must default to always active")
	}
}

func TestObservation(t *testing.T) {
	o := NewObservation(42)
	o.Add(1, Tag(100))
	o.Add(1, Tag(101))
	o.Add(2, Tag(102))
	if o.Total() != 3 {
		t.Fatalf("Total = %d, want 3", o.Total())
	}
	rs := o.Readings()
	if len(rs) != 3 {
		t.Fatalf("Readings len = %d, want 3", len(rs))
	}
	for _, r := range rs {
		if r.Time != 42 {
			t.Errorf("reading time = %d, want 42", r.Time)
		}
	}
}

func testLocations() []Location {
	return []Location{
		{ID: 0, Name: "door"},
		{ID: 1, Name: "belt"},
		{ID: 2, Name: "shelf"},
		{ID: 3, Name: "exit", Exit: true},
	}
}

func newTestWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(testLocations())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestNewWorldRejectsBadIDs(t *testing.T) {
	_, err := NewWorld([]Location{{ID: 1, Name: "oops"}})
	if err == nil {
		t.Fatal("NewWorld must reject non-dense location IDs")
	}
}

func TestWorldEnterAndLookup(t *testing.T) {
	w := newTestWorld(t)
	w.SetNow(5)
	st, err := w.Enter(10, LevelCase, 0)
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if st.Entered != 5 {
		t.Errorf("Entered = %d, want 5", st.Entered)
	}
	if !w.Resides(10, 0) {
		t.Error("object should reside at location 0")
	}
	if w.Resides(10, 1) {
		t.Error("object should not reside at location 1")
	}
	if _, err := w.Enter(10, LevelCase, 0); err == nil {
		t.Error("duplicate Enter must fail")
	}
	if _, err := w.Enter(NoTag, LevelCase, 0); err == nil {
		t.Error("Enter with zero tag must fail")
	}
}

func TestWorldContainMovesSubtree(t *testing.T) {
	w := newTestWorld(t)
	mustEnter(t, w, 1, LevelPallet, 0)
	mustEnter(t, w, 2, LevelCase, 1)
	mustEnter(t, w, 3, LevelItem, 1)
	if err := w.Contain(3, 2); err != nil {
		t.Fatalf("Contain item in case: %v", err)
	}
	// Containing the case in the pallet must drag the item to loc 0 too.
	if err := w.Contain(2, 1); err != nil {
		t.Fatalf("Contain case in pallet: %v", err)
	}
	if got := w.LocationOf(3); got != 0 {
		t.Errorf("item location = %v, want L0 (moved with its case)", got)
	}
	if !w.Contained(3, 2, 0) {
		t.Error("Contained(3,2,L0) should hold")
	}
	if w.Contained(3, 1, 0) {
		t.Error("Contained is direct containment only; item is not directly in the pallet")
	}
	if got := w.TopLevelContainer(3); got != 1 {
		t.Errorf("TopLevelContainer(3) = %d, want 1", got)
	}
}

func TestWorldContainErrors(t *testing.T) {
	w := newTestWorld(t)
	mustEnter(t, w, 1, LevelCase, 0)
	mustEnter(t, w, 2, LevelItem, 0)
	if err := w.Contain(2, 99); err == nil {
		t.Error("Contain with absent outer must fail")
	}
	if err := w.Contain(99, 1); err == nil {
		t.Error("Contain with absent inner must fail")
	}
	if err := w.Contain(1, 1); err == nil {
		t.Error("self-containment must fail")
	}
	if err := w.Contain(2, 1); err != nil {
		t.Fatalf("Contain: %v", err)
	}
	if err := w.Contain(2, 1); err == nil {
		t.Error("double containment must fail")
	}
}

func TestWorldMoveAndUncontain(t *testing.T) {
	w := newTestWorld(t)
	mustEnter(t, w, 1, LevelCase, 0)
	mustEnter(t, w, 2, LevelItem, 0)
	if err := w.Contain(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Move(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := w.LocationOf(2); got != 2 {
		t.Errorf("contained item must move with its case; got %v", got)
	}
	w.Uncontain(2)
	if err := w.Move(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := w.LocationOf(2); got != 2 {
		t.Errorf("uncontained item must stay put; got %v", got)
	}
	if got := w.ParentOf(2); got != NoTag {
		t.Errorf("ParentOf after Uncontain = %d, want NoTag", got)
	}
	// Uncontain of absent or parentless tags must be a no-op.
	w.Uncontain(2)
	w.Uncontain(12345)
}

func TestWorldDepart(t *testing.T) {
	w := newTestWorld(t)
	mustEnter(t, w, 1, LevelCase, 0)
	mustEnter(t, w, 2, LevelItem, 0)
	if err := w.Contain(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Depart(1); err == nil {
		t.Error("Depart of a non-empty container must fail")
	}
	w.SetNow(9)
	if err := w.Depart(2); err != nil {
		t.Fatalf("Depart(2): %v", err)
	}
	if w.Lookup(2) != nil {
		t.Error("departed object must vanish from the table")
	}
	if len(w.Lookup(1).Children) != 0 {
		t.Error("departing a child must detach it from its parent")
	}
	if err := w.Depart(1); err != nil {
		t.Fatalf("Depart(1): %v", err)
	}
	if err := w.Depart(1); err == nil {
		t.Error("double Depart must fail")
	}
	if got := w.LocationOf(1); got != LocationNone {
		t.Errorf("LocationOf departed = %v, want none", got)
	}
}

func TestWorldSteal(t *testing.T) {
	w := newTestWorld(t)
	mustEnter(t, w, 1, LevelCase, 2)
	mustEnter(t, w, 2, LevelItem, 2)
	if err := w.Contain(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Steal(2); err != nil {
		t.Fatalf("Steal: %v", err)
	}
	if got := w.LocationOf(2); got != LocationUnknown {
		t.Errorf("stolen object location = %v, want unknown", got)
	}
	if got := w.ParentOf(2); got != NoTag {
		t.Errorf("stolen object must lose its container; parent = %d", got)
	}
	if w.Lookup(2) == nil {
		t.Error("stolen object must remain in the object table")
	}
	if err := w.Steal(77); err == nil {
		t.Error("Steal of absent tag must fail")
	}
}

func TestWorldAtAndObjects(t *testing.T) {
	w := newTestWorld(t)
	mustEnter(t, w, 3, LevelItem, 1)
	mustEnter(t, w, 1, LevelItem, 1)
	mustEnter(t, w, 2, LevelItem, 0)
	at := w.At(1)
	if len(at) != 2 || at[0] != 1 || at[1] != 3 {
		t.Errorf("At(1) = %v, want [1 3]", at)
	}
	all := w.Objects()
	if len(all) != 3 || all[0] != 1 || all[2] != 3 {
		t.Errorf("Objects() = %v, want [1 2 3]", all)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
}

func TestWorldClockMonotonic(t *testing.T) {
	w := newTestWorld(t)
	w.SetNow(10)
	w.SetNow(3) // ignored: time never moves backwards
	if w.Now() != 10 {
		t.Errorf("Now = %d, want 10", w.Now())
	}
}

// Property: moving a container always keeps every descendant co-located
// with it, for arbitrary containment trees.
func TestQuickSubtreeColocation(t *testing.T) {
	f := func(parents []uint8, dest uint8) bool {
		w, err := NewWorld(testLocations())
		if err != nil {
			return false
		}
		n := len(parents)
		if n > 50 {
			n = 50
		}
		// Object i may be contained in a lower-numbered object.
		for i := 0; i < n; i++ {
			if _, err := w.Enter(Tag(i+1), LevelItem, 0); err != nil {
				return false
			}
		}
		for i := 1; i < n; i++ {
			p := int(parents[i]) % i // in [0, i)
			if err := w.Contain(Tag(i+1), Tag(p+1)); err != nil {
				return false
			}
		}
		if n == 0 {
			return true
		}
		loc := LocationID(int(dest) % 4)
		if err := w.Move(1, loc); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if w.TopLevelContainer(Tag(i+1)) == 1 && w.LocationOf(Tag(i+1)) != loc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustEnter(t *testing.T, w *World, tag Tag, lvl Level, loc LocationID) {
	t.Helper()
	if _, err := w.Enter(tag, lvl, loc); err != nil {
		t.Fatalf("Enter(%d): %v", tag, err)
	}
}
