package model

import (
	"fmt"
	"slices"
)

// World is the ground-truth state of the physical world at the current
// epoch: which objects reside where and which object contains which
// (Section II of the paper). The simulator mutates a World as objects move;
// the metrics package compares inference output against it.
//
// World is not safe for concurrent mutation.
type World struct {
	now       Epoch
	locations []Location
	objects   map[Tag]*ObjectState
	// byLoc indexes present objects by their current location (including
	// the special LocationUnknown), so At is proportional to the occupancy
	// of one location rather than the whole population. Maintained by the
	// three mutation points that change an object's location: Enter,
	// Depart, and moveSubtree.
	byLoc map[LocationID]map[Tag]struct{}
}

// ObjectState is the ground truth for one object.
type ObjectState struct {
	Tag      Tag
	Level    Level
	Location LocationID // LocationUnknown when stolen/in transit
	// Parent is the containing object, or NoTag when the object is not
	// contained (a top-level container, or a loose item).
	Parent Tag
	// Children are the directly contained objects.
	Children map[Tag]struct{}
	// Entered and Departed bound the object's presence in the world.
	Entered  Epoch
	Departed Epoch // EpochNone while present
}

// NewWorld creates an empty world with the given pre-defined locations.
// Location IDs must be dense, starting at 0, and match their slice index.
func NewWorld(locations []Location) (*World, error) {
	for i, l := range locations {
		if l.ID != LocationID(i) {
			return nil, fmt.Errorf("model: location %q has ID %v, want L%d", l.Name, l.ID, i)
		}
	}
	return &World{
		locations: locations,
		objects:   make(map[Tag]*ObjectState),
		byLoc:     make(map[LocationID]map[Tag]struct{}),
	}, nil
}

func (w *World) indexAdd(tag Tag, loc LocationID) {
	m := w.byLoc[loc]
	if m == nil {
		m = make(map[Tag]struct{})
		w.byLoc[loc] = m
	}
	m[tag] = struct{}{}
}

func (w *World) indexRemove(tag Tag, loc LocationID) {
	if m := w.byLoc[loc]; m != nil {
		delete(m, tag)
	}
}

// Now returns the world's current epoch.
func (w *World) Now() Epoch { return w.now }

// SetNow advances the world clock. Time never moves backwards.
func (w *World) SetNow(t Epoch) {
	if t > w.now {
		w.now = t
	}
}

// Locations returns the pre-defined location table (excluding the special
// "unknown" location).
func (w *World) Locations() []Location { return w.locations }

// NumLocations returns the number of pre-defined locations.
func (w *World) NumLocations() int { return len(w.locations) }

// Enter adds a new object to the world at the given location.
func (w *World) Enter(tag Tag, lvl Level, loc LocationID) (*ObjectState, error) {
	if tag == NoTag {
		return nil, fmt.Errorf("model: cannot enter the zero tag")
	}
	if _, ok := w.objects[tag]; ok {
		return nil, fmt.Errorf("model: tag %d already present", tag)
	}
	st := &ObjectState{
		Tag:      tag,
		Level:    lvl,
		Location: loc,
		Parent:   NoTag,
		Children: make(map[Tag]struct{}),
		Entered:  w.now,
		Departed: EpochNone,
	}
	w.objects[tag] = st
	w.indexAdd(tag, loc)
	return st, nil
}

// Depart removes an object (and not its children — callers must uncontain
// or depart children explicitly) from the world through a proper channel.
func (w *World) Depart(tag Tag) error {
	st, ok := w.objects[tag]
	if !ok {
		return fmt.Errorf("model: depart: tag %d not present", tag)
	}
	if len(st.Children) > 0 {
		return fmt.Errorf("model: depart: tag %d still contains %d objects", tag, len(st.Children))
	}
	if st.Parent != NoTag {
		w.Uncontain(tag)
	}
	st.Departed = w.now
	delete(w.objects, tag)
	w.indexRemove(tag, st.Location)
	return nil
}

// Steal marks the object as improperly removed: it stays in the object
// table (applications still ask about it) but its true location becomes
// "unknown". Containment with its parent, if any, is severed, matching the
// simulator's theft events.
func (w *World) Steal(tag Tag) error {
	st, ok := w.objects[tag]
	if !ok {
		return fmt.Errorf("model: steal: tag %d not present", tag)
	}
	if st.Parent != NoTag {
		w.Uncontain(tag)
	}
	w.moveSubtree(st, LocationUnknown)
	return nil
}

// Lookup returns the ground-truth state of a tag, or nil if absent.
func (w *World) Lookup(tag Tag) *ObjectState { return w.objects[tag] }

// Resides implements the paper's _resides(o, l, t) for t = now.
func (w *World) Resides(tag Tag, loc LocationID) bool {
	st, ok := w.objects[tag]
	return ok && st.Location == loc
}

// Contained implements the paper's _contained(o_i, o_j, l, t) for t = now:
// true iff o_i is directly contained in o_j and both are at loc.
func (w *World) Contained(inner, outer Tag, loc LocationID) bool {
	st, ok := w.objects[inner]
	if !ok || st.Parent != outer {
		return false
	}
	return st.Location == loc && w.Resides(outer, loc)
}

// ParentOf returns the ground-truth direct container of tag (NoTag if
// none or if the tag is absent).
func (w *World) ParentOf(tag Tag) Tag {
	if st, ok := w.objects[tag]; ok {
		return st.Parent
	}
	return NoTag
}

// LocationOf returns the ground-truth location of tag (LocationUnknown if
// the tag is stolen; LocationNone if the tag is absent from the world).
func (w *World) LocationOf(tag Tag) LocationID {
	if st, ok := w.objects[tag]; ok {
		return st.Location
	}
	return LocationNone
}

// Contain places inner directly inside outer. Both objects must be present
// and inner must not already have a parent; inner (and its subtree) moves
// to outer's location.
func (w *World) Contain(inner, outer Tag) error {
	in, ok := w.objects[inner]
	if !ok {
		return fmt.Errorf("model: contain: inner tag %d not present", inner)
	}
	out, ok := w.objects[outer]
	if !ok {
		return fmt.Errorf("model: contain: outer tag %d not present", outer)
	}
	if in.Parent != NoTag {
		return fmt.Errorf("model: contain: tag %d already contained in %d", inner, in.Parent)
	}
	if inner == outer {
		return fmt.Errorf("model: contain: tag %d cannot contain itself", inner)
	}
	in.Parent = outer
	out.Children[inner] = struct{}{}
	w.moveSubtree(in, out.Location)
	return nil
}

// Uncontain severs the containment between tag and its parent, if any.
func (w *World) Uncontain(tag Tag) {
	st, ok := w.objects[tag]
	if !ok || st.Parent == NoTag {
		return
	}
	if p, ok := w.objects[st.Parent]; ok {
		delete(p.Children, tag)
	}
	st.Parent = NoTag
}

// Move relocates an object and, transitively, everything it contains.
func (w *World) Move(tag Tag, loc LocationID) error {
	st, ok := w.objects[tag]
	if !ok {
		return fmt.Errorf("model: move: tag %d not present", tag)
	}
	w.moveSubtree(st, loc)
	return nil
}

func (w *World) moveSubtree(st *ObjectState, loc LocationID) {
	if st.Location != loc {
		w.indexRemove(st.Tag, st.Location)
		st.Location = loc
		w.indexAdd(st.Tag, loc)
	}
	for c := range st.Children {
		if cs, ok := w.objects[c]; ok {
			w.moveSubtree(cs, loc)
		}
	}
}

// Objects returns the tags of all present objects in ascending order.
func (w *World) Objects() []Tag {
	out := make([]Tag, 0, len(w.objects))
	for t := range w.objects {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of objects currently in the world.
func (w *World) Len() int { return len(w.objects) }

// At returns the tags of all objects currently at loc, in ascending order.
func (w *World) At(loc LocationID) []Tag {
	m := w.byLoc[loc]
	if len(m) == 0 {
		return nil
	}
	out := make([]Tag, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// AtAppend appends the tags of all objects currently at loc to dst in
// ascending order and returns the extended slice. It is At without the
// per-call allocation, for callers that sweep many readers per epoch.
func (w *World) AtAppend(dst []Tag, loc LocationID) []Tag {
	m := w.byLoc[loc]
	if len(m) == 0 {
		return dst
	}
	start := len(dst)
	for t := range m {
		dst = append(dst, t)
	}
	slices.Sort(dst[start:])
	return dst
}

// TopLevelContainer follows parent links to the outermost container of
// tag. A loose object is its own top-level container.
func (w *World) TopLevelContainer(tag Tag) Tag {
	st, ok := w.objects[tag]
	if !ok {
		return NoTag
	}
	for st.Parent != NoTag {
		p, ok := w.objects[st.Parent]
		if !ok {
			break
		}
		st = p
	}
	return st.Tag
}
