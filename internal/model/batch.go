package model

import (
	"cmp"
	"slices"
)

// Batch is one epoch's readings in columnar form: a single flat tags
// column plus a reader-group directory of [Start,End) offsets into it.
// It carries exactly the information of an Observation — including
// readers that interrogated but read nothing, which appear as empty
// groups — but in two reused flat buffers instead of a map of slices,
// so the ingest hot path (decode → dedup → graph update) touches no
// per-epoch map allocations and iterates readings in index order.
//
// Invariants (checked by Validate):
//
//   - Groups are sorted by strictly ascending ReaderID;
//   - group offsets are non-decreasing, contiguous from 0 to len(Tags).
//
// A Batch is reused across epochs via Reset; conversion to and from
// Observation is lossless (see FromObservation/Observation), so
// checkpoints, the event log, and the HTTP API — all written in terms of
// Observation and the substrate outputs — are untouched by the columnar
// path.
type Batch struct {
	Time Epoch
	// Groups is the per-reader directory, ascending by reader ID.
	Groups []ReaderGroup
	// Tags holds every reading's tag, grouped by reader: the tags read
	// by Groups[i].Reader are Tags[Groups[i].Start:Groups[i].End].
	Tags []Tag
}

// ReaderGroup locates one reader's readings inside the batch's tag
// column. Start == End for a reader that interrogated but read nothing.
type ReaderGroup struct {
	Reader     ReaderID
	Start, End int32
}

// Len returns the number of tags in the group.
func (g ReaderGroup) Len() int { return int(g.End - g.Start) }

// NewBatch returns an empty batch for epoch t.
func NewBatch(t Epoch) *Batch { return &Batch{Time: t} }

// Reset truncates the batch for reuse at epoch t, keeping the underlying
// buffers.
func (b *Batch) Reset(t Epoch) {
	b.Time = t
	b.Groups = b.Groups[:0]
	b.Tags = b.Tags[:0]
}

// BeginReader opens a group for reader r. Callers must open groups in
// ascending reader order (FromObservation sorts; the simulator's readers
// are already ordered); Validate reports violations.
func (b *Batch) BeginReader(r ReaderID) {
	n := int32(len(b.Tags))
	b.Groups = append(b.Groups, ReaderGroup{Reader: r, Start: n, End: n})
}

// Append records one tag for the most recently opened reader group.
func (b *Batch) Append(g Tag) {
	b.Tags = append(b.Tags, g)
	b.Groups[len(b.Groups)-1].End = int32(len(b.Tags))
}

// Total returns the number of readings in the batch.
func (b *Batch) Total() int { return len(b.Tags) }

// SizeBytes returns the resident size of the batch's two columns (8-byte
// tags plus 12-byte group directory entries) — the figure behind the
// spire_ingest_batch_bytes telemetry counter.
func (b *Batch) SizeBytes() int64 {
	return int64(len(b.Tags))*8 + int64(len(b.Groups))*12
}

// GroupTags returns the tag column slice of group i. The slice aliases
// the batch; it is valid until the next mutation.
func (b *Batch) GroupTags(i int) []Tag {
	g := b.Groups[i]
	return b.Tags[g.Start:g.End]
}

// Validate checks the batch invariants.
func (b *Batch) Validate() error {
	prev := int32(0)
	for i, g := range b.Groups {
		if i > 0 && b.Groups[i-1].Reader >= g.Reader {
			return &batchError{"reader groups not strictly ascending"}
		}
		if g.Start != prev || g.End < g.Start {
			return &batchError{"group offsets not contiguous"}
		}
		prev = g.End
	}
	if int(prev) != len(b.Tags) {
		return &batchError{"group offsets do not cover the tag column"}
	}
	return nil
}

type batchError struct{ msg string }

func (e *batchError) Error() string { return "model: batch: " + e.msg }

// FromObservation fills the batch from o, replacing its contents. Reader
// groups come out sorted ascending; per-reader tag order is preserved.
// Empty ByReader entries become empty groups, so the conversion is
// lossless up to map iteration order.
func (b *Batch) FromObservation(o *Observation) *Batch {
	b.Reset(o.Time)
	for r := range o.ByReader {
		b.Groups = append(b.Groups, ReaderGroup{Reader: r})
	}
	slices.SortFunc(b.Groups, func(a, b ReaderGroup) int { return cmp.Compare(a.Reader, b.Reader) })
	for i := range b.Groups {
		g := &b.Groups[i]
		g.Start = int32(len(b.Tags))
		b.Tags = append(b.Tags, o.ByReader[g.Reader]...)
		g.End = int32(len(b.Tags))
	}
	return b
}

// Observation materializes the batch as a freshly allocated Observation.
// Empty groups become empty (non-nil-entry) ByReader slices, mirroring
// what an active reader that read nothing produces.
func (b *Batch) Observation() *Observation {
	o := &Observation{Time: b.Time, ByReader: make(map[ReaderID][]Tag, len(b.Groups))}
	for _, g := range b.Groups {
		tags := make([]Tag, g.End-g.Start)
		copy(tags, b.Tags[g.Start:g.End])
		o.ByReader[g.Reader] = tags
	}
	return o
}

// Clone returns a deep copy of the batch.
func (b *Batch) Clone() *Batch {
	c := &Batch{
		Time:   b.Time,
		Groups: append([]ReaderGroup(nil), b.Groups...),
		Tags:   append([]Tag(nil), b.Tags...),
	}
	return c
}

// Readings flattens the batch into raw readings in group order — the
// same deterministic ascending-reader order Observation.Readings uses.
func (b *Batch) Readings() []Reading {
	out := make([]Reading, 0, len(b.Tags))
	for _, g := range b.Groups {
		for _, tag := range b.Tags[g.Start:g.End] {
			out = append(out, Reading{Tag: tag, Reader: g.Reader, Time: b.Time})
		}
	}
	return out
}
