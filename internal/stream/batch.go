package stream

import (
	"fmt"
	"io"

	"spire/internal/model"
)

// Columnar entry points for the wire format. The raw stream is already
// epoch-major and (as Writer emits it) reader-grouped within each epoch,
// which is exactly a model.Batch laid out flat — so one epoch can be
// decoded straight into reused batch columns without building the
// per-epoch observation map the record-at-a-time path needs.

// WriteBatch emits every reading of the batch. Groups are already in
// ascending reader order (the Batch invariant), so unlike
// WriteObservation no per-epoch sort is needed and the bytes produced
// are identical to WriteObservation on the equivalent observation.
func (w *Writer) WriteBatch(b *model.Batch) error {
	for _, g := range b.Groups {
		for _, tag := range b.Tags[g.Start:g.End] {
			if err := w.Write(model.Reading{Tag: tag, Reader: g.Reader, Time: b.Time}); err != nil {
				return err
			}
		}
	}
	return nil
}

// BatchReader decodes a raw reading stream one epoch at a time into a
// caller-provided reused batch. Note the wire format cannot represent a
// reader that interrogated but read nothing, so empty groups do not
// round-trip — the same caveat the observation path has always had.
type BatchReader struct {
	r       *Reader
	pending model.Reading
	has     bool
	err     error              // look-ahead error, surfaced on the next call
	scratch *model.Observation // regroup fallback for foreign writers
}

// NewBatchReader returns a BatchReader decoding from r.
func NewBatchReader(r io.Reader) *BatchReader {
	return &BatchReader{r: NewReader(r)}
}

// Count returns the number of records decoded successfully so far.
func (br *BatchReader) Count() int64 { return br.r.Count() }

// ReadBatch fills b with the next epoch's readings, replacing its
// contents. Epochs must be non-decreasing across the stream; within an
// epoch readings may arrive in any reader order (streams from Writer are
// already reader-grouped ascending and decode with zero extra work;
// anything else is regrouped). Returns io.EOF at a clean end of stream
// and a *CorruptError on a torn record, as Reader.Read does.
func (br *BatchReader) ReadBatch(b *model.Batch) error {
	if !br.has {
		if br.err != nil {
			err := br.err
			br.err = nil
			return err
		}
		rd, err := br.r.Read()
		if err != nil {
			return err
		}
		br.pending, br.has = rd, true
	}
	epoch := br.pending.Time
	b.Reset(epoch)
	ordered := true
	for br.has && br.pending.Time == epoch {
		rd := br.pending
		if n := len(b.Groups); n == 0 || b.Groups[n-1].Reader != rd.Reader {
			if n > 0 && b.Groups[n-1].Reader > rd.Reader {
				ordered = false
			}
			b.BeginReader(rd.Reader)
		}
		b.Append(rd.Tag)
		next, err := br.r.Read()
		if err != nil {
			// The completed epoch is intact either way; a torn record
			// belongs to the next epoch and surfaces on the next call.
			br.has = false
			if err != io.EOF {
				br.err = err
			}
			break
		}
		if next.Time < epoch {
			return fmt.Errorf("stream: readings not ordered by epoch (%d after %d)", next.Time, epoch)
		}
		br.pending = next
	}
	if !ordered {
		br.regroup(b)
	}
	return nil
}

// regroup rebuilds b with its groups merged and sorted ascending, for
// streams whose epochs interleave readers (not produced by Writer, so
// the extra allocation here is off the hot path).
func (br *BatchReader) regroup(b *model.Batch) {
	if br.scratch == nil {
		br.scratch = model.NewObservation(b.Time)
	}
	o := br.scratch
	o.Time = b.Time
	clear(o.ByReader)
	for i := range b.Groups {
		r := b.Groups[i].Reader
		for _, tag := range b.GroupTags(i) {
			o.Add(r, tag)
		}
	}
	b.FromObservation(o)
}
