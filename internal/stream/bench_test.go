package stream

import (
	"bytes"
	"io"
	"testing"

	"spire/internal/model"
)

// BenchmarkIngestDecode measures the columnar wire decode: a reader-
// grouped stream (as Writer emits) decoded epoch by epoch into a reused
// batch — the ingest path's first stage.
func BenchmarkIngestDecode(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var bt model.Batch
	var readings int64
	for e := model.Epoch(1); e <= 100; e++ {
		bt.Reset(e)
		for r := 0; r < 64; r++ {
			bt.BeginReader(model.ReaderID(10 + r))
			for k := 0; k < 24; k++ {
				bt.Append(model.Tag(int(e)*100000 + r*100 + k))
				readings++
			}
		}
		if err := w.WriteBatch(&bt); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := NewBatchReader(bytes.NewReader(raw))
		for {
			err := br.ReadBatch(&bt)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(readings), "readings/op")
}
