package stream

import (
	"bytes"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

// TestFrameCountMatchesWire pins that the counted variants report
// exactly the bytes on the wire — the federate byte counters must add
// up to what tcpdump would show — and that the uncounted wrappers
// produce identical encodings (there is no instrumented wire format).
func TestFrameCountMatchesWire(t *testing.T) {
	frames := []*Frame{
		{Type: FrameHello, Zone: 3, Epoch: 41},
		{Type: FrameHelloAck, Epoch: model.EpochNone},
		{Type: FrameAck, Epoch: 99},
		{Type: FrameEpoch, Epoch: 7, Events: []event.Event{
			event.NewStartLocation(1, 2, 3),
			event.NewEndLocation(1, 2, 3, 9),
		}},
		{Type: FrameFin, Epoch: 1200},
	}
	for _, f := range frames {
		var counted bytes.Buffer
		n, err := WriteFrameCount(&counted, f)
		if err != nil {
			t.Fatalf("%s: WriteFrameCount: %v", f.Type, err)
		}
		if n != counted.Len() {
			t.Errorf("%s: WriteFrameCount reported %d bytes, wrote %d", f.Type, n, counted.Len())
		}

		var plain bytes.Buffer
		if err := WriteFrame(&plain, f); err != nil {
			t.Fatalf("%s: WriteFrame: %v", f.Type, err)
		}
		if !bytes.Equal(plain.Bytes(), counted.Bytes()) {
			t.Errorf("%s: counted and plain encodings differ", f.Type)
		}

		got, rn, err := ReadFrameCount(bytes.NewReader(counted.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadFrameCount: %v", f.Type, err)
		}
		if rn != n {
			t.Errorf("%s: ReadFrameCount consumed %d bytes, wrote %d", f.Type, rn, n)
		}
		if got.Type != f.Type || got.Zone != f.Zone && f.Type == FrameHello || got.Epoch != f.Epoch {
			t.Errorf("%s: round trip got %+v, want %+v", f.Type, got, f)
		}
		if len(got.Events) != len(f.Events) {
			t.Errorf("%s: round trip got %d events, want %d", f.Type, len(got.Events), len(f.Events))
		}
	}
}
