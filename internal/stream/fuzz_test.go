package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"spire/internal/model"
)

// FuzzDecodeReading: arbitrary bytes must decode or fail cleanly, and a
// successful decode must re-encode to the same wire bytes.
func FuzzDecodeReading(f *testing.F) {
	f.Add(AppendReading(nil, model.Reading{Tag: 0xDEADBEEF, Reader: 7, Time: 12345}))
	f.Add([]byte{})
	f.Add(make([]byte, ReadingSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := DecodeReading(data)
		if len(data) < ReadingSize {
			if err == nil {
				t.Fatalf("%d bytes decoded without error", len(data))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("short-buffer error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("full record failed to decode: %v", err)
		}
		if re := AppendReading(nil, rd); !bytes.Equal(re, data[:ReadingSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:ReadingSize])
		}
	})
}

// FuzzReader: the streaming decoder must never panic, must return exactly
// the whole-record prefix of any input, and must position its corruption
// report at the first torn record.
func FuzzReader(f *testing.F) {
	var clean []byte
	for i := 0; i < 3; i++ {
		clean = AppendReading(clean, model.Reading{Tag: model.Tag(i + 1), Reader: 1, Time: model.Epoch(i)})
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-ReadingSize/2])
	f.Add([]byte("not a reading stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		out, err := r.ReadAll()
		full := len(data) / ReadingSize
		if len(out) != full {
			t.Fatalf("decoded %d records, want the full-record prefix of %d", len(out), full)
		}
		if len(data)%ReadingSize == 0 {
			if err != nil {
				t.Fatalf("whole-record stream failed: %v", err)
			}
		} else {
			var ce *CorruptError
			if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("torn stream error %v, want *CorruptError wrapping ErrCorrupt", err)
			}
			if ce.Record != int64(full) || ce.Offset != int64(full*ReadingSize) {
				t.Fatalf("corruption at record %d offset %d, want %d/%d",
					ce.Record, ce.Offset, full, full*ReadingSize)
			}
		}
		var re []byte
		for _, rd := range out {
			re = AppendReading(re, rd)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatal("decoded prefix does not re-encode to the input bytes")
		}
		// A second Read after exhaustion stays terminal.
		if _, err := r.Read(); err == nil {
			t.Fatal("Read past the end returned no error")
		} else if len(data)%ReadingSize == 0 && err != io.EOF {
			t.Fatalf("clean end returned %v, want io.EOF", err)
		}
	})
}
