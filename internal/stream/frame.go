package stream

import (
	"encoding/binary"
	"fmt"
	"io"

	"spire/internal/event"
	"spire/internal/model"
)

// Frame protocol for the distributed deployment: a zone worker streams
// its substrate's per-epoch compressed output to the federation
// coordinator over a byte stream (TCP in production, any net.Conn in
// tests) as length-prefixed frames.
//
// The conversation is:
//
//	worker → Hello{Zone, Epoch: last epoch the worker has processed}
//	coord  → HelloAck{Epoch: last epoch the coordinator acked this zone}
//	worker → Epoch{Epoch, Events}        (one per epoch, possibly empty)
//	coord  → Ack{Epoch}                  (after the epoch barrier merges it)
//	worker → Fin{Epoch, Events}          (closing events, emitted at Epoch)
//	coord  → Ack{Epoch}                  (final ack)
//
// The handshake carries the resume protocol: a reconnecting worker
// learns the coordinator's ack high-water mark and re-sends exactly the
// epochs after it, so a crash between send and ack neither loses nor
// duplicates merged events.

// FrameType discriminates the frames of the zone↔coordinator protocol.
type FrameType uint8

// The frame types, in handshake order.
const (
	FrameHello FrameType = iota + 1
	FrameHelloAck
	FrameEpoch
	FrameAck
	FrameFin
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameEpoch:
		return "epoch"
	case FrameAck:
		return "ack"
	case FrameFin:
		return "fin"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Frame is one protocol message. Zone is meaningful for Hello; Epoch for
// every type (Hello: last processed, HelloAck/Ack: acked epoch, Epoch:
// the batch's epoch, Fin: the epoch the closing events end at); Events
// for Epoch and Fin.
type Frame struct {
	Type   FrameType
	Zone   int
	Epoch  model.Epoch
	Events []event.Event
}

// MaxFramePayload bounds a frame's encoded payload; a peer announcing
// more is corrupt (or hostile) and the reader fails fast instead of
// allocating unbounded memory.
const MaxFramePayload = 1 << 26

// WriteFrame encodes f as [uint32 length][type][body] and writes it.
func WriteFrame(w io.Writer, f *Frame) error {
	_, err := WriteFrameCount(w, f)
	return err
}

// WriteFrameCount is WriteFrame reporting the wire bytes written
// (header included) — the hook the federate byte counters use. The
// encoding is identical; there is no instrumented wire format.
func WriteFrameCount(w io.Writer, f *Frame) (int, error) {
	body := make([]byte, 0, 64)
	body = append(body, byte(f.Type))
	switch f.Type {
	case FrameHello:
		body = binary.BigEndian.AppendUint32(body, uint32(f.Zone))
		body = binary.BigEndian.AppendUint64(body, uint64(f.Epoch))
	case FrameHelloAck, FrameAck:
		body = binary.BigEndian.AppendUint64(body, uint64(f.Epoch))
	case FrameEpoch, FrameFin:
		body = binary.BigEndian.AppendUint64(body, uint64(f.Epoch))
		body = binary.BigEndian.AppendUint32(body, uint32(len(f.Events)))
		var err error
		for _, e := range f.Events {
			if body, err = event.Append(body, e); err != nil {
				return 0, fmt.Errorf("stream: encode %s frame: %w", f.Type, err)
			}
		}
	default:
		return 0, fmt.Errorf("stream: unknown frame type %d", f.Type)
	}
	if len(body) > MaxFramePayload {
		return 0, fmt.Errorf("stream: %s frame payload %d exceeds limit", f.Type, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(body)
	return n + m, err
}

// ReadFrame reads and decodes one frame. io.EOF at a frame boundary is
// returned as-is; a partial frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (*Frame, error) {
	f, _, err := ReadFrameCount(r)
	return f, err
}

// ReadFrameCount is ReadFrame reporting the wire bytes consumed (header
// included) — the hook the federate byte counters use.
func ReadFrameCount(r io.Reader) (*Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFramePayload {
		return nil, 4, fmt.Errorf("stream: frame payload %d exceeds limit", n)
	}
	wire := 4 + int(n)
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	if len(body) < 1 {
		return nil, wire, fmt.Errorf("stream: empty frame")
	}
	f := &Frame{Type: FrameType(body[0])}
	body = body[1:]
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("stream: truncated %s frame", f.Type)
		}
		return nil
	}
	switch f.Type {
	case FrameHello:
		if err := need(12); err != nil {
			return nil, wire, err
		}
		f.Zone = int(int32(binary.BigEndian.Uint32(body)))
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body[4:]))
	case FrameHelloAck, FrameAck:
		if err := need(8); err != nil {
			return nil, wire, err
		}
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body))
	case FrameEpoch, FrameFin:
		if err := need(12); err != nil {
			return nil, wire, err
		}
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body))
		count := int(binary.BigEndian.Uint32(body[8:]))
		body = body[12:]
		f.Events = make([]event.Event, 0, count)
		for i := 0; i < count; i++ {
			e, n, err := event.Decode(body)
			if err != nil {
				return nil, wire, fmt.Errorf("stream: %s frame event %d: %w", f.Type, i, err)
			}
			f.Events = append(f.Events, e)
			body = body[n:]
		}
		if len(body) != 0 {
			return nil, wire, fmt.Errorf("stream: %s frame has %d trailing bytes", f.Type, len(body))
		}
	default:
		return nil, wire, fmt.Errorf("stream: unknown frame type %d", uint8(f.Type))
	}
	return f, wire, nil
}
