package stream

import (
	"encoding/binary"
	"fmt"
	"io"

	"spire/internal/event"
	"spire/internal/model"
)

// Frame protocol for the distributed deployment: a zone worker streams
// its substrate's per-epoch compressed output to the federation
// coordinator over a byte stream (TCP in production, any net.Conn in
// tests) as length-prefixed frames.
//
// The conversation is:
//
//	worker → Hello{Zone, Epoch: last epoch the worker has processed}
//	coord  → HelloAck{Epoch: last epoch the coordinator acked this zone}
//	worker → Epoch{Epoch, Events}        (one per epoch, possibly empty)
//	coord  → Ack{Epoch}                  (after the epoch barrier merges it)
//	worker → Fin{Epoch, Events}          (closing events, emitted at Epoch)
//	coord  → Ack{Epoch}                  (final ack)
//	worker → Bye{Epoch}                  (final ack observed; worker exiting)
//
// The handshake carries the resume protocol: a reconnecting worker
// learns the coordinator's ack high-water mark and re-sends exactly the
// epochs after it, so a crash between send and ack neither loses nor
// duplicates merged events.
//
// Hello and HelloAck additionally carry a capability word (absent in the
// original protocol revision; decoders treat a short body as caps 0, so
// old and new peers interop). A capability is in effect only when both
// sides advertise it.

// FrameType discriminates the frames of the zone↔coordinator protocol.
type FrameType uint8

// The frame types, in handshake order.
const (
	FrameHello FrameType = iota + 1
	FrameHelloAck
	FrameEpoch
	FrameAck
	FrameFin
	// FrameEpochCols and FrameFinCols are the columnar encodings of
	// Epoch and Fin: same epoch/count header, then the events as
	// struct-of-arrays columns (kind, object, Vs, then the per-kind
	// payload columns). The encoded size is byte-for-byte identical to
	// the row encoding; the win is decode locality and the ability to
	// reuse column buffers. Sent only when both sides negotiated
	// CapColumnarEpoch.
	FrameEpochCols
	FrameFinCols
	// FrameBye is the worker's shutdown handshake: it has observed the
	// final ack and will not reconnect. The coordinator's post-run linger
	// ends as soon as every zone says goodbye instead of trusting that
	// its own ack writes were read before the connection died. Sent only
	// when both sides negotiated CapBye; Epoch carries the worker's ack
	// high-water mark.
	FrameBye
)

// Capability bits carried in Hello/HelloAck.
const (
	// CapColumnarEpoch: the peer understands FrameEpochCols/FrameFinCols.
	CapColumnarEpoch uint32 = 1 << 0
	// CapBye: the peer speaks the FrameBye shutdown handshake.
	CapBye uint32 = 1 << 1
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameEpoch:
		return "epoch"
	case FrameAck:
		return "ack"
	case FrameFin:
		return "fin"
	case FrameEpochCols:
		return "epoch-cols"
	case FrameFinCols:
		return "fin-cols"
	case FrameBye:
		return "bye"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Frame is one protocol message. Zone is meaningful for Hello; Epoch for
// every type (Hello: last processed, HelloAck/Ack: acked epoch, Epoch:
// the batch's epoch, Fin: the epoch the closing events end at); Events
// for Epoch/Fin and their columnar variants; Caps for Hello/HelloAck.
type Frame struct {
	Type   FrameType
	Zone   int
	Epoch  model.Epoch
	Caps   uint32
	Events []event.Event
}

// MaxFramePayload bounds a frame's encoded payload; a peer announcing
// more is corrupt (or hostile) and the reader fails fast instead of
// allocating unbounded memory.
const MaxFramePayload = 1 << 26

// WriteFrame encodes f as [uint32 length][type][body] and writes it.
func WriteFrame(w io.Writer, f *Frame) error {
	_, err := WriteFrameCount(w, f)
	return err
}

// WriteFrameCount is WriteFrame reporting the wire bytes written
// (header included) — the hook the federate byte counters use. The
// encoding is identical; there is no instrumented wire format.
func WriteFrameCount(w io.Writer, f *Frame) (int, error) {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return 0, err
	}
	return w.Write(buf)
}

// AppendFrame appends the full wire form of f (length prefix included)
// to dst and returns the extended slice. It is the encoding primitive
// behind WriteFrame; workers use it to build owned replay buffers that
// are written verbatim on every (re)send instead of re-encoding.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case FrameHello:
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Zone))
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.Epoch))
		dst = binary.BigEndian.AppendUint32(dst, f.Caps)
	case FrameHelloAck:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.Epoch))
		dst = binary.BigEndian.AppendUint32(dst, f.Caps)
	case FrameAck, FrameBye:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.Epoch))
	case FrameEpoch, FrameFin:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.Epoch))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Events)))
		var err error
		for _, e := range f.Events {
			if dst, err = event.Append(dst, e); err != nil {
				return dst[:start], fmt.Errorf("stream: encode %s frame: %w", f.Type, err)
			}
		}
	case FrameEpochCols, FrameFinCols:
		var err error
		if dst, err = appendEventCols(dst, f); err != nil {
			return dst[:start], err
		}
	default:
		return dst[:start], fmt.Errorf("stream: unknown frame type %d", f.Type)
	}
	body := len(dst) - start - 4
	if body > MaxFramePayload {
		return dst[:start], fmt.Errorf("stream: %s frame payload %d exceeds limit", f.Type, body)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// appendEventCols encodes the epoch/count header and the event columns:
// kind[count]u8, object[count]u64, vs[count]u64, then loc u32 per
// location-kind event, container u64 per containment-kind event, and ve
// u64 per End* event, each in event order.
func appendEventCols(dst []byte, f *Frame) ([]byte, error) {
	for _, e := range f.Events {
		if err := e.Validate(); err != nil {
			return dst, fmt.Errorf("stream: encode %s frame: %w", f.Type, err)
		}
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.Epoch))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Events)))
	for _, e := range f.Events {
		dst = append(dst, byte(e.Kind))
	}
	for _, e := range f.Events {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Object))
	}
	for _, e := range f.Events {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Vs))
	}
	for _, e := range f.Events {
		if e.Kind.Location() {
			dst = binary.BigEndian.AppendUint32(dst, uint32(e.Location))
		}
	}
	for _, e := range f.Events {
		if e.Kind.Containment() {
			dst = binary.BigEndian.AppendUint64(dst, uint64(e.Container))
		}
	}
	for _, e := range f.Events {
		if e.Kind == event.EndLocation || e.Kind == event.EndContainment {
			dst = binary.BigEndian.AppendUint64(dst, uint64(e.Ve))
		}
	}
	return dst, nil
}

// ReadFrame reads and decodes one frame. io.EOF at a frame boundary is
// returned as-is; a partial frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (*Frame, error) {
	f, _, err := ReadFrameCount(r)
	return f, err
}

// ReadFrameCount is ReadFrame reporting the wire bytes consumed (header
// included) — the hook the federate byte counters use.
func ReadFrameCount(r io.Reader) (*Frame, int, error) {
	return ReadFrameCountInto(r, nil)
}

// ReadFrameCountInto is ReadFrameCount decoding the frame's events into
// events[:0] (growing as needed) instead of a fresh slice — the hook the
// coordinator's pooled per-zone decoders use. The returned frame's
// Events aliases the provided slice; passing nil restores the allocating
// behaviour.
func ReadFrameCountInto(r io.Reader, events []event.Event) (*Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFramePayload {
		return nil, 4, fmt.Errorf("stream: frame payload %d exceeds limit", n)
	}
	wire := 4 + int(n)
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, 4, err
	}
	if len(body) < 1 {
		return nil, wire, fmt.Errorf("stream: empty frame")
	}
	f := &Frame{Type: FrameType(body[0])}
	body = body[1:]
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("stream: truncated %s frame", f.Type)
		}
		return nil
	}
	switch f.Type {
	case FrameHello:
		if err := need(12); err != nil {
			return nil, wire, err
		}
		f.Zone = int(int32(binary.BigEndian.Uint32(body)))
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body[4:]))
		// The capability word postdates the first protocol revision;
		// a short body means an old peer (caps 0).
		if len(body) >= 16 {
			f.Caps = binary.BigEndian.Uint32(body[12:])
		}
	case FrameHelloAck:
		if err := need(8); err != nil {
			return nil, wire, err
		}
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body))
		if len(body) >= 12 {
			f.Caps = binary.BigEndian.Uint32(body[8:])
		}
	case FrameAck, FrameBye:
		if err := need(8); err != nil {
			return nil, wire, err
		}
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body))
	case FrameEpoch, FrameFin:
		if err := need(12); err != nil {
			return nil, wire, err
		}
		f.Epoch = model.Epoch(binary.BigEndian.Uint64(body))
		count := int(binary.BigEndian.Uint32(body[8:]))
		body = body[12:]
		if events == nil {
			events = make([]event.Event, 0, count)
		}
		f.Events = events[:0]
		for i := 0; i < count; i++ {
			e, n, err := event.Decode(body)
			if err != nil {
				return nil, wire, fmt.Errorf("stream: %s frame event %d: %w", f.Type, i, err)
			}
			f.Events = append(f.Events, e)
			body = body[n:]
		}
		if len(body) != 0 {
			return nil, wire, fmt.Errorf("stream: %s frame has %d trailing bytes", f.Type, len(body))
		}
	case FrameEpochCols, FrameFinCols:
		if err := f.decodeEventCols(body, events); err != nil {
			return nil, wire, err
		}
	default:
		return nil, wire, fmt.Errorf("stream: unknown frame type %d", uint8(f.Type))
	}
	return f, wire, nil
}

// decodeEventCols decodes the columnar epoch/fin body into f, reusing
// the capacity of events when non-nil.
func (f *Frame) decodeEventCols(body []byte, events []event.Event) error {
	if len(body) < 12 {
		return fmt.Errorf("stream: truncated %s frame", f.Type)
	}
	f.Epoch = model.Epoch(binary.BigEndian.Uint64(body))
	count := int(binary.BigEndian.Uint32(body[8:]))
	body = body[12:]
	if count > MaxFramePayload/13 || len(body) < count {
		return fmt.Errorf("stream: truncated %s frame", f.Type)
	}
	kinds := body[:count]
	body = body[count:]

	// Size the payload columns from the kind column.
	var nLoc, nCont, nVe int
	for _, k := range kinds {
		switch event.Kind(k) {
		case event.StartLocation, event.Missing:
			nLoc++
		case event.EndLocation:
			nLoc++
			nVe++
		case event.StartContainment:
			nCont++
		case event.EndContainment:
			nCont++
			nVe++
		default:
			return fmt.Errorf("stream: %s frame: invalid kind %d", f.Type, k)
		}
	}
	need := 16*count + 4*nLoc + 8*nCont + 8*nVe
	if len(body) != need {
		return fmt.Errorf("stream: %s frame body %d bytes, want %d", f.Type, len(body), need)
	}
	objs := body[:8*count]
	vss := body[8*count : 16*count]
	locs := body[16*count : 16*count+4*nLoc]
	conts := body[16*count+4*nLoc : 16*count+4*nLoc+8*nCont]
	ves := body[16*count+4*nLoc+8*nCont:]

	if events == nil {
		events = make([]event.Event, 0, count)
	}
	f.Events = events[:0]
	var iLoc, iCont, iVe int
	for i := 0; i < count; i++ {
		e := event.Event{
			Kind:   event.Kind(kinds[i]),
			Object: model.Tag(binary.BigEndian.Uint64(objs[8*i:])),
			Vs:     model.Epoch(binary.BigEndian.Uint64(vss[8*i:])),
		}
		switch e.Kind {
		case event.StartLocation:
			e.Location = model.LocationID(int32(binary.BigEndian.Uint32(locs[4*iLoc:])))
			iLoc++
			e.Ve = model.InfiniteEpoch
		case event.Missing:
			e.Location = model.LocationID(int32(binary.BigEndian.Uint32(locs[4*iLoc:])))
			iLoc++
			e.Ve = e.Vs
		case event.EndLocation:
			e.Location = model.LocationID(int32(binary.BigEndian.Uint32(locs[4*iLoc:])))
			iLoc++
			e.Ve = model.Epoch(binary.BigEndian.Uint64(ves[8*iVe:]))
			iVe++
		case event.StartContainment:
			e.Container = model.Tag(binary.BigEndian.Uint64(conts[8*iCont:]))
			iCont++
			e.Ve = model.InfiniteEpoch
		case event.EndContainment:
			e.Container = model.Tag(binary.BigEndian.Uint64(conts[8*iCont:]))
			iCont++
			e.Ve = model.Epoch(binary.BigEndian.Uint64(ves[8*iVe:]))
			iVe++
		}
		if err := e.Validate(); err != nil {
			return fmt.Errorf("stream: %s frame event %d: %w", f.Type, i, err)
		}
		f.Events = append(f.Events, e)
	}
	return nil
}
