package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"spire/internal/model"
)

func TestAppendDecodeRoundTrip(t *testing.T) {
	r := model.Reading{Tag: 0xDEADBEEF, Reader: 7, Time: 12345}
	b := AppendReading(nil, r)
	if len(b) != ReadingSize {
		t.Fatalf("encoded size = %d, want %d", len(b), ReadingSize)
	}
	got, err := DecodeReading(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: got %+v, want %+v", got, r)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := DecodeReading(make([]byte, ReadingSize-1)); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []model.Reading{
		{Tag: 1, Reader: 1, Time: 0},
		{Tag: 2, Reader: 1, Time: 0},
		{Tag: 3, Reader: 2, Time: 1},
	}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != int64(3*ReadingSize) {
		t.Errorf("Bytes = %d, want %d", w.Bytes(), 3*ReadingSize)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d, want 3", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d readings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reading %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteObservationDeterministicOrder(t *testing.T) {
	enc := func() []byte {
		o := model.NewObservation(9)
		o.Add(3, 30)
		o.Add(1, 10)
		o.Add(1, 11)
		o.Add(2, 20)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteObservation(o); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := enc(), enc()
	if !bytes.Equal(a, b) {
		t.Error("WriteObservation must be deterministic")
	}
	rs, err := NewReader(bytes.NewReader(a)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d readings, want 4", len(rs))
	}
	if rs[0].Reader != 1 || rs[3].Reader != 3 {
		t.Errorf("readings not in reader order: %+v", rs)
	}
}

func TestReaderTruncated(t *testing.T) {
	b := AppendReading(nil, model.Reading{Tag: 1, Reader: 1, Time: 1})
	r := NewReader(bytes.NewReader(b[:ReadingSize-3]))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated record must report corruption, got %v", err)
	}
}

func TestReaderCleanEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty stream must return io.EOF, got %v", err)
	}
	all, err := NewReader(bytes.NewReader(nil)).ReadAll()
	if err != nil || len(all) != 0 {
		t.Errorf("ReadAll on empty = %v, %v", all, err)
	}
}

func TestSizeCounter(t *testing.T) {
	var c SizeCounter
	w := NewWriter(&c)
	for i := 0; i < 10; i++ {
		if err := w.Write(model.Reading{Tag: model.Tag(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.N != int64(10*ReadingSize) {
		t.Errorf("SizeCounter = %d, want %d", c.N, 10*ReadingSize)
	}
}

// Property: encode/decode round-trips arbitrary readings.
func TestQuickReadingRoundTrip(t *testing.T) {
	f := func(tag uint64, rd int32, tm int64) bool {
		r := model.Reading{Tag: model.Tag(tag), Reader: model.ReaderID(rd), Time: model.Epoch(tm)}
		got, err := DecodeReading(AppendReading(nil, r))
		if err != nil {
			return false
		}
		// Reader IDs are 32-bit on the wire; epochs are stored as uint64
		// two's complement, so they round-trip exactly.
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptErrorPosition pins the corruption report: the error names the
// zero-based index of the unreadable record and the byte offset at which
// it starts, and unwraps to ErrCorrupt.
func TestCorruptErrorPosition(t *testing.T) {
	var b []byte
	for i := 0; i < 5; i++ {
		b = AppendReading(b, model.Reading{Tag: model.Tag(i + 1), Reader: 1, Time: model.Epoch(i)})
	}
	// Tear the stream in the middle of record 3.
	torn := b[:3*ReadingSize+ReadingSize/2]
	r := NewReader(bytes.NewReader(torn))
	got, err := r.ReadAll()
	if len(got) != 3 {
		t.Fatalf("decoded prefix has %d readings, want 3", len(got))
	}
	for i, rd := range got {
		if rd.Tag != model.Tag(i+1) {
			t.Errorf("prefix reading %d: got tag %d, want %d", i, rd.Tag, i+1)
		}
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T %v, want *CorruptError", err, err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Error("CorruptError must unwrap to ErrCorrupt")
	}
	if ce.Record != 3 || ce.Offset != 3*ReadingSize {
		t.Errorf("position: record %d offset %d, want record 3 offset %d", ce.Record, ce.Offset, 3*ReadingSize)
	}
	if !strings.Contains(ce.Error(), "record 3") || !strings.Contains(ce.Error(), fmt.Sprintf("byte offset %d", 3*ReadingSize)) {
		t.Errorf("message %q must include record index and byte offset", ce.Error())
	}
	// Reader accessors agree with the error.
	if r.Count() != 3 || r.Offset() != 3*ReadingSize {
		t.Errorf("Count/Offset = %d/%d, want 3/%d", r.Count(), r.Offset(), 3*ReadingSize)
	}
}

// TestReaderCountOffset tracks the accessors through a healthy stream.
func TestReaderCountOffset(t *testing.T) {
	var b []byte
	for i := 0; i < 4; i++ {
		b = AppendReading(b, model.Reading{Tag: model.Tag(i + 1)})
	}
	r := NewReader(bytes.NewReader(b))
	for i := 0; i < 4; i++ {
		if r.Count() != int64(i) || r.Offset() != int64(i*ReadingSize) {
			t.Fatalf("before read %d: Count/Offset = %d/%d", i, r.Count(), r.Offset())
		}
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if r.Count() != 4 || r.Offset() != int64(4*ReadingSize) {
		t.Errorf("at EOF: Count/Offset = %d/%d", r.Count(), r.Offset())
	}
}
