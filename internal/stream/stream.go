// Package stream provides the binary wire format for raw RFID readings.
//
// SPIRE's compression experiments (Expt 8, Fig. 11) measure the size of the
// compressed event output against the size of the raw input stream. To make
// that ratio byte-accurate rather than notional, this package defines a
// fixed binary record for the basic RFID triplet <tag id, reader id,
// timestamp> together with streaming encoder/decoder types.
//
// Each reading occupies ReadingSize bytes on the wire:
//
//	tag     8 bytes (big endian)
//	reader  4 bytes
//	time    8 bytes
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spire/internal/model"
)

// ReadingSize is the wire size in bytes of a single raw reading.
const ReadingSize = 8 + 4 + 8

// ErrCorrupt reports a malformed raw stream.
var ErrCorrupt = errors.New("stream: corrupt raw reading stream")

// CorruptError reports where a raw stream died: the zero-based index of
// the record that could not be decoded and the byte offset at which it
// starts. It unwraps to ErrCorrupt, so errors.Is(err, ErrCorrupt) keeps
// working for callers that don't care about position.
type CorruptError struct {
	Record int64 // index of the unreadable record
	Offset int64 // byte offset where that record starts
	Err    error // underlying cause (e.g. io.ErrUnexpectedEOF)
}

// Error formats the position and cause.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("stream: corrupt raw reading stream: record %d at byte offset %d: %v",
		e.Record, e.Offset, e.Err)
}

// Unwrap makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// AppendReading appends the wire form of r to dst and returns the extended
// slice.
func AppendReading(dst []byte, r model.Reading) []byte {
	var buf [ReadingSize]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.Tag))
	binary.BigEndian.PutUint32(buf[8:12], uint32(r.Reader))
	binary.BigEndian.PutUint64(buf[12:20], uint64(r.Time))
	return append(dst, buf[:]...)
}

// DecodeReading decodes one reading from the front of b.
func DecodeReading(b []byte) (model.Reading, error) {
	if len(b) < ReadingSize {
		return model.Reading{}, fmt.Errorf("%w: %d bytes, want %d", ErrCorrupt, len(b), ReadingSize)
	}
	return model.Reading{
		Tag:    model.Tag(binary.BigEndian.Uint64(b[0:8])),
		Reader: model.ReaderID(binary.BigEndian.Uint32(b[8:12])),
		Time:   model.Epoch(binary.BigEndian.Uint64(b[12:20])),
	}, nil
}

// Writer streams readings to an io.Writer, tracking the total bytes
// emitted. It buffers internally; call Flush before inspecting the
// destination.
type Writer struct {
	w     *bufio.Writer
	bytes int64
	count int64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one reading.
func (w *Writer) Write(r model.Reading) error {
	var buf [ReadingSize]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.Tag))
	binary.BigEndian.PutUint32(buf[8:12], uint32(r.Reader))
	binary.BigEndian.PutUint64(buf[12:20], uint64(r.Time))
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	w.bytes += ReadingSize
	w.count++
	return nil
}

// WriteObservation emits every reading in the observation, grouped by
// reader in ascending reader order for determinism.
func (w *Writer) WriteObservation(o *model.Observation) error {
	readers := make([]model.ReaderID, 0, len(o.ByReader))
	for r := range o.ByReader {
		readers = append(readers, r)
	}
	for i := 1; i < len(readers); i++ {
		for j := i; j > 0 && readers[j] < readers[j-1]; j-- {
			readers[j], readers[j-1] = readers[j-1], readers[j]
		}
	}
	for _, r := range readers {
		for _, g := range o.ByReader[r] {
			if err := w.Write(model.Reading{Tag: g, Reader: r, Time: o.Time}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush flushes the internal buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Bytes returns the total wire bytes written so far.
func (w *Writer) Bytes() int64 { return w.bytes }

// Count returns the number of readings written so far.
func (w *Writer) Count() int64 { return w.count }

// Reader decodes a raw reading stream.
type Reader struct {
	r     *bufio.Reader
	count int64 // records decoded successfully
	// buf is the reused record buffer: a local array would escape
	// through the io.ReadFull interface call and cost one heap
	// allocation per decoded reading.
	buf [ReadingSize]byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Count returns the number of records decoded successfully so far. After
// a *CorruptError it is also the index of the record that failed.
func (r *Reader) Count() int64 { return r.count }

// Offset returns the byte offset of the next record boundary — the number
// of bytes consumed by successful decodes.
func (r *Reader) Offset() int64 { return r.count * ReadingSize }

// Read decodes the next reading. It returns io.EOF at a clean end of
// stream, and a *CorruptError (wrapping ErrCorrupt) carrying the record
// index and byte offset if the stream ends mid-record.
func (r *Reader) Read() (model.Reading, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return model.Reading{}, io.EOF
		}
		return model.Reading{}, &CorruptError{Record: r.count, Offset: r.count * ReadingSize, Err: err}
	}
	rd, err := DecodeReading(r.buf[:])
	if err != nil {
		return model.Reading{}, &CorruptError{Record: r.count, Offset: r.count * ReadingSize, Err: err}
	}
	r.count++
	return rd, nil
}

// ReadAll decodes the remainder of the stream. On a corrupt stream it
// returns every reading successfully decoded before the failure alongside
// the *CorruptError, so a torn tail costs only the torn record.
func (r *Reader) ReadAll() ([]model.Reading, error) {
	var out []model.Reading
	for {
		rd, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rd)
	}
}

// SizeCounter is an io.Writer that discards its input but counts bytes.
// The experiment harness uses it to measure stream sizes without holding
// the streams in memory.
type SizeCounter struct{ N int64 }

// Write implements io.Writer.
func (c *SizeCounter) Write(p []byte) (int, error) {
	c.N += int64(len(p))
	return len(p), nil
}
