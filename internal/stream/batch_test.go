package stream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"spire/internal/model"
)

func randomObservation(rng *rand.Rand, t model.Epoch) *model.Observation {
	o := model.NewObservation(t)
	for r := model.ReaderID(1); r <= 6; r++ {
		if rng.Intn(4) == 0 {
			continue
		}
		n := rng.Intn(8)
		for k := 0; k < n; k++ {
			o.Add(r, model.Tag(rng.Intn(40)+1))
		}
		if n == 0 {
			o.ByReader[r] = []model.Tag{} // interrogated, read nothing
		}
	}
	return o
}

// TestWriteBatchMatchesWriteObservation pins the wire bytes: a batch and
// its equivalent observation serialize identically.
func TestWriteBatchMatchesWriteObservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var fromObs, fromBatch bytes.Buffer
	wo, wb := NewWriter(&fromObs), NewWriter(&fromBatch)
	var b model.Batch
	for e := model.Epoch(1); e <= 50; e++ {
		o := randomObservation(rng, e)
		if err := wo.WriteObservation(o); err != nil {
			t.Fatal(err)
		}
		if err := wb.WriteBatch(b.FromObservation(o)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wo.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromObs.Bytes(), fromBatch.Bytes()) {
		t.Fatal("WriteBatch bytes differ from WriteObservation")
	}
	if wo.Count() != wb.Count() || wo.Bytes() != wb.Bytes() {
		t.Fatalf("writer accounting differs: %d/%d vs %d/%d",
			wo.Count(), wo.Bytes(), wb.Count(), wb.Bytes())
	}
}

// TestBatchReaderRoundTrip decodes a written stream epoch by epoch into
// a reused batch and checks the decoded epochs match what was written.
// Empty groups are deliberately absent from the expectation: the wire
// cannot represent a reader that read nothing.
func TestBatchReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []*model.Observation
	for e := model.Epoch(1); e <= 60; e++ {
		o := randomObservation(rng, e)
		if o.Total() == 0 {
			continue // an epoch with no readings does not appear on the wire
		}
		if err := w.WriteObservation(o); err != nil {
			t.Fatal(err)
		}
		for r, tags := range o.ByReader {
			if len(tags) == 0 {
				delete(o.ByReader, r)
			}
		}
		want = append(want, o)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	br := NewBatchReader(bytes.NewReader(buf.Bytes()))
	var b model.Batch
	for i := 0; ; i++ {
		err := br.ReadBatch(&b)
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("decoded %d epochs, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(want) {
			t.Fatalf("decoded more than the %d epochs written", len(want))
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("epoch %d: %v", b.Time, err)
		}
		if got := b.Observation(); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("epoch %d: decoded %+v, want %+v", b.Time, got, want[i])
		}
	}
	if br.Count() != w.Count() {
		t.Fatalf("decoded %d records, wrote %d", br.Count(), w.Count())
	}
}

// TestBatchReaderRegroups decodes a stream whose epoch interleaves
// readers (a foreign writer): groups must come out merged and ascending.
func TestBatchReaderRegroups(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	seq := []model.Reading{
		{Tag: 10, Reader: 3, Time: 5},
		{Tag: 11, Reader: 1, Time: 5},
		{Tag: 12, Reader: 3, Time: 5},
		{Tag: 13, Reader: 2, Time: 5},
	}
	for _, rd := range seq {
		if err := w.Write(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBatchReader(bytes.NewReader(buf.Bytes()))
	var b model.Batch
	if err := br.ReadBatch(&b); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[model.ReaderID][]model.Tag{1: {11}, 2: {13}, 3: {10, 12}}
	if got := b.Observation().ByReader; !reflect.DeepEqual(got, want) {
		t.Fatalf("regrouped batch = %v, want %v", got, want)
	}
}

// TestBatchReaderCorruptTail pins the torn-record contract: everything
// before the tear decodes, then the *CorruptError surfaces.
func TestBatchReaderCorruptTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rd := range []model.Reading{
		{Tag: 1, Reader: 1, Time: 1},
		{Tag: 2, Reader: 1, Time: 2},
	} {
		if err := w.Write(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:ReadingSize+ReadingSize/2]
	br := NewBatchReader(bytes.NewReader(torn))
	var b model.Batch
	if err := br.ReadBatch(&b); err != nil {
		t.Fatal(err)
	}
	if b.Time != 1 || b.Total() != 1 {
		t.Fatalf("first epoch should decode: %+v", b)
	}
	err := br.ReadBatch(&b)
	var ce *CorruptError
	if err == nil || !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

// TestBatchReaderSteadyStateAllocs pins the hot decode loop: once the
// batch buffers are warm, decoding an epoch allocates nothing.
func TestBatchReaderSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for e := model.Epoch(1); e <= 400; e++ {
		o := randomObservation(rng, e)
		if o.Total() == 0 {
			o.Add(1, 7)
		}
		if err := w.WriteObservation(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	var b model.Batch
	r := bytes.NewReader(raw)
	br := NewBatchReader(r)
	decodeAll := func() {
		r.Reset(raw)
		*br = BatchReader{r: NewReader(r)} // NewReader allocs are per-stream, not per-epoch
		for {
			if err := br.ReadBatch(&b); err == io.EOF {
				return
			} else if err != nil {
				t.Fatal(err)
			}
		}
	}
	decodeAll() // warm the batch buffers
	perStream := testing.AllocsPerRun(50, decodeAll)
	// A fresh Reader is two allocations (struct + bufio buffer); nothing
	// else may allocate across the 400 decoded epochs.
	if perStream > 3 {
		t.Errorf("decoding 400 epochs costs %.1f allocs, want per-stream setup only (<=3)", perStream)
	}
}
