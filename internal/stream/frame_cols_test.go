package stream

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

func colsTestEvents() []event.Event {
	return []event.Event{
		event.NewStartLocation(11, 2, 40),
		event.NewEndLocation(11, 2, 40, 45),
		event.NewStartContainment(12, 99, 41),
		event.NewEndContainment(12, 99, 41, 45),
		event.NewMissing(13, 3, 45),
	}
}

// TestColumnarFrameRoundTrip pins the columnar epoch encoding: it decodes
// back to the same events as the row encoding and occupies exactly the
// same number of wire bytes (the columns are a reshuffle, not a new
// format cost).
func TestColumnarFrameRoundTrip(t *testing.T) {
	events := colsTestEvents()
	for _, typ := range []FrameType{FrameEpochCols, FrameFinCols} {
		row := &Frame{Type: FrameEpoch, Epoch: 45, Events: events}
		if typ == FrameFinCols {
			row.Type = FrameFin
		}
		cols := &Frame{Type: typ, Epoch: 45, Events: events}

		var rowBuf, colBuf bytes.Buffer
		rn, err := WriteFrameCount(&rowBuf, row)
		if err != nil {
			t.Fatal(err)
		}
		cn, err := WriteFrameCount(&colBuf, cols)
		if err != nil {
			t.Fatal(err)
		}
		if rn != cn {
			t.Errorf("%s: columnar frame is %d bytes, row frame %d — sizes must match", typ, cn, rn)
		}

		got, n, err := ReadFrameCount(bytes.NewReader(colBuf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", typ, err)
		}
		if n != cn {
			t.Errorf("%s: decode consumed %d bytes, wrote %d", typ, n, cn)
		}
		if got.Type != typ || got.Epoch != 45 {
			t.Errorf("%s: round trip header %+v", typ, got)
		}
		if !slices.Equal(got.Events, events) {
			t.Errorf("%s: round trip events diverge:\n got %v\nwant %v", typ, got.Events, events)
		}
	}
}

// TestColumnarFrameRejectsCorrupt pins that truncation, bad kinds, and
// trailing bytes are rejected rather than misdecoded.
func TestColumnarFrameRejectsCorrupt(t *testing.T) {
	buf, err := AppendFrame(nil, &Frame{Type: FrameEpochCols, Epoch: 7, Events: colsTestEvents()})
	if err != nil {
		t.Fatal(err)
	}
	// Trailing byte.
	grown := append(slices.Clone(buf), 0)
	binary.BigEndian.PutUint32(grown, uint32(len(grown)-4))
	if _, _, err := ReadFrameCount(bytes.NewReader(grown)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Truncated body.
	cut := slices.Clone(buf[:len(buf)-3])
	binary.BigEndian.PutUint32(cut, uint32(len(cut)-4))
	if _, _, err := ReadFrameCount(bytes.NewReader(cut)); err == nil {
		t.Error("truncated body accepted")
	}
	// Invalid kind in the kind column (offset: 4 len + 1 type + 12 header).
	bad := slices.Clone(buf)
	bad[17] = 0xEE
	if _, _, err := ReadFrameCount(bytes.NewReader(bad)); err == nil {
		t.Error("invalid kind accepted")
	}
}

// TestHelloCapsInterop pins capability negotiation compatibility both
// ways: a pre-capability Hello/HelloAck body (no caps word) decodes as
// caps 0, and the extended body round-trips its caps — so an old peer on
// either side of the handshake silently negotiates the legacy row
// encoding.
func TestHelloCapsInterop(t *testing.T) {
	for _, f := range []*Frame{
		{Type: FrameHello, Zone: 2, Epoch: 17, Caps: CapColumnarEpoch},
		{Type: FrameHelloAck, Epoch: model.EpochNone, Caps: CapColumnarEpoch},
	} {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ReadFrameCount(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: %v", f.Type, err)
		}
		if got.Caps != CapColumnarEpoch || got.Epoch != f.Epoch || got.Zone != f.Zone {
			t.Errorf("%s: round trip %+v, want %+v", f.Type, got, f)
		}

		// Strip the caps word to reconstruct the old wire form.
		legacy := slices.Clone(buf[:len(buf)-4])
		binary.BigEndian.PutUint32(legacy, uint32(len(legacy)-4))
		got, _, err = ReadFrameCount(bytes.NewReader(legacy))
		if err != nil {
			t.Fatalf("%s legacy: %v", f.Type, err)
		}
		if got.Caps != 0 {
			t.Errorf("%s legacy: caps %d, want 0", f.Type, got.Caps)
		}
		if got.Epoch != f.Epoch || (f.Type == FrameHello && got.Zone != f.Zone) {
			t.Errorf("%s legacy: round trip %+v, want %+v", f.Type, got, f)
		}
	}
}

// TestReadFrameCountIntoReuses pins the pooled-decode contract: the
// returned events alias the caller's slice when capacity suffices.
func TestReadFrameCountIntoReuses(t *testing.T) {
	buf, err := AppendFrame(nil, &Frame{Type: FrameEpochCols, Epoch: 7, Events: colsTestEvents()})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]event.Event, 0, 32)
	f, _, err := ReadFrameCountInto(bytes.NewReader(buf), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &f.Events[0] != &scratch[:1][0] {
		t.Error("decode did not reuse the provided slice")
	}
}
