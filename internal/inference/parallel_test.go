package inference

import (
	"fmt"
	"maps"
	"testing"

	"spire/internal/epc"
	"spire/internal/graph"
	"spire/internal/model"
	"spire/internal/trace"
)

// The component-sharded Infer must be indistinguishable from the global
// layer-interleaved reference sweep: identical Results and identical
// graph side effects (edge pruning) for every worker count, with the
// settled-slab cache on or off, under both modes, on a stream with real
// churn (staggered scans, missed reads, objects moving between shelves).

// churnScenario is a deterministic multi-shelf workload generator. Shelf
// s is scanned in epoch e when (e+s)%3 == 0; a scanned shelf misses some
// tags; every 16th epoch one case group rotates to the next shelf.
type churnScenario struct {
	readers []*model.Reader
	groups  [][]model.Tag // tags currently on shelf s
}

func newChurnScenario(t testing.TB, shelves, casesPerShelf, itemsPerCase int) *churnScenario {
	t.Helper()
	seq, err := epc.NewSequencer(3)
	if err != nil {
		t.Fatal(err)
	}
	sc := &churnScenario{}
	for s := 0; s < shelves; s++ {
		sc.readers = append(sc.readers, &model.Reader{
			ID: model.ReaderID(s + 1), Location: model.LocationID(100 + s), Period: 1,
		})
		var grp []model.Tag
		p, _ := seq.Next(model.LevelPallet)
		grp = append(grp, p)
		for c := 0; c < casesPerShelf; c++ {
			ct, _ := seq.Next(model.LevelCase)
			grp = append(grp, ct)
			for i := 0; i < itemsPerCase; i++ {
				it, _ := seq.Next(model.LevelItem)
				grp = append(grp, it)
			}
		}
		sc.groups = append(sc.groups, grp)
	}
	return sc
}

// step advances the scenario by one epoch and applies the epoch's reader
// sets to every graph in gs (keeping them in lockstep).
func (sc *churnScenario) step(t testing.TB, e model.Epoch, gs ...*graph.Graph) {
	t.Helper()
	if e%16 == 0 {
		// Rotate the last case (and its items) of each shelf to the next
		// shelf: color changes, edge churn, component splits and merges.
		moved := make([][]model.Tag, len(sc.groups))
		for s, grp := range sc.groups {
			// The moved block is the shelf's last case plus its items: walk
			// back to the last LevelCase tag.
			cut := -1
			for i := len(grp) - 1; i >= 1; i-- {
				if l, _ := epc.LevelOf(grp[i]); l == model.LevelCase {
					cut = i
					break
				}
			}
			if cut > 0 {
				moved[(s+1)%len(sc.groups)] = grp[cut:]
				sc.groups[s] = grp[:cut]
			}
		}
		for s, m := range moved {
			sc.groups[s] = append(sc.groups[s], m...)
		}
	}
	for s, r := range sc.readers {
		if (int(e)+s)%3 != 0 {
			continue // shelf not scanned this epoch
		}
		var read []model.Tag
		for i, tag := range sc.groups[s] {
			if (i*31+int(e))%9 == 0 {
				continue // missed reading
			}
			read = append(read, tag)
		}
		for _, g := range gs {
			if err := g.Update(r, read, e); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func compareResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Now != want.Now || got.Partial != want.Partial {
		t.Fatalf("%s: header mismatch: got (%d,%v) want (%d,%v)",
			label, got.Now, got.Partial, want.Now, want.Partial)
	}
	if !maps.Equal(got.Locations, want.Locations) {
		t.Fatalf("%s: Locations diverge: %d vs %d entries", label, len(got.Locations), len(want.Locations))
	}
	if !maps.Equal(got.Parents, want.Parents) {
		t.Fatalf("%s: Parents diverge: %d vs %d entries", label, len(got.Parents), len(want.Parents))
	}
	if !maps.Equal(got.Observed, want.Observed) {
		t.Fatalf("%s: Observed diverge", label)
	}
}

func baseConfig() Config {
	cfg := DefaultConfig()
	cfg.PruneThreshold = 0.25 // exercise mid-sweep pruning
	return cfg
}

// TestInferMatchesReference is the differential pin: sharded Infer vs the
// retained global reference, in lockstep on twin graphs, across worker
// counts and cache settings, with a complete pass every 4th epoch.
func TestInferMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, disableCache := range []bool{false, true} {
			t.Run(fmt.Sprintf("workers=%d/cache=%v", workers, !disableCache), func(t *testing.T) {
				cfg := baseConfig()
				cfg.Workers = workers
				cfg.DisableCache = disableCache

				gA := newGraph(t)
				gB := newGraph(t)
				infA, err := New(cfg, gA.Config().HistorySize)
				if err != nil {
					t.Fatal(err)
				}
				infB, err := New(baseConfig(), gB.Config().HistorySize)
				if err != nil {
					t.Fatal(err)
				}
				sc := newChurnScenario(t, 6, 2, 3)
				for e := model.Epoch(1); e <= 64; e++ {
					sc.step(t, e, gA, gB)
					mode := Partial
					if e%4 == 0 {
						mode = Complete
					}
					resA := infA.Infer(gA, e, mode)
					resB := infB.InferReference(gB, e, mode)
					label := fmt.Sprintf("epoch %d (%v)", e, mode)
					compareResults(t, label, resA, resB)
					if gA.EdgeCount() != gB.EdgeCount() || gA.Len() != gB.Len() {
						t.Fatalf("%s: graphs diverged: %d/%d edges, %d/%d nodes",
							label, gA.EdgeCount(), gB.EdgeCount(), gA.Len(), gB.Len())
					}
					if err := gA.CheckInvariants(e); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if mode == Complete {
						st := infA.LastStats()
						if st.NodesInferred+st.NodesCached != gA.Len() {
							t.Fatalf("%s: stats cover %d+%d of %d nodes",
								label, st.NodesInferred, st.NodesCached, gA.Len())
						}
						if len(resA.Locations) != gA.Len() {
							t.Fatalf("%s: %d verdicts for %d nodes", label, len(resA.Locations), gA.Len())
						}
					}
				}
			})
		}
	}
}

// TestInferCachedSteadyState pins the incremental win: once the stream
// goes quiet every component settles, passes touch zero nodes, and the
// cached verdicts still match the reference sweep byte for byte.
func TestInferCachedSteadyState(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 1
	gA := newGraph(t)
	gB := newGraph(t)
	infA, err := New(cfg, gA.Config().HistorySize)
	if err != nil {
		t.Fatal(err)
	}
	infB, err := New(baseConfig(), gB.Config().HistorySize)
	if err != nil {
		t.Fatal(err)
	}
	sc := newChurnScenario(t, 4, 2, 3)
	var e model.Epoch
	for e = 1; e <= 24; e++ {
		sc.step(t, e, gA, gB)
		compareResults(t, fmt.Sprintf("warm epoch %d", e),
			infA.Infer(gA, e, Complete), infB.InferReference(gB, e, Complete))
	}
	// Quiet stream: no updates at all. After the fading belief of the
	// last readings drops below the unknown mass (age 2 at θ=1.25), every
	// component is settled and cached.
	for ; e <= 40; e++ {
		resA := infA.Infer(gA, e, Complete)
		compareResults(t, fmt.Sprintf("quiet epoch %d", e), resA, infB.InferReference(gB, e, Complete))
		if e >= 30 {
			st := infA.LastStats()
			if st.DirtyComponents != 0 || st.NodesInferred != 0 {
				t.Fatalf("quiet epoch %d: %d dirty components, %d nodes inferred; want all cached",
					e, st.DirtyComponents, st.NodesInferred)
			}
			if st.NodesCached != gA.Len() || st.CleanComponents == 0 {
				t.Fatalf("quiet epoch %d: %d of %d nodes cached over %d clean components",
					e, st.NodesCached, gA.Len(), st.CleanComponents)
			}
		}
	}
}

// TestInferTracedTagForcesRecompute pins the provenance exception: a
// traced tag inside a settled, cache-eligible component forces its
// component to be re-inferred so the per-epoch records keep firing.
func TestInferTracedTagForcesRecompute(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 1
	g := newGraph(t)
	inf, err := New(cfg, g.Config().HistorySize)
	if err != nil {
		t.Fatal(err)
	}
	sc := newChurnScenario(t, 2, 1, 2)
	var e model.Epoch
	for e = 1; e <= 12; e++ {
		sc.step(t, e, g)
		inf.Infer(g, e, Complete)
	}
	for ; e <= 20; e++ { // quiet: let everything settle into the cache
		inf.Infer(g, e, Complete)
	}
	if st := inf.LastStats(); st.DirtyComponents != 0 {
		t.Fatalf("precondition failed: %d dirty components before tracing", st.DirtyComponents)
	}

	traced := sc.groups[0][len(sc.groups[0])-1] // one settled item
	rec := trace.New(trace.Config{Tags: []model.Tag{traced}})
	inf.SetTracer(rec)
	res := inf.Infer(g, e, Complete)
	st := inf.LastStats()
	if st.DirtyComponents != 1 {
		t.Fatalf("traced component not re-inferred: %d dirty components", st.DirtyComponents)
	}
	if loc, ok := res.Locations[traced]; !ok || loc != model.LocationUnknown {
		t.Fatalf("traced tag verdict changed under re-inference: %v (present=%v)", loc, ok)
	}
	recs := rec.TagRecords(traced)
	if len(recs) == 0 {
		t.Fatal("no provenance records for traced tag in cached component")
	}
	found := false
	for _, r := range recs {
		if r.Epoch == e && r.Mech == trace.MechNodeInference {
			found = true
		}
	}
	if !found {
		t.Fatalf("no node-inference record at epoch %d for traced tag", e)
	}

	// Detaching the recorder re-enables the cache for that component.
	inf.SetTracer(nil)
	inf.Infer(g, e+1, Complete)
	if st := inf.LastStats(); st.DirtyComponents != 0 {
		t.Fatalf("component still dirty after tracer detached: %d", st.DirtyComponents)
	}
}

// TestInferAllocsSerial pins satellite 1 (the epoch-stamped InferDist /
// DistStamp scratch replacing the per-pass distance map) and the pooled
// sweep state: a warm serial pass allocates nothing, with the cache off
// (full re-sweep) and in cached steady state.
func TestInferAllocsSerial(t *testing.T) {
	run := func(name string, disableCache bool, advance bool) {
		cfg := DefaultConfig()
		cfg.Workers = 1
		cfg.DisableCache = disableCache
		g, now := buildWarehouseGraph(t, 8, 2, 5)
		inf, err := New(cfg, g.Config().HistorySize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ { // warm scratch, settle the cache
			if advance {
				now++
			}
			inf.Infer(g, now, Complete)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if advance {
				now++
			}
			inf.Infer(g, now, Complete)
		})
		if allocs != 0 {
			t.Errorf("%s: Infer allocates %.1f allocs/op, want 0", name, allocs)
		}
	}
	run("full-sweep", true, false)
	run("cached-steady-state", false, true)
}
