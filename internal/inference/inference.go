package inference

import (
	"fmt"
	"math"
	"sort"

	"spire/internal/graph"
	"spire/internal/model"
)

// Result is the outcome of one inference pass: the most likely location
// and most likely container per object.
type Result struct {
	Now     model.Epoch
	Partial bool

	// Locations maps each interpreted object to its most likely location,
	// which may be model.LocationUnknown (the object is away from every
	// known location — a missing object under complete inference).
	// Objects whose verdict was withheld (partial inference) or that lie
	// outside the partial halo are absent.
	Locations map[model.Tag]model.LocationID

	// Parents maps each interpreted object to its most likely container;
	// model.NoTag records the positive verdict "no container". Objects
	// outside the partial halo are absent.
	Parents map[model.Tag]model.Tag

	// Observed marks the objects read in this epoch (the colored nodes).
	Observed map[model.Tag]bool
}

// Inferencer runs the iterative inference algorithm. It keeps reusable
// scratch buffers, so one Inferencer should be reused across epochs; it is
// not safe for concurrent use.
type Inferencer struct {
	cfg     Config
	weights []float64 // Zipf table, sized to the graph's history length

	// scratch reused across epochs
	dist     map[model.Tag]int32
	frontier []*graph.Node
	next     []*graph.Node
	edgeProb map[*graph.Edge]float64
	probs    map[model.LocationID]float64
	pruned   []*graph.Edge
	props    []propagation
}

// propagation is one determined neighbor color feeding node inference.
type propagation struct {
	loc model.LocationID
	p   float64
}

// New creates an Inferencer for graphs with the given co-location history
// size.
func New(cfg Config, historySize int) (*Inferencer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if historySize < 1 || historySize > graph.MaxHistorySize {
		return nil, fmt.Errorf("inference: history size %d out of range", historySize)
	}
	return &Inferencer{
		cfg:      cfg,
		weights:  graph.ZipfWeights(historySize, cfg.Alpha),
		dist:     make(map[model.Tag]int32),
		edgeProb: make(map[*graph.Edge]float64),
		probs:    make(map[model.LocationID]float64),
	}, nil
}

// Config returns the inference parameters in use.
func (inf *Inferencer) Config() Config { return inf.cfg }

// Infer runs one inference pass over g for epoch now.
//
// The iterative algorithm (§IV-C) classifies nodes by their hop distance d
// from the nearest colored node and sweeps outward: edge inference runs for
// d=0 (observed) nodes first; then, layer by layer, edge inference followed
// by node inference for uncolored nodes, so colors and edge probabilities
// settled at distance d feed the inference at distance d+1. Nodes in
// components with no colored node are processed last, in tag order, using
// whatever colors have settled.
//
// Under Partial mode only nodes with d ≤ PartialHops are interpreted and
// "unknown" location verdicts are withheld from the result (§IV-D).
func (inf *Inferencer) Infer(g *graph.Graph, now model.Epoch, mode Mode) *Result {
	res := &Result{
		Now:       now,
		Partial:   mode == Partial,
		Locations: make(map[model.Tag]model.LocationID),
		Parents:   make(map[model.Tag]model.Tag),
		Observed:  make(map[model.Tag]bool),
	}
	clear(inf.dist)
	clear(inf.edgeProb)

	// Layer d=0: the colored nodes. Their location verdict is their
	// observation; edge inference estimates their most likely parents.
	inf.frontier = inf.frontier[:0]
	g.EachColored(now, func(n *graph.Node) {
		inf.dist[n.Tag] = 0
		inf.frontier = append(inf.frontier, n)
		res.Observed[n.Tag] = true
		res.Locations[n.Tag] = n.RecentColor
	})
	sortNodes(inf.frontier)
	for _, n := range inf.frontier {
		res.Parents[n.Tag] = inf.edgeInference(g, n)
	}

	// Sweep outward, one hop at a time.
	maxHops := int32(math.MaxInt32)
	if mode == Partial {
		maxHops = int32(inf.cfg.PartialHops)
	}
	for d := int32(1); d <= maxHops && len(inf.frontier) > 0; d++ {
		inf.next = inf.next[:0]
		for _, n := range inf.frontier {
			n.VisitParents(func(e *graph.Edge) {
				if _, seen := inf.dist[e.Parent.Tag]; !seen {
					inf.dist[e.Parent.Tag] = d
					inf.next = append(inf.next, e.Parent)
				}
			})
			n.VisitChildren(func(e *graph.Edge) {
				if _, seen := inf.dist[e.Child.Tag]; !seen {
					inf.dist[e.Child.Tag] = d
					inf.next = append(inf.next, e.Child)
				}
			})
		}
		inf.frontier, inf.next = inf.next, inf.frontier
		sortNodes(inf.frontier)
		for _, n := range inf.frontier {
			res.Parents[n.Tag] = inf.edgeInference(g, n)
			loc := inf.nodeInference(n, now, res)
			if mode == Partial && loc == model.LocationUnknown {
				// Withhold: with only a subset of readers having read this
				// epoch, "unknown" is more likely a not-yet-read location
				// than a true disappearance.
				delete(res.Parents, n.Tag)
				continue
			}
			res.Locations[n.Tag] = loc
		}
	}

	if mode == Complete {
		// Components with no colored node (every member unobserved).
		var rest []*graph.Node
		g.Nodes(func(n *graph.Node) {
			if _, seen := inf.dist[n.Tag]; !seen {
				rest = append(rest, n)
			}
		})
		sortNodes(rest)
		for _, n := range rest {
			res.Parents[n.Tag] = inf.edgeInference(g, n)
			res.Locations[n.Tag] = inf.nodeInference(n, now, res)
		}
	}
	return res
}

// edgeInference applies Eqs. 1-2 to the incoming edges of n, stores each
// edge's probability for later color propagation, optionally prunes
// low-confidence edges, and returns the most likely container (model.NoTag
// when none).
func (inf *Inferencer) edgeInference(g *graph.Graph, n *graph.Node) model.Tag {
	if n.NumParents() == 0 {
		return model.NoTag
	}
	beta := inf.cfg.Beta
	if inf.cfg.AdaptiveBeta {
		beta = n.AdaptiveBeta(inf.cfg.Beta)
	}

	inf.pruned = inf.pruned[:0]
	var z float64
	var best *graph.Edge
	var bestConf float64
	n.VisitParents(func(e *graph.Edge) {
		conf := beta * e.History.Weight(inf.weights)
		if n.ConfirmedEdge == e {
			conf += 1 - beta
		}
		if inf.cfg.PruneThreshold > 0 && conf < inf.cfg.PruneThreshold {
			inf.pruned = append(inf.pruned, e)
			return
		}
		z += conf
		inf.edgeProb[e] = conf // normalized below
		if best == nil || conf > bestConf ||
			(conf == bestConf && e.Parent.Tag < best.Parent.Tag) {
			best, bestConf = e, conf
		}
	})
	for _, e := range inf.pruned {
		g.RemoveEdge(e)
		delete(inf.edgeProb, e)
	}
	if best == nil || z == 0 {
		// No surviving edge carries any belief: report "no container"
		// rather than an arbitrary pick.
		return model.NoTag
	}
	n.VisitParents(func(e *graph.Edge) {
		inf.edgeProb[e] /= z
	})
	return best.Parent.Tag
}

// nodeInference applies Eqs. 3-4 to an uncolored node and returns the most
// likely location color, possibly model.LocationUnknown. Colors settled in
// res.Locations propagate through incident edges weighted by the edge
// probabilities assigned during edge inference.
func (inf *Inferencer) nodeInference(n *graph.Node, now model.Epoch, res *Result) model.LocationID {
	clear(inf.probs)
	gamma := inf.cfg.Gamma

	// The fading belief in the most recent observation.
	fade := 0.0
	if n.SeenAt != model.EpochNone && n.RecentColor.Known() {
		age := float64(now - n.SeenAt)
		if age < 1 {
			age = 1
		}
		fade = 1 / math.Pow(age, inf.cfg.Theta)
		inf.probs[n.RecentColor] += (1 - gamma) * fade
	}
	pUnknown := (1 - gamma) * (1 - fade)

	// Colors propagated through edges from neighbors whose color is
	// already determined (observed or inferred in an earlier layer),
	// weighted by edge probability and normalized by Z2 over the
	// propagating edges only.
	var z2 float64
	inf.props = inf.props[:0]
	collect := func(e *graph.Edge, other *graph.Node) {
		loc, ok := res.Locations[other.Tag]
		if !ok || !loc.Known() {
			return
		}
		p, ok := inf.edgeProb[e]
		if !ok || p == 0 {
			return
		}
		z2 += p
		inf.props = append(inf.props, propagation{loc: loc, p: p})
	}
	n.VisitParents(func(e *graph.Edge) { collect(e, e.Parent) })
	n.VisitChildren(func(e *graph.Edge) { collect(e, e.Child) })
	if z2 > 0 {
		for _, pr := range inf.props {
			inf.probs[pr.loc] += gamma * pr.p / z2
		}
	}

	// Most likely color; known locations win ties against "unknown", and
	// lower location IDs win ties among known locations (determinism).
	best, bestP := model.LocationUnknown, pUnknown
	for loc, p := range inf.probs {
		if p > bestP || (p == bestP && (best == model.LocationUnknown || loc < best)) {
			best, bestP = loc, p
		}
	}
	return best
}

func sortNodes(nodes []*graph.Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Tag < nodes[j].Tag })
}
