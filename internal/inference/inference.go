package inference

import (
	"cmp"
	"fmt"
	"maps"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"spire/internal/graph"
	"spire/internal/model"
	"spire/internal/trace"
)

// Result is the outcome of one inference pass: the most likely location
// and most likely container per object.
type Result struct {
	Now     model.Epoch
	Partial bool

	// Locations maps each interpreted object to its most likely location,
	// which may be model.LocationUnknown (the object is away from every
	// known location — a missing object under complete inference).
	// Objects whose verdict was withheld (partial inference) or that lie
	// outside the partial halo are absent.
	Locations map[model.Tag]model.LocationID

	// Parents maps each interpreted object to its most likely container;
	// model.NoTag records the positive verdict "no container". Objects
	// outside the partial halo are absent.
	Parents map[model.Tag]model.Tag

	// Observed marks the objects read in this epoch (the colored nodes).
	Observed map[model.Tag]bool
}

// Clone returns a deep copy of the result with freshly allocated maps.
// Infer reuses its Result across calls; callers that retain a result past
// the next Infer call — or hand it to another goroutine — must clone it.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := &Result{
		Now:       r.Now,
		Partial:   r.Partial,
		Locations: make(map[model.Tag]model.LocationID, len(r.Locations)),
		Parents:   make(map[model.Tag]model.Tag, len(r.Parents)),
		Observed:  make(map[model.Tag]bool, len(r.Observed)),
	}
	for k, v := range r.Locations {
		out.Locations[k] = v
	}
	for k, v := range r.Parents {
		out.Parents[k] = v
	}
	for k, v := range r.Observed {
		out.Observed[k] = v
	}
	return out
}

// reset prepares a pooled result for a new pass, clearing (or lazily
// allocating) its maps.
func (r *Result) reset(now model.Epoch, partial bool) {
	r.Now = now
	r.Partial = partial
	if r.Locations == nil {
		r.Locations = make(map[model.Tag]model.LocationID)
		r.Parents = make(map[model.Tag]model.Tag)
		r.Observed = make(map[model.Tag]bool)
		return
	}
	clear(r.Locations)
	clear(r.Parents)
	clear(r.Observed)
}

// PassStats summarizes one Infer call for telemetry: how many connected
// components were swept versus skipped, and how many nodes each path
// covered. Under complete inference a component is "clean" when its
// cached verdict slab was reused; under partial inference, when it had no
// reading this epoch and therefore lies outside every halo.
type PassStats struct {
	DirtyComponents int // components swept this pass
	CleanComponents int // components skipped (cache hit or outside all halos)
	NodesInferred   int // nodes that went through edge/node inference
	NodesCached     int // nodes whose verdicts were served from a slab
	Workers         int // resolved worker-pool width
}

// compSlab caches the verdicts of a settled component: every member
// inferred LocationUnknown at epoch `epoch`. All-unknown is an absorbing
// state for an untouched component — fading belief only decays further,
// and with no known member there is nothing to propagate (Eqs. 3-4) — and
// its parent verdicts (Eqs. 1-2) depend only on per-edge state that
// dirtying would have invalidated, so the slab replays the sweep's exact
// output while DirtyAt() <= epoch. An epoch of model.EpochNone marks the
// slab invalid (the component was re-swept and found unsettled); the
// backing arrays are kept to avoid churn when it settles again.
type compSlab struct {
	epoch model.Epoch
	tags  []model.Tag
	pars  []model.Tag
}

// Inferencer runs the iterative inference algorithm. It keeps reusable
// scratch buffers — including the Result it returns — so one Inferencer
// should be reused across epochs; it is not safe for concurrent use.
type Inferencer struct {
	cfg     Config
	weights []float64 // Zipf table, sized to the graph's history length

	// rec is the optional decision-provenance recorder (nil when
	// untraced); now mirrors the epoch of the running pass for records.
	rec *trace.Recorder
	now model.Epoch

	// scratch reused across epochs
	res      Result // pooled result; see Infer's contract
	stamp    uint64 // stamp of the running pass, matched against InferStamp/DistStamp
	sweepers []*sweeper
	tasks    []*graph.Component
	settled  []bool
	slabs    map[model.Tag]*compSlab // settled-component cache, keyed by component id
	stats    PassStats
}

// SetTracer attaches a decision-provenance recorder: edge inference
// records its Eq. 1-2 container choice (with the normalized probability
// and colocation evidence), node inference its Eq. 3-4 location choice.
// A nil recorder disables recording. Recording is observation-only.
func (inf *Inferencer) SetTracer(rec *trace.Recorder) { inf.rec = rec }

// SetWorkers overrides the configured worker-pool width at runtime
// (0 = GOMAXPROCS, 1 = serial). Used to apply CLI tuning after a
// checkpoint restore; negative values are ignored.
func (inf *Inferencer) SetWorkers(n int) {
	if n >= 0 {
		inf.cfg.Workers = n
	}
}

// LastStats returns the component/node accounting of the most recent
// Infer call.
func (inf *Inferencer) LastStats() PassStats { return inf.stats }

// passStamps issues a process-wide unique stamp per inference pass, so
// the per-edge and per-node scratch slots of concurrently running
// Inferencers (each on its own graph) and of successive Inferencers
// sharing one graph can never read each other's state as fresh. Workers
// of one pass share the pass stamp: components are disjoint, so each
// node and edge is touched by exactly one worker.
var passStamps atomic.Uint64

// propagation is one determined neighbor color feeding node inference.
type propagation struct {
	loc model.LocationID
	p   float64
}

// New creates an Inferencer for graphs with the given co-location history
// size.
func New(cfg Config, historySize int) (*Inferencer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if historySize < 1 || historySize > graph.MaxHistorySize {
		return nil, fmt.Errorf("inference: history size %d out of range", historySize)
	}
	return &Inferencer{
		cfg:     cfg,
		weights: graph.ZipfWeights(historySize, cfg.Alpha),
		slabs:   make(map[model.Tag]*compSlab),
	}, nil
}

// Config returns the inference parameters in use.
func (inf *Inferencer) Config() Config { return inf.cfg }

// Infer runs one inference pass over g for epoch now.
//
// The iterative algorithm (§IV-C) classifies nodes by their hop distance d
// from the nearest colored node and sweeps outward: edge inference runs for
// d=0 (observed) nodes first; then, layer by layer, edge inference followed
// by node inference for uncolored nodes, so colors and edge probabilities
// settled at distance d feed the inference at distance d+1. Nodes with no
// colored node in their component are processed last, in tag order, using
// whatever colors have settled.
//
// The sweep is sharded by connected component: no edge ever crosses a
// component boundary, so components are inferred independently, in any
// order, and the layer-interleaved global sweep of the paper produces the
// same verdicts as a component-at-a-time sweep. Infer exploits that to
// (a) skip components untouched since their last sweep — reusing the
// cached slab of a settled component, or skipping entirely under Partial
// mode, where an unread component intersects no halo — and (b) fan dirty
// components across Config.Workers goroutines. Outputs are byte-identical
// for any worker count and with the cache on or off.
//
// Under Partial mode only nodes with d ≤ PartialHops are interpreted and
// "unknown" location verdicts are withheld from the result (§IV-D).
//
// The returned Result and its maps are scratch owned by the Inferencer:
// they stay valid until the next Infer call on the same Inferencer, which
// resets and reuses them. Callers that keep a result longer — or pass it
// to another goroutine — must take a Clone first.
func (inf *Inferencer) Infer(g *graph.Graph, now model.Epoch, mode Mode) *Result {
	res := &inf.res
	res.reset(now, mode == Partial)
	inf.stamp = passStamps.Add(1)
	inf.now = now
	inf.stats = PassStats{Workers: inf.workerWidth()}

	comps := g.Components(now)

	// Partition components into sweep tasks and skips. A component read
	// this epoch has DirtyAt() == now (update step 1 touches every read
	// tag), so under Partial mode any other component holds no colored
	// node and intersects no halo: it produces no verdicts and no side
	// effects, and is skipped outright. Under Complete mode a component
	// is skipped only when its settled slab replays the sweep exactly.
	inf.tasks = inf.tasks[:0]
	for _, c := range comps {
		if mode == Partial {
			if c.DirtyAt() == now {
				inf.tasks = append(inf.tasks, c)
			} else {
				inf.stats.CleanComponents++
			}
			continue
		}
		if sl := inf.reusableSlab(c); sl != nil {
			fillFromSlab(sl, res)
			inf.stats.CleanComponents++
			inf.stats.NodesCached += c.Len()
			continue
		}
		inf.tasks = append(inf.tasks, c)
	}
	inf.stats.DirtyComponents = len(inf.tasks)
	if cap(inf.settled) < len(inf.tasks) {
		inf.settled = make([]bool, len(inf.tasks))
	} else {
		inf.settled = inf.settled[:len(inf.tasks)]
	}

	// Sweep the dirty components — serially into the pooled result, or
	// across a bounded pool of workers, each with a private result merged
	// after the join. Workers own disjoint components, so they never
	// contend on node or edge state; detached (pruned) edges and the
	// stale marking they imply are recycled serially after the join.
	if spawn := min(inf.stats.Workers, len(inf.tasks)); spawn <= 1 {
		s := inf.sweeper(0)
		s.res = res
		for i, c := range inf.tasks {
			inf.settled[i] = s.sweepComponent(g, c, now, mode)
		}
		inf.finishSweeper(g, s)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < spawn; w++ {
			s := inf.sweeper(w)
			s.local.reset(now, mode == Partial)
			s.res = &s.local
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(inf.tasks) {
						return
					}
					inf.settled[i] = s.sweepComponent(g, inf.tasks[i], now, mode)
				}
			}()
		}
		wg.Wait()
		for w := 0; w < spawn; w++ {
			s := inf.sweepers[w]
			maps.Copy(res.Locations, s.local.Locations)
			maps.Copy(res.Parents, s.local.Parents)
			maps.Copy(res.Observed, s.local.Observed)
			inf.finishSweeper(g, s)
		}
	}

	// Slab maintenance: refresh the cache for components that settled
	// this pass, invalidate it for those that did not, and drop slabs
	// whose component id no longer exists (merged away or removed).
	if mode == Complete && !inf.cfg.DisableCache {
		for i, c := range inf.tasks {
			if inf.settled[i] {
				inf.storeSlab(c, res, now)
			} else if sl := inf.slabs[c.ID()]; sl != nil {
				sl.epoch = model.EpochNone
			}
		}
		inf.evictDeadSlabs(comps)
	}
	return res
}

// workerWidth resolves Config.Workers (0 = GOMAXPROCS).
func (inf *Inferencer) workerWidth() int {
	if w := inf.cfg.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// sweeper returns the i-th pooled sweeper, growing the pool as needed.
func (inf *Inferencer) sweeper(i int) *sweeper {
	for len(inf.sweepers) <= i {
		inf.sweepers = append(inf.sweepers, &sweeper{
			inf:   inf,
			probs: make(map[model.LocationID]float64),
		})
	}
	return inf.sweepers[i]
}

// finishSweeper folds one sweeper's pass back into shared state: pruned
// edges are recycled (adjusting the edge count, free list, and component
// staleness — serial-only bookkeeping deferred from the workers) and the
// node tally is added to the pass stats.
func (inf *Inferencer) finishSweeper(g *graph.Graph, s *sweeper) {
	g.RecycleDetached(s.detached)
	s.detached = s.detached[:0]
	inf.stats.NodesInferred += s.inferred
	s.inferred = 0
	s.res = nil
}

// reusableSlab returns the slab that replays component c's sweep, or nil
// when c must be swept: caching disabled, no settled slab, the component
// was dirtied after the slab epoch, or a member is traced (provenance
// records must fire every epoch, so traced components are re-inferred —
// the recompute of a settled component has no graph side effects and
// reproduces the slab's verdicts exactly).
func (inf *Inferencer) reusableSlab(c *graph.Component) *compSlab {
	if inf.cfg.DisableCache {
		return nil
	}
	sl := inf.slabs[c.ID()]
	if sl == nil || sl.epoch == model.EpochNone || c.DirtyAt() > sl.epoch {
		return nil
	}
	if inf.rec != nil {
		for _, n := range c.Members() {
			if inf.rec.Traces(n.Tag) {
				return nil
			}
		}
	}
	return sl
}

// fillFromSlab replays a settled component's verdicts into res: every
// member is at its last-known location with probability below the
// unknown mass, i.e. LocationUnknown, with its cached parent verdict.
func fillFromSlab(sl *compSlab, res *Result) {
	for i, tag := range sl.tags {
		res.Locations[tag] = model.LocationUnknown
		res.Parents[tag] = sl.pars[i]
	}
}

// storeSlab records the verdicts of a component that settled at epoch
// now, reusing the previous slab's storage when present.
func (inf *Inferencer) storeSlab(c *graph.Component, res *Result, now model.Epoch) {
	sl := inf.slabs[c.ID()]
	if sl == nil {
		sl = &compSlab{}
		inf.slabs[c.ID()] = sl
	}
	sl.epoch = now
	sl.tags = sl.tags[:0]
	sl.pars = sl.pars[:0]
	for _, n := range c.Members() {
		sl.tags = append(sl.tags, n.Tag)
		sl.pars = append(sl.pars, res.Parents[n.Tag])
	}
}

// evictDeadSlabs drops slabs keyed by component ids that no longer exist,
// bounding cache memory. comps is sorted by id (Graph.Components).
func (inf *Inferencer) evictDeadSlabs(comps []*graph.Component) {
	if len(inf.slabs) == 0 {
		return
	}
	for id := range inf.slabs {
		_, live := slices.BinarySearchFunc(comps, id, func(c *graph.Component, id model.Tag) int {
			return cmp.Compare(c.ID(), id)
		})
		if !live {
			delete(inf.slabs, id)
		}
	}
}

// sweeper holds the per-worker scratch of the component sweep. Serial
// passes write straight into the Inferencer's pooled result; parallel
// workers write into their private local result, merged after the join.
// Edges pruned during the sweep are only detached (a node-local, safely
// concurrent operation); the shared-state half of their removal is the
// detached list drained by finishSweeper.
type sweeper struct {
	inf      *Inferencer
	res      *Result // destination for verdicts during a pass
	local    Result  // backing storage for res in parallel passes
	frontier []*graph.Node
	next     []*graph.Node
	rest     []*graph.Node
	probs    map[model.LocationID]float64
	pruned   []*graph.Edge
	props    []propagation
	detached []*graph.Edge
	inferred int
}

// sweepComponent runs the §IV-C layered sweep over one component and
// reports whether the component settled: complete mode, and every member
// verdict came out LocationUnknown — the absorbing state that makes the
// verdicts cacheable. The distance classification uses the epoch-stamped
// InferDist/DistStamp scratch on the nodes (a stamp other than the
// running pass means "not reached"), so no per-pass map is needed.
func (s *sweeper) sweepComponent(g *graph.Graph, c *graph.Component, now model.Epoch, mode Mode) bool {
	inf := s.inf
	stamp := inf.stamp
	res := s.res
	settled := mode == Complete

	// Layer d=0: the colored members. Their location verdict is their
	// observation; edge inference estimates their most likely parents.
	s.frontier = s.frontier[:0]
	for _, n := range c.Members() {
		if n.Colored(now) {
			n.InferDist = 0
			n.DistStamp = stamp
			s.frontier = append(s.frontier, n)
			res.Observed[n.Tag] = true
			res.Locations[n.Tag] = n.RecentColor
		}
	}
	if len(s.frontier) > 0 {
		settled = false
	}
	sortNodes(s.frontier)
	for _, n := range s.frontier {
		res.Parents[n.Tag] = s.edgeInference(g, n)
		s.inferred++
	}

	// Sweep outward, one hop at a time.
	maxHops := int32(math.MaxInt32)
	if mode == Partial {
		maxHops = int32(inf.cfg.PartialHops)
	}
	for d := int32(1); d <= maxHops && len(s.frontier) > 0; d++ {
		s.next = s.next[:0]
		for _, n := range s.frontier {
			n.VisitParents(func(e *graph.Edge) {
				if p := e.Parent; p.DistStamp != stamp {
					p.InferDist = d
					p.DistStamp = stamp
					s.next = append(s.next, p)
				}
			})
			n.VisitChildren(func(e *graph.Edge) {
				if ch := e.Child; ch.DistStamp != stamp {
					ch.InferDist = d
					ch.DistStamp = stamp
					s.next = append(s.next, ch)
				}
			})
		}
		s.frontier, s.next = s.next, s.frontier
		sortNodes(s.frontier)
		for _, n := range s.frontier {
			res.Parents[n.Tag] = s.edgeInference(g, n)
			loc := s.nodeInference(n, now, res)
			s.inferred++
			if mode == Partial && loc == model.LocationUnknown {
				// Withhold: with only a subset of readers having read this
				// epoch, "unknown" is more likely a not-yet-read location
				// than a true disappearance.
				delete(res.Parents, n.Tag)
				continue
			}
			res.Locations[n.Tag] = loc
			if loc != model.LocationUnknown {
				settled = false
			}
		}
	}

	if mode == Complete {
		// Members unreached from any colored node — the whole component,
		// when it holds none, or nodes stranded by mid-sweep pruning —
		// are processed last, in tag order, using whatever colors have
		// settled.
		s.rest = s.rest[:0]
		for _, n := range c.Members() {
			if n.DistStamp != stamp {
				s.rest = append(s.rest, n)
			}
		}
		sortNodes(s.rest)
		for _, n := range s.rest {
			res.Parents[n.Tag] = s.edgeInference(g, n)
			loc := s.nodeInference(n, now, res)
			s.inferred++
			res.Locations[n.Tag] = loc
			if loc != model.LocationUnknown {
				settled = false
			}
		}
	}
	return settled
}

// edgeInference applies Eqs. 1-2 to the incoming edges of n, stores each
// edge's probability for later color propagation, optionally prunes
// low-confidence edges, and returns the most likely container (model.NoTag
// when none).
func (s *sweeper) edgeInference(g *graph.Graph, n *graph.Node) model.Tag {
	inf := s.inf
	if n.NumParents() == 0 {
		if inf.rec != nil && inf.rec.Traces(n.Tag) {
			s.recordEdgeChoice(n.Tag, model.NoTag, 0, 0)
		}
		return model.NoTag
	}
	beta := inf.cfg.Beta
	if inf.cfg.AdaptiveBeta {
		beta = n.AdaptiveBeta(inf.cfg.Beta)
	}

	s.pruned = s.pruned[:0]
	var z float64
	var best *graph.Edge
	var bestConf float64
	n.VisitParents(func(e *graph.Edge) {
		conf := beta * e.History.Weight(inf.weights)
		if n.ConfirmedEdge == e {
			conf += 1 - beta
		}
		if inf.cfg.PruneThreshold > 0 && conf < inf.cfg.PruneThreshold {
			s.pruned = append(s.pruned, e)
			return
		}
		z += conf
		e.InferProb = conf // normalized below
		e.InferStamp = inf.stamp
		if best == nil || conf > bestConf ||
			(conf == bestConf && e.Parent.Tag < best.Parent.Tag) {
			best, bestConf = e, conf
		}
	})
	for _, e := range s.pruned {
		if inf.rec != nil {
			inf.rec.Record(trace.Record{
				Epoch: inf.now, Tag: e.Child.Tag, Mech: trace.MechEdgePruned,
				Loc: model.LocationNone, Other: e.Parent.Tag,
			})
		}
		if g.DetachEdge(e) {
			s.detached = append(s.detached, e)
		}
	}
	if best == nil || z == 0 {
		// No surviving edge carries any belief: report "no container"
		// rather than an arbitrary pick.
		if inf.rec != nil && inf.rec.Traces(n.Tag) {
			s.recordEdgeChoice(n.Tag, model.NoTag, 0, 0)
		}
		return model.NoTag
	}
	n.VisitParents(func(e *graph.Edge) {
		e.InferProb /= z
	})
	if inf.rec != nil && inf.rec.Traces(n.Tag) {
		s.recordEdgeChoice(n.Tag, best.Parent.Tag, bestConf/z, int32(best.History.Ones()))
	}
	return best.Parent.Tag
}

// recordEdgeChoice records the Eq. 1-2 container verdict for a traced
// tag; parent NoTag is the positive "no container" verdict.
func (s *sweeper) recordEdgeChoice(tag, parent model.Tag, prob float64, coloc int32) {
	s.inf.rec.Record(trace.Record{
		Epoch: s.inf.now, Tag: tag, Mech: trace.MechEdgeInference,
		Loc: model.LocationNone, Other: parent, Prob: prob, Aux: coloc,
	})
}

// nodeInference applies Eqs. 3-4 to an uncolored node and returns the most
// likely location color, possibly model.LocationUnknown. Colors settled in
// res.Locations propagate through incident edges weighted by the edge
// probabilities assigned during edge inference. Neighbors always share
// the node's component, so a component-local result sees every color a
// global sweep would.
func (s *sweeper) nodeInference(n *graph.Node, now model.Epoch, res *Result) model.LocationID {
	inf := s.inf
	clear(s.probs)
	gamma := inf.cfg.Gamma

	// The fading belief in the most recent observation.
	fade := 0.0
	if n.SeenAt != model.EpochNone && n.RecentColor.Known() {
		age := float64(now - n.SeenAt)
		if age < 1 {
			age = 1
		}
		fade = 1 / math.Pow(age, inf.cfg.Theta)
		s.probs[n.RecentColor] += (1 - gamma) * fade
	}
	pUnknown := (1 - gamma) * (1 - fade)

	// Colors propagated through edges from neighbors whose color is
	// already determined (observed or inferred in an earlier layer),
	// weighted by edge probability and normalized by Z2 over the
	// propagating edges only.
	var z2 float64
	s.props = s.props[:0]
	collect := func(e *graph.Edge, other *graph.Node) {
		loc, ok := res.Locations[other.Tag]
		if !ok || !loc.Known() {
			return
		}
		if e.InferStamp != inf.stamp || e.InferProb == 0 {
			return
		}
		z2 += e.InferProb
		s.props = append(s.props, propagation{loc: loc, p: e.InferProb})
	}
	n.VisitParents(func(e *graph.Edge) { collect(e, e.Parent) })
	n.VisitChildren(func(e *graph.Edge) { collect(e, e.Child) })
	if z2 > 0 {
		for _, pr := range s.props {
			s.probs[pr.loc] += gamma * pr.p / z2
		}
	}

	// Most likely color; known locations win ties against "unknown", and
	// lower location IDs win ties among known locations (determinism).
	best, bestP := model.LocationUnknown, pUnknown
	for loc, p := range s.probs {
		if p > bestP || (p == bestP && (best == model.LocationUnknown || loc < best)) {
			best, bestP = loc, p
		}
	}
	if inf.rec != nil && inf.rec.Traces(n.Tag) {
		inf.rec.Record(trace.Record{
			Epoch: now, Tag: n.Tag, Mech: trace.MechNodeInference,
			Loc: best, Prob: bestP, Aux: int32(len(s.props)),
		})
	}
	return best
}

func sortNodes(nodes []*graph.Node) {
	slices.SortFunc(nodes, func(a, b *graph.Node) int { return cmp.Compare(a.Tag, b.Tag) })
}
