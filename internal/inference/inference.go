package inference

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"spire/internal/graph"
	"spire/internal/model"
	"spire/internal/trace"
)

// Result is the outcome of one inference pass: the most likely location
// and most likely container per object.
type Result struct {
	Now     model.Epoch
	Partial bool

	// Locations maps each interpreted object to its most likely location,
	// which may be model.LocationUnknown (the object is away from every
	// known location — a missing object under complete inference).
	// Objects whose verdict was withheld (partial inference) or that lie
	// outside the partial halo are absent.
	Locations map[model.Tag]model.LocationID

	// Parents maps each interpreted object to its most likely container;
	// model.NoTag records the positive verdict "no container". Objects
	// outside the partial halo are absent.
	Parents map[model.Tag]model.Tag

	// Observed marks the objects read in this epoch (the colored nodes).
	Observed map[model.Tag]bool
}

// Clone returns a deep copy of the result with freshly allocated maps.
// Infer reuses its Result across calls; callers that retain a result past
// the next Infer call — or hand it to another goroutine — must clone it.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := &Result{
		Now:       r.Now,
		Partial:   r.Partial,
		Locations: make(map[model.Tag]model.LocationID, len(r.Locations)),
		Parents:   make(map[model.Tag]model.Tag, len(r.Parents)),
		Observed:  make(map[model.Tag]bool, len(r.Observed)),
	}
	for k, v := range r.Locations {
		out.Locations[k] = v
	}
	for k, v := range r.Parents {
		out.Parents[k] = v
	}
	for k, v := range r.Observed {
		out.Observed[k] = v
	}
	return out
}

// reset prepares a pooled result for a new pass, clearing (or lazily
// allocating) its maps.
func (r *Result) reset(now model.Epoch, partial bool) {
	r.Now = now
	r.Partial = partial
	if r.Locations == nil {
		r.Locations = make(map[model.Tag]model.LocationID)
		r.Parents = make(map[model.Tag]model.Tag)
		r.Observed = make(map[model.Tag]bool)
		return
	}
	clear(r.Locations)
	clear(r.Parents)
	clear(r.Observed)
}

// Inferencer runs the iterative inference algorithm. It keeps reusable
// scratch buffers — including the Result it returns — so one Inferencer
// should be reused across epochs; it is not safe for concurrent use.
type Inferencer struct {
	cfg     Config
	weights []float64 // Zipf table, sized to the graph's history length

	// rec is the optional decision-provenance recorder (nil when
	// untraced); now mirrors the epoch of the running pass for records.
	rec *trace.Recorder
	now model.Epoch

	// scratch reused across epochs
	res      Result // pooled result; see Infer's contract
	stamp    uint64 // stamp of the running pass, matched against Edge.InferStamp
	dist     map[model.Tag]int32
	frontier []*graph.Node
	next     []*graph.Node
	rest     []*graph.Node
	probs    map[model.LocationID]float64
	pruned   []*graph.Edge
	props    []propagation
}

// SetTracer attaches a decision-provenance recorder: edge inference
// records its Eq. 1-2 container choice (with the normalized probability
// and colocation evidence), node inference its Eq. 3-4 location choice.
// A nil recorder disables recording. Recording is observation-only.
func (inf *Inferencer) SetTracer(rec *trace.Recorder) { inf.rec = rec }

// passStamps issues a process-wide unique stamp per inference pass, so
// the per-edge scratch slots of concurrently running Inferencers (each on
// its own graph) and of successive Inferencers sharing one graph can never
// read each other's probabilities as fresh.
var passStamps atomic.Uint64

// propagation is one determined neighbor color feeding node inference.
type propagation struct {
	loc model.LocationID
	p   float64
}

// New creates an Inferencer for graphs with the given co-location history
// size.
func New(cfg Config, historySize int) (*Inferencer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if historySize < 1 || historySize > graph.MaxHistorySize {
		return nil, fmt.Errorf("inference: history size %d out of range", historySize)
	}
	return &Inferencer{
		cfg:     cfg,
		weights: graph.ZipfWeights(historySize, cfg.Alpha),
		dist:    make(map[model.Tag]int32),
		probs:   make(map[model.LocationID]float64),
	}, nil
}

// Config returns the inference parameters in use.
func (inf *Inferencer) Config() Config { return inf.cfg }

// Infer runs one inference pass over g for epoch now.
//
// The iterative algorithm (§IV-C) classifies nodes by their hop distance d
// from the nearest colored node and sweeps outward: edge inference runs for
// d=0 (observed) nodes first; then, layer by layer, edge inference followed
// by node inference for uncolored nodes, so colors and edge probabilities
// settled at distance d feed the inference at distance d+1. Nodes in
// components with no colored node are processed last, in tag order, using
// whatever colors have settled.
//
// Under Partial mode only nodes with d ≤ PartialHops are interpreted and
// "unknown" location verdicts are withheld from the result (§IV-D).
//
// The returned Result and its maps are scratch owned by the Inferencer:
// they stay valid until the next Infer call on the same Inferencer, which
// resets and reuses them. Callers that keep a result longer — or pass it
// to another goroutine — must take a Clone first.
func (inf *Inferencer) Infer(g *graph.Graph, now model.Epoch, mode Mode) *Result {
	res := &inf.res
	res.reset(now, mode == Partial)
	inf.stamp = passStamps.Add(1)
	inf.now = now
	clear(inf.dist)

	// Layer d=0: the colored nodes. Their location verdict is their
	// observation; edge inference estimates their most likely parents.
	inf.frontier = inf.frontier[:0]
	g.EachColored(now, func(n *graph.Node) {
		inf.dist[n.Tag] = 0
		inf.frontier = append(inf.frontier, n)
		res.Observed[n.Tag] = true
		res.Locations[n.Tag] = n.RecentColor
	})
	sortNodes(inf.frontier)
	for _, n := range inf.frontier {
		res.Parents[n.Tag] = inf.edgeInference(g, n)
	}

	// Sweep outward, one hop at a time.
	maxHops := int32(math.MaxInt32)
	if mode == Partial {
		maxHops = int32(inf.cfg.PartialHops)
	}
	for d := int32(1); d <= maxHops && len(inf.frontier) > 0; d++ {
		inf.next = inf.next[:0]
		for _, n := range inf.frontier {
			n.VisitParents(func(e *graph.Edge) {
				if _, seen := inf.dist[e.Parent.Tag]; !seen {
					inf.dist[e.Parent.Tag] = d
					inf.next = append(inf.next, e.Parent)
				}
			})
			n.VisitChildren(func(e *graph.Edge) {
				if _, seen := inf.dist[e.Child.Tag]; !seen {
					inf.dist[e.Child.Tag] = d
					inf.next = append(inf.next, e.Child)
				}
			})
		}
		inf.frontier, inf.next = inf.next, inf.frontier
		sortNodes(inf.frontier)
		for _, n := range inf.frontier {
			res.Parents[n.Tag] = inf.edgeInference(g, n)
			loc := inf.nodeInference(n, now, res)
			if mode == Partial && loc == model.LocationUnknown {
				// Withhold: with only a subset of readers having read this
				// epoch, "unknown" is more likely a not-yet-read location
				// than a true disappearance.
				delete(res.Parents, n.Tag)
				continue
			}
			res.Locations[n.Tag] = loc
		}
	}

	if mode == Complete {
		// Components with no colored node (every member unobserved).
		inf.rest = inf.rest[:0]
		g.Nodes(func(n *graph.Node) {
			if _, seen := inf.dist[n.Tag]; !seen {
				inf.rest = append(inf.rest, n)
			}
		})
		sortNodes(inf.rest)
		for _, n := range inf.rest {
			res.Parents[n.Tag] = inf.edgeInference(g, n)
			res.Locations[n.Tag] = inf.nodeInference(n, now, res)
		}
	}
	return res
}

// edgeInference applies Eqs. 1-2 to the incoming edges of n, stores each
// edge's probability for later color propagation, optionally prunes
// low-confidence edges, and returns the most likely container (model.NoTag
// when none).
func (inf *Inferencer) edgeInference(g *graph.Graph, n *graph.Node) model.Tag {
	if n.NumParents() == 0 {
		if inf.rec != nil && inf.rec.Traces(n.Tag) {
			inf.recordEdgeChoice(n.Tag, model.NoTag, 0, 0)
		}
		return model.NoTag
	}
	beta := inf.cfg.Beta
	if inf.cfg.AdaptiveBeta {
		beta = n.AdaptiveBeta(inf.cfg.Beta)
	}

	inf.pruned = inf.pruned[:0]
	var z float64
	var best *graph.Edge
	var bestConf float64
	n.VisitParents(func(e *graph.Edge) {
		conf := beta * e.History.Weight(inf.weights)
		if n.ConfirmedEdge == e {
			conf += 1 - beta
		}
		if inf.cfg.PruneThreshold > 0 && conf < inf.cfg.PruneThreshold {
			inf.pruned = append(inf.pruned, e)
			return
		}
		z += conf
		e.InferProb = conf // normalized below
		e.InferStamp = inf.stamp
		if best == nil || conf > bestConf ||
			(conf == bestConf && e.Parent.Tag < best.Parent.Tag) {
			best, bestConf = e, conf
		}
	})
	for _, e := range inf.pruned {
		if inf.rec != nil {
			inf.rec.Record(trace.Record{
				Epoch: inf.now, Tag: e.Child.Tag, Mech: trace.MechEdgePruned,
				Loc: model.LocationNone, Other: e.Parent.Tag,
			})
		}
		g.RemoveEdge(e)
	}
	if best == nil || z == 0 {
		// No surviving edge carries any belief: report "no container"
		// rather than an arbitrary pick.
		if inf.rec != nil && inf.rec.Traces(n.Tag) {
			inf.recordEdgeChoice(n.Tag, model.NoTag, 0, 0)
		}
		return model.NoTag
	}
	n.VisitParents(func(e *graph.Edge) {
		e.InferProb /= z
	})
	if inf.rec != nil && inf.rec.Traces(n.Tag) {
		inf.recordEdgeChoice(n.Tag, best.Parent.Tag, bestConf/z, int32(best.History.Ones()))
	}
	return best.Parent.Tag
}

// recordEdgeChoice records the Eq. 1-2 container verdict for a traced
// tag; parent NoTag is the positive "no container" verdict.
func (inf *Inferencer) recordEdgeChoice(tag, parent model.Tag, prob float64, coloc int32) {
	inf.rec.Record(trace.Record{
		Epoch: inf.now, Tag: tag, Mech: trace.MechEdgeInference,
		Loc: model.LocationNone, Other: parent, Prob: prob, Aux: coloc,
	})
}

// nodeInference applies Eqs. 3-4 to an uncolored node and returns the most
// likely location color, possibly model.LocationUnknown. Colors settled in
// res.Locations propagate through incident edges weighted by the edge
// probabilities assigned during edge inference.
func (inf *Inferencer) nodeInference(n *graph.Node, now model.Epoch, res *Result) model.LocationID {
	clear(inf.probs)
	gamma := inf.cfg.Gamma

	// The fading belief in the most recent observation.
	fade := 0.0
	if n.SeenAt != model.EpochNone && n.RecentColor.Known() {
		age := float64(now - n.SeenAt)
		if age < 1 {
			age = 1
		}
		fade = 1 / math.Pow(age, inf.cfg.Theta)
		inf.probs[n.RecentColor] += (1 - gamma) * fade
	}
	pUnknown := (1 - gamma) * (1 - fade)

	// Colors propagated through edges from neighbors whose color is
	// already determined (observed or inferred in an earlier layer),
	// weighted by edge probability and normalized by Z2 over the
	// propagating edges only.
	var z2 float64
	inf.props = inf.props[:0]
	collect := func(e *graph.Edge, other *graph.Node) {
		loc, ok := res.Locations[other.Tag]
		if !ok || !loc.Known() {
			return
		}
		if e.InferStamp != inf.stamp || e.InferProb == 0 {
			return
		}
		z2 += e.InferProb
		inf.props = append(inf.props, propagation{loc: loc, p: e.InferProb})
	}
	n.VisitParents(func(e *graph.Edge) { collect(e, e.Parent) })
	n.VisitChildren(func(e *graph.Edge) { collect(e, e.Child) })
	if z2 > 0 {
		for _, pr := range inf.props {
			inf.probs[pr.loc] += gamma * pr.p / z2
		}
	}

	// Most likely color; known locations win ties against "unknown", and
	// lower location IDs win ties among known locations (determinism).
	best, bestP := model.LocationUnknown, pUnknown
	for loc, p := range inf.probs {
		if p > bestP || (p == bestP && (best == model.LocationUnknown || loc < best)) {
			best, bestP = loc, p
		}
	}
	if inf.rec != nil && inf.rec.Traces(n.Tag) {
		inf.rec.Record(trace.Record{
			Epoch: now, Tag: n.Tag, Mech: trace.MechNodeInference,
			Loc: best, Prob: bestP, Aux: int32(len(inf.props)),
		})
	}
	return best
}

func sortNodes(nodes []*graph.Node) {
	slices.SortFunc(nodes, func(a, b *graph.Node) int { return cmp.Compare(a.Tag, b.Tag) })
}
