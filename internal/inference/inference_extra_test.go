package inference

import (
	"math"
	"testing"

	"spire/internal/graph"
	"spire/internal/model"
)

// TestEdgeProbabilitiesNormalized checks Eq. 2's normalization: across a
// node's surviving incoming edges the probabilities sum to 1 and the
// chosen parent carries the maximum.
func TestEdgeProbabilitiesNormalized(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	c3 := tag(t, model.LevelCase, 3)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1) // confirm c1
	for e := model.Epoch(2); e <= 6; e++ {
		mustUpdate(t, g, packReader, e, c1, c2, c3, i1)
	}
	inf := newInf(t, DefaultConfig())
	inf.Infer(g, 6, Complete)

	n := g.Node(i1)
	var sum, best float64
	var bestTag model.Tag
	n.VisitParents(func(e *graph.Edge) {
		if e.InferStamp != inf.stamp {
			t.Errorf("edge %d not stamped by the pass", e.Parent.Tag)
		}
		p := e.InferProb
		if p < 0 || p > 1 {
			t.Errorf("edge %d probability %v out of [0,1]", e.Parent.Tag, p)
		}
		sum += p
		if p > best {
			best, bestTag = p, e.Parent.Tag
		}
	})
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("edge probabilities sum to %v, want 1", sum)
	}
	if bestTag != c1 {
		t.Errorf("max-probability edge is %d, want confirmed %d", bestTag, c1)
	}
}

// TestPartialHalonRadius widens PartialHops and checks the halo boundary
// moves accordingly.
func TestPartialHaloRadius(t *testing.T) {
	g := newGraph(t)
	p1 := tag(t, model.LevelPallet, 1)
	c1 := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, p1, c1, i1)
	mustUpdate(t, g, dockReader, 2, i1) // only the item observed

	cfg := DefaultConfig()
	cfg.PartialHops = 2
	res := newInf(t, cfg).Infer(g, 2, Partial)
	if _, ok := res.Locations[c1]; !ok {
		t.Error("d=1 node must be covered at l=2")
	}
	if _, ok := res.Locations[p1]; !ok {
		t.Error("d=2 node must be covered at l=2")
	}
}

// TestAdaptiveBetaUsedByInference: an object whose confirmed container is
// consistently co-read should, under adaptive β, trust the confirmation
// even when a noisy co-location history favors another case.
func TestAdaptiveBetaUsedByInference(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1) // confirm c1→i1
	// Both read together every epoch afterwards: adaptive β goes to 0
	// (no single-sided sightings), putting all weight on the
	// confirmation; c2 shares the shelf and builds an identical
	// co-location history.
	for e := model.Epoch(2); e <= 12; e++ {
		mustUpdate(t, g, packReader, e, c1, c2, i1)
	}
	cfg := DefaultConfig()
	cfg.AdaptiveBeta = true
	res := newInf(t, cfg).Infer(g, 12, Complete)
	if res.Parents[i1] != c1 {
		t.Errorf("adaptive-β parent = %d, want confirmed %d", res.Parents[i1], c1)
	}
	n := g.Node(i1)
	if got := n.AdaptiveBeta(0.4); got != 0 {
		t.Errorf("adaptive β = %v, want 0 (never a single-sided sighting)", got)
	}
}

// TestPruneThresholdOneKeepsNothingUnconfirmed: at an extreme threshold
// only the confirmation term can survive.
func TestPruneThresholdExtreme(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1)
	for e := model.Epoch(2); e <= 40; e++ {
		mustUpdate(t, g, packReader, e, c1, c2, i1)
	}
	cfg := DefaultConfig()
	cfg.PruneThreshold = 0.5 // above β·w = 0.4 for any history
	res := newInf(t, cfg).Infer(g, 40, Complete)
	if g.Node(i1).NumParents() != 1 {
		t.Errorf("only the confirmed edge may survive 0.5; %d remain", g.Node(i1).NumParents())
	}
	if res.Parents[i1] != c1 {
		t.Errorf("parent = %d, want %d", res.Parents[i1], c1)
	}
}

// TestInfConfigAccessor covers the Config getter.
func TestInfConfigAccessor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Beta = 0.7
	inf := newInf(t, cfg)
	if inf.Config().Beta != 0.7 {
		t.Errorf("Config().Beta = %v", inf.Config().Beta)
	}
}
