package inference

import (
	"testing"

	"spire/internal/model"
	"spire/internal/trace"
)

// Table-driven coverage of the three Table I rules, asserting both the
// resolved outcome and the provenance reason the traced variant records —
// a wrong-but-plausible record (Rule I logged as Rule III, a poll logged
// against the child) is exactly the bug provenance exists to prevent.

func caseItemLevels(g model.Tag) model.Level {
	if g == 10 {
		return model.LevelCase
	}
	return model.LevelItem
}

// mechsOf returns the recorded mechanism slugs for tag, oldest first.
func mechsOf(rec *trace.Recorder, g model.Tag) []string {
	var out []string
	for _, r := range rec.TagRecords(g) {
		out = append(out, r.Mech.String())
	}
	return out
}

func TestResolveConflictsTracedRules(t *testing.T) {
	const epoch = model.Epoch(7)
	cases := []struct {
		name    string
		res     *Result
		levelOf func(model.Tag) model.Level

		wantLoc    map[model.Tag]model.LocationID
		wantParent map[model.Tag]model.Tag
		// wantRecords maps tag → expected mechanism slugs, oldest first.
		// Tags absent from the map must have recorded nothing.
		wantRecords map[model.Tag][]string
	}{
		{
			// Rule I: observed parent at A, inferred child at B — the
			// child inherits A, containment survives, and the child's
			// record cites Rule I with the parent as the source.
			name: "rule-I",
			res: &Result{
				Now:       epoch,
				Locations: map[model.Tag]model.LocationID{10: locA, 20: locB},
				Parents:   map[model.Tag]model.Tag{20: 10},
				Observed:  map[model.Tag]bool{10: true},
			},
			levelOf:     caseItemLevels,
			wantLoc:     map[model.Tag]model.LocationID{10: locA, 20: locA},
			wantParent:  map[model.Tag]model.Tag{20: 10},
			wantRecords: map[model.Tag][]string{20: {"conflict-rule-I"}},
		},
		{
			// Rule II: inferred parent, observed children 2×B + 1×C —
			// the poll moves the parent to B (recorded against the
			// parent), and the C child's containment ends with a Rule II
			// record. The agreeing children record nothing.
			name: "rule-II",
			res: &Result{
				Now: epoch,
				Locations: map[model.Tag]model.LocationID{
					10: locA,
					21: locB, 22: locB, 23: locC,
				},
				Parents:  map[model.Tag]model.Tag{21: 10, 22: 10, 23: 10},
				Observed: map[model.Tag]bool{21: true, 22: true, 23: true},
			},
			levelOf: caseItemLevels,
			wantLoc: map[model.Tag]model.LocationID{
				10: locB, 21: locB, 22: locB, 23: locC,
			},
			wantParent: map[model.Tag]model.Tag{21: 10, 22: 10, 23: model.NoTag},
			wantRecords: map[model.Tag][]string{
				10: {"majority-poll"},
				23: {"conflict-rule-II"},
			},
		},
		{
			// Rule III: inferred parent, inferred children 2×B + 1×C —
			// the poll moves the parent to B, then the C child is
			// overridden with a Rule III record and keeps its containment.
			name: "rule-III",
			res: &Result{
				Now: epoch,
				Locations: map[model.Tag]model.LocationID{
					10: locA,
					21: locB, 22: locB, 23: locC,
				},
				Parents:  map[model.Tag]model.Tag{21: 10, 22: 10, 23: 10},
				Observed: map[model.Tag]bool{},
			},
			levelOf: caseItemLevels,
			wantLoc: map[model.Tag]model.LocationID{
				10: locB, 21: locB, 22: locB, 23: locB,
			},
			wantParent: map[model.Tag]model.Tag{21: 10, 22: 10, 23: 10},
			wantRecords: map[model.Tag][]string{
				10: {"majority-poll"},
				23: {"conflict-rule-III"},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := trace.New(trace.Config{All: true})
			ResolveConflictsTraced(tc.res, tc.levelOf, rec)

			for g, want := range tc.wantLoc {
				if got := tc.res.Locations[g]; got != want {
					t.Errorf("tag %d location = %v, want %v", g, got, want)
				}
			}
			for g, want := range tc.wantParent {
				if got := tc.res.Parents[g]; got != want {
					t.Errorf("tag %d parent = %v, want %v", g, got, want)
				}
			}
			for g, want := range tc.wantRecords {
				got := mechsOf(rec, g)
				if len(got) != len(want) {
					t.Errorf("tag %d records = %v, want %v", g, got, want)
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("tag %d record %d = %s, want %s", g, i, got[i], want[i])
					}
				}
			}
			// No provenance may be invented for tags the rules left alone.
			for _, g := range rec.TracedTags() {
				if _, ok := tc.wantRecords[g]; !ok {
					t.Errorf("unexpected provenance for tag %d: %v", g, mechsOf(rec, g))
				}
			}
			// Every record must carry the epoch and, for the rule records,
			// the resolved location and parent.
			for _, g := range rec.TracedTags() {
				for _, r := range rec.TagRecords(g) {
					if r.Epoch != epoch {
						t.Errorf("tag %d record epoch = %d, want %d", g, r.Epoch, epoch)
					}
				}
			}
		})
	}
}

// TestResolveConflictsTracedRuleIIDefensive pins the both-observed
// defensive variant: the containment ends and the record carries Aux=1 to
// distinguish it from a plain Rule II firing.
func TestResolveConflictsTracedRuleIIDefensive(t *testing.T) {
	res := &Result{
		Now:       3,
		Locations: map[model.Tag]model.LocationID{10: locA, 20: locB},
		Parents:   map[model.Tag]model.Tag{20: 10},
		Observed:  map[model.Tag]bool{10: true, 20: true},
	}
	rec := trace.New(trace.Config{All: true})
	ResolveConflictsTraced(res, caseItemLevels, rec)
	if res.Parents[20] != model.NoTag {
		t.Error("both-observed conflict must end the containment")
	}
	recs := rec.TagRecords(20)
	if len(recs) != 1 || recs[0].Mech != trace.MechRuleII || recs[0].Aux != 1 {
		t.Errorf("want one RuleII record with Aux=1, got %+v", recs)
	}
}

// TestResolveConflictsTracedNilMatchesPlain pins that the nil-recorder
// path is exactly ResolveConflicts: same mutations, no provenance.
func TestResolveConflictsTracedNilMatchesPlain(t *testing.T) {
	build := func() *Result {
		return &Result{
			Now: 5,
			Locations: map[model.Tag]model.LocationID{
				10: locA, 21: locB, 22: locB, 23: locC,
			},
			Parents:  map[model.Tag]model.Tag{21: 10, 22: 10, 23: 10},
			Observed: map[model.Tag]bool{21: true, 22: true, 23: true},
		}
	}
	a, b := build(), build()
	ResolveConflicts(a, caseItemLevels)
	ResolveConflictsTraced(b, caseItemLevels, nil)
	for g, want := range a.Locations {
		if b.Locations[g] != want {
			t.Errorf("tag %d location diverges: %v vs %v", g, b.Locations[g], want)
		}
	}
	for g, want := range a.Parents {
		if b.Parents[g] != want {
			t.Errorf("tag %d parent diverges: %v vs %v", g, b.Parents[g], want)
		}
	}
}
