// Package inference implements SPIRE's probabilistic data interpretation
// (Section IV of the paper): edge inference for ambiguous containment,
// node inference for unknown locations, the iterative algorithm that
// applies both across the graph in increasing distance from the colored
// nodes, partial/complete inference scheduling, and the conflict
// resolution rules of Table I.
package inference

import (
	"fmt"

	"spire/internal/model"
)

// Config holds the inference parameters of Equations 1-4.
type Config struct {
	// Alpha is the Zipf exponent weighting the co-location history
	// (Eq. 1). α=0 weighs all S bits equally — the paper's best setting.
	Alpha float64

	// Beta partitions belief between recent co-location history (β) and
	// the last special-reader confirmation (1-β) in Eq. 2.
	Beta float64

	// AdaptiveBeta switches on the heuristic of Expt 1: per object, β is
	// the fraction of epochs — among those where the object or its
	// confirmed container was read — in which exactly one of the two was
	// read. Beta remains the fallback before any confirmation history.
	AdaptiveBeta bool

	// Gamma weighs colors propagated through containment edges (γ)
	// against the object's own fading color (1-γ) in Eq. 3.
	Gamma float64

	// Theta is the fading exponent of (now-seen_at)^-θ in Eqs. 3-4,
	// controlling how fast belief in a continued stay decays.
	Theta float64

	// PruneThreshold, when positive, drops edges whose un-normalized
	// Eq. 2 confidence falls below it during edge inference — the optional
	// memory-saving routine of Section IV-C / Expt 6 (the paper suggests
	// 0.25). Zero disables pruning; the accuracy experiments run without
	// it.
	PruneThreshold float64

	// PartialHops is l, the halo radius of partial inference (§IV-D).
	PartialHops int

	// Workers bounds the goroutines Infer fans dirty connected
	// components across: 0 means runtime.GOMAXPROCS(0), 1 the serial
	// path. Outputs are byte-identical for every value. Runtime tuning
	// only — never serialized into checkpoints, so restored runs may pick
	// any width without breaking checkpoint byte-compatibility.
	Workers int

	// DisableCache turns off the settled-component verdict-slab cache,
	// forcing every component to be re-swept each epoch. Outputs are
	// byte-identical either way; used by tests and benchmarks to isolate
	// the sweep cost. Runtime tuning only, like Workers.
	DisableCache bool
}

// DefaultConfig returns the parameter setting the paper converges on for
// its workloads: α=0, β=0.4, γ=0.4, θ=1.25, l=1, pruning off.
func DefaultConfig() Config {
	return Config{
		Alpha:       0,
		Beta:        0.4,
		Gamma:       0.4,
		Theta:       1.25,
		PartialHops: 1,
	}
}

// Validate checks parameter ranges.
func (c Config) Validate() error {
	if c.Alpha < 0 {
		return fmt.Errorf("inference: Alpha %v must be >= 0", c.Alpha)
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("inference: Beta %v out of [0,1]", c.Beta)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("inference: Gamma %v out of [0,1]", c.Gamma)
	}
	if c.Theta < 0 {
		return fmt.Errorf("inference: Theta %v must be >= 0", c.Theta)
	}
	if c.PruneThreshold < 0 {
		return fmt.Errorf("inference: PruneThreshold %v must be >= 0", c.PruneThreshold)
	}
	if c.PartialHops < 1 {
		return fmt.Errorf("inference: PartialHops %d must be >= 1", c.PartialHops)
	}
	if c.Workers < 0 {
		return fmt.Errorf("inference: Workers %d must be >= 0", c.Workers)
	}
	return nil
}

// Mode selects complete inference (whole graph) or partial inference
// (l-hop halo of the colored nodes, "unknown" verdicts withheld).
type Mode uint8

// Inference modes.
const (
	Complete Mode = iota
	Partial
)

// String names the mode.
func (m Mode) String() string {
	if m == Partial {
		return "partial"
	}
	return "complete"
}

// Schedule decides, per epoch, whether to run complete or partial
// inference: complete in epochs that are a multiple of the least common
// multiple M of all reader periods, partial otherwise (§IV-D).
type Schedule struct {
	m model.Epoch
}

// NewSchedule derives the schedule from the configured readers.
func NewSchedule(readers []model.Reader) Schedule {
	m := model.Epoch(1)
	for _, r := range readers {
		p := r.Period
		if p < 1 {
			p = 1
		}
		m = lcm(m, p)
	}
	return Schedule{m: m}
}

// CompleteEvery returns M, the complete-inference period.
func (s Schedule) CompleteEvery() model.Epoch { return s.m }

// ModeAt returns the inference mode for epoch t.
func (s Schedule) ModeAt(t model.Epoch) Mode {
	if s.m <= 1 || t%s.m == 0 {
		return Complete
	}
	return Partial
}

func gcd(a, b model.Epoch) model.Epoch {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b model.Epoch) model.Epoch {
	return a / gcd(a, b) * b
}
