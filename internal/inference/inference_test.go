package inference

import (
	"math/rand"
	"testing"

	"spire/internal/epc"
	"spire/internal/graph"
	"spire/internal/model"
)

const (
	locA = model.LocationID(0) // dock
	locB = model.LocationID(1) // belt
	locC = model.LocationID(2) // packaging
)

var (
	dockReader = &model.Reader{ID: 1, Location: locA, Period: 1}
	beltReader = &model.Reader{ID: 2, Location: locB, Period: 1,
		Confirming: true, ConfirmLevel: model.LevelCase}
	packReader = &model.Reader{ID: 3, Location: locC, Period: 1}
)

func tag(t *testing.T, lvl model.Level, serial uint32) model.Tag {
	t.Helper()
	return epc.MustEncode(epc.Identity{Level: lvl, Company: 1, Serial: serial})
}

func levelOf(g model.Tag) model.Level {
	l, _ := epc.LevelOf(g)
	return l
}

func newGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New(graph.Config{HistorySize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newInf(t *testing.T, cfg Config) *Inferencer {
	t.Helper()
	inf, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

func mustUpdate(t *testing.T, g *graph.Graph, r *model.Reader, now model.Epoch, tags ...model.Tag) {
	t.Helper()
	if err := g.Update(r, tags, now); err != nil {
		t.Fatalf("Update: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Alpha: -1, Beta: 0.4, Gamma: 0.4, Theta: 1, PartialHops: 1},
		{Beta: 1.5, Gamma: 0.4, Theta: 1, PartialHops: 1},
		{Beta: 0.4, Gamma: -0.1, Theta: 1, PartialHops: 1},
		{Beta: 0.4, Gamma: 0.4, Theta: -2, PartialHops: 1},
		{Beta: 0.4, Gamma: 0.4, Theta: 1, PruneThreshold: -1, PartialHops: 1},
		{Beta: 0.4, Gamma: 0.4, Theta: 1, PartialHops: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), 0); err == nil {
		t.Error("New with bad history size must fail")
	}
}

func TestScheduleLCM(t *testing.T) {
	s := NewSchedule([]model.Reader{{Period: 2}, {Period: 3}, {Period: 0}})
	if s.CompleteEvery() != 6 {
		t.Fatalf("LCM = %d, want 6", s.CompleteEvery())
	}
	if s.ModeAt(6) != Complete || s.ModeAt(12) != Complete || s.ModeAt(0) != Complete {
		t.Error("multiples of M must run complete inference")
	}
	if s.ModeAt(4) != Partial {
		t.Error("non-multiples must run partial inference")
	}
	uniform := NewSchedule([]model.Reader{{Period: 1}, {Period: 1}})
	for e := model.Epoch(0); e < 5; e++ {
		if uniform.ModeAt(e) != Complete {
			t.Error("M=1 must always be complete")
		}
	}
	if Complete.String() != "complete" || Partial.String() != "partial" {
		t.Error("Mode.String wrong")
	}
}

func TestObservedNodesKeepTheirColor(t *testing.T) {
	g := newGraph(t)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, i1)
	res := newInf(t, DefaultConfig()).Infer(g, 1, Complete)
	if res.Locations[i1] != locA {
		t.Errorf("observed node location = %v, want %v", res.Locations[i1], locA)
	}
	if !res.Observed[i1] {
		t.Error("node must be marked observed")
	}
}

func TestEdgeInferencePrefersConfirmedParent(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i1 := tag(t, model.LevelItem, 1)
	// Belt confirms c1 contains i1.
	mustUpdate(t, g, beltReader, 1, c1, i1)
	// Then all three co-located a couple of epochs: c2 gains history too.
	mustUpdate(t, g, packReader, 2, c1, c2, i1)
	mustUpdate(t, g, packReader, 3, c1, c2, i1)
	res := newInf(t, DefaultConfig()).Infer(g, 3, Complete)
	if res.Parents[i1] != c1 {
		t.Errorf("parent = %d, want confirmed case %d", res.Parents[i1], c1)
	}
}

func TestEdgeInferenceHistoryOutweighsStaleConfirmation(t *testing.T) {
	// With high β the recent co-location history with c2 must eventually
	// outweigh c1's old confirmation.
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1) // confirm c1→i1
	// i1 then travels with c2 while c1 goes unobserved, so the confirmed
	// edge's co-location history decays to nothing.
	for e := model.Epoch(2); e <= 9; e++ {
		mustUpdate(t, g, packReader, e, c2, i1)
	}
	cfg := DefaultConfig()
	cfg.Beta = 0.9
	res := newInf(t, cfg).Infer(g, 9, Complete)
	if res.Parents[i1] != c2 {
		t.Errorf("parent = %d, want history-backed case %d", res.Parents[i1], c2)
	}
	// With β=0 (all weight on confirmation) c1 must still win.
	cfg.Beta = 0
	res = newInf(t, cfg).Infer(g, 9, Complete)
	if res.Parents[i1] != c1 {
		t.Errorf("β=0 parent = %d, want confirmed case %d", res.Parents[i1], c1)
	}
}

func TestEdgeInferenceNoParent(t *testing.T) {
	g := newGraph(t)
	p := tag(t, model.LevelPallet, 1)
	mustUpdate(t, g, dockReader, 1, p)
	res := newInf(t, DefaultConfig()).Infer(g, 1, Complete)
	if res.Parents[p] != model.NoTag {
		t.Errorf("top-level pallet parent = %d, want none", res.Parents[p])
	}
}

func TestNodeInferenceContinuedStayThenUnknown(t *testing.T) {
	g := newGraph(t)
	i1 := tag(t, model.LevelItem, 1)
	for e := model.Epoch(1); e <= 5; e++ {
		mustUpdate(t, g, dockReader, e, i1)
	}
	inf := newInf(t, DefaultConfig())
	// One missed epoch: believe continued stay.
	res := inf.Infer(g, 6, Complete)
	if res.Locations[i1] != locA {
		t.Errorf("after 1 missed epoch location = %v, want %v (continued stay)", res.Locations[i1], locA)
	}
	if res.Observed[i1] {
		t.Error("missed object must not be marked observed")
	}
	// Long absence: belief fades to "unknown".
	res = inf.Infer(g, 60, Complete)
	if res.Locations[i1] != model.LocationUnknown {
		t.Errorf("after 55 missed epochs location = %v, want unknown", res.Locations[i1])
	}
}

func TestThetaControlsFadeRate(t *testing.T) {
	g := newGraph(t)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, i1)

	slow := DefaultConfig()
	slow.Theta = 0.1
	fast := DefaultConfig()
	fast.Theta = 3
	at := model.Epoch(6)
	if got := newInf(t, slow).Infer(g, at, Complete).Locations[i1]; got != locA {
		t.Errorf("low θ must keep believing the stay; got %v", got)
	}
	if got := newInf(t, fast).Infer(g, at, Complete).Locations[i1]; got != model.LocationUnknown {
		t.Errorf("high θ must drop the belief quickly; got %v", got)
	}
}

func TestNodeInferenceMovesWithContainer(t *testing.T) {
	// An item confirmed inside a case follows the case to a new location
	// once its own fading color has decayed (the paper's "movement to a
	// new location" case).
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1) // confirm at belt
	// The case is observed in the packaging area; the item is missed.
	mustUpdate(t, g, packReader, 2, c1)
	mustUpdate(t, g, packReader, 3, c1)
	res := newInf(t, DefaultConfig()).Infer(g, 3, Complete)
	if res.Locations[i1] != locC {
		t.Errorf("item location = %v, want %v (propagated from its container)", res.Locations[i1], locC)
	}
	if res.Parents[i1] != c1 {
		t.Errorf("item parent = %d, want %d", res.Parents[i1], c1)
	}
}

func TestGammaZeroIgnoresContainment(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1)
	for e := model.Epoch(2); e <= 10; e++ {
		mustUpdate(t, g, packReader, e, c1)
	}
	cfg := DefaultConfig()
	cfg.Gamma = 0
	res := newInf(t, cfg).Infer(g, 10, Complete)
	if res.Locations[i1] == locC {
		t.Error("γ=0 must not propagate the container's location")
	}
	cfg.Gamma = 1
	res = newInf(t, cfg).Infer(g, 10, Complete)
	if res.Locations[i1] != locC {
		t.Errorf("γ=1 must fully adopt the container's location; got %v", res.Locations[i1])
	}
}

func TestIterativeInferenceReachesDistanceTwo(t *testing.T) {
	// pallet→case→item chain: only the item is observed; the case (d=1)
	// and the pallet (d=2) must both inherit its color through the chain.
	g := newGraph(t)
	p1 := tag(t, model.LevelPallet, 1)
	c1 := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, p1, c1, i1)
	for e := model.Epoch(2); e <= 6; e++ {
		mustUpdate(t, g, dockReader, e, p1, c1, i1)
	}
	// Move all three to packaging, but only the item is read there; after
	// two epochs the dock color has faded enough for the propagated color
	// to win at both one and two hops.
	mustUpdate(t, g, packReader, 7, i1)
	mustUpdate(t, g, packReader, 8, i1)
	res := newInf(t, DefaultConfig()).Infer(g, 8, Complete)
	if res.Locations[i1] != locC {
		t.Fatalf("item location = %v", res.Locations[i1])
	}
	if res.Locations[c1] != locC {
		t.Errorf("case (d=1) location = %v, want %v", res.Locations[c1], locC)
	}
	if res.Locations[p1] != locC {
		t.Errorf("pallet (d=2) location = %v, want %v", res.Locations[p1], locC)
	}
}

func TestIsolatedComponentStillInterpreted(t *testing.T) {
	g := newGraph(t)
	i1 := tag(t, model.LevelItem, 1)
	i2 := tag(t, model.LevelItem, 2)
	mustUpdate(t, g, dockReader, 1, i1)
	mustUpdate(t, g, packReader, 5, i2)
	// Epoch 6: nothing is read; complete inference must still interpret
	// both isolated nodes.
	res := newInf(t, DefaultConfig()).Infer(g, 6, Complete)
	if _, ok := res.Locations[i1]; !ok {
		t.Error("complete inference must cover unobserved components")
	}
	if got := res.Locations[i2]; got != locC {
		t.Errorf("recently seen isolated node = %v, want %v", got, locC)
	}
}

func TestPartialInferenceWithholdsUnknownAndLimitsHops(t *testing.T) {
	g := newGraph(t)
	p1 := tag(t, model.LevelPallet, 1)
	c1 := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	far := tag(t, model.LevelItem, 9)
	mustUpdate(t, g, dockReader, 1, p1, c1, i1)
	mustUpdate(t, g, packReader, 1, far)
	// Epoch 2: only the item is read.
	mustUpdate(t, g, dockReader, 2, i1)

	res := newInf(t, DefaultConfig()).Infer(g, 2, Partial)
	if !res.Partial {
		t.Error("result must be marked partial")
	}
	if _, ok := res.Locations[i1]; !ok {
		t.Error("observed node must be reported")
	}
	if _, ok := res.Locations[c1]; !ok {
		t.Error("d=1 neighbor must be interpreted under partial inference")
	}
	if _, ok := res.Locations[p1]; ok {
		t.Error("d=2 node must be outside the l=1 partial halo")
	}
	if _, ok := res.Locations[far]; ok {
		t.Error("disconnected node must not be interpreted under partial inference")
	}

	// Withholding: a d=1 node whose verdict is "unknown" must be absent.
	g2 := newGraph(t)
	c2 := tag(t, model.LevelCase, 2)
	i2 := tag(t, model.LevelItem, 2)
	mustUpdate(t, g2, dockReader, 1, c2, i2)
	// Long gap, then only the item is read at the dock again; the case's
	// faded belief yields "unknown", which partial inference withholds.
	mustUpdate(t, g2, dockReader, 100, i2)
	cfg := DefaultConfig()
	cfg.Gamma = 0 // suppress propagation so the verdict is driven by fade
	res = newInf(t, cfg).Infer(g2, 100, Partial)
	if loc, ok := res.Locations[c2]; ok {
		t.Errorf("unknown verdict must be withheld under partial inference; got %v", loc)
	}
	if _, ok := res.Parents[c2]; ok {
		t.Error("withheld node must not report a parent either")
	}
	// Complete inference does report the unknown.
	res = newInf(t, cfg).Infer(g2, 100, Complete)
	if loc := res.Locations[c2]; loc != model.LocationUnknown {
		t.Errorf("complete inference verdict = %v, want unknown", loc)
	}
}

func TestPruningRemovesWeakEdges(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c1, i1) // confirmed edge c1→i1
	mustUpdate(t, g, packReader, 2, c1, c2, i1)
	if g.Node(i1).NumParents() != 2 {
		t.Fatalf("setup: want 2 parents, got %d", g.Node(i1).NumParents())
	}
	cfg := DefaultConfig()
	cfg.PruneThreshold = 0.25
	res := newInf(t, cfg).Infer(g, 2, Complete)
	if g.Node(i1).NumParents() != 1 {
		t.Errorf("weak unconfirmed edge must be pruned; %d parents remain", g.Node(i1).NumParents())
	}
	if g.Node(i1).ParentEdge(c1) == nil {
		t.Error("the confirmed edge must survive pruning")
	}
	if res.Parents[i1] != c1 {
		t.Errorf("parent = %d, want %d", res.Parents[i1], c1)
	}
}

func TestResolveConflictsRuleI(t *testing.T) {
	// Observed parent, inferred child in a different location: the child
	// is overridden.
	res := &Result{
		Locations: map[model.Tag]model.LocationID{10: locA, 20: locB},
		Parents:   map[model.Tag]model.Tag{20: 10},
		Observed:  map[model.Tag]bool{10: true},
	}
	ResolveConflicts(res, func(g model.Tag) model.Level {
		if g == 10 {
			return model.LevelCase
		}
		return model.LevelItem
	})
	if res.Locations[20] != locA {
		t.Errorf("rule I: child location = %v, want %v", res.Locations[20], locA)
	}
	if res.Parents[20] != 10 {
		t.Error("rule I must not end the containment")
	}
}

func TestResolveConflictsRuleII(t *testing.T) {
	// Inferred parent; three observed children, two at B and one at C:
	// the majority moves the parent to B, and the C child's containment
	// ends.
	res := &Result{
		Locations: map[model.Tag]model.LocationID{
			10: locA,                     // inferred parent
			21: locB, 22: locB, 23: locC, // observed children
		},
		Parents:  map[model.Tag]model.Tag{21: 10, 22: 10, 23: 10},
		Observed: map[model.Tag]bool{21: true, 22: true, 23: true},
	}
	ResolveConflicts(res, func(g model.Tag) model.Level {
		if g == 10 {
			return model.LevelCase
		}
		return model.LevelItem
	})
	if res.Locations[10] != locB {
		t.Errorf("rule II: parent location = %v, want majority %v", res.Locations[10], locB)
	}
	if res.Parents[23] != model.NoTag {
		t.Error("rule II: observed child still in conflict must lose its containment")
	}
	if res.Parents[21] != 10 || res.Parents[22] != 10 {
		t.Error("rule II: agreeing children keep their containment")
	}
}

func TestResolveConflictsRuleIINoMajority(t *testing.T) {
	res := &Result{
		Locations: map[model.Tag]model.LocationID{
			10: locA,
			21: locB, 22: locC,
		},
		Parents:  map[model.Tag]model.Tag{21: 10, 22: 10},
		Observed: map[model.Tag]bool{21: true, 22: true},
	}
	ResolveConflicts(res, func(model.Tag) model.Level { return model.LevelItem })
	if res.Locations[10] != locA {
		t.Errorf("no majority: parent location must stay %v, got %v", locA, res.Locations[10])
	}
	if res.Parents[21] != model.NoTag || res.Parents[22] != model.NoTag {
		t.Error("no majority: both conflicting observed children end containment")
	}
}

func TestResolveConflictsRuleIII(t *testing.T) {
	// Inferred parent and inferred child disagreeing: majority updates the
	// parent, then the child is overridden.
	res := &Result{
		Locations: map[model.Tag]model.LocationID{
			10: locA,
			21: locB, 22: locB, 23: locC, // all inferred
		},
		Parents:  map[model.Tag]model.Tag{21: 10, 22: 10, 23: 10},
		Observed: map[model.Tag]bool{},
	}
	ResolveConflicts(res, func(g model.Tag) model.Level {
		if g == 10 {
			return model.LevelCase
		}
		return model.LevelItem
	})
	if res.Locations[10] != locB {
		t.Errorf("rule III: parent = %v, want %v", res.Locations[10], locB)
	}
	if res.Locations[23] != locB {
		t.Errorf("rule III: inferred child overridden to %v, got %v", locB, res.Locations[23])
	}
	if res.Parents[23] != 10 {
		t.Error("rule III keeps the containment")
	}
}

func TestResolveConflictsCascades(t *testing.T) {
	// pallet(observed,A) → case(inferred,B) → item(inferred,B):
	// the pallet pulls the case to A (rule I applied at pallet level
	// first), then the case pulls the item (rule III downstream).
	pallet := model.Tag(1)
	caseT := model.Tag(2)
	item := model.Tag(3)
	res := &Result{
		Locations: map[model.Tag]model.LocationID{pallet: locA, caseT: locB, item: locB},
		Parents:   map[model.Tag]model.Tag{caseT: pallet, item: caseT},
		Observed:  map[model.Tag]bool{pallet: true},
	}
	ResolveConflicts(res, func(g model.Tag) model.Level {
		switch g {
		case pallet:
			return model.LevelPallet
		case caseT:
			return model.LevelCase
		default:
			return model.LevelItem
		}
	})
	if res.Locations[caseT] != locA {
		t.Errorf("case = %v, want %v", res.Locations[caseT], locA)
	}
	if res.Locations[item] != locA {
		t.Errorf("item = %v, want %v (cascaded)", res.Locations[item], locA)
	}
}

func TestResolveConflictsSkipsWithheld(t *testing.T) {
	res := &Result{
		Locations: map[model.Tag]model.LocationID{20: locB},
		Parents:   map[model.Tag]model.Tag{20: 10}, // parent 10 withheld
		Observed:  map[model.Tag]bool{20: true},
	}
	ResolveConflicts(res, func(model.Tag) model.Level { return model.LevelItem })
	if res.Locations[20] != locB || res.Parents[20] != 10 {
		t.Error("withheld parent must leave children untouched")
	}
}

// Property: inference is deterministic and always yields a Known or
// Unknown verdict for every node of the graph under complete mode.
func TestRandomizedInferenceTotalAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	readers := []*model.Reader{dockReader, beltReader, packReader}
	g := newGraph(t)
	pool := make([]model.Tag, 0, 30)
	for s := uint32(1); s <= 10; s++ {
		pool = append(pool,
			tag(t, model.LevelItem, s),
			tag(t, model.LevelCase, s),
			tag(t, model.LevelPallet, s))
	}
	inf := newInf(t, DefaultConfig())
	inf2 := newInf(t, DefaultConfig())
	for now := model.Epoch(1); now <= 120; now++ {
		for _, r := range readers {
			var set []model.Tag
			for _, g := range pool {
				if rng.Float64() < 0.2 {
					set = append(set, g)
				}
			}
			// Dedup across readers is the simulator's job; here just make
			// reader sets disjoint by construction.
			if err := g.Update(r, set[:len(set)/3], now); err != nil {
				t.Fatal(err)
			}
		}
		res := inf.Infer(g, now, Complete)
		count := 0
		g.Nodes(func(n *graph.Node) {
			count++
			loc, ok := res.Locations[n.Tag]
			if !ok {
				t.Fatalf("epoch %d: node %d has no verdict", now, n.Tag)
			}
			if !loc.Known() && loc != model.LocationUnknown {
				t.Fatalf("epoch %d: node %d verdict %v", now, n.Tag, loc)
			}
			if _, ok := res.Parents[n.Tag]; !ok {
				t.Fatalf("epoch %d: node %d has no parent verdict", now, n.Tag)
			}
		})
		if len(res.Locations) != count {
			t.Fatalf("epoch %d: %d verdicts for %d nodes", now, len(res.Locations), count)
		}
		res2 := inf2.Infer(g, now, Complete)
		for tag, loc := range res.Locations {
			if res2.Locations[tag] != loc {
				t.Fatalf("epoch %d: nondeterministic location for %d", now, tag)
			}
		}
		for tag, p := range res.Parents {
			if res2.Parents[tag] != p {
				t.Fatalf("epoch %d: nondeterministic parent for %d", now, tag)
			}
		}
		ResolveConflicts(res, levelOf)
		for tag, loc := range res.Locations {
			if !loc.Known() && loc != model.LocationUnknown {
				t.Fatalf("epoch %d: post-conflict verdict %v for %d", now, loc, tag)
			}
		}
	}
}
