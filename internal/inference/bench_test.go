package inference

import (
	"fmt"
	"testing"

	"spire/internal/epc"
	"spire/internal/graph"
	"spire/internal/model"
)

// buildWarehouseGraph colors nShelves shelves, each holding cases of
// items, and leaves a fraction of objects unobserved in the final epoch
// so the iterative sweep has real work at d ≥ 1.
func buildWarehouseGraph(b testing.TB, nShelves, casesPerShelf, itemsPerCase int) (*graph.Graph, model.Epoch) {
	b.Helper()
	g, err := graph.New(graph.Config{})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := epc.NewSequencer(3)
	if err != nil {
		b.Fatal(err)
	}
	now := model.Epoch(1)
	readers := make([]*model.Reader, nShelves)
	groups := make([][]model.Tag, nShelves)
	for s := 0; s < nShelves; s++ {
		readers[s] = &model.Reader{ID: model.ReaderID(s + 1), Location: model.LocationID(s), Period: 1}
		for c := 0; c < casesPerShelf; c++ {
			ct, _ := seq.Next(model.LevelCase)
			groups[s] = append(groups[s], ct)
			for i := 0; i < itemsPerCase; i++ {
				it, _ := seq.Next(model.LevelItem)
				groups[s] = append(groups[s], it)
			}
		}
	}
	// A few epochs of full reads build history, then one epoch with ~20%
	// of objects missed.
	for e := 0; e < 4; e++ {
		for s := range groups {
			if err := g.Update(readers[s], groups[s], now); err != nil {
				b.Fatal(err)
			}
		}
		now++
	}
	for s := range groups {
		var read []model.Tag
		for i, t := range groups[s] {
			if i%5 != 0 {
				read = append(read, t)
			}
		}
		if err := g.Update(readers[s], read, now); err != nil {
			b.Fatal(err)
		}
	}
	return g, now
}

// BenchmarkCompleteInference measures a full iterative pass.
func BenchmarkCompleteInference(b *testing.B) {
	for _, shelves := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("shelves=%d", shelves), func(b *testing.B) {
			g, now := buildWarehouseGraph(b, shelves, 4, 20)
			inf, err := New(DefaultConfig(), g.Config().HistorySize)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := inf.Infer(g, now, Complete)
				if len(res.Locations) != g.Len() {
					b.Fatalf("incomplete verdicts: %d of %d", len(res.Locations), g.Len())
				}
			}
			b.ReportMetric(float64(g.Len()), "nodes")
		})
	}
}

// The component-sharded variants cover the three operating points of the
// sharded pass: serial full re-sweep (the Table III baseline shape),
// 4-way worker fan-out over dirty components, and cached steady state
// where the stream has gone quiet and passes serve settled slabs.
func BenchmarkInferComponentsSerial(b *testing.B) {
	benchInferComponents(b, 1, true, false)
}

func BenchmarkInferComponentsParallel4(b *testing.B) {
	benchInferComponents(b, 4, true, false)
}

func BenchmarkInferComponentsCachedSteadyState(b *testing.B) {
	benchInferComponents(b, 1, false, true)
}

func benchInferComponents(b *testing.B, workers int, disableCache, steady bool) {
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.DisableCache = disableCache
	g, now := buildWarehouseGraph(b, 64, 4, 20)
	inf, err := New(cfg, g.Config().HistorySize)
	if err != nil {
		b.Fatal(err)
	}
	if steady {
		for i := 0; i < 4; i++ { // let every component settle into the cache
			now++
			inf.Infer(g, now, Complete)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if steady {
			now++
		}
		res := inf.Infer(g, now, Complete)
		if len(res.Locations) != g.Len() {
			b.Fatalf("incomplete verdicts: %d of %d", len(res.Locations), g.Len())
		}
	}
	b.StopTimer()
	st := inf.LastStats()
	b.ReportMetric(float64(st.NodesInferred), "nodes-inferred")
	b.ReportMetric(float64(st.NodesCached), "nodes-cached")
}

// BenchmarkPartialInference measures the halo-limited pass the substrate
// runs between complete-inference epochs.
func BenchmarkPartialInference(b *testing.B) {
	g, now := buildWarehouseGraph(b, 16, 4, 20)
	inf, err := New(DefaultConfig(), g.Config().HistorySize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf.Infer(g, now, Partial)
	}
}

// BenchmarkResolveConflicts measures the post-processing pass.
func BenchmarkResolveConflicts(b *testing.B) {
	g, now := buildWarehouseGraph(b, 16, 4, 20)
	inf, err := New(DefaultConfig(), g.Config().HistorySize)
	if err != nil {
		b.Fatal(err)
	}
	levelOf := func(t model.Tag) model.Level {
		l, _ := epc.LevelOf(t)
		return l
	}
	base := inf.Infer(g, now, Complete)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Conflict resolution mutates; copy the maps per iteration.
		res := &Result{
			Now:       base.Now,
			Locations: make(map[model.Tag]model.LocationID, len(base.Locations)),
			Parents:   make(map[model.Tag]model.Tag, len(base.Parents)),
			Observed:  base.Observed,
		}
		for k, v := range base.Locations {
			res.Locations[k] = v
		}
		for k, v := range base.Parents {
			res.Parents[k] = v
		}
		ResolveConflicts(res, levelOf)
	}
}
