package inference

import (
	"math"

	"spire/internal/graph"
	"spire/internal/model"
)

// InferReference runs the paper's global layer-interleaved sweep — the
// pre-sharding Infer, kept verbatim in structure — and returns a freshly
// allocated Result. It is the oracle for the differential tests pinning
// the component-sharded Infer: both must produce identical results and
// identical graph side effects (edge pruning) on identical graphs, for
// any worker count and with the slab cache on or off.
//
// Unlike Infer it allocates its scratch per call and never touches the
// slab cache; it shares the per-edge/per-node inference kernels, so the
// comparison exercises exactly the sharding, caching, and merge logic.
func (inf *Inferencer) InferReference(g *graph.Graph, now model.Epoch, mode Mode) *Result {
	res := &Result{}
	res.reset(now, mode == Partial)
	inf.stamp = passStamps.Add(1)
	inf.now = now
	s := &sweeper{
		inf:   inf,
		res:   res,
		probs: make(map[model.LocationID]float64),
	}
	dist := make(map[model.Tag]int32)

	// Layer d=0: the colored nodes.
	var frontier, next []*graph.Node
	g.EachColored(now, func(n *graph.Node) {
		dist[n.Tag] = 0
		frontier = append(frontier, n)
		res.Observed[n.Tag] = true
		res.Locations[n.Tag] = n.RecentColor
	})
	sortNodes(frontier)
	for _, n := range frontier {
		res.Parents[n.Tag] = s.edgeInference(g, n)
	}

	// Sweep outward, one hop at a time, across the whole graph.
	maxHops := int32(math.MaxInt32)
	if mode == Partial {
		maxHops = int32(inf.cfg.PartialHops)
	}
	for d := int32(1); d <= maxHops && len(frontier) > 0; d++ {
		next = next[:0]
		for _, n := range frontier {
			n.VisitParents(func(e *graph.Edge) {
				if _, seen := dist[e.Parent.Tag]; !seen {
					dist[e.Parent.Tag] = d
					next = append(next, e.Parent)
				}
			})
			n.VisitChildren(func(e *graph.Edge) {
				if _, seen := dist[e.Child.Tag]; !seen {
					dist[e.Child.Tag] = d
					next = append(next, e.Child)
				}
			})
		}
		frontier, next = next, frontier
		sortNodes(frontier)
		for _, n := range frontier {
			res.Parents[n.Tag] = s.edgeInference(g, n)
			loc := s.nodeInference(n, now, res)
			if mode == Partial && loc == model.LocationUnknown {
				delete(res.Parents, n.Tag)
				continue
			}
			res.Locations[n.Tag] = loc
		}
	}

	if mode == Complete {
		// Nodes unreached from any colored node, in global tag order.
		var rest []*graph.Node
		g.Nodes(func(n *graph.Node) {
			if _, seen := dist[n.Tag]; !seen {
				rest = append(rest, n)
			}
		})
		sortNodes(rest)
		for _, n := range rest {
			res.Parents[n.Tag] = s.edgeInference(g, n)
			res.Locations[n.Tag] = s.nodeInference(n, now, res)
		}
	}
	g.RecycleDetached(s.detached)
	return res
}
