package inference

import (
	"sort"

	"spire/internal/model"
	"spire/internal/trace"
)

// ResolveConflicts post-processes an inference result so the reported
// locations and containments are mutually consistent (Section IV-E,
// Table I). Iterative inference settles the two endpoints of a chosen
// containment edge in different sweeps, so they can disagree; the general
// guideline is to give the containment relationship priority over an
// inferred location, because containment is usually backed by a
// special-reader confirmation.
//
// The three rules, applied per chosen containment pair with differing
// locations:
//
//	I   parent observed, child inferred   → override the child's location;
//	II  parent inferred, child observed   → poll all children; adopt a
//	    majority location for the parent, then end the containment of
//	    observed children still in conflict;
//	III parent inferred, child inferred   → poll as in II, then override
//	    the child's location.
//
// Parents are processed from the highest packaging level down so an
// override cascades to grandchildren. The result is mutated in place.
//
// levelOf reports the packaging level of a tag (used only for ordering);
// it is supplied by the caller so this package stays decoupled from the
// tag codec.
func ResolveConflicts(res *Result, levelOf func(model.Tag) model.Level) {
	ResolveConflictsTraced(res, levelOf, nil)
}

// ResolveConflictsTraced is ResolveConflicts with decision provenance:
// every Table I rule firing (and the children's majority poll preceding
// Rules II-III) is recorded against the affected tag. A nil recorder
// reduces to ResolveConflicts with no extra work.
func ResolveConflictsTraced(res *Result, levelOf func(model.Tag) model.Level, rec *trace.Recorder) {
	// Group chosen children per parent.
	children := make(map[model.Tag][]model.Tag)
	for child, parent := range res.Parents {
		if parent == model.NoTag {
			continue
		}
		if _, ok := res.Locations[child]; !ok {
			continue // withheld under partial inference: nothing reported
		}
		children[parent] = append(children[parent], child)
	}
	parents := make([]model.Tag, 0, len(children))
	for p := range children {
		parents = append(parents, p)
	}
	// Highest level first; ties in tag order for determinism.
	sort.Slice(parents, func(i, j int) bool {
		li, lj := levelOf(parents[i]), levelOf(parents[j])
		if li != lj {
			return li > lj
		}
		return parents[i] < parents[j]
	})

	// A location is "settled" when it was directly observed or inherited
	// from a settled container higher up the pass; the children's poll may
	// not override a settled location, otherwise a rule-I override at the
	// pallet level would be undone when the case is later processed as a
	// parent itself.
	settled := make(map[model.Tag]bool, len(res.Observed))
	for tag, obs := range res.Observed {
		if obs {
			settled[tag] = true
		}
	}

	for _, p := range parents {
		kids := children[p]
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		ploc, ok := res.Locations[p]
		if !ok {
			// The parent itself was withheld (partial inference). Leave
			// the children as they are: no parent location to enforce.
			continue
		}
		if !settled[p] {
			// Rules II/III preamble: the parent's location is inferred, so
			// poll the children before enforcing anything. A strict
			// majority of the children voting for one known location
			// overrides the parent's estimate.
			// Children with "unknown" verdicts carry no location evidence
			// (they are typically the parent's own missed readings), so
			// the majority is taken over the children that actually vote
			// a known location.
			votes := make(map[model.LocationID]int)
			total := 0
			for _, c := range kids {
				if loc, ok := res.Locations[c]; ok && loc.Known() {
					votes[loc]++
					total++
				}
			}
			bestLoc, bestN := model.LocationNone, 0
			for loc, n := range votes {
				if n > bestN || (n == bestN && (bestLoc == model.LocationNone || loc < bestLoc)) {
					bestLoc, bestN = loc, n
				}
			}
			if bestN*2 > total {
				if rec != nil && ploc != bestLoc && rec.Traces(p) {
					rec.Record(trace.Record{
						Epoch: res.Now, Tag: p, Mech: trace.MechMajorityPoll,
						Loc: bestLoc, Aux: int32(bestN),
					})
				}
				ploc = bestLoc
				res.Locations[p] = ploc
			}
		}
		for _, c := range kids {
			cloc, ok := res.Locations[c]
			if !ok || cloc == ploc {
				continue
			}
			switch {
			case res.Observed[c] && !res.Observed[p]:
				// Rule II: an observed child that still disagrees ends its
				// containment — we report that the child has no container.
				res.Parents[c] = model.NoTag
				if rec != nil && rec.Traces(c) {
					rec.Record(trace.Record{
						Epoch: res.Now, Tag: c, Mech: trace.MechRuleII,
						Loc: cloc, Other: p,
					})
				}
			case res.Observed[c] && res.Observed[p]:
				// Both observed in different locations: the graph update
				// would have dropped the edge, so this cannot arise from a
				// single consistent epoch; keep the observations and end
				// the containment defensively.
				res.Parents[c] = model.NoTag
				if rec != nil && rec.Traces(c) {
					rec.Record(trace.Record{
						Epoch: res.Now, Tag: c, Mech: trace.MechRuleII,
						Loc: cloc, Other: p, Aux: 1,
					})
				}
			default:
				// Rules I and III: containment wins, the child's inferred
				// location is overridden by the parent's.
				res.Locations[c] = ploc
				if settled[p] {
					settled[c] = true
				}
				if rec != nil && rec.Traces(c) {
					mech := trace.MechRuleIII
					if res.Observed[p] {
						mech = trace.MechRuleI
					}
					rec.Record(trace.Record{
						Epoch: res.Now, Tag: c, Mech: mech,
						Loc: ploc, Other: p,
					})
				}
			}
		}
	}
}
