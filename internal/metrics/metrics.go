// Package metrics implements the evaluation measures of the paper's
// Section VI: per-object location and containment error rates against
// ground truth, the event-based precision/recall/F-measure used for the
// output stream (Expt 7), compression ratios (Expt 8), and anomaly
// detection delay (Expt 4).
package metrics

import (
	"sort"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

// Accuracy accumulates per-epoch inference error rates. An inference
// result is an error when it is inconsistent with the ground truth; the
// error rate is averaged over all scored (object, epoch) pairs.
type Accuracy struct {
	LocTotal, LocWrong   int64
	ContTotal, ContWrong int64
}

// Observe scores one epoch's (conflict-resolved) result against the
// world. Objects for which exclude returns true — e.g. objects at the
// paper's warm-up entry door — are skipped, as are objects absent from
// either the result (withheld) or the world (already departed).
func (a *Accuracy) Observe(res *inference.Result, truthLoc func(model.Tag) model.LocationID, truthParent func(model.Tag) model.Tag, exclude func(model.Tag) bool) {
	for g, loc := range res.Locations {
		want := truthLoc(g)
		if want == model.LocationNone {
			continue // not in the world (departed)
		}
		if exclude != nil && exclude(g) {
			continue
		}
		a.LocTotal++
		if loc != want {
			a.LocWrong++
		}
		if p, ok := res.Parents[g]; ok {
			a.ContTotal++
			if p != truthParent(g) {
				a.ContWrong++
			}
		}
	}
}

// LocationErrorRate returns the accumulated location error rate.
func (a *Accuracy) LocationErrorRate() float64 {
	if a.LocTotal == 0 {
		return 0
	}
	return float64(a.LocWrong) / float64(a.LocTotal)
}

// ContainmentErrorRate returns the accumulated containment error rate.
func (a *Accuracy) ContainmentErrorRate() float64 {
	if a.ContTotal == 0 {
		return 0
	}
	return float64(a.ContWrong) / float64(a.ContTotal)
}

// EventScore is the event-based accuracy of an output stream against the
// ground-truth compressed stream, borrowing precision/recall/F-measure
// from information retrieval as the paper does.
type EventScore struct {
	Matched, Output, Truth int
	Precision, Recall, F   float64
}

// eventKey identifies comparable events: kind plus payload, ignoring
// timestamps (which matching handles separately).
type eventKey struct {
	kind      event.Kind
	object    model.Tag
	location  model.LocationID
	container model.Tag
}

// ScoreEvents compares an output event stream against the ground-truth
// stream. Events match one-to-one when they agree on kind, object, and
// payload, and their start timestamps differ by at most tolerance epochs
// (negative tolerance = unlimited). Matching is greedy in time order
// within each payload group.
func ScoreEvents(output, truth []event.Event, tolerance model.Epoch) EventScore {
	group := func(evs []event.Event) map[eventKey][]model.Epoch {
		m := make(map[eventKey][]model.Epoch)
		for _, e := range evs {
			k := eventKey{kind: e.Kind, object: e.Object, location: e.Location, container: e.Container}
			m[k] = append(m[k], e.Vs)
		}
		for _, ts := range m {
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		}
		return m
	}
	om, tm := group(output), group(truth)
	score := EventScore{Output: len(output), Truth: len(truth)}
	for k, outs := range om {
		trs := tm[k]
		i, j := 0, 0
		for i < len(outs) && j < len(trs) {
			d := outs[i] - trs[j]
			if d < 0 {
				d = -d
			}
			if tolerance < 0 || d <= tolerance {
				score.Matched++
				i++
				j++
				continue
			}
			if outs[i] < trs[j] {
				i++ // unmatched output event
			} else {
				j++ // unmatched truth event
			}
		}
	}
	if score.Output > 0 {
		score.Precision = float64(score.Matched) / float64(score.Output)
	}
	if score.Truth > 0 {
		score.Recall = float64(score.Matched) / float64(score.Truth)
	}
	if score.Precision+score.Recall > 0 {
		score.F = 2 * score.Precision * score.Recall / (score.Precision + score.Recall)
	}
	return score
}

// Ratio returns out/in as a fraction (the paper's compression ratio:
// compressed output size over raw input size).
func Ratio(outBytes, inBytes int64) float64 {
	if inBytes == 0 {
		return 0
	}
	return float64(outBytes) / float64(inBytes)
}

// Detection summarizes anomaly detection over a set of thefts.
type Detection struct {
	Total     int
	Detected  int
	MeanDelay float64
	MaxDelay  model.Epoch
}

// DetectionDelays scans the output stream for the first Missing message of
// each stolen object at or after its theft epoch and reports the delay
// statistics (Expt 4).
func DetectionDelays(output []event.Event, thefts map[model.Tag]model.Epoch) Detection {
	first := make(map[model.Tag]model.Epoch, len(thefts))
	for _, e := range output {
		if e.Kind != event.Missing {
			continue
		}
		at, stolen := thefts[e.Object]
		if !stolen || e.Vs < at {
			continue
		}
		if cur, ok := first[e.Object]; !ok || e.Vs < cur {
			first[e.Object] = e.Vs
		}
	}
	d := Detection{Total: len(thefts)}
	var sum int64
	for g, at := range thefts {
		found, ok := first[g]
		if !ok {
			continue
		}
		d.Detected++
		delay := found - at
		sum += int64(delay)
		if delay > d.MaxDelay {
			d.MaxDelay = delay
		}
	}
	if d.Detected > 0 {
		d.MeanDelay = float64(sum) / float64(d.Detected)
	}
	return d
}
