package metrics

import (
	"math"
	"testing"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

func TestAccuracy(t *testing.T) {
	res := &inference.Result{
		Now: 5,
		Locations: map[model.Tag]model.LocationID{
			1: 0, // correct
			2: 1, // wrong (truth 0)
			3: 0, // excluded
			4: 0, // departed (truth none)
		},
		Parents: map[model.Tag]model.Tag{
			1: model.NoTag, // correct
			2: 9,           // wrong (truth none)
		},
	}
	truthLoc := func(g model.Tag) model.LocationID {
		if g == 4 {
			return model.LocationNone
		}
		return 0
	}
	truthParent := func(model.Tag) model.Tag { return model.NoTag }
	exclude := func(g model.Tag) bool { return g == 3 }

	var a Accuracy
	a.Observe(res, truthLoc, truthParent, exclude)
	if a.LocTotal != 2 || a.LocWrong != 1 {
		t.Errorf("location counts = %d/%d, want 1/2", a.LocWrong, a.LocTotal)
	}
	if a.ContTotal != 2 || a.ContWrong != 1 {
		t.Errorf("containment counts = %d/%d, want 1/2", a.ContWrong, a.ContTotal)
	}
	if got := a.LocationErrorRate(); got != 0.5 {
		t.Errorf("location error = %v, want 0.5", got)
	}
	if got := a.ContainmentErrorRate(); got != 0.5 {
		t.Errorf("containment error = %v, want 0.5", got)
	}
	var empty Accuracy
	if empty.LocationErrorRate() != 0 || empty.ContainmentErrorRate() != 0 {
		t.Error("empty accumulator must report zero error")
	}
}

func TestScoreEventsPerfect(t *testing.T) {
	evs := []event.Event{
		event.NewStartLocation(1, 0, 1),
		event.NewEndLocation(1, 0, 1, 5),
		event.NewStartContainment(1, 2, 1),
	}
	s := ScoreEvents(evs, evs, 0)
	if s.Precision != 1 || s.Recall != 1 || s.F != 1 {
		t.Errorf("perfect match scored %+v", s)
	}
}

func TestScoreEventsExtraAndMissing(t *testing.T) {
	truth := []event.Event{
		event.NewStartLocation(1, 0, 1),
		event.NewStartLocation(1, 1, 10),
	}
	// Output flaps: reports location 0 twice, never sees location 1.
	out := []event.Event{
		event.NewStartLocation(1, 0, 1),
		event.NewStartLocation(1, 0, 6),
	}
	s := ScoreEvents(out, truth, -1)
	if s.Matched != 1 {
		t.Fatalf("matched = %d, want 1", s.Matched)
	}
	if s.Precision != 0.5 || s.Recall != 0.5 {
		t.Errorf("precision/recall = %v/%v, want 0.5/0.5", s.Precision, s.Recall)
	}
	wantF := 2 * 0.5 * 0.5 / (0.5 + 0.5)
	if math.Abs(s.F-wantF) > 1e-12 {
		t.Errorf("F = %v, want %v", s.F, wantF)
	}
}

func TestScoreEventsTolerance(t *testing.T) {
	truth := []event.Event{event.NewStartLocation(1, 0, 10)}
	out := []event.Event{event.NewStartLocation(1, 0, 13)}
	if s := ScoreEvents(out, truth, 2); s.Matched != 0 {
		t.Error("match beyond tolerance must not count")
	}
	if s := ScoreEvents(out, truth, 3); s.Matched != 1 {
		t.Error("match within tolerance must count")
	}
	if s := ScoreEvents(out, truth, -1); s.Matched != 1 {
		t.Error("negative tolerance must be unlimited")
	}
}

func TestScoreEventsDistinguishesPayload(t *testing.T) {
	truth := []event.Event{event.NewStartLocation(1, 0, 1)}
	out := []event.Event{event.NewStartLocation(1, 1, 1)} // wrong location
	if s := ScoreEvents(out, truth, -1); s.Matched != 0 {
		t.Error("different payloads must not match")
	}
	out = []event.Event{event.NewEndLocation(1, 0, 1, 1)} // wrong kind
	if s := ScoreEvents(out, truth, -1); s.Matched != 0 {
		t.Error("different kinds must not match")
	}
}

func TestScoreEventsEmpty(t *testing.T) {
	s := ScoreEvents(nil, nil, 0)
	if s.Precision != 0 || s.Recall != 0 || s.F != 0 {
		t.Errorf("empty score = %+v", s)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(20, 100); got != 0.2 {
		t.Errorf("Ratio = %v, want 0.2", got)
	}
	if got := Ratio(5, 0); got != 0 {
		t.Errorf("Ratio with zero input = %v, want 0", got)
	}
}

func TestDetectionDelays(t *testing.T) {
	thefts := map[model.Tag]model.Epoch{10: 100, 20: 200, 30: 300}
	out := []event.Event{
		event.NewMissing(10, 0, 130),       // delay 30
		event.NewMissing(10, 0, 150),       // later duplicate ignored
		event.NewMissing(20, 0, 190),       // before the theft: ignored
		event.NewMissing(20, 0, 260),       // delay 60
		event.NewMissing(99, 0, 5),         // unrelated object
		event.NewStartLocation(30, 0, 310), // not a Missing
	}
	d := DetectionDelays(out, thefts)
	if d.Total != 3 || d.Detected != 2 {
		t.Fatalf("detected %d/%d, want 2/3", d.Detected, d.Total)
	}
	if d.MeanDelay != 45 {
		t.Errorf("mean delay = %v, want 45", d.MeanDelay)
	}
	if d.MaxDelay != 60 {
		t.Errorf("max delay = %v, want 60", d.MaxDelay)
	}
	empty := DetectionDelays(nil, nil)
	if empty.Total != 0 || empty.Detected != 0 || empty.MeanDelay != 0 {
		t.Errorf("empty detection = %+v", empty)
	}
}
