package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// seedBody builds a snapshot exercising every field type, matching the
// read sequence in FuzzDecoder.
func seedBody() []byte {
	e := NewEncoder()
	e.Section("TEST")
	e.Uint64(42)
	e.Int64(-7)
	e.Bool(true)
	e.Float64(3.5)
	e.String("hello")
	e.Uint64(uint64(e.Len())) // a count field
	var buf bytes.Buffer
	if err := e.Flush(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecoder: arbitrary bytes through header verification and a typed
// field walk must never panic, and every failure must wrap ErrCorrupt or
// ErrVersion.
func FuzzDecoder(f *testing.F) {
	valid := seedBody()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("SPIRECKP"))
	f.Add([]byte("WRONGMAGIC-------------------"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("header rejection %v wraps neither ErrCorrupt nor ErrVersion", err)
			}
			return
		}
		d.Section("TEST")
		_ = d.Uint64()
		_ = d.Int64()
		_ = d.Bool()
		_ = d.Float64()
		_ = d.String()
		_ = d.Count(8)
		if err := d.Finish(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode failure %v does not wrap ErrCorrupt", err)
		}
	})
}
