package checkpoint

import (
	"io"
	"time"

	"spire/internal/telemetry"
)

// Instruments are the durability layer's runtime-telemetry metrics:
// snapshot size tracks state growth (the snapshot is a serialization of
// everything the pipeline holds), and write latency is the stall a
// periodic checkpoint inserts into the epoch loop. A nil *Instruments
// records nothing.
type Instruments struct {
	Writes       *telemetry.Counter
	BytesWritten *telemetry.Counter
	LastBytes    *telemetry.Gauge
	WriteSeconds *telemetry.Histogram
}

// NewInstruments registers the checkpoint metrics on reg. Returns nil
// when reg is nil.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Writes: reg.Counter("spire_checkpoint_writes_total",
			"Snapshots written successfully."),
		BytesWritten: reg.Counter("spire_checkpoint_bytes_total",
			"Total snapshot bytes written."),
		LastBytes: reg.Gauge("spire_checkpoint_last_bytes",
			"Size of the most recent snapshot."),
		WriteSeconds: reg.Histogram("spire_checkpoint_write_seconds",
			"Wall-clock latency of one atomic snapshot write (encode + fsync + rename).",
			telemetry.DefLatencyBuckets),
	}
}

// ObserveWrite records one successful snapshot write.
func (ins *Instruments) ObserveWrite(bytes int64, d time.Duration) {
	if ins == nil {
		return
	}
	ins.Writes.Inc()
	ins.BytesWritten.Add(bytes)
	ins.LastBytes.Set(bytes)
	ins.WriteSeconds.Observe(d.Seconds())
}

// CountingWriter wraps a writer and tallies the bytes that pass through —
// how SnapshotToFile learns the snapshot size without buffering it twice.
type CountingWriter struct {
	W io.Writer
	N int64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}
