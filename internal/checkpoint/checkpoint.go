// Package checkpoint provides the binary snapshot format SPIRE uses to
// make its cumulative pipeline state crash-safe.
//
// The interpretation substrate is an online system: the colored graph,
// dedup history, and the compressors' open intervals all accumulate from
// the beginning of the stream, so a process restart without durable state
// would resume into garbage. This package supplies the low-level pieces of
// the durability layer: a deterministic little-framed binary encoder, a
// strict decoder that never panics on corrupt input, and atomic file
// helpers. The actual state layout lives with the state owners
// (graph.EncodeState, dedup, compress, core.Substrate.Snapshot); this
// package only knows bytes.
//
// Snapshot layout:
//
//	magic    8 bytes  "SPIRECKP"
//	version  2 bytes  big-endian format version
//	reserved 2 bytes  zero
//	length   8 bytes  body length in bytes
//	crc      4 bytes  CRC-32C (Castagnoli) of the body
//	body     length bytes
//
// The CRC covers the whole body, so any truncation or bit flip after the
// header is detected before a single field is decoded; header damage is
// caught by the magic/version/length checks. Decoding is all-or-nothing:
// a Decoder hands out fields only after the checksum has verified, and
// callers construct fresh state from it, so a bad snapshot can never be
// half-applied.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Version is the current snapshot format version. Decoders reject
// snapshots with a newer version; older versions may be migrated
// explicitly once they exist.
const Version = 1

const (
	magic      = "SPIRECKP"
	headerSize = 8 + 2 + 2 + 8 + 4

	// maxBody bounds the declared body length so a corrupt header cannot
	// demand an absurd allocation.
	maxBody = 1 << 31
)

// ErrCorrupt reports a snapshot that is damaged: bad magic, bad checksum,
// truncated body, or malformed fields.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// ErrVersion reports a snapshot written by a newer format version.
var ErrVersion = errors.New("checkpoint: unsupported snapshot version")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder accumulates a snapshot body in memory. All integers are
// big-endian and fixed-width; given identical state the byte output is
// identical, which is what lets tests pin snapshot determinism.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder {
	return &Encoder{buf: make([]byte, 0, 4096)}
}

// Len returns the current body size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint64 appends a fixed-width unsigned integer.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a fixed-width signed integer (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uint64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Section appends a four-byte section tag. Sections give decode errors a
// location and catch field-alignment bugs early.
func (e *Encoder) Section(tag string) {
	if len(tag) != 4 {
		panic(fmt.Sprintf("checkpoint: section tag %q must be 4 bytes", tag))
	}
	e.buf = append(e.buf, tag...)
}

// Flush writes the framed snapshot (header + body) to w. The Encoder
// remains usable; calling Flush again rewrites the same snapshot.
func (e *Encoder) Flush(w io.Writer) error {
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.BigEndian.PutUint16(hdr[8:10], Version)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(e.buf)))
	binary.BigEndian.PutUint32(hdr[20:24], crc32.Checksum(e.buf, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(e.buf)
	return err
}

// Decoder reads a verified snapshot body field by field. Errors are
// sticky: after the first failure every accessor returns zero values, and
// Err (or Finish) reports the failure. A Decoder never panics on corrupt
// input.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder reads and verifies the snapshot header and body from r. It
// returns an error if the magic, version, length, or checksum do not hold.
func NewDecoder(r io.Reader) (*Decoder, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:8])
	}
	version := binary.BigEndian.Uint16(hdr[8:10])
	if version > Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads <= %d", ErrVersion, version, Version)
	}
	// The reserved field must be zero in every current version; a nonzero
	// value is either corruption or a future format this build predates.
	if rsv := binary.BigEndian.Uint16(hdr[10:12]); rsv != 0 {
		return nil, fmt.Errorf("%w: reserved header field %#x not zero", ErrCorrupt, rsv)
	}
	length := binary.BigEndian.Uint64(hdr[12:20])
	if length > maxBody {
		return nil, fmt.Errorf("%w: body length %d exceeds limit", ErrCorrupt, length)
	}
	want := binary.BigEndian.Uint32(hdr[20:24])
	// Read through a limited reader so a lying header cannot force an
	// allocation larger than what the stream actually holds.
	body, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", ErrCorrupt, err)
	}
	if uint64(len(body)) != length {
		return nil, fmt.Errorf("%w: body truncated at %d of %d bytes", ErrCorrupt, len(body), length)
	}
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: body checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return &Decoder{b: body}, nil
}

// fail records the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: offset %d: %s", ErrCorrupt, d.off, fmt.Sprintf(format, args...))
	}
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread body bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Finish returns the first decode error, or an error if unread bytes
// remain (a snapshot must be consumed exactly).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(d.b)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail("need %d bytes, %d remain", n, d.Remaining())
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads a fixed-width unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a fixed-width signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Uint8 reads a single byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean; any value other than 0 or 1 is corrupt.
func (d *Decoder) Bool() bool {
	switch d.Uint8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid boolean byte")
		return false
	}
}

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Count(1)
	b := d.take(n)
	return string(b)
}

// Count reads an element count and validates it against the remaining
// body: a count of n elements of at least elemSize bytes each cannot
// exceed what is left, which stops a corrupt count from provoking a huge
// allocation. elemSize must be >= 1.
func (d *Decoder) Count(elemSize int) int {
	v := d.Uint64()
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if v > uint64(d.Remaining()/elemSize) {
		d.fail("count %d exceeds remaining body (%d bytes, elem >= %d)", v, d.Remaining(), elemSize)
		return 0
	}
	return int(v)
}

// Section consumes a four-byte section tag and verifies it.
func (d *Decoder) Section(tag string) {
	b := d.take(4)
	if b == nil {
		return
	}
	if string(b) != tag {
		d.fail("section %q, want %q", b, tag)
	}
}

// WriteFileAtomic writes a snapshot to path atomically: the bytes go to a
// temporary file in the same directory, are fsynced, and the file is
// renamed over path, so a crash mid-write can never leave a torn snapshot
// where a reader looks for one.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Make the rename itself durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile opens path and hands the stream to read.
func ReadFile(path string, read func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return read(f)
}
