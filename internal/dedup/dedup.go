// Package dedup implements the low-level device data cleaning SPIRE
// requires (paper Section II): deduplication of readings caused by
// overlapping reader ranges. At each epoch it detects tags read by several
// nearby readers and assigns each tag to the reader that read the tag most
// recently; within a single epoch, ties are broken toward the reader that
// has read the tag most recently in the past — provided that history is
// recent enough to still be evidence — then toward the lower reader ID for
// determinism.
//
// The per-tag history store is split into a fixed number of tag-hash
// shards (numShards, independent of worker count) so that CleanBatch can
// resolve one epoch's readings across a bounded worker pool: each worker
// owns a contiguous shard range and is the only goroutine that ever
// touches those shards' history or scratch. Because the shard count is
// fixed and snapshot encoding sorts tags globally, persisted bytes are
// identical for every worker setting.
//
// Three entry points share the store:
//
//   - CleanReference: the original map-per-epoch implementation, kept as
//     the oracle for differential tests;
//   - Clean: the serial Observation path with reused scratch (no per-epoch
//     map allocation);
//   - CleanBatch: the columnar path over model.Batch, sharded by tag hash.
//
// All three resolve every tag identically and leave identical history.
package dedup

import (
	"runtime"
	"sort"
	"sync"

	"spire/internal/model"
)

// DefaultStaleness is the default recency window for the cross-epoch
// tie-break: a reader's past claim on a tag counts only if it read the tag
// within this many epochs. At the paper's one-second epochs this is five
// minutes — long enough to ride out dropout bursts, short enough that a
// reader which saw the tag in some earlier era of the trace does not keep
// winning ties against a currently co-reading reader forever.
const DefaultStaleness model.Epoch = 300

// NumShards is the fixed number of tag-hash shards in the history store.
// It is independent of the worker count: workers own contiguous shard
// ranges, so any worker setting partitions the same shards the same way
// and the resolved output (and persisted bytes) cannot depend on it.
const NumShards = 32

// shard holds the per-tag history for one tag-hash class, plus the
// columnar scratch used by CleanBatch. Exactly one worker touches a given
// shard during CleanBatch.
type shard struct {
	lastReader map[model.Tag]model.ReaderID
	lastAt     map[model.Tag]model.Epoch

	// occ is the reused per-epoch occurrence scratch: for each tag of
	// this shard read in the current batch, the (reader, position) pairs
	// in group order. Entries are lazily reset via stamp comparison.
	occ  map[model.Tag]*occEntry
	tags []model.Tag // tags of this shard touched in the current batch
}

// occurrence is one appearance of a tag in a batch: the reader that
// reported it and its position in the tag column.
type occurrence struct {
	reader model.ReaderID
	pos    int32
}

// occEntry is the reused per-tag scratch of one shard.
type occEntry struct {
	stamp uint64
	occs  []occurrence
}

// shardOf maps a tag to its history shard with a splitmix64-style
// finalizer, so adjacent tag IDs (the simulator allocates them densely)
// spread across shards.
func shardOf(g model.Tag) uint32 {
	x := uint64(g)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x) & (NumShards - 1)
}

// Deduplicator tracks per-tag reading history across epochs. It is not
// safe for concurrent use; CleanBatch manages its own internal worker
// pool.
type Deduplicator struct {
	shards [NumShards]shard

	// staleness is the recency window; negative means history never
	// expires.
	staleness model.Epoch

	// workers bounds the CleanBatch worker pool: 0 = GOMAXPROCS,
	// 1 = serial. Runtime tuning only — never serialized, never affects
	// output.
	workers int

	// stamp versions the reused scratch: entries whose stamp differs from
	// the current value are logically empty.
	stamp uint64

	// obs is the reused scratch of the serial Observation path (Clean).
	obs struct {
		occ  map[model.Tag]*obsEntry
		tags []model.Tag
	}

	// keep is the reused per-position verdict column of CleanBatch.
	keep []bool

	// dups/reassigns are the reused per-shard counter cells of CleanBatch;
	// each worker writes only its own shard range's cells.
	dups, reassigns [NumShards]int64

	// ins are the optional telemetry instruments (nil when disabled); see
	// telemetry.go.
	ins *Instruments
}

// obsEntry is the reused per-tag scratch of the Observation path.
type obsEntry struct {
	stamp    uint64
	readers  []model.ReaderID
	assigned model.ReaderID
	multi    bool
	kept     bool
}

// New creates an empty Deduplicator with the default staleness window.
func New() *Deduplicator { return NewWithStaleness(DefaultStaleness) }

// NewWithStaleness creates an empty Deduplicator whose cross-epoch
// tie-break only honors history at most window epochs old. A negative
// window disables expiry (history always wins ties); zero selects
// DefaultStaleness.
func NewWithStaleness(window model.Epoch) *Deduplicator {
	if window == 0 {
		window = DefaultStaleness
	}
	d := &Deduplicator{staleness: window, workers: 1}
	for i := range d.shards {
		d.shards[i].lastReader = make(map[model.Tag]model.ReaderID)
		d.shards[i].lastAt = make(map[model.Tag]model.Epoch)
	}
	return d
}

// Staleness returns the configured recency window (negative = never
// expires).
func (d *Deduplicator) Staleness() model.Epoch { return d.staleness }

// SetWorkers bounds the CleanBatch worker pool: 0 = GOMAXPROCS,
// 1 = serial. The resolved output is byte-identical for every value; this
// is runtime tuning only and is never serialized.
func (d *Deduplicator) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	d.workers = n
}

// Workers returns the configured worker bound (0 = GOMAXPROCS).
func (d *Deduplicator) Workers() int { return d.workers }

// workerWidth resolves the configured worker bound (0 = GOMAXPROCS).
func (d *Deduplicator) workerWidth() int {
	if d.workers > 0 {
		return d.workers
	}
	return runtime.GOMAXPROCS(0)
}

// history returns the recorded (reader, at) for tag g, if any.
func (d *Deduplicator) history(g model.Tag) (model.ReaderID, model.Epoch, bool) {
	sh := &d.shards[shardOf(g)]
	r, ok := sh.lastReader[g]
	if !ok {
		return 0, 0, false
	}
	return r, sh.lastAt[g], true
}

// record stores the assignment of tag g to reader r at epoch now.
func (d *Deduplicator) record(g model.Tag, r model.ReaderID, now model.Epoch) {
	sh := &d.shards[shardOf(g)]
	sh.lastReader[g] = r
	sh.lastAt[g] = now
}

// freshAt reports whether history recorded at epoch `at` is recent enough
// at epoch now to decide a tie.
func (d *Deduplicator) freshAt(at, now model.Epoch) bool {
	return d.staleness < 0 || now-at <= d.staleness
}

// fresh reports whether the recorded history for tag g is recent enough at
// epoch now to decide a tie.
func (d *Deduplicator) fresh(g model.Tag, now model.Epoch) bool {
	if d.staleness < 0 {
		return true
	}
	at, ok := d.shards[shardOf(g)].lastAt[g]
	return ok && now-at <= d.staleness
}

// CleanReference resolves duplicates in one epoch's observation in place,
// allocating its working maps per call. It is the original implementation,
// retained verbatim as the oracle that pins Clean and CleanBatch via
// differential tests.
func (d *Deduplicator) CleanReference(o *model.Observation) *model.Observation {
	// Collect the readers that saw each tag this epoch.
	readersOf := make(map[model.Tag][]model.ReaderID)
	for r, tags := range o.ByReader {
		for _, g := range tags {
			readersOf[g] = append(readersOf[g], r)
		}
	}
	assigned := make(map[model.Tag]model.ReaderID, len(readersOf))
	for g, readers := range readersOf {
		if len(readers) == 1 {
			assigned[g] = readers[0]
			continue
		}
		if d.ins != nil {
			d.ins.Duplicates.Inc()
		}
		sort.Slice(readers, func(i, j int) bool { return readers[i] < readers[j] })
		best := readers[0]
		if last, _, ok := d.history(g); ok && d.fresh(g, o.Time) {
			for _, r := range readers {
				if r == last {
					// The tag sticks with the reader it was most recently
					// assigned to — the paper's "read the tag most
					// recently" rule applied across epochs. History too old
					// to be evidence of current proximity is skipped above.
					best = r
					break
				}
			}
		}
		assigned[g] = best
	}
	// Rebuild the per-reader sets, dropping duplicates. Empty sets are
	// kept: an active reader that read nothing is still information for
	// the caller.
	for r, tags := range o.ByReader {
		kept := tags[:0]
		seen := make(map[model.Tag]bool, len(tags))
		for _, g := range tags {
			if assigned[g] == r && !seen[g] {
				kept = append(kept, g)
				seen[g] = true
			}
		}
		o.ByReader[r] = kept
	}
	for g, r := range assigned {
		if d.ins != nil {
			if last, _, ok := d.history(g); ok && last != r && len(readersOf[g]) > 1 {
				d.ins.Reassignments.Inc()
			}
		}
		d.record(g, r, o.Time)
	}
	if d.ins != nil {
		d.ins.Tracked.Set(int64(d.Len()))
	}
	return o
}

// Clean resolves duplicates in one epoch's observation in place: each tag
// is retained by exactly one reader. The input observation is modified and
// returned for convenience. Unlike CleanReference it reuses per-epoch
// scratch across calls, so the steady-state hot path allocates nothing.
func (d *Deduplicator) Clean(o *model.Observation) *model.Observation {
	d.stamp++
	if d.obs.occ == nil {
		d.obs.occ = make(map[model.Tag]*obsEntry)
	}
	d.obs.tags = d.obs.tags[:0]
	// Collect the readers that saw each tag this epoch.
	for r, tags := range o.ByReader {
		for _, g := range tags {
			e := d.obs.occ[g]
			if e == nil {
				e = &obsEntry{}
				d.obs.occ[g] = e
			}
			if e.stamp != d.stamp {
				e.stamp = d.stamp
				e.readers = e.readers[:0]
				e.kept = false
				d.obs.tags = append(d.obs.tags, g)
			}
			e.readers = append(e.readers, r)
		}
	}
	// Decide each tag's winner: lowest reader ID, unless fresh history
	// names one of this epoch's readers.
	for _, g := range d.obs.tags {
		e := d.obs.occ[g]
		e.multi = len(e.readers) > 1
		if !e.multi {
			e.assigned = e.readers[0]
			continue
		}
		if d.ins != nil {
			d.ins.Duplicates.Inc()
		}
		sortReaders(e.readers)
		best := e.readers[0]
		if last, at, ok := d.history(g); ok && d.freshAt(at, o.Time) {
			for _, r := range e.readers {
				if r == last {
					best = r
					break
				}
			}
		}
		e.assigned = best
	}
	// Rebuild the per-reader sets, dropping duplicates. Empty sets are
	// kept: an active reader that read nothing is still information for
	// the caller.
	for r, tags := range o.ByReader {
		kept := tags[:0]
		for _, g := range tags {
			if e := d.obs.occ[g]; e.assigned == r && !e.kept {
				kept = append(kept, g)
				e.kept = true
			}
		}
		o.ByReader[r] = kept
	}
	for _, g := range d.obs.tags {
		e := d.obs.occ[g]
		if d.ins != nil && e.multi {
			if last, _, ok := d.history(g); ok && last != e.assigned {
				d.ins.Reassignments.Inc()
			}
		}
		d.record(g, e.assigned, o.Time)
	}
	if d.ins != nil {
		d.ins.Tracked.Set(int64(d.Len()))
	}
	return o
}

// sortReaders insertion-sorts a small reader slice in place (duplicate
// groups are a handful of readers; avoids the sort.Slice closure
// allocation).
func sortReaders(rs []model.ReaderID) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// CleanBatch resolves duplicates in one epoch's columnar batch in place,
// compacting the tag column and group offsets so each tag is retained by
// exactly one reader. Work is sharded by tag hash across the configured
// worker pool (SetWorkers); each worker owns a contiguous shard range, so
// no history entry or scratch cell is ever touched by two goroutines. The
// resolved batch — and the history left behind — is byte-identical to what
// Clean/CleanReference produce on the equivalent Observation, for every
// worker count.
func (d *Deduplicator) CleanBatch(b *model.Batch) *model.Batch {
	d.stamp++
	if cap(d.keep) < len(b.Tags) {
		d.keep = make([]bool, len(b.Tags))
	}
	d.keep = d.keep[:len(b.Tags)]

	spawn := d.workerWidth()
	if spawn > NumShards {
		spawn = NumShards
	}
	if spawn < 1 {
		spawn = 1
	}
	clear(d.dups[:])
	clear(d.reassigns[:])
	if spawn == 1 {
		d.cleanShardRange(b, 0, NumShards)
	} else {
		var wg sync.WaitGroup
		per := (NumShards + spawn - 1) / spawn
		for w := 0; w < spawn; w++ {
			lo := w * per
			hi := lo + per
			if hi > NumShards {
				hi = NumShards
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi uint32) {
				defer wg.Done()
				d.cleanShardRange(b, lo, hi)
			}(uint32(lo), uint32(hi))
		}
		wg.Wait()
	}

	if d.ins != nil {
		var nd, nr int64
		for i := 0; i < NumShards; i++ {
			nd += d.dups[i]
			nr += d.reassigns[i]
		}
		d.ins.Duplicates.Add(nd)
		d.ins.Reassignments.Add(nr)
	}

	// Serial compaction: squeeze out dropped positions, fixing group
	// offsets in place. Empty groups are kept — an active reader that read
	// nothing is still information for the caller.
	w := int32(0)
	for i := range b.Groups {
		g := &b.Groups[i]
		start := w
		for p := g.Start; p < g.End; p++ {
			if d.keep[p] {
				b.Tags[w] = b.Tags[p]
				w++
			}
		}
		g.Start, g.End = start, w
	}
	b.Tags = b.Tags[:w]

	if d.ins != nil {
		d.ins.Tracked.Set(int64(d.Len()))
	}
	return b
}

// cleanShardRange resolves every tag whose hash falls in shards [lo,hi):
// it scans the whole batch, collects occurrences of owned tags, picks each
// tag's winner, writes the per-position verdicts (exclusively owned — one
// shard per tag), and updates the owned shards' history. Runs on one
// worker goroutine per range.
func (d *Deduplicator) cleanShardRange(b *model.Batch, lo, hi uint32) {
	// Pass 1: collect occurrences in group order. Groups are ascending by
	// reader, so each tag's occurrence list is already sorted by reader —
	// the lowest-ID tie-break falls out of occs[0].
	for i := range b.Groups {
		g := b.Groups[i]
		for p := g.Start; p < g.End; p++ {
			tag := b.Tags[p]
			s := shardOf(tag)
			if s < lo || s >= hi {
				continue
			}
			sh := &d.shards[s]
			if sh.occ == nil {
				sh.occ = make(map[model.Tag]*occEntry)
			}
			e := sh.occ[tag]
			if e == nil {
				e = &occEntry{}
				sh.occ[tag] = e
			}
			if e.stamp != d.stamp {
				e.stamp = d.stamp
				e.occs = e.occs[:0]
				sh.tags = append(sh.tags, tag)
			}
			e.occs = append(e.occs, occurrence{reader: g.Reader, pos: p})
		}
	}
	// Pass 2: per owned tag, decide the winner and mark keeps.
	for s := lo; s < hi; s++ {
		sh := &d.shards[s]
		for _, tag := range sh.tags {
			e := sh.occ[tag]
			occs := e.occs
			winner := occs[0].reader
			multi := len(occs) > 1
			last, lastOK := sh.lastReader[tag]
			if multi {
				d.dups[s]++
				if lastOK && d.freshAt(sh.lastAt[tag], b.Time) {
					for _, oc := range occs {
						if oc.reader == last {
							winner = last
							break
						}
					}
				}
			}
			marked := false
			for _, oc := range occs {
				k := oc.reader == winner && !marked
				if k {
					marked = true
				}
				d.keep[oc.pos] = k
			}
			if multi && lastOK && last != winner {
				d.reassigns[s]++
			}
			sh.lastReader[tag] = winner
			sh.lastAt[tag] = b.Time
		}
		sh.tags = sh.tags[:0]
	}
}

// Forget drops a tag's history (e.g. after the object exits the world).
func (d *Deduplicator) Forget(g model.Tag) {
	sh := &d.shards[shardOf(g)]
	delete(sh.lastReader, g)
	delete(sh.lastAt, g)
	delete(sh.occ, g)
	delete(d.obs.occ, g)
}

// Len reports the number of tags currently tracked.
func (d *Deduplicator) Len() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].lastReader)
	}
	return n
}
