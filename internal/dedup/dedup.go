// Package dedup implements the low-level device data cleaning SPIRE
// requires (paper Section II): deduplication of readings caused by
// overlapping reader ranges. At each epoch it detects tags read by several
// nearby readers and assigns each tag to the reader that read the tag most
// recently; within a single epoch, ties are broken toward the reader that
// has read the tag most recently in the past — provided that history is
// recent enough to still be evidence — then toward the lower reader ID for
// determinism.
package dedup

import (
	"sort"

	"spire/internal/model"
)

// DefaultStaleness is the default recency window for the cross-epoch
// tie-break: a reader's past claim on a tag counts only if it read the tag
// within this many epochs. At the paper's one-second epochs this is five
// minutes — long enough to ride out dropout bursts, short enough that a
// reader which saw the tag in some earlier era of the trace does not keep
// winning ties against a currently co-reading reader forever.
const DefaultStaleness model.Epoch = 300

// Deduplicator tracks per-tag reading history across epochs. It is not
// safe for concurrent use.
type Deduplicator struct {
	// lastReader and lastAt record, per tag, the last reader that observed
	// it and when.
	lastReader map[model.Tag]model.ReaderID
	lastAt     map[model.Tag]model.Epoch

	// staleness is the recency window; negative means history never
	// expires.
	staleness model.Epoch

	// ins are the optional telemetry instruments (nil when disabled); see
	// telemetry.go.
	ins *Instruments
}

// New creates an empty Deduplicator with the default staleness window.
func New() *Deduplicator { return NewWithStaleness(DefaultStaleness) }

// NewWithStaleness creates an empty Deduplicator whose cross-epoch
// tie-break only honors history at most window epochs old. A negative
// window disables expiry (history always wins ties); zero selects
// DefaultStaleness.
func NewWithStaleness(window model.Epoch) *Deduplicator {
	if window == 0 {
		window = DefaultStaleness
	}
	return &Deduplicator{
		lastReader: make(map[model.Tag]model.ReaderID),
		lastAt:     make(map[model.Tag]model.Epoch),
		staleness:  window,
	}
}

// Staleness returns the configured recency window (negative = never
// expires).
func (d *Deduplicator) Staleness() model.Epoch { return d.staleness }

// fresh reports whether the recorded history for tag g is recent enough at
// epoch now to decide a tie.
func (d *Deduplicator) fresh(g model.Tag, now model.Epoch) bool {
	if d.staleness < 0 {
		return true
	}
	at, ok := d.lastAt[g]
	return ok && now-at <= d.staleness
}

// Clean resolves duplicates in one epoch's observation in place: each tag
// is retained by exactly one reader. The input observation is modified and
// returned for convenience.
func (d *Deduplicator) Clean(o *model.Observation) *model.Observation {
	// Collect the readers that saw each tag this epoch.
	readersOf := make(map[model.Tag][]model.ReaderID)
	for r, tags := range o.ByReader {
		for _, g := range tags {
			readersOf[g] = append(readersOf[g], r)
		}
	}
	assigned := make(map[model.Tag]model.ReaderID, len(readersOf))
	for g, readers := range readersOf {
		if len(readers) == 1 {
			assigned[g] = readers[0]
			continue
		}
		if d.ins != nil {
			d.ins.Duplicates.Inc()
		}
		sort.Slice(readers, func(i, j int) bool { return readers[i] < readers[j] })
		best := readers[0]
		if last, ok := d.lastReader[g]; ok && d.fresh(g, o.Time) {
			for _, r := range readers {
				if r == last {
					// The tag sticks with the reader it was most recently
					// assigned to — the paper's "read the tag most
					// recently" rule applied across epochs. History too old
					// to be evidence of current proximity is skipped above.
					best = r
					break
				}
			}
		}
		assigned[g] = best
	}
	// Rebuild the per-reader sets, dropping duplicates. Empty sets are
	// kept: an active reader that read nothing is still information for
	// the caller.
	for r, tags := range o.ByReader {
		kept := tags[:0]
		seen := make(map[model.Tag]bool, len(tags))
		for _, g := range tags {
			if assigned[g] == r && !seen[g] {
				kept = append(kept, g)
				seen[g] = true
			}
		}
		o.ByReader[r] = kept
	}
	for g, r := range assigned {
		if d.ins != nil {
			if last, ok := d.lastReader[g]; ok && last != r && len(readersOf[g]) > 1 {
				d.ins.Reassignments.Inc()
			}
		}
		d.lastReader[g] = r
		d.lastAt[g] = o.Time
	}
	if d.ins != nil {
		d.ins.Tracked.Set(int64(len(d.lastReader)))
	}
	return o
}

// Forget drops a tag's history (e.g. after the object exits the world).
func (d *Deduplicator) Forget(g model.Tag) {
	delete(d.lastReader, g)
	delete(d.lastAt, g)
}

// Len reports the number of tags currently tracked.
func (d *Deduplicator) Len() int { return len(d.lastReader) }
