// Package dedup implements the low-level device data cleaning SPIRE
// requires (paper Section II): deduplication of readings caused by
// overlapping reader ranges. At each epoch it detects tags read by several
// nearby readers and assigns each tag to the reader that read the tag most
// recently; within a single epoch, ties are broken toward the reader that
// has read the tag most recently in the past, then toward the lower reader
// ID for determinism.
package dedup

import (
	"sort"

	"spire/internal/model"
)

// Deduplicator tracks per-tag reading history across epochs. It is not
// safe for concurrent use.
type Deduplicator struct {
	// lastSeen records, per tag, the last reader that observed it and
	// when.
	lastReader map[model.Tag]model.ReaderID
	lastAt     map[model.Tag]model.Epoch
}

// New creates an empty Deduplicator.
func New() *Deduplicator {
	return &Deduplicator{
		lastReader: make(map[model.Tag]model.ReaderID),
		lastAt:     make(map[model.Tag]model.Epoch),
	}
}

// Clean resolves duplicates in one epoch's observation in place: each tag
// is retained by exactly one reader. The input observation is modified and
// returned for convenience.
func (d *Deduplicator) Clean(o *model.Observation) *model.Observation {
	// Collect the readers that saw each tag this epoch.
	readersOf := make(map[model.Tag][]model.ReaderID)
	for r, tags := range o.ByReader {
		for _, g := range tags {
			readersOf[g] = append(readersOf[g], r)
		}
	}
	assigned := make(map[model.Tag]model.ReaderID, len(readersOf))
	for g, readers := range readersOf {
		if len(readers) == 1 {
			assigned[g] = readers[0]
			continue
		}
		sort.Slice(readers, func(i, j int) bool { return readers[i] < readers[j] })
		best := readers[0]
		if last, ok := d.lastReader[g]; ok {
			for _, r := range readers {
				if r == last {
					// The tag sticks with the reader it was most recently
					// assigned to — the paper's "read the tag most
					// recently" rule applied across epochs.
					best = r
					break
				}
			}
		}
		assigned[g] = best
	}
	// Rebuild the per-reader sets, dropping duplicates. Empty sets are
	// kept: an active reader that read nothing is still information for
	// the caller.
	for r, tags := range o.ByReader {
		kept := tags[:0]
		seen := make(map[model.Tag]bool, len(tags))
		for _, g := range tags {
			if assigned[g] == r && !seen[g] {
				kept = append(kept, g)
				seen[g] = true
			}
		}
		o.ByReader[r] = kept
	}
	for g, r := range assigned {
		d.lastReader[g] = r
		d.lastAt[g] = o.Time
	}
	return o
}

// Forget drops a tag's history (e.g. after the object exits the world).
func (d *Deduplicator) Forget(g model.Tag) {
	delete(d.lastReader, g)
	delete(d.lastAt, g)
}

// Len reports the number of tags currently tracked.
func (d *Deduplicator) Len() int { return len(d.lastReader) }
