package dedup

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"spire/internal/checkpoint"
	"spire/internal/model"
	"spire/internal/telemetry"
)

// randomStream builds a deterministic sequence of observations with heavy
// reader overlap, within-reader repeats, and occasional long gaps (to
// exercise the staleness window).
func randomStream(seed int64, epochs int) []*model.Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*model.Observation, 0, epochs)
	now := model.Epoch(1)
	for e := 0; e < epochs; e++ {
		if rng.Intn(20) == 0 {
			now += DefaultStaleness + model.Epoch(rng.Intn(10))
		} else {
			now++
		}
		o := model.NewObservation(now)
		readers := rng.Intn(6)
		for i := 0; i < readers; i++ {
			r := model.ReaderID(1 + rng.Intn(8))
			if _, ok := o.ByReader[r]; ok {
				continue
			}
			tags := make([]model.Tag, 0)
			for j := rng.Intn(12); j > 0; j-- {
				tags = append(tags, model.Tag(1+rng.Intn(24)))
			}
			o.ByReader[r] = tags // may be empty: active reader, no reads
		}
		out = append(out, o)
	}
	return out
}

func encodeDedup(d *Deduplicator) []byte {
	var buf bytes.Buffer
	e := checkpoint.NewEncoder()
	d.EncodeState(e)
	if err := e.Flush(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

type counterSet struct{ dups, reassigns, tracked int64 }

func instrument(d *Deduplicator) func() counterSet {
	reg := telemetry.NewRegistry()
	ins := NewInstruments(reg)
	d.Instrument(ins)
	return func() counterSet {
		return counterSet{ins.Duplicates.Value(), ins.Reassignments.Value(), ins.Tracked.Value()}
	}
}

// TestCleanMatchesReference differentially pins the scratch-reusing Clean
// against the retained per-epoch-map CleanReference: identical resolved
// observations, identical persisted bytes, identical telemetry counters.
func TestCleanMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ref := New()
		fast := New()
		refC := instrument(ref)
		fastC := instrument(fast)
		for _, o := range randomStream(seed, 300) {
			a := ref.CleanReference(o.Clone())
			b := fast.Clean(o.Clone())
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d epoch %d: Clean diverged from reference:\n got %+v\nwant %+v", seed, o.Time, b, a)
			}
		}
		if refC() != fastC() {
			t.Fatalf("seed %d: counters diverged: ref %+v fast %+v", seed, refC(), fastC())
		}
		if !bytes.Equal(encodeDedup(ref), encodeDedup(fast)) {
			t.Fatalf("seed %d: persisted history diverged", seed)
		}
	}
}

// TestCleanBatchMatchesReference pins the columnar sharded path against
// CleanReference for worker counts {1,2,4,8}: the compacted batch must
// equal the resolved observation, and history, counters, and persisted
// bytes must match for every worker count.
func TestCleanBatchMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for seed := int64(0); seed < 5; seed++ {
			ref := New()
			bat := New()
			bat.SetWorkers(workers)
			refC := instrument(ref)
			batC := instrument(bat)
			var b model.Batch
			for _, o := range randomStream(seed, 300) {
				want := ref.CleanReference(o.Clone())
				b.FromObservation(o)
				bat.CleanBatch(&b)
				if err := b.Validate(); err != nil {
					t.Fatalf("workers %d seed %d: invalid batch after CleanBatch: %v", workers, seed, err)
				}
				got := b.Observation()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers %d seed %d epoch %d: CleanBatch diverged:\n got %+v\nwant %+v",
						workers, seed, o.Time, got, want)
				}
			}
			if refC() != batC() {
				t.Fatalf("workers %d seed %d: counters diverged: ref %+v batch %+v",
					workers, seed, refC(), batC())
			}
			if !bytes.Equal(encodeDedup(ref), encodeDedup(bat)) {
				t.Fatalf("workers %d seed %d: persisted history diverged", workers, seed)
			}
		}
	}
}

// TestCleanBatchGOMAXPROCS covers the workers=0 (GOMAXPROCS) resolution.
func TestCleanBatchGOMAXPROCS(t *testing.T) {
	ref := New()
	bat := New()
	bat.SetWorkers(0)
	var b model.Batch
	for _, o := range randomStream(11, 100) {
		want := ref.CleanReference(o.Clone())
		b.FromObservation(o)
		bat.CleanBatch(&b)
		if got := b.Observation(); !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: diverged", o.Time)
		}
	}
}

// TestCleanBatchForget exercises history removal against the sharded
// store and batch scratch.
func TestCleanBatchForget(t *testing.T) {
	d := New()
	var b model.Batch
	o := model.NewObservation(1)
	o.Add(9, 10)
	b.FromObservation(o)
	d.CleanBatch(&b)
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	d.Forget(10)
	if d.Len() != 0 {
		t.Fatalf("Len after Forget = %d, want 0", d.Len())
	}
	o2 := model.NewObservation(2)
	o2.Add(9, 10)
	o2.Add(1, 10)
	b.FromObservation(o2)
	d.CleanBatch(&b)
	got := b.Observation()
	if len(got.ByReader[1]) != 1 {
		t.Errorf("forgotten tag must pick lowest reader: %v", got.ByReader)
	}
}

// TestCleanSteadyStateAllocs pins satellite 2: after warmup the reused
// scratch makes Clean allocation-free for a recurring workload shape.
func TestCleanSteadyStateAllocs(t *testing.T) {
	d := New()
	build := func(now model.Epoch) *model.Observation {
		o := model.NewObservation(now)
		for r := model.ReaderID(1); r <= 4; r++ {
			for g := model.Tag(1); g <= 16; g++ {
				o.Add(r, g)
			}
		}
		return o
	}
	obs := make([]*model.Observation, 64)
	for i := range obs {
		obs[i] = build(model.Epoch(100 + i))
	}
	for i := 0; i < 8; i++ { // warmup grows scratch to steady state
		d.Clean(build(model.Epoch(i + 1)))
	}
	i := 0
	allocs := testing.AllocsPerRun(len(obs), func() {
		d.Clean(obs[i%len(obs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Clean allocates %.1f/op in steady state, want 0", allocs)
	}
}

// TestCleanBatchSteadyStateAllocs pins the columnar serial path: zero
// allocations per epoch once scratch has warmed up.
func TestCleanBatchSteadyStateAllocs(t *testing.T) {
	d := New()
	var b model.Batch
	fill := func(now model.Epoch) {
		b.Reset(now)
		for r := model.ReaderID(1); r <= 4; r++ {
			b.BeginReader(r)
			for g := model.Tag(1); g <= 16; g++ {
				b.Append(g)
			}
		}
	}
	for i := 0; i < 8; i++ {
		fill(model.Epoch(i + 1))
		d.CleanBatch(&b)
	}
	now := model.Epoch(100)
	allocs := testing.AllocsPerRun(64, func() {
		fill(now)
		d.CleanBatch(&b)
		now++
	})
	if allocs != 0 {
		t.Fatalf("CleanBatch allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestShardOfStable(t *testing.T) {
	// The shard function participates in no persisted format, but spread
	// matters: dense tag ranges must not collapse into few shards.
	var hit [NumShards]bool
	for g := model.Tag(1); g <= 256; g++ {
		hit[shardOf(g)] = true
	}
	n := 0
	for _, h := range hit {
		if h {
			n++
		}
	}
	if n < NumShards/2 {
		t.Fatalf("dense tags hit only %d/%d shards", n, NumShards)
	}
}
