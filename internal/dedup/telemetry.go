package dedup

import "spire/internal/telemetry"

// Instruments are the deduplicator's runtime-telemetry metrics. A nil
// *Instruments records nothing, so an uninstrumented deduplicator pays a
// single nil check per epoch.
type Instruments struct {
	// Duplicates counts tag readings that had to be resolved because more
	// than one reader reported the tag in the same epoch.
	Duplicates *telemetry.Counter
	// Reassignments counts duplicate resolutions that moved a tag away
	// from the reader it was last assigned to — the decisions where the
	// tie-break history actually changed the outcome.
	Reassignments *telemetry.Counter
	// Tracked is the number of tags with recorded reading history.
	Tracked *telemetry.Gauge
	// Shards is the fixed tag-hash shard count of the history store
	// (NumShards). Constant per process; exported so operators can relate
	// ingest-worker settings to the shard partition they divide.
	Shards *telemetry.Gauge
}

// NewInstruments registers the dedup metrics on reg. Returns nil when reg
// is nil.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Duplicates: reg.Counter("spire_dedup_duplicates_total",
			"Tags read by more than one reader in an epoch."),
		Reassignments: reg.Counter("spire_dedup_reassignments_total",
			"Duplicate resolutions that moved a tag to a different reader than its last assignment."),
		Tracked: reg.Gauge("spire_dedup_tracked_tags",
			"Tags with recorded reading history."),
		Shards: reg.Gauge("spire_dedup_shards",
			"Fixed tag-hash shard count of the dedup history store."),
	}
}

// Instrument attaches ins to the deduplicator; pass nil to detach.
// Instrumentation only observes the existing decisions — it can never
// change which reader wins a tag.
func (d *Deduplicator) Instrument(ins *Instruments) {
	d.ins = ins
	if ins != nil {
		ins.Shards.Set(NumShards)
	}
}
