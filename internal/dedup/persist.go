package dedup

import (
	"fmt"
	"sort"

	"spire/internal/checkpoint"
	"spire/internal/model"
)

// Snapshot serialization of the deduplication history. Every tracked tag
// carries its sticky reader and the epoch it was last assigned; entries
// are written in tag order for byte-stable output. The staleness window is
// configuration, not state — the restoring side supplies it when it
// constructs the Deduplicator.

const sectionDedup = "DDUP"

// entryEncSize is the encoded size of one history entry (tag + reader +
// epoch), used to validate the count before allocating.
const entryEncSize = 8 + 8 + 8

// EncodeState appends the dedup history to e. Tags are collected across
// all shards and sorted globally, so the encoding is byte-identical to the
// pre-sharded store for the same history.
func (d *Deduplicator) EncodeState(e *checkpoint.Encoder) {
	e.Section(sectionDedup)
	tags := make([]model.Tag, 0, d.Len())
	for i := range d.shards {
		for g := range d.shards[i].lastReader {
			tags = append(tags, g)
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	e.Uint64(uint64(len(tags)))
	for _, g := range tags {
		sh := &d.shards[shardOf(g)]
		e.Uint64(uint64(g))
		e.Int64(int64(sh.lastReader[g]))
		e.Int64(int64(sh.lastAt[g]))
	}
}

// DecodeState fills an empty Deduplicator from dec. The receiver's
// staleness window is preserved (it comes from configuration, not the
// snapshot).
func (d *Deduplicator) DecodeState(dec *checkpoint.Decoder) error {
	dec.Section(sectionDedup)
	n := dec.Count(entryEncSize)
	for i := 0; i < n; i++ {
		g := model.Tag(dec.Uint64())
		r := model.ReaderID(dec.Int64())
		at := model.Epoch(dec.Int64())
		if dec.Err() != nil {
			return dec.Err()
		}
		if g == model.NoTag {
			return fmt.Errorf("%w: dedup entry %d has zero tag", checkpoint.ErrCorrupt, i)
		}
		sh := &d.shards[shardOf(g)]
		if _, dup := sh.lastReader[g]; dup {
			return fmt.Errorf("%w: duplicate dedup entry for tag %d", checkpoint.ErrCorrupt, g)
		}
		sh.lastReader[g] = r
		sh.lastAt[g] = at
	}
	return dec.Err()
}
