package dedup

import (
	"fmt"
	"runtime"
	"testing"

	"spire/internal/model"
)

// BenchmarkIngestDedup measures CleanBatch over a warm steady-state
// batch: 256 reader groups of 24 distinct tags each, every tag already
// known to the deduplicator. The pristine batch is copied into a reused
// working batch each iteration because CleanBatch compacts in place.
func BenchmarkIngestDedup(b *testing.B) {
	pristine := model.NewBatch(0)
	for r := 0; r < 256; r++ {
		pristine.BeginReader(model.ReaderID(10 + r))
		for k := 0; k < 24; k++ {
			pristine.Append(model.Tag(1 + r*24 + k))
		}
	}
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			d := New()
			d.SetWorkers(w)
			var work model.Batch
			warm := func(t model.Epoch) {
				work.Time = t
				work.Groups = append(work.Groups[:0], pristine.Groups...)
				work.Tags = append(work.Tags[:0], pristine.Tags...)
				d.CleanBatch(&work)
			}
			warm(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				warm(model.Epoch(i + 2))
			}
			b.ReportMetric(float64(pristine.Total()), "readings/op")
		})
	}
}
