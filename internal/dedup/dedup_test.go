package dedup

import (
	"testing"

	"spire/internal/model"
)

func TestCleanNoDuplicates(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(1, 10)
	o.Add(2, 20)
	d.Clean(o)
	if o.Total() != 2 {
		t.Fatalf("Total = %d, want 2", o.Total())
	}
}

func TestCleanAssignsToStickyReader(t *testing.T) {
	d := New()
	// Epoch 1: tag 10 read only by reader 2.
	o1 := model.NewObservation(1)
	o1.Add(2, 10)
	d.Clean(o1)
	// Epoch 2: read by overlapping readers 1 and 2 — sticks with 2.
	o2 := model.NewObservation(2)
	o2.Add(1, 10)
	o2.Add(2, 10)
	d.Clean(o2)
	if len(o2.ByReader[2]) != 1 || len(o2.ByReader[1]) != 0 {
		t.Errorf("tag must stick with its most recent reader: %v", o2.ByReader)
	}
}

func TestCleanUnknownTagPrefersLowestReader(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(5, 10)
	o.Add(3, 10)
	d.Clean(o)
	if len(o.ByReader[3]) != 1 || len(o.ByReader[5]) != 0 {
		t.Errorf("fresh duplicate must deterministically pick the lowest reader: %v", o.ByReader)
	}
}

func TestCleanSwitchesWhenOldReaderAbsent(t *testing.T) {
	d := New()
	o1 := model.NewObservation(1)
	o1.Add(7, 10)
	d.Clean(o1)
	o2 := model.NewObservation(2)
	o2.Add(2, 10)
	o2.Add(4, 10)
	d.Clean(o2)
	if len(o2.ByReader[2]) != 1 {
		t.Errorf("tag must move to a current reader when the old one no longer sees it: %v", o2.ByReader)
	}
	// And the new assignment becomes sticky.
	o3 := model.NewObservation(3)
	o3.Add(2, 10)
	o3.Add(1, 10)
	d.Clean(o3)
	if len(o3.ByReader[2]) != 1 || len(o3.ByReader[1]) != 0 {
		t.Errorf("assignment must be sticky: %v", o3.ByReader)
	}
}

func TestCleanDropsInReaderDuplicates(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(1, 10)
	o.Add(1, 10)
	d.Clean(o)
	if len(o.ByReader[1]) != 1 {
		t.Errorf("duplicate readings within one reader must collapse: %v", o.ByReader[1])
	}
}

func TestForget(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(9, 10)
	d.Clean(o)
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	d.Forget(10)
	if d.Len() != 0 {
		t.Fatalf("Len after Forget = %d, want 0", d.Len())
	}
	// With history gone, assignment reverts to the deterministic default.
	o2 := model.NewObservation(2)
	o2.Add(9, 10)
	o2.Add(1, 10)
	d.Clean(o2)
	if len(o2.ByReader[1]) != 1 {
		t.Errorf("forgotten tag must pick lowest reader: %v", o2.ByReader)
	}
}
