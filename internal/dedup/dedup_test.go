package dedup

import (
	"testing"

	"spire/internal/model"
)

func TestCleanNoDuplicates(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(1, 10)
	o.Add(2, 20)
	d.Clean(o)
	if o.Total() != 2 {
		t.Fatalf("Total = %d, want 2", o.Total())
	}
}

func TestCleanAssignsToStickyReader(t *testing.T) {
	d := New()
	// Epoch 1: tag 10 read only by reader 2.
	o1 := model.NewObservation(1)
	o1.Add(2, 10)
	d.Clean(o1)
	// Epoch 2: read by overlapping readers 1 and 2 — sticks with 2.
	o2 := model.NewObservation(2)
	o2.Add(1, 10)
	o2.Add(2, 10)
	d.Clean(o2)
	if len(o2.ByReader[2]) != 1 || len(o2.ByReader[1]) != 0 {
		t.Errorf("tag must stick with its most recent reader: %v", o2.ByReader)
	}
}

func TestCleanUnknownTagPrefersLowestReader(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(5, 10)
	o.Add(3, 10)
	d.Clean(o)
	if len(o.ByReader[3]) != 1 || len(o.ByReader[5]) != 0 {
		t.Errorf("fresh duplicate must deterministically pick the lowest reader: %v", o.ByReader)
	}
}

func TestCleanSwitchesWhenOldReaderAbsent(t *testing.T) {
	d := New()
	o1 := model.NewObservation(1)
	o1.Add(7, 10)
	d.Clean(o1)
	o2 := model.NewObservation(2)
	o2.Add(2, 10)
	o2.Add(4, 10)
	d.Clean(o2)
	if len(o2.ByReader[2]) != 1 {
		t.Errorf("tag must move to a current reader when the old one no longer sees it: %v", o2.ByReader)
	}
	// And the new assignment becomes sticky.
	o3 := model.NewObservation(3)
	o3.Add(2, 10)
	o3.Add(1, 10)
	d.Clean(o3)
	if len(o3.ByReader[2]) != 1 || len(o3.ByReader[1]) != 0 {
		t.Errorf("assignment must be sticky: %v", o3.ByReader)
	}
}

func TestCleanDropsInReaderDuplicates(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(1, 10)
	o.Add(1, 10)
	d.Clean(o)
	if len(o.ByReader[1]) != 1 {
		t.Errorf("duplicate readings within one reader must collapse: %v", o.ByReader[1])
	}
}

func TestForget(t *testing.T) {
	d := New()
	o := model.NewObservation(1)
	o.Add(9, 10)
	d.Clean(o)
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	d.Forget(10)
	if d.Len() != 0 {
		t.Fatalf("Len after Forget = %d, want 0", d.Len())
	}
	// With history gone, assignment reverts to the deterministic default.
	o2 := model.NewObservation(2)
	o2.Add(9, 10)
	o2.Add(1, 10)
	d.Clean(o2)
	if len(o2.ByReader[1]) != 1 {
		t.Errorf("forgotten tag must pick lowest reader: %v", o2.ByReader)
	}
}

// TestCleanStaleHistoryDoesNotWin is the recency regression: a reader's
// ancient claim on a tag (outside the staleness window) must not decide a
// present-day tie against a reader that is co-reading the tag now.
func TestCleanStaleHistoryDoesNotWin(t *testing.T) {
	d := New()
	o1 := model.NewObservation(1)
	o1.Add(7, 10)
	d.Clean(o1)
	// Far outside the window, readers 3 and 7 both read the tag. Reader 7's
	// history from epoch 1 is stale, so the deterministic lowest-reader rule
	// applies instead of stickiness.
	late := model.NewObservation(1 + DefaultStaleness + 1)
	late.Add(7, 10)
	late.Add(3, 10)
	d.Clean(late)
	if len(late.ByReader[3]) != 1 || len(late.ByReader[7]) != 0 {
		t.Fatalf("stale history must not win the tie: %v", late.ByReader)
	}
	// The fresh assignment is recorded and becomes sticky again.
	next := model.NewObservation(late.Time + 1)
	next.Add(7, 10)
	next.Add(3, 10)
	d.Clean(next)
	if len(next.ByReader[3]) != 1 {
		t.Errorf("fresh assignment must be sticky: %v", next.ByReader)
	}
}

// TestCleanStalenessBoundary pins the window edge: history exactly
// `staleness` epochs old still counts; one epoch older does not.
func TestCleanStalenessBoundary(t *testing.T) {
	for _, tc := range []struct {
		gap        model.Epoch
		wantReader model.ReaderID
	}{
		{DefaultStaleness, 7},     // at the boundary: still fresh
		{DefaultStaleness + 1, 3}, // just past it: stale
	} {
		d := New()
		o1 := model.NewObservation(1)
		o1.Add(7, 10)
		d.Clean(o1)
		o2 := model.NewObservation(1 + tc.gap)
		o2.Add(7, 10)
		o2.Add(3, 10)
		d.Clean(o2)
		if len(o2.ByReader[tc.wantReader]) != 1 {
			t.Errorf("gap %d: want reader %d to keep the tag: %v", tc.gap, tc.wantReader, o2.ByReader)
		}
	}
}

// TestCleanStalenessDisabled keeps the pre-window behavior reachable: a
// negative window means history never expires.
func TestCleanStalenessDisabled(t *testing.T) {
	d := NewWithStaleness(-1)
	if d.Staleness() >= 0 {
		t.Fatalf("Staleness() = %d, want negative", d.Staleness())
	}
	o1 := model.NewObservation(1)
	o1.Add(7, 10)
	d.Clean(o1)
	o2 := model.NewObservation(1_000_000)
	o2.Add(7, 10)
	o2.Add(3, 10)
	d.Clean(o2)
	if len(o2.ByReader[7]) != 1 {
		t.Errorf("with expiry disabled the old reader must still win: %v", o2.ByReader)
	}
}
