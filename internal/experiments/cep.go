package experiments

import (
	"fmt"
	"time"

	"spire/internal/cep"
	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/sim"
)

// The subscription-quality experiment scores the three built-in
// detectors (theft, misroute, cold-chain excursion) against the
// simulator's ground-truth anomaly logs, sweeping reader dropout to show
// how absence-based patterns degrade: dropout bursts manufacture
// spurious Missing reports, which the trailing NOT must absorb by
// waiting out the window. Detection windows are fixed per detector, so
// the sweep isolates the input-noise effect the paper's Expt 4 alludes
// to.
const (
	cepTheftWindow    = 120 // > worst dropout burst + shelf scan cycle
	cepMisrouteWindow = 30  // uncontain → shelf detection lag
	cepColdWindow     = 40  // > shuffle dwell + scan lag, < excursion dwell
)

// cepSim is the anomaly workload: a busy warehouse with all four
// injectors on. Shelf dwell is short so stolen cases would be re-sighted
// quickly if present, and the cold share is high enough for excursions
// to always find cargo.
func cepSim(o Options) sim.Config {
	c := sim.DefaultConfig()
	c.Seed = 11
	c.Duration = 5200
	c.PalletInterval = 60
	c.CasesMin, c.CasesMax = 2, 4
	c.ItemsPerCase = 2
	c.ReadRate = 0.96
	c.ShelfPeriod = 10
	c.NumShelves = 6
	c.ShelfTime = 200
	c.TheftInterval = 150
	c.MisrouteInterval = 180
	c.ColdCasePeriod = 3
	c.ExcursionInterval = 260
	c.ExcursionDwell = 70
	c.ColdShuffleInterval = 140
	c.ColdShuffleDwell = 6
	if o.Quick {
		c.Duration = 2600
	}
	return c
}

// cepDropout is one sweep row: a reader-dropout fault schedule.
type cepDropout struct {
	label      string
	every, len model.Epoch
}

func cepDropouts() []cepDropout {
	return []cepDropout{
		{"none", 0, 0},
		{"200x5", 200, 5},
		{"120x8", 120, 8},
		{"60x12", 60, 12},
	}
}

// cepMatches collects each detector's matches from one replay.
type cepMatches struct {
	theft, misroute, cold []cep.Match
	final                 model.Epoch
}

// runCEPRow replays the shared clean trace (faulted per the row's
// schedule) through a fresh substrate with the three detectors attached
// behind the watcher, exactly as cmd/spire -subscribe wires them.
func runCEPRow(trace []*model.Observation, s *sim.Simulator, d cepDropout) (*cepMatches, error) {
	sub, err := core.New(core.Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: core.Level2,
	})
	if err != nil {
		return nil, err
	}
	first, last := s.ShelfRange()
	layout := cep.Layout{
		ShelfFirst: first, ShelfLast: last,
		InboundFirst: s.EntryLocation(), InboundLast: first - 1,
		Packaging:   s.PackagingLocation(),
		ColdShelf:   s.ColdShelf(),
		ColdCompany: sim.ColdCompany,
	}
	engine := cep.NewEngine(cep.Config{})
	out := &cepMatches{}
	subscribe := func(src string, sink *[]cep.Match) error {
		_, err := engine.SubscribeFunc(src, func(m cep.Match) { *sink = append(*sink, m) })
		return err
	}
	if err := subscribe(cep.TheftPattern(cepTheftWindow), &out.theft); err != nil {
		return nil, err
	}
	if err := subscribe(cep.MisroutePattern(layout, cepMisrouteWindow), &out.misroute); err != nil {
		return nil, err
	}
	if err := subscribe(cep.ColdChainPattern(layout, cepColdWindow), &out.cold); err != nil {
		return nil, err
	}
	w := query.NewWatcher()
	engine.Attach(w)
	sub.Watch(w)

	// The injector clones every observation; for the clean row we must
	// clone too, since the substrate consumes observations destructively
	// and the trace is shared across rows.
	var delivery []*model.Observation
	if d.every > 0 {
		inj := sim.NewFaultInjector(sim.FaultConfig{
			Seed:         31 + int64(d.every),
			DropoutEvery: d.every,
			DropoutLen:   d.len,
		})
		delivery = inj.Apply(trace)
	} else {
		delivery = make([]*model.Observation, len(trace))
		for i, o := range trace {
			delivery[i] = o.Clone()
		}
	}
	for _, o := range delivery {
		if _, err := sub.ProcessEpoch(o); err != nil {
			return nil, err
		}
	}
	out.final = trace[len(trace)-1].Time
	sub.Close(out.final + 1)
	return out, nil
}

// cepScore is unique-object precision/recall: an anomaly object is
// detected iff the detector has a match for it completing at or after
// the ground-truth epoch; matched objects outside the full truth log are
// false positives. Anomalies too close to the end of the trace to finish
// a window are excluded from scoring (but never counted against
// precision).
func cepScore(truth, lateTruth map[model.Tag]model.Epoch, ms []cep.Match) (p, r, f1, delay float64) {
	tp, fp, fn := 0, 0, 0
	var delaySum float64
	for obj, at := range truth {
		best := model.Epoch(-1)
		for _, m := range ms {
			if m.Object == obj && m.At >= at && (best < 0 || m.At < best) {
				best = m.At
			}
		}
		if best >= 0 {
			tp++
			delaySum += float64(best - at)
		} else {
			fn++
		}
	}
	seen := make(map[model.Tag]bool)
	for _, m := range ms {
		if seen[m.Object] {
			continue
		}
		seen[m.Object] = true
		if _, ok := truth[m.Object]; ok {
			continue
		}
		if _, ok := lateTruth[m.Object]; ok {
			continue
		}
		fp++
	}
	p, r = 1, 1
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	if tp > 0 {
		delay = delaySum / float64(tp)
	}
	return p, r, f1, delay
}

// cepTruth splits an anomaly log into scorable truth (window can finish
// before the trace ends) and late truth (excluded both ways), keyed by
// the first anomaly per object.
func cepTruth(final, window model.Epoch, log func(add func(model.Tag, model.Epoch))) (truth, late map[model.Tag]model.Epoch) {
	truth = make(map[model.Tag]model.Epoch)
	late = make(map[model.Tag]model.Epoch)
	cutoff := final - window - 4*10 // window + detection slack (shelf scans)
	log(func(obj model.Tag, at model.Epoch) {
		m := truth
		if at > cutoff {
			m = late
		}
		if prev, ok := m[obj]; !ok || at < prev {
			m[obj] = at
		}
	})
	// An object anomalous both early and late scores on the early epoch.
	for obj := range truth {
		delete(late, obj)
	}
	return truth, late
}

// CEPQuality scores the built-in detectors against ground truth across
// reader-dropout schedules: precision, recall, F1 and mean detection
// delay (epochs from the true anomaly to the completing match).
func CEPQuality(o Options) (*Table, error) {
	sc := cepSim(o)
	s, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	var trace []*model.Observation
	for !s.Done() {
		ob, err := s.Step()
		if err != nil {
			return nil, err
		}
		trace = append(trace, ob)
	}
	final := trace[len(trace)-1].Time

	theftTruth, theftLate := cepTruth(final, cepTheftWindow, func(add func(model.Tag, model.Epoch)) {
		for _, th := range s.Thefts() {
			add(th.Case, th.At)
		}
	})
	misTruth, misLate := cepTruth(final, cepMisrouteWindow, func(add func(model.Tag, model.Epoch)) {
		for _, m := range s.Misroutes() {
			add(m.Case, m.At)
		}
	})
	coldTruth, coldLate := cepTruth(final, cepColdWindow, func(add func(model.Tag, model.Epoch)) {
		for _, e := range s.Excursions() {
			add(e.Case, e.At)
		}
	})

	drops := cepDropouts()
	rows := make([]*cepMatches, len(drops))
	if err := runCells(len(drops), o.Workers, func(i int) error {
		var err error
		rows[i], err = runCEPRow(trace, s, drops[i])
		return err
	}); err != nil {
		return nil, err
	}

	t := &Table{
		ID:        "cep",
		Title:     "Detector precision/recall vs reader dropout (subscription engine)",
		RowHeader: "dropout/detector",
		Columns:   []string{"precision", "recall", "F1", "delay"},
	}
	for i, d := range drops {
		type det struct {
			name        string
			truth, late map[model.Tag]model.Epoch
			ms          []cep.Match
		}
		for _, dd := range []det{
			{"theft", theftTruth, theftLate, rows[i].theft},
			{"misroute", misTruth, misLate, rows[i].misroute},
			{"cold", coldTruth, coldLate, rows[i].cold},
		} {
			p, r, f1, delay := cepScore(dd.truth, dd.late, dd.ms)
			t.AddRow(fmt.Sprintf("%s %s", d.label, dd.name), p, r, f1, delay)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ground truth: %d thefts, %d misroutes, %d excursions (%d benign shuffles as the cold negative class)",
			len(theftTruth), len(misTruth), len(coldTruth), len(s.ColdShuffles())),
		fmt.Sprintf("windows: theft %d, misroute %d, cold %d epochs; delay is mean epochs from anomaly to alarm",
			cepTheftWindow, cepMisrouteWindow, cepColdWindow),
		"dropout ExL silences one random reader for L epochs every E; spurious Missing reports must be absorbed by the trailing NOT",
		"anomalies whose window cannot finish before the trace ends are excluded from scoring")
	return t, nil
}

// CEPPerf measures engine dispatch cost over a recorded level-2 event
// stream at three subscription loads. Idle (zero subscriptions) is the
// observer overhead every deployment pays once a watcher is attached;
// the 1k/10k rows model per-object alerting, the dense-subscription
// workload SASE-style engines are sized for.
func CEPPerf(o Options) (*Table, error) {
	sc := cepSim(o)
	sc.Duration = 1200
	if o.Quick {
		sc.Duration = 800
	}
	s, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	sub, err := core.New(core.Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: core.Level2,
	})
	if err != nil {
		return nil, err
	}
	var epochs [][]event.Event
	var times []model.Epoch
	objSet := make(map[model.Tag]bool)
	for !s.Done() {
		ob, err := s.Step()
		if err != nil {
			return nil, err
		}
		po, err := sub.ProcessEpoch(ob)
		if err != nil {
			return nil, err
		}
		for _, e := range po.Events {
			objSet[e.Object] = true
		}
		epochs = append(epochs, po.Events)
		times = append(times, ob.Time)
	}
	var objs []model.Tag
	for g := range objSet {
		objs = append(objs, g)
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("cep-perf: stream produced no events")
	}
	span := times[len(times)-1] + 1

	// Rows stop at minEvents or the time cap, whichever comes first: the
	// 10k-subscription row is ~3 orders slower per event than idle, and a
	// few million events of it would add nothing but wall-clock.
	minEvents := int64(2_000_000)
	maxElapsed := 10 * time.Second
	if o.Quick {
		minEvents = 200_000
		maxElapsed = 2 * time.Second
	}
	t := &Table{
		ID:        "cep-perf",
		Title:     "Subscription-engine dispatch cost vs subscription count",
		RowHeader: "load",
		Columns:   []string{"Mevent/s", "s/Mevent"},
	}
	for _, load := range []struct {
		label string
		subs  int
	}{
		{"BenchmarkCEPDispatchIdle", 0},
		{"BenchmarkCEPDispatch1kSubs", 1_000},
		{"BenchmarkCEPDispatch10kSubs", 10_000},
		{"BenchmarkCEPDispatch100kSubs", 100_000},
	} {
		engine := cep.NewEngine(cep.Config{})
		for i := 0; i < load.subs; i++ {
			g := objs[i%len(objs)]
			var src string
			if i%2 == 0 {
				src = fmt.Sprintf("SEQ(missing() & tag(%d), NOT start()) WITHIN 60", g)
			} else {
				src = fmt.Sprintf("SEQ(start() & tag(%d) & level(case), NOT end()) WITHIN 80", g)
			}
			if _, err := engine.Subscribe(src); err != nil {
				return nil, err
			}
		}
		var done int64
		var elapsed time.Duration
		var offset model.Epoch
		for done < minEvents && elapsed < maxElapsed {
			start := time.Now()
			for i := range epochs {
				engine.Epoch(times[i]+offset, epochs[i])
				done += int64(len(epochs[i]))
			}
			elapsed += time.Since(start)
			// Shift the clock each pass so windows keep expiring and the
			// measurement includes steady-state run turnover, not an
			// ever-growing pinned-clock backlog.
			offset += span
		}
		mps := float64(done) / 1e6 / elapsed.Seconds()
		t.AddRow(load.label, mps, 1/mps)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stream: %d epochs of the anomaly workload at level 2, replayed with a shifting clock until %dk events", len(epochs), minEvents/1000),
		"subscriptions model per-object alerting: half anchored on Missing, half on StartLocation, each filtered to one tag",
		"single-threaded dispatch under the engine mutex, as the pipeline loop drives it")
	return t, nil
}
