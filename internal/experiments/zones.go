package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/federate"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/telemetry"
)

// benchZonesConfig is the workload for the federated-scaling benchmark: a
// busier warehouse than the default Section VI-B world (shorter pallet
// interval, more shelves) so that every zone substrate has real work and
// the zone counts up to 8 can each own at least one location.
func benchZonesConfig(quick bool) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Duration = 12_000
	if quick {
		cfg.Duration = 3_000
	}
	cfg.PalletInterval = 150
	cfg.CasesMin, cfg.CasesMax = 3, 4
	cfg.ItemsPerCase = 6
	cfg.NumShelves = 8
	cfg.ShelfTime = 400
	cfg.ShelfPeriod = 20
	cfg.TheftInterval = 500
	cfg.ReadRate = 0.95
	return cfg
}

func benchZonesSubstrate(readers []model.Reader, locs []model.Location) (*core.Substrate, error) {
	return core.New(core.Config{
		Readers:     readers,
		Locations:   locs,
		Inference:   inference.DefaultConfig(),
		Compression: core.Level1,
	})
}

// runZonesSingle times the single-substrate interpretation of the world
// and returns (readings, merged events, elapsed).
func runZonesSingle(cfg sim.Config) (int64, int64, time.Duration, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	sub, err := benchZonesSubstrate(s.Readers(), s.Locations())
	if err != nil {
		return 0, 0, 0, err
	}
	var readings, events int64
	start := time.Now()
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return 0, 0, 0, err
		}
		readings += int64(o.Total())
		eo, err := sub.ProcessEpoch(o)
		if err != nil {
			return 0, 0, 0, err
		}
		events += int64(len(eo.Events))
	}
	events += int64(len(sub.Close(s.Now() + 1)))
	return readings, events, time.Since(start), nil
}

// zoneSlate is one epoch's batches from every zone, stamped with the
// epoch — the merge-only measurements replay slates through both merger
// implementations, and the parallel one needs the true epoch for its
// barrier precondition.
type zoneSlate struct {
	epoch   model.Epoch
	batches [][]event.Event
}

// runZonesFederated times the in-process federated interpretation: one
// substrate per zone, each epoch's zone substrates stepped concurrently
// (as the cluster's worker processes would run), the merger driven
// serially in fixed zone order. When capture is non-nil it receives every
// per-epoch slate of zone batches, for the merge-only measurement.
func runZonesFederated(cfg sim.Config, nz int, capture *[]zoneSlate) (int64, int64, time.Duration, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	zones, err := s.PartitionZones(nz)
	if err != nil {
		return 0, 0, 0, err
	}
	zoneOf := sim.ZoneOfReaders(zones)
	subs := make([]*core.Substrate, nz)
	for z := range subs {
		if subs[z], err = benchZonesSubstrate(zones[z], s.Locations()); err != nil {
			return 0, 0, 0, err
		}
	}
	m := federate.NewMerger()
	batches := make([][]event.Event, nz)
	errs := make([]error, nz)
	var readings, events int64
	start := time.Now()
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return 0, 0, 0, err
		}
		readings += int64(o.Total())
		split := sim.SplitObservation(o, zoneOf, nz)
		var wg sync.WaitGroup
		for z := 0; z < nz; z++ {
			wg.Add(1)
			go func(z int) {
				defer wg.Done()
				eo, err := subs[z].ProcessEpoch(split[z])
				if err != nil {
					errs[z] = err
					return
				}
				batches[z] = eo.Events
			}(z)
		}
		wg.Wait()
		for z := 0; z < nz; z++ {
			if errs[z] != nil {
				return 0, 0, 0, errs[z]
			}
			out, err := m.Ingest(federate.ZoneID(z), batches[z])
			if err != nil {
				return 0, 0, 0, err
			}
			events += int64(len(out))
		}
		events += int64(len(m.EndEpoch()))
		if capture != nil {
			slate := make([][]event.Event, nz)
			for z := range slate {
				slate[z] = append([]event.Event(nil), batches[z]...)
			}
			*capture = append(*capture, zoneSlate{epoch: o.Time, batches: slate})
		}
	}
	end := s.Now() + 1
	closing := make([][]event.Event, nz)
	for z := 0; z < nz; z++ {
		closing[z] = subs[z].Close(end)
		out, err := m.Ingest(federate.ZoneID(z), closing[z])
		if err != nil {
			return 0, 0, 0, err
		}
		events += int64(len(out))
	}
	events += int64(len(m.Close(end)))
	if capture != nil {
		*capture = append(*capture, zoneSlate{epoch: end, batches: closing})
	}
	return readings, events, time.Since(start), nil
}

// measureMergeOnly replays the captured per-epoch zone batches through
// fresh Mergers until at least minEvents input events have been ingested,
// and returns events per second of pure merge work — the coordinator-side
// serial cost a cluster pays on top of the zones' parallel interpretation.
func measureMergeOnly(capture []zoneSlate, nz int, minEvents int64) (float64, error) {
	var events int64
	var elapsed time.Duration
	for events < minEvents {
		m := federate.NewMerger()
		start := time.Now()
		for i, slate := range capture {
			for z := 0; z < nz; z++ {
				if _, err := m.Ingest(federate.ZoneID(z), slate.batches[z]); err != nil {
					return 0, err
				}
			}
			if i < len(capture)-1 {
				m.EndEpoch()
			}
		}
		elapsed += time.Since(start)
		for _, slate := range capture {
			for _, b := range slate.batches {
				events += int64(len(b))
			}
		}
	}
	return float64(events) / elapsed.Seconds(), nil
}

// measureMergeParallel replays the same captured slates through the
// sharded ParallelMerger, one MergeEpoch per slate (the coordinator's
// batch-feed barrier shape), and returns events per second. It fails if
// any call fell back to the serial walk — the measurement must time the
// parallel path.
func measureMergeParallel(capture []zoneSlate, minEvents int64) (float64, error) {
	var events int64
	var elapsed time.Duration
	for events < minEvents {
		pm := federate.NewParallelMerger(0)
		start := time.Now()
		for i, slate := range capture {
			if _, err := pm.MergeEpoch(slate.epoch, slate.batches, i == len(capture)-1); err != nil {
				return 0, err
			}
		}
		elapsed += time.Since(start)
		if n := pm.SerialFallbacks(); n > 0 {
			return 0, fmt.Errorf("parallel merge fell back to the serial walk %d times", n)
		}
		for _, slate := range capture {
			for _, b := range slate.batches {
				events += int64(len(b))
			}
		}
	}
	return float64(events) / elapsed.Seconds(), nil
}

// measureMergeInstrumented repeats the merge-only measurement with live
// coordinator instruments attached, performing the same per-batch and
// per-epoch metric work the Coordinator's deliver and merge loops do:
// zone epoch/event counters, the barrier gauge and wait histogram, and
// the merged-stream totals. The delta against the MergerIngest row is
// the telemetry tax on the serial coordinator path, which spirebenchdiff
// gates so the cluster-health plane cannot quietly grow into the merge
// stage's budget.
func measureMergeInstrumented(capture []zoneSlate, nz int, minEvents int64) (float64, error) {
	reg := telemetry.NewRegistry()
	tel := federate.NewCoordinatorInstruments(reg, nz)
	var events int64
	var elapsed time.Duration
	for events < minEvents {
		m := federate.NewMerger()
		start := time.Now()
		for i, slate := range capture {
			epochStart := time.Now()
			tel.BarrierEpoch.Set(int64(i))
			for z := 0; z < nz; z++ {
				out, err := m.Ingest(federate.ZoneID(z), slate.batches[z])
				if err != nil {
					return 0, err
				}
				tel.ZoneEpochs[z].Inc()
				tel.ZoneEvents[z].Add(int64(len(slate.batches[z])))
				tel.MergedEvents.Add(int64(len(out)))
			}
			if i < len(capture)-1 {
				tel.MergedEvents.Add(int64(len(m.EndEpoch())))
			}
			tel.MergedEpochs.Inc()
			tel.BarrierWait.Observe(time.Since(epochStart).Seconds())
		}
		elapsed += time.Since(start)
		for _, slate := range capture {
			for _, b := range slate.batches {
				events += int64(len(b))
			}
		}
	}
	return float64(events) / elapsed.Seconds(), nil
}

// runZonesWorkerFeedBatch times one zone worker's ingest over the
// columnar zone-batch feed: the simulation observes only this zone's
// readers, and the substrate ingests the columns without per-reading
// staging. Returns the zone's own readings and the wall time.
func runZonesWorkerFeedBatch(cfg sim.Config, nz, zone int) (int64, time.Duration, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	zones, err := s.PartitionZones(nz)
	if err != nil {
		return 0, 0, err
	}
	streams, err := s.PartitionZonesBatch(nz)
	if err != nil {
		return 0, 0, err
	}
	sub, err := benchZonesSubstrate(zones[zone], s.Locations())
	if err != nil {
		return 0, 0, err
	}
	var readings int64
	start := time.Now()
	for {
		b, err := streams[zone].NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		readings += int64(b.Total())
		if _, err := sub.ProcessBatch(b); err != nil {
			return 0, 0, err
		}
	}
	sub.Close(s.Now() + 1)
	return readings, time.Since(start), nil
}

// runZonesWorkerFeedObs is the same zone worker over the observation
// feed: the full deployment's simulation steps every epoch and the
// zone's share is filtered out — the per-zone cost the batch feed
// removes.
func runZonesWorkerFeedObs(cfg sim.Config, nz, zone int) (int64, time.Duration, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	zones, err := s.PartitionZones(nz)
	if err != nil {
		return 0, 0, err
	}
	sub, err := benchZonesSubstrate(zones[zone], s.Locations())
	if err != nil {
		return 0, 0, err
	}
	src := sim.NewZoneStream(s, sim.ZoneOfReaders(zones), zone)
	var readings int64
	start := time.Now()
	for {
		o, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		readings += int64(o.Total())
		if _, err := sub.ProcessEpoch(o); err != nil {
			return 0, 0, err
		}
	}
	sub.Close(s.Now() + 1)
	return readings, time.Since(start), nil
}

// BenchZones measures federated scaling: the same warehouse interpreted
// by one substrate, then by 2..8 zone substrates stepped concurrently and
// merged through the federation Merger, as tags/sec against zone count. A
// second table isolates the merge stage — the serial coordinator-side
// reconciliation cost per input event — measured over captured zone
// batches, which is the stable quantity spirebenchdiff gates (the scaling
// rows time genuinely parallel work and depend on the host's idle cores).
func BenchZones(o Options) ([]*Table, error) {
	cfg := benchZonesConfig(o.Quick)
	zoneCounts := []int{2, 4, 8}
	minMergeEvents := int64(1_000_000)
	if o.Quick {
		zoneCounts = []int{2, 4}
		minMergeEvents = 200_000
	}

	main := &Table{
		ID:        "bench-zones",
		Title:     "Federated scaling: interpretation throughput (readings/s) vs zones",
		RowHeader: "zones",
		Columns:   []string{"read/s", "s/Mread", "speedup", "events"},
	}
	merge := &Table{
		ID:        "zones-merge",
		Title:     "Federation merge stage (coordinator-side reconciliation)",
		RowHeader: "stage",
		Columns:   []string{"Mevent/s", "s/Mevent"},
	}
	feedTbl := &Table{
		ID:        "zones-worker-feed",
		Title:     "Zone worker ingest: columnar batch feed vs observation feed (zone 0's cost per million of its own readings)",
		RowHeader: "zones",
		Columns:   []string{"batch s/Mread", "obs s/Mread", "zone Mreads"},
	}

	readings, events, elapsed, err := runZonesSingle(cfg)
	if err != nil {
		return nil, err
	}
	base := float64(readings) / elapsed.Seconds()
	main.AddRow("single", base, 1e6/base, 1.0, float64(events))

	var capture []zoneSlate
	for _, nz := range zoneCounts {
		var sink *[]zoneSlate
		if nz == zoneCounts[len(zoneCounts)-1] {
			sink = &capture
		}
		readings, events, elapsed, err := runZonesFederated(cfg, nz, sink)
		if err != nil {
			return nil, fmt.Errorf("zones=%d: %w", nz, err)
		}
		rps := float64(readings) / elapsed.Seconds()
		main.AddRow(fmt.Sprintf("%d", nz), rps, 1e6/rps, rps/base, float64(events))
	}

	nz := zoneCounts[len(zoneCounts)-1]
	eps, err := measureMergeOnly(capture, nz, minMergeEvents)
	if err != nil {
		return nil, err
	}
	merge.AddRow("MergerIngest", eps/1e6, 1e6/eps)
	ieps, err := measureMergeInstrumented(capture, nz, minMergeEvents)
	if err != nil {
		return nil, err
	}
	merge.AddRow("MergerIngest+telemetry", ieps/1e6, 1e6/ieps)
	peps, err := measureMergeParallel(capture, minMergeEvents)
	if err != nil {
		return nil, err
	}
	merge.AddRow("ParallelMerge", peps/1e6, 1e6/peps)

	for _, fz := range zoneCounts {
		breadings, belapsed, err := runZonesWorkerFeedBatch(cfg, fz, 0)
		if err != nil {
			return nil, fmt.Errorf("worker feed batch zones=%d: %w", fz, err)
		}
		oreadings, oelapsed, err := runZonesWorkerFeedObs(cfg, fz, 0)
		if err != nil {
			return nil, fmt.Errorf("worker feed obs zones=%d: %w", fz, err)
		}
		bspm := belapsed.Seconds() / (float64(breadings) / 1e6)
		ospm := oelapsed.Seconds() / (float64(oreadings) / 1e6)
		feedTbl.AddRow(fmt.Sprintf("%d", fz), bspm, ospm, float64(breadings)/1e6)
	}

	main.Notes = append(main.Notes,
		"zone substrates step concurrently (one goroutine per zone, as cluster worker processes would); the merger runs serially after each epoch",
		"speedup is relative to the single-substrate row and is informational, not gated; on small worlds it sits below 1 — per-epoch fork-join and the merge pass outweigh the parallel interpretation when epochs carry few readings",
		"the distributed win is per-machine load, not single-host wall clock: each zone interprets only its own readers' share of the readings",
		"events counts the merged output stream; it grows with zones because cross-zone handoffs close and reopen intervals at the boundary")
	merge.Notes = append(merge.Notes,
		fmt.Sprintf("replays the captured %d-zone batches through fresh Mergers; serial, so the gated baseline compares across hosts", nz),
		"the +telemetry row repeats the replay with live CoordinatorInstruments doing the per-batch and per-epoch metric work of the coordinator's merge path; the delta is the gated telemetry tax",
		"the ParallelMerge row replays the same slates through the sharded merger, one MergeEpoch per epoch barrier; its advantage over the serial rows depends on idle cores and per-epoch batch size — on one core or tiny epochs the routing, goroutine fork-join, and k-way merge make it slower than the serial walk")
	feedTbl.Notes = append(feedTbl.Notes,
		"each row times zone 0 of an N-zone deployment ingesting its feed alone, normalized by that zone's own readings",
		"batch: sim.PartitionZonesBatch observes only the zone's readers into reused columns and the substrate ingests them directly, so the observation work scales with the zone's own traffic, not the deployment's population; residual growth across rows is the per-epoch substrate overhead and the global world advance amortized over fewer own readings",
		"obs: the worker re-steps the full deployment's simulation — observing every reader in the population — and filters out its share, so its cost per own reading grows with the zone count; the batch column undercuts it at every row and the gap widens with zones",
		"the two feeds are distinct deterministic observation traces, so their reading counts differ slightly; each column is normalized by its own trace's readings")
	return []*Table{main, merge, feedTbl}, nil
}
