package experiments

import (
	"fmt"

	"spire/internal/inference"
)

// AblationPartialInference quantifies the partial/complete inference
// split of Section IV-D: it compares the default schedule-driven substrate
// against one whose shelf readers are treated as period-1 (forcing
// complete inference every epoch), reporting accuracy and inference cost.
// The design claim under test: partial inference preserves accuracy while
// avoiding wasted work between slow-reader cycles.
func AblationPartialInference(o Options) (*Table, error) {
	t := &Table{
		ID:        "ablation-partial",
		Title:     "Partial vs complete-only inference (Section IV-D)",
		RowHeader: "variant",
		Columns:   []string{"loc err", "cont err", "infer s/epoch"},
	}
	for _, hops := range []int{1, 2, 4} {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ShelfPeriod = 60
		if o.Quick {
			rc.Sim.ShelfPeriod = 30
		}
		rc.Inference.PartialHops = hops
		out, err := run(rc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("schedule l=%d", hops),
			out.Acc.LocationErrorRate(),
			out.Acc.ContainmentErrorRate(),
			out.Stats.InferenceTime.Seconds()/float64(out.Stats.Epochs))
	}
	// Force complete inference every epoch by declaring every reader
	// period-1 to the substrate while the simulator keeps its real shelf
	// period. (The schedule is derived from the configured readers.)
	rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
	rc.Sim.ShelfPeriod = 60
	if o.Quick {
		rc.Sim.ShelfPeriod = 30
	}
	out, err := runCompleteOnly(rc)
	if err != nil {
		return nil, err
	}
	t.AddRow("complete-only",
		out.Acc.LocationErrorRate(),
		out.Acc.ContainmentErrorRate(),
		out.Stats.InferenceTime.Seconds()/float64(out.Stats.Epochs))
	t.Notes = append(t.Notes,
		"design claim (§IV-D): forcing complete inference every epoch both costs more and floods the result with",
		"misleading 'unknown' verdicts for objects whose slow readers have not fired; the partial schedule avoids both",
	)
	return t, nil
}

// AblationPruneThreshold quantifies the accuracy cost of edge pruning
// (Expt 6 reports it as ≤1% for location, up to ~8% extra containment
// error at threshold 0.5).
func AblationPruneThreshold(o Options) (*Table, error) {
	t := &Table{
		ID:        "ablation-prune",
		Title:     "Accuracy cost of edge pruning (Expt 6 accuracy notes)",
		RowHeader: "threshold",
		Columns:   []string{"loc err", "cont err"},
	}
	for _, th := range []float64{0, 0.25, 0.5, 0.75} {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Inference.PruneThreshold = th
		out, err := run(rc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", th),
			out.Acc.LocationErrorRate(), out.Acc.ContainmentErrorRate())
	}
	t.Notes = append(t.Notes,
		"paper shape: pruning barely moves location error; containment error grows with the threshold")
	return t, nil
}
