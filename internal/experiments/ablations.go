package experiments

import (
	"fmt"

	"spire/internal/inference"
)

// AblationPartialInference quantifies the partial/complete inference
// split of Section IV-D: it compares the default schedule-driven substrate
// against one whose shelf readers are treated as period-1 (forcing
// complete inference every epoch), reporting accuracy and inference cost.
// The design claim under test: partial inference preserves accuracy while
// avoiding wasted work between slow-reader cycles.
func AblationPartialInference(o Options) (*Table, error) {
	t := &Table{
		ID:        "ablation-partial",
		Title:     "Partial vs complete-only inference (Section IV-D)",
		RowHeader: "variant",
		Columns:   []string{"loc err", "cont err", "infer s/epoch"},
	}
	// The last cell forces complete inference every epoch by declaring
	// every reader period-1 to the substrate while the simulator keeps its
	// real shelf period. (The schedule is derived from the configured
	// readers.)
	hops := []int{1, 2, 4}
	labels := []string{"schedule l=1", "schedule l=2", "schedule l=4", "complete-only"}
	vals := make([][]float64, len(labels))
	err := runCells(len(labels), o.Workers, func(i int) error {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ShelfPeriod = 60
		if o.Quick {
			rc.Sim.ShelfPeriod = 30
		}
		var out *runOutput
		var err error
		if i < len(hops) {
			rc.Inference.PartialHops = hops[i]
			out, err = run(rc)
		} else {
			out, err = runCompleteOnly(rc)
		}
		if err != nil {
			return err
		}
		vals[i] = []float64{
			out.Acc.LocationErrorRate(),
			out.Acc.ContainmentErrorRate(),
			out.Stats.InferenceTime.Seconds() / float64(out.Stats.Epochs),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, label := range labels {
		t.Rows = append(t.Rows, Row{Label: label, Values: vals[i]})
	}
	t.Notes = append(t.Notes,
		"design claim (§IV-D): forcing complete inference every epoch both costs more and floods the result with",
		"misleading 'unknown' verdicts for objects whose slow readers have not fired; the partial schedule avoids both",
	)
	return t, nil
}

// AblationPruneThreshold quantifies the accuracy cost of edge pruning
// (Expt 6 reports it as ≤1% for location, up to ~8% extra containment
// error at threshold 0.5).
func AblationPruneThreshold(o Options) (*Table, error) {
	t := &Table{
		ID:        "ablation-prune",
		Title:     "Accuracy cost of edge pruning (Expt 6 accuracy notes)",
		RowHeader: "threshold",
		Columns:   []string{"loc err", "cont err"},
	}
	thresholds := []float64{0, 0.25, 0.5, 0.75}
	vals := make([][]float64, len(thresholds))
	err := runCells(len(thresholds), o.Workers, func(i int) error {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Inference.PruneThreshold = thresholds[i]
		out, err := run(rc)
		if err != nil {
			return err
		}
		vals[i] = []float64{out.Acc.LocationErrorRate(), out.Acc.ContainmentErrorRate()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, th := range thresholds {
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%.2f", th), Values: vals[i]})
	}
	t.Notes = append(t.Notes,
		"paper shape: pruning barely moves location error; containment error grows with the threshold")
	return t, nil
}
