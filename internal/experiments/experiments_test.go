package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:        "t",
		Title:     "demo",
		RowHeader: "x",
		Columns:   []string{"a", "b"},
		Notes:     []string{"hello"},
	}
	tbl.AddRow("r1", 1, 2)
	s := tbl.String()
	for _, want := range []string{"demo", "r1", "hello", "1.0000"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if v, ok := tbl.Cell("r1", "b"); !ok || v != 2 {
		t.Errorf("Cell = %v,%v; want 2,true", v, ok)
	}
	if _, ok := tbl.Cell("r1", "zzz"); ok {
		t.Error("Cell with unknown column must report !ok")
	}
	if _, ok := tbl.Cell("zzz", "a"); ok {
		t.Error("Cell with unknown row must report !ok")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Errorf("registry has %d entries, IDs lists %d", len(reg), len(IDs()))
	}
}

// TestFig9dShape runs the read-rate sensitivity experiment at quick scale
// and asserts the paper's qualitative findings.
func TestFig9dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	tbl, err := Fig9d(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	hi, _ := tbl.Cell("1.00", "location")
	lo, _ := tbl.Cell("0.50", "location")
	if hi >= lo {
		t.Errorf("location error must grow as read rate drops: %.4f@1.0 vs %.4f@0.5", hi, lo)
	}
	contHi, _ := tbl.Cell("0.85", "containment")
	if contHi > 0.10 {
		t.Errorf("containment error at 0.85 = %.4f, paper reports ≤~10%%", contHi)
	}
	locHi, _ := tbl.Cell("0.85", "location")
	if locHi > 0.10 {
		t.Errorf("location error at 0.85 = %.4f, paper reports ≤~10%%", locHi)
	}
	contLo, _ := tbl.Cell("0.50", "containment")
	if contLo <= contHi {
		t.Errorf("containment error must degrade at low read rates: %.4f@0.5 vs %.4f@0.85", contLo, contHi)
	}
}

// TestFig9aShape asserts the β extremes behave as the paper reports.
func TestFig9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	tbl, err := Fig9a(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	noisy := tbl.Columns[0] // fastest shelf readers = most co-location noise
	low, _ := tbl.Cell("0.00", noisy)
	high, _ := tbl.Cell("1.00", noisy)
	if high <= low {
		t.Errorf("β=1 (%v) must degrade containment vs β=0 (%v) under noisy shelf readers", high, low)
	}
	adaptive, _ := tbl.Cell("adaptive", noisy)
	if adaptive >= high {
		t.Errorf("adaptive β (%v) must beat the worst fixed setting (%v)", adaptive, high)
	}
}

// TestFig11Shape asserts the headline comparisons of Expts 7-8.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	a, b, c, err := Fig11(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + a.String() + "\n" + b.String() + "\n" + c.String())
	for _, rate := range []string{"0.70", "0.85", "1.00"} {
		sp, _ := a.Cell(rate, "SPIRE")
		sm, _ := a.Cell(rate, "SMURF")
		if sp <= sm {
			t.Errorf("rate %s: SPIRE F (%v) must beat SMURF (%v)", rate, sp, sm)
		}
	}
	for _, rate := range []string{"0.85", "1.00"} {
		l1, _ := b.Cell(rate, "SPIRE L1")
		l2, _ := b.Cell(rate, "SPIRE L2")
		if l2 >= l1 {
			t.Errorf("rate %s: level-2 ratio (%v) must beat level-1 (%v) at high read rates", rate, l2, l1)
		}
		if l1 >= 0.5 {
			t.Errorf("rate %s: level-1 ratio %v implausibly high", rate, l1)
		}
		full1, _ := c.Cell(rate, "L1 full")
		full2, _ := c.Cell(rate, "L2 full")
		if full1 >= 1 || full2 >= 1 {
			t.Errorf("rate %s: compression must undercut the raw stream (%v, %v)", rate, full1, full2)
		}
		if full2 >= full1 {
			t.Errorf("rate %s: L2 full (%v) must beat L1 full (%v)", rate, full2, full1)
		}
	}
}

// TestTable3AndFig10Shape runs the efficiency experiments at quick scale.
func TestTable3AndFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	t3, err := Table3(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t3.String())
	if len(t3.Rows) < 2 {
		t.Fatal("table 3 must have multiple sizes")
	}
	for _, r := range t3.Rows {
		if r.Values[0] <= 0 || r.Values[1] <= 0 {
			t.Errorf("size %s: non-positive costs %v", r.Label, r.Values)
		}
		if r.Values[2] >= 1.0 {
			t.Errorf("size %s: epoch cost %v exceeds the 1 s epoch", r.Label, r.Values[2])
		}
		if r.Values[1] <= r.Values[0] {
			t.Logf("size %s: inference (%v) not dominating update (%v) — informational", r.Label, r.Values[1], r.Values[0])
		}
	}
	first := t3.Rows[0].Values[2]
	last := t3.Rows[len(t3.Rows)-1].Values[2]
	if last <= first {
		t.Errorf("total cost must grow with node count: %v → %v", first, last)
	}

	f10, err := Fig10(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f10.String())
	for _, r := range f10.Rows {
		unpruned, pruned := r.Values[0], r.Values[len(f10.Columns)-3]
		if pruned > unpruned {
			t.Errorf("size %s: pruning must not increase memory (%v vs %v)", r.Label, pruned, unpruned)
		}
	}
}

// TestCEPQualityFloors runs the subscription-quality experiment at quick
// scale and asserts detector F1 floors against ground truth — the
// acceptance gate for the complex-event engine. The floors carry margin
// below the measured quick-scale scores (theft 0.97, misroute ≥ 0.96,
// cold 1.00 across all dropout rows), so they fail on real regressions,
// not run-to-run noise.
func TestCEPQualityFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	tbl, err := CEPQuality(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	floors := map[string]float64{"theft": 0.85, "misroute": 0.85, "cold": 0.90}
	for _, d := range cepDropouts() {
		for det, floor := range floors {
			row := d.label + " " + det
			f1, ok := tbl.Cell(row, "F1")
			if !ok {
				t.Errorf("missing row %q", row)
				continue
			}
			if f1 < floor {
				t.Errorf("%s: F1 = %.4f below floor %.2f", row, f1, floor)
			}
		}
	}
	// On the clean trace every injected anomaly must be caught: the
	// detectors' recall story collapses silently otherwise, even while
	// F1 limps over the floor on precision.
	for det := range floors {
		r, ok := tbl.Cell("none "+det, "recall")
		if !ok || r < 0.95 {
			t.Errorf("none %s: recall = %.4f, want ≥ 0.95", det, r)
		}
	}
	// Detection delay must stay within the detector window plus scan
	// lag — a delay beyond that means matches complete on the wrong
	// epoch arithmetic.
	for det, bound := range map[string]float64{"theft": cepTheftWindow + 20, "misroute": cepMisrouteWindow, "cold": cepColdWindow + 20} {
		delay, ok := tbl.Cell("none "+det, "delay")
		if !ok || delay <= 0 || delay > bound {
			t.Errorf("none %s: delay = %.2f, want in (0, %.0f]", det, delay, bound)
		}
	}
}

// TestBenchIngestShape runs the ingest-throughput experiment at quick
// scale and asserts its structure. Absolute readings/s and the parallel
// speedup are host-dependent (and ~1 on a single-core machine), so the
// ratios are logged, not asserted.
func TestBenchIngestShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	tables, err := BenchIngest(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("BenchIngest returned %d tables, want 2", len(tables))
	}
	main, stages := tables[0], tables[1]
	t.Log("\n" + main.String() + "\n" + stages.String())
	if len(main.Rows) < 2 {
		t.Fatal("bench-ingest must sweep multiple populations")
	}
	for _, r := range main.Rows {
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("population %s: non-positive %s (%v)", r.Label, main.Columns[i], v)
			}
		}
	}
	want := map[string]bool{
		"BenchmarkIngestDecode": false,
		"BenchmarkIngestDedup":  false,
		"BenchmarkIngestUpdate": false,
	}
	for _, r := range stages.Rows {
		if _, ok := want[r.Label]; !ok {
			t.Errorf("unexpected stage row %q", r.Label)
			continue
		}
		want[r.Label] = true
		if len(r.Values) != 2 || r.Values[0] <= 0 || r.Values[1] <= 0 {
			t.Errorf("stage %s: bad values %v", r.Label, r.Values)
		}
	}
	for label, seen := range want {
		if !seen {
			t.Errorf("stages table missing %s", label)
		}
	}
	// Decode must be far cheaper than the full front half — it is one
	// stage of it. A violation means the measurement harness is broken,
	// not the host slow, so this one is asserted.
	decode, _ := stages.Cell("BenchmarkIngestDecode", "s/Mread")
	update, _ := stages.Cell("BenchmarkIngestUpdate", "s/Mread")
	if decode >= update {
		t.Errorf("decode (%v s/Mread) should be cheaper than update (%v)", decode, update)
	}
}

// TestAblations runs the two design-choice ablations at quick scale.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	ap, err := AblationPartialInference(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + ap.String())
	sched, _ := ap.Cell("schedule l=1", "infer s/epoch")
	complete, _ := ap.Cell("complete-only", "infer s/epoch")
	if sched >= complete {
		t.Errorf("the partial schedule (%v s/epoch) must cost less than complete-only (%v)", sched, complete)
	}

	pr, err := AblationPruneThreshold(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + pr.String())
	c0, _ := pr.Cell("0.00", "cont err")
	c75, _ := pr.Cell("0.75", "cont err")
	if c75 < c0 {
		t.Logf("pruning at 0.75 did not hurt containment here (%v vs %v) — informational", c75, c0)
	}
}
