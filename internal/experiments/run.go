package experiments

import (
	"spire/internal/compress"
	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/graph"
	"spire/internal/inference"
	"spire/internal/metrics"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/smurf"
	"spire/internal/stream"
)

// runConfig describes one simulated trace fed through the substrate.
type runConfig struct {
	Sim         sim.Config
	Inference   inference.Config
	Graph       graph.Config
	Compression core.CompressionLevel

	// CollectEvents keeps the full output (and ground-truth) event
	// streams for event-based scoring.
	CollectEvents bool
}

// runOutput aggregates everything an experiment might score.
type runOutput struct {
	Acc         metrics.Accuracy
	Stats       core.Stats
	Events      []event.Event
	TruthEvents []event.Event
	Thefts      map[model.Tag]model.Epoch
	RawBytes    int64
	FinalEpoch  model.Epoch
	PeakObjects int
}

func levelOf(g model.Tag) model.Level {
	l, _ := epc.LevelOf(g)
	return l
}

func modelEpoch(v int64) model.Epoch { return model.Epoch(v) }

// run executes a full trace: simulator → substrate → metrics, maintaining
// the ground-truth level-1 stream alongside when events are collected.
func run(rc runConfig) (*runOutput, error) {
	return runWith(rc, nil)
}

// runCompleteOnly is run with the substrate told every reader is period 1,
// which makes the inference schedule complete-only (the partial-inference
// ablation's control arm); the simulator keeps the real periods.
func runCompleteOnly(rc runConfig) (*runOutput, error) {
	return runWith(rc, func(readers []model.Reader) []model.Reader {
		out := append([]model.Reader(nil), readers...)
		for i := range out {
			out[i].Period = 1
		}
		return out
	})
}

func runWith(rc runConfig, mapReaders func([]model.Reader) []model.Reader) (*runOutput, error) {
	s, err := sim.New(rc.Sim)
	if err != nil {
		return nil, err
	}
	readers := s.Readers()
	if mapReaders != nil {
		readers = mapReaders(readers)
	}
	sub, err := core.New(core.Config{
		Readers:       readers,
		Locations:     s.Locations(),
		Inference:     rc.Inference,
		Compression:   rc.Compression,
		Graph:         rc.Graph,
		KeepRawResult: true,
	})
	if err != nil {
		return nil, err
	}
	out := &runOutput{Thefts: make(map[model.Tag]model.Epoch)}
	truthComp := compress.NewLevel1(levelOf)
	entry := s.EntryLocation()
	world := s.World()
	exclude := func(g model.Tag) bool { return world.LocationOf(g) == entry }

	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return nil, err
		}
		out.RawBytes += int64(o.Total()) * stream.ReadingSize
		if n := world.Len(); n > out.PeakObjects {
			out.PeakObjects = n
		}
		po, err := sub.ProcessEpoch(o)
		if err != nil {
			return nil, err
		}
		// Accuracy is scored on the raw inference verdicts, as in the
		// paper's Expts 1-4; conflict resolution only shapes the output
		// stream (Expt 7).
		out.Acc.Observe(po.RawResult, world.LocationOf, world.ParentOf, exclude)
		if rc.CollectEvents {
			out.Events = append(out.Events, po.Events...)
			tr := s.TrueResult()
			out.TruthEvents = append(out.TruthEvents, truthComp.Compress(tr)...)
			for _, g := range s.Departed() {
				out.TruthEvents = append(out.TruthEvents, truthComp.Retire(g, s.Now())...)
			}
		}
	}
	end := s.Now() + 1
	closing := sub.Close(end)
	if rc.CollectEvents {
		out.Events = append(out.Events, closing...)
		out.TruthEvents = append(out.TruthEvents, truthComp.Close(end)...)
	}
	for _, th := range s.Thefts() {
		out.Thefts[th.Case] = th.At
	}
	out.Stats = sub.Stats()
	out.FinalEpoch = s.Now()
	return out, nil
}

// runSMURF executes the SMURF baseline over the same kind of trace:
// adaptive smoothing → static-reader location inference → level-1
// compression, as the paper's comparison does.
func runSMURF(sc sim.Config, collect bool) (*runOutput, error) {
	s, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	cl, err := smurf.New(smurf.DefaultConfig(), s.Readers())
	if err != nil {
		return nil, err
	}
	comp := compress.NewLevel1(levelOf)
	truthComp := compress.NewLevel1(levelOf)
	out := &runOutput{Thefts: make(map[model.Tag]model.Epoch)}
	world := s.World()
	entry := s.EntryLocation()
	exclude := func(g model.Tag) bool { return world.LocationOf(g) == entry }

	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return nil, err
		}
		out.RawBytes += int64(o.Total()) * stream.ReadingSize
		res, err := cl.ProcessEpoch(o)
		if err != nil {
			return nil, err
		}
		out.Acc.Observe(res, world.LocationOf, world.ParentOf, exclude)
		evs := comp.Compress(res)
		out.Stats.Events += int64(len(evs))
		out.Stats.EventBytes += event.StreamSize(evs)
		if collect {
			out.Events = append(out.Events, evs...)
			tr := s.TrueResult()
			out.TruthEvents = append(out.TruthEvents, truthComp.Compress(tr)...)
			for _, g := range s.Departed() {
				out.TruthEvents = append(out.TruthEvents, truthComp.Retire(g, s.Now())...)
			}
		}
	}
	end := s.Now() + 1
	closing := comp.Close(end)
	out.Stats.Events += int64(len(closing))
	out.Stats.EventBytes += event.StreamSize(closing)
	if collect {
		out.Events = append(out.Events, closing...)
		out.TruthEvents = append(out.TruthEvents, truthComp.Close(end)...)
	}
	for _, th := range s.Thefts() {
		out.Thefts[th.Case] = th.At
	}
	out.FinalEpoch = s.Now()
	return out, nil
}
