package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"spire/internal/dedup"
	"spire/internal/epc"
	"spire/internal/graph"
	"spire/internal/model"
	"spire/internal/stream"
)

// The ingest benchmark measures the front half of the pipeline — the
// work ProcessBatch does before inference takes over: deduplication and
// the graph update. The perfGrower's 256 shelves would drown a 10^6-tag
// population in quadratic co-location edges, so this grower scales the
// shelf count with the population instead: every shelf holds exactly one
// belt-confirmed case group, which keeps each shelf a small independent
// component — the workload the reader-group-parallel update is built
// for, and a realistic picture of a large warehouse (many locations,
// bounded co-location).
const (
	ingestShelfPeriod   = 60              // staggered scan cycle, as elsewhere
	ingestItems         = 20              // items per case
	ingestGroupSize     = ingestItems + 1 // one case group per shelf
	ingestReadRate      = 0.95
	ingestBuildPerEpoch = 64 // belt confirmations per build epoch
)

// ingestEpoch is one steady-state epoch in both representations: the
// columnar batch the batched path consumes and the equivalent
// observation the reference path consumes. A generated segment feeds
// exactly one measured pass, so each path sees fresh input.
type ingestEpoch struct {
	b model.Batch
	o *model.Observation
}

type ingestGrower struct {
	g       *graph.Graph
	ded     *dedup.Deduplicator
	seq     *epc.Sequencer
	rng     *rand.Rand
	now     model.Epoch
	belt    model.Reader
	shelves []model.Reader
	byID    map[model.ReaderID]*model.Reader
	// occupants[i] holds the case group parked on shelf i.
	occupants [][]model.Tag
	seg       []ingestEpoch   // reused segment buffer
	rs        []*model.Reader // reused group→reader scratch
}

func newIngestGrower(targetTags int) (*ingestGrower, error) {
	g, err := graph.New(graph.Config{})
	if err != nil {
		return nil, err
	}
	seq, err := epc.NewSequencer(9)
	if err != nil {
		return nil, err
	}
	shelves := (targetTags + ingestGroupSize - 1) / ingestGroupSize
	p := &ingestGrower{
		g:         g,
		ded:       dedup.New(),
		seq:       seq,
		rng:       rand.New(rand.NewSource(17)),
		belt:      model.Reader{ID: 1, Location: 0, Period: 1, Confirming: true, ConfirmLevel: model.LevelCase},
		byID:      make(map[model.ReaderID]*model.Reader, shelves+1),
		occupants: make([][]model.Tag, shelves),
	}
	for i := 0; i < shelves; i++ {
		p.shelves = append(p.shelves, model.Reader{
			ID:       model.ReaderID(10 + i),
			Location: model.LocationID(1 + i),
			Period:   ingestShelfPeriod,
		})
	}
	p.byID[p.belt.ID] = &p.belt
	for i := range p.shelves {
		p.byID[p.shelves[i].ID] = &p.shelves[i]
	}
	return p, nil
}

// Population returns the number of tags parked on shelves.
func (p *ingestGrower) Population() int { return len(p.shelves) * ingestGroupSize }

// populate confirms one case group per shelf on the belt, then settles
// for a full scan period through the reference path, so first-contact
// edge creation and dedup's first sight of every tag stay out of the
// timed steady state.
func (p *ingestGrower) populate() error {
	for i := range p.shelves {
		if i%ingestBuildPerEpoch == 0 {
			p.now++
		}
		group := make([]model.Tag, 0, ingestGroupSize)
		ctag, err := p.seq.Next(model.LevelCase)
		if err != nil {
			return err
		}
		group = append(group, ctag)
		for k := 0; k < ingestItems; k++ {
			itag, err := p.seq.Next(model.LevelItem)
			if err != nil {
				return err
			}
			group = append(group, itag)
		}
		if err := p.g.Update(&p.belt, group, p.now); err != nil {
			return err
		}
		p.occupants[i] = group
	}
	p.genSegment()
	for i := range p.seg {
		if err := p.refEpoch(&p.seg[i]); err != nil {
			return err
		}
	}
	return nil
}

// genSegment fills the reused segment buffer with one full scan period
// of steady-state epochs — every shelf fires exactly once — and returns
// the raw reading count. Generation is untimed; only the measured path
// consumes the segment.
func (p *ingestGrower) genSegment() int64 {
	if cap(p.seg) < ingestShelfPeriod {
		p.seg = make([]ingestEpoch, ingestShelfPeriod)
	}
	p.seg = p.seg[:ingestShelfPeriod]
	var readings int64
	for k := range p.seg {
		p.now++
		e := &p.seg[k]
		e.b.Reset(p.now)
		if e.o == nil {
			e.o = model.NewObservation(p.now)
		}
		e.o.Time = p.now
		clear(e.o.ByReader)
		for i := range p.shelves {
			if (int(p.now)+i)%ingestShelfPeriod != 0 {
				continue
			}
			r := &p.shelves[i]
			e.b.BeginReader(r.ID)
			for _, g := range p.occupants[i] {
				if p.rng.Float64() < ingestReadRate {
					e.b.Append(g)
				}
			}
			tags := e.b.GroupTags(len(e.b.Groups) - 1)
			// The observation gets its own copies: Clean mutates them.
			e.o.ByReader[r.ID] = append([]model.Tag(nil), tags...)
			readings += int64(len(tags))
		}
	}
	return readings
}

// refEpoch is the ProcessEpoch front half: serial dedup over the
// observation map, then one graph.Update per reader in ascending order.
func (p *ingestGrower) refEpoch(e *ingestEpoch) error {
	p.ded.Clean(e.o)
	for i := range e.b.Groups {
		id := e.b.Groups[i].Reader
		if err := p.g.Update(p.byID[id], e.o.ByReader[id], e.b.Time); err != nil {
			return err
		}
	}
	return nil
}

// batchEpoch is the ProcessBatch front half: sharded dedup over the tag
// column, then one reader-group-parallel graph update. The group→reader
// resolution is timed, exactly as in core.
func (p *ingestGrower) batchEpoch(e *ingestEpoch, workers int) error {
	p.ded.CleanBatch(&e.b)
	rs := p.rs[:0]
	for i := range e.b.Groups {
		rs = append(rs, p.byID[e.b.Groups[i].Reader])
	}
	p.rs = rs
	return p.g.UpdateBatch(&e.b, rs, workers)
}

// measure runs one ingest path over freshly generated segments until at
// least minReadings raw readings have been pushed through it, and
// returns readings per second of timed path work.
func (p *ingestGrower) measure(minReadings int64, path func(*ingestEpoch) error) (float64, error) {
	var readings int64
	var elapsed time.Duration
	for readings < minReadings {
		readings += p.genSegment()
		start := time.Now()
		for i := range p.seg {
			if err := path(&p.seg[i]); err != nil {
				return 0, err
			}
		}
		elapsed += time.Since(start)
	}
	return float64(readings) / elapsed.Seconds(), nil
}

// measureDecode times the columnar wire decode: one steady-state segment
// serialized once, then BatchReader passes over it until minReadings.
func (p *ingestGrower) measureDecode(minReadings int64) (float64, error) {
	n := p.genSegment()
	var buf bytes.Buffer
	w := stream.NewWriter(&buf)
	for i := range p.seg {
		if err := w.WriteBatch(&p.seg[i].b); err != nil {
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	raw := buf.Bytes()
	var b model.Batch
	var readings int64
	var elapsed time.Duration
	for readings < minReadings {
		br := stream.NewBatchReader(bytes.NewReader(raw))
		start := time.Now()
		for {
			err := br.ReadBatch(&b)
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, err
			}
		}
		elapsed += time.Since(start)
		readings += n
	}
	return float64(readings) / elapsed.Seconds(), nil
}

// measureDedup times CleanBatch alone over fresh segments, serial.
func (p *ingestGrower) measureDedup(minReadings int64) (float64, error) {
	p.ded.SetWorkers(1)
	var readings int64
	var elapsed time.Duration
	for readings < minReadings {
		readings += p.genSegment()
		for i := range p.seg {
			e := &p.seg[i]
			start := time.Now()
			p.ded.CleanBatch(&e.b)
			elapsed += time.Since(start)
		}
	}
	return float64(readings) / elapsed.Seconds(), nil
}

// measureUpdate times UpdateBatch alone over fresh segments, serial; the
// group→reader resolution stays outside the timed region so the row is
// purely the graph stage.
func (p *ingestGrower) measureUpdate(minReadings int64) (float64, error) {
	var readings int64
	var elapsed time.Duration
	for readings < minReadings {
		readings += p.genSegment()
		for i := range p.seg {
			e := &p.seg[i]
			rs := p.rs[:0]
			for j := range e.b.Groups {
				rs = append(rs, p.byID[e.b.Groups[j].Reader])
			}
			p.rs = rs
			start := time.Now()
			if err := p.g.UpdateBatch(&e.b, rs, 1); err != nil {
				return 0, err
			}
			elapsed += time.Since(start)
		}
	}
	return float64(readings) / elapsed.Seconds(), nil
}

// BenchIngest measures ingest front-half throughput — dedup plus graph
// update, the work upstream of inference — at tag populations up to 10^6,
// comparing the reference epoch path (serial Clean + one graph.Update per
// reader) against the columnar batched path at worker widths 1 and
// GOMAXPROCS. A second table reports per-stage serial throughput (wire
// decode, dedup, update) at the largest population; those rows are the
// BenchmarkIngest{Decode,Dedup,Update} baseline entries spirebenchdiff
// gates.
func BenchIngest(o Options) ([]*Table, error) {
	targets := []int{10_000, 100_000, 1_000_000}
	minReadings := int64(1_000_000)
	if o.Quick {
		targets = []int{10_000, 50_000}
		minReadings = 200_000
	}
	wide := runtime.GOMAXPROCS(0)
	main := &Table{
		ID:        "bench-ingest",
		Title:     "Ingest front-half throughput (readings/s) vs tag population",
		RowHeader: "tags",
		Columns:   []string{"ref r/s", "batch w1 r/s", "batch wN r/s", "speedup"},
	}
	stages := &Table{
		ID:        "ingest-stages",
		Title:     "Batched ingest per-stage serial throughput at the largest population",
		RowHeader: "stage",
		Columns:   []string{"Mread/s", "s/Mread"},
	}
	// Cells run serially on purpose: the wN column and the speedup are
	// parallel measurements, and concurrent cells would contend for the
	// cores they are trying to use.
	for ti, target := range targets {
		p, err := newIngestGrower(target)
		if err != nil {
			return nil, err
		}
		if err := p.populate(); err != nil {
			return nil, err
		}
		p.ded.SetWorkers(1)
		ref, err := p.measure(minReadings, p.refEpoch)
		if err != nil {
			return nil, err
		}
		b1, err := p.measure(minReadings, func(e *ingestEpoch) error { return p.batchEpoch(e, 1) })
		if err != nil {
			return nil, err
		}
		p.ded.SetWorkers(wide)
		bn, err := p.measure(minReadings, func(e *ingestEpoch) error { return p.batchEpoch(e, wide) })
		if err != nil {
			return nil, err
		}
		main.AddRow(fmt.Sprintf("%d", p.Population()), ref, b1, bn, bn/ref)

		if ti == len(targets)-1 {
			type stage struct {
				label string
				fn    func(int64) (float64, error)
			}
			for _, st := range []stage{
				{"BenchmarkIngestDecode", p.measureDecode},
				{"BenchmarkIngestDedup", p.measureDedup},
				{"BenchmarkIngestUpdate", p.measureUpdate},
			} {
				rps, err := st.fn(minReadings)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", st.label, err)
				}
				stages.AddRow(st.label, rps/1e6, 1e6/rps)
			}
		}
	}
	main.Notes = append(main.Notes,
		fmt.Sprintf("wN = GOMAXPROCS = %d on this host; absolute readings/s are host-dependent", wide),
		"one belt-confirmed case group per shelf: components stay small and independent, the workload reader-group parallelism targets",
		"front half only (dedup + graph update); inference/compression are measured by table3 and infercomp",
		"cells run serially so the parallel columns measure an otherwise idle machine")
	stages.Notes = append(stages.Notes,
		"serial (width 1) so the gated baseline is comparable across hosts with different core counts")
	return []*Table{main, stages}, nil
}
