package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"spire/internal/epc"
	"spire/internal/graph"
	"spire/internal/inference"
	"spire/internal/model"
)

// perfGrower builds large graphs quickly for the efficiency experiments
// (Expts 5-6). The full warehouse simulator funnels every case through a
// single receiving belt, which caps throughput far below what a 175k-object
// graph needs, so the grower plays the same reader interactions directly:
// each pallet group is confirmed by a belt reader (one case at a time, as
// the special-reader semantics require) and then parked on one of many
// shelves, whose readers scan on a staggered one-minute cycle. The
// resulting graph has the same structure the warehouse produces — layered
// nodes, confirmed parent edges, and quadratic co-location edges among the
// objects sharing a shelf.
type perfGrower struct {
	g       *graph.Graph
	inf     *inference.Inferencer
	seq     *epc.Sequencer
	rng     *rand.Rand
	now     model.Epoch
	belt    model.Reader
	shelves []model.Reader
	// occupants[i] holds the tags parked on shelf i.
	occupants [][]model.Tag
	readRate  float64
}

const (
	perfShelves     = 256
	perfShelfPeriod = 60
	perfCases       = 8
	perfItems       = 20
)

func newPerfGrower(prune float64, readRate float64) (*perfGrower, error) {
	icfg := inference.DefaultConfig()
	icfg.PruneThreshold = prune
	return newPerfGrowerCfg(icfg, readRate)
}

// newPerfGrowerCfg is newPerfGrower with full control of the inference
// configuration (worker pool, settled-slab cache), for the
// component-sharding experiment. Growers built with the same
// configuration-independent parameters produce identical graphs: the rng
// seed is fixed and inference never feeds back into the read schedule.
func newPerfGrowerCfg(icfg inference.Config, readRate float64) (*perfGrower, error) {
	g, err := graph.New(graph.Config{})
	if err != nil {
		return nil, err
	}
	inf, err := inference.New(icfg, g.Config().HistorySize)
	if err != nil {
		return nil, err
	}
	seq, err := epc.NewSequencer(9)
	if err != nil {
		return nil, err
	}
	p := &perfGrower{
		g:         g,
		inf:       inf,
		seq:       seq,
		rng:       rand.New(rand.NewSource(11)),
		belt:      model.Reader{ID: 1, Location: 0, Period: 1, Confirming: true, ConfirmLevel: model.LevelCase},
		occupants: make([][]model.Tag, perfShelves),
		readRate:  readRate,
	}
	for i := 0; i < perfShelves; i++ {
		p.shelves = append(p.shelves, model.Reader{
			ID:       model.ReaderID(10 + i),
			Location: model.LocationID(1 + i),
			Period:   perfShelfPeriod,
		})
	}
	return p, nil
}

// injectPallet creates one pallet group, confirms each case on the belt,
// and parks the group on a shelf.
func (p *perfGrower) injectPallet() error {
	shelf := p.rng.Intn(perfShelves)
	for c := 0; c < perfCases; c++ {
		ctag, err := p.seq.Next(model.LevelCase)
		if err != nil {
			return err
		}
		group := []model.Tag{ctag}
		for i := 0; i < perfItems; i++ {
			itag, err := p.seq.Next(model.LevelItem)
			if err != nil {
				return err
			}
			group = append(group, itag)
		}
		// Belt confirmation scan: the case with its items, alone.
		if err := p.g.Update(&p.belt, group, p.now); err != nil {
			return err
		}
		p.occupants[shelf] = append(p.occupants[shelf], group...)
	}
	return nil
}

// shelfScan runs the shelf readers whose staggered cycle fires this epoch.
func (p *perfGrower) shelfScan() error {
	for i := range p.shelves {
		if (int(p.now)+i)%perfShelfPeriod != 0 {
			continue
		}
		tags := p.occupants[i]
		if len(tags) == 0 {
			continue
		}
		read := tags
		if p.readRate < 1 {
			read = read[:0:0]
			for _, g := range tags {
				if p.rng.Float64() < p.readRate {
					read = append(read, g)
				}
			}
		}
		if err := p.g.Update(&p.shelves[i], read, p.now); err != nil {
			return err
		}
	}
	return nil
}

// grow advances epochs, injecting pallets, until the graph holds at least
// target nodes; inference (and hence pruning, when enabled) runs on the
// complete-inference cycle.
func (p *perfGrower) grow(target int, palletsPerEpoch int) error {
	for p.g.Len() < target {
		p.now++
		for k := 0; k < palletsPerEpoch && p.g.Len() < target; k++ {
			if err := p.injectPallet(); err != nil {
				return err
			}
		}
		if err := p.shelfScan(); err != nil {
			return err
		}
		if p.now%perfShelfPeriod == 0 {
			p.inf.Infer(p.g, p.now, inference.Complete)
		}
	}
	// One settling minute so every shelf has been scanned at the final
	// population, then one complete inference to apply pruning at size.
	for k := 0; k < perfShelfPeriod; k++ {
		p.now++
		if err := p.shelfScan(); err != nil {
			return err
		}
	}
	p.inf.Infer(p.g, p.now, inference.Complete)
	return nil
}

// measure times steady-state epochs at the reached size: the full graph
// update for the epoch's active readers plus one complete inference pass.
func (p *perfGrower) measure(epochs int) (updateSec, inferSec float64, err error) {
	var upd, infd time.Duration
	for k := 0; k < epochs; k++ {
		p.now++
		start := time.Now()
		if err := p.shelfScan(); err != nil {
			return 0, 0, err
		}
		upd += time.Since(start)
		start = time.Now()
		p.inf.Infer(p.g, p.now, inference.Complete)
		infd += time.Since(start)
	}
	n := float64(epochs)
	return upd.Seconds() / n, infd.Seconds() / n, nil
}

// measureInfer times steady-state complete-inference passes (one per
// epoch, after that epoch's shelf scans) and reports the average fraction
// of nodes actually swept rather than served from the settled-slab cache.
// The warm epochs let components settle into the cache before timing.
func (p *perfGrower) measureInfer(warm, epochs int) (inferSec, dirtyFrac float64, err error) {
	for k := 0; k < warm; k++ {
		p.now++
		if err := p.shelfScan(); err != nil {
			return 0, 0, err
		}
		p.inf.Infer(p.g, p.now, inference.Complete)
	}
	var infd time.Duration
	var swept, total float64
	for k := 0; k < epochs; k++ {
		p.now++
		if err := p.shelfScan(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		p.inf.Infer(p.g, p.now, inference.Complete)
		infd += time.Since(start)
		st := p.inf.LastStats()
		swept += float64(st.NodesInferred)
		total += float64(st.NodesInferred + st.NodesCached)
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("infercomp: no nodes visited")
	}
	return infd.Seconds() / float64(epochs), swept / total, nil
}

// Table3 reproduces the processing-speed experiment (Expt 5): per-epoch
// graph update and complete-inference cost at increasing node counts.
func Table3(o Options) (*Table, error) {
	targets := []int{25000, 55000, 75000, 95000, 135000, 155000, 175000}
	epochs := 5
	if o.Quick {
		targets = []int{5000, 15000, 30000}
		epochs = 3
	}
	t := &Table{
		ID:        "table3",
		Title:     "Costs of update and inference operations, seconds per epoch (Expt 5)",
		RowHeader: "objects",
		Columns:   []string{"update", "inference", "total"},
	}
	type t3cell struct {
		nodes      int
		upd, infer float64
	}
	cells := make([]t3cell, len(targets))
	err := runCells(len(targets), o.Workers, func(i int) error {
		p, err := newPerfGrower(0.25, 0.95)
		if err != nil {
			return err
		}
		if err := p.grow(targets[i], 2); err != nil {
			return err
		}
		upd, infd, err := p.measure(epochs)
		if err != nil {
			return err
		}
		cells[i] = t3cell{nodes: p.g.Len(), upd: upd, infer: infd}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		t.AddRow(fmt.Sprintf("%d", c.nodes), c.upd, c.infer, c.upd+c.infer)
	}
	t.Notes = append(t.Notes,
		"paper shape: both costs well under the 1 s epoch, inference dominating; roughly linear growth in node count",
		"measured with edge pruning at 0.25 (the paper's suggested default for large graphs)")
	return t, nil
}

// Fig10 reproduces the memory experiment (Expt 6): resident graph size at
// increasing node counts under different edge-pruning thresholds.
func Fig10(o Options) (*Table, error) {
	targets := []int{25000, 75000, 135000, 175000}
	if o.Quick {
		targets = []int{5000, 15000, 30000}
	}
	thresholds := []float64{0, 0.25, 0.5, 0.75}
	t := &Table{
		ID:        "fig10",
		Title:     "Graph memory (MB) vs node count and prune threshold (Expt 6)",
		RowHeader: "objects",
	}
	for _, th := range thresholds {
		t.Columns = append(t.Columns, fmt.Sprintf("prune=%.2f", th))
	}
	t.Columns = append(t.Columns, "edges@0", "edges@0.50")
	type f10cell struct {
		mb    float64
		edges int
	}
	nc := len(thresholds)
	cells := make([]f10cell, len(targets)*nc)
	err := runCells(len(cells), o.Workers, func(i int) error {
		p, err := newPerfGrower(thresholds[i%nc], 0.95)
		if err != nil {
			return err
		}
		if err := p.grow(targets[i/nc], 2); err != nil {
			return err
		}
		cells[i] = f10cell{mb: float64(p.g.ApproxBytes()) / (1 << 20), edges: p.g.EdgeCount()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r, target := range targets {
		row := Row{Label: fmt.Sprintf("%d", target)}
		var edges0, edgesHalf float64
		for c, th := range thresholds {
			cell := cells[r*nc+c]
			row.Values = append(row.Values, cell.mb)
			if th == 0 {
				edges0 = float64(cell.edges)
			}
			if th == 0.5 {
				edgesHalf = float64(cell.edges)
			}
		}
		row.Values = append(row.Values, edges0, edgesHalf)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: without pruning memory grows fast; thresholds ≥0.5 keep growth linear in node count")
	return t, nil
}
