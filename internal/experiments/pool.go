package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runCells executes fn(i) for every cell index in [0, n) on a bounded
// worker pool. Every sweep cell of the evaluation is a self-contained
// simulator+substrate run (its own rng, graph, and inferencer), so cells
// can run concurrently; callers store each cell's output into a pre-sized
// slot keyed by index, which keeps table row order — and hence rendered
// output — identical for any worker count.
//
// workers ≤ 0 means runtime.NumCPU(). With one worker (or one cell) the
// cells run inline on the calling goroutine, preserving the serial
// behavior exactly. On error every started cell still completes; the
// lowest-indexed error is returned so failures are deterministic too.
func runCells(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		errs = make([]error, n)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sweepGrid evaluates an nr×nc sweep — one independent trace per cell —
// and returns the row-major value grid, filled in deterministic slots.
func sweepGrid(o Options, nr, nc int, cell func(r, c int) (float64, error)) ([][]float64, error) {
	flat := make([]float64, nr*nc)
	err := runCells(nr*nc, o.Workers, func(i int) error {
		v, err := cell(i/nc, i%nc)
		if err != nil {
			return err
		}
		flat[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, nr)
	for r := range rows {
		rows[r] = flat[r*nc : (r+1)*nc : (r+1)*nc]
	}
	return rows, nil
}
