package experiments

import (
	"fmt"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/metrics"
	"spire/internal/sim"
)

// outputSim is the Expt 7/8 workload: a long trace reaching a steady-state
// population (the paper uses 16 h with ~2860 objects), swept over read
// rates.
func outputSim(o Options) sim.Config {
	c := sim.DefaultConfig()
	if o.Quick {
		c.Duration = 2400
		c.PalletInterval = 120
		c.ItemsPerCase = 8
		c.ShelfTime = 900
	} else {
		c.Duration = 16 * 3600
		c.PalletInterval = 300
		c.ShelfTime = 3600
	}
	return c
}

// readRates is the Expt 7/8 sweep.
func readRates(o Options) []float64 {
	if o.Quick {
		return []float64{0.5, 0.7, 0.85, 1.0}
	}
	return []float64{0.5, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0}
}

// eventTolerance is the Vs slack allowed when matching output events to
// ground-truth events: interpretation can lag a transition by missed
// readings, and the slowest reader bounds that lag.
const eventTolerance = 60

// fig11Point holds every Expt 7/8 measurement for one read rate.
type fig11Point struct {
	rate float64

	spireF, smurfF float64 // F-measure, location events only

	// Compression ratios (output bytes / raw input bytes).
	smurfLoc, l1Loc, l2Loc    float64 // location events only (Fig 11b)
	l1Full, l2Full            float64 // location + containment (Fig 11c)
	rawBytes                  int64
	truthEvents, spireEvents  int
	smurfEvents, spireL2Evens int
}

// Fig11 runs the Expt 7/8 sweep once and derives all three artifacts:
// Fig 11(a) F-measure, Fig 11(b) location-only compression ratios, and
// Fig 11(c) full-stream compression ratios.
func Fig11(o Options) (a, b, c *Table, err error) {
	rates := readRates(o)
	points := make([]fig11Point, len(rates))
	err = runCells(len(rates), o.Workers, func(i int) error {
		rr := rates[i]
		pt := fig11Point{rate: rr}

		// SPIRE level 1.
		rc := runConfig{Sim: outputSim(o), Inference: inference.DefaultConfig(),
			Compression: core.Level1, CollectEvents: true}
		rc.Sim.ReadRate = rr
		l1, err := run(rc)
		if err != nil {
			return err
		}
		outLoc, outCont := event.SplitStreams(l1.Events)
		truthLoc, truthCont := event.SplitStreams(l1.TruthEvents)
		pt.spireF = metrics.ScoreEvents(outLoc, truthLoc, eventTolerance).F
		pt.rawBytes = l1.RawBytes
		pt.l1Loc = metrics.Ratio(event.StreamSize(outLoc), l1.RawBytes)
		pt.l1Full = metrics.Ratio(event.StreamSize(l1.Events), l1.RawBytes)
		pt.truthEvents = len(truthLoc) + len(truthCont)
		pt.spireEvents = len(l1.Events)
		_ = outCont

		// SPIRE level 2 (same trace seed, fresh run).
		rc.Compression = core.Level2
		l2, err := run(rc)
		if err != nil {
			return err
		}
		l2Loc, _ := event.SplitStreams(l2.Events)
		pt.l2Loc = metrics.Ratio(event.StreamSize(l2Loc), l2.RawBytes)
		pt.l2Full = metrics.Ratio(event.StreamSize(l2.Events), l2.RawBytes)
		pt.spireL2Evens = len(l2.Events)

		// SMURF baseline (locations only by construction).
		sc := outputSim(o)
		sc.ReadRate = rr
		sm, err := runSMURF(sc, true)
		if err != nil {
			return err
		}
		smLoc, _ := event.SplitStreams(sm.Events)
		smTruthLoc, _ := event.SplitStreams(sm.TruthEvents)
		pt.smurfF = metrics.ScoreEvents(smLoc, smTruthLoc, eventTolerance).F
		pt.smurfLoc = metrics.Ratio(event.StreamSize(smLoc), sm.RawBytes)
		pt.smurfEvents = len(sm.Events)

		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}

	a = &Table{
		ID:        "fig11a",
		Title:     "F-measure of location events, SPIRE vs SMURF (Expt 7)",
		RowHeader: "read rate",
		Columns:   []string{"SPIRE", "SMURF"},
		Notes: []string{
			"paper shape: SPIRE above SMURF across the sweep, widest gap at low read rates",
		},
	}
	b = &Table{
		ID:        "fig11b",
		Title:     "Compression ratio, location events only (Expt 8)",
		RowHeader: "read rate",
		Columns:   []string{"SMURF", "SPIRE L1", "SPIRE L2"},
		Notes: []string{
			"paper shape: SMURF comparable to L1 at high rates, worse below ~0.7; L2 beats L1 above the ~0.65 crossover",
		},
	}
	c = &Table{
		ID:        "fig11c",
		Title:     "Compression ratio incl. containment (Expt 8)",
		RowHeader: "read rate",
		Columns:   []string{"L1 full", "L2 full", "L1 loc-only", "L2 loc-only"},
		Notes: []string{
			"paper shape: same L1/L2 tradeoff as Fig 11(b); at read rates ≥0.8 containment adds only a small fraction",
		},
	}
	for _, pt := range points {
		label := fmt.Sprintf("%.2f", pt.rate)
		a.AddRow(label, pt.spireF, pt.smurfF)
		b.AddRow(label, pt.smurfLoc, pt.l1Loc, pt.l2Loc)
		c.AddRow(label, pt.l1Full, pt.l2Full, pt.l1Loc, pt.l2Loc)
	}
	return a, b, c, nil
}

// Fig11a returns just the Expt 7 F-measure table.
func Fig11a(o Options) (*Table, error) {
	a, _, _, err := Fig11(o)
	return a, err
}

// Fig11b returns just the location-only compression table.
func Fig11b(o Options) (*Table, error) {
	_, b, _, err := Fig11(o)
	return b, err
}

// Fig11c returns just the full-stream compression table.
func Fig11c(o Options) (*Table, error) {
	_, _, c, err := Fig11(o)
	return c, err
}
