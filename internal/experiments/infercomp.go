package experiments

import (
	"fmt"

	"spire/internal/inference"
)

// InferComp measures the component-sharded inference path of Table III's
// workload at three operating points: the serial full re-sweep (cache
// off, one worker — the pre-sharding cost model), a 4-worker pool over
// dirty components, and the incremental steady state where clean
// components are served from the settled-slab cache. All three run the
// same deterministic grower (fixed rng seed, inference never feeds back
// into the read schedule), so the graphs — and the emitted verdicts,
// pinned elsewhere byte-for-byte — are identical across columns; only the
// wall clock and the swept-node accounting differ.
func InferComp(o Options) (*Table, error) {
	targets := []int{25000, 95000, 175000}
	warm, epochs := 8, 5
	if o.Quick {
		targets = []int{5000, 15000, 30000}
		warm, epochs = 8, 3
	}
	t := &Table{
		ID:        "infercomp",
		Title:     "Component-sharded inference, seconds per complete pass",
		RowHeader: "objects",
		Columns:   []string{"serial", "workers=4", "cached", "speedup", "dirty-frac"},
	}

	type variant struct {
		workers      int
		disableCache bool
	}
	variants := []variant{
		{workers: 1, disableCache: true},  // serial full sweep
		{workers: 4, disableCache: true},  // worker pool, no cache
		{workers: 1, disableCache: false}, // incremental steady state
	}
	type iccell struct {
		nodes     int
		inferSec  float64
		dirtyFrac float64
	}
	nv := len(variants)
	cells := make([]iccell, len(targets)*nv)
	err := runCells(len(cells), o.Workers, func(i int) error {
		v := variants[i%nv]
		icfg := inference.DefaultConfig()
		icfg.PruneThreshold = 0.25
		icfg.Workers = v.workers
		icfg.DisableCache = v.disableCache
		p, err := newPerfGrowerCfg(icfg, 0.95)
		if err != nil {
			return err
		}
		if err := p.grow(targets[i/nv], 2); err != nil {
			return err
		}
		sec, frac, err := p.measureInfer(warm, epochs)
		if err != nil {
			return err
		}
		cells[i] = iccell{nodes: p.g.Len(), inferSec: sec, dirtyFrac: frac}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range targets {
		serial := cells[r*nv]
		par := cells[r*nv+1]
		cached := cells[r*nv+2]
		speedup := 0.0
		if cached.inferSec > 0 {
			speedup = serial.inferSec / cached.inferSec
		}
		t.AddRow(fmt.Sprintf("%d", serial.nodes),
			serial.inferSec, par.inferSec, cached.inferSec, speedup, cached.dirtyFrac)
	}
	t.Notes = append(t.Notes,
		"identical outputs across all columns are pinned byte-for-byte by the core equivalence tests",
		"dirty-frac is the fraction of nodes actually swept per pass in steady state; its complement is served from the settled-slab cache",
		"on a single-CPU host the worker column measures sharding overhead, not speedup; the cached column is the incremental win")
	return t, nil
}
