package experiments

import (
	"fmt"

	"spire/internal/inference"
	"spire/internal/metrics"
	"spire/internal/sim"
)

// accuracySim returns the Section VI-B accuracy workload: 6 pallets/hour,
// 5 cases per pallet, 20 items per case, 1 h average shelving, read rate
// 0.85, 3 h duration. Quick mode compresses time by ~6× and lightens the
// cases so a sweep finishes in seconds per point.
func accuracySim(o Options) sim.Config {
	c := sim.DefaultConfig()
	if o.Quick {
		c.Duration = 1800
		c.PalletInterval = 150
		c.ShelfTime = 600
		c.ItemsPerCase = 8
	}
	return c
}

// shelfPeriods is the shelf-reader-frequency dimension the paper sweeps:
// once a second, once every 10 s, once a minute.
func shelfPeriods(o Options) []int64 {
	if o.Quick {
		return []int64{1, 30}
	}
	return []int64{1, 10, 60}
}

// Fig9a reproduces Expt 1: containment inference error as β varies, one
// series per shelf reader frequency, plus the adaptive-β heuristic.
func Fig9a(o Options) (*Table, error) {
	betas := []float64{0, 0.2, 0.4, 0.6, 0.85, 0.95, 1.0}
	if o.Quick {
		betas = []float64{0, 0.4, 0.85, 1.0}
	}
	periods := shelfPeriods(o)

	t := &Table{
		ID:        "fig9a",
		Title:     "Containment inference error rate vs β (Expt 1)",
		RowHeader: "beta",
	}
	for _, p := range periods {
		t.Columns = append(t.Columns, fmt.Sprintf("shelf=1/%ds", p))
	}
	// The last sweep row is the adaptive-β heuristic.
	vals, err := sweepGrid(o, len(betas)+1, len(periods), func(r, c int) (float64, error) {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ShelfPeriod = modelEpoch(periods[c])
		if r < len(betas) {
			rc.Inference.Beta = betas[r]
		} else {
			rc.Inference.AdaptiveBeta = true
		}
		out, err := run(rc)
		if err != nil {
			return 0, err
		}
		return out.Acc.ContainmentErrorRate(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, values := range vals {
		label := "adaptive"
		if r < len(betas) {
			label = fmt.Sprintf("%.2f", betas[r])
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: values})
	}
	t.Notes = append(t.Notes,
		"paper shape: high β degrades under noisy (frequent) shelf readers; low β and adaptive β track the best setting",
		"S=32, α=0 fixed as in the paper")
	return t, nil
}

// Fig9b reproduces Expt 2 (γ sweep): location inference error as γ varies.
func Fig9b(o Options) (*Table, error) {
	gammas := []float64{0, 0.15, 0.3, 0.45, 0.6, 0.8, 1.0}
	if o.Quick {
		gammas = []float64{0, 0.3, 0.6, 1.0}
	}
	periods := shelfPeriods(o)
	t := &Table{
		ID:        "fig9b",
		Title:     "Location inference error rate vs γ (Expt 2)",
		RowHeader: "gamma",
	}
	for _, p := range periods {
		t.Columns = append(t.Columns, fmt.Sprintf("shelf=1/%ds", p))
	}
	vals, err := sweepGrid(o, len(gammas), len(periods), func(r, c int) (float64, error) {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ShelfPeriod = modelEpoch(periods[c])
		rc.Inference.Gamma = gammas[r]
		out, err := run(rc)
		if err != nil {
			return 0, err
		}
		return out.Acc.LocationErrorRate(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, values := range vals {
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%.2f", gammas[r]), Values: values})
	}
	t.Notes = append(t.Notes,
		"paper shape: mid-range γ (0.15-0.45) balances last observation against containment; extremes degrade")
	return t, nil
}

// Fig9c reproduces Expt 2 (θ sweep): location inference error as the
// fading exponent varies.
func Fig9c(o Options) (*Table, error) {
	thetas := []float64{0.1, 0.35, 0.75, 1.25, 1.5, 2, 3}
	if o.Quick {
		thetas = []float64{0.1, 0.75, 1.25, 3}
	}
	periods := shelfPeriods(o)
	t := &Table{
		ID:        "fig9c",
		Title:     "Location inference error rate vs θ (Expt 2)",
		RowHeader: "theta",
	}
	for _, p := range periods {
		t.Columns = append(t.Columns, fmt.Sprintf("shelf=1/%ds", p))
	}
	vals, err := sweepGrid(o, len(thetas), len(periods), func(r, c int) (float64, error) {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ShelfPeriod = modelEpoch(periods[c])
		rc.Inference.Theta = thetas[r]
		out, err := run(rc)
		if err != nil {
			return 0, err
		}
		return out.Acc.LocationErrorRate(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, values := range vals {
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%.2f", thetas[r]), Values: values})
	}
	t.Notes = append(t.Notes,
		"paper shape: error declines from very low θ, flattens in the 1-2 range, degrades again for high θ")
	return t, nil
}

// Fig9d reproduces Expt 3: sensitivity of both inference tasks to the
// read rate.
func Fig9d(o Options) (*Table, error) {
	rates := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Quick {
		rates = []float64{0.5, 0.7, 0.85, 1.0}
	}
	t := &Table{
		ID:        "fig9d",
		Title:     "Inference error rate vs read rate (Expt 3)",
		RowHeader: "read rate",
		Columns:   []string{"location", "containment"},
	}
	vals := make([][]float64, len(rates))
	err := runCells(len(rates), o.Workers, func(i int) error {
		rc := runConfig{Sim: accuracySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ReadRate = rates[i]
		rc.Sim.ShelfPeriod = 60
		if o.Quick {
			rc.Sim.ShelfPeriod = 30
		}
		out, err := run(rc)
		if err != nil {
			return err
		}
		vals[i] = []float64{out.Acc.LocationErrorRate(), out.Acc.ContainmentErrorRate()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, rr := range rates {
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%.2f", rr), Values: vals[i]})
	}
	t.Notes = append(t.Notes,
		"paper shape: both errors below ~10% for read rates ≥0.8; containment degrades faster as the rate drops")
	return t, nil
}

// anomalySim is the Expt 4 workload: thefts at one removal per 100 s.
func anomalySim(o Options) sim.Config {
	c := accuracySim(o)
	c.TheftInterval = 100
	if o.Quick {
		c.TheftInterval = 60
	}
	return c
}

// Fig9e reproduces Expt 4 (error rate): inference error under the anomaly
// workload as θ varies.
func Fig9e(o Options) (*Table, error) {
	thetas := []float64{0.1, 0.35, 0.75, 1.25, 1.5, 2, 3}
	if o.Quick {
		thetas = []float64{0.1, 0.75, 1.25, 3}
	}
	periods := shelfPeriods(o)
	t := &Table{
		ID:        "fig9e",
		Title:     "Location error rate with anomalies vs θ (Expt 4)",
		RowHeader: "theta",
	}
	for _, p := range periods {
		t.Columns = append(t.Columns, fmt.Sprintf("shelf=1/%ds", p))
	}
	vals, err := sweepGrid(o, len(thetas), len(periods), func(r, c int) (float64, error) {
		rc := runConfig{Sim: anomalySim(o), Inference: inference.DefaultConfig()}
		rc.Sim.ShelfPeriod = modelEpoch(periods[c])
		rc.Inference.Theta = thetas[r]
		out, err := run(rc)
		if err != nil {
			return 0, err
		}
		return out.Acc.LocationErrorRate(), nil
	})
	if err != nil {
		return nil, err
	}
	for r, values := range vals {
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%.2f", thetas[r]), Values: values})
	}
	t.Notes = append(t.Notes,
		"paper shape: same U-shape as Fig 9(c); θ in 1-2 remains a good choice with anomalies present")
	return t, nil
}

// Fig9f reproduces Expt 4 (detection delay): mean epochs from theft to the
// Missing message as θ varies.
func Fig9f(o Options) (*Table, error) {
	thetas := []float64{0.35, 0.75, 1.25, 1.5, 2, 3}
	if o.Quick {
		thetas = []float64{0.35, 1.25, 3}
	}
	periods := shelfPeriods(o)
	t := &Table{
		ID:        "fig9f",
		Title:     "Anomaly detection delay (s) vs θ (Expt 4)",
		RowHeader: "theta",
	}
	for _, p := range periods {
		t.Columns = append(t.Columns,
			fmt.Sprintf("delay shelf=1/%ds", p), fmt.Sprintf("detected shelf=1/%ds", p))
	}
	nc := len(periods)
	// Two values per cell (mean delay, detected fraction), stride 2.
	flat := make([]float64, len(thetas)*nc*2)
	err := runCells(len(thetas)*nc, o.Workers, func(i int) error {
		r, c := i/nc, i%nc
		rc := runConfig{Sim: anomalySim(o), Inference: inference.DefaultConfig(), CollectEvents: true}
		rc.Sim.ShelfPeriod = modelEpoch(periods[c])
		rc.Inference.Theta = thetas[r]
		out, err := run(rc)
		if err != nil {
			return err
		}
		d := metrics.DetectionDelays(out.Events, out.Thefts)
		frac := 0.0
		if d.Total > 0 {
			frac = float64(d.Detected) / float64(d.Total)
		}
		flat[i*2], flat[i*2+1] = d.MeanDelay, frac
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range thetas {
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%.2f", thetas[r]),
			Values: flat[r*nc*2 : (r+1)*nc*2 : (r+1)*nc*2],
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: higher θ detects faster, especially under infrequent shelf readers; combined with Fig 9(e), θ in 1-2 remains optimal")
	return t, nil
}
