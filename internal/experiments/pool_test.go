package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCellsVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		n := 37
		counts := make([]atomic.Int32, n)
		err := runCells(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunCellsReturnsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := runCells(8, workers, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 6:
				return errHigh
			}
			return nil
		})
		if workers == 1 {
			// Serial mode stops at the first failing cell.
			if !errors.Is(err, errLow) {
				t.Errorf("workers=1: got %v, want %v", err, errLow)
			}
			continue
		}
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want lowest-indexed error %v", workers, err, errLow)
		}
	}
}

func TestSweepGridSlots(t *testing.T) {
	o := Options{Workers: 4}
	grid, err := sweepGrid(o, 3, 4, func(r, c int) (float64, error) {
		return float64(10*r + c), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range grid {
		for c := range grid[r] {
			if want := float64(10*r + c); grid[r][c] != want {
				t.Errorf("grid[%d][%d] = %v, want %v", r, c, grid[r][c], want)
			}
		}
	}
	boom := errors.New("boom")
	if _, err := sweepGrid(o, 2, 2, func(r, c int) (float64, error) {
		if r == 1 && c == 0 {
			return 0, boom
		}
		return 0, nil
	}); !errors.Is(err, boom) {
		t.Errorf("sweepGrid error = %v, want %v", err, boom)
	}
}

// TestParallelSerialEquivalence asserts the tentpole invariant: the
// rendered tables are byte-identical for any worker count. It runs two
// deterministic experiments (no timing columns) serially and with four
// workers and compares the full rendered output.
func TestParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	render := func(workers int) (string, error) {
		o := Options{Quick: true, Workers: workers}
		var out string
		f9d, err := Fig9d(o)
		if err != nil {
			return "", fmt.Errorf("fig9d: %w", err)
		}
		out += f9d.String()
		pr, err := AblationPruneThreshold(o)
		if err != nil {
			return "", fmt.Errorf("ablation-prune: %w", err)
		}
		out += pr.String()
		return out, nil
	}
	serial, err := render(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := render(4)
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Errorf("rendered tables differ between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}
