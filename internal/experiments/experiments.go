// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is a function returning a
// Table whose rows/series mirror what the paper plots; cmd/spirebench and
// the repository's benchmarks print them.
//
// Absolute numbers depend on the host and on this reproduction's
// simulator, but the shapes the paper reports — which technique wins,
// where parameter sweet spots and crossovers lie — are what these drivers
// are written to reproduce. EXPERIMENTS.md records paper-vs-measured for
// each artifact.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Options tunes experiment scale. The full configurations replicate the
// paper's workloads (multi-hour traces); Quick shrinks durations and sweep
// grids so the whole suite runs in minutes, preserving the shapes.
type Options struct {
	Quick bool

	// Workers caps how many sweep cells run concurrently; 0 means
	// runtime.NumCPU(). Results are collected into pre-sized slots, so
	// rendered tables are byte-identical for any worker count. Timing
	// columns (Table III, the partial-inference ablation) are measured
	// per cell and contend for cores when cells run concurrently; use
	// Workers = 1 when those absolute timings matter.
	Workers int
}

// Table is a printable experiment result: one labelled row per sweep
// point, one column per series.
type Table struct {
	ID        string // e.g. "fig9a"
	Title     string
	RowHeader string
	Columns   []string
	Rows      []Row
	Notes     []string
}

// Row is one sweep point.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := len(t.RowHeader)
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width, t.RowHeader)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "  %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "  %12.4f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Cell returns the value at (rowLabel, column), for tests and summaries.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Values) {
			return r.Values[ci], true
		}
	}
	return 0, false
}

// Registry maps experiment IDs to their drivers, for cmd/spirebench.
type Driver func(Options) ([]*Table, error)

// Registry returns all experiment drivers keyed by artifact ID.
func Registry() map[string]Driver {
	one := func(f func(Options) (*Table, error)) Driver {
		return func(o Options) ([]*Table, error) {
			t, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		}
	}
	return map[string]Driver{
		"fig9a":  one(Fig9a),
		"fig9b":  one(Fig9b),
		"fig9c":  one(Fig9c),
		"fig9d":  one(Fig9d),
		"fig9e":  one(Fig9e),
		"fig9f":  one(Fig9f),
		"table3": one(Table3),
		"fig10":  one(Fig10),
		"fig11a": one(Fig11a),
		"fig11b": one(Fig11b),
		"fig11c": one(Fig11c),
		"fig11": func(o Options) ([]*Table, error) {
			a, b, c, err := Fig11(o)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b, c}, nil
		},
		"bench-ingest":     BenchIngest,
		"bench-zones":      BenchZones,
		"cep":              one(CEPQuality),
		"cep-perf":         one(CEPPerf),
		"infercomp":        one(InferComp),
		"ablation-partial": one(AblationPartialInference),
		"ablation-prune":   one(AblationPruneThreshold),
	}
}

// IDs returns the registry keys in a stable order.
func IDs() []string {
	return []string{
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
		"table3", "fig10", "fig11", "fig11a", "fig11b", "fig11c",
		"bench-ingest", "bench-zones", "cep", "cep-perf",
		"infercomp", "ablation-partial", "ablation-prune",
	}
}
