// Command genfuzzcorpus regenerates the committed fuzz seed corpora under
// the packages' testdata/fuzz directories. Run it from the repository
// root after changing a wire or snapshot format:
//
//	go run ./internal/tools/genfuzzcorpus
//
// The committed corpus keeps the interesting inputs — a real snapshot, a
// torn stream, a bit-flipped body — in version control, so `go test` (and
// the CI fuzz smoke step) always exercises them as seeds even without a
// long fuzzing run.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"spire/internal/checkpoint"
	"spire/internal/core"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genfuzzcorpus:", err)
		os.Exit(1)
	}
}

// writeSeed writes one corpus entry in the `go test fuzz v1` encoding for
// a single []byte argument.
func writeSeed(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
}

func run() error {
	// Raw reading streams.
	var clean []byte
	for i := 0; i < 3; i++ {
		clean = stream.AppendReading(clean, model.Reading{
			Tag: model.Tag(i + 1), Reader: model.ReaderID(i%2 + 1), Time: model.Epoch(i),
		})
	}
	one := stream.AppendReading(nil, model.Reading{Tag: 0xDEADBEEF, Reader: 7, Time: 12345})
	decDir := "internal/stream/testdata/fuzz/FuzzDecodeReading"
	if err := writeSeed(decDir, "full-record", one); err != nil {
		return err
	}
	if err := writeSeed(decDir, "short-record", one[:stream.ReadingSize-3]); err != nil {
		return err
	}
	rdrDir := "internal/stream/testdata/fuzz/FuzzReader"
	if err := writeSeed(rdrDir, "clean-stream", clean); err != nil {
		return err
	}
	if err := writeSeed(rdrDir, "torn-stream", sim.TruncateMidRecord(clean, 2)); err != nil {
		return err
	}
	if err := writeSeed(rdrDir, "garbage", []byte("not a reading stream")); err != nil {
		return err
	}

	// Checkpoint container exercising every field type (kept in sync with
	// checkpoint.FuzzDecoder's read sequence).
	e := checkpoint.NewEncoder()
	e.Section("TEST")
	e.Uint64(42)
	e.Int64(-7)
	e.Bool(true)
	e.Float64(3.5)
	e.String("hello")
	e.Uint64(uint64(e.Len()))
	var ckpt bytes.Buffer
	if err := e.Flush(&ckpt); err != nil {
		return err
	}
	ckptDir := "internal/checkpoint/testdata/fuzz/FuzzDecoder"
	if err := writeSeed(ckptDir, "valid", ckpt.Bytes()); err != nil {
		return err
	}
	if err := writeSeed(ckptDir, "truncated", ckpt.Bytes()[:ckpt.Len()-3]); err != nil {
		return err
	}
	if err := writeSeed(ckptDir, "bad-magic", []byte("WRONGMAGIC-------------------")); err != nil {
		return err
	}

	// A real pipeline snapshot plus damaged variants.
	snap, err := buildSnapshot()
	if err != nil {
		return err
	}
	snapDir := "internal/core/testdata/fuzz/FuzzRestoreSnapshot"
	if err := writeSeed(snapDir, "valid-snapshot", snap); err != nil {
		return err
	}
	if err := writeSeed(snapDir, "truncated", snap[:len(snap)/3]); err != nil {
		return err
	}
	flip := append([]byte(nil), snap...)
	flip[len(flip)/2] ^= 0x10
	if err := writeSeed(snapDir, "bit-flipped", flip); err != nil {
		return err
	}
	fmt.Println("genfuzzcorpus: corpora written")
	return nil
}

// buildSnapshot runs a small deterministic simulation through the
// substrate and snapshots the resulting state.
func buildSnapshot() ([]byte, error) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 60
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	sub, err := core.New(core.Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: core.Level2,
	})
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			return nil, err
		}
		if _, err := sub.ProcessEpoch(o); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := sub.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
