package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"spire/internal/model"
)

func TestParseTags(t *testing.T) {
	cases := []struct {
		in      string
		all     bool
		tags    []model.Tag
		wantErr bool
	}{
		{in: ""},
		{in: "  "},
		{in: "all", all: true},
		{in: "ALL", all: true},
		{in: "7", tags: []model.Tag{7}},
		{in: "7,8, 9", tags: []model.Tag{7, 8, 9}},
		{in: "7,,8", tags: []model.Tag{7, 8}},
		{in: "0", wantErr: true},
		{in: "x", wantErr: true},
		{in: "7,-1", wantErr: true},
	}
	for _, tc := range cases {
		all, tags, err := ParseTags(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseTags(%q): want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTags(%q): %v", tc.in, err)
			continue
		}
		if all != tc.all || len(tags) != len(tc.tags) {
			t.Errorf("ParseTags(%q) = (%v, %v), want (%v, %v)", tc.in, all, tags, tc.all, tc.tags)
			continue
		}
		for i := range tags {
			if tags[i] != tc.tags[i] {
				t.Errorf("ParseTags(%q)[%d] = %d, want %d", tc.in, i, tags[i], tc.tags[i])
			}
		}
	}
}

// TestNilRecorderNoOps pins the disabled mode: every method of a nil
// *Recorder must be callable and inert.
func TestNilRecorderNoOps(t *testing.T) {
	var rec *Recorder
	rec.Record(Record{Tag: 1, Mech: MechDirectRead})
	rec.ObserveIngest(100)
	rec.BeginEpoch(1)
	rec.EndEpoch(Span{Epoch: 1})
	if rec.Traces(1) {
		t.Error("nil recorder must trace nothing")
	}
	if rec.Spans() != nil || rec.TagRecords(1) != nil || rec.TracedTags() != nil {
		t.Error("nil recorder must return no data")
	}
	if rec.Explain(1) != nil {
		t.Error("nil recorder must explain nothing")
	}
	if rec.DroppedTags() != 0 {
		t.Error("nil recorder reports dropped tags")
	}
	var buf bytes.Buffer
	if err := rec.DumpJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil recorder must dump nothing")
	}
	if cfg := rec.Config(); cfg.Epochs != 0 || cfg.All || cfg.Tags != nil {
		t.Error("nil recorder config must be zero")
	}
}

// TestTagRingBounded is the boundedness property test: however many
// records a tag accumulates, the retained window is exactly the ring
// capacity, holding the newest records in order.
func TestTagRingBounded(t *testing.T) {
	const perTag = 8
	rec := New(Config{All: true, PerTag: perTag})
	const total = 10 * perTag
	for i := 0; i < total; i++ {
		rec.Record(Record{Epoch: model.Epoch(i), Tag: 42, Mech: MechDirectRead, Aux: int32(i)})
	}
	recs := rec.TagRecords(42)
	if len(recs) != perTag {
		t.Fatalf("ring holds %d records, want capacity %d", len(recs), perTag)
	}
	for i, r := range recs {
		want := int32(total - perTag + i)
		if r.Aux != want {
			t.Errorf("record %d Aux = %d, want %d (newest window, oldest first)", i, r.Aux, want)
		}
	}
}

// TestFlightRingBounded pins the same property for epoch spans.
func TestFlightRingBounded(t *testing.T) {
	const epochs = 16
	rec := New(Config{Epochs: epochs})
	const total = 5 * epochs
	for i := 1; i <= total; i++ {
		rec.BeginEpoch(model.Epoch(i))
		rec.EndEpoch(Span{Epoch: model.Epoch(i)})
	}
	spans := rec.Spans()
	if len(spans) != epochs {
		t.Fatalf("flight ring holds %d spans, want capacity %d", len(spans), epochs)
	}
	for i, sp := range spans {
		if want := model.Epoch(total - epochs + i + 1); sp.Epoch != want {
			t.Errorf("span %d epoch = %d, want %d", i, sp.Epoch, want)
		}
	}
}

// TestMaxTagsCap: past the cap, records of new tags are counted as
// dropped instead of growing the tag map without bound.
func TestMaxTagsCap(t *testing.T) {
	rec := New(Config{All: true, MaxTags: 4})
	for g := model.Tag(1); g <= 10; g++ {
		rec.Record(Record{Epoch: 1, Tag: g, Mech: MechDirectRead})
	}
	if got := len(rec.TracedTags()); got != 4 {
		t.Errorf("tag rings = %d, want cap 4", got)
	}
	if got := rec.DroppedTags(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

func TestFilteredTracing(t *testing.T) {
	rec := New(Config{Tags: []model.Tag{5}})
	if !rec.Traces(5) || rec.Traces(6) {
		t.Fatal("filter must admit exactly the configured tags")
	}
	rec.Record(Record{Epoch: 1, Tag: 5, Mech: MechDirectRead})
	rec.Record(Record{Epoch: 1, Tag: 6, Mech: MechDirectRead})
	if len(rec.TagRecords(5)) != 1 || len(rec.TagRecords(6)) != 0 {
		t.Error("only filtered tags may retain records")
	}
}

// TestEndEpochCountersAndAnomalies: EndEpoch aggregates the epoch's
// mechanism counts into the span and flags conflict storms, edge churn,
// and epoch gaps.
func TestEndEpochCountersAndAnomalies(t *testing.T) {
	rec := New(Config{ConflictStorm: 3, EdgeChurn: 4})

	rec.BeginEpoch(1)
	rec.Record(Record{Epoch: 1, Tag: 1, Mech: MechRuleI})
	rec.Record(Record{Epoch: 1, Tag: 2, Mech: MechRuleII})
	rec.Record(Record{Epoch: 1, Tag: 3, Mech: MechMajorityPoll})
	rec.Record(Record{Epoch: 1, Tag: 4, Mech: MechEdgeCreated})
	rec.Record(Record{Epoch: 1, Tag: 4, Mech: MechConfirmed})
	rec.EndEpoch(Span{Epoch: 1})

	spans := rec.Spans()
	sp := spans[len(spans)-1]
	if sp.Conflicts != 3 || sp.EdgesCreated != 1 || sp.Confirmations != 1 {
		t.Errorf("span counters wrong: %+v", sp)
	}
	if len(sp.Anomalies) != 1 || sp.Anomalies[0] != AnomalyConflictStorm {
		t.Errorf("anomalies = %v, want [%s]", sp.Anomalies, AnomalyConflictStorm)
	}

	// Counters reset between epochs; dropped+pruned edges flag churn, and
	// skipping epoch 3 flags a gap.
	rec.BeginEpoch(4)
	for i := 0; i < 2; i++ {
		rec.Record(Record{Epoch: 4, Tag: 9, Mech: MechEdgeDropped})
		rec.Record(Record{Epoch: 4, Tag: 9, Mech: MechEdgePruned})
	}
	rec.EndEpoch(Span{Epoch: 4})
	spans = rec.Spans()
	sp = spans[len(spans)-1]
	if sp.Conflicts != 0 {
		t.Errorf("conflict counter leaked across epochs: %+v", sp)
	}
	if sp.EdgesDropped != 4 {
		t.Errorf("edges dropped = %d, want 4", sp.EdgesDropped)
	}
	wantAnoms := map[string]bool{AnomalyEdgeChurn: true, AnomalyEpochGap: true}
	if len(sp.Anomalies) != 2 || !wantAnoms[sp.Anomalies[0]] || !wantAnoms[sp.Anomalies[1]] {
		t.Errorf("anomalies = %v, want edge-churn + epoch-gap", sp.Anomalies)
	}

	// Ingest time accumulated before EndEpoch lands on the next span.
	rec.ObserveIngest(150)
	rec.ObserveIngest(50)
	rec.BeginEpoch(5)
	rec.EndEpoch(Span{Epoch: 5})
	spans = rec.Spans()
	if got := spans[len(spans)-1].IngestNS; got != 200 {
		t.Errorf("ingest ns = %d, want 200", got)
	}
}

func TestDumpJSONL(t *testing.T) {
	rec := New(Config{All: true})
	rec.BeginEpoch(1)
	rec.Record(Record{Epoch: 1, Tag: 7, Mech: MechDirectRead, Loc: 0, Reader: 3})
	rec.Record(Record{Epoch: 1, Tag: 7, Mech: MechNodeInference, Loc: 2, Prob: 0.75, Aux: 3})
	rec.Record(Record{Epoch: 1, Tag: 8, Mech: MechEdgeInference, Other: 7, Prob: 0.9})
	rec.EndEpoch(Span{Epoch: 1, Readings: 10, Events: 2})

	var buf bytes.Buffer
	if err := rec.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var spans, records int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch line["type"] {
		case "span":
			spans++
			if line["epoch"] != float64(1) || line["readings"] != float64(10) {
				t.Errorf("span line wrong: %v", line)
			}
		case "record":
			records++
			if line["mechanism"] == "" || line["citation"] == "" {
				t.Errorf("record line lacks mechanism/citation: %v", line)
			}
		default:
			t.Errorf("unknown line type: %v", line)
		}
	}
	if spans != 1 || records != 3 {
		t.Errorf("dump has %d spans and %d records, want 1 and 3", spans, records)
	}
}

// TestDumpRendersLocationZero guards the LocationID-zero pitfall: location
// 0 is a real location and must be rendered for location-bearing
// mechanisms, while mechanisms without a location must not leak "L0".
func TestDumpRendersLocationZero(t *testing.T) {
	rec := New(Config{All: true})
	rec.Record(Record{Epoch: 1, Tag: 7, Mech: MechDirectRead, Loc: 0})
	rec.Record(Record{Epoch: 1, Tag: 7, Mech: MechEdgeCreated, Loc: model.LocationNone, Other: 9})
	var buf bytes.Buffer
	if err := rec.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"location"`) {
		t.Errorf("direct read at location 0 must render a location: %s", lines[0])
	}
	if strings.Contains(lines[1], `"location"`) {
		t.Errorf("edge creation must not render a location: %s", lines[1])
	}
}

// TestExplainChain builds the provenance of a small hierarchy by hand and
// requires Explain to walk it: the item's Rule I override chains into the
// case's direct read.
func TestExplainChain(t *testing.T) {
	rec := New(Config{All: true})
	const caseTag, itemTag = model.Tag(10), model.Tag(20)
	rec.Record(Record{Epoch: 5, Tag: caseTag, Mech: MechDirectRead, Loc: 1, Reader: 2})
	rec.Record(Record{Epoch: 5, Tag: itemTag, Mech: MechEdgeInference, Other: caseTag, Prob: 0.8, Aux: 5})
	rec.Record(Record{Epoch: 5, Tag: itemTag, Mech: MechRuleI, Loc: 1, Other: caseTag})

	ex := rec.Explain(itemTag)
	if ex == nil {
		t.Fatal("no explanation")
	}
	if ex.Tag != itemTag || ex.AsOf != 5 {
		t.Errorf("header wrong: %+v", ex)
	}
	if ex.Location != model.LocationID(1).String() {
		t.Errorf("location = %q, want %q", ex.Location, model.LocationID(1).String())
	}
	if ex.Container != caseTag {
		t.Errorf("container = %d, want %d", ex.Container, caseTag)
	}
	var mechs []string
	for _, s := range ex.Chain {
		mechs = append(mechs, fmt.Sprintf("%d:%s", s.Tag, s.Mechanism))
	}
	want := []string{
		fmt.Sprintf("%d:conflict-rule-I", itemTag),
		fmt.Sprintf("%d:edge-inference", itemTag),
		fmt.Sprintf("%d:direct-read", caseTag),
	}
	if len(mechs) != len(want) {
		t.Fatalf("chain = %v, want %v", mechs, want)
	}
	for i := range want {
		if mechs[i] != want[i] {
			t.Errorf("chain[%d] = %s, want %s", i, mechs[i], want[i])
		}
	}
	for _, s := range ex.Chain {
		if s.Citation == "" {
			t.Errorf("step without citation: %+v", s)
		}
	}

	// Rule II ends a containment: the explanation must report none.
	const loner = model.Tag(30)
	rec.Record(Record{Epoch: 6, Tag: loner, Mech: MechDirectRead, Loc: 2})
	rec.Record(Record{Epoch: 6, Tag: loner, Mech: MechRuleII, Loc: 2, Other: caseTag})
	if ex := rec.Explain(loner); ex == nil || ex.Container != model.NoTag {
		t.Errorf("rule II explanation must carry no container: %+v", ex)
	}

	// Unknown tags have no explanation.
	if rec.Explain(99) != nil {
		t.Error("explanation invented for an unrecorded tag")
	}
}

// TestExplainCycleTerminates guards the depth bound: mutually inherited
// locations (corrupt or adversarial records) must not hang Explain.
func TestExplainCycleTerminates(t *testing.T) {
	rec := New(Config{All: true})
	rec.Record(Record{Epoch: 1, Tag: 1, Mech: MechRuleI, Loc: 1, Other: 2})
	rec.Record(Record{Epoch: 1, Tag: 2, Mech: MechRuleI, Loc: 1, Other: 1})
	ex := rec.Explain(1)
	if ex == nil || len(ex.Chain) == 0 {
		t.Fatal("cycle must still yield the tag's own steps")
	}
	if len(ex.Chain) > 2*maxExplainDepth {
		t.Fatalf("chain unreasonably long under a record cycle: %d", len(ex.Chain))
	}
}

func TestMechanismNamesTotal(t *testing.T) {
	for m := MechDirectRead; m < numMechanisms; m++ {
		if m.String() == "none" || m.String() == "" {
			t.Errorf("mechanism %d has no slug", m)
		}
		if m.Citation() == "" {
			t.Errorf("mechanism %d (%s) has no citation", m, m)
		}
	}
}
