package trace

import (
	"sync"
	"time"

	"spire/internal/model"
)

// ConnEventKind labels one entry of the federate connection flight
// recorder. Worker-side kinds cover the life of a zone link; the
// coordinator records barrier stalls and their resolution.
type ConnEventKind string

const (
	ConnConnect       ConnEventKind = "connect"           // handshake completed
	ConnConnectFailed ConnEventKind = "connect-failed"    // dial or handshake failed
	ConnLost          ConnEventKind = "lost"              // live link dropped
	ConnReplay        ConnEventKind = "replay"            // buffered epochs re-sent after reconnect
	ConnAckStall      ConnEventKind = "ack-stall"         // no ack within the ack timeout
	ConnCheckpoint    ConnEventKind = "checkpoint"        // checkpoint persisted
	ConnNearMiss      ConnEventKind = "barrier-near-miss" // barrier wait crossed the warn fraction
	ConnBarrierStall  ConnEventKind = "barrier-stall"     // barrier wait hit the fatal timeout
	ConnFinalLinger   ConnEventKind = "final-linger"      // coordinator waited for final acks
)

// ConnEvent is one timestamped entry of the federate flight recorder:
// a connection transition, a replay, or a barrier stall. Unlike the
// epoch flight recorder (Span), these are wall-clock events — they
// describe the unreliable network edge of the deployment, not the
// deterministic pipeline, so recording real time does not perturb any
// pinned output.
type ConnEvent struct {
	Wall   time.Time     `json:"wall"`
	Kind   ConnEventKind `json:"kind"`
	Zone   int           `json:"zone"`
	Epoch  model.Epoch   `json:"epoch,omitempty"`
	Detail string        `json:"detail,omitempty"`
	// DurationMS is the event's associated wait or work time, when one
	// exists (backoff slept, barrier waited, replay took).
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// ConnRecorder is a bounded, overwrite-oldest ring of ConnEvents shared
// by the federate worker and coordinator. All methods are safe for
// concurrent use and are no-ops on a nil receiver — the same
// transparency contract as the telemetry registry and the epoch
// recorder: instrumented code records unconditionally, and whether a
// recorder is attached is decided once at wiring time.
type ConnRecorder struct {
	mu      sync.Mutex
	ring    []ConnEvent
	next    int
	filled  bool
	dropped int64
}

// NewConnRecorder returns a recorder retaining the most recent capacity
// events (default 256 when capacity <= 0).
func NewConnRecorder(capacity int) *ConnRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &ConnRecorder{ring: make([]ConnEvent, capacity)}
}

// Record appends one event, stamping Wall with the current time when the
// caller left it zero. Oldest events are overwritten once the ring is
// full. No-op on a nil receiver.
func (r *ConnRecorder) Record(e ConnEvent) {
	if r == nil {
		return
	}
	if e.Wall.IsZero() {
		e.Wall = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		r.dropped++
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
}

// Events returns the retained events, oldest first. Nil on a nil
// receiver.
func (r *ConnRecorder) Events() []ConnEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]ConnEvent(nil), r.ring[:r.next]...)
	}
	out := make([]ConnEvent, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dropped reports how many events have been overwritten by newer ones.
func (r *ConnRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
