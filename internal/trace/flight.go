package trace

import (
	"bufio"
	"encoding/json"
	"io"

	"spire/internal/model"
)

// Anomaly flags attached to epoch spans.
const (
	AnomalyConflictStorm = "conflict-storm"
	AnomalyEdgeChurn     = "edge-churn"
	AnomalyEpochGap      = "epoch-gap"
)

// Span is one epoch's flight-recorder entry: what the pipeline did and
// how long each stage took. The pipeline fills the identity, timing, and
// stream fields; EndEpoch fills the mechanism counters and anomalies from
// the epoch's records.
type Span struct {
	Epoch   model.Epoch `json:"epoch"`
	Partial bool        `json:"partial,omitempty"`

	Readings int64 `json:"readings"`
	Events   int64 `json:"events"`
	Bytes    int64 `json:"bytes,omitempty"`
	Retired  int64 `json:"retired,omitempty"`

	// Per-stage wall-clock nanoseconds (the pipeline of Fig. 2).
	IngestNS   int64 `json:"ingest_ns,omitempty"`
	DedupNS    int64 `json:"dedup_ns,omitempty"`
	UpdateNS   int64 `json:"update_ns,omitempty"`
	InferNS    int64 `json:"infer_ns,omitempty"`
	ConflictNS int64 `json:"conflict_ns,omitempty"`
	CompressNS int64 `json:"compress_ns,omitempty"`

	// Mechanism counters aggregated by EndEpoch.
	Conflicts     int64 `json:"conflicts,omitempty"`
	EdgesCreated  int64 `json:"edges_created,omitempty"`
	EdgesDropped  int64 `json:"edges_dropped,omitempty"`
	Confirmations int64 `json:"confirmations,omitempty"`
	Resurrections int64 `json:"resurrections,omitempty"`

	Anomalies []string `json:"anomalies,omitempty"`
}

// spanLine and recordLine are the JSONL dump shapes; the type field lets
// one stream carry both spans and per-tag records.
type spanLine struct {
	Type string `json:"type"`
	Span
}

type recordLine struct {
	Type      string         `json:"type"`
	Tag       model.Tag      `json:"tag"`
	Epoch     model.Epoch    `json:"epoch"`
	Mechanism string         `json:"mechanism"`
	Citation  string         `json:"citation"`
	Location  string         `json:"location,omitempty"`
	Other     model.Tag      `json:"other,omitempty"`
	Reader    model.ReaderID `json:"reader,omitempty"`
	Prob      float64        `json:"probability,omitempty"`
	Aux       int32          `json:"detail,omitempty"`
}

func toRecordLine(r Record) recordLine {
	line := recordLine{
		Type:      "record",
		Tag:       r.Tag,
		Epoch:     r.Epoch,
		Mechanism: r.Mech.String(),
		Citation:  r.Mech.Citation(),
		Other:     r.Other,
		Reader:    r.Reader,
		Prob:      r.Prob,
		Aux:       r.Aux,
	}
	if hasLocation(r.Mech) && r.Loc != model.LocationNone {
		line.Location = r.Loc.String()
	}
	return line
}

// DumpJSONL writes the flight recorder's spans followed by every traced
// tag's records (tags sorted, records oldest first), one JSON object per
// line. Nothing is written on a nil receiver.
func (rec *Recorder) DumpJSONL(w io.Writer) error {
	if rec == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range rec.Spans() {
		if err := enc.Encode(spanLine{Type: "span", Span: s}); err != nil {
			return err
		}
	}
	for _, g := range rec.TracedTags() {
		for _, r := range rec.TagRecords(g) {
			if err := enc.Encode(toRecordLine(r)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
