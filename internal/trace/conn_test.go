package trace

import (
	"sync"
	"testing"
	"time"
)

func TestConnRecorderNilOff(t *testing.T) {
	var r *ConnRecorder
	r.Record(ConnEvent{Kind: ConnConnect}) // must not panic
	if got := r.Events(); got != nil {
		t.Errorf("nil recorder Events() = %v, want nil", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("nil recorder Dropped() = %d, want 0", got)
	}
}

func TestConnRecorderRingOrder(t *testing.T) {
	r := NewConnRecorder(4)
	for i := 0; i < 3; i++ {
		r.Record(ConnEvent{Kind: ConnConnect, Zone: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Zone != i {
			t.Errorf("event %d zone %d, want %d (oldest first)", i, e.Zone, i)
		}
		if e.Wall.IsZero() {
			t.Errorf("event %d has no wall-clock stamp", i)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped %d before the ring filled", r.Dropped())
	}

	// Overflow: the ring keeps the most recent 4, oldest first.
	for i := 3; i < 10; i++ {
		r.Record(ConnEvent{Kind: ConnLost, Zone: i})
	}
	evs = r.Events()
	if len(evs) != 4 {
		t.Fatalf("after overflow got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := 6 + i; e.Zone != want {
			t.Errorf("event %d zone %d, want %d", i, e.Zone, want)
		}
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
}

func TestConnRecorderKeepsCallerWall(t *testing.T) {
	r := NewConnRecorder(2)
	stamp := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r.Record(ConnEvent{Kind: ConnCheckpoint, Wall: stamp})
	if got := r.Events()[0].Wall; !got.Equal(stamp) {
		t.Errorf("Wall = %v, want caller's %v", got, stamp)
	}
}

func TestConnRecorderConcurrent(t *testing.T) {
	r := NewConnRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(ConnEvent{Kind: ConnReplay, Zone: g})
				r.Events()
				r.Dropped()
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Events()); got != 16 {
		t.Errorf("retained %d events, want full ring of 16", got)
	}
	if got := r.Dropped(); got != 8*100-16 {
		t.Errorf("Dropped() = %d, want %d", got, 8*100-16)
	}
}
