package trace

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggingSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		def     slog.Level
		lvls    map[string]slog.Level
		wantErr bool
	}{
		{spec: "", def: slog.LevelInfo},
		{spec: "debug", def: slog.LevelDebug},
		{spec: "WARN", def: slog.LevelWarn},
		{spec: "warn,metrics=debug", def: slog.LevelWarn,
			lvls: map[string]slog.Level{"metrics": slog.LevelDebug}},
		{spec: "spire=info, ingest=error", def: slog.LevelInfo,
			lvls: map[string]slog.Level{"spire": slog.LevelInfo, "ingest": slog.LevelError}},
		{spec: "verbose", wantErr: true},
		{spec: "metrics=loud", wantErr: true},
		{spec: "=debug", wantErr: true},
	}
	for _, tc := range cases {
		l, err := NewLogging(&bytes.Buffer{}, tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("NewLogging(%q): want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("NewLogging(%q): %v", tc.spec, err)
			continue
		}
		if got := l.Level("unconfigured"); got != tc.def {
			t.Errorf("NewLogging(%q) default level = %v, want %v", tc.spec, got, tc.def)
		}
		for comp, want := range tc.lvls {
			if got := l.Level(comp); got != want {
				t.Errorf("NewLogging(%q) level(%s) = %v, want %v", tc.spec, comp, got, want)
			}
		}
	}
}

func TestComponentFilteringAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogging(&buf, "warn,noisy=debug")
	if err != nil {
		t.Fatal(err)
	}

	quiet := l.Component("quiet")
	quiet.Info("suppressed")
	if buf.Len() != 0 {
		t.Errorf("info record leaked through a warn-level component: %s", buf.String())
	}
	quiet.Warn("visible", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "component=quiet") || !strings.Contains(out, "k=v") {
		t.Errorf("warn record missing component attr or fields: %s", out)
	}

	buf.Reset()
	noisy := l.Component("noisy")
	noisy.Debug("detail")
	if !strings.Contains(buf.String(), "component=noisy") {
		t.Errorf("debug record lost on a debug-level component: %s", buf.String())
	}

	if l.Component("quiet") != quiet {
		t.Error("component loggers must be cached")
	}
}
