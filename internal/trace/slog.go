package trace

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// Logging builds per-component *slog.Logger instances over one writer,
// with per-component minimum levels parsed from a flag-style spec. It
// replaces the ad-hoc fmt.Fprintln(os.Stderr, ...) logging of the
// binaries with structured, filterable output.
//
// The spec is either a bare level ("debug", "info", "warn", "error"),
// which applies to every component, or a comma-separated list of
// component=level pairs with an optional bare default, e.g.
// "warn,metrics=debug" or "spire=info,ingest=error".
type Logging struct {
	w    io.Writer
	def  slog.Level
	lvls map[string]slog.Level

	mu    sync.Mutex
	cache map[string]*slog.Logger
}

// parseLevel maps a level name to its slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("trace: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogging parses spec and returns a Logging over w. An empty spec
// defaults every component to info.
func NewLogging(w io.Writer, spec string) (*Logging, error) {
	l := &Logging{
		w:     w,
		def:   slog.LevelInfo,
		lvls:  make(map[string]slog.Level),
		cache: make(map[string]*slog.Logger),
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if comp, lvl, ok := strings.Cut(part, "="); ok {
			comp = strings.TrimSpace(comp)
			if comp == "" {
				return nil, fmt.Errorf("trace: empty component in log spec %q", spec)
			}
			v, err := parseLevel(lvl)
			if err != nil {
				return nil, err
			}
			l.lvls[comp] = v
		} else {
			v, err := parseLevel(part)
			if err != nil {
				return nil, err
			}
			l.def = v
		}
	}
	return l, nil
}

// Level returns the minimum level for component.
func (l *Logging) Level(component string) slog.Level {
	if v, ok := l.lvls[component]; ok {
		return v
	}
	return l.def
}

// Component returns a logger for the named component, filtered at that
// component's level and carrying a component attribute on every record.
// Loggers are cached, so repeated calls return the same instance.
func (l *Logging) Component(name string) *slog.Logger {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lg, ok := l.cache[name]; ok {
		return lg
	}
	h := slog.NewTextHandler(l.w, &slog.HandlerOptions{Level: l.Level(name)})
	lg := slog.New(h).With("component", name)
	l.cache[name] = lg
	return lg
}
