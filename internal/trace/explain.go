package trace

import (
	"spire/internal/model"
)

// Step is one link of an explanation's causal chain: a recorded decision,
// named by mechanism and paper citation.
type Step struct {
	Tag         model.Tag      `json:"tag"`
	Epoch       model.Epoch    `json:"epoch"`
	Mechanism   string         `json:"mechanism"`
	Citation    string         `json:"citation"`
	Location    string         `json:"location,omitempty"`
	Container   model.Tag      `json:"container,omitempty"`
	Reader      model.ReaderID `json:"reader,omitempty"`
	Probability float64        `json:"probability,omitempty"`
	Support     int32          `json:"support,omitempty"`
}

// Explanation is the causal chain behind a tag's current location and
// containment, assembled from its retained provenance records. The chain
// starts with the tag's own decisive records and follows containment
// upward when the location was inherited (Rule I/III override or level-2
// suppression).
type Explanation struct {
	Tag       model.Tag   `json:"tag"`
	AsOf      model.Epoch `json:"as_of"`
	Location  string      `json:"location,omitempty"`
	Container model.Tag   `json:"container,omitempty"`
	Chain     []Step      `json:"chain"`
}

// hasLocation reports whether Record.Loc is meaningful for mechanism m;
// the zero LocationID is a real location, so renderers must not show Loc
// for mechanisms that never set it.
func hasLocation(m Mechanism) bool {
	switch m {
	case MechDirectRead, MechNodeInference, MechMajorityPoll, MechConfirmed,
		MechRuleI, MechRuleII, MechRuleIII, MechSuppressed, MechRetired:
		return true
	}
	return false
}

// locMech reports whether m decides a tag's reported location.
func locMech(m Mechanism) bool {
	switch m {
	case MechDirectRead, MechNodeInference, MechMajorityPoll,
		MechRuleI, MechRuleIII, MechSuppressed, MechRetired:
		return true
	}
	return false
}

// contMech reports whether m decides a tag's reported containment.
func contMech(m Mechanism) bool {
	switch m {
	case MechEdgeInference, MechConfirmed, MechRuleII:
		return true
	}
	return false
}

// inheritsLocation reports whether m takes the location from the parent
// tag in Record.Other, so the chain should continue there.
func inheritsLocation(m Mechanism) bool {
	return m == MechRuleI || m == MechRuleIII || m == MechSuppressed
}

func stepOf(r Record) Step {
	s := Step{
		Tag:         r.Tag,
		Epoch:       r.Epoch,
		Mechanism:   r.Mech.String(),
		Citation:    r.Mech.Citation(),
		Reader:      r.Reader,
		Probability: r.Prob,
		Support:     r.Aux,
	}
	if hasLocation(r.Mech) && r.Loc != model.LocationNone {
		s.Location = r.Loc.String()
	}
	switch r.Mech {
	case MechEdgeInference, MechConfirmed, MechEdgeCreated, MechEdgeDropped,
		MechEdgePruned, MechRuleI, MechRuleIII, MechSuppressed, MechRuleII:
		s.Container = r.Other
	}
	return s
}

// maxExplainDepth bounds the containment walk of Explain; the packaging
// hierarchy is three levels deep, so 4 leaves headroom without letting a
// record cycle run away.
const maxExplainDepth = 4

// Explain assembles the causal chain behind tag's current location and
// containment. Returns nil when the recorder holds no records for the tag
// (or on a nil receiver).
func (rec *Recorder) Explain(g model.Tag) *Explanation {
	if rec == nil {
		return nil
	}
	recs := rec.TagRecords(g)
	if len(recs) == 0 {
		return nil
	}
	ex := &Explanation{Tag: g, AsOf: recs[len(recs)-1].Epoch}
	seen := map[model.Tag]bool{}
	rec.explainInto(ex, g, maxExplainDepth, seen)
	return ex
}

// explainInto appends tag's decisive steps to ex.Chain and recurses into
// the parent when the location was inherited.
func (rec *Recorder) explainInto(ex *Explanation, g model.Tag, depth int, seen map[model.Tag]bool) {
	if depth == 0 || seen[g] {
		return
	}
	seen[g] = true
	recs := rec.TagRecords(g)
	var locRec, contRec *Record
	for i := len(recs) - 1; i >= 0; i-- {
		r := &recs[i]
		if locRec == nil && locMech(r.Mech) {
			locRec = r
		}
		if contRec == nil && contMech(r.Mech) {
			contRec = r
		}
		if locRec != nil && contRec != nil {
			break
		}
	}
	if locRec != nil {
		ex.Chain = append(ex.Chain, stepOf(*locRec))
		if ex.Location == "" && locRec.Loc != model.LocationNone {
			ex.Location = locRec.Loc.String()
		}
	}
	if contRec != nil {
		ex.Chain = append(ex.Chain, stepOf(*contRec))
		if g == ex.Tag {
			switch contRec.Mech {
			case MechRuleII:
				ex.Container = model.NoTag
			default:
				ex.Container = contRec.Other
			}
		}
	}
	if locRec != nil && inheritsLocation(locRec.Mech) && locRec.Other != model.NoTag {
		rec.explainInto(ex, locRec.Other, depth-1, seen)
	}
}
