// Package trace is SPIRE's decision-provenance layer: a bounded,
// allocation-disciplined recorder of *why* the pipeline believes what it
// believes about each tag, plus an epoch flight recorder of per-stage
// timings and anomaly flags.
//
// SPIRE's answers are probabilistic inferences — a tag's reported
// location can come from a direct read (Fig. 4 step 1), from Eq. 3–4
// node inference, from a confirmed containment edge, or from a Table I
// conflict-resolution override — and without provenance the only way to
// know which is to re-derive the inference by hand. The recorder captures
// each such decision as a compact fixed-size Record at the moment it is
// made; Explain reassembles the causal chain behind a tag's current
// location and containment on demand.
//
// Two properties drive the design, mirroring the telemetry layer:
//
//   - Transparent disablement. Every method is a no-op on a nil
//     *Recorder, and producers gate their recording calls on rec != nil,
//     so the untraced hot path takes no extra clock reads and no
//     allocations. Recording is observation-only: a traced run produces
//     byte-identical event streams, stores, and checkpoints (pinned by
//     the transparency tests in internal/core).
//
//   - Bounded memory. Per-tag records live in fixed-capacity rings that
//     overwrite their oldest entry; epoch spans live in a fixed-capacity
//     flight ring. Memory is bounded regardless of run length.
//
// The recorder is internally synchronized: the single-threaded pipeline
// records while HTTP handlers (/v1/explain, /debug/trace) read
// concurrently.
package trace

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"

	"spire/internal/model"
)

// Mechanism identifies the pipeline decision behind a Record, citing the
// paper's equation, rule, or figure.
type Mechanism uint8

// The decision mechanisms, in rough pipeline order.
const (
	MechNone          Mechanism = iota
	MechDirectRead              // colored by a reader observation (Fig. 4 step 1)
	MechEdgeCreated             // possible-containment edge added (Fig. 4 step 2)
	MechEdgeDropped             // edge removed: color mismatch or confirmation contradiction (Fig. 4 step 3)
	MechConfirmed               // special-reader containment confirmation (Fig. 4 step 4)
	MechEdgeInference           // most-likely container chosen by Eq. 1–2
	MechEdgePruned              // low-confidence edge pruned during Eq. 1–2 (§IV-C)
	MechNodeInference           // most-likely location chosen by Eq. 3–4
	MechMajorityPoll            // parent adopted its children's majority location (Table I Rules II–III preamble)
	MechRuleI                   // Table I Rule I: observed parent overrides inferred child location
	MechRuleII                  // Table I Rule II: conflicting observed child ends its containment
	MechRuleIII                 // Table I Rule III: polled parent overrides inferred child location
	MechSuppressed              // level-2 compression: location rides on the container (§V-C)
	MechRetired                 // exit retirement (§IV-C graph pruning)
	MechResurrected             // tombstoned tag read by a non-exit reader: retirement revoked

	numMechanisms
)

// String returns the compact mechanism slug used in JSON output.
func (m Mechanism) String() string {
	switch m {
	case MechDirectRead:
		return "direct-read"
	case MechEdgeCreated:
		return "edge-created"
	case MechEdgeDropped:
		return "edge-dropped"
	case MechConfirmed:
		return "reader-confirmation"
	case MechEdgeInference:
		return "edge-inference"
	case MechEdgePruned:
		return "edge-pruned"
	case MechNodeInference:
		return "node-inference"
	case MechMajorityPoll:
		return "majority-poll"
	case MechRuleI:
		return "conflict-rule-I"
	case MechRuleII:
		return "conflict-rule-II"
	case MechRuleIII:
		return "conflict-rule-III"
	case MechSuppressed:
		return "level2-suppression"
	case MechRetired:
		return "exit-retirement"
	case MechResurrected:
		return "tombstone-resurrection"
	default:
		return "none"
	}
}

// Citation names the part of the paper that defines the mechanism.
func (m Mechanism) Citation() string {
	switch m {
	case MechDirectRead:
		return "Fig. 4 step 1 (observation)"
	case MechEdgeCreated:
		return "Fig. 4 step 2 (edge creation)"
	case MechEdgeDropped:
		return "Fig. 4 step 3 (edge removal)"
	case MechConfirmed:
		return "Fig. 4 step 4 (reader confirmation)"
	case MechEdgeInference:
		return "Eq. 1-2 (edge inference)"
	case MechEdgePruned:
		return "SIV-C (edge pruning)"
	case MechNodeInference:
		return "Eq. 3-4 (node inference)"
	case MechMajorityPoll:
		return "Table I Rules II-III (children poll)"
	case MechRuleI:
		return "Table I Rule I"
	case MechRuleII:
		return "Table I Rule II"
	case MechRuleIII:
		return "Table I Rule III"
	case MechSuppressed:
		return "SV-C (containment-based location compression)"
	case MechRetired:
		return "SIV-C (graph pruning at exit)"
	case MechResurrected:
		return "SIV-C (graph pruning, revoked)"
	default:
		return ""
	}
}

// Record is one provenance fact: a decision the pipeline made about Tag
// at Epoch. It is a fixed-size value — no pointers, no strings — so
// recording never allocates once a tag's ring exists.
//
// Field semantics by mechanism:
//
//	DirectRead      Loc = observed location, Reader = observing reader
//	EdgeCreated     Other = parent tag of the new edge
//	EdgeDropped     Other = parent tag; Aux 1 = color mismatch, 2 = confirmation contradiction
//	Confirmed       Other = confirmed parent, Reader = confirming reader, Loc = scan location
//	EdgeInference   Other = chosen container (NoTag = "no container"),
//	                Prob = normalized Eq. 2 probability, Aux = colocation bits set
//	EdgePruned      Other = parent tag of the pruned edge
//	NodeInference   Loc = chosen location, Prob = Eq. 4 belief,
//	                Aux = number of determined neighbors that propagated color
//	MajorityPoll    Loc = adopted location, Aux = votes for it
//	RuleI/RuleIII   Loc = location inherited from parent Other
//	RuleII          Other = ended containment's parent, Loc = child's kept location,
//	                Aux 1 = defensive both-observed variant
//	Suppressed      Other = reporting container, Loc = virtual (recoverable) location
//	Retired         Loc = exit location
//	Resurrected     Reader = the non-exit reader whose reading revoked retirement
type Record struct {
	Epoch  model.Epoch
	Tag    model.Tag
	Mech   Mechanism
	Loc    model.LocationID
	Other  model.Tag
	Reader model.ReaderID
	Prob   float64
	Aux    int32
}

// Reasons for MechEdgeDropped records.
const (
	DropColorMismatch int32 = 1
	DropConfirmation  int32 = 2
)

// Config sizes a Recorder. The zero value of any field selects its
// default.
type Config struct {
	// Epochs is the flight-recorder capacity: how many of the most recent
	// epoch spans are retained. Default 256.
	Epochs int
	// PerTag is the per-tag record ring capacity. Default 32.
	PerTag int
	// MaxTags caps the number of distinct tags with live record rings;
	// further tags are counted but not stored. Default 65536.
	MaxTags int
	// All traces every tag; otherwise only Tags are traced. With neither,
	// the recorder keeps the flight ring and mechanism counters only.
	All  bool
	Tags []model.Tag
	// ConflictStorm flags an epoch span as anomalous when at least this
	// many conflict-resolution decisions fired. Default 32.
	ConflictStorm int
	// EdgeChurn flags an epoch span when at least this many edges were
	// dropped or pruned. Default 1024.
	EdgeChurn int
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 256
	}
	if c.PerTag <= 0 {
		c.PerTag = 32
	}
	if c.MaxTags <= 0 {
		c.MaxTags = 1 << 16
	}
	if c.ConflictStorm <= 0 {
		c.ConflictStorm = 32
	}
	if c.EdgeChurn <= 0 {
		c.EdgeChurn = 1024
	}
	return c
}

// ParseTags parses a -trace-tags flag value: "all", "" (no per-tag
// tracing), or a comma-separated list of decimal tags.
func ParseTags(s string) (all bool, tags []model.Tag, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return false, nil, nil
	}
	if strings.EqualFold(s, "all") {
		return true, nil, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil || v == 0 {
			return false, nil, fmt.Errorf("trace: bad tag %q (want 'all' or comma-separated decimal tags)", part)
		}
		tags = append(tags, model.Tag(v))
	}
	return false, tags, nil
}

// tagRing is a fixed-capacity overwrite-oldest ring of Records.
type tagRing struct {
	recs []Record
	next int
	n    int
}

func (r *tagRing) push(rec Record) {
	if r.n < len(r.recs) {
		r.recs[r.next] = rec
		r.next++
		r.n++
		if r.next == len(r.recs) {
			r.next = 0
		}
		return
	}
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
	}
}

// snapshot returns the ring's records oldest-first.
func (r *tagRing) snapshot() []Record {
	out := make([]Record, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.recs)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.recs[(start+i)%len(r.recs)])
	}
	return out
}

// Recorder captures provenance records and epoch spans. A nil *Recorder
// is the disabled mode: every method is a no-op (or returns a zero
// value), and producers additionally gate their recording code on
// rec != nil so disabled runs take no extra clock reads.
type Recorder struct {
	cfg    Config
	all    bool
	filter map[model.Tag]bool // nil when all or when no per-tag tracing

	mu          sync.Mutex
	tags        map[model.Tag]*tagRing
	counts      [numMechanisms]int64 // current-epoch mechanism counters
	pendIngest  int64                // ingest ns observed since the last span
	flight      []Span               // fixed-capacity ring
	flightNext  int
	flightN     int
	lastEpoch   model.Epoch
	droppedTags int64 // records lost to the MaxTags cap
}

// New creates a Recorder. Fields of cfg left zero take their defaults.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	rec := &Recorder{
		cfg:       cfg,
		all:       cfg.All,
		tags:      make(map[model.Tag]*tagRing),
		flight:    make([]Span, cfg.Epochs),
		lastEpoch: model.EpochNone,
	}
	if !cfg.All && len(cfg.Tags) > 0 {
		rec.filter = make(map[model.Tag]bool, len(cfg.Tags))
		for _, g := range cfg.Tags {
			rec.filter[g] = true
		}
	}
	return rec
}

// Config returns the effective (defaulted) configuration. Zero value on
// a nil receiver.
func (rec *Recorder) Config() Config {
	if rec == nil {
		return Config{}
	}
	return rec.cfg
}

// Traces reports whether per-tag records are kept for tag. It reads only
// immutable state, so it is safe without the lock — producers use it to
// skip building records for untraced tags on hot paths.
func (rec *Recorder) Traces(g model.Tag) bool {
	if rec == nil {
		return false
	}
	return rec.all || rec.filter[g]
}

// Record stores one provenance record. The mechanism is always counted
// into the current epoch's span; the record itself is kept only when the
// tag is traced. No-op on a nil receiver.
func (rec *Recorder) Record(r Record) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	if r.Mech < numMechanisms {
		rec.counts[r.Mech]++
	}
	if rec.all || rec.filter[r.Tag] {
		ring := rec.tags[r.Tag]
		if ring == nil {
			if len(rec.tags) >= rec.cfg.MaxTags {
				rec.droppedTags++
				rec.mu.Unlock()
				return
			}
			ring = &tagRing{recs: make([]Record, rec.cfg.PerTag)}
			rec.tags[r.Tag] = ring
		}
		ring.push(r)
	}
	rec.mu.Unlock()
}

// ObserveIngest accumulates ingest-gate time for the next span; the
// runner calls it once per gated delivery. No-op on a nil receiver.
func (rec *Recorder) ObserveIngest(ns int64) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	rec.pendIngest += ns
	rec.mu.Unlock()
}

// BeginEpoch opens a new epoch: subsequent Record calls count into the
// span that EndEpoch closes. No-op on a nil receiver.
func (rec *Recorder) BeginEpoch(now model.Epoch) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	for i := range rec.counts {
		rec.counts[i] = 0
	}
	rec.mu.Unlock()
	_ = now // the epoch is carried by the span at EndEpoch
}

// EndEpoch completes span with the epoch's mechanism counters and anomaly
// flags, then pushes it onto the flight ring (overwriting the oldest span
// at capacity). The caller fills Epoch, stage timings, and stream counts.
// No-op on a nil receiver.
func (rec *Recorder) EndEpoch(span Span) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	span.IngestNS += rec.pendIngest
	rec.pendIngest = 0
	span.Conflicts = rec.counts[MechMajorityPoll] + rec.counts[MechRuleI] +
		rec.counts[MechRuleII] + rec.counts[MechRuleIII]
	span.EdgesCreated = rec.counts[MechEdgeCreated]
	span.EdgesDropped = rec.counts[MechEdgeDropped] + rec.counts[MechEdgePruned]
	span.Confirmations = rec.counts[MechConfirmed]
	span.Resurrections = rec.counts[MechResurrected]
	if span.Conflicts >= int64(rec.cfg.ConflictStorm) {
		span.Anomalies = append(span.Anomalies, AnomalyConflictStorm)
	}
	if span.EdgesDropped >= int64(rec.cfg.EdgeChurn) {
		span.Anomalies = append(span.Anomalies, AnomalyEdgeChurn)
	}
	if rec.lastEpoch != model.EpochNone && span.Epoch > rec.lastEpoch+1 {
		span.Anomalies = append(span.Anomalies, AnomalyEpochGap)
	}
	rec.lastEpoch = span.Epoch
	rec.flight[rec.flightNext] = span
	rec.flightNext++
	if rec.flightNext == len(rec.flight) {
		rec.flightNext = 0
	}
	if rec.flightN < len(rec.flight) {
		rec.flightN++
	}
	rec.mu.Unlock()
}

// Spans returns the retained epoch spans, oldest first. Nil on a nil
// receiver.
func (rec *Recorder) Spans() []Span {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]Span, 0, rec.flightN)
	start := rec.flightNext - rec.flightN
	if start < 0 {
		start += len(rec.flight)
	}
	for i := 0; i < rec.flightN; i++ {
		out = append(out, rec.flight[(start+i)%len(rec.flight)])
	}
	return out
}

// TagRecords returns the retained records for tag, oldest first. Nil when
// the tag has none or the receiver is nil.
func (rec *Recorder) TagRecords(g model.Tag) []Record {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	ring := rec.tags[g]
	if ring == nil {
		return nil
	}
	return ring.snapshot()
}

// TracedTags returns the tags with live record rings, sorted. Nil on a
// nil receiver.
func (rec *Recorder) TracedTags() []model.Tag {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	out := make([]model.Tag, 0, len(rec.tags))
	for g := range rec.tags {
		out = append(out, g)
	}
	rec.mu.Unlock()
	slices.Sort(out)
	return out
}

// DroppedTags reports how many records were discarded because the MaxTags
// cap was reached. Zero on a nil receiver.
func (rec *Recorder) DroppedTags() int64 {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.droppedTags
}
