package federate

import (
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"time"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/stream"
)

// CoordinatorConfig configures the federation coordinator.
type CoordinatorConfig struct {
	// Zones is the cluster size; workers must announce zone IDs in
	// [0, Zones).
	Zones int

	// Sink receives each merged epoch's events, in epoch order, with the
	// barrier already applied. The final call delivers the closing
	// events. Sink runs on the merge loop; a returned error aborts Serve.
	Sink func(epoch model.Epoch, events []event.Event) error

	// StragglerTimeout bounds how long the epoch barrier waits without
	// progress before failing and naming the zones that are behind
	// (default 30s). Progress means any zone delivering any batch.
	StragglerTimeout time.Duration

	// Logf, when set, receives connection and progress diagnostics.
	Logf func(format string, args ...any)
}

// zoneConn tracks one zone's delivery and ack state.
type zoneConn struct {
	batches map[model.Epoch][]event.Event // delivered, unmerged
	highest model.Epoch                   // highest epoch ever delivered (dedup)
	acked   model.Epoch
	fin     bool
	finAt   model.Epoch

	mu        sync.Mutex // guards writes to conn and finalSent
	conn      net.Conn   // live connection, if any
	finalSent bool       // the final epoch's mark reached this zone (Ack or HelloAck)
}

// Coordinator accepts zone-worker connections, aligns their per-epoch
// batches on an epoch barrier, drives the Merger in fixed zone order,
// and acks each epoch back once merged. It serves one cluster run.
type Coordinator struct {
	cfg    CoordinatorConfig
	merger *Merger

	mu     sync.Mutex
	zones  []*zoneConn
	notify chan struct{}
	final  model.Epoch // the final merged epoch, once known (else EpochNone)

	events int64
}

// NewCoordinator builds a coordinator for a cluster of cfg.Zones workers.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Zones < 1 {
		return nil, fmt.Errorf("federate: coordinator needs at least 1 zone, got %d", cfg.Zones)
	}
	if cfg.StragglerTimeout <= 0 {
		cfg.StragglerTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:    cfg,
		merger: NewMerger(),
		zones:  make([]*zoneConn, cfg.Zones),
		notify: make(chan struct{}, 1),
		final:  model.EpochNone,
	}
	for z := range c.zones {
		c.zones[z] = &zoneConn{
			batches: make(map[model.Epoch][]event.Event),
			highest: model.EpochNone,
			acked:   model.EpochNone,
			finAt:   model.EpochNone,
		}
	}
	return c, nil
}

// MergedEvents reports the number of events merged so far.
func (c *Coordinator) MergedEvents() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// Serve accepts workers on ln and merges until every zone has delivered
// its Fin and the final epoch is merged, then returns nil. It returns an
// error on context cancellation, a straggler timeout, or a sink failure.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-actx.Done()
		ln.Close()
	}()
	go c.acceptLoop(actx, ln)
	return c.mergeLoop(actx)
}

func (c *Coordinator) acceptLoop(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown) — merge loop decides the outcome
		}
		go c.handleConn(ctx, conn)
	}
}

// handleConn serves one worker connection: handshake, then deliveries.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	hello, err := stream.ReadFrame(conn)
	if err != nil || hello.Type != stream.FrameHello {
		c.cfg.Logf("coordinator: bad handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Zone < 0 || hello.Zone >= c.cfg.Zones {
		c.cfg.Logf("coordinator: zone %d out of range [0,%d)", hello.Zone, c.cfg.Zones)
		return
	}
	zc := c.zones[hello.Zone]

	c.mu.Lock()
	acked := zc.acked
	final := c.final
	c.mu.Unlock()
	zc.mu.Lock()
	if zc.conn != nil {
		zc.conn.Close() // a reconnecting worker replaces its old link
	}
	zc.conn = conn
	err = stream.WriteFrame(conn, &stream.Frame{Type: stream.FrameHelloAck, Epoch: acked})
	if err == nil && final != model.EpochNone && acked >= final {
		zc.finalSent = true // the HelloAck itself carried the final mark
	}
	zc.mu.Unlock()
	if err != nil {
		return
	}
	c.cfg.Logf("coordinator: zone %d connected (acked through %d)", hello.Zone, acked)

	defer func() {
		zc.mu.Lock()
		if zc.conn == conn {
			zc.conn = nil
		}
		zc.mu.Unlock()
	}()
	for {
		f, err := stream.ReadFrame(conn)
		if err != nil {
			if ctx.Err() == nil {
				c.cfg.Logf("coordinator: zone %d connection lost: %v", hello.Zone, err)
			}
			return
		}
		switch f.Type {
		case stream.FrameEpoch, stream.FrameFin:
			c.deliver(ZoneID(hello.Zone), f)
		default:
			c.cfg.Logf("coordinator: zone %d sent unexpected %s frame", hello.Zone, f.Type)
			return
		}
	}
}

// deliver stores one zone's batch, discarding epochs the coordinator has
// already seen (re-sends after a worker reconnect or restart).
func (c *Coordinator) deliver(zone ZoneID, f *stream.Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	zc := c.zones[zone]
	if f.Epoch <= zc.highest {
		return // duplicate of an epoch already delivered
	}
	zc.batches[f.Epoch] = f.Events
	zc.highest = f.Epoch
	if f.Type == stream.FrameFin {
		zc.fin = true
		zc.finAt = f.Epoch
	}
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// mergeLoop advances the epoch barrier: epoch T merges once every zone
// has delivered T, zones ingest in fixed order 0..N-1, the barrier's
// deferred resolutions run, the merged events go to the sink, and T is
// acked to every zone.
func (c *Coordinator) mergeLoop(ctx context.Context) error {
	next := model.EpochNone // next epoch to merge; EpochNone until known
	for {
		c.mu.Lock()
		if next == model.EpochNone {
			next = c.firstEpochLocked()
		}
		ready := next != model.EpochNone && c.readyLocked(next)
		final := ready && c.allFinAtLocked(next)
		var batches [][]event.Event
		if ready {
			batches = make([][]event.Event, c.cfg.Zones)
			for z, zc := range c.zones {
				batches[z] = zc.batches[next]
				delete(zc.batches, next)
			}
		}
		c.mu.Unlock()

		if !ready {
			if err := c.waitDelivery(ctx, next); err != nil {
				return err
			}
			continue
		}

		var merged []event.Event
		for z, b := range batches {
			out, err := c.merger.Ingest(ZoneID(z), b)
			if err != nil {
				return fmt.Errorf("federate: coordinator: zone %d epoch %d: %w", z, next, err)
			}
			merged = append(merged, out...)
		}
		if final {
			// The Fin batches carry every zone's closing events, emitted
			// at this epoch; Close runs the last barrier and ends any
			// interval still open in the merged state.
			merged = append(merged, c.merger.Close(next)...)
		} else {
			merged = append(merged, c.merger.EndEpoch()...)
		}

		c.mu.Lock()
		c.events += int64(len(merged))
		for _, zc := range c.zones {
			if next > zc.acked {
				zc.acked = next
			}
		}
		if final {
			c.final = next
		}
		c.mu.Unlock()
		if c.cfg.Sink != nil {
			if err := c.cfg.Sink(next, merged); err != nil {
				return fmt.Errorf("federate: coordinator sink at epoch %d: %w", next, err)
			}
		}
		c.ack(next)
		if final {
			c.cfg.Logf("coordinator: merged final epoch %d; %d events total", next, c.MergedEvents())
			c.lingerForFinalAcks(ctx)
			return nil
		}
		next++
	}
}

// firstEpochLocked finds the first epoch to merge: the minimum delivered
// epoch once every zone has delivered something. All zones interpret the
// same warehouse timeline, so their first epochs coincide; the minimum
// guards against a misaligned zone (which would then trip the barrier's
// straggler timeout, naming it).
func (c *Coordinator) firstEpochLocked() model.Epoch {
	first := model.EpochNone
	for _, zc := range c.zones {
		if len(zc.batches) == 0 {
			return model.EpochNone
		}
		for e := range zc.batches {
			if first == model.EpochNone || e < first {
				first = e
			}
		}
	}
	return first
}

func (c *Coordinator) readyLocked(epoch model.Epoch) bool {
	for _, zc := range c.zones {
		if _, ok := zc.batches[epoch]; !ok {
			return false
		}
	}
	return true
}

func (c *Coordinator) allFinAtLocked(epoch model.Epoch) bool {
	for _, zc := range c.zones {
		if !zc.fin || zc.finAt != epoch {
			return false
		}
	}
	return true
}

// waitDelivery blocks until some zone delivers a batch, or the straggler
// timeout expires — in which case the error names the zones holding up
// the barrier for the wanted epoch.
func (c *Coordinator) waitDelivery(ctx context.Context, wanted model.Epoch) error {
	select {
	case <-c.notify:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(c.cfg.StragglerTimeout):
		return c.stragglerError(wanted)
	}
}

func (c *Coordinator) stragglerError(wanted model.Epoch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var missing []int
	for z, zc := range c.zones {
		if wanted == model.EpochNone {
			if len(zc.batches) == 0 {
				missing = append(missing, z)
			}
		} else if _, ok := zc.batches[wanted]; !ok {
			missing = append(missing, z)
		}
	}
	slices.Sort(missing)
	if wanted == model.EpochNone {
		return fmt.Errorf("federate: epoch barrier stalled after %v waiting for first batch from zones %v",
			c.cfg.StragglerTimeout, missing)
	}
	return fmt.Errorf("federate: epoch barrier stalled after %v waiting for epoch %d from zones %v",
		c.cfg.StragglerTimeout, wanted, missing)
}

// ack sends the merged-through mark to every connected zone. Dead
// connections are skipped — a reconnecting worker learns the mark from
// its HelloAck instead.
func (c *Coordinator) ack(epoch model.Epoch) {
	c.mu.Lock()
	final := c.final
	c.mu.Unlock()
	for z, zc := range c.zones {
		zc.mu.Lock()
		if zc.conn != nil {
			if err := stream.WriteFrame(zc.conn, &stream.Frame{Type: stream.FrameAck, Epoch: epoch}); err != nil {
				c.cfg.Logf("coordinator: ack %d to zone %d: %v", epoch, z, err)
				zc.conn.Close()
				zc.conn = nil
			} else if final != model.EpochNone && epoch >= final {
				zc.finalSent = true
			}
		}
		zc.mu.Unlock()
	}
}

// lingerForFinalAcks keeps the coordinator alive briefly after the final
// merge until every zone has received the final mark — either through
// the Ack just written, or through the HelloAck of a worker that was
// mid-reconnect when the run completed. Without this, a zone whose
// connection was down at the final merge would retry against a vanished
// coordinator forever.
func (c *Coordinator) lingerForFinalAcks(ctx context.Context) {
	deadline := time.After(c.cfg.StragglerTimeout)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		var pending []int
		for z, zc := range c.zones {
			zc.mu.Lock()
			if !zc.finalSent {
				pending = append(pending, z)
			}
			zc.mu.Unlock()
		}
		if len(pending) == 0 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-deadline:
			c.cfg.Logf("coordinator: zones %v never received the final ack; exiting anyway", pending)
			return
		case <-tick.C:
		}
	}
}
