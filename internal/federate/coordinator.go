package federate

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"slices"
	"sync"
	"time"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/stream"
	"spire/internal/trace"
)

// CoordinatorConfig configures the federation coordinator.
type CoordinatorConfig struct {
	// Zones is the cluster size; workers must announce zone IDs in
	// [0, Zones).
	Zones int

	// Sink receives each merged epoch's events, in epoch order, with the
	// barrier already applied. The final call delivers the closing
	// events. Sink runs on the merge loop; a returned error aborts Serve.
	Sink func(epoch model.Epoch, events []event.Event) error

	// StragglerTimeout bounds how long the epoch barrier waits without
	// progress before failing and naming the zones that are behind
	// (default 30s). Progress means any zone delivering any batch.
	StragglerTimeout time.Duration

	// StragglerWarnFraction is the fraction of StragglerTimeout after
	// which a stalled barrier wait emits a warn-level near-miss naming
	// the missing zones — the operator's heads-up before the fatal
	// timeout (default 0.5; clamped to (0, 1)).
	StragglerWarnFraction float64

	// SerialMerge selects the serial reference Merger instead of the
	// sharded ParallelMerger. The two are byte-identical by contract
	// (the differential suite pins it); the serial path exists as the
	// oracle and for single-core deployments that prefer no extra
	// goroutines at the barrier.
	SerialMerge bool

	// MergeShards sets the ParallelMerger's shard count (0 selects the
	// default). Ignored under SerialMerge.
	MergeShards int

	// Logf, when set, receives connection and progress diagnostics in
	// printf form. Log, when set, receives the same transitions as
	// structured records (and near-miss warnings at warn level); the two
	// are independent and either may be nil.
	Logf func(format string, args ...any)
	Log  *slog.Logger
}

// zoneConn tracks one zone's delivery and ack state.
type zoneConn struct {
	batches map[model.Epoch][]event.Event // delivered, unmerged
	highest model.Epoch                   // highest epoch ever delivered (dedup)
	acked   model.Epoch
	fin     bool
	finAt   model.Epoch

	// Observability bookkeeping, guarded by the coordinator mutex like
	// the delivery state above.
	nearMisses   int64
	lastDelivery time.Time

	mu            sync.Mutex // guards writes to conn and the fields below
	conn          net.Conn   // live connection, if any
	wantBye       bool       // latest Hello advertised CapBye: require a Bye frame
	finalSent     bool       // the final epoch's mark reached this zone (Bye, or Ack/HelloAck for legacy workers)
	everConnected bool       // a Hello handshake has completed at least once
	connects      int64      // completed handshakes, reconnects included
}

// Coordinator accepts zone-worker connections, aligns their per-epoch
// batches on an epoch barrier, drives the Merger in fixed zone order,
// and acks each epoch back once merged. It serves one cluster run.
type Coordinator struct {
	cfg     CoordinatorConfig
	merger  *Merger         // serial oracle path (cfg.SerialMerge)
	pmerger *ParallelMerger // sharded default path
	tel     *CoordinatorInstruments
	ctrace  *trace.ConnRecorder

	// evPool recycles decoded event slices: a frame is decoded into a
	// pooled slice on its zone's connection goroutine, the slice is owned
	// by the delivery map until the barrier merges the epoch, and the
	// merge loop returns it here.
	evPool sync.Pool

	mu     sync.Mutex
	zones  []*zoneConn
	notify chan struct{}
	final  model.Epoch // the final merged epoch, once known (else EpochNone)

	barrier      model.Epoch // epoch the barrier is merging or waiting for
	mergedEpochs int64
	nearMisses   int64
	lingerSecs   float64

	events int64
}

// NewCoordinator builds a coordinator for a cluster of cfg.Zones workers.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Zones < 1 {
		return nil, fmt.Errorf("federate: coordinator needs at least 1 zone, got %d", cfg.Zones)
	}
	if cfg.StragglerTimeout <= 0 {
		cfg.StragglerTimeout = 30 * time.Second
	}
	if cfg.StragglerWarnFraction <= 0 || cfg.StragglerWarnFraction >= 1 {
		cfg.StragglerWarnFraction = 0.5
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		zones:   make([]*zoneConn, cfg.Zones),
		notify:  make(chan struct{}, 1),
		final:   model.EpochNone,
		barrier: model.EpochNone,
	}
	if cfg.SerialMerge {
		c.merger = NewMerger()
	} else {
		c.pmerger = NewParallelMerger(cfg.MergeShards)
	}
	for z := range c.zones {
		c.zones[z] = &zoneConn{
			batches: make(map[model.Epoch][]event.Event),
			highest: model.EpochNone,
			acked:   model.EpochNone,
			finAt:   model.EpochNone,
		}
	}
	return c, nil
}

// TraceConn attaches a connection flight recorder; nil detaches. Call
// before Serve.
func (c *Coordinator) TraceConn(rec *trace.ConnRecorder) { c.ctrace = rec }

// MergedEvents reports the number of events merged so far.
func (c *Coordinator) MergedEvents() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// timed reports whether the coordinator should read the clock for
// latency metrics — the same gating contract as the epoch pipeline:
// uninstrumented runs take no timing branches.
func (c *Coordinator) timed() bool { return c.tel != nil || c.ctrace != nil }

// Serve accepts workers on ln and merges until every zone has delivered
// its Fin and the final epoch is merged, then returns nil. It returns an
// error on context cancellation, a straggler timeout, or a sink failure.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-actx.Done()
		ln.Close()
	}()
	go c.acceptLoop(actx, ln)
	return c.mergeLoop(actx)
}

func (c *Coordinator) acceptLoop(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown) — merge loop decides the outcome
		}
		go c.handleConn(ctx, conn)
	}
}

// handleConn serves one worker connection: handshake, then deliveries.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	hello, n, err := stream.ReadFrameCount(conn)
	if err != nil || hello.Type != stream.FrameHello {
		c.cfg.Logf("coordinator: bad handshake from %v: %v", conn.RemoteAddr(), err)
		if c.cfg.Log != nil {
			c.cfg.Log.Warn("bad handshake", "remote", fmt.Sprint(conn.RemoteAddr()), "err", err)
		}
		return
	}
	if hello.Zone < 0 || hello.Zone >= c.cfg.Zones {
		c.cfg.Logf("coordinator: zone %d out of range [0,%d)", hello.Zone, c.cfg.Zones)
		if c.cfg.Log != nil {
			c.cfg.Log.Warn("zone out of range", "zone", hello.Zone, "zones", c.cfg.Zones)
		}
		return
	}
	zc := c.zones[hello.Zone]
	c.tel.zoneRxBytes(hello.Zone).Add(int64(n))

	c.mu.Lock()
	acked := zc.acked
	final := c.final
	c.mu.Unlock()
	zc.mu.Lock()
	if zc.conn != nil {
		zc.conn.Close() // a reconnecting worker replaces its old link
	}
	zc.conn = conn
	zc.everConnected = true
	zc.connects++
	zc.wantBye = hello.Caps&stream.CapBye != 0
	// Ack the caps intersection: a legacy worker sends caps 0 and gets
	// row frames; a columnar worker gets the columnar bit echoed back
	// and may use the columnar epoch encodings on this connection.
	err = stream.WriteFrame(conn, &stream.Frame{Type: stream.FrameHelloAck, Epoch: acked,
		Caps: (stream.CapColumnarEpoch | stream.CapBye) & hello.Caps})
	if err == nil && final != model.EpochNone && acked >= final && !zc.wantBye {
		// A legacy worker (no Bye handshake) learns the final mark from
		// the HelloAck itself; a successful write is the best delivery
		// signal its protocol revision offers. Bye-capable workers confirm
		// explicitly instead — a write that succeeds just before the link
		// dies proves nothing about what the peer read.
		zc.finalSent = true
	}
	zc.mu.Unlock()
	if err != nil {
		return
	}
	c.tel.zoneConnects(hello.Zone).Inc()
	c.tel.zoneConnected(hello.Zone).Set(1)
	c.ctrace.Record(trace.ConnEvent{Kind: trace.ConnConnect, Zone: hello.Zone, Epoch: acked,
		Detail: "handshake complete; acked mark sent"})
	c.cfg.Logf("coordinator: zone %d connected (acked through %d)", hello.Zone, acked)
	if c.cfg.Log != nil {
		c.cfg.Log.Info("zone connected", "zone", hello.Zone, "acked", int64(acked), "worker_epoch", int64(hello.Epoch))
	}

	defer func() {
		zc.mu.Lock()
		if zc.conn == conn {
			zc.conn = nil
			c.tel.zoneConnected(hello.Zone).Set(0)
		}
		zc.mu.Unlock()
	}()
	// Frames decode into pooled event slices: a delivered batch keeps its
	// slice until the barrier merges that epoch; duplicates hand theirs
	// straight back as the next read's scratch.
	scratch := c.getEvents()
	defer func() { c.putEvents(scratch) }()
	for {
		f, n, err := stream.ReadFrameCountInto(conn, scratch[:0])
		if err != nil {
			if ctx.Err() == nil {
				c.cfg.Logf("coordinator: zone %d connection lost: %v", hello.Zone, err)
				if c.cfg.Log != nil {
					c.cfg.Log.Warn("zone connection lost", "zone", hello.Zone, "err", err)
				}
				c.ctrace.Record(trace.ConnEvent{Kind: trace.ConnLost, Zone: hello.Zone,
					Detail: err.Error()})
			}
			return
		}
		c.tel.zoneRxBytes(hello.Zone).Add(int64(n))
		switch f.Type {
		case stream.FrameEpoch, stream.FrameFin, stream.FrameEpochCols, stream.FrameFinCols:
			if c.deliver(ZoneID(hello.Zone), f) {
				scratch = c.getEvents()
			} else {
				scratch = f.Events // duplicate dropped; reuse its storage
			}
		case stream.FrameBye:
			// The worker confirms it observed the final ack and is
			// exiting; the post-run linger stops waiting on this zone.
			zc.mu.Lock()
			zc.finalSent = true
			zc.mu.Unlock()
			c.cfg.Logf("coordinator: zone %d said goodbye (acked %d)", hello.Zone, f.Epoch)
			if c.cfg.Log != nil {
				c.cfg.Log.Info("zone goodbye", "zone", hello.Zone, "acked", int64(f.Epoch))
			}
			return
		default:
			c.cfg.Logf("coordinator: zone %d sent unexpected %s frame", hello.Zone, f.Type)
			if c.cfg.Log != nil {
				c.cfg.Log.Warn("unexpected frame", "zone", hello.Zone, "frame", f.Type.String())
			}
			return
		}
	}
}

// deliver stores one zone's batch, discarding epochs the coordinator has
// already seen (re-sends after a worker reconnect or restart). It
// reports whether the batch was stored — a stored batch owns its event
// slice until the merge loop recycles it.
func (c *Coordinator) deliver(zone ZoneID, f *stream.Frame) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	zc := c.zones[zone]
	zc.lastDelivery = time.Now()
	if f.Epoch <= zc.highest {
		return false // duplicate of an epoch already delivered
	}
	zc.batches[f.Epoch] = f.Events
	zc.highest = f.Epoch
	if f.Type == stream.FrameFin || f.Type == stream.FrameFinCols {
		zc.fin = true
		zc.finAt = f.Epoch
		if c.cfg.Log != nil {
			c.cfg.Log.Info("zone finished", "zone", int(zone), "epoch", int64(f.Epoch))
		}
	}
	if c.tel != nil {
		c.tel.zoneEpochs(int(zone)).Inc()
		c.tel.zoneEvents(int(zone)).Add(int64(len(f.Events)))
		c.updateZoneGaugesLocked()
	}
	select {
	case c.notify <- struct{}{}:
	default:
	}
	return true
}

// getEvents and putEvents recycle decoded event slices between the
// per-zone connection goroutines (which fill them) and the merge loop
// (which drains them after the barrier).
func (c *Coordinator) getEvents() []event.Event {
	if p, ok := c.evPool.Get().(*[]event.Event); ok {
		return (*p)[:0]
	}
	return nil
}

func (c *Coordinator) putEvents(ev []event.Event) {
	if cap(ev) == 0 {
		return
	}
	ev = ev[:0]
	c.evPool.Put(&ev)
}

// updateZoneGaugesLocked refreshes the per-zone lag and pending gauges
// from the delivery state. Caller holds c.mu; only called instrumented.
func (c *Coordinator) updateZoneGaugesLocked() {
	leader := model.EpochNone
	for _, zc := range c.zones {
		if zc.highest > leader {
			leader = zc.highest
		}
	}
	for z, zc := range c.zones {
		var lag int64
		if zc.highest != model.EpochNone && leader > zc.highest {
			lag = int64(leader - zc.highest)
		} else if zc.highest == model.EpochNone && leader != model.EpochNone {
			lag = int64(leader) + 1
		}
		c.tel.zoneLag(z).Set(lag)
		c.tel.zonePending(z).Set(int64(len(zc.batches)))
	}
}

// mergeLoop advances the epoch barrier: epoch T merges once every zone
// has delivered T, zones ingest in fixed order 0..N-1, the barrier's
// deferred resolutions run, the merged events go to the sink, and T is
// acked to every zone.
func (c *Coordinator) mergeLoop(ctx context.Context) error {
	next := model.EpochNone // next epoch to merge; EpochNone until known
	var wantSince time.Time // when the barrier started wanting `next`
	if c.timed() {
		wantSince = time.Now()
	}
	for {
		c.mu.Lock()
		if next == model.EpochNone {
			next = c.firstEpochLocked()
		}
		c.barrier = next
		if c.tel != nil && next != model.EpochNone {
			c.tel.BarrierEpoch.Set(int64(next))
		}
		ready := next != model.EpochNone && c.readyLocked(next)
		final := ready && c.allFinAtLocked(next)
		var batches [][]event.Event
		if ready {
			batches = make([][]event.Event, c.cfg.Zones)
			for z, zc := range c.zones {
				batches[z] = zc.batches[next]
				delete(zc.batches, next)
			}
			if c.tel != nil {
				c.updateZoneGaugesLocked()
			}
		}
		c.mu.Unlock()

		if !ready {
			if err := c.waitDelivery(ctx, next); err != nil {
				return err
			}
			continue
		}

		if c.tel != nil && !wantSince.IsZero() {
			// Time-at-barrier for this epoch: from the moment the barrier
			// began wanting it (right after the previous merge) until every
			// zone's batch arrived and the merge starts.
			c.tel.BarrierWait.Observe(time.Since(wantSince).Seconds())
		}

		var merged []event.Event
		if c.merger != nil {
			// Serial oracle path: zones ingest in fixed order, then the
			// barrier. The Fin batches carry every zone's closing events,
			// emitted at this epoch; Close runs the last barrier and ends
			// any interval still open in the merged state.
			for z, b := range batches {
				out, err := c.merger.Ingest(ZoneID(z), b)
				if err != nil {
					return fmt.Errorf("federate: coordinator: zone %d epoch %d: %w", z, next, err)
				}
				merged = append(merged, out...)
			}
			if final {
				merged = append(merged, c.merger.Close(next)...)
			} else {
				merged = append(merged, c.merger.EndEpoch()...)
			}
		} else {
			var err error
			merged, err = c.pmerger.MergeEpoch(next, batches, final)
			if err != nil {
				return fmt.Errorf("federate: coordinator: epoch %d: %w", next, err)
			}
		}
		// The merge copied everything it keeps; the decoded slices go
		// back to the pool for the connection readers.
		for _, b := range batches {
			c.putEvents(b)
		}

		c.mu.Lock()
		c.events += int64(len(merged))
		c.mergedEpochs++
		for _, zc := range c.zones {
			if next > zc.acked {
				zc.acked = next
			}
		}
		if final {
			c.final = next
		}
		c.mu.Unlock()
		if c.tel != nil {
			c.tel.MergedEpochs.Inc()
			c.tel.MergedEvents.Add(int64(len(merged)))
		}
		if c.cfg.Sink != nil {
			if err := c.cfg.Sink(next, merged); err != nil {
				return fmt.Errorf("federate: coordinator sink at epoch %d: %w", next, err)
			}
		}
		c.ack(next)
		if final {
			c.cfg.Logf("coordinator: merged final epoch %d; %d events total", next, c.MergedEvents())
			if c.cfg.Log != nil {
				c.cfg.Log.Info("final epoch merged", "epoch", int64(next), "events", c.MergedEvents())
			}
			c.lingerForFinalAcks(ctx)
			return nil
		}
		next++
		if c.timed() {
			wantSince = time.Now()
		}
	}
}

// firstEpochLocked finds the first epoch to merge: the minimum delivered
// epoch once every zone has delivered something. All zones interpret the
// same warehouse timeline, so their first epochs coincide; the minimum
// guards against a misaligned zone (which would then trip the barrier's
// straggler timeout, naming it).
func (c *Coordinator) firstEpochLocked() model.Epoch {
	first := model.EpochNone
	for _, zc := range c.zones {
		if len(zc.batches) == 0 {
			return model.EpochNone
		}
		for e := range zc.batches {
			if first == model.EpochNone || e < first {
				first = e
			}
		}
	}
	return first
}

func (c *Coordinator) readyLocked(epoch model.Epoch) bool {
	for _, zc := range c.zones {
		if _, ok := zc.batches[epoch]; !ok {
			return false
		}
	}
	return true
}

func (c *Coordinator) allFinAtLocked(epoch model.Epoch) bool {
	for _, zc := range c.zones {
		if !zc.fin || zc.finAt != epoch {
			return false
		}
	}
	return true
}

// waitDelivery blocks until some zone delivers a batch, or the straggler
// timeout expires — in which case the error names the zones holding up
// the barrier for the wanted epoch. A wait that crosses the warn
// fraction of the timeout first raises a near-miss: the missing zones
// are named at warn level and counted, so an operator (or an alert on
// spire_fed_straggler_near_miss_total) sees the culprit before the run
// dies.
func (c *Coordinator) waitDelivery(ctx context.Context, wanted model.Epoch) error {
	warnAfter := time.Duration(float64(c.cfg.StragglerTimeout) * c.cfg.StragglerWarnFraction)
	warn := time.NewTimer(warnAfter)
	defer warn.Stop()
	full := time.NewTimer(c.cfg.StragglerTimeout)
	defer full.Stop()
	warnC := warn.C
	for {
		select {
		case <-c.notify:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-warnC:
			c.nearMiss(wanted, warnAfter)
			warnC = nil // one near-miss per stalled wait
		case <-full.C:
			missing := c.missingZones(wanted)
			c.ctrace.Record(trace.ConnEvent{Kind: trace.ConnBarrierStall, Epoch: wanted,
				Detail:     fmt.Sprintf("zones %v", missing),
				DurationMS: float64(c.cfg.StragglerTimeout.Milliseconds())})
			if c.cfg.Log != nil {
				c.cfg.Log.Error("barrier straggler timeout", "epoch", int64(wanted),
					"zones", fmt.Sprint(missing), "waited", c.cfg.StragglerTimeout.String())
			}
			return c.stragglerError(wanted, missing)
		}
	}
}

// nearMiss records a barrier wait that crossed the warn fraction of the
// straggler timeout, naming the zones still missing the wanted epoch.
func (c *Coordinator) nearMiss(wanted model.Epoch, waited time.Duration) {
	missing := c.missingZones(wanted)
	c.mu.Lock()
	c.nearMisses++
	for _, z := range missing {
		c.zones[z].nearMisses++
	}
	c.mu.Unlock()
	for _, z := range missing {
		c.tel.nearMiss(z).Inc()
	}
	c.ctrace.Record(trace.ConnEvent{Kind: trace.ConnNearMiss, Epoch: wanted,
		Detail:     fmt.Sprintf("zones %v", missing),
		DurationMS: float64(waited.Milliseconds())})
	c.cfg.Logf("coordinator: barrier near-miss: epoch %d still missing from zones %v after %v (timeout %v)",
		wanted, missing, waited, c.cfg.StragglerTimeout)
	if c.cfg.Log != nil {
		c.cfg.Log.Warn("barrier near-miss", "epoch", int64(wanted), "zones", fmt.Sprint(missing),
			"waited", waited.String(), "timeout", c.cfg.StragglerTimeout.String())
	}
}

// missingZones lists the zones that have not delivered the wanted epoch
// (or, before the first epoch is known, anything at all).
func (c *Coordinator) missingZones(wanted model.Epoch) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var missing []int
	for z, zc := range c.zones {
		if wanted == model.EpochNone {
			if len(zc.batches) == 0 {
				missing = append(missing, z)
			}
		} else if _, ok := zc.batches[wanted]; !ok {
			missing = append(missing, z)
		}
	}
	slices.Sort(missing)
	return missing
}

func (c *Coordinator) stragglerError(wanted model.Epoch, missing []int) error {
	if wanted == model.EpochNone {
		return fmt.Errorf("federate: epoch barrier stalled after %v waiting for first batch from zones %v",
			c.cfg.StragglerTimeout, missing)
	}
	return fmt.Errorf("federate: epoch barrier stalled after %v waiting for epoch %d from zones %v",
		c.cfg.StragglerTimeout, wanted, missing)
}

// ack sends the merged-through mark to every connected zone. Dead
// connections are skipped — a reconnecting worker learns the mark from
// its HelloAck instead.
func (c *Coordinator) ack(epoch model.Epoch) {
	c.mu.Lock()
	final := c.final
	c.mu.Unlock()
	for z, zc := range c.zones {
		zc.mu.Lock()
		if zc.conn != nil {
			if err := stream.WriteFrame(zc.conn, &stream.Frame{Type: stream.FrameAck, Epoch: epoch}); err != nil {
				c.cfg.Logf("coordinator: ack %d to zone %d: %v", epoch, z, err)
				if c.cfg.Log != nil {
					c.cfg.Log.Warn("ack write failed", "zone", z, "epoch", int64(epoch), "err", err)
				}
				zc.conn.Close()
				zc.conn = nil
				c.tel.zoneConnected(z).Set(0)
			} else if final != model.EpochNone && epoch >= final && !zc.wantBye {
				// Legacy workers only: treat the successful final-ack write
				// as delivery. Bye-capable workers must say goodbye — the
				// write can succeed into a connection that dies before the
				// worker reads it.
				zc.finalSent = true
			}
		}
		zc.mu.Unlock()
	}
}

// lingerForFinalAcks keeps the coordinator alive briefly after the final
// merge until every zone has received the final mark — confirmed by the
// worker's Bye frame, or (for legacy workers without the Bye handshake)
// assumed from a successfully written Ack or HelloAck. Without this, a
// zone whose connection was down at the final merge would retry against
// a vanished coordinator forever.
func (c *Coordinator) lingerForFinalAcks(ctx context.Context) {
	start := time.Now()
	deadline := time.After(c.cfg.StragglerTimeout)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	record := func(pending []int) {
		lingered := time.Since(start)
		c.mu.Lock()
		c.lingerSecs = lingered.Seconds()
		c.mu.Unlock()
		if c.tel != nil {
			c.tel.LingerMS.Set(lingered.Milliseconds())
			c.tel.LingerMissed.Add(int64(len(pending)))
		}
		c.ctrace.Record(trace.ConnEvent{Kind: trace.ConnFinalLinger,
			Detail:     fmt.Sprintf("pending zones %v", pending),
			DurationMS: float64(lingered.Milliseconds())})
	}
	for {
		var pending []int
		for z, zc := range c.zones {
			zc.mu.Lock()
			if !zc.finalSent {
				pending = append(pending, z)
			}
			zc.mu.Unlock()
		}
		if len(pending) == 0 {
			record(nil)
			return
		}
		select {
		case <-ctx.Done():
			record(pending)
			return
		case <-deadline:
			record(pending)
			c.cfg.Logf("coordinator: zones %v never received the final ack; exiting anyway", pending)
			if c.cfg.Log != nil {
				c.cfg.Log.Warn("final ack undelivered", "zones", fmt.Sprint(pending))
			}
			return
		case <-tick.C:
		}
	}
}
