package federate

import (
	"fmt"
	"slices"
	"time"

	"spire/internal/model"
)

// ZoneState is one zone's position in the cluster lifecycle, as either
// side of the link sees it.
//
// Coordinator view: a zone is connecting until its first completed
// Hello handshake, streaming while a live link exists, lost while
// disconnected after having connected, and finished once its Fin batch
// has been delivered (a finished zone stays finished even if its link
// drops before the final ack reaches it — delivery is complete).
//
// Worker view: connecting while dialing (initially and between
// retries), streaming while the link is up, lost after a drop until the
// redial succeeds, and finished when Run has returned successfully.
type ZoneState string

const (
	ZoneConnecting ZoneState = "connecting"
	ZoneStreaming  ZoneState = "streaming"
	ZoneFinished   ZoneState = "finished"
	ZoneLost       ZoneState = "lost"
)

// ZoneStatus is the coordinator's live view of one zone.
type ZoneStatus struct {
	Zone  int       `json:"zone"`
	State ZoneState `json:"state"`
	// Connected reports a live link right now (streaming implies true).
	Connected bool `json:"connected"`
	// LastEpoch is the highest epoch the zone has delivered
	// (model.EpochNone, -1, before the first batch).
	LastEpoch model.Epoch `json:"last_epoch"`
	// Acked is the highest epoch merged and acked back to the zone.
	Acked model.Epoch `json:"acked"`
	// Lag is how many epochs this zone's deliveries trail the most
	// advanced zone's — the "which zone is holding the barrier" number.
	Lag int64 `json:"lag"`
	// ReplayDepth counts epochs the zone has delivered that the barrier
	// has not merged yet (they sit in the coordinator's replay window
	// waiting for slower zones).
	ReplayDepth int `json:"replay_depth"`
	// Connects counts completed Hello handshakes (reconnects included).
	Connects int64 `json:"connects"`
	// NearMisses counts barrier waits that crossed the warn fraction of
	// the straggler timeout while this zone was among the missing.
	NearMisses int64 `json:"near_misses"`
	// SecondsSinceDelivery is the age of the zone's last delivered
	// batch; zero until the first delivery.
	SecondsSinceDelivery float64 `json:"seconds_since_delivery,omitempty"`
}

// ClusterStatus is a point-in-time snapshot of the whole cluster as the
// coordinator sees it — the payload of GET /v1/cluster.
type ClusterStatus struct {
	Zones []ZoneStatus `json:"zones"`
	// BarrierEpoch is the epoch the barrier is merging or waiting for
	// (model.EpochNone until the first batch arrives).
	BarrierEpoch model.Epoch `json:"barrier_epoch"`
	MergedEpochs int64       `json:"merged_epochs"`
	MergedEvents int64       `json:"merged_events"`
	// FinalEpoch is the final merged epoch once known (EpochNone before).
	FinalEpoch model.Epoch `json:"final_epoch"`
	// Done reports that the final epoch has been merged.
	Done bool `json:"done"`
	// NearMisses totals barrier waits that crossed the warn fraction of
	// the straggler timeout without (yet) tripping it.
	NearMisses        int64   `json:"near_misses"`
	StragglerTimeoutS float64 `json:"straggler_timeout_s"`
	// FinalLingerS is how long the coordinator waited after the final
	// merge for every zone to receive its final ack (zero until then).
	FinalLingerS float64 `json:"final_linger_s,omitempty"`
}

// Status assembles the coordinator's live cluster snapshot. It is safe
// to call concurrently with Serve (an HTTP handler polls it while the
// merge loop runs) and never blocks the merge loop for longer than the
// state copy.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := ClusterStatus{
		Zones:             make([]ZoneStatus, len(c.zones)),
		BarrierEpoch:      c.barrier,
		MergedEpochs:      c.mergedEpochs,
		MergedEvents:      c.events,
		FinalEpoch:        c.final,
		Done:              c.final != model.EpochNone,
		NearMisses:        c.nearMisses,
		StragglerTimeoutS: c.cfg.StragglerTimeout.Seconds(),
		FinalLingerS:      c.lingerSecs,
	}
	leader := model.EpochNone
	for _, zc := range c.zones {
		if zc.highest > leader {
			leader = zc.highest
		}
	}
	for z, zc := range c.zones {
		zs := ZoneStatus{
			Zone:        z,
			LastEpoch:   zc.highest,
			Acked:       zc.acked,
			ReplayDepth: len(zc.batches),
			NearMisses:  zc.nearMisses,
		}
		if zc.highest != model.EpochNone && leader > zc.highest {
			zs.Lag = int64(leader - zc.highest)
		} else if zc.highest == model.EpochNone && leader != model.EpochNone {
			zs.Lag = int64(leader) + 1 // never delivered: behind by the whole stream
		}
		if !zc.lastDelivery.IsZero() {
			zs.SecondsSinceDelivery = now.Sub(zc.lastDelivery).Seconds()
		}
		zc.mu.Lock()
		zs.Connected = zc.conn != nil
		ever := zc.everConnected
		zs.Connects = zc.connects
		zc.mu.Unlock()
		switch {
		case zc.fin:
			zs.State = ZoneFinished
		case zs.Connected:
			zs.State = ZoneStreaming
		case ever:
			zs.State = ZoneLost
		default:
			zs.State = ZoneConnecting
		}
		st.Zones[z] = zs
	}
	return st
}

// Ready implements the coordinator's readiness probe: nil once every
// zone has completed its Hello handshake at least once, else an error
// naming the zones still awaited.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var waiting []int
	for z, zc := range c.zones {
		zc.mu.Lock()
		ever := zc.everConnected
		zc.mu.Unlock()
		if !ever {
			waiting = append(waiting, z)
		}
	}
	if len(waiting) == 0 {
		return nil
	}
	slices.Sort(waiting)
	return fmt.Errorf("zones %v have not said hello", waiting)
}

// WorkerStatus is the zone worker's live view of its own link — the
// payload of GET /v1/cluster on a spirezone process.
type WorkerStatus struct {
	Zone  int       `json:"zone"`
	State ZoneState `json:"state"`
	// LastProcessed is the highest epoch the substrate has interpreted.
	LastProcessed model.Epoch `json:"last_processed"`
	// LastAcked is the coordinator's ack high-water mark.
	LastAcked model.Epoch `json:"last_acked"`
	// ReplayDepth is the number of processed, un-acked epochs held for
	// replay; ReplayHighWater is the run's deepest buffer.
	ReplayDepth     int `json:"replay_depth"`
	ReplayHighWater int `json:"replay_high_water"`
	// AckWindow is the configured bound on ReplayDepth.
	AckWindow int `json:"ack_window"`
	// Connects counts completed handshakes; ConnectFailures counts
	// failed dial or handshake attempts.
	Connects        int64 `json:"connects"`
	ConnectFailures int64 `json:"connect_failures"`
	// BackoffMS is the currently scheduled reconnect backoff (with
	// jitter applied); zero while connected.
	BackoffMS int64 `json:"backoff_ms"`
	// AckStalls counts ack-timeout reconnects.
	AckStalls int64 `json:"ack_stalls"`
	// CheckpointEpoch is the epoch of the last checkpoint persisted to
	// disk (EpochNone before the first).
	CheckpointEpoch model.Epoch `json:"checkpoint_epoch"`
}

// Status returns the worker's live status. Safe to call concurrently
// with Run.
func (w *Worker) Status() WorkerStatus {
	w.statusMu.Lock()
	defer w.statusMu.Unlock()
	return w.status
}

// Ready implements the worker's readiness probe: nil while the link to
// the coordinator is up (or the run has finished), else an error
// describing the link state.
func (w *Worker) Ready() error {
	st := w.Status()
	switch st.State {
	case ZoneStreaming, ZoneFinished:
		return nil
	}
	return fmt.Errorf("zone %d %s (connects %d, failures %d)",
		st.Zone, st.State, st.Connects, st.ConnectFailures)
}

// setStatus applies a mutation to the worker's status under its lock.
func (w *Worker) setStatus(f func(*WorkerStatus)) {
	w.statusMu.Lock()
	f(&w.status)
	w.statusMu.Unlock()
}
