package federate

import (
	"math/rand"
	"testing"

	"spire/internal/compress"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

// The differential fuzz harness drives a synthetic warehouse with random
// object movements — cases carrying items between locations, thefts, and
// reappearances — and interprets it twice:
//
//   - once omnisciently: a single level-1 compressor fed the full ground
//     truth each epoch (what one substrate covering every location would
//     report with perfect inference);
//   - once federated: the locations are partitioned into zones, each zone
//     runs its own level-1 compressor over its partial view (objects at
//     its locations are known; objects it has seen but lost are missing;
//     objects it has never seen do not exist), and the per-zone streams
//     are reconciled through the Merger with an epoch barrier.
//
// The merged stream must equal the omniscient stream up to the canonical
// event order, and must be well-formed as emitted.

// fuzzWorld is the ground truth: items ride cases, cases move between
// locations or get stolen (vanish with their contents) and may reappear.
type fuzzWorld struct {
	nObjects   int
	nZones     int
	locsPerZn  int
	loc        []model.LocationID // per object; LocationUnknown = stolen
	parent     []model.Tag        // per object; NoTag = loose
	isCase     []bool
	children   map[int][]int
	levelOfTag func(model.Tag) model.Level
}

func (w *fuzzWorld) tag(i int) model.Tag { return model.Tag(i + 1) }

func (w *fuzzWorld) zoneOf(l model.LocationID) int {
	return int(l) / w.locsPerZn
}

func (w *fuzzWorld) randomLoc(rng *rand.Rand) model.LocationID {
	return model.LocationID(rng.Intn(w.nZones * w.locsPerZn))
}

// moveSubtree relocates object i and everything it carries.
func (w *fuzzWorld) moveSubtree(i int, l model.LocationID) {
	w.loc[i] = l
	for _, c := range w.children[i] {
		w.moveSubtree(c, l)
	}
}

func newFuzzWorld(rng *rand.Rand, nZones int) *fuzzWorld {
	w := &fuzzWorld{
		nObjects:  12,
		nZones:    nZones,
		locsPerZn: 3,
		children:  make(map[int][]int),
	}
	w.loc = make([]model.LocationID, w.nObjects)
	w.parent = make([]model.Tag, w.nObjects)
	w.isCase = make([]bool, w.nObjects)
	for i := 0; i < w.nObjects; i++ {
		w.loc[i] = w.randomLoc(rng)
		w.parent[i] = model.NoTag
		w.isCase[i] = i < 3 // the first three objects are cases
	}
	w.levelOfTag = func(g model.Tag) model.Level {
		if w.isCase[int(g)-1] {
			return model.LevelCase
		}
		return model.LevelItem
	}
	// Containment: items may start inside a case (moving the item to the
	// case's location).
	for i := 3; i < w.nObjects; i++ {
		if rng.Float64() < 0.5 {
			c := rng.Intn(3)
			w.parent[i] = w.tag(c)
			w.children[c] = append(w.children[c], i)
			w.loc[i] = w.loc[c]
		}
	}
	return w
}

// step applies at most one random transition per object. Containment is
// never severed by theft (cases vanish with their contents), and unpacks
// happen before any movement so the zone currently observing an item
// always witnesses the containment change — the regime where an
// omniscient and a federated interpretation must agree. (An unpack
// simultaneous with a cross-zone move would be witnessed by no reader at
// all, and no event-stream federation can reconstruct it.)
func (w *fuzzWorld) step(rng *rand.Rand) {
	// Pass 1: items taken out of their case, at the case's location.
	removed := make(map[int]bool)
	for i := 0; i < w.nObjects; i++ {
		if w.parent[i] == model.NoTag || w.loc[i] == model.LocationUnknown {
			continue
		}
		if rng.Float64() < 0.03 {
			c := int(w.parent[i]) - 1
			kids := w.children[c]
			for k, kid := range kids {
				if kid == i {
					w.children[c] = append(kids[:k:k], kids[k+1:]...)
					break
				}
			}
			w.parent[i] = model.NoTag
			removed[i] = true
		}
	}
	// Pass 2: movement, theft, resurfacing, packing. Contained items move
	// only with their case; an item unpacked this epoch stays put.
	for i := 0; i < w.nObjects; i++ {
		if w.parent[i] != model.NoTag || removed[i] {
			continue
		}
		r := rng.Float64()
		switch {
		case w.loc[i] == model.LocationUnknown:
			if r < 0.1 { // stolen object resurfaces somewhere
				w.moveSubtree(i, w.randomLoc(rng))
			}
		case r < 0.1: // move (with contents) to a random location
			w.moveSubtree(i, w.randomLoc(rng))
		case r < 0.13: // stolen (with contents)
			w.moveSubtree(i, model.LocationUnknown)
		case r < 0.16 && !w.isCase[i]: // loose item packed into a co-located case
			for c := 0; c < 3; c++ {
				if w.loc[c] == w.loc[i] && w.loc[c] != model.LocationUnknown {
					w.parent[i] = w.tag(c)
					w.children[c] = append(w.children[c], i)
					break
				}
			}
		}
	}
}

// runFederatedTruth interprets the world for `epochs` epochs through both
// pipelines and returns (omniscient, merged) streams, both closed.
func runFederatedTruth(t *testing.T, rng *rand.Rand, nZones int, epochs model.Epoch) (ref, merged []event.Event) {
	t.Helper()
	w := newFuzzWorld(rng, nZones)

	refComp := compress.NewLevel1(w.levelOfTag)
	zoneComps := make([]*compress.Level1, nZones)
	for z := range zoneComps {
		zoneComps[z] = compress.NewLevel1(w.levelOfTag)
	}
	m := NewMerger()
	seen := make([][]bool, nZones) // seen[z][i]: zone z has observed object i
	for z := range seen {
		seen[z] = make([]bool, w.nObjects)
	}

	for now := model.Epoch(1); now <= epochs; now++ {
		if now > 1 {
			w.step(rng)
		}
		// Omniscient interpretation.
		full := newResult(now)
		for i := 0; i < w.nObjects; i++ {
			full.Locations[w.tag(i)] = w.loc[i]
			full.Parents[w.tag(i)] = w.parent[i]
		}
		ref = append(ref, refComp.Compress(full)...)

		// Per-zone views, merged.
		for z := 0; z < nZones; z++ {
			view := newResult(now)
			for i := 0; i < w.nObjects; i++ {
				g := w.tag(i)
				if w.loc[i] != model.LocationUnknown && w.zoneOf(w.loc[i]) == z {
					seen[z][i] = true
					view.Locations[g] = w.loc[i]
					view.Parents[g] = w.parent[i]
				} else if seen[z][i] {
					// The zone has lost sight of the object: it cannot
					// tell a handoff from a theft, so it reports the
					// object missing and keeps its last containment
					// belief (no Parents entry = no containment change).
					view.Locations[g] = model.LocationUnknown
				}
			}
			out, err := m.Ingest(ZoneID(z), zoneComps[z].Compress(view))
			if err != nil {
				t.Fatalf("epoch %d zone %d: %v", now, z, err)
			}
			merged = append(merged, out...)
		}
		merged = append(merged, m.EndEpoch()...)
	}

	end := epochs + 1
	ref = append(ref, refComp.Close(end)...)
	for z := 0; z < nZones; z++ {
		out, err := m.Ingest(ZoneID(z), zoneComps[z].Close(end))
		if err != nil {
			t.Fatalf("close zone %d: %v", z, err)
		}
		merged = append(merged, out...)
	}
	merged = append(merged, m.Close(end)...)
	return ref, merged
}

func newResult(now model.Epoch) *inference.Result {
	return &inference.Result{
		Now:       now,
		Locations: map[model.Tag]model.LocationID{},
		Parents:   map[model.Tag]model.Tag{},
		Observed:  map[model.Tag]bool{},
	}
}

func checkMergeEquivalence(t *testing.T, seed int64, nZones int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref, merged := runFederatedTruth(t, rng, nZones, 150)
	if err := event.CheckWellFormed(merged, true); err != nil {
		t.Fatalf("seed %d zones %d: merged stream: %v", seed, nZones, err)
	}
	event.CanonicalSort(ref)
	event.CanonicalSort(merged)
	if len(ref) != len(merged) {
		t.Fatalf("seed %d zones %d: merged %d events, omniscient %d\nmerged: %v\nomniscient: %v",
			seed, nZones, len(merged), len(ref), merged, ref)
	}
	for i := range ref {
		if ref[i] != merged[i] {
			t.Fatalf("seed %d zones %d: event %d differs: merged %v, omniscient %v",
				seed, nZones, i, merged[i], ref[i])
		}
	}
}

// TestFederateMergeEquivalenceSeeds pins the differential property on a
// grid of deterministic seeds and zone counts (the fuzz target explores
// beyond it).
func TestFederateMergeEquivalenceSeeds(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, nz := range []int{2, 3, 4} {
			checkMergeEquivalence(t, seed, nz)
		}
	}
}

// FuzzFederateMergeEquivalence fuzzes random zone partitions of a
// simulated world: the zone-merged stream must equal the omniscient
// single-substrate stream up to canonical order.
func FuzzFederateMergeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(3))
	f.Add(int64(7), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nz uint8) {
		checkMergeEquivalence(t, seed, 2+int(nz)%3)
	})
}
