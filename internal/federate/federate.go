// Package federate merges the compressed output streams of several SPIRE
// substrates into one warehouse-wide stream — a building block for the
// distributed deployments the paper lists as future work.
//
// A large site runs one substrate per zone (per dock, per aisle block),
// each covering a disjoint set of locations. Objects move between zones,
// so the per-zone streams are individually well-formed but mutually
// inconsistent: when zone B first reports an object, zone A's interval
// for it may still be open, and neither zone knows about the handoff.
//
// The Merger consumes per-epoch batches from every zone and emits a
// single consistent stream by applying zone-priority reconciliation:
//
//   - the zone that most recently observed an object owns its state;
//   - when a new zone opens a location (or containment) interval for an
//     object whose interval from another zone is still open, the stale
//     interval is closed at the handoff epoch;
//   - end messages from a zone that no longer owns the object are
//     dropped (its view is stale);
//   - Missing messages are forwarded only from the owning zone, so an
//     object in transit between zones raises at most one alarm.
//
// The merged stream satisfies event.CheckWellFormed.
package federate

import (
	"fmt"
	"sort"

	"spire/internal/event"
	"spire/internal/model"
)

// ZoneID identifies one source substrate.
type ZoneID int

// objState tracks an object's merged state.
type objState struct {
	owner ZoneID

	locOpen bool
	loc     model.LocationID
	locVs   model.Epoch

	contOpen  bool
	container model.Tag
	contVs    model.Epoch
}

// Merger reconciles per-zone streams. Feed batches in epoch order (all
// zones' batches for epoch t before any batch for t+1); within an epoch,
// feed zones in any fixed order. It is not safe for concurrent use.
type Merger struct {
	states   map[model.Tag]*objState
	lastTime model.Epoch
	out      []event.Event
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{states: make(map[model.Tag]*objState), lastTime: model.EpochNone}
}

func (m *Merger) state(g model.Tag) *objState {
	st, ok := m.states[g]
	if !ok {
		st = &objState{owner: -1, loc: model.LocationNone, container: model.NoTag}
		m.states[g] = st
	}
	return st
}

// Ingest merges one zone's batch for one epoch and returns the merged
// events it produced. Events within the batch must be in the zone
// compressor's emission order.
func (m *Merger) Ingest(zone ZoneID, events []event.Event) ([]event.Event, error) {
	m.out = m.out[:0]
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("federate: zone %d: %w", zone, err)
		}
		emitted := e.Vs
		if e.Kind == event.EndLocation || e.Kind == event.EndContainment {
			emitted = e.Ve
		}
		if emitted < m.lastTime {
			return nil, fmt.Errorf("federate: zone %d: event %v at %d before merged stream time %d",
				zone, e, emitted, m.lastTime)
		}
		m.apply(zone, e)
		if emitted > m.lastTime {
			m.lastTime = emitted
		}
	}
	return append([]event.Event(nil), m.out...), nil
}

func (m *Merger) apply(zone ZoneID, e event.Event) {
	st := m.state(e.Object)
	switch e.Kind {
	case event.StartLocation:
		// The reporting zone takes ownership; close any stale interval
		// from the previous owner at the handoff epoch.
		if st.locOpen {
			if st.owner == zone && st.loc == e.Location {
				return // duplicate of the already-open interval
			}
			m.emit(event.NewEndLocation(e.Object, st.loc, st.locVs, e.Vs))
		}
		st.owner = zone
		st.locOpen = true
		st.loc = e.Location
		st.locVs = e.Vs
		m.emit(event.NewStartLocation(e.Object, e.Location, e.Vs))
	case event.EndLocation:
		if st.owner != zone || !st.locOpen || st.loc != e.Location {
			return // stale view from a zone that lost the object
		}
		st.locOpen = false
		m.emit(event.NewEndLocation(e.Object, e.Location, st.locVs, e.Ve))
	case event.Missing:
		if st.owner != zone && st.owner != -1 {
			return // only the owner may declare the object missing
		}
		if st.locOpen {
			m.emit(event.NewEndLocation(e.Object, st.loc, st.locVs, e.Vs))
			st.locOpen = false
		}
		st.owner = zone
		m.emit(event.NewMissing(e.Object, e.Location, e.Vs))
	case event.StartContainment:
		if st.contOpen {
			if st.container == e.Container {
				return
			}
			m.emit(event.NewEndContainment(e.Object, st.container, st.contVs, e.Vs))
		}
		st.contOpen = true
		st.container = e.Container
		st.contVs = e.Vs
		m.emit(event.NewStartContainment(e.Object, e.Container, e.Vs))
	case event.EndContainment:
		if !st.contOpen || st.container != e.Container {
			return
		}
		st.contOpen = false
		m.emit(event.NewEndContainment(e.Object, e.Container, st.contVs, e.Ve))
	}
}

func (m *Merger) emit(e event.Event) { m.out = append(m.out, e) }

// Close ends every open merged interval at epoch now.
func (m *Merger) Close(now model.Epoch) []event.Event {
	tags := make([]model.Tag, 0, len(m.states))
	for g := range m.states {
		tags = append(tags, g)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	var out []event.Event
	for _, g := range tags {
		st := m.states[g]
		if st.contOpen {
			out = append(out, event.NewEndContainment(g, st.container, st.contVs, now))
			st.contOpen = false
		}
		if st.locOpen {
			out = append(out, event.NewEndLocation(g, st.loc, st.locVs, now))
			st.locOpen = false
		}
	}
	return out
}

// Objects reports the number of objects the merger has seen.
func (m *Merger) Objects() int { return len(m.states) }
