// Package federate merges the compressed output streams of several SPIRE
// substrates into one warehouse-wide stream — the building block of the
// distributed deployment the paper lists as future work (and that its
// follow-up, "Distributed Inference and Query Processing for RFID
// Tracking and Monitoring", builds at scale).
//
// A large site runs one substrate per zone (per dock, per aisle block),
// each covering a disjoint set of locations. Objects move between zones,
// so the per-zone streams are individually well-formed but mutually
// inconsistent: when zone B first reports an object, zone A's interval
// for it may still be open, and neither zone knows about the handoff.
//
// The Merger consumes per-epoch batches from every zone and emits a
// single consistent stream by applying zone-priority reconciliation:
//
//   - the zone that most recently observed an object owns its state;
//     every Start message (location or containment) transfers ownership
//     to its reporting zone;
//   - when a new zone opens a location (or containment) interval for an
//     object whose interval from another zone is still open, the stale
//     interval is closed at the handoff epoch. A handoff in the same
//     epoch the stale interval opened clamps it to a single-epoch
//     interval [Vs, Vs] rather than suppressing it, so every emitted
//     Start keeps a matching End;
//   - a StartContainment naming the container that is already open is
//     the same physical fact re-observed (containers, unlike locations,
//     are not bound to one zone), so it is suppressed — but it still
//     transfers ownership to the reporting zone;
//   - end messages from a zone that no longer owns the object are
//     dropped (its view is stale);
//   - Missing messages are accepted only from the owning zone (or for an
//     object no zone has claimed, whose first reporter becomes the
//     owner), deferred to the end of the epoch, and latched — so an
//     object in transit between zones raises at most one alarm per
//     disappearance, and no alarm at all when another zone picks the
//     object up in the same epoch. Missing never touches containment
//     state: the location and containment streams stay independent,
//     exactly as in the per-substrate compressors.
//
// Feed batches epoch-aligned (all zones' batches for epoch t before any
// batch for t+1) and call EndEpoch at each epoch boundary — the barrier
// that resolves deferred Missing messages. The merged stream satisfies
// event.CheckWellFormed.
package federate

import (
	"fmt"
	"slices"

	"spire/internal/event"
	"spire/internal/model"
)

// ZoneID identifies one source substrate.
type ZoneID int

// objState tracks an object's merged state.
type objState struct {
	owner ZoneID

	locOpen bool
	loc     model.LocationID
	locVs   model.Epoch

	contOpen  bool
	container model.Tag
	contVs    model.Epoch

	// missing latches after a forwarded Missing so repeated alarms for
	// one disappearance collapse to one; cleared by the next
	// StartLocation.
	missing bool
}

// pendingMissing is a Missing message staged until the epoch barrier.
type pendingMissing struct {
	obj  model.Tag
	from model.LocationID
	at   model.Epoch
}

// Merger reconciles per-zone streams. Feed batches in epoch order (all
// zones' batches for epoch t before any batch for t+1) and, once every
// zone's batch for an epoch is in, call EndEpoch to flush deferred
// Missing messages; within an epoch, feed zones in any fixed order. It
// is not safe for concurrent use.
type Merger struct {
	states   map[model.Tag]*objState
	lastTime model.Epoch
	out      []event.Event
	pending  []pendingMissing

	// claims records each object's last asserted location in the current
	// epoch — set by forwarded location events, including an End whose
	// object was retired in the same epoch. The epoch barrier uses claims
	// to catch containment contradictions involving objects whose
	// interval already closed again (e.g. a container retired at an exit
	// the same epoch it got there). Missing-triggered closes assert no
	// location, so they never set a claim.
	claims map[model.Tag]model.LocationID
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{
		states:   make(map[model.Tag]*objState),
		lastTime: model.EpochNone,
		claims:   make(map[model.Tag]model.LocationID),
	}
}

func (m *Merger) state(g model.Tag) *objState {
	st, ok := m.states[g]
	if !ok {
		st = &objState{owner: -1, loc: model.LocationNone, container: model.NoTag}
		m.states[g] = st
	}
	return st
}

// Ingest merges one zone's batch for one epoch and returns the merged
// events it produced. Events within the batch must be in the zone
// compressor's emission order. Missing messages are deferred to EndEpoch,
// so they never appear in Ingest output directly.
func (m *Merger) Ingest(zone ZoneID, events []event.Event) ([]event.Event, error) {
	m.out = m.out[:0]
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("federate: zone %d: %w", zone, err)
		}
		emitted := e.Vs
		if e.Kind == event.EndLocation || e.Kind == event.EndContainment {
			emitted = e.Ve
		}
		if emitted < m.lastTime {
			return nil, fmt.Errorf("federate: zone %d: event %v at %d before merged stream time %d",
				zone, e, emitted, m.lastTime)
		}
		// A later epoch arrived before EndEpoch was called: run the
		// previous epoch's barrier first so its conflict closes and
		// deferred alarms keep their place in the stream.
		if emitted > m.lastTime && m.lastTime != model.EpochNone {
			m.barrier()
		}
		m.apply(zone, e)
		if emitted > m.lastTime {
			m.lastTime = emitted
		}
	}
	return append([]event.Event(nil), m.out...), nil
}

// EndEpoch is the epoch barrier: once every zone's batch for the current
// epoch has been ingested, it resolves cross-zone containment conflicts
// and the epoch's deferred Missing messages — forwarding one alarm per
// object that no zone re-opened this epoch, and discarding alarms for
// objects another zone picked up.
func (m *Merger) EndEpoch() []event.Event {
	m.out = m.out[:0]
	m.barrier()
	return append([]event.Event(nil), m.out...)
}

// barrier runs the end-of-epoch resolution steps in order: cross-zone
// containment conflicts first, then deferred Missing alarms.
func (m *Merger) barrier() {
	m.resolveContainmentConflicts()
	m.flushPending()
	clear(m.claims)
}

// resolveContainmentConflicts applies the substrate's conflict-resolution
// invariant — containment implies colocation — across zones. A zone only
// sees contradictions between objects it observes; when a container hands
// off to another zone while its contents stay behind, the contradiction
// (container here, contents there) is only visible in the merged state.
// Any open containment whose two ends sit at different merged locations
// is closed at the current epoch, exactly when a single substrate seeing
// both locations would close it. Objects whose location is unknown
// (missing, or in transit between zones this epoch) are left alone:
// absence of evidence is not a contradiction, matching the per-substrate
// rule that a missing object keeps its containment.
func (m *Merger) resolveContainmentConflicts() {
	var objs []model.Tag
	for g, st := range m.states {
		if !st.contOpen {
			continue
		}
		childLoc, childKnown := m.effectiveLoc(g, st)
		if !childKnown {
			continue
		}
		parent, ok := m.states[st.container]
		if !ok {
			continue
		}
		parentLoc, parentKnown := m.effectiveLoc(st.container, parent)
		if !parentKnown || parentLoc == childLoc {
			continue
		}
		objs = append(objs, g)
	}
	slices.Sort(objs)
	for _, g := range objs {
		st := m.states[g]
		m.emit(event.NewEndContainment(g, st.container, st.contVs, m.lastTime))
		st.contOpen = false
	}
}

// effectiveLoc is the object's location as of this epoch's barrier: the
// location it asserted this epoch (even if the interval closed again),
// else its open interval's location, else unknown.
func (m *Merger) effectiveLoc(g model.Tag, st *objState) (model.LocationID, bool) {
	if l, ok := m.claims[g]; ok {
		return l, true
	}
	if st.locOpen {
		return st.loc, true
	}
	return model.LocationNone, false
}

// flushPending resolves deferred Missing messages against the post-batch
// state, appending forwarded alarms to m.out.
func (m *Merger) flushPending() {
	for _, p := range m.pending {
		st := m.state(p.obj)
		if st.locOpen || st.missing {
			continue // picked up by another zone, or already alarmed
		}
		st.missing = true
		m.emit(event.NewMissing(p.obj, p.from, p.at))
	}
	m.pending = m.pending[:0]
}

func (m *Merger) apply(zone ZoneID, e event.Event) {
	st := m.state(e.Object)
	switch e.Kind {
	case event.StartLocation:
		// The reporting zone takes ownership; close any stale interval
		// from the previous owner at the handoff epoch. A same-epoch
		// handoff (e.Vs == st.locVs) clamps the stale interval to the
		// single-epoch interval [Vs, Vs] — suppressing the End instead
		// would orphan the already-emitted Start.
		if st.locOpen {
			if st.owner == zone && st.loc == e.Location {
				return // duplicate of the already-open interval
			}
			m.emit(event.NewEndLocation(e.Object, st.loc, st.locVs, e.Vs))
		}
		st.owner = zone
		st.locOpen = true
		st.loc = e.Location
		st.locVs = e.Vs
		st.missing = false
		m.claims[e.Object] = e.Location
		m.emit(event.NewStartLocation(e.Object, e.Location, e.Vs))
	case event.EndLocation:
		if st.owner != zone || !st.locOpen || st.loc != e.Location {
			return // stale view from a zone that lost the object
		}
		st.locOpen = false
		m.claims[e.Object] = e.Location
		m.emit(event.NewEndLocation(e.Object, e.Location, st.locVs, e.Ve))
	case event.Missing:
		if st.owner != zone && st.owner != -1 {
			return // only the owner may declare the object missing
		}
		// First reporter of an unclaimed object becomes its owner, so
		// later duplicate alarms from other zones drop.
		st.owner = zone
		if st.locOpen {
			m.emit(event.NewEndLocation(e.Object, st.loc, st.locVs, e.Vs))
			st.locOpen = false
		}
		// Defer the alarm to the epoch barrier: another zone may claim
		// the object later in this same epoch, which retracts it.
		m.pending = append(m.pending, pendingMissing{obj: e.Object, from: e.Location, at: e.Vs})
	case event.StartContainment:
		if st.contOpen && st.container == e.Container {
			// Same containment re-observed from a (possibly different)
			// zone: nothing new to report, but the reporter is now the
			// most recent observer and takes ownership.
			st.owner = zone
			return
		}
		if st.contOpen {
			m.emit(event.NewEndContainment(e.Object, st.container, st.contVs, e.Vs))
		}
		st.owner = zone
		st.contOpen = true
		st.container = e.Container
		st.contVs = e.Vs
		m.emit(event.NewStartContainment(e.Object, e.Container, e.Vs))
	case event.EndContainment:
		if st.owner != zone || !st.contOpen || st.container != e.Container {
			return // stale view from a zone that lost the object
		}
		st.contOpen = false
		m.emit(event.NewEndContainment(e.Object, e.Container, st.contVs, e.Ve))
	}
}

func (m *Merger) emit(e event.Event) { m.out = append(m.out, e) }

// Close resolves any deferred alarms and ends every open merged interval
// at epoch now.
func (m *Merger) Close(now model.Epoch) []event.Event {
	m.out = m.out[:0]
	m.barrier()
	out := append([]event.Event(nil), m.out...)
	tags := make([]model.Tag, 0, len(m.states))
	for g := range m.states {
		tags = append(tags, g)
	}
	slices.Sort(tags)
	for _, g := range tags {
		st := m.states[g]
		if st.contOpen {
			out = append(out, event.NewEndContainment(g, st.container, st.contVs, now))
			st.contOpen = false
		}
		if st.locOpen {
			out = append(out, event.NewEndLocation(g, st.loc, st.locVs, now))
			st.locOpen = false
		}
	}
	return out
}

// Objects reports the number of objects the merger has seen.
func (m *Merger) Objects() int { return len(m.states) }
