package federate

import (
	"math/rand"
	"slices"
	"testing"

	"spire/internal/compress"
	"spire/internal/event"
	"spire/internal/model"
)

// The ParallelMerger's contract is byte-identity with the serial Merger
// driven the way the coordinator drives it: zones ingested in fixed
// order, then the epoch barrier (EndEpoch, or Close on the final
// epoch). These tests replay the fuzz harness's federated world through
// both mergers and demand identical streams in emission order — not
// just canonical order — because the coordinator's sink sees emission
// order.

// zoneEpochBatches interprets a fuzz world per zone and returns each
// epoch's zone batches (epochBatches[t][z]) plus the closing batches.
func zoneEpochBatches(t *testing.T, rng *rand.Rand, nZones int, epochs model.Epoch) (perEpoch [][][]event.Event, closing [][]event.Event) {
	t.Helper()
	w := newFuzzWorld(rng, nZones)
	zoneComps := make([]*compress.Level1, nZones)
	for z := range zoneComps {
		zoneComps[z] = compress.NewLevel1(w.levelOfTag)
	}
	seen := make([][]bool, nZones)
	for z := range seen {
		seen[z] = make([]bool, w.nObjects)
	}
	for now := model.Epoch(1); now <= epochs; now++ {
		if now > 1 {
			w.step(rng)
		}
		batches := make([][]event.Event, nZones)
		for z := 0; z < nZones; z++ {
			view := newResult(now)
			for i := 0; i < w.nObjects; i++ {
				g := w.tag(i)
				if w.loc[i] != model.LocationUnknown && w.zoneOf(w.loc[i]) == z {
					seen[z][i] = true
					view.Locations[g] = w.loc[i]
					view.Parents[g] = w.parent[i]
				} else if seen[z][i] {
					view.Locations[g] = model.LocationUnknown
				}
			}
			batches[z] = slices.Clone(zoneComps[z].Compress(view))
		}
		perEpoch = append(perEpoch, batches)
	}
	closing = make([][]event.Event, nZones)
	for z := 0; z < nZones; z++ {
		closing[z] = slices.Clone(zoneComps[z].Close(epochs + 1))
	}
	return perEpoch, closing
}

// mergeSerialReference drives the serial Merger exactly as the
// coordinator's SerialMerge path does.
func mergeSerialReference(t *testing.T, perEpoch [][][]event.Event, closing [][]event.Event, epochs model.Epoch) []event.Event {
	t.Helper()
	m := NewMerger()
	var out []event.Event
	for _, batches := range perEpoch {
		for z, b := range batches {
			o, err := m.Ingest(ZoneID(z), b)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, o...)
		}
		out = append(out, m.EndEpoch()...)
	}
	for z, b := range closing {
		o, err := m.Ingest(ZoneID(z), b)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o...)
	}
	out = append(out, m.Close(epochs+1)...)
	return out
}

func mergeParallel(t *testing.T, pm *ParallelMerger, perEpoch [][][]event.Event, closing [][]event.Event, epochs model.Epoch) []event.Event {
	t.Helper()
	var out []event.Event
	for ei, batches := range perEpoch {
		o, err := pm.MergeEpoch(model.Epoch(ei)+1, batches, false)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o...)
	}
	o, err := pm.MergeEpoch(epochs+1, closing, true)
	if err != nil {
		t.Fatal(err)
	}
	return append(out, o...)
}

func diffStreams(t *testing.T, name string, got, want []event.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, serial reference %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d differs in emission order:\n got %v\nwant %v", name, i, got[i], want[i])
		}
	}
}

// TestParallelMergerMatchesSerial pins the sharded merger byte-identical
// to the serial oracle across seeds, zone counts, and shard counts
// (including a single shard, where the k-way merge degenerates).
func TestParallelMergerMatchesSerial(t *testing.T) {
	const epochs = model.Epoch(150)
	for seed := int64(0); seed < 12; seed++ {
		for _, nz := range []int{2, 3, 4} {
			perEpoch, closing := zoneEpochBatches(t, rand.New(rand.NewSource(seed)), nz, epochs)
			want := mergeSerialReference(t, perEpoch, closing, epochs)
			for _, shards := range []int{1, 4, 8} {
				got := mergeParallel(t, NewParallelMerger(shards), perEpoch, closing, epochs)
				diffStreams(t, "parallel", got, want)
			}
		}
	}
}

// TestParallelMergerSerialFallback forces the barrier precondition to
// fail — one call carrying two distinct epochs — and pins the fallback
// path against the serial reference driven with the same misaligned
// batches.
func TestParallelMergerSerialFallback(t *testing.T) {
	// One zone, consecutive epoch pairs folded into one delivery: the
	// events inside span two emission times, so MergeEpoch must take the
	// serial walk with its mid-batch barrier. (With several zones a
	// folded delivery is illegal for the serial merger too — zone 0
	// would advance the stream past zone 1's first epoch.)
	perEpoch, closing := zoneEpochBatches(t, rand.New(rand.NewSource(3)), 1, 40)
	var folded [][][]event.Event
	for i := 0; i+1 < len(perEpoch); i += 2 {
		folded = append(folded, [][]event.Event{
			append(slices.Clone(perEpoch[i][0]), perEpoch[i+1][0]...),
		})
	}

	m := NewMerger()
	var want []event.Event
	for _, batches := range folded {
		for z, b := range batches {
			o, err := m.Ingest(ZoneID(z), b)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, o...)
		}
		want = append(want, m.EndEpoch()...)
	}
	for z, b := range closing {
		o, err := m.Ingest(ZoneID(z), b)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, o...)
	}
	want = append(want, m.Close(41)...)

	pm := NewParallelMerger(4)
	var got []event.Event
	for ei, batches := range folded {
		o, err := pm.MergeEpoch(model.Epoch(2*ei)+2, batches, false)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, o...)
	}
	o, err := pm.MergeEpoch(41, closing, true)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, o...)
	diffStreams(t, "fallback", got, want)
}

// TestParallelMergerErrors pins that malformed deliveries fail the same
// way the serial merger fails: an invalid event and a stream that runs
// backwards in time are both rejected.
func TestParallelMergerErrors(t *testing.T) {
	pm := NewParallelMerger(2)
	bad := event.Event{Kind: event.StartLocation, Object: model.NoTag, Vs: 3, Ve: model.InfiniteEpoch}
	if _, err := pm.MergeEpoch(3, [][]event.Event{{bad}}, false); err == nil {
		t.Fatal("invalid event accepted")
	}

	pm = NewParallelMerger(2)
	ok := []event.Event{event.NewStartLocation(1, 2, 10)}
	if _, err := pm.MergeEpoch(10, [][]event.Event{ok}, false); err != nil {
		t.Fatal(err)
	}
	stale := []event.Event{event.NewStartLocation(2, 2, 4)}
	if _, err := pm.MergeEpoch(4, [][]event.Event{stale}, false); err == nil {
		t.Fatal("event before merged stream time accepted")
	}
}

// FuzzParallelMergeEquivalence extends the seed grid: any federated
// world the fuzzer invents must merge identically through the sharded
// and serial paths.
func FuzzParallelMergeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(4))
	f.Add(int64(42), uint8(3), uint8(1))
	f.Add(int64(7), uint8(4), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nz, shards uint8) {
		const epochs = model.Epoch(80)
		nZones := 2 + int(nz)%3
		perEpoch, closing := zoneEpochBatches(t, rand.New(rand.NewSource(seed)), nZones, epochs)
		want := mergeSerialReference(t, perEpoch, closing, epochs)
		pm := NewParallelMerger(1 + int(shards)%16)
		got := mergeParallel(t, pm, perEpoch, closing, epochs)
		diffStreams(t, "parallel", got, want)
	})
}
