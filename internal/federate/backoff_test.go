package federate

import (
	"math/rand"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/inference"
	"spire/internal/sim"
)

func testSubstrate(t *testing.T) *core.Substrate {
	t.Helper()
	s, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:   s.Readers(),
		Locations: s.Locations(),
		Inference: inference.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestJitterBackoffBounds pins the jitter envelope: every draw lands in
// [d/2, d], so jitter can spread a thundering herd but never extend the
// configured backoff.
func TestJitterBackoffBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []time.Duration{
		time.Millisecond, 5 * time.Millisecond, 50 * time.Millisecond,
		time.Second, 3 * time.Second,
	} {
		for i := 0; i < 1000; i++ {
			got := jitterBackoff(rng, d)
			if got < d/2 || got > d {
				t.Fatalf("jitterBackoff(%v) = %v, want in [%v, %v]", d, got, d/2, d)
			}
		}
	}
	// Degenerate durations pass through untouched.
	for _, d := range []time.Duration{0, 1} {
		if got := jitterBackoff(rng, d); got != d {
			t.Errorf("jitterBackoff(%v) = %v, want %v", d, got, d)
		}
	}
}

// TestJitterBackoffDeterministicSeed pins that the jitter sequence is a
// pure function of the seed: same seed, same schedule (the property the
// transparency suite leans on), different seeds, different schedules
// (the property the thundering-herd fix leans on).
func TestJitterBackoffDeterministicSeed(t *testing.T) {
	sequence := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		var out []time.Duration
		d := 50 * time.Millisecond
		for i := 0; i < 20; i++ {
			out = append(out, jitterBackoff(rng, d))
			if d *= 2; d > 3*time.Second {
				d = 3 * time.Second
			}
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 42 and 43 produced identical 20-draw schedules")
	}
}

// TestWorkerJitterSeedPlumbed pins that WorkerConfig.JitterSeed reaches
// the worker's RNG: two workers built with the same explicit seed share
// a jitter schedule, so a test (or a reproduction of a production
// incident) can replay the exact reconnect timing.
func TestWorkerJitterSeedPlumbed(t *testing.T) {
	mk := func(seed int64) *Worker {
		w, err := NewWorker(WorkerConfig{
			Zone:       3,
			Addr:       "127.0.0.1:1",
			Substrate:  testSubstrate(t),
			JitterSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w1, w2 := mk(7), mk(7)
	for i := 0; i < 10; i++ {
		d := time.Duration(50<<i) * time.Millisecond
		if a, b := jitterBackoff(w1.rng, d), jitterBackoff(w2.rng, d); a != b {
			t.Fatalf("same JitterSeed diverged at draw %d: %v vs %v", i, a, b)
		}
	}
	// Seed 0 derives a per-process seed; two zero-seed workers built at
	// different nanoseconds almost surely differ, but that is inherently
	// timing-dependent, so only the explicit-seed contract is pinned.
	if mk(0).cfg.JitterSeed == 0 {
		t.Error("JitterSeed 0 was not replaced with a derived seed")
	}
}
