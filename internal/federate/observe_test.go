package federate_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/federate"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

// observedCluster is one networked cluster run with every observability
// layer optionally attached, plus the artifacts the transparency test
// compares: the merged stream and each zone's final on-disk checkpoint.
type observedCluster struct {
	events      []event.Event
	checkpoints map[int][]byte

	coordTel *federate.CoordinatorInstruments
	status   federate.ClusterStatus
}

// runObservedCluster runs an nZones cluster over loopback TCP with
// checkpointing on. With instrument set, the coordinator and every
// worker get a telemetry registry, a connection flight recorder, and a
// structured logger, and pollers hammer Status()/Ready() on both sides
// throughout the run — the configuration the transparency test must
// prove changes nothing.
func runObservedCluster(t *testing.T, cfg sim.Config, lvl core.CompressionLevel, nZones int, instrument bool) observedCluster {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var oc observedCluster
	coord, err := federate.NewCoordinator(federate.CoordinatorConfig{
		Zones:            nZones,
		StragglerTimeout: time.Minute,
		Sink: func(_ model.Epoch, evs []event.Event) error {
			oc.events = append(oc.events, evs...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pollDone := make(chan struct{})
	var pollers sync.WaitGroup
	poll := func(f func()) {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-pollDone:
					return
				default:
					f()
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	if instrument {
		oc.coordTel = coord.Instrument(telemetry.NewRegistry())
		coord.TraceConn(trace.NewConnRecorder(64))
		poll(func() { coord.Status(); coord.Ready() })
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(context.Background(), ln) }()

	dir := t.TempDir()
	oc.checkpoints = make(map[int][]byte, nZones)
	workerErrs := make([]error, nZones)
	ckpts := make([]string, nZones)
	var wg sync.WaitGroup
	for z := 0; z < nZones; z++ {
		ckpts[z] = filepath.Join(dir, fmt.Sprintf("zone-%d.ckpt", z))
		wg.Add(1)
		go func(z int) {
			defer wg.Done()
			workerErrs[z] = func() error {
				s, err := sim.New(cfg)
				if err != nil {
					return err
				}
				zones, err := s.PartitionZones(nZones)
				if err != nil {
					return err
				}
				sub, err := core.New(core.Config{
					Readers:     zones[z],
					Locations:   s.Locations(),
					Inference:   inference.DefaultConfig(),
					Compression: lvl,
				})
				if err != nil {
					return err
				}
				wc := federate.WorkerConfig{
					Zone:            federate.ZoneID(z),
					Addr:            ln.Addr().String(),
					Substrate:       sub,
					CheckpointPath:  ckpts[z],
					CheckpointEvery: 100,
					BaseBackoff:     5 * time.Millisecond,
					MaxBackoff:      100 * time.Millisecond,
					JitterSeed:      int64(z) + 1,
				}
				if instrument {
					wc.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
				}
				w, err := federate.NewWorker(wc)
				if err != nil {
					return err
				}
				if instrument {
					w.Instrument(telemetry.NewRegistry())
					w.TraceConn(trace.NewConnRecorder(64))
					poll(func() { w.Status(); w.Ready() })
				}
				return w.Run(context.Background(), sim.NewZoneStream(s, sim.ZoneOfReaders(zones), z))
			}()
		}(z)
	}
	wg.Wait()
	for z, err := range workerErrs {
		if err != nil {
			t.Fatalf("zone %d worker: %v", z, err)
		}
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("coordinator did not finish after workers exited")
	}
	oc.status = coord.Status()
	close(pollDone)
	pollers.Wait()
	for z := 0; z < nZones; z++ {
		data, err := os.ReadFile(ckpts[z])
		if err != nil {
			t.Fatalf("zone %d checkpoint: %v", z, err)
		}
		oc.checkpoints[z] = data
	}
	return oc
}

// canonCheckpoint zeroes the only run-varying bytes of a substrate
// checkpoint: the substrate's own wall-clock stats (UpdateTime and
// InferenceTime, the two int64s after lastNow/Epochs/Readings in the
// SUBS section) and the header CRC they feed. Those vary between ANY
// two runs — they are the substrate timing itself, not something the
// observability plane adds — so checkpoint transparency is pinned on
// everything else: config, epoch, graph, dedup, compressor state.
func canonCheckpoint(t *testing.T, data []byte) []byte {
	t.Helper()
	i := bytes.Index(data, []byte("SUBS"))
	if i < 0 {
		t.Fatal("checkpoint has no SUBS section")
	}
	out := slices.Clone(data)
	for b := 20; b < 24; b++ { // header CRC32
		out[b] = 0
	}
	for b := i + 4 + 24; b < i+4+40 && b < len(out); b++ { // UpdateTime, InferenceTime
		out[b] = 0
	}
	return out
}

// TestInstrumentedClusterMatchesPlain extends the instrumentation
// transparency suite to the networked cluster: with telemetry, the
// connection flight recorder, structured logging, and concurrent status
// polling all enabled, an N-zone cluster run produces a merged stream
// AND per-zone checkpoints byte-identical to the uninstrumented run.
// The observability plane observes; it never steers.
func TestInstrumentedClusterMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster test is not short")
	}
	cfg := clusterSimConfig()
	for _, nz := range []int{2, 4} {
		t.Run(fmt.Sprintf("zones%d", nz), func(t *testing.T) {
			plain := runObservedCluster(t, cfg, core.Level1, nz, false)
			inst := runObservedCluster(t, cfg, core.Level1, nz, true)
			if !slices.Equal(plain.events, inst.events) {
				diffCanonical(t, "instrumented cluster", plain.events, inst.events)
				t.Fatalf("streams differ only in order: %d events", len(inst.events))
			}
			for z := 0; z < nz; z++ {
				want := canonCheckpoint(t, plain.checkpoints[z])
				got := canonCheckpoint(t, inst.checkpoints[z])
				if !bytes.Equal(want, got) {
					t.Errorf("zone %d: instrumented checkpoint differs (%d vs %d bytes)",
						z, len(got), len(want))
				}
			}

			// The instruments must have watched the same run they left
			// untouched: merged-event count is ground truth.
			if got, want := inst.coordTel.MergedEvents.Value(), int64(len(inst.events)); got != want {
				t.Errorf("spire_fed_merged_events_total = %d, want %d", got, want)
			}
			st := inst.status
			if !st.Done {
				t.Error("final ClusterStatus not done")
			}
			for _, zs := range st.Zones {
				if zs.State != federate.ZoneFinished {
					t.Errorf("zone %d final state %s, want finished", zs.Zone, zs.State)
				}
				if zs.LastEpoch != st.FinalEpoch {
					t.Errorf("zone %d last epoch %d, want final %d", zs.Zone, zs.LastEpoch, st.FinalEpoch)
				}
				if zs.Lag != 0 || zs.ReplayDepth != 0 {
					t.Errorf("zone %d final lag %d replay %d, want 0/0", zs.Zone, zs.Lag, zs.ReplayDepth)
				}
			}
		})
	}
}

// slowSource passes observations through until the stall epoch, then
// sleeps once — a zone whose readers go quiet long enough to alarm the
// barrier but not long enough to kill the run.
type slowSource struct {
	inner   federate.ObservationSource
	stallAt model.Epoch
	stall   time.Duration
	stalled bool
}

func (s *slowSource) Next() (*model.Observation, error) {
	o, err := s.inner.Next()
	if err != nil {
		return nil, err
	}
	if !s.stalled && o.Time >= s.stallAt {
		s.stalled = true
		time.Sleep(s.stall)
	}
	return o, nil
}

// lockedBuffer is a goroutine-safe log sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestClusterStatusGroundTruthUnderStraggler injects a straggler —
// zone 1 goes silent for 700ms mid-run against a 200ms warn threshold —
// and checks the cluster plane tells the truth before the fatal
// timeout: a live ClusterStatus snapshot names the slow zone (positive
// lag, zero lag for the healthy zone, replayed batches parked at the
// barrier), the near-miss counter fires against zone 1 only, a
// warn-level log names it, and the run still completes byte-identically
// to the reference — a near-miss is a warning, not a failure.
func TestClusterStatusGroundTruthUnderStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster test is not short")
	}
	const (
		nZones    = 2
		slowZone  = 1
		stallAt   = 600
		stall     = 700 * time.Millisecond
		timeout   = 10 * time.Second
		warnFrac  = 0.02 // warn after 200ms of barrier silence
		ackWindow = 32
	)
	cfg := clusterSimConfig()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf lockedBuffer
	var merged []event.Event
	coord, err := federate.NewCoordinator(federate.CoordinatorConfig{
		Zones:                 nZones,
		StragglerTimeout:      timeout,
		StragglerWarnFraction: warnFrac,
		Log:                   slog.New(slog.NewTextHandler(&logBuf, nil)),
		Sink: func(_ model.Epoch, evs []event.Event) error {
			merged = append(merged, evs...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := coord.Instrument(telemetry.NewRegistry())
	rec := trace.NewConnRecorder(64)
	coord.TraceConn(rec)
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(context.Background(), ln) }()

	// Poll the status plane through the run, keeping the snapshot with
	// the deepest observed lag — the view an operator's dashboard would
	// have shown mid-stall.
	pollDone := make(chan struct{})
	var worst federate.ClusterStatus
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-pollDone:
				return
			default:
				st := coord.Status()
				if worst.Zones == nil || st.Zones[slowZone].Lag > worst.Zones[slowZone].Lag {
					worst = st
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	workerErrs := make([]error, nZones)
	for z := 0; z < nZones; z++ {
		wg.Add(1)
		go func(z int) {
			defer wg.Done()
			workerErrs[z] = func() error {
				s, err := sim.New(cfg)
				if err != nil {
					return err
				}
				zones, err := s.PartitionZones(nZones)
				if err != nil {
					return err
				}
				sub, err := core.New(core.Config{
					Readers:     zones[z],
					Locations:   s.Locations(),
					Inference:   inference.DefaultConfig(),
					Compression: core.Level1,
				})
				if err != nil {
					return err
				}
				w, err := federate.NewWorker(federate.WorkerConfig{
					Zone:        federate.ZoneID(z),
					Addr:        ln.Addr().String(),
					Substrate:   sub,
					AckWindow:   ackWindow,
					BaseBackoff: 5 * time.Millisecond,
					MaxBackoff:  100 * time.Millisecond,
					JitterSeed:  int64(z) + 1,
				})
				if err != nil {
					return err
				}
				var src federate.ObservationSource = sim.NewZoneStream(s, sim.ZoneOfReaders(zones), z)
				if z == slowZone {
					src = &slowSource{inner: src, stallAt: stallAt, stall: stall}
				}
				return w.Run(context.Background(), src)
			}()
		}(z)
	}
	wg.Wait()
	for z, err := range workerErrs {
		if err != nil {
			t.Fatalf("zone %d worker: %v", z, err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("coordinator: %v (a near-miss must not become a failure)", err)
	}
	close(pollDone)
	pollWG.Wait()

	// Ground truth, side 1: the live snapshot named the culprit.
	if worst.Zones == nil {
		t.Fatal("status poller never saw a snapshot")
	}
	slow, fast := worst.Zones[slowZone], worst.Zones[1-slowZone]
	if slow.Lag == 0 {
		t.Errorf("slow zone %d never showed positive lag in any snapshot", slowZone)
	}
	if fast.Lag != 0 {
		t.Errorf("healthy zone %d showed lag %d in the worst snapshot", fast.Zone, fast.Lag)
	}
	if fast.ReplayDepth == 0 {
		t.Errorf("healthy zone %d showed no batches parked at the barrier mid-stall", fast.Zone)
	}
	t.Logf("worst snapshot: barrier %d, zone %d lag %d (state %s), zone %d replay depth %d",
		worst.BarrierEpoch, slow.Zone, slow.Lag, slow.State, fast.Zone, fast.ReplayDepth)

	// Side 2: the near-miss fired, against the slow zone only.
	final := coord.Status()
	if final.NearMisses == 0 {
		t.Error("no barrier near-miss recorded; stall never crossed the warn threshold")
	}
	if final.Zones[slowZone].NearMisses == 0 {
		t.Errorf("near-misses not attributed to slow zone %d", slowZone)
	}
	if n := final.Zones[1-slowZone].NearMisses; n != 0 {
		t.Errorf("healthy zone charged with %d near-misses", n)
	}
	if got := tel.NearMisses[slowZone].Value(); got == 0 {
		t.Error("spire_fed_straggler_near_miss_total{zone=1} = 0, want > 0")
	}

	// Side 3: the operator-facing signals name the zone before any
	// timeout — the warn log and the flight recorder.
	logs := logBuf.String()
	if !strings.Contains(logs, "barrier near-miss") || !strings.Contains(logs, fmt.Sprintf("[%d]", slowZone)) {
		t.Errorf("warn log does not name the slow zone; logs:\n%s", logs)
	}
	var sawNearMiss bool
	for _, e := range rec.Events() {
		if e.Kind == trace.ConnNearMiss && strings.Contains(e.Detail, fmt.Sprintf("[%d]", slowZone)) {
			sawNearMiss = true
		}
	}
	if !sawNearMiss {
		t.Error("flight recorder holds no near-miss event naming the slow zone")
	}

	// And the stream itself is untouched by all of it.
	want := runInProcessFederated(t, cfg, core.Level1, nZones)
	if !slices.Equal(want, merged) {
		diffCanonical(t, "straggler cluster", want, merged)
		t.Fatalf("streams differ only in order: %d events", len(merged))
	}
}
