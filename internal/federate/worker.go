package federate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/stream"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

// ObservationSource yields one zone's per-epoch observations in epoch
// order, returning io.EOF after the last epoch.
type ObservationSource interface {
	Next() (*model.Observation, error)
}

// BatchSource yields one zone's per-epoch columnar batches in epoch
// order, returning io.EOF after the last epoch. The returned batch is
// owned by the source and valid only until the next NextBatch call; the
// worker consumes it in place (sim.ZoneBatchStream implements this).
type BatchSource interface {
	NextBatch() (*model.Batch, error)
}

// WorkerConfig configures a zone worker.
type WorkerConfig struct {
	// Zone is this worker's zone ID (0-based, dense).
	Zone ZoneID
	// Addr is the coordinator's address (TCP host:port), used by the
	// default dialer.
	Addr string
	// Dial overrides the default net.Dial("tcp", Addr); tests use it to
	// inject pipes or failure.
	Dial func(ctx context.Context) (net.Conn, error)

	// Substrate is the zone's interpretation substrate — fresh, or
	// restored from a checkpoint to resume.
	Substrate *core.Substrate

	// CheckpointPath, when set, enables crash recovery: the substrate is
	// snapshotted every CheckpointEvery epochs, and the snapshot is
	// written (atomically) once the coordinator has acked an epoch at or
	// past it. A checkpoint on disk therefore never runs ahead of the
	// coordinator's ack high-water mark — the invariant that makes
	// resume exact: a restarted worker replays the deterministic epoch
	// source from the checkpoint and re-sends precisely the epochs after
	// the coordinator's HelloAck.
	CheckpointPath  string
	CheckpointEvery model.Epoch

	// AckWindow bounds how many epochs the worker may run ahead of the
	// coordinator's acks (default 64).
	AckWindow int
	// AckTimeout bounds the wait for an ack when the window is full
	// (default 15s); on expiry the connection is presumed dead and
	// redialed.
	AckTimeout time.Duration

	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between connection attempts (defaults 50ms and 3s). Each sleep is
	// jittered uniformly over [d/2, d] so a cluster of zones losing one
	// coordinator does not redial in lockstep; JitterSeed pins the
	// jitter sequence for tests (0 derives a seed from the clock and
	// zone).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	JitterSeed  int64

	// Logf, when set, receives progress and retry diagnostics in printf
	// form. Log, when set, receives connection transitions as structured
	// records; either or both may be nil.
	Logf func(format string, args ...any)
	Log  *slog.Logger
}

type epochBatch struct {
	epoch  model.Epoch
	events []event.Event
	fin    bool
	sentAt time.Time // first submit time, for ack RTT; zero uninstrumented

	// wire is the batch's encoded frame (length prefix included), built
	// once at first send and written verbatim on every replay. Owning
	// the bytes here is the replay buffer's aliasing fix: a redial
	// mid-epoch re-sends stable private storage, never a column or
	// scratch slice some other layer is still rewriting. wireCols
	// records which encoding the bytes carry so a reconnect that
	// renegotiates capabilities re-encodes instead of replaying frames
	// the peer no longer understands.
	wire     []byte
	wireCols bool
}

// Worker streams one zone substrate's compressed output to the
// federation coordinator, with reconnection, epoch acks, and
// checkpoint-on-ack crash recovery. Use one goroutine per worker.
type Worker struct {
	cfg WorkerConfig
	rng *rand.Rand

	tel    *WorkerInstruments
	ctrace *trace.ConnRecorder

	conn  net.Conn
	acks  chan model.Epoch
	rderr chan error
	caps  uint32 // capabilities negotiated with the current connection

	lastAcked model.Epoch
	buffer    []*epochBatch // processed, not yet acked (epochs > lastAcked)

	snapEpoch model.Epoch // epoch of the in-memory snapshot (EpochNone: none)
	snapData  []byte
	snapSecs  float64 // capture latency of the in-memory snapshot

	statusMu sync.Mutex
	status   WorkerStatus
}

// NewWorker builds a worker; Run drives it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Substrate == nil {
		return nil, errors.New("federate: worker needs a substrate")
	}
	if cfg.Zone < 0 {
		return nil, fmt.Errorf("federate: invalid zone %d", cfg.Zone)
	}
	if cfg.Dial == nil {
		addr := cfg.Addr
		if addr == "" {
			return nil, errors.New("federate: worker needs Addr or Dial")
		}
		cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50
	}
	if cfg.AckWindow <= 0 {
		cfg.AckWindow = 64
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 15 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 3 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = time.Now().UnixNano() ^ (int64(cfg.Zone) << 32)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	w := &Worker{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.JitterSeed)),
		lastAcked: model.EpochNone,
		snapEpoch: model.EpochNone,
	}
	w.status = WorkerStatus{
		Zone:            int(cfg.Zone),
		State:           ZoneConnecting,
		LastProcessed:   model.EpochNone,
		LastAcked:       model.EpochNone,
		AckWindow:       cfg.AckWindow,
		CheckpointEpoch: model.EpochNone,
	}
	return w, nil
}

// TraceConn attaches a connection flight recorder; nil detaches. Call
// before Run.
func (w *Worker) TraceConn(rec *trace.ConnRecorder) { w.ctrace = rec }

// timed reports whether the worker should read the clock for latency
// metrics; uninstrumented runs take no timing branches.
func (w *Worker) timed() bool { return w.tel != nil || w.ctrace != nil }

// jitterBackoff spreads one backoff sleep uniformly over [d/2, d]
// (full-jitter on the upper half). The cap keeps the upper bound at the
// configured backoff, so the jittered schedule is never slower than the
// unjittered one.
func jitterBackoff(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}

// Run processes the source to completion: every epoch goes through the
// substrate, and every epoch after the coordinator's ack high-water mark
// is streamed to it. Run returns once the coordinator has acked the
// final (Fin) epoch, or with the context's error.
func (w *Worker) Run(ctx context.Context, src ObservationSource) error {
	defer w.dropConn()

	// A restored substrate has already processed everything up to its
	// checkpoint epoch; the deterministic source replays those epochs and
	// we discard them.
	resume := w.cfg.Substrate.LastEpoch()
	if err := w.ensureConn(ctx); err != nil {
		return err
	}

	last := resume
	for {
		obs, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("federate: zone %d source: %w", w.cfg.Zone, err)
		}
		if obs.Time <= resume {
			continue // replaying epochs already inside the checkpoint
		}
		out, err := w.cfg.Substrate.ProcessEpoch(obs)
		if err != nil {
			return fmt.Errorf("federate: zone %d epoch %d: %w", w.cfg.Zone, obs.Time, err)
		}
		last = obs.Time
		w.setStatus(func(s *WorkerStatus) { s.LastProcessed = obs.Time })
		if err := w.submit(ctx, &epochBatch{epoch: obs.Time, events: out.Events}); err != nil {
			return err
		}
		if (obs.Time-resume)%w.cfg.CheckpointEvery == 0 {
			w.takeSnapshot(obs.Time)
		}
	}
	return w.finishRun(ctx, last)
}

// RunBatches is Run for a columnar zone feed: the source yields only
// this zone's readers' batches (no full-simulation re-run, no per-epoch
// re-batch) and each batch is processed in place through the substrate's
// batched ingest. Everything downstream — submit, acks, checkpoints,
// resume — is shared with Run.
func (w *Worker) RunBatches(ctx context.Context, src BatchSource) error {
	defer w.dropConn()

	// A restored substrate has already processed everything up to its
	// checkpoint epoch; the deterministic source replays those epochs and
	// we discard them.
	resume := w.cfg.Substrate.LastEpoch()
	if err := w.ensureConn(ctx); err != nil {
		return err
	}

	last := resume
	for {
		b, err := src.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("federate: zone %d source: %w", w.cfg.Zone, err)
		}
		if b.Time <= resume {
			continue // replaying epochs already inside the checkpoint
		}
		epoch := b.Time
		out, err := w.cfg.Substrate.ProcessBatch(b)
		if err != nil {
			return fmt.Errorf("federate: zone %d epoch %d: %w", w.cfg.Zone, epoch, err)
		}
		last = epoch
		w.setStatus(func(s *WorkerStatus) { s.LastProcessed = epoch })
		if err := w.submit(ctx, &epochBatch{epoch: epoch, events: out.Events}); err != nil {
			return err
		}
		if (epoch-resume)%w.cfg.CheckpointEvery == 0 {
			w.takeSnapshot(epoch)
		}
	}
	return w.finishRun(ctx, last)
}

// finishRun submits the Fin epoch and waits for the coordinator to ack
// everything — the shared tail of Run and RunBatches.
func (w *Worker) finishRun(ctx context.Context, last model.Epoch) error {
	end := last + 1
	fin := &epochBatch{epoch: end, events: w.cfg.Substrate.Close(end), fin: true}
	w.setStatus(func(s *WorkerStatus) { s.LastProcessed = end })
	if err := w.submit(ctx, fin); err != nil {
		return err
	}
	// Wait for everything (including the Fin epoch) to be acked.
	for w.lastAcked < end {
		if err := w.awaitAck(ctx); err != nil {
			return err
		}
	}
	w.sendBye(ctx)
	w.setStatus(func(s *WorkerStatus) { s.State = ZoneFinished })
	if w.cfg.Log != nil {
		w.cfg.Log.Info("zone run complete", "zone", int(w.cfg.Zone), "final_epoch", int64(end))
	}
	return nil
}

// sendBye tells the coordinator this worker has observed the final ack
// and is exiting, so its post-run linger ends immediately instead of
// guessing whether the ack writes were read. Best-effort with a bounded
// retry budget — a lost Bye costs the coordinator only its linger
// timeout, while an unbounded retry here could chase a coordinator that
// has already given up on us and gone away.
func (w *Worker) sendBye(ctx context.Context) {
	for attempt := 0; attempt < 4; attempt++ {
		if ctx.Err() != nil {
			return
		}
		if w.conn == nil {
			if err := w.connectOnce(ctx); err != nil {
				select {
				case <-ctx.Done():
					return
				case <-time.After(jitterBackoff(w.rng, w.cfg.BaseBackoff)):
				}
				continue
			}
		}
		if w.caps&stream.CapBye == 0 {
			return // legacy coordinator: it lingers on its own heuristics
		}
		if _, err := stream.WriteFrameCount(w.conn, &stream.Frame{Type: stream.FrameBye, Epoch: w.lastAcked}); err == nil {
			return
		}
		w.dropConn()
	}
}

// submit buffers the batch, sends it, and enforces the ack window.
func (w *Worker) submit(ctx context.Context, b *epochBatch) error {
	w.drainAcks()
	if b.epoch <= w.lastAcked {
		return nil // already merged before a restart; nothing to send
	}
	if w.timed() {
		b.sentAt = time.Now()
	}
	w.buffer = append(w.buffer, b)
	w.tel.epochsSubmitted().Inc()
	w.noteReplayDepth()
	if err := w.sendBatch(ctx, b); err != nil {
		return err
	}
	for len(w.buffer) > w.cfg.AckWindow {
		if err := w.awaitAck(ctx); err != nil {
			return err
		}
	}
	return nil
}

// noteReplayDepth refreshes the replay-depth gauge and high-water mark
// from the current buffer.
func (w *Worker) noteReplayDepth() {
	depth := len(w.buffer)
	w.tel.replayDepth().Set(int64(depth))
	w.setStatus(func(s *WorkerStatus) {
		s.ReplayDepth = depth
		if depth > s.ReplayHighWater {
			s.ReplayHighWater = depth
			w.tel.replayHighWater().Set(int64(depth))
		}
	})
}

// sendBatch delivers the batch, redialing until it succeeds or the
// context ends. When there is no live connection, the (re)connect itself
// is the delivery: submit buffers b before sending, so connectOnce's
// replay of the unacked buffer already carries it (or the HelloAck
// proved it merged). Writing b again after a replay would double-send
// one frame per reconnect — and against a flaky link that dies every few
// writes, the redundant write burned the fresh connection immediately,
// livelocking the worker in a reconnect cycle.
func (w *Worker) sendBatch(ctx context.Context, b *epochBatch) error {
	for {
		if w.conn == nil {
			return w.ensureConn(ctx)
		}
		if err := w.writeBatch(b); err == nil {
			return nil
		} else {
			w.cfg.Logf("zone %d: send epoch %d: %v; reconnecting", w.cfg.Zone, b.epoch, err)
			if w.cfg.Log != nil {
				w.cfg.Log.Warn("send failed", "zone", int(w.cfg.Zone), "epoch", int64(b.epoch), "err", err)
			}
			w.dropConn()
		}
	}
}

// writeBatch sends the batch's frame, encoding it into the batch's owned
// wire buffer on first use. Replays after a reconnect write the same
// bytes zero-copy; only a capability change across the reconnect (the
// coordinator was replaced by one speaking a different encoding) forces
// a re-encode.
func (w *Worker) writeBatch(b *epochBatch) error {
	cols := w.caps&stream.CapColumnarEpoch != 0
	if len(b.wire) == 0 || b.wireCols != cols {
		typ := stream.FrameEpoch
		switch {
		case b.fin && cols:
			typ = stream.FrameFinCols
		case b.fin:
			typ = stream.FrameFin
		case cols:
			typ = stream.FrameEpochCols
		}
		var err error
		b.wire, err = stream.AppendFrame(b.wire[:0], &stream.Frame{Type: typ, Epoch: b.epoch, Events: b.events})
		if err != nil {
			return err
		}
		b.wireCols = cols
	}
	n, err := w.conn.Write(b.wire)
	w.tel.txBytes().Add(int64(n))
	return err
}

// ensureConn dials and handshakes with capped exponential backoff,
// jittered so sibling zones spread their retries.
func (w *Worker) ensureConn(ctx context.Context) error {
	if w.conn != nil {
		return nil
	}
	backoff := w.cfg.BaseBackoff
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.connectOnce(ctx)
		if err == nil {
			return nil
		}
		w.tel.connectFailures().Inc()
		w.setStatus(func(s *WorkerStatus) { s.ConnectFailures++ })
		sleep := jitterBackoff(w.rng, backoff)
		w.tel.backoffMS().Set(sleep.Milliseconds())
		w.setStatus(func(s *WorkerStatus) { s.BackoffMS = sleep.Milliseconds() })
		w.ctrace.Record(trace.ConnEvent{Kind: trace.ConnConnectFailed, Zone: int(w.cfg.Zone),
			Detail: err.Error(), DurationMS: float64(sleep.Milliseconds())})
		w.cfg.Logf("zone %d: connect attempt %d: %v; retrying in %v", w.cfg.Zone, attempt+1, err, sleep)
		if w.cfg.Log != nil {
			w.cfg.Log.Warn("connect failed", "zone", int(w.cfg.Zone), "attempt", attempt+1,
				"err", err, "retry_in", sleep.String())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
		backoff *= 2
		if backoff > w.cfg.MaxBackoff {
			backoff = w.cfg.MaxBackoff
		}
	}
}

// connectOnce performs one dial + Hello/HelloAck handshake and, on
// success, re-sends any buffered epochs past the coordinator's ack.
func (w *Worker) connectOnce(ctx context.Context) error {
	conn, err := w.cfg.Dial(ctx)
	if err != nil {
		return err
	}
	hello := &stream.Frame{Type: stream.FrameHello, Zone: int(w.cfg.Zone),
		Epoch: w.cfg.Substrate.LastEpoch(), Caps: stream.CapColumnarEpoch | stream.CapBye}
	if _, err := stream.WriteFrameCount(conn, hello); err != nil {
		conn.Close()
		return err
	}
	f, err := stream.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if f.Type != stream.FrameHelloAck {
		conn.Close()
		return fmt.Errorf("handshake: got %s, want hello-ack", f.Type)
	}
	w.conn = conn
	// The intersection of offered and acked capabilities governs every
	// frame on this connection, including the replay below — a legacy
	// coordinator acks 0 and gets row frames (and no Bye).
	w.caps = (stream.CapColumnarEpoch | stream.CapBye) & f.Caps
	w.acks = make(chan model.Epoch, 64)
	w.rderr = make(chan error, 1)
	go readAcks(conn, w.acks, w.rderr, w.tel.rxBytes())
	w.handleAck(f.Epoch)
	w.tel.connects().Inc()
	w.tel.connected().Set(1)
	w.tel.backoffMS().Set(0)
	w.setStatus(func(s *WorkerStatus) {
		s.State = ZoneStreaming
		s.Connects++
		s.BackoffMS = 0
	})
	w.ctrace.Record(trace.ConnEvent{Kind: trace.ConnConnect, Zone: int(w.cfg.Zone), Epoch: f.Epoch,
		Detail: "handshake complete"})
	if w.cfg.Log != nil {
		w.cfg.Log.Info("connected", "zone", int(w.cfg.Zone), "coordinator_acked", int64(f.Epoch),
			"replaying", len(w.buffer))
	}
	// Re-send whatever the coordinator is missing, oldest first.
	var replayStart time.Time
	if w.timed() && len(w.buffer) > 0 {
		replayStart = time.Now()
	}
	for _, b := range w.buffer {
		if err := w.writeBatch(b); err != nil {
			w.dropConn()
			return err
		}
	}
	if n := len(w.buffer); n > 0 {
		w.tel.replayedEpochs().Add(int64(n))
		var tookMS float64
		if !replayStart.IsZero() {
			tookMS = float64(time.Since(replayStart).Milliseconds())
		}
		w.ctrace.Record(trace.ConnEvent{Kind: trace.ConnReplay, Zone: int(w.cfg.Zone),
			Epoch: w.buffer[n-1].epoch, Detail: fmt.Sprintf("%d epochs re-sent", n), DurationMS: tookMS})
	}
	return nil
}

// readAcks pumps Ack frames from the connection until it fails.
func readAcks(conn net.Conn, acks chan<- model.Epoch, rderr chan<- error, rx *telemetry.Counter) {
	for {
		f, n, err := stream.ReadFrameCount(conn)
		if err != nil {
			rderr <- err
			return
		}
		rx.Add(int64(n))
		if f.Type == stream.FrameAck {
			// Acks are cumulative high-water marks, so dropping one when
			// the buffer is full is harmless — and it keeps this goroutine
			// from blocking forever after the worker abandons the
			// connection.
			select {
			case acks <- f.Epoch:
			default:
			}
		}
	}
}

func (w *Worker) dropConn() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
		w.acks = nil
		w.rderr = nil
		w.caps = 0
		w.tel.connected().Set(0)
		w.setStatus(func(s *WorkerStatus) {
			if s.State == ZoneStreaming {
				s.State = ZoneLost
			}
		})
	}
}

// drainAcks applies any acks that have already arrived.
func (w *Worker) drainAcks() {
	if w.acks == nil {
		return
	}
	for {
		select {
		case a := <-w.acks:
			w.handleAck(a)
		default:
			return
		}
	}
}

// awaitAck blocks until an ack arrives (applying it), the connection
// fails (reconnecting), or the context ends.
func (w *Worker) awaitAck(ctx context.Context) error {
	if err := w.ensureConn(ctx); err != nil {
		return err
	}
	select {
	case a := <-w.acks:
		w.handleAck(a)
		return nil
	case err := <-w.rderr:
		// Acks that arrived before the failure may still sit in the
		// channel (the select picks arbitrarily among ready cases) —
		// apply them before abandoning the connection, or a final ack
		// delivered just ahead of the coordinator's shutdown would be
		// lost. The caller re-checks its condition before the next
		// awaitAck redials.
		w.drainAcks()
		w.cfg.Logf("zone %d: connection lost waiting for ack: %v", w.cfg.Zone, err)
		if w.cfg.Log != nil {
			w.cfg.Log.Warn("connection lost", "zone", int(w.cfg.Zone), "err", err)
		}
		w.ctrace.Record(trace.ConnEvent{Kind: trace.ConnLost, Zone: int(w.cfg.Zone), Detail: err.Error()})
		w.dropConn()
		return nil
	case <-time.After(w.cfg.AckTimeout):
		w.cfg.Logf("zone %d: no ack within %v; reconnecting", w.cfg.Zone, w.cfg.AckTimeout)
		if w.cfg.Log != nil {
			w.cfg.Log.Warn("ack stall", "zone", int(w.cfg.Zone), "timeout", w.cfg.AckTimeout.String())
		}
		w.tel.ackStalls().Inc()
		w.setStatus(func(s *WorkerStatus) { s.AckStalls++ })
		w.ctrace.Record(trace.ConnEvent{Kind: trace.ConnAckStall, Zone: int(w.cfg.Zone),
			DurationMS: float64(w.cfg.AckTimeout.Milliseconds())})
		w.dropConn()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleAck advances the ack high-water mark, trims the replay buffer,
// and persists any snapshot the ack has made safe to keep.
func (w *Worker) handleAck(a model.Epoch) {
	if a <= w.lastAcked {
		return
	}
	w.lastAcked = a
	i := 0
	for i < len(w.buffer) && w.buffer[i].epoch <= a {
		if !w.buffer[i].sentAt.IsZero() {
			w.tel.ackRTT().Observe(time.Since(w.buffer[i].sentAt).Seconds())
		}
		i++
	}
	w.tel.epochsAcked().Add(int64(i))
	w.buffer = w.buffer[i:]
	w.setStatus(func(s *WorkerStatus) { s.LastAcked = a })
	w.noteReplayDepth()
	w.persistSnapshot()
}

// takeSnapshot captures the substrate state in memory. It is written to
// disk only once the coordinator acks an epoch at or past it, so the
// on-disk checkpoint never outruns the merged stream.
func (w *Worker) takeSnapshot(epoch model.Epoch) {
	if w.cfg.CheckpointPath == "" {
		return
	}
	var start time.Time
	if w.timed() {
		start = time.Now()
	}
	var buf bytes.Buffer
	if err := w.cfg.Substrate.Snapshot(&buf); err != nil {
		w.cfg.Logf("zone %d: snapshot at epoch %d: %v", w.cfg.Zone, epoch, err)
		if w.cfg.Log != nil {
			w.cfg.Log.Warn("snapshot failed", "zone", int(w.cfg.Zone), "epoch", int64(epoch), "err", err)
		}
		return
	}
	w.snapEpoch = epoch
	w.snapData = buf.Bytes()
	w.snapSecs = 0
	if !start.IsZero() {
		w.snapSecs = time.Since(start).Seconds()
	}
	// The ack may already be past us (acks can outrun snapshots when the
	// window is deep); persist immediately in that case.
	w.persistSnapshot()
}

// persistSnapshot writes the in-memory snapshot to disk iff the
// coordinator's ack has reached its epoch.
func (w *Worker) persistSnapshot() {
	if w.cfg.CheckpointPath == "" {
		return
	}
	if w.snapEpoch != model.EpochNone && w.snapEpoch <= w.lastAcked {
		var start time.Time
		if w.timed() {
			start = time.Now()
		}
		if err := writeFileAtomic(w.cfg.CheckpointPath, w.snapData); err != nil {
			w.cfg.Logf("zone %d: checkpoint write: %v", w.cfg.Zone, err)
			if w.cfg.Log != nil {
				w.cfg.Log.Warn("checkpoint write failed", "zone", int(w.cfg.Zone), "err", err)
			}
			return
		}
		size := len(w.snapData)
		epoch := w.snapEpoch
		if w.tel != nil {
			w.tel.Checkpoints.Inc()
			w.tel.CheckpointBytes.Set(int64(size))
			w.tel.CheckpointSecs.Observe(w.snapSecs + time.Since(start).Seconds())
		}
		w.setStatus(func(s *WorkerStatus) { s.CheckpointEpoch = epoch })
		w.ctrace.Record(trace.ConnEvent{Kind: trace.ConnCheckpoint, Zone: int(w.cfg.Zone),
			Epoch: epoch, Detail: fmt.Sprintf("%d bytes", size)})
		w.cfg.Logf("zone %d: checkpoint at epoch %d persisted", w.cfg.Zone, epoch)
		if w.cfg.Log != nil {
			w.cfg.Log.Info("checkpoint persisted", "zone", int(w.cfg.Zone), "epoch", int64(epoch), "bytes", size)
		}
		w.snapEpoch = model.EpochNone
		w.snapData = nil
	}
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
