package federate

import (
	"strconv"

	"spire/internal/telemetry"
)

// BackoffBuckets spans the worker's reconnect-backoff and barrier-wait
// range: 1ms (the jittered floor of a 50ms base within one RTT) out to
// 60s (a straggler budget's worth of barrier silence).
var BackoffBuckets = []float64{
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10, 30, 60,
}

// CoordinatorInstruments bundles the coordinator-side cluster metrics.
// A nil *CoordinatorInstruments is the disabled mode: every contained
// metric is nil and recording is a no-op, the same transparency
// contract as core.Instruments — the keystone byte-identity test pins
// that an instrumented cluster merges the identical stream.
type CoordinatorInstruments struct {
	MergedEpochs *telemetry.Counter   // spire_fed_merged_epochs_total
	MergedEvents *telemetry.Counter   // spire_fed_merged_events_total
	BarrierWait  *telemetry.Histogram // spire_fed_barrier_wait_seconds
	BarrierEpoch *telemetry.Gauge     // spire_fed_barrier_epoch
	LingerMS     *telemetry.Gauge     // spire_fed_final_linger_ms
	LingerMissed *telemetry.Counter   // spire_fed_final_linger_missed_total

	// Per-zone families, indexed by zone ID.
	ZoneEpochs    []*telemetry.Counter // spire_fed_zone_epochs_total{zone=z}
	ZoneEvents    []*telemetry.Counter // spire_fed_zone_events_total{zone=z}
	ZoneRxBytes   []*telemetry.Counter // spire_fed_zone_rx_bytes_total{zone=z}
	ZoneLag       []*telemetry.Gauge   // spire_fed_zone_lag_epochs{zone=z}
	ZonePending   []*telemetry.Gauge   // spire_fed_zone_pending_batches{zone=z}
	ZoneConnected []*telemetry.Gauge   // spire_fed_zone_connected{zone=z}
	ZoneConnects  []*telemetry.Counter // spire_fed_zone_connects_total{zone=z}
	NearMisses    []*telemetry.Counter // spire_fed_straggler_near_miss_total{zone=z}
}

// NewCoordinatorInstruments registers the coordinator metrics for a
// cluster of zones workers on reg. Returns nil when reg is nil.
func NewCoordinatorInstruments(reg *telemetry.Registry, zones int) *CoordinatorInstruments {
	if reg == nil {
		return nil
	}
	ci := &CoordinatorInstruments{
		MergedEpochs: reg.Counter("spire_fed_merged_epochs_total", "Epochs merged through the barrier."),
		MergedEvents: reg.Counter("spire_fed_merged_events_total", "Events emitted by the merged stream."),
		BarrierWait: reg.Histogram("spire_fed_barrier_wait_seconds",
			"Time each epoch spent at the barrier, from first wanted to merged.", BackoffBuckets),
		BarrierEpoch: reg.Gauge("spire_fed_barrier_epoch", "Epoch the barrier is merging or waiting for."),
		LingerMS: reg.Gauge("spire_fed_final_linger_ms",
			"Milliseconds spent waiting for final acks after the last merge."),
		LingerMissed: reg.Counter("spire_fed_final_linger_missed_total",
			"Zones that never received the final ack before the linger deadline."),
	}
	for z := 0; z < zones; z++ {
		zl := strconv.Itoa(z)
		ci.ZoneEpochs = append(ci.ZoneEpochs, reg.Counter("spire_fed_zone_epochs_total",
			"Epoch batches delivered by each zone.", "zone", zl))
		ci.ZoneEvents = append(ci.ZoneEvents, reg.Counter("spire_fed_zone_events_total",
			"Events delivered by each zone.", "zone", zl))
		ci.ZoneRxBytes = append(ci.ZoneRxBytes, reg.Counter("spire_fed_zone_rx_bytes_total",
			"Wire bytes received from each zone.", "zone", zl))
		ci.ZoneLag = append(ci.ZoneLag, reg.Gauge("spire_fed_zone_lag_epochs",
			"Epochs each zone's deliveries trail the most advanced zone.", "zone", zl))
		ci.ZonePending = append(ci.ZonePending, reg.Gauge("spire_fed_zone_pending_batches",
			"Delivered epochs waiting at the barrier for slower zones.", "zone", zl))
		ci.ZoneConnected = append(ci.ZoneConnected, reg.Gauge("spire_fed_zone_connected",
			"1 while the zone's link is up.", "zone", zl))
		ci.ZoneConnects = append(ci.ZoneConnects, reg.Counter("spire_fed_zone_connects_total",
			"Completed Hello handshakes per zone (reconnects included).", "zone", zl))
		ci.NearMisses = append(ci.NearMisses, reg.Counter("spire_fed_straggler_near_miss_total",
			"Barrier waits past the warn fraction of the straggler timeout, by missing zone.", "zone", zl))
	}
	return ci
}

// zone-indexed accessors, nil-safe so call sites stay unconditional.

func (ci *CoordinatorInstruments) zoneEpochs(z int) *telemetry.Counter {
	if ci == nil || z < 0 || z >= len(ci.ZoneEpochs) {
		return nil
	}
	return ci.ZoneEpochs[z]
}

func (ci *CoordinatorInstruments) zoneEvents(z int) *telemetry.Counter {
	if ci == nil || z < 0 || z >= len(ci.ZoneEvents) {
		return nil
	}
	return ci.ZoneEvents[z]
}

func (ci *CoordinatorInstruments) zoneRxBytes(z int) *telemetry.Counter {
	if ci == nil || z < 0 || z >= len(ci.ZoneRxBytes) {
		return nil
	}
	return ci.ZoneRxBytes[z]
}

func (ci *CoordinatorInstruments) zoneLag(z int) *telemetry.Gauge {
	if ci == nil || z < 0 || z >= len(ci.ZoneLag) {
		return nil
	}
	return ci.ZoneLag[z]
}

func (ci *CoordinatorInstruments) zonePending(z int) *telemetry.Gauge {
	if ci == nil || z < 0 || z >= len(ci.ZonePending) {
		return nil
	}
	return ci.ZonePending[z]
}

func (ci *CoordinatorInstruments) zoneConnected(z int) *telemetry.Gauge {
	if ci == nil || z < 0 || z >= len(ci.ZoneConnected) {
		return nil
	}
	return ci.ZoneConnected[z]
}

func (ci *CoordinatorInstruments) zoneConnects(z int) *telemetry.Counter {
	if ci == nil || z < 0 || z >= len(ci.ZoneConnects) {
		return nil
	}
	return ci.ZoneConnects[z]
}

func (ci *CoordinatorInstruments) nearMiss(z int) *telemetry.Counter {
	if ci == nil || z < 0 || z >= len(ci.NearMisses) {
		return nil
	}
	return ci.NearMisses[z]
}

// Instrument wires the coordinator to a telemetry registry; a nil
// registry disables instrumentation. Call before Serve.
func (c *Coordinator) Instrument(reg *telemetry.Registry) *CoordinatorInstruments {
	c.tel = NewCoordinatorInstruments(reg, c.cfg.Zones)
	return c.tel
}

// WorkerInstruments bundles the zone-worker-side metrics, all labeled
// with the worker's zone. Nil is the disabled mode (see
// CoordinatorInstruments).
type WorkerInstruments struct {
	EpochsSubmitted *telemetry.Counter   // spire_fed_worker_epochs_submitted_total
	EpochsAcked     *telemetry.Counter   // spire_fed_worker_epochs_acked_total
	AckRTT          *telemetry.Histogram // spire_fed_worker_ack_rtt_seconds
	ReplayDepth     *telemetry.Gauge     // spire_fed_worker_replay_depth
	ReplayHighWater *telemetry.Gauge     // spire_fed_worker_replay_high_water
	AckWindow       *telemetry.Gauge     // spire_fed_worker_ack_window
	AckStalls       *telemetry.Counter   // spire_fed_worker_ack_stalls_total
	Connects        *telemetry.Counter   // spire_fed_worker_connects_total
	ConnectFailures *telemetry.Counter   // spire_fed_worker_connect_failures_total
	Connected       *telemetry.Gauge     // spire_fed_worker_connected
	BackoffMS       *telemetry.Gauge     // spire_fed_worker_backoff_ms
	ReplayedEpochs  *telemetry.Counter   // spire_fed_worker_replayed_epochs_total
	TxBytes         *telemetry.Counter   // spire_fed_worker_tx_bytes_total
	RxBytes         *telemetry.Counter   // spire_fed_worker_rx_bytes_total
	CheckpointBytes *telemetry.Gauge     // spire_fed_worker_checkpoint_bytes
	CheckpointSecs  *telemetry.Histogram // spire_fed_worker_checkpoint_seconds
	Checkpoints     *telemetry.Counter   // spire_fed_worker_checkpoints_total
}

// NewWorkerInstruments registers the worker metrics for one zone on
// reg. Returns nil when reg is nil.
func NewWorkerInstruments(reg *telemetry.Registry, zone ZoneID) *WorkerInstruments {
	if reg == nil {
		return nil
	}
	zl := strconv.Itoa(int(zone))
	return &WorkerInstruments{
		EpochsSubmitted: reg.Counter("spire_fed_worker_epochs_submitted_total",
			"Epoch batches submitted to the coordinator.", "zone", zl),
		EpochsAcked: reg.Counter("spire_fed_worker_epochs_acked_total",
			"Epoch batches acked by the coordinator.", "zone", zl),
		AckRTT: reg.Histogram("spire_fed_worker_ack_rtt_seconds",
			"Submit-to-ack round trip per epoch (outages included).",
			telemetry.DefLatencyBuckets, "zone", zl),
		ReplayDepth: reg.Gauge("spire_fed_worker_replay_depth",
			"Processed epochs buffered for replay, awaiting ack.", "zone", zl),
		ReplayHighWater: reg.Gauge("spire_fed_worker_replay_high_water",
			"Deepest replay buffer seen this run.", "zone", zl),
		AckWindow: reg.Gauge("spire_fed_worker_ack_window",
			"Configured bound on epochs in flight past the coordinator's acks.", "zone", zl),
		AckStalls: reg.Counter("spire_fed_worker_ack_stalls_total",
			"Reconnects forced by an ack timeout.", "zone", zl),
		Connects: reg.Counter("spire_fed_worker_connects_total",
			"Completed Hello handshakes (reconnects included).", "zone", zl),
		ConnectFailures: reg.Counter("spire_fed_worker_connect_failures_total",
			"Failed dial or handshake attempts.", "zone", zl),
		Connected: reg.Gauge("spire_fed_worker_connected",
			"1 while the link to the coordinator is up.", "zone", zl),
		BackoffMS: reg.Gauge("spire_fed_worker_backoff_ms",
			"Currently scheduled reconnect backoff, jitter applied; 0 while connected.", "zone", zl),
		ReplayedEpochs: reg.Counter("spire_fed_worker_replayed_epochs_total",
			"Buffered epochs re-sent after a reconnect.", "zone", zl),
		TxBytes: reg.Counter("spire_fed_worker_tx_bytes_total",
			"Wire bytes written to the coordinator.", "zone", zl),
		RxBytes: reg.Counter("spire_fed_worker_rx_bytes_total",
			"Wire bytes read from the coordinator.", "zone", zl),
		CheckpointBytes: reg.Gauge("spire_fed_worker_checkpoint_bytes",
			"Size of the last persisted checkpoint.", "zone", zl),
		CheckpointSecs: reg.Histogram("spire_fed_worker_checkpoint_seconds",
			"Snapshot-capture plus persist latency per checkpoint.",
			telemetry.DefLatencyBuckets, "zone", zl),
		Checkpoints: reg.Counter("spire_fed_worker_checkpoints_total",
			"Checkpoints persisted to disk.", "zone", zl),
	}
}

// nil-safe accessors, same contract as the coordinator's: a nil
// *WorkerInstruments hands out nil metrics, so call sites stay
// unconditional.

func (wi *WorkerInstruments) epochsSubmitted() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.EpochsSubmitted
}

func (wi *WorkerInstruments) epochsAcked() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.EpochsAcked
}

func (wi *WorkerInstruments) ackRTT() *telemetry.Histogram {
	if wi == nil {
		return nil
	}
	return wi.AckRTT
}

func (wi *WorkerInstruments) replayDepth() *telemetry.Gauge {
	if wi == nil {
		return nil
	}
	return wi.ReplayDepth
}

func (wi *WorkerInstruments) replayHighWater() *telemetry.Gauge {
	if wi == nil {
		return nil
	}
	return wi.ReplayHighWater
}

func (wi *WorkerInstruments) ackStalls() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.AckStalls
}

func (wi *WorkerInstruments) connects() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.Connects
}

func (wi *WorkerInstruments) connectFailures() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.ConnectFailures
}

func (wi *WorkerInstruments) connected() *telemetry.Gauge {
	if wi == nil {
		return nil
	}
	return wi.Connected
}

func (wi *WorkerInstruments) backoffMS() *telemetry.Gauge {
	if wi == nil {
		return nil
	}
	return wi.BackoffMS
}

func (wi *WorkerInstruments) replayedEpochs() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.ReplayedEpochs
}

func (wi *WorkerInstruments) txBytes() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.TxBytes
}

func (wi *WorkerInstruments) rxBytes() *telemetry.Counter {
	if wi == nil {
		return nil
	}
	return wi.RxBytes
}

// Instrument wires the worker to a telemetry registry; a nil registry
// disables instrumentation. Call before Run.
func (w *Worker) Instrument(reg *telemetry.Registry) *WorkerInstruments {
	w.tel = NewWorkerInstruments(reg, w.cfg.Zone)
	if w.tel != nil {
		w.tel.AckWindow.Set(int64(w.cfg.AckWindow))
	}
	return w.tel
}
