package federate

import (
	"fmt"
	"slices"
	"sync"

	"spire/internal/event"
	"spire/internal/model"
)

// ParallelMerger is the sharded implementation of the Merger's
// reconciliation semantics, built for the coordinator's epoch barrier:
// one MergeEpoch call consumes every zone's batch for one epoch and
// returns exactly the events the serial reference produces — the serial
// Merger is retained as the oracle, and the differential suite pins the
// two byte-identical.
//
// Per-event reconciliation (apply) touches only the object's own state,
// so objects partition cleanly: events are routed to shards by object
// tag, shards apply concurrently, and every emission is stamped with
// (gidx, sub) — gidx is the event's zone-major global input index, sub
// its emission sub-index (an apply emits at most two events). A
// deterministic k-way merge over the per-shard emission runs, ordered
// by (gidx, sub), reconstructs the serial emission order exactly.
//
// The epoch barrier (cross-zone containment conflicts, deferred Missing
// alarms, claim expiry) reads state across objects, so it runs
// single-threaded across all shards after the parallel phase — it is
// the only synchronization point, which is what makes the plan sound:
// under the barrier precondition (every event in the epoch's batches is
// emitted at the single epoch T >= the merged stream time) the serial
// reference runs no mid-batch barrier either, so the shards' state
// evolution is independent per object by construction. When the
// precondition fails (a malformed or time-skewed batch), MergeEpoch
// falls back to a serial walk over the same sharded state, reproducing
// the reference event for event, error for error.
type ParallelMerger struct {
	shards    []*mergeShard
	shift     uint // tag-hash shift selecting the shard (power-of-2 count)
	lastTime  model.Epoch
	heads     []int // k-way merge cursors, one per shard (reused)
	fallbacks int64 // MergeEpoch calls that took the serial walk
}

// mergeShard owns one partition of the merged object state.
type mergeShard struct {
	states  map[model.Tag]*objState
	claims  map[model.Tag]model.LocationID
	in      []shardInput
	out     []stampedEvent
	pending []stampedPending
}

// shardInput is one routed input event with its global order stamp.
type shardInput struct {
	zone ZoneID
	gidx int32
	e    event.Event
}

// stampedEvent is one emission tagged with its position in the serial
// emission order: the triggering input's gidx, then the sub-index among
// that input's emissions.
type stampedEvent struct {
	gidx int32
	sub  int8
	e    event.Event
}

// stampedPending is a deferred Missing alarm with its input stamp; the
// barrier flushes pending alarms in gidx order, matching the serial
// merger's append order.
type stampedPending struct {
	gidx int32
	p    pendingMissing
}

// NewParallelMerger returns an empty sharded merger with the given
// shard count (rounded up to a power of two; <= 0 selects the default
// of 8).
func NewParallelMerger(shards int) *ParallelMerger {
	if shards <= 0 {
		shards = 8
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	pm := &ParallelMerger{
		shards:   make([]*mergeShard, n),
		shift:    uint(64 - trailingLog2(n)),
		lastTime: model.EpochNone,
		heads:    make([]int, n),
	}
	for i := range pm.shards {
		pm.shards[i] = &mergeShard{
			states: make(map[model.Tag]*objState),
			claims: make(map[model.Tag]model.LocationID),
		}
	}
	return pm
}

func trailingLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// shardOf routes an object tag to its shard by Fibonacci hashing: tags
// are dense small integers, so the multiply spreads them across the
// high bits the shift selects.
func (pm *ParallelMerger) shardOf(g model.Tag) *mergeShard {
	if pm.shift == 64 {
		return pm.shards[0]
	}
	return pm.shards[(uint64(g)*0x9E3779B97F4A7C15)>>pm.shift]
}

func (s *mergeShard) state(g model.Tag) *objState {
	st, ok := s.states[g]
	if !ok {
		st = &objState{owner: -1, loc: model.LocationNone, container: model.NoTag}
		s.states[g] = st
	}
	return st
}

// emittedAt is the event's position in the merged stream time: End
// events sort by their close epoch, everything else by Vs — the same
// rule the serial Ingest applies.
func emittedAt(e *event.Event) model.Epoch {
	if e.Kind == event.EndLocation || e.Kind == event.EndContainment {
		return e.Ve
	}
	return e.Vs
}

// MergeEpoch merges every zone's batch for one epoch (zone-major order)
// and returns the merged events, including the epoch barrier's output;
// when final is set it also closes every interval still open, exactly
// like the serial Close. Batches are not retained.
func (pm *ParallelMerger) MergeEpoch(epoch model.Epoch, batches [][]event.Event, final bool) ([]event.Event, error) {
	// Route events to shards and check the barrier precondition in one
	// pass; nothing is mutated until the plan is chosen, so the serial
	// fallback starts from the same state.
	par := epoch >= pm.lastTime || pm.lastTime == model.EpochNone
	total := 0
	gidx := int32(0)
	for _, b := range batches {
		total += len(b)
	}
	for z, b := range batches {
		for i := range b {
			e := &b[i]
			if par && (e.Validate() != nil || emittedAt(e) != epoch) {
				par = false
			}
			if par {
				s := pm.shardOf(e.Object)
				s.in = append(s.in, shardInput{zone: ZoneID(z), gidx: gidx, e: *e})
			}
			gidx++
		}
	}
	if !par {
		for _, s := range pm.shards {
			s.in = s.in[:0]
		}
		pm.fallbacks++
		return pm.mergeSerial(epoch, batches, final)
	}

	var wg sync.WaitGroup
	for _, s := range pm.shards {
		if len(s.in) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *mergeShard) {
			defer wg.Done()
			for i := range s.in {
				in := &s.in[i]
				s.apply(in.zone, in.e, in.gidx)
			}
		}(s)
	}
	wg.Wait()
	if total > 0 {
		pm.lastTime = epoch
	}

	// Deterministic k-way merge of the per-shard emission runs. Each run
	// is already sorted by gidx (shards apply in input order), and one
	// input's emissions land in one shard, so comparing (gidx, sub)
	// across shard heads reconstructs the serial order.
	out := make([]event.Event, 0, total)
	heads := pm.heads
	remaining := 0
	for i, s := range pm.shards {
		heads[i] = 0
		remaining += len(s.out)
	}
	for remaining > 0 {
		best := -1
		for i, s := range pm.shards {
			if heads[i] >= len(s.out) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a, c := &s.out[heads[i]], &pm.shards[best].out[heads[best]]
			if a.gidx < c.gidx || (a.gidx == c.gidx && a.sub < c.sub) {
				best = i
			}
		}
		out = append(out, pm.shards[best].out[heads[best]].e)
		heads[best]++
		remaining--
	}
	for _, s := range pm.shards {
		s.in = s.in[:0]
		s.out = s.out[:0]
	}

	pm.barrierInto(&out)
	if final {
		pm.closeInto(epoch, &out)
	}
	return out, nil
}

// mergeSerial reproduces the serial Merger's Ingest-per-zone walk over
// the sharded state — the fallback for batches that violate the barrier
// precondition, including ones the serial reference would reject.
func (pm *ParallelMerger) mergeSerial(epoch model.Epoch, batches [][]event.Event, final bool) ([]event.Event, error) {
	var out []event.Event
	gidx := int32(0)
	for z, b := range batches {
		for i := range b {
			e := b[i]
			if err := e.Validate(); err != nil {
				return nil, fmt.Errorf("federate: zone %d: %w", z, err)
			}
			emitted := emittedAt(&e)
			if emitted < pm.lastTime {
				return nil, fmt.Errorf("federate: zone %d: event %v at %d before merged stream time %d",
					z, e, emitted, pm.lastTime)
			}
			if emitted > pm.lastTime && pm.lastTime != model.EpochNone {
				pm.barrierInto(&out)
			}
			s := pm.shardOf(e.Object)
			s.apply(ZoneID(z), e, gidx)
			for _, se := range s.out {
				out = append(out, se.e)
			}
			s.out = s.out[:0]
			if emitted > pm.lastTime {
				pm.lastTime = emitted
			}
			gidx++
		}
	}
	pm.barrierInto(&out)
	if final {
		pm.closeInto(epoch, &out)
	}
	return out, nil
}

// apply is the serial Merger.apply, emitting into the shard's stamped
// run instead of a flat buffer. Any change here must be mirrored in
// Merger.apply — the differential and fuzz suites enforce that.
func (s *mergeShard) apply(zone ZoneID, e event.Event, gidx int32) {
	st := s.state(e.Object)
	sub := int8(0)
	emit := func(ev event.Event) {
		s.out = append(s.out, stampedEvent{gidx: gidx, sub: sub, e: ev})
		sub++
	}
	switch e.Kind {
	case event.StartLocation:
		if st.locOpen {
			if st.owner == zone && st.loc == e.Location {
				return // duplicate of the already-open interval
			}
			emit(event.NewEndLocation(e.Object, st.loc, st.locVs, e.Vs))
		}
		st.owner = zone
		st.locOpen = true
		st.loc = e.Location
		st.locVs = e.Vs
		st.missing = false
		s.claims[e.Object] = e.Location
		emit(event.NewStartLocation(e.Object, e.Location, e.Vs))
	case event.EndLocation:
		if st.owner != zone || !st.locOpen || st.loc != e.Location {
			return // stale view from a zone that lost the object
		}
		st.locOpen = false
		s.claims[e.Object] = e.Location
		emit(event.NewEndLocation(e.Object, e.Location, st.locVs, e.Ve))
	case event.Missing:
		if st.owner != zone && st.owner != -1 {
			return // only the owner may declare the object missing
		}
		st.owner = zone
		if st.locOpen {
			emit(event.NewEndLocation(e.Object, st.loc, st.locVs, e.Vs))
			st.locOpen = false
		}
		s.pending = append(s.pending, stampedPending{gidx: gidx,
			p: pendingMissing{obj: e.Object, from: e.Location, at: e.Vs}})
	case event.StartContainment:
		if st.contOpen && st.container == e.Container {
			st.owner = zone
			return
		}
		if st.contOpen {
			emit(event.NewEndContainment(e.Object, st.container, st.contVs, e.Vs))
		}
		st.owner = zone
		st.contOpen = true
		st.container = e.Container
		st.contVs = e.Vs
		emit(event.NewStartContainment(e.Object, e.Container, e.Vs))
	case event.EndContainment:
		if st.owner != zone || !st.contOpen || st.container != e.Container {
			return // stale view from a zone that lost the object
		}
		st.contOpen = false
		emit(event.NewEndContainment(e.Object, e.Container, st.contVs, e.Ve))
	}
}

// effectiveLoc mirrors the serial rule: the location the object
// asserted this epoch (its claim), else its open interval's location,
// else unknown.
func (pm *ParallelMerger) effectiveLoc(g model.Tag, st *objState) (model.LocationID, bool) {
	if l, ok := pm.shardOf(g).claims[g]; ok {
		return l, true
	}
	if st.locOpen {
		return st.loc, true
	}
	return model.LocationNone, false
}

// barrierInto runs the epoch barrier across all shards, single-threaded:
// cross-zone containment conflicts in sorted object order, deferred
// Missing alarms in input (gidx) order, then claim expiry.
func (pm *ParallelMerger) barrierInto(out *[]event.Event) {
	var objs []model.Tag
	for _, s := range pm.shards {
		for g, st := range s.states {
			if !st.contOpen {
				continue
			}
			childLoc, childKnown := pm.effectiveLoc(g, st)
			if !childKnown {
				continue
			}
			parent, ok := pm.shardOf(st.container).states[st.container]
			if !ok {
				continue
			}
			parentLoc, parentKnown := pm.effectiveLoc(st.container, parent)
			if !parentKnown || parentLoc == childLoc {
				continue
			}
			objs = append(objs, g)
		}
	}
	slices.Sort(objs)
	for _, g := range objs {
		st := pm.shardOf(g).states[g]
		*out = append(*out, event.NewEndContainment(g, st.container, st.contVs, pm.lastTime))
		st.contOpen = false
	}

	var pend []stampedPending
	for _, s := range pm.shards {
		pend = append(pend, s.pending...)
		s.pending = s.pending[:0]
	}
	slices.SortFunc(pend, func(a, b stampedPending) int {
		return int(a.gidx - b.gidx)
	})
	for _, sp := range pend {
		st := pm.shardOf(sp.p.obj).state(sp.p.obj)
		if st.locOpen || st.missing {
			continue // picked up by another zone, or already alarmed
		}
		st.missing = true
		*out = append(*out, event.NewMissing(sp.p.obj, sp.p.from, sp.p.at))
	}
	for _, s := range pm.shards {
		clear(s.claims)
	}
}

// closeInto ends every open merged interval at epoch now, in sorted tag
// order — the serial Close's tail.
func (pm *ParallelMerger) closeInto(now model.Epoch, out *[]event.Event) {
	var tags []model.Tag
	for _, s := range pm.shards {
		for g, st := range s.states {
			if st.contOpen || st.locOpen {
				tags = append(tags, g)
			}
		}
	}
	slices.Sort(tags)
	for _, g := range tags {
		st := pm.shardOf(g).states[g]
		if st.contOpen {
			*out = append(*out, event.NewEndContainment(g, st.container, st.contVs, now))
			st.contOpen = false
		}
		if st.locOpen {
			*out = append(*out, event.NewEndLocation(g, st.loc, st.locVs, now))
			st.locOpen = false
		}
	}
}

// SerialFallbacks reports how many MergeEpoch calls violated the
// barrier precondition and took the serial walk — benchmarks use it to
// verify the parallel path actually engaged.
func (pm *ParallelMerger) SerialFallbacks() int64 { return pm.fallbacks }

// Objects reports the number of objects the merger has seen.
func (pm *ParallelMerger) Objects() int {
	n := 0
	for _, s := range pm.shards {
		n += len(s.states)
	}
	return n
}
