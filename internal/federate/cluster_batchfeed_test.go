package federate_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/federate"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

// The batch-feed cluster keystone: zone workers fed by the columnar
// zone-batch source (sim.PartitionZonesBatch + Worker.RunBatches) over
// loopback TCP, merged by the coordinator's sharded parallel merger,
// must be byte-identical to the in-process batch-feed reference merged
// through the serial oracle. Zone-batch observation is its own
// deterministic trace (per-reader RNG streams, not the Step trace), so
// the reference runs the same feed mode — the comparison isolates the
// wire, the columnar frames, the replay buffer, and the merge path.

// runInProcessBatchFederated is the reference: one substrate per zone
// fed from the shared zone-batch feed, merged through the serial Merger.
func runInProcessBatchFederated(t *testing.T, cfg sim.Config, lvl core.CompressionLevel, nZones int) []event.Event {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := s.PartitionZones(nZones)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := s.PartitionZonesBatch(nZones)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*core.Substrate, nZones)
	for z := range subs {
		subs[z] = substrateFor(t, zones[z], s.Locations(), lvl)
	}
	m := federate.NewMerger()
	var merged []event.Event
	for {
		eof := false
		for z := 0; z < nZones; z++ {
			b, err := streams[z].NextBatch()
			if err == io.EOF {
				eof = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			eo, err := subs[z].ProcessBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			out, err := m.Ingest(federate.ZoneID(z), eo.Events)
			if err != nil {
				t.Fatal(err)
			}
			merged = append(merged, out...)
		}
		if eof {
			break
		}
		merged = append(merged, m.EndEpoch()...)
	}
	end := s.Now() + 1
	for z := 0; z < nZones; z++ {
		out, err := m.Ingest(federate.ZoneID(z), subs[z].Close(end))
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, out...)
	}
	return append(merged, m.Close(end)...)
}

// killBatchSource fails the zone's batch source at the kill epoch,
// simulating a worker crash mid-stream.
type killBatchSource struct {
	inner  federate.BatchSource
	killAt model.Epoch
}

func (k *killBatchSource) NextBatch() (*model.Batch, error) {
	b, err := k.inner.NextBatch()
	if err != nil {
		return nil, err
	}
	if k.killAt != model.EpochNone && b.Time >= k.killAt {
		return nil, errKilled
	}
	return b, nil
}

// frameLimitConn injects a disconnect at a frame boundary: after `limit`
// successful writes (the worker writes exactly one frame per Write
// call, Hello included) every further write fails and the connection
// dies. With limit 2, every connection carries the handshake plus one
// epoch frame — the redial-at-every-frame-boundary regression for the
// replay buffer: each reconnect replays owned wire bytes while the
// worker's column scratch is already rebuilding the next epoch.
type frameLimitConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	limit  int
}

func (c *frameLimitConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writes >= c.limit {
		c.Conn.Close()
		return 0, errors.New("injected disconnect at frame boundary")
	}
	c.writes++
	return c.Conn.Write(p)
}

// runZoneWorkerBatch drives one zone over the batch feed, with optional
// crash-and-resume and optional per-frame disconnect injection.
func runZoneWorkerBatch(cfg sim.Config, lvl core.CompressionLevel, nZones, zone int, addr, ckpt string, killAt model.Epoch, framesPerConn int) error {
	attempt := func(kill model.Epoch) error {
		s, err := sim.New(cfg)
		if err != nil {
			return err
		}
		zones, err := s.PartitionZones(nZones)
		if err != nil {
			return err
		}
		streams, err := s.PartitionZonesBatch(nZones)
		if err != nil {
			return err
		}
		var sub *core.Substrate
		if _, err := os.Stat(ckpt); err == nil {
			if sub, err = core.RestoreSubstrateFromFile(ckpt); err != nil {
				return fmt.Errorf("zone %d: restore: %w", zone, err)
			}
		} else {
			sub, err = core.New(core.Config{
				Readers:     zones[zone],
				Locations:   s.Locations(),
				Inference:   inference.DefaultConfig(),
				Compression: lvl,
			})
			if err != nil {
				return err
			}
		}
		wcfg := federate.WorkerConfig{
			Zone:            federate.ZoneID(zone),
			Addr:            addr,
			Substrate:       sub,
			CheckpointPath:  ckpt,
			CheckpointEvery: 100,
			BaseBackoff:     time.Millisecond,
			MaxBackoff:      20 * time.Millisecond,
		}
		if framesPerConn > 0 {
			wcfg.Dial = func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				c, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					return nil, err
				}
				return &frameLimitConn{Conn: c, limit: framesPerConn}, nil
			}
		}
		w, err := federate.NewWorker(wcfg)
		if err != nil {
			return err
		}
		var src federate.BatchSource = streams[zone]
		if kill != model.EpochNone {
			src = &killBatchSource{inner: src, killAt: kill}
		}
		return w.RunBatches(context.Background(), src)
	}
	if killAt != model.EpochNone {
		if err := attempt(killAt); !errors.Is(err, errKilled) {
			return fmt.Errorf("zone %d: expected kill, got %v", zone, err)
		}
		if _, err := os.Stat(ckpt); err != nil {
			return fmt.Errorf("zone %d: no checkpoint persisted before kill: %v", zone, err)
		}
	}
	return attempt(model.EpochNone)
}

// runNetworkedBatchCluster runs the batch-feed cluster on loopback TCP
// and returns the merged stream.
func runNetworkedBatchCluster(t *testing.T, cfg sim.Config, lvl core.CompressionLevel, nZones, killZone int, killAt model.Epoch, framesPerConn int) []event.Event {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var merged []event.Event
	coord, err := federate.NewCoordinator(federate.CoordinatorConfig{
		Zones:            nZones,
		StragglerTimeout: time.Minute,
		Sink: func(_ model.Epoch, evs []event.Event) error {
			merged = append(merged, evs...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(context.Background(), ln) }()

	dir := t.TempDir()
	workerErrs := make([]error, nZones)
	var wg sync.WaitGroup
	for z := 0; z < nZones; z++ {
		wg.Add(1)
		go func(z int) {
			defer wg.Done()
			kill := model.EpochNone
			if z == killZone {
				kill = killAt
			}
			ckpt := filepath.Join(dir, fmt.Sprintf("zone-%d.ckpt", z))
			workerErrs[z] = runZoneWorkerBatch(cfg, lvl, nZones, z, ln.Addr().String(), ckpt, kill, framesPerConn)
		}(z)
	}
	wg.Wait()
	for z, err := range workerErrs {
		if err != nil {
			t.Fatalf("zone %d worker: %v", z, err)
		}
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("coordinator did not finish after workers exited")
	}
	return merged
}

// TestBatchFeedClusterMatchesInProcess is the batch-feed keystone: the
// networked cluster — columnar frames, zero-copy submits, parallel
// coordinator merge — reproduces the in-process serial-merged reference
// byte for byte at N∈{2,4} and both compression levels, including a
// crash-killed zone resuming from its checkpoint.
func TestBatchFeedClusterMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster test is not short")
	}
	cfg := clusterSimConfig()
	cases := []struct {
		lvl      core.CompressionLevel
		zones    int
		killZone int
		killAt   model.Epoch
	}{
		{core.Level1, 2, -1, model.EpochNone},
		{core.Level1, 4, 1, 700},
		{core.Level2, 2, 0, 650},
		{core.Level2, 4, -1, model.EpochNone},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("level%d-zones%d", tc.lvl, tc.zones)
		if tc.killZone >= 0 {
			name += fmt.Sprintf("-kill%d", tc.killZone)
		}
		t.Run(name, func(t *testing.T) {
			want := runInProcessBatchFederated(t, cfg, tc.lvl, tc.zones)
			got := runNetworkedBatchCluster(t, cfg, tc.lvl, tc.zones, tc.killZone, tc.killAt, 0)
			if err := event.CheckWellFormed(got, true); err != nil {
				t.Fatalf("merged stream: %v", err)
			}
			if !slices.Equal(want, got) {
				diffCanonical(t, "batch cluster", want, got)
				t.Fatalf("streams differ only in order: %d events", len(got))
			}
		})
	}
}

// TestBatchFeedClusterDisconnectEveryFrame injects a disconnect at
// every frame boundary: each worker connection carries the handshake
// plus exactly one epoch frame before dying, so every epoch is
// delivered through a redial-and-replay. The merged stream must still
// match the in-process reference byte for byte — the regression pin for
// the replay buffer's owned wire bytes (a replay that re-read a column
// or scratch slice the next epoch is already rewriting would corrupt
// exactly this run).
func TestBatchFeedClusterDisconnectEveryFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster test is not short")
	}
	cfg := clusterSimConfig()
	cfg.Duration = 300
	want := runInProcessBatchFederated(t, cfg, core.Level2, 2)
	got := runNetworkedBatchCluster(t, cfg, core.Level2, 2, -1, model.EpochNone, 2)
	if err := event.CheckWellFormed(got, true); err != nil {
		t.Fatalf("merged stream: %v", err)
	}
	if !slices.Equal(want, got) {
		diffCanonical(t, "flaky batch cluster", want, got)
		t.Fatalf("streams differ only in order: %d events", len(got))
	}
}
