package federate

import (
	"math/rand"
	"testing"

	"spire/internal/compress"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
)

const (
	obj   = model.Tag(1)
	caseT = model.Tag(2)
	locA  = model.LocationID(0) // zone 0
	locB  = model.LocationID(5) // zone 1
)

func ingest(t *testing.T, m *Merger, zone ZoneID, evs ...event.Event) []event.Event {
	t.Helper()
	out, err := m.Ingest(zone, evs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHandoffClosesStaleInterval(t *testing.T) {
	m := NewMerger()
	var all []event.Event
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 1))...)
	// Zone 1 first sees the object at t=50 while zone 0's interval is
	// still open; zone 0 never emits an End (it just stops seeing it, or
	// its End arrives late).
	all = append(all, ingest(t, m, 1, event.NewStartLocation(obj, locB, 50))...)
	want := []event.Event{
		event.NewStartLocation(obj, locA, 1),
		event.NewEndLocation(obj, locA, 1, 50),
		event.NewStartLocation(obj, locB, 50),
	}
	if len(all) != len(want) {
		t.Fatalf("merged = %v, want %v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, all[i], want[i])
		}
	}
	if err := event.CheckWellFormed(all, false); err != nil {
		t.Fatal(err)
	}
}

func TestStaleEndDropped(t *testing.T) {
	m := NewMerger()
	var all []event.Event
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 1))...)
	all = append(all, ingest(t, m, 1, event.NewStartLocation(obj, locB, 50))...)
	// Zone 0 belatedly reports an End (+ Missing) for the object it lost.
	late := ingest(t, m, 0,
		event.NewEndLocation(obj, locA, 1, 60),
		event.NewMissing(obj, locA, 60))
	if len(late) != 0 {
		t.Fatalf("stale zone-0 view must be dropped, got %v", late)
	}
	all = append(all, late...)
	if err := event.CheckWellFormed(all, false); err != nil {
		t.Fatal(err)
	}
}

func TestOwningZoneEndAndMissingForwarded(t *testing.T) {
	m := NewMerger()
	var all []event.Event
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 1))...)
	all = append(all, m.EndEpoch()...)
	all = append(all, ingest(t, m, 0,
		event.NewEndLocation(obj, locA, 1, 30),
		event.NewMissing(obj, locA, 30))...)
	// The alarm is deferred to the epoch barrier, where no other zone
	// has claimed the object, so it is forwarded.
	all = append(all, m.EndEpoch()...)
	want := []event.Event{
		event.NewStartLocation(obj, locA, 1),
		event.NewEndLocation(obj, locA, 1, 30),
		event.NewMissing(obj, locA, 30),
	}
	if len(all) != len(want) {
		t.Fatalf("merged = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, all[i], want[i])
		}
	}
}

func TestDuplicateStartSuppressed(t *testing.T) {
	m := NewMerger()
	ingest(t, m, 0, event.NewStartLocation(obj, locA, 1))
	dup := ingest(t, m, 0, event.NewStartLocation(obj, locA, 5))
	if len(dup) != 0 {
		t.Fatalf("duplicate start must be suppressed, got %v", dup)
	}
}

func TestContainmentHandoff(t *testing.T) {
	m := NewMerger()
	var all []event.Event
	all = append(all, ingest(t, m, 0, event.NewStartContainment(obj, caseT, 1))...)
	// Zone 1 reports a different container without zone 0 ending the old
	// one.
	all = append(all, ingest(t, m, 1, event.NewStartContainment(obj, caseT+1, 40))...)
	want := []event.Event{
		event.NewStartContainment(obj, caseT, 1),
		event.NewEndContainment(obj, caseT, 1, 40),
		event.NewStartContainment(obj, caseT+1, 40),
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("merged = %v, want %v", all, want)
		}
	}
	// A duplicate containment start is suppressed (but transfers
	// ownership); a mismatched end is dropped.
	if out := ingest(t, m, 0, event.NewStartContainment(obj, caseT+1, 50)); len(out) != 0 {
		t.Errorf("duplicate containment start must be suppressed: %v", out)
	}
	if out := ingest(t, m, 0, event.NewEndContainment(obj, caseT, 1, 60)); len(out) != 0 {
		t.Errorf("mismatched containment end must be dropped: %v", out)
	}
}

// TestContainmentStaleCloseDropped pins the ownership rules the package
// doc promises for containment: after a handoff, the stale zone cannot
// close the interval the new owner holds open, and the owner can.
func TestContainmentStaleCloseDropped(t *testing.T) {
	m := NewMerger()
	ingest(t, m, 0, event.NewStartContainment(obj, caseT, 1))
	// Handoff: zone 1 reports a different container; ownership moves to
	// zone 1 and zone 0's interval is closed at the handoff epoch.
	ingest(t, m, 1, event.NewStartContainment(obj, caseT+1, 40))
	// Zone 0's view is stale: its attempt to close the interval zone 1
	// now owns — with the matching container and open epoch — must drop.
	if out := ingest(t, m, 0, event.NewEndContainment(obj, caseT+1, 40, 60)); len(out) != 0 {
		t.Fatalf("stale zone-0 containment close must be dropped, got %v", out)
	}
	// The interval is still open: the owning zone can close it.
	out := ingest(t, m, 1, event.NewEndContainment(obj, caseT+1, 40, 70))
	want := event.NewEndContainment(obj, caseT+1, 40, 70)
	if len(out) != 1 || out[0] != want {
		t.Fatalf("owner close = %v, want [%v]", out, want)
	}
}

// TestContainmentDuplicateStartTransfersOwnership pins the silent
// ownership transfer on a same-container re-observation: the reporting
// zone becomes the owner and may close the interval, while the previous
// owner's close drops.
func TestContainmentDuplicateStartTransfersOwnership(t *testing.T) {
	m := NewMerger()
	ingest(t, m, 0, event.NewStartContainment(obj, caseT, 1))
	// Zone 1 re-observes the same containment: suppressed, but zone 1 is
	// now the most recent observer and owns the object.
	if out := ingest(t, m, 1, event.NewStartContainment(obj, caseT, 40)); len(out) != 0 {
		t.Fatalf("same-container start must be suppressed, got %v", out)
	}
	if out := ingest(t, m, 0, event.NewEndContainment(obj, caseT, 1, 50)); len(out) != 0 {
		t.Fatalf("previous owner's close must be dropped, got %v", out)
	}
	out := ingest(t, m, 1, event.NewEndContainment(obj, caseT, 1, 60))
	want := event.NewEndContainment(obj, caseT, 1, 60)
	if len(out) != 1 || out[0] != want {
		t.Fatalf("owner close = %v, want [%v]", out, want)
	}
}

// TestSameEpochHandoffClamped pins the semantics of a handoff arriving at
// the same epoch the stale interval opened: the stale interval is clamped
// to the single-epoch interval [Vs, Vs] — not suppressed, which would
// orphan its already-emitted Start — and the merged stream stays
// well-formed.
func TestSameEpochHandoffClamped(t *testing.T) {
	m := NewMerger()
	var all []event.Event
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 10))...)
	all = append(all, ingest(t, m, 1, event.NewStartLocation(obj, locB, 10))...)
	all = append(all, m.EndEpoch()...)
	want := []event.Event{
		event.NewStartLocation(obj, locA, 10),
		event.NewEndLocation(obj, locA, 10, 10),
		event.NewStartLocation(obj, locB, 10),
	}
	if len(all) != len(want) {
		t.Fatalf("merged = %v, want %v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, all[i], want[i])
		}
	}
	all = append(all, m.Close(11)...)
	if err := event.CheckWellFormed(all, true); err != nil {
		t.Fatal(err)
	}

	// Same clamp for containment intervals.
	m = NewMerger()
	all = all[:0]
	all = append(all, ingest(t, m, 0, event.NewStartContainment(obj, caseT, 10))...)
	all = append(all, ingest(t, m, 1, event.NewStartContainment(obj, caseT+1, 10))...)
	wantC := []event.Event{
		event.NewStartContainment(obj, caseT, 10),
		event.NewEndContainment(obj, caseT, 10, 10),
		event.NewStartContainment(obj, caseT+1, 10),
	}
	if len(all) != len(wantC) {
		t.Fatalf("merged = %v, want %v", all, wantC)
	}
	for i := range wantC {
		if all[i] != wantC[i] {
			t.Errorf("event %d: got %v, want %v", i, all[i], wantC[i])
		}
	}
	all = append(all, m.Close(11)...)
	if err := event.CheckWellFormed(all, true); err != nil {
		t.Fatal(err)
	}
}

// TestMissingRetractedAtBarrier pins the epoch barrier: a zone's Missing
// for an object another zone claims in the same epoch is retracted, in
// both zone ingest orders.
func TestMissingRetractedAtBarrier(t *testing.T) {
	// Losing zone first: the alarm is staged, then retracted when the
	// gaining zone's Start arrives before the barrier.
	m := NewMerger()
	var all []event.Event
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 1))...)
	all = append(all, m.EndEpoch()...)
	all = append(all, ingest(t, m, 0,
		event.NewEndLocation(obj, locA, 1, 50),
		event.NewMissing(obj, locA, 50))...)
	all = append(all, ingest(t, m, 1, event.NewStartLocation(obj, locB, 50))...)
	if extra := m.EndEpoch(); len(extra) != 0 {
		t.Fatalf("alarm must be retracted at the barrier, got %v", extra)
	}
	for _, e := range all {
		if e.Kind == event.Missing {
			t.Fatalf("merged stream contains a retracted alarm: %v", all)
		}
	}
	all = append(all, m.Close(60)...)
	if err := event.CheckWellFormed(all, true); err != nil {
		t.Fatal(err)
	}

	// Gaining zone first: ownership moves on the Start, so the losing
	// zone's End and Missing are dropped as stale on arrival.
	m = NewMerger()
	all = all[:0]
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 1))...)
	all = append(all, m.EndEpoch()...)
	all = append(all, ingest(t, m, 1, event.NewStartLocation(obj, locB, 50))...)
	all = append(all, ingest(t, m, 0,
		event.NewEndLocation(obj, locA, 1, 50),
		event.NewMissing(obj, locA, 50))...)
	if extra := m.EndEpoch(); len(extra) != 0 {
		t.Fatalf("stale alarm must be dropped, got %v", extra)
	}
	for _, e := range all {
		if e.Kind == event.Missing {
			t.Fatalf("merged stream contains a stale alarm: %v", all)
		}
	}
	all = append(all, m.Close(60)...)
	if err := event.CheckWellFormed(all, true); err != nil {
		t.Fatal(err)
	}
}

// TestMissingSingleAlarm pins "at most one alarm per in-transit object":
// an unclaimed object's first Missing seizes ownership so later reports
// from other zones drop, repeated reports from the owner latch, and a
// reappearance re-arms the alarm.
func TestMissingSingleAlarm(t *testing.T) {
	m := NewMerger()
	var all []event.Event
	// Two zones report an object neither has ever started (e.g. both saw
	// it before the merger's horizon). Only one alarm survives.
	all = append(all, ingest(t, m, 0, event.NewMissing(obj, locA, 5))...)
	all = append(all, ingest(t, m, 1, event.NewMissing(obj, locB, 5))...)
	all = append(all, m.EndEpoch()...)
	if len(all) != 1 || all[0] != event.NewMissing(obj, locA, 5) {
		t.Fatalf("merged = %v, want exactly [Missing(obj, locA, 5)]", all)
	}
	// The owner repeating the alarm (e.g. after a zone restart) stays
	// latched.
	all = append(all, ingest(t, m, 0, event.NewMissing(obj, locA, 8))...)
	all = append(all, m.EndEpoch()...)
	if len(all) != 1 {
		t.Fatalf("repeated alarm must latch, merged = %v", all)
	}
	// Reappearing clears the latch; a fresh disappearance alarms again.
	all = append(all, ingest(t, m, 0, event.NewStartLocation(obj, locA, 20))...)
	all = append(all, m.EndEpoch()...)
	all = append(all, ingest(t, m, 0,
		event.NewEndLocation(obj, locA, 20, 30),
		event.NewMissing(obj, locA, 30))...)
	all = append(all, m.EndEpoch()...)
	var alarms int
	for _, e := range all {
		if e.Kind == event.Missing {
			alarms++
		}
	}
	if alarms != 2 {
		t.Fatalf("want 2 alarms across 2 disappearances, merged = %v", all)
	}
	if err := event.CheckWellFormed(all, false); err != nil {
		t.Fatal(err)
	}
}

func TestMergerRejectsBadInput(t *testing.T) {
	m := NewMerger()
	if _, err := m.Ingest(0, []event.Event{{Kind: event.StartLocation}}); err == nil {
		t.Error("invalid event must be rejected")
	}
	ingest(t, m, 0, event.NewStartLocation(obj, locA, 100))
	if _, err := m.Ingest(0, []event.Event{event.NewStartLocation(caseT, locA, 50)}); err == nil {
		t.Error("time regression must be rejected")
	}
}

func TestCloseEndsEverything(t *testing.T) {
	m := NewMerger()
	ingest(t, m, 0,
		event.NewStartContainment(obj, caseT, 1),
		event.NewStartLocation(obj, locA, 1),
		event.NewStartLocation(caseT, locA, 1))
	out := m.Close(99)
	if len(out) != 3 {
		t.Fatalf("Close emitted %v", out)
	}
	if m.Objects() != 2 {
		t.Errorf("Objects = %d, want 2", m.Objects())
	}
	if extra := m.Close(100); len(extra) != 0 {
		t.Errorf("second Close must be empty, got %v", extra)
	}
}

// TestRandomizedZonesStayWellFormed drives two per-zone level-1
// compressors with random object movements — each zone only sees the
// objects currently in its half of the warehouse and believes the rest
// have gone missing — and checks that the merged stream is always
// well-formed with at most one open interval per object.
func TestRandomizedZonesStayWellFormed(t *testing.T) {
	levelOf := func(model.Tag) model.Level { return model.LevelItem }
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewMerger()
		comps := [2]*compress.Level1{compress.NewLevel1(levelOf), compress.NewLevel1(levelOf)}
		var merged []event.Event

		const nObjects = 8
		zone := make([]int, nObjects) // current zone per object
		loc := make([]model.LocationID, nObjects)
		for i := range loc {
			zone[i] = rng.Intn(2)
			loc[i] = model.LocationID(zone[i]*4 + rng.Intn(4))
		}
		for epoch := model.Epoch(1); epoch <= 150; epoch++ {
			for i := range loc {
				if rng.Float64() < 0.1 {
					zone[i] = rng.Intn(2)
					loc[i] = model.LocationID(zone[i]*4 + rng.Intn(4))
				}
			}
			for z := 0; z < 2; z++ {
				res := &inference.Result{
					Now:       epoch,
					Locations: map[model.Tag]model.LocationID{},
					Parents:   map[model.Tag]model.Tag{},
					Observed:  map[model.Tag]bool{},
				}
				for i := range loc {
					g := model.Tag(i + 1)
					if zone[i] == z {
						res.Locations[g] = loc[i]
						res.Parents[g] = model.NoTag
					} else if epoch > 1 {
						// The other zone's view: the object is gone.
						res.Locations[g] = model.LocationUnknown
						res.Parents[g] = model.NoTag
					}
				}
				out, err := m.Ingest(ZoneID(z), comps[z].Compress(res))
				if err != nil {
					t.Fatalf("seed %d epoch %d zone %d: %v", seed, epoch, z, err)
				}
				merged = append(merged, out...)
			}
			merged = append(merged, m.EndEpoch()...)
		}
		merged = append(merged, m.Close(151)...)
		if err := event.CheckWellFormed(merged, true); err != nil {
			t.Fatalf("seed %d: merged stream: %v", seed, err)
		}
	}
}

// TestTwoZonePipelineWellFormed merges two synthetic zone streams of an
// object ping-ponging between zones and checks global well-formedness.
func TestTwoZonePipelineWellFormed(t *testing.T) {
	m := NewMerger()
	var merged []event.Event
	// Zone streams as their compressors would emit them, interleaved by
	// epoch. Zone 0 covers locA, zone 1 covers locB; each zone opens the
	// object when it arrives and reports it missing a while after it
	// leaves (its local view).
	type batch struct {
		zone ZoneID
		evs  []event.Event
	}
	batches := []batch{
		{0, []event.Event{event.NewStartLocation(obj, locA, 1)}},
		{1, []event.Event{event.NewStartLocation(obj, locB, 20)}},
		{0, []event.Event{event.NewEndLocation(obj, locA, 1, 25), event.NewMissing(obj, locA, 25)}},
		{0, []event.Event{event.NewStartLocation(obj, locA, 40)}},
		{1, []event.Event{event.NewEndLocation(obj, locB, 20, 45), event.NewMissing(obj, locB, 45)}},
		{1, []event.Event{event.NewStartLocation(obj, locB, 60)}},
	}
	for _, b := range batches {
		out, err := m.Ingest(b.zone, b.evs)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, out...)
	}
	merged = append(merged, m.Close(99)...)
	if err := event.CheckWellFormed(merged, true); err != nil {
		t.Fatalf("merged stream: %v\n%v", err, merged)
	}
	// Exactly one open interval at any time: the object's merged history
	// must be locA, locB, locA, locB with no overlaps.
	var seq []model.LocationID
	for _, e := range merged {
		if e.Kind == event.StartLocation {
			seq = append(seq, e.Location)
		}
	}
	want := []model.LocationID{locA, locB, locA, locB}
	if len(seq) != len(want) {
		t.Fatalf("location sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("location sequence = %v, want %v", seq, want)
		}
	}
}
