package federate_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/event"
	"spire/internal/federate"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

// clusterSimConfig is the shared world for the distributed-deployment
// tests: small enough to run in CI, busy enough to exercise cross-zone
// handoffs (every case crosses every zone boundary on its way through).
func clusterSimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Duration = 1200
	cfg.PalletInterval = 150
	cfg.CasesMin, cfg.CasesMax = 2, 3
	cfg.ItemsPerCase = 4
	cfg.ShelfTime = 250
	cfg.ShelfPeriod = 10
	cfg.TheftInterval = 400
	cfg.ReadRate = 1.0
	return cfg
}

func substrateFor(t *testing.T, readers []model.Reader, locs []model.Location, lvl core.CompressionLevel) *core.Substrate {
	t.Helper()
	sub, err := core.New(core.Config{
		Readers:     readers,
		Locations:   locs,
		Inference:   inference.DefaultConfig(),
		Compression: lvl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// runSingleSubstrate interprets the whole warehouse with one substrate.
func runSingleSubstrate(t *testing.T, cfg sim.Config, lvl core.CompressionLevel) []event.Event {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := substrateFor(t, s.Readers(), s.Locations(), lvl)
	var out []event.Event
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		eo, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, eo.Events...)
	}
	return append(out, sub.Close(s.Now()+1)...)
}

// runInProcessFederated interprets the warehouse with one substrate per
// zone and merges the streams through the Merger directly (no network) —
// the reference the networked cluster must reproduce exactly.
func runInProcessFederated(t *testing.T, cfg sim.Config, lvl core.CompressionLevel, nZones int) []event.Event {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := s.PartitionZones(nZones)
	if err != nil {
		t.Fatal(err)
	}
	zoneOf := sim.ZoneOfReaders(zones)
	subs := make([]*core.Substrate, nZones)
	for z := range subs {
		subs[z] = substrateFor(t, zones[z], s.Locations(), lvl)
	}
	m := federate.NewMerger()
	var merged []event.Event
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		split := sim.SplitObservation(o, zoneOf, nZones)
		for z := 0; z < nZones; z++ {
			eo, err := subs[z].ProcessEpoch(split[z])
			if err != nil {
				t.Fatal(err)
			}
			out, err := m.Ingest(federate.ZoneID(z), eo.Events)
			if err != nil {
				t.Fatal(err)
			}
			merged = append(merged, out...)
		}
		merged = append(merged, m.EndEpoch()...)
	}
	end := s.Now() + 1
	for z := 0; z < nZones; z++ {
		out, err := m.Ingest(federate.ZoneID(z), subs[z].Close(end))
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, out...)
	}
	return append(merged, m.Close(end)...)
}

func diffCanonical(t *testing.T, label string, want, got []event.Event) {
	t.Helper()
	event.CanonicalSort(want)
	event.CanonicalSort(got)
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: event %d differs:\n  want %v\n  got  %v", label, i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: %d events, want %d (first %d equal)", label, len(got), len(want), n)
	}
}

// errKilled simulates a zone worker crash: its observation source fails
// mid-stream, aborting Run the way a killed process would stop it.
var errKilled = errors.New("worker killed")

// killSource passes through the zone's observations until the kill
// epoch, then fails.
type killSource struct {
	inner  federate.ObservationSource
	killAt model.Epoch
}

func (k *killSource) Next() (*model.Observation, error) {
	o, err := k.inner.Next()
	if err != nil {
		return nil, err
	}
	if k.killAt != model.EpochNone && o.Time >= k.killAt {
		return nil, errKilled
	}
	return o, nil
}

// runZoneWorker drives one zone of the networked cluster to completion.
// If killAt is set, the worker "crashes" at that epoch and a fresh
// worker resumes from the on-disk checkpoint (or from scratch when no
// checkpoint was persisted yet), replaying the deterministic simulation.
func runZoneWorker(cfg sim.Config, lvl core.CompressionLevel, nZones, zone int, addr, ckpt string, killAt model.Epoch) error {
	attempt := func(kill model.Epoch) error {
		s, err := sim.New(cfg)
		if err != nil {
			return err
		}
		zones, err := s.PartitionZones(nZones)
		if err != nil {
			return err
		}
		var sub *core.Substrate
		if _, err := os.Stat(ckpt); err == nil {
			if sub, err = core.RestoreSubstrateFromFile(ckpt); err != nil {
				return fmt.Errorf("zone %d: restore: %w", zone, err)
			}
		} else {
			sub, err = core.New(core.Config{
				Readers:     zones[zone],
				Locations:   s.Locations(),
				Inference:   inference.DefaultConfig(),
				Compression: lvl,
			})
			if err != nil {
				return err
			}
		}
		w, err := federate.NewWorker(federate.WorkerConfig{
			Zone:            federate.ZoneID(zone),
			Addr:            addr,
			Substrate:       sub,
			CheckpointPath:  ckpt,
			CheckpointEvery: 100,
			BaseBackoff:     5 * time.Millisecond,
			MaxBackoff:      100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		var src federate.ObservationSource = sim.NewZoneStream(s, sim.ZoneOfReaders(zones), zone)
		if kill != model.EpochNone {
			src = &killSource{inner: src, killAt: kill}
		}
		return w.Run(context.Background(), src)
	}
	if killAt != model.EpochNone {
		if err := attempt(killAt); !errors.Is(err, errKilled) {
			return fmt.Errorf("zone %d: expected kill, got %v", zone, err)
		}
		// The kill epochs are chosen past the checkpoint cadence, so the
		// second attempt must resume from a persisted checkpoint — not
		// silently recompute from scratch.
		if _, err := os.Stat(ckpt); err != nil {
			return fmt.Errorf("zone %d: no checkpoint persisted before kill: %v", zone, err)
		}
	}
	return attempt(model.EpochNone)
}

// runNetworkedCluster runs the full cluster — coordinator on loopback
// TCP, one worker per zone — and returns the merged stream. killZone, if
// ≥ 0, is crash-killed at killAt and resumed from its checkpoint.
func runNetworkedCluster(t *testing.T, cfg sim.Config, lvl core.CompressionLevel, nZones, killZone int, killAt model.Epoch) []event.Event {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var merged []event.Event
	coord, err := federate.NewCoordinator(federate.CoordinatorConfig{
		Zones:            nZones,
		StragglerTimeout: time.Minute,
		Sink: func(_ model.Epoch, evs []event.Event) error {
			merged = append(merged, evs...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(context.Background(), ln) }()

	dir := t.TempDir()
	workerErrs := make([]error, nZones)
	var wg sync.WaitGroup
	for z := 0; z < nZones; z++ {
		wg.Add(1)
		go func(z int) {
			defer wg.Done()
			kill := model.EpochNone
			if z == killZone {
				kill = killAt
			}
			ckpt := filepath.Join(dir, fmt.Sprintf("zone-%d.ckpt", z))
			workerErrs[z] = runZoneWorker(cfg, lvl, nZones, z, ln.Addr().String(), ckpt, kill)
		}(z)
	}
	wg.Wait()
	for z, err := range workerErrs {
		if err != nil {
			t.Fatalf("zone %d worker: %v", z, err)
		}
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("coordinator did not finish after workers exited")
	}
	return merged
}

// TestNetworkedClusterMatchesInProcess is the keystone: an N-zone
// cluster over loopback TCP produces a merged stream byte-identical to
// the in-process federated reference on the same world and seed — the
// framing, acks, epoch barrier, and reconnect machinery add and lose
// nothing. N=2 runs plain; N=4 additionally crash-kills a zone
// mid-stream and resumes it from its checkpoint. Both compression levels
// get one plain and one kill-and-resume configuration.
func TestNetworkedClusterMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster test is not short")
	}
	cfg := clusterSimConfig()
	cases := []struct {
		lvl      core.CompressionLevel
		zones    int
		killZone int
		killAt   model.Epoch
	}{
		{core.Level1, 2, -1, model.EpochNone},
		{core.Level1, 4, 1, 700},
		{core.Level2, 2, 0, 650},
		{core.Level2, 4, -1, model.EpochNone},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("level%d-zones%d", tc.lvl, tc.zones)
		if tc.killZone >= 0 {
			name += fmt.Sprintf("-kill%d", tc.killZone)
		}
		t.Run(name, func(t *testing.T) {
			want := runInProcessFederated(t, cfg, tc.lvl, tc.zones)
			got := runNetworkedCluster(t, cfg, tc.lvl, tc.zones, tc.killZone, tc.killAt)
			if err := event.CheckWellFormed(got, true); err != nil {
				t.Fatalf("merged stream: %v", err)
			}
			if !slices.Equal(want, got) {
				diffCanonical(t, "cluster", want, got)
				t.Fatalf("streams differ only in order: %d events", len(got))
			}
		})
	}
}

// streamAgreement is the multiset overlap between two streams, as a
// fraction of the larger one.
func streamAgreement(a, b []event.Event) float64 {
	counts := make(map[event.Event]int, len(a))
	for _, e := range a {
		counts[e]++
	}
	common := 0
	for _, e := range b {
		if counts[e] > 0 {
			counts[e]--
			common++
		}
	}
	denom := len(a)
	if len(b) > denom {
		denom = len(b)
	}
	if denom == 0 {
		return 1
	}
	return float64(common) / float64(denom)
}

// TestFederatedMatchesSingleSubstrate compares in-process federated
// merges against the single-substrate interpretation of the same world.
//
// Byte-equivalence is not attainable here and the test does not ask for
// it: SPIRE's inference is a global probabilistic computation, so a zone
// substrate that only sees its own readers reaches different verdicts in
// genuinely ambiguous situations (several cases co-located on one shelf
// can "capture" each other's items differently depending on what else is
// in the graph). The differential fuzz target pins exact equivalence in
// the observability-complete regime where it is provable; here the
// merged stream must be well-formed and agree with the single-substrate
// stream on the overwhelming majority of events. The floors sit a few
// points under measured agreement (0.94/0.84 for level 1 at 2/4 zones,
// 0.85/0.67 for level 2) to catch regressions without pinning noise.
func TestFederatedMatchesSingleSubstrate(t *testing.T) {
	cfg := clusterSimConfig()
	floors := map[core.CompressionLevel]map[int]float64{
		core.Level1: {2: 0.90, 4: 0.78},
		core.Level2: {2: 0.78, 4: 0.60},
	}
	for _, lvl := range []core.CompressionLevel{core.Level1, core.Level2} {
		single := runSingleSubstrate(t, cfg, lvl)
		for _, nz := range []int{2, 4} {
			merged := runInProcessFederated(t, cfg, lvl, nz)
			if err := event.CheckWellFormed(merged, true); err != nil {
				t.Fatalf("level %d zones %d: merged stream: %v", lvl, nz, err)
			}
			got := streamAgreement(single, merged)
			t.Logf("level %d zones %d: single %d events, merged %d events, agreement %.3f",
				lvl, nz, len(single), len(merged), got)
			if floor := floors[lvl][nz]; got < floor {
				t.Errorf("level %d zones %d: agreement %.3f below floor %.2f", lvl, nz, got, floor)
			}
		}
	}
}
