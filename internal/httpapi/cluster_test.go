package httpapi

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spire/internal/trace"
)

func TestClusterStatusEndpoint(t *testing.T) {
	type fakeStatus struct {
		Zone int    `json:"zone"`
		Mood string `json:"mood"`
	}
	h := New(nil, nil).EnableClusterStatus(func() any {
		return fakeStatus{Zone: 3, Mood: "streaming"}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var got fakeStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Zone != 3 || got.Mood != "streaming" {
		t.Errorf("got %+v", got)
	}

	// The GET-only guard covers the cluster route too.
	post, err := http.Post(srv.URL+"/v1/cluster", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/cluster: %d, want 405", post.StatusCode)
	}
}

func TestHealthEndpoints(t *testing.T) {
	ready := errors.New("zones [1 3] have not said hello")
	h := New(nil, nil).EnableHealth(func() error { return ready })
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Liveness is unconditional.
	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// Readiness surfaces the probe error until it clears.
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "have not said hello") {
		t.Errorf("not-ready /readyz = %d %q", code, body)
	}
	ready = nil
	if code, body := get("/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("ready /readyz = %d %q", code, body)
	}
}

func TestHealthNilReadyFunc(t *testing.T) {
	srv := httptest.NewServer(New(nil, nil).EnableHealth(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz with nil probe = %d, want 200", resp.StatusCode)
	}
}

func TestConnTraceEndpoint(t *testing.T) {
	rec := trace.NewConnRecorder(4)
	rec.Record(trace.ConnEvent{Kind: trace.ConnConnect, Zone: 2, Detail: "handshake complete"})
	rec.Record(trace.ConnEvent{Kind: trace.ConnNearMiss, Epoch: 600, Detail: "zones [1]"})
	srv := httptest.NewServer(New(nil, nil).EnableConnTrace(rec))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/fedtrace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Events  []trace.ConnEvent `json:"events"`
		Dropped int64             `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 || got.Dropped != 0 {
		t.Fatalf("got %d events dropped %d, want 2/0", len(got.Events), got.Dropped)
	}
	if got.Events[0].Kind != trace.ConnConnect || got.Events[1].Kind != trace.ConnNearMiss {
		t.Errorf("event kinds %q, %q", got.Events[0].Kind, got.Events[1].Kind)
	}
	if got.Events[1].Epoch != 600 || got.Events[1].Detail != "zones [1]" {
		t.Errorf("near-miss event %+v", got.Events[1])
	}
}
