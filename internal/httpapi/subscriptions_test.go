package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"spire/internal/cep"
	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/query"
)

func newCEPServer(t *testing.T) (*httptest.Server, *cep.Engine) {
	t.Helper()
	e := cep.NewEngine(cep.Config{})
	h := New(query.NewStore(), nil).EnableCEP(e)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, e
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d", method, url, resp.StatusCode, wantStatus)
	}
	if resp.StatusCode == http.StatusNoContent || resp.StatusCode >= 400 {
		return nil
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return out
}

func TestSubscriptionLifecycle(t *testing.T) {
	srv, e := newCEPServer(t)

	created := doJSON(t, http.MethodPost, srv.URL+"/v1/subscriptions",
		map[string]string{"pattern": "SEQ(missing(), NOT start()) WITHIN 10"},
		http.StatusCreated)
	id := int(created["id"].(float64))
	if id < 1 {
		t.Fatalf("bad subscription id %d", id)
	}

	// Generate a theft-shaped absence for object 42 and a resight for 43.
	e.Epoch(5, []event.Event{
		event.NewMissing(42, 3, 5),
		event.NewMissing(43, 3, 5),
	})
	e.Epoch(9, []event.Event{event.NewStartLocation(43, 3, 9)})
	e.Epoch(40, nil)

	got := get(t, srv.URL+"/v1/subscriptions/"+itoa(id)+"/matches", http.StatusOK)
	ms := got["matches"].([]any)
	if len(ms) != 1 {
		t.Fatalf("want 1 match (42 vanished, 43 resighted), got %v", got)
	}
	m := ms[0].(map[string]any)
	if model.Tag(m["object"].(float64)) != 42 {
		t.Fatalf("match names object %v, want 42", m["object"])
	}
	if model.Epoch(m["at"].(float64)) != 15 {
		t.Fatalf("match completes at %v, want window end 15", m["at"])
	}

	resp, err := http.Get(srv.URL + "/v1/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	var stats []cep.SubStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats) != 1 || stats[0].ID != id {
		t.Fatalf("listing = %+v, want the one subscription", stats)
	}

	doJSON(t, http.MethodDelete, srv.URL+"/v1/subscriptions/"+itoa(id), nil, http.StatusNoContent)
	get(t, srv.URL+"/v1/subscriptions/"+itoa(id)+"/matches", http.StatusNotFound)
}

func TestSubscriptionErrors(t *testing.T) {
	srv, _ := newCEPServer(t)

	// Unparseable pattern → 422.
	doJSON(t, http.MethodPost, srv.URL+"/v1/subscriptions",
		map[string]string{"pattern": "SEQ(NOT start())"}, http.StatusUnprocessableEntity)
	// Missing pattern and malformed body → 400.
	doJSON(t, http.MethodPost, srv.URL+"/v1/subscriptions",
		map[string]string{}, http.StatusBadRequest)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/subscriptions", bytes.NewBufferString("{"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}
	// Bad ids.
	get(t, srv.URL+"/v1/subscriptions/0/matches", http.StatusBadRequest)
	get(t, srv.URL+"/v1/subscriptions/99/matches", http.StatusNotFound)
	// Non-GET elsewhere still 405: the subscriptions carve-out must not
	// open the store routes to writes.
	doJSON(t, http.MethodPost, srv.URL+"/v1/objects", map[string]string{}, http.StatusMethodNotAllowed)
	doJSON(t, http.MethodPut, srv.URL+"/v1/subscriptions/1", nil, http.StatusMethodNotAllowed)
}

// TestSubscriptionsWithoutEngine pins that a handler without EnableCEP
// keeps rejecting non-GET everywhere (no carve-out leak).
func TestSubscriptionsWithoutEngine(t *testing.T) {
	srv, _ := newServer(t)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/subscriptions", bytes.NewBufferString("{}"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/subscriptions without EnableCEP = %d, want 404", resp.StatusCode)
	}
}

func itoa(n int) string {
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
