package httpapi

import (
	"net/http"

	"spire/internal/trace"
)

// EnableClusterStatus registers GET /v1/cluster serving status() as
// JSON — federate.ClusterStatus on a coordinator, federate.WorkerStatus
// on a zone worker. The function is typed any so the handler does not
// depend on the federate package; it must be safe to call concurrently
// with the run it observes (both Status methods are).
func (h *Handler) EnableClusterStatus(status func() any) *Handler {
	h.mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, status())
	})
	return h
}

// EnableHealth registers the probe endpoints:
//
//	/healthz  liveness — 200 "ok" whenever the process serves HTTP
//	/readyz   readiness — 200 "ok" when ready() returns nil, else 503
//	          with the error text (coordinator: zones yet to say Hello;
//	          worker: link down and why)
//
// A nil ready makes /readyz unconditionally ready.
func (h *Handler) EnableHealth(ready func() error) *Handler {
	h.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	h.mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return h
}

// EnableConnTrace registers GET /debug/fedtrace serving the federate
// connection flight recorder: the retained connect/replay/stall events,
// oldest first, plus the overwrite count.
func (h *Handler) EnableConnTrace(rec *trace.ConnRecorder) *Handler {
	h.mux.HandleFunc("/debug/fedtrace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"events":  rec.Events(),
			"dropped": rec.Dropped(),
		})
	})
	return h
}
