package httpapi

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spire/internal/trace"
)

// newTraceServer serves a handler with the provenance routes over a
// recorder preloaded with a small chain: case 10 read directly at
// location 1, item 20 inferred into it and inheriting via Rule I.
func newTraceServer(t *testing.T) *httptest.Server {
	t.Helper()
	rec := trace.New(trace.Config{All: true})
	rec.BeginEpoch(5)
	rec.Record(trace.Record{Epoch: 5, Tag: 10, Mech: trace.MechDirectRead, Loc: 1, Reader: 2})
	rec.Record(trace.Record{Epoch: 5, Tag: 20, Mech: trace.MechEdgeInference, Other: 10, Prob: 0.8})
	rec.Record(trace.Record{Epoch: 5, Tag: 20, Mech: trace.MechRuleI, Loc: 1, Other: 10})
	rec.EndEpoch(trace.Span{Epoch: 5, Readings: 2})
	srv := httptest.NewServer(New(nil, nil).EnableTrace(rec))
	t.Cleanup(srv.Close)
	return srv
}

func TestExplainRoute(t *testing.T) {
	srv := newTraceServer(t)

	out := get(t, srv.URL+"/v1/explain/20", http.StatusOK)
	if out["tag"].(float64) != 20 {
		t.Errorf("tag = %v, want 20", out["tag"])
	}
	if out["container"].(float64) != 10 {
		t.Errorf("container = %v, want 10", out["container"])
	}
	chain, ok := out["chain"].([]any)
	if !ok || len(chain) != 3 {
		t.Fatalf("chain = %v, want 3 steps", out["chain"])
	}
	first := chain[0].(map[string]any)
	if first["mechanism"] != "conflict-rule-I" || first["citation"] == "" {
		t.Errorf("first step = %v, want Rule I with citation", first)
	}
	last := chain[2].(map[string]any)
	if last["mechanism"] != "direct-read" || last["tag"].(float64) != 10 {
		t.Errorf("last step = %v, want the case's direct read", last)
	}
}

func TestExplainRouteErrors(t *testing.T) {
	srv := newTraceServer(t)
	get(t, srv.URL+"/v1/explain/999", http.StatusNotFound)
	get(t, srv.URL+"/v1/explain/0", http.StatusBadRequest)
	get(t, srv.URL+"/v1/explain/puppy", http.StatusBadRequest)
	get(t, srv.URL+"/v1/explain/", http.StatusBadRequest)
	// The handler is GET-only like the rest of the API.
	resp, err := http.Post(srv.URL+"/v1/explain/20", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}
}

func TestDebugTraceRoute(t *testing.T) {
	srv := newTraceServer(t)
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("Content-Type = %q, want application/jsonl", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var spans, records int
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch line["type"] {
		case "span":
			spans++
		case "record":
			records++
		}
	}
	if spans != 1 || records != 3 {
		t.Errorf("dump has %d spans and %d records, want 1 and 3", spans, records)
	}
}
