// Package httpapi exposes a query.Store (and optional live pipeline
// statistics) over HTTP as JSON — the integration surface a monitoring
// dashboard or downstream warehouse application would consume.
//
// Routes (all GET; any other method gets 405 with an Allow header):
//
//	/v1/stats                         pipeline/stream statistics
//	/v1/objects                       all object tags
//	/v1/objects/{tag}                 history, containments, missing reports
//	/v1/objects/{tag}/at?t=<epoch>    location + container at time t
//	/v1/locations/{id}/at?t=<epoch>   occupancy at time t
//	/v1/missing?t=<epoch>             objects missing at time t
//	/metrics                          Prometheus text format (EnableMetrics)
//	/debug/pprof/...                  runtime profiles (EnablePprof)
//
// EnableCEP adds the complex-event subscription surface — the one
// exception to the GET-only rule (see subscriptions.go):
//
//	POST   /v1/subscriptions               register a pattern
//	GET    /v1/subscriptions               list subscriptions
//	GET    /v1/subscriptions/{id}          one subscription's stats
//	GET    /v1/subscriptions/{id}/matches  buffered matches
//	DELETE /v1/subscriptions/{id}          unsubscribe
//
// The handler serves reads only; feeding the store concurrently with
// serving requires external synchronization (the store is not
// goroutine-safe), so deployments typically snapshot or serialize through
// a single loop. /metrics is the exception: the telemetry registry is
// built from atomics and safe to scrape while the pipeline runs, which is
// why a metrics-only handler (nil store) is allowed — the store routes
// then answer 503.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"spire/internal/cep"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/telemetry"
)

// StatsFunc supplies live statistics for /v1/stats.
type StatsFunc func() any

// Handler serves a query.Store.
type Handler struct {
	store *query.Store
	stats StatsFunc
	cep   *cep.Engine
	mux   *http.ServeMux
}

// New builds a Handler over store; stats may be nil. A nil store is
// allowed for metrics-only deployments (cmd/spire's -metrics-addr):
// store-backed routes then return 503 until a store is attached.
func New(store *query.Store, stats StatsFunc) *Handler {
	h := &Handler{store: store, stats: stats, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/stats", h.withStore(h.handleStats))
	h.mux.HandleFunc("/v1/objects", h.withStore(h.handleObjects))
	h.mux.HandleFunc("/v1/objects/", h.withStore(h.handleObject))
	h.mux.HandleFunc("/v1/locations/", h.withStore(h.handleLocation))
	h.mux.HandleFunc("/v1/missing", h.withStore(h.handleMissing))
	return h
}

// EnableMetrics registers GET /metrics serving reg in the Prometheus text
// exposition format. Scraping is safe while the pipeline runs.
func (h *Handler) EnableMetrics(reg *telemetry.Registry) *Handler {
	h.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		_ = reg.WritePrometheus(w)
	})
	return h
}

// EnablePprof registers the net/http/pprof profile handlers under
// /debug/pprof/. Off by default: profiles expose internals and cost CPU,
// so binaries gate this behind an explicit flag.
func (h *Handler) EnablePprof() *Handler {
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return h
}

// ServeHTTP implements http.Handler. The store and metrics routes are
// read-only, so anything but GET is rejected up front — 405 with the
// Allow header RFC 9110 requires, never a misleading 404. The
// subscription routes (EnableCEP) are the one mutating surface and do
// their own per-method gating.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && !strings.HasPrefix(r.URL.Path, "/v1/subscriptions") {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	h.mux.ServeHTTP(w, r)
}

// withStore guards a store-backed route against a metrics-only handler.
func (h *Handler) withStore(f http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.store == nil {
			http.Error(w, "no query store attached", http.StatusServiceUnavailable)
			return
		}
		f(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func epochParam(r *http.Request) (model.Epoch, error) {
	s := r.URL.Query().Get("t")
	if s == "" {
		return 0, fmt.Errorf("missing query parameter t")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad epoch %q", s)
	}
	return model.Epoch(v), nil
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"events":  h.store.Events(),
		"objects": len(h.store.Objects()),
	}
	if h.stats != nil {
		resp["pipeline"] = h.stats()
	}
	writeJSON(w, resp)
}

func (h *Handler) handleObjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.store.Objects())
}

// stayJSON serializes validity intervals with "null" for open ends.
type stayJSON struct {
	Location model.LocationID `json:"location"`
	Vs       model.Epoch      `json:"vs"`
	Ve       *model.Epoch     `json:"ve"`
}

type containmentJSON struct {
	Container model.Tag    `json:"container"`
	Vs        model.Epoch  `json:"vs"`
	Ve        *model.Epoch `json:"ve"`
}

func veJSON(ve model.Epoch) *model.Epoch {
	if ve == model.InfiniteEpoch {
		return nil
	}
	return &ve
}

func (h *Handler) handleObject(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/objects/")
	if rest == "" {
		// GET /v1/objects/ — the trailing-slash spelling of the listing.
		h.handleObjects(w, r)
		return
	}
	parts := strings.Split(rest, "/")
	tagN, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil || tagN == 0 {
		http.Error(w, "bad object tag", http.StatusBadRequest)
		return
	}
	tag := model.Tag(tagN)
	if !h.store.Known(tag) {
		// Well-formed but unknown: a lookup miss, not a malformed request.
		http.Error(w, "no such object", http.StatusNotFound)
		return
	}
	switch {
	case len(parts) == 1:
		var stays []stayJSON
		for _, s := range h.store.History(tag) {
			stays = append(stays, stayJSON{Location: s.Location, Vs: s.Vs, Ve: veJSON(s.Ve)})
		}
		var conts []containmentJSON
		for _, c := range h.store.Containments(tag) {
			conts = append(conts, containmentJSON{Container: c.Container, Vs: c.Vs, Ve: veJSON(c.Ve)})
		}
		writeJSON(w, map[string]any{
			"tag":          tag,
			"history":      stays,
			"containments": conts,
			"missing":      h.store.MissingReports(tag),
			"path":         h.store.Path(tag),
		})
	case len(parts) == 2 && parts[1] == "at":
		t, err := epochParam(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := map[string]any{"tag": tag, "t": t}
		if loc, ok := h.store.LocationAt(tag, t); ok {
			resp["location"] = loc
		} else {
			resp["location"] = nil
		}
		if c, ok := h.store.ContainerAt(tag, t); ok {
			resp["container"] = c
			resp["topContainer"] = h.store.TopContainerAt(tag, t)
		} else {
			resp["container"] = nil
		}
		writeJSON(w, resp)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) handleLocation(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/locations/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "at" {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.ParseInt(parts[0], 10, 32)
	if err != nil || id < 0 {
		http.Error(w, "bad location id", http.StatusBadRequest)
		return
	}
	t, err := epochParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	objs := h.store.ObjectsAt(model.LocationID(id), t)
	writeJSON(w, map[string]any{"location": id, "t": t, "objects": objs, "count": len(objs)})
}

func (h *Handler) handleMissing(w http.ResponseWriter, r *http.Request) {
	t, err := epochParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	objs := h.store.MissingAt(t)
	writeJSON(w, map[string]any{"t": t, "missing": objs, "count": len(objs)})
}
