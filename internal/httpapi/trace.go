package httpapi

import (
	"net/http"
	"strconv"
	"strings"

	"spire/internal/model"
	"spire/internal/trace"
)

// EnableTrace registers the decision-provenance routes over rec:
//
//	/v1/explain/{tag}   the causal chain behind the tag's current verdicts
//	/debug/trace        the flight recorder + traced-tag records as JSONL
//
// The recorder is internally synchronized, so unlike the store routes
// these are safe to serve while the pipeline records.
func (h *Handler) EnableTrace(rec *trace.Recorder) *Handler {
	h.mux.HandleFunc("/v1/explain/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/explain/")
		tagN, err := strconv.ParseUint(rest, 10, 64)
		if err != nil || tagN == 0 {
			http.Error(w, "bad object tag", http.StatusBadRequest)
			return
		}
		ex := rec.Explain(model.Tag(tagN))
		if ex == nil {
			http.Error(w, "no provenance recorded for object", http.StatusNotFound)
			return
		}
		writeJSON(w, ex)
	})
	h.mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = rec.DumpJSONL(w)
	})
	return h
}
