package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/query"
)

func newServer(t *testing.T) (*httptest.Server, *query.Store) {
	t.Helper()
	store := query.NewStore()
	evs := []event.Event{
		event.NewStartContainment(4, 2, 1),
		event.NewStartLocation(2, 0, 1),
		event.NewStartLocation(4, 0, 1),
		event.NewEndLocation(4, 0, 1, 10),
		event.NewStartLocation(4, 1, 10),
		event.NewEndLocation(4, 1, 10, 20),
		event.NewMissing(4, 1, 20),
	}
	if err := store.Feed(evs...); err != nil {
		t.Fatal(err)
	}
	h := New(store, func() any { return map[string]int{"epochs": 20} })
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, store
}

func get(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func TestStats(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/stats", http.StatusOK)
	if out["events"].(float64) != 7 {
		t.Errorf("events = %v, want 7", out["events"])
	}
	if out["objects"].(float64) != 2 {
		t.Errorf("objects = %v, want 2", out["objects"])
	}
	if out["pipeline"].(map[string]any)["epochs"].(float64) != 20 {
		t.Errorf("pipeline stats missing: %v", out)
	}
}

func TestObjectsList(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/objects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tags []model.Tag
	if err := json.NewDecoder(resp.Body).Decode(&tags); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != 2 || tags[1] != 4 {
		t.Errorf("objects = %v, want [2 4]", tags)
	}
}

func TestObjectDetail(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/objects/4", http.StatusOK)
	history := out["history"].([]any)
	if len(history) != 2 {
		t.Fatalf("history = %v, want 2 stays", history)
	}
	first := history[0].(map[string]any)
	if first["ve"].(float64) != 10 {
		t.Errorf("first stay ve = %v, want 10", first["ve"])
	}
	conts := out["containments"].([]any)
	if len(conts) != 1 {
		t.Fatalf("containments = %v", conts)
	}
	if conts[0].(map[string]any)["ve"] != nil {
		t.Error("open containment must serialize ve=null")
	}
	if len(out["missing"].([]any)) != 1 {
		t.Errorf("missing = %v, want 1 report", out["missing"])
	}
	if p := out["path"].([]any); len(p) != 2 {
		t.Errorf("path = %v, want 2 locations", p)
	}
}

func TestObjectAt(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/objects/4/at?t=5", http.StatusOK)
	if out["location"].(float64) != 0 {
		t.Errorf("location = %v, want 0", out["location"])
	}
	if out["container"].(float64) != 2 {
		t.Errorf("container = %v, want 2", out["container"])
	}
	if out["topContainer"].(float64) != 2 {
		t.Errorf("topContainer = %v", out["topContainer"])
	}
	out = get(t, srv.URL+"/v1/objects/4/at?t=25", http.StatusOK)
	if out["location"] != nil {
		t.Errorf("missing object location = %v, want null", out["location"])
	}
}

func TestLocationAt(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/locations/0/at?t=5", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Errorf("count = %v, want 2", out["count"])
	}
}

func TestMissingAt(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/missing?t=25", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Errorf("count = %v, want 1", out["count"])
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newServer(t)
	get(t, srv.URL+"/v1/objects/zzz", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/4/at", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/4/at?t=-3", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/4/bogus/extra", http.StatusNotFound)
	get(t, srv.URL+"/v1/locations/0", http.StatusNotFound)
	get(t, srv.URL+"/v1/locations/xx/at?t=1", http.StatusBadRequest)
	get(t, srv.URL+"/v1/missing", http.StatusBadRequest)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/objects", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

// TestObjectsListTrailingSlash: /v1/objects/ is the same listing as
// /v1/objects, not a malformed object lookup.
func TestObjectsListTrailingSlash(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/objects/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/objects/ = %d, want 200", resp.StatusCode)
	}
	var tags []model.Tag
	if err := json.NewDecoder(resp.Body).Decode(&tags); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != 2 || tags[1] != 4 {
		t.Errorf("objects = %v, want [2 4]", tags)
	}
}

// TestObjectUnknownTag: a well-formed tag the store has never seen is a
// lookup miss (404), distinct from a malformed tag (400).
func TestObjectUnknownTag(t *testing.T) {
	srv, _ := newServer(t)
	get(t, srv.URL+"/v1/objects/999", http.StatusNotFound)
	get(t, srv.URL+"/v1/objects/999/at?t=5", http.StatusNotFound)
	// Malformed spellings keep returning 400.
	get(t, srv.URL+"/v1/objects/zzz", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/0", http.StatusBadRequest)
	// Known objects are unaffected.
	get(t, srv.URL+"/v1/objects/4", http.StatusOK)
}
