package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/telemetry"
)

func newServer(t *testing.T) (*httptest.Server, *query.Store) {
	t.Helper()
	store := query.NewStore()
	evs := []event.Event{
		event.NewStartContainment(4, 2, 1),
		event.NewStartLocation(2, 0, 1),
		event.NewStartLocation(4, 0, 1),
		event.NewEndLocation(4, 0, 1, 10),
		event.NewStartLocation(4, 1, 10),
		event.NewEndLocation(4, 1, 10, 20),
		event.NewMissing(4, 1, 20),
	}
	if err := store.Feed(evs...); err != nil {
		t.Fatal(err)
	}
	h := New(store, func() any { return map[string]int{"epochs": 20} })
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, store
}

func get(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func TestStats(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/stats", http.StatusOK)
	if out["events"].(float64) != 7 {
		t.Errorf("events = %v, want 7", out["events"])
	}
	if out["objects"].(float64) != 2 {
		t.Errorf("objects = %v, want 2", out["objects"])
	}
	if out["pipeline"].(map[string]any)["epochs"].(float64) != 20 {
		t.Errorf("pipeline stats missing: %v", out)
	}
}

func TestObjectsList(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/objects")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tags []model.Tag
	if err := json.NewDecoder(resp.Body).Decode(&tags); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != 2 || tags[1] != 4 {
		t.Errorf("objects = %v, want [2 4]", tags)
	}
}

func TestObjectDetail(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/objects/4", http.StatusOK)
	history := out["history"].([]any)
	if len(history) != 2 {
		t.Fatalf("history = %v, want 2 stays", history)
	}
	first := history[0].(map[string]any)
	if first["ve"].(float64) != 10 {
		t.Errorf("first stay ve = %v, want 10", first["ve"])
	}
	conts := out["containments"].([]any)
	if len(conts) != 1 {
		t.Fatalf("containments = %v", conts)
	}
	if conts[0].(map[string]any)["ve"] != nil {
		t.Error("open containment must serialize ve=null")
	}
	if len(out["missing"].([]any)) != 1 {
		t.Errorf("missing = %v, want 1 report", out["missing"])
	}
	if p := out["path"].([]any); len(p) != 2 {
		t.Errorf("path = %v, want 2 locations", p)
	}
}

func TestObjectAt(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/objects/4/at?t=5", http.StatusOK)
	if out["location"].(float64) != 0 {
		t.Errorf("location = %v, want 0", out["location"])
	}
	if out["container"].(float64) != 2 {
		t.Errorf("container = %v, want 2", out["container"])
	}
	if out["topContainer"].(float64) != 2 {
		t.Errorf("topContainer = %v", out["topContainer"])
	}
	out = get(t, srv.URL+"/v1/objects/4/at?t=25", http.StatusOK)
	if out["location"] != nil {
		t.Errorf("missing object location = %v, want null", out["location"])
	}
}

func TestLocationAt(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/locations/0/at?t=5", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Errorf("count = %v, want 2", out["count"])
	}
}

func TestMissingAt(t *testing.T) {
	srv, _ := newServer(t)
	out := get(t, srv.URL+"/v1/missing?t=25", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Errorf("count = %v, want 1", out["count"])
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newServer(t)
	get(t, srv.URL+"/v1/objects/zzz", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/4/at", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/4/at?t=-3", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/4/bogus/extra", http.StatusNotFound)
	get(t, srv.URL+"/v1/locations/0", http.StatusNotFound)
	get(t, srv.URL+"/v1/locations/xx/at?t=1", http.StatusBadRequest)
	get(t, srv.URL+"/v1/missing", http.StatusBadRequest)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/objects", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

// TestObjectsListTrailingSlash: /v1/objects/ is the same listing as
// /v1/objects, not a malformed object lookup.
func TestObjectsListTrailingSlash(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/objects/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/objects/ = %d, want 200", resp.StatusCode)
	}
	var tags []model.Tag
	if err := json.NewDecoder(resp.Body).Decode(&tags); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != 2 || tags[1] != 4 {
		t.Errorf("objects = %v, want [2 4]", tags)
	}
}

// TestObjectUnknownTag: a well-formed tag the store has never seen is a
// lookup miss (404), distinct from a malformed tag (400).
func TestObjectUnknownTag(t *testing.T) {
	srv, _ := newServer(t)
	get(t, srv.URL+"/v1/objects/999", http.StatusNotFound)
	get(t, srv.URL+"/v1/objects/999/at?t=5", http.StatusNotFound)
	// Malformed spellings keep returning 400.
	get(t, srv.URL+"/v1/objects/zzz", http.StatusBadRequest)
	get(t, srv.URL+"/v1/objects/0", http.StatusBadRequest)
	// Known objects are unaffected.
	get(t, srv.URL+"/v1/objects/4", http.StatusOK)
}

// TestMethodNotAllowed: the API is read-only, so every non-GET method on
// every route gets 405 with an Allow header — never a misleading 404.
func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newServer(t)
	paths := []string{
		"/v1/stats", "/v1/objects", "/v1/objects/4",
		"/v1/objects/4/at?t=5", "/v1/locations/0/at?t=5",
		"/v1/missing?t=25", "/metrics", "/no/such/route",
	}
	methods := []string{
		http.MethodPost, http.MethodPut, http.MethodDelete,
		http.MethodPatch, http.MethodHead, "BREW",
	}
	for _, path := range paths {
		for _, method := range methods {
			t.Run(method+" "+path, func(t *testing.T) {
				req, err := http.NewRequest(method, srv.URL+path, nil)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusMethodNotAllowed {
					t.Errorf("%s %s = %d, want 405", method, path, resp.StatusCode)
				}
				if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
					t.Errorf("Allow = %q, want %q", allow, http.MethodGet)
				}
			})
		}
	}
}

// TestJSONContentType: every JSON response declares its charset.
func TestJSONContentType(t *testing.T) {
	srv, _ := newServer(t)
	for _, path := range []string{
		"/v1/stats", "/v1/objects", "/v1/objects/4",
		"/v1/objects/4/at?t=5", "/v1/locations/0/at?t=5", "/v1/missing?t=25",
	} {
		t.Run(path, func(t *testing.T) {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
			}
			const want = "application/json; charset=utf-8"
			if ct := resp.Header.Get("Content-Type"); ct != want {
				t.Errorf("Content-Type = %q, want %q", ct, want)
			}
		})
	}
}

// TestMetricsEndpoint: GET /metrics serves the registry in Prometheus text
// format with the exposition content type, and covers the stage-latency
// histograms and graph gauges the monitoring story is built on.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram("spire_epoch_stage_seconds", "Stage latency.",
		telemetry.DefLatencyBuckets, "stage", "inference").Observe(0.002)
	reg.Gauge("spire_graph_nodes", "Graph node count.").Set(42)
	reg.Counter("spire_epochs_total", "Epochs processed.").Add(7)

	h := New(query.NewStore(), nil).EnableMetrics(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE spire_epoch_stage_seconds histogram",
		`spire_epoch_stage_seconds_bucket{stage="inference",le="+Inf"} 1`,
		`spire_epoch_stage_seconds_count{stage="inference"} 1`,
		"# TYPE spire_graph_nodes gauge",
		"spire_graph_nodes 42",
		"# TYPE spire_epochs_total counter",
		"spire_epochs_total 7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestMetricsOnlyHandler: a nil store is a supported deployment shape for
// serving metrics while the pipeline runs — store routes answer 503, not
// a panic, and /metrics works.
func TestMetricsOnlyHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("spire_epochs_total", "Epochs processed.").Inc()
	h := New(nil, nil).EnableMetrics(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{
		"/v1/objects", "/v1/objects/4", "/v1/objects/4/at?t=5",
		"/v1/locations/0/at?t=5", "/v1/missing?t=25",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d, want 503", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics = %d, want 200", resp.StatusCode)
	}
}

// TestPprofGated: the profile handlers exist only after EnablePprof.
func TestPprofGated(t *testing.T) {
	off := httptest.NewServer(New(query.NewStore(), nil))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(New(query.NewStore(), nil).EnablePprof())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", resp.StatusCode)
	}
}
