package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"spire/internal/cep"
)

// EnableCEP registers the complex-event subscription routes over engine.
// Unlike the store routes, the engine is internally locked, so these are
// safe to serve while the pipeline dispatches events into it:
//
//	POST   /v1/subscriptions               {"pattern": "SEQ(...) WITHIN n"}
//	GET    /v1/subscriptions               list subscriptions with stats
//	GET    /v1/subscriptions/{id}/matches  drained view of the match buffer
//	DELETE /v1/subscriptions/{id}          unsubscribe
//
// POST returns 201 with the subscription id; pattern errors are 422 so
// clients can distinguish a bad pattern from a malformed request.
func (h *Handler) EnableCEP(engine *cep.Engine) *Handler {
	h.cep = engine
	h.mux.HandleFunc("/v1/subscriptions", h.handleSubscriptions)
	h.mux.HandleFunc("/v1/subscriptions/", h.handleSubscription)
	return h
}

// subscribeRequest is the POST /v1/subscriptions body.
type subscribeRequest struct {
	Pattern string `json:"pattern"`
}

func (h *Handler) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, h.cep.Subscriptions())
	case http.MethodPost:
		var req subscribeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Pattern == "" {
			http.Error(w, `missing "pattern"`, http.StatusBadRequest)
			return
		}
		id, err := h.cep.Subscribe(req.Pattern)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, map[string]any{"id": id, "pattern": req.Pattern})
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (h *Handler) handleSubscription(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/subscriptions/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil || id < 1 {
		http.Error(w, "bad subscription id", http.StatusBadRequest)
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodDelete:
		h.cep.Unsubscribe(id)
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 2 && parts[1] == "matches" && r.Method == http.MethodGet:
		ms, st, ok := h.cep.Matches(id)
		if !ok {
			http.Error(w, "no such subscription", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"id":      id,
			"pattern": st.Pattern,
			"matches": ms,
			"total":   st.Matches,
			"dropped": st.Dropped,
			"evicted": st.Evicted,
		})
	case len(parts) == 1 && r.Method == http.MethodGet:
		_, st, ok := h.cep.Matches(id)
		if !ok {
			http.Error(w, "no such subscription", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
