// Package event defines the compressed output event stream of SPIRE.
//
// The output module (paper Section V) represents interpreted stream data
// using five messages, each carrying a validity interval [Vs, Ve]:
//
//	StartLocation(object, location, Vs, Ve=∞)
//	EndLocation(object, location, Vs, Ve)
//	StartContainment(object, container, Vs, Ve=∞)
//	EndContainment(object, container, Vs, Ve)
//	Missing(object, locationMissingFrom, Vs, Ve=Vs)
//
// Start/end messages occur in pairs bracketing the period an object is at a
// location (or inside a container); Missing messages are singletons emitted
// right after the EndLocation for the object's previous location. A stream
// is well-formed when every start has a matching end and missing messages
// appear outside any open location pair; package event provides a checker
// for that property (used heavily in tests) plus a byte-accurate binary
// codec so compression ratios can be measured against the raw input.
package event

import (
	"fmt"

	"spire/internal/model"
)

// Kind discriminates the five output messages.
type Kind uint8

// The five message kinds of the compressed stream format.
const (
	StartLocation Kind = iota + 1
	EndLocation
	StartContainment
	EndContainment
	Missing
	numKinds
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case StartLocation:
		return "StartLocation"
	case EndLocation:
		return "EndLocation"
	case StartContainment:
		return "StartContainment"
	case EndContainment:
		return "EndContainment"
	case Missing:
		return "Missing"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the five defined kinds.
func (k Kind) Valid() bool { return k >= StartLocation && k < numKinds }

// Location reports whether the kind concerns a location (including
// Missing, whose payload is the location the object vanished from).
func (k Kind) Location() bool {
	return k == StartLocation || k == EndLocation || k == Missing
}

// Containment reports whether the kind concerns containment.
func (k Kind) Containment() bool {
	return k == StartContainment || k == EndContainment
}

// Event is one message of the compressed output stream.
type Event struct {
	Kind   Kind
	Object model.Tag
	// Location is set for StartLocation/EndLocation/Missing.
	Location model.LocationID
	// Container is set for StartContainment/EndContainment.
	Container model.Tag
	// Vs and Ve bound the validity interval. Start messages carry
	// Ve = model.InfiniteEpoch; Missing messages carry Ve = Vs.
	Vs, Ve model.Epoch
}

// String renders the event in the paper's message notation.
func (e Event) String() string {
	ve := fmt.Sprintf("%d", e.Ve)
	if e.Ve == model.InfiniteEpoch {
		ve = "inf"
	}
	switch {
	case e.Kind.Location():
		return fmt.Sprintf("%s(%d, %v, %d, %s)", e.Kind, e.Object, e.Location, e.Vs, ve)
	case e.Kind.Containment():
		return fmt.Sprintf("%s(%d, %d, %d, %s)", e.Kind, e.Object, e.Container, e.Vs, ve)
	default:
		return fmt.Sprintf("%s(%d, %d, %s)", e.Kind, e.Vs, e.Vs, ve)
	}
}

// NewStartLocation builds a StartLocation message opening at vs.
func NewStartLocation(obj model.Tag, loc model.LocationID, vs model.Epoch) Event {
	return Event{Kind: StartLocation, Object: obj, Location: loc, Vs: vs, Ve: model.InfiniteEpoch}
}

// NewEndLocation builds the EndLocation closing a pair opened at vs.
func NewEndLocation(obj model.Tag, loc model.LocationID, vs, ve model.Epoch) Event {
	return Event{Kind: EndLocation, Object: obj, Location: loc, Vs: vs, Ve: ve}
}

// NewStartContainment builds a StartContainment message opening at vs.
func NewStartContainment(obj, container model.Tag, vs model.Epoch) Event {
	return Event{Kind: StartContainment, Object: obj, Container: container, Vs: vs, Ve: model.InfiniteEpoch}
}

// NewEndContainment builds the EndContainment closing a pair opened at vs.
func NewEndContainment(obj, container model.Tag, vs, ve model.Epoch) Event {
	return Event{Kind: EndContainment, Object: obj, Container: container, Vs: vs, Ve: ve}
}

// NewMissing builds a singleton Missing message at epoch t for an object
// last seen at loc.
func NewMissing(obj model.Tag, loc model.LocationID, t model.Epoch) Event {
	return Event{Kind: Missing, Object: obj, Location: loc, Vs: t, Ve: t}
}

// Validate checks the internal consistency of a single event.
func (e Event) Validate() error {
	if !e.Kind.Valid() {
		return fmt.Errorf("event: invalid kind %d", e.Kind)
	}
	if e.Object == model.NoTag {
		return fmt.Errorf("event: %s has no object", e.Kind)
	}
	switch e.Kind {
	case StartLocation, StartContainment:
		if e.Ve != model.InfiniteEpoch {
			return fmt.Errorf("event: %s must carry Ve=inf, has %d", e.Kind, e.Ve)
		}
	case Missing:
		if e.Ve != e.Vs {
			return fmt.Errorf("event: Missing must carry Ve=Vs, has [%d,%d]", e.Vs, e.Ve)
		}
	default:
		if e.Ve < e.Vs {
			return fmt.Errorf("event: %s interval inverted [%d,%d]", e.Kind, e.Vs, e.Ve)
		}
	}
	if e.Kind.Containment() {
		if e.Container == model.NoTag {
			return fmt.Errorf("event: %s has no container", e.Kind)
		}
		if e.Container == e.Object {
			return fmt.Errorf("event: %s object contains itself", e.Kind)
		}
	}
	return nil
}
