package event

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"spire/internal/model"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		StartLocation:    "StartLocation",
		EndLocation:      "EndLocation",
		StartContainment: "StartContainment",
		EndContainment:   "EndContainment",
		Missing:          "Missing",
		Kind(42):         "Kind(42)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, s)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !StartLocation.Location() || !Missing.Location() || StartContainment.Location() {
		t.Error("Location() predicate wrong")
	}
	if !StartContainment.Containment() || !EndContainment.Containment() || EndLocation.Containment() {
		t.Error("Containment() predicate wrong")
	}
	if Kind(0).Valid() || Kind(6).Valid() || !Missing.Valid() {
		t.Error("Valid() predicate wrong")
	}
}

func TestConstructorsValidate(t *testing.T) {
	events := []Event{
		NewStartLocation(1, 2, 10),
		NewEndLocation(1, 2, 10, 20),
		NewStartContainment(1, 9, 10),
		NewEndContainment(1, 9, 10, 20),
		NewMissing(1, 2, 30),
	}
	for _, e := range events {
		if err := e.Validate(); err != nil {
			t.Errorf("%v.Validate() = %v", e, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Event{
		{Kind: Kind(0), Object: 1},
		{Kind: StartLocation, Object: model.NoTag, Ve: model.InfiniteEpoch},
		{Kind: StartLocation, Object: 1, Vs: 5, Ve: 9}, // start must have Ve=inf
		{Kind: EndLocation, Object: 1, Vs: 9, Ve: 5},   // inverted interval
		{Kind: Missing, Object: 1, Vs: 5, Ve: 6},       // missing must have Ve=Vs
		{Kind: StartContainment, Object: 1, Container: model.NoTag, Ve: model.InfiniteEpoch},
		{Kind: StartContainment, Object: 1, Container: 1, Ve: model.InfiniteEpoch}, // self
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", e)
		}
	}
}

func TestEventString(t *testing.T) {
	s := NewStartLocation(5, 3, 10).String()
	if !strings.Contains(s, "StartLocation") || !strings.Contains(s, "inf") {
		t.Errorf("String() = %q", s)
	}
	c := NewEndContainment(5, 6, 1, 2).String()
	if !strings.Contains(c, "EndContainment(5, 6, 1, 2)") {
		t.Errorf("String() = %q", c)
	}
}

func allKindsSample() []Event {
	return []Event{
		NewStartLocation(7, 1, 0),
		NewStartContainment(7, 8, 0),
		NewEndLocation(7, 1, 0, 5),
		NewStartLocation(7, 2, 5),
		NewEndLocation(7, 2, 5, 9),
		NewMissing(7, 2, 9),
		NewEndContainment(7, 8, 0, 12),
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := allKindsSample()
	for _, e := range want {
		if err := w.Write(e); err != nil {
			t.Fatalf("Write(%v): %v", e, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() != StreamSize(want) {
		t.Errorf("Writer.Bytes = %d, StreamSize = %d", w.Bytes(), StreamSize(want))
	}
	if w.Count() != int64(len(want)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(want))
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWireSizes(t *testing.T) {
	cases := []struct {
		e    Event
		want int
	}{
		{NewStartLocation(1, 1, 0), SizeStartLocation},
		{NewEndLocation(1, 1, 0, 1), SizeEndLocation},
		{NewStartContainment(1, 2, 0), SizeStartContainment},
		{NewEndContainment(1, 2, 0, 1), SizeEndContainment},
		{NewMissing(1, 1, 0), SizeMissing},
	}
	for _, c := range cases {
		b, err := Append(nil, c.e)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != c.want || WireSize(c.e) != c.want {
			t.Errorf("%s: encoded %d bytes, WireSize %d, want %d", c.e.Kind, len(b), WireSize(c.e), c.want)
		}
	}
	if WireSize(Event{Kind: Kind(99)}) != 0 {
		t.Error("WireSize of unknown kind must be 0")
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	if _, err := Append(nil, Event{Kind: StartLocation}); err == nil {
		t.Error("Append must validate")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) must fail")
	}
	if _, _, err := Decode([]byte{99, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Error("Decode of unknown kind must fail")
	}
	b, err := Append(nil, NewEndLocation(1, 1, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("Decode of truncated record must fail")
	}
}

func TestReaderErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	b, _ := Append(nil, NewMissing(1, 1, 5))
	r = NewReader(bytes.NewReader(b[:len(b)-2]))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated stream: got %v, want corruption", err)
	}
	r = NewReader(bytes.NewReader([]byte{200}))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("unknown kind: got %v, want corruption", err)
	}
}

func TestCheckWellFormedAccepts(t *testing.T) {
	if err := CheckWellFormed(allKindsSample(), true); err != nil {
		t.Errorf("well-formed sample rejected: %v", err)
	}
	// A containment pair may span multiple location pairs and enclose a
	// Missing event — the nesting flexibility the paper calls out.
	if err := CheckWellFormed(nil, true); err != nil {
		t.Errorf("empty stream must be well-formed: %v", err)
	}
}

func TestCheckWellFormedRejects(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		closed bool
	}{
		{"end without start", []Event{NewEndLocation(1, 1, 0, 5)}, false},
		{"double start", []Event{NewStartLocation(1, 1, 0), NewStartLocation(1, 2, 3)}, false},
		{"mismatched end location", []Event{NewStartLocation(1, 1, 0), NewEndLocation(1, 2, 0, 5)}, false},
		{"mismatched end vs", []Event{NewStartLocation(1, 1, 0), NewEndLocation(1, 1, 1, 5)}, false},
		{"containment end without start", []Event{NewEndContainment(1, 2, 0, 5)}, false},
		{"double containment start", []Event{NewStartContainment(1, 2, 0), NewStartContainment(1, 3, 1)}, false},
		{"mismatched containment end", []Event{NewStartContainment(1, 2, 0), NewEndContainment(1, 3, 0, 5)}, false},
		{"missing inside open location", []Event{NewStartLocation(1, 1, 0), NewMissing(1, 1, 3)}, false},
		{"time goes backwards", []Event{NewStartLocation(1, 1, 5), NewEndLocation(1, 1, 5, 7), NewStartLocation(1, 2, 3)}, false},
		{"unclosed location at end", []Event{NewStartLocation(1, 1, 0)}, true},
		{"unclosed containment at end", []Event{NewStartContainment(1, 2, 0)}, true},
		{"invalid event", []Event{{Kind: StartLocation, Object: 1, Vs: 0, Ve: 3}}, false},
	}
	for _, c := range cases {
		if err := CheckWellFormed(c.events, c.closed); err == nil {
			t.Errorf("%s: CheckWellFormed should fail", c.name)
		}
	}
}

func TestCheckWellFormedOpenTailAllowed(t *testing.T) {
	events := []Event{NewStartLocation(1, 1, 0), NewStartContainment(1, 2, 0)}
	if err := CheckWellFormed(events, false); err != nil {
		t.Errorf("open tail with closed=false must pass: %v", err)
	}
}

func TestSplitStreams(t *testing.T) {
	loc, cont := SplitStreams(allKindsSample())
	if len(loc) != 5 || len(cont) != 2 {
		t.Fatalf("split = %d loc, %d cont; want 5, 2", len(loc), len(cont))
	}
	for _, e := range loc {
		if e.Kind.Containment() {
			t.Errorf("containment event %v in location stream", e)
		}
	}
	for _, e := range cont {
		if !e.Kind.Containment() {
			t.Errorf("location event %v in containment stream", e)
		}
	}
	// Each substream remains well-formed on its own.
	if err := CheckWellFormed(loc, false); err != nil {
		t.Errorf("location substream: %v", err)
	}
	if err := CheckWellFormed(cont, false); err != nil {
		t.Errorf("containment substream: %v", err)
	}
}

// Property: any valid event survives an encode/decode round trip.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(kind uint8, obj, container uint64, loc int32, vs uint32, dur uint16) bool {
		k := Kind(kind%5) + StartLocation
		e := Event{
			Kind:     k,
			Object:   model.Tag(obj | 1), // non-zero
			Vs:       model.Epoch(vs),
			Location: model.LocationID(loc),
		}
		switch k {
		case StartLocation, StartContainment:
			e.Ve = model.InfiniteEpoch
		case Missing:
			e.Ve = e.Vs
		default:
			e.Ve = e.Vs + model.Epoch(dur)
		}
		if k.Containment() {
			e.Location = 0
			e.Container = model.Tag(container | 1)
			if e.Container == e.Object {
				e.Container = e.Object + 1
			}
		} else {
			e.Container = model.NoTag
		}
		b, err := Append(nil, e)
		if err != nil {
			return false
		}
		got, n, err := Decode(b)
		return err == nil && n == len(b) && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
