package event_test

import (
	"fmt"

	"spire/internal/event"
)

func ExampleCheckWellFormed() {
	stream := []event.Event{
		event.NewStartContainment(4, 2, 1), // item 4 into case 2
		event.NewStartLocation(4, 0, 1),
		event.NewEndLocation(4, 0, 1, 9), // moves at t=9...
		event.NewStartLocation(4, 1, 9),
		event.NewEndLocation(4, 1, 9, 20), // ...vanishes at t=20
		event.NewMissing(4, 1, 20),
		event.NewEndContainment(4, 2, 1, 30),
	}
	fmt.Println("well-formed:", event.CheckWellFormed(stream, true) == nil)

	bad := []event.Event{
		event.NewStartLocation(4, 0, 1),
		event.NewMissing(4, 0, 5), // inside an open location pair
	}
	fmt.Println("bad stream:", event.CheckWellFormed(bad, false) != nil)
	// Output:
	// well-formed: true
	// bad stream: true
}

func ExampleSplitStreams() {
	stream := []event.Event{
		event.NewStartContainment(4, 2, 1),
		event.NewStartLocation(2, 0, 1),
		event.NewEndContainment(4, 2, 1, 7),
	}
	loc, cont := event.SplitStreams(stream)
	fmt.Println("location events:", len(loc))
	fmt.Println("containment events:", len(cont))
	// Output:
	// location events: 1
	// containment events: 2
}
