package event

import (
	"fmt"

	"spire/internal/model"
)

// CheckWellFormed verifies the paper's well-formedness property over a
// complete stream: for every object, start-location (start-containment)
// messages are matched by end messages with the same payload and interval
// start, at most one location pair and one containment pair is open at any
// point, and Missing messages appear outside any open location pair.
//
// The stream must be in emission order. A stream may end with pairs still
// open (the run was cut off); pass closed=true to additionally require
// that everything has been closed.
func CheckWellFormed(events []Event, closed bool) error {
	type open struct {
		loc       model.LocationID
		container model.Tag
		vs        model.Epoch
	}
	openLoc := make(map[model.Tag]open)
	openCont := make(map[model.Tag]open)
	var last model.Epoch = model.EpochNone

	for i, e := range events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %v", i, err)
		}
		// End messages are emitted when the interval closes, so their
		// emission time is Ve; start and missing messages are emitted at Vs.
		emitted := e.Vs
		if e.Kind == EndLocation || e.Kind == EndContainment {
			emitted = e.Ve
		}
		if emitted < last {
			return fmt.Errorf("event %d: %v emitted at %d before previous event time %d", i, e, emitted, last)
		}
		last = emitted
		switch e.Kind {
		case StartLocation:
			if o, ok := openLoc[e.Object]; ok {
				return fmt.Errorf("event %d: %v while location pair (%v since %d) still open", i, e, o.loc, o.vs)
			}
			openLoc[e.Object] = open{loc: e.Location, vs: e.Vs}
		case EndLocation:
			o, ok := openLoc[e.Object]
			if !ok {
				return fmt.Errorf("event %d: %v without matching start", i, e)
			}
			if o.loc != e.Location || o.vs != e.Vs {
				return fmt.Errorf("event %d: %v does not match open pair (%v since %d)", i, e, o.loc, o.vs)
			}
			delete(openLoc, e.Object)
		case StartContainment:
			if o, ok := openCont[e.Object]; ok {
				return fmt.Errorf("event %d: %v while containment pair (%d since %d) still open", i, e, o.container, o.vs)
			}
			openCont[e.Object] = open{container: e.Container, vs: e.Vs}
		case EndContainment:
			o, ok := openCont[e.Object]
			if !ok {
				return fmt.Errorf("event %d: %v without matching start", i, e)
			}
			if o.container != e.Container || o.vs != e.Vs {
				return fmt.Errorf("event %d: %v does not match open pair (%d since %d)", i, e, o.container, o.vs)
			}
			delete(openCont, e.Object)
		case Missing:
			if o, ok := openLoc[e.Object]; ok {
				return fmt.Errorf("event %d: %v inside open location pair (%v since %d)", i, e, o.loc, o.vs)
			}
		}
	}
	if closed {
		for obj, o := range openLoc {
			return fmt.Errorf("stream ended with open location pair for %d (%v since %d)", obj, o.loc, o.vs)
		}
		for obj, o := range openCont {
			return fmt.Errorf("stream ended with open containment pair for %d (%d since %d)", obj, o.container, o.vs)
		}
	}
	return nil
}

// SplitStreams separates a mixed stream into its independent location and
// containment sub-streams — the property (i) of range compression the paper
// highlights: either stream can be suppressed without affecting the other.
func SplitStreams(events []Event) (location, containment []Event) {
	for _, e := range events {
		if e.Kind.Containment() {
			containment = append(containment, e)
		} else {
			location = append(location, e)
		}
	}
	return location, containment
}
