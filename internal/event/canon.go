package event

import (
	"cmp"
	"slices"
)

// canonRank orders the kinds within one emission instant: closes of older
// intervals first, then opens, then alarms — the order a single
// compressor's epoch naturally has for independent objects.
func canonRank(e Event) int {
	switch e.Kind {
	case EndContainment:
		return 0
	case StartContainment:
		return 1
	case EndLocation:
		return 2
	case StartLocation:
		return 3
	default: // Missing
		return 4
	}
}

// emitTime is the instant an event is emitted: Ve for end messages (the
// interval closes then), Vs for starts and alarms.
func emitTime(e Event) int64 {
	if e.Kind == EndLocation || e.Kind == EndContainment {
		return int64(e.Ve)
	}
	return int64(e.Vs)
}

// CanonicalSort stable-sorts a stream into a canonical normal form:
// by emission time, then object, then kind (closes before opens before
// alarms), then payload. Two well-formed streams describing the same
// interpreted history — e.g. a federated merge driven with zones in a
// different order or partitioned into a different zone count — compare
// equal after CanonicalSort even when their emission interleavings
// differ.
//
// The normal form is for comparison, not emission: within one instant it
// may order another object's open before this object's zero-length
// close, so the sorted stream is not guaranteed to pass CheckWellFormed.
// Check well-formedness on the raw stream, equality on the canonical one.
func CanonicalSort(events []Event) {
	slices.SortStableFunc(events, func(a, b Event) int {
		if c := cmp.Compare(emitTime(a), emitTime(b)); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Object, b.Object); c != 0 {
			return c
		}
		if c := cmp.Compare(canonRank(a), canonRank(b)); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Location, b.Location); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Container, b.Container); c != 0 {
			return c
		}
		return cmp.Compare(a.Vs, b.Vs)
	})
}
