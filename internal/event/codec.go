package event

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spire/internal/model"
)

// Wire sizes in bytes for each message kind. Location payloads are 4-byte
// location IDs; containment payloads are 8-byte tags. Start messages omit
// Ve (it is implicitly ∞) and Missing omits Ve (implicitly Vs), which is
// why start and missing records are shorter than end records.
const (
	headerSize = 1 + 8 // kind + object tag

	SizeStartLocation    = headerSize + 4 + 8     // loc + Vs
	SizeEndLocation      = headerSize + 4 + 8 + 8 // loc + Vs + Ve
	SizeStartContainment = headerSize + 8 + 8     // container + Vs
	SizeEndContainment   = headerSize + 8 + 8 + 8 // container + Vs + Ve
	SizeMissing          = headerSize + 4 + 8     // loc + Vs
)

// ErrCorrupt reports a malformed event stream.
var ErrCorrupt = errors.New("event: corrupt event stream")

// WireSize returns the encoded size in bytes of e.
func WireSize(e Event) int {
	switch e.Kind {
	case StartLocation:
		return SizeStartLocation
	case EndLocation:
		return SizeEndLocation
	case StartContainment:
		return SizeStartContainment
	case EndContainment:
		return SizeEndContainment
	case Missing:
		return SizeMissing
	default:
		return 0
	}
}

// Append appends the wire form of e to dst.
func Append(dst []byte, e Event) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	dst = append(dst, byte(e.Kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.Object))
	switch e.Kind {
	case StartLocation:
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.Location))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Vs))
	case EndLocation:
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.Location))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Vs))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Ve))
	case StartContainment:
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Container))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Vs))
	case EndContainment:
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Container))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Vs))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Ve))
	case Missing:
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.Location))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Vs))
	}
	return dst, nil
}

// Decode decodes one event from the front of b, returning the event and
// the number of bytes consumed.
func Decode(b []byte) (Event, int, error) {
	if len(b) < headerSize {
		return Event{}, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	e := Event{
		Kind:   Kind(b[0]),
		Object: model.Tag(binary.BigEndian.Uint64(b[1:9])),
	}
	n := WireSize(e)
	if n == 0 {
		return Event{}, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, b[0])
	}
	if len(b) < n {
		return Event{}, 0, fmt.Errorf("%w: %d bytes for %s, want %d", ErrCorrupt, len(b), e.Kind, n)
	}
	p := b[headerSize:]
	switch e.Kind {
	case StartLocation:
		e.Location = model.LocationID(int32(binary.BigEndian.Uint32(p[0:4])))
		e.Vs = model.Epoch(binary.BigEndian.Uint64(p[4:12]))
		e.Ve = model.InfiniteEpoch
	case EndLocation:
		e.Location = model.LocationID(int32(binary.BigEndian.Uint32(p[0:4])))
		e.Vs = model.Epoch(binary.BigEndian.Uint64(p[4:12]))
		e.Ve = model.Epoch(binary.BigEndian.Uint64(p[12:20]))
	case StartContainment:
		e.Container = model.Tag(binary.BigEndian.Uint64(p[0:8]))
		e.Vs = model.Epoch(binary.BigEndian.Uint64(p[8:16]))
		e.Ve = model.InfiniteEpoch
	case EndContainment:
		e.Container = model.Tag(binary.BigEndian.Uint64(p[0:8]))
		e.Vs = model.Epoch(binary.BigEndian.Uint64(p[8:16]))
		e.Ve = model.Epoch(binary.BigEndian.Uint64(p[16:24]))
	case Missing:
		e.Location = model.LocationID(int32(binary.BigEndian.Uint32(p[0:4])))
		e.Vs = model.Epoch(binary.BigEndian.Uint64(p[4:12]))
		e.Ve = e.Vs
	}
	if err := e.Validate(); err != nil {
		return Event{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return e, n, nil
}

// Writer streams events to an io.Writer, tracking total wire bytes.
type Writer struct {
	w     *bufio.Writer
	buf   []byte
	bytes int64
	count int64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one event.
func (w *Writer) Write(e Event) error {
	b, err := Append(w.buf[:0], e)
	if err != nil {
		return err
	}
	w.buf = b
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.bytes += int64(len(b))
	w.count++
	return nil
}

// Flush flushes buffered bytes to the destination.
func (w *Writer) Flush() error { return w.w.Flush() }

// Bytes returns the total wire bytes written.
func (w *Writer) Bytes() int64 { return w.bytes }

// Count returns the number of events written.
func (w *Writer) Count() int64 { return w.count }

// Reader decodes an event stream.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), buf: make([]byte, SizeEndContainment)}
}

// Read decodes the next event; io.EOF signals a clean end of stream.
func (r *Reader) Read() (Event, error) {
	hdr := r.buf[:headerSize]
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := WireSize(Event{Kind: Kind(hdr[0])})
	if n == 0 {
		return Event{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, hdr[0])
	}
	if _, err := io.ReadFull(r.r, r.buf[headerSize:n]); err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	e, _, err := Decode(r.buf[:n])
	return e, err
}

// ReadAll decodes the remainder of the stream.
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// StreamSize returns the total wire size of a slice of events without
// encoding them.
func StreamSize(events []Event) int64 {
	var n int64
	for _, e := range events {
		n += int64(WireSize(e))
	}
	return n
}
