package graph

import "spire/internal/trace"

// SetTracer attaches a decision-provenance recorder. The graph records
// the Fig. 4 update decisions — colorings (direct reads), edge creation
// and removal, and special-reader confirmations. A nil recorder disables
// recording; the update hot path then takes no extra work. Recording is
// observation-only and never influences the update procedure.
func (g *Graph) SetTracer(rec *trace.Recorder) { g.rec = rec }

// Tracer returns the attached recorder (nil when untraced).
func (g *Graph) Tracer() *trace.Recorder { return g.rec }
