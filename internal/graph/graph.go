// Package graph implements SPIRE's time-varying colored graph model
// (Section III of the paper).
//
// Nodes represent RFID-tagged objects, arranged in layers by packaging
// level. A node's color is the location where it was observed in the
// current epoch; unobserved nodes are uncolored but remember their most
// recent color and when it was seen. Directed edges parent→child encode
// *possible* containment relationships; each edge carries a
// recent_colocations bit-vector of positive/negative co-location evidence,
// and each node remembers its last reader-confirmed parent.
//
// The graph is updated stream-drivenly, one reader's reading set at a
// time, by the four-step procedure of Fig. 4 (see update.go). The
// inference package consumes the resulting structure.
package graph

import (
	"fmt"

	"spire/internal/model"
	"spire/internal/trace"
)

// Config parameterizes the graph model.
type Config struct {
	// HistorySize is S, the length of each edge's recent_colocations
	// bit-vector. The paper finds S=32 sufficient.
	HistorySize int
}

// DefaultHistorySize is the paper's chosen S.
const DefaultHistorySize = 32

func (c *Config) withDefaults() Config {
	out := *c
	if out.HistorySize == 0 {
		out.HistorySize = DefaultHistorySize
	}
	return out
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HistorySize < 1 || c.HistorySize > MaxHistorySize {
		return fmt.Errorf("graph: HistorySize %d out of range [1,%d]", c.HistorySize, MaxHistorySize)
	}
	return nil
}

// Node is one object in the graph. Fields are mutated only by the graph
// update procedure; other packages read them.
type Node struct {
	Tag   model.Tag
	Level model.Level

	// RecentColor and SeenAt are the (recent color, seen at) memory of the
	// paper: the color of the location where the object was last observed
	// and the epoch of that observation. The node is *colored* in epoch t
	// iff SeenAt == t.
	RecentColor model.LocationID
	SeenAt      model.Epoch

	// NewColorAt is the last epoch in which the node was assigned a color
	// different from its previous one (including its first coloring). The
	// edge-creation step runs only for such nodes.
	NewColorAt model.Epoch

	// ConfirmedEdge is the parent edge last confirmed by a special reader
	// (at most one per node), ConfirmedAt the confirmation epoch, and
	// Conflicts the number of conflicting observations since then.
	ConfirmedEdge *Edge
	ConfirmedAt   model.Epoch
	Conflicts     int

	// BetaEither and BetaOne drive the adaptive-β heuristic of Expt 1:
	// among epochs in which the object or its confirmed container was
	// read, how many saw exactly one of the two.
	BetaEither int
	BetaOne    int

	// InferDist and DistStamp are scratch storage owned by the inference
	// package: the BFS hop distance assigned to this node by the sweep
	// whose stamp is DistStamp (the same stamped-slot idiom as
	// Edge.InferProb/InferStamp). A stamp differing from the running pass
	// means "not reached this pass" — no per-epoch map or clearing needed.
	InferDist int32
	DistStamp uint64

	parents  map[model.Tag]*Edge // incoming edges, keyed by parent tag
	children map[model.Tag]*Edge // outgoing edges, keyed by child tag

	comp     *Component // connected component (see components.go)
	compSeen uint64     // rebuild-BFS visit stamp, owned by rebuildComponent
}

// Colored reports whether the node was observed in epoch now.
func (n *Node) Colored(now model.Epoch) bool { return n.SeenAt == now }

// ColorAt returns the node's color in epoch now, or LocationNone if the
// node is uncolored (unobserved) in that epoch.
func (n *Node) ColorAt(now model.Epoch) model.LocationID {
	if n.SeenAt == now {
		return n.RecentColor
	}
	return model.LocationNone
}

// ParentEdges returns the incoming (possible-container) edges. The
// returned slice is freshly allocated; mutate the graph, not the slice.
func (n *Node) ParentEdges() []*Edge {
	out := make([]*Edge, 0, len(n.parents))
	for _, e := range n.parents {
		out = append(out, e)
	}
	return out
}

// ChildEdges returns the outgoing (possible-content) edges.
func (n *Node) ChildEdges() []*Edge {
	out := make([]*Edge, 0, len(n.children))
	for _, e := range n.children {
		out = append(out, e)
	}
	return out
}

// NumParents and NumChildren report degree without allocating.
func (n *Node) NumParents() int  { return len(n.parents) }
func (n *Node) NumChildren() int { return len(n.children) }

// ParentEdge returns the edge from the given parent, if any.
func (n *Node) ParentEdge(parent model.Tag) *Edge { return n.parents[parent] }

// ChildEdge returns the edge to the given child, if any.
func (n *Node) ChildEdge(child model.Tag) *Edge { return n.children[child] }

// VisitParents calls f for each incoming edge without allocating.
func (n *Node) VisitParents(f func(*Edge)) {
	for _, e := range n.parents {
		f(e)
	}
}

// VisitChildren calls f for each outgoing edge without allocating.
func (n *Node) VisitChildren(f func(*Edge)) {
	for _, e := range n.children {
		f(e)
	}
}

// AdaptiveBeta returns the adaptive β of Expt 1: the fraction of epochs,
// among those where the object or its confirmed container was read, in
// which exactly one of the two was read. Falls back to def when the node
// has no confirmation history yet.
func (n *Node) AdaptiveBeta(def float64) float64 {
	if n.BetaEither == 0 {
		return def
	}
	return float64(n.BetaOne) / float64(n.BetaEither)
}

// Edge is a possible containment relationship Parent→Child.
type Edge struct {
	Parent, Child *Node

	// History is the recent_colocations evidence bit-vector.
	History History

	// UpdateTime is the last epoch in which edge statistics were updated;
	// the update procedure shifts the history exactly once per epoch by
	// comparing it against now.
	UpdateTime model.Epoch

	// CreatedAt is the epoch the edge was added; edges are only eligible
	// for color-mismatch removal once they have survived a prior epoch
	// (Fig. 4 line 15).
	CreatedAt model.Epoch

	// conflictedAt / betaOneAt make the two-sided edge visit idempotent:
	// a first visit that saw the partner uncolored may be revised when the
	// partner turns out to be colored later in the same epoch.
	conflictedAt model.Epoch
	betaOneAt    model.Epoch

	// InferProb and InferStamp are scratch storage owned by the inference
	// package: the normalized Eq. 2 probability assigned to this edge by
	// the inference pass whose stamp is InferStamp. A stamp that differs
	// from the running pass means "no probability assigned this pass".
	// Living on the edge, the slot replaces a pointer-keyed map on the
	// inference hot path: O(1) access with no hashing and no per-epoch
	// clearing (stale entries are invalidated by the stamp alone).
	InferProb  float64
	InferStamp uint64
}

// Confirmed reports whether this edge is the confirmed parent edge of its
// child (drawn with double arrows in the paper's figures).
func (e *Edge) Confirmed() bool { return e.Child.ConfirmedEdge == e }

// Graph is the time-varying colored graph. It is not safe for concurrent
// mutation.
type Graph struct {
	cfg   Config
	nodes map[model.Tag]*Node
	edges int

	// colored indexes the nodes observed in the current epoch by level and
	// color, so the edge-creation step can find same-colored nodes in
	// nearby layers without scanning the graph. It is reset lazily when a
	// new epoch begins. Colors are dense small integers (location table
	// indices), so each level is a slice indexed by color rather than a
	// map: bucket slots are distinct memory locations, which lets
	// UpdateBatch workers that own disjoint colors append concurrently —
	// a map bucket insert could not guarantee that. Grown by ensureColor.
	colored   [model.NumLevels][][]*Node
	coloredAt model.Epoch

	// freeEdges recycles removed Edge structs. Color-mismatch removal and
	// edge pruning churn through many short-lived edges (millions over a
	// large trace); reusing the structs keeps the steady-state update loop
	// allocation-free. Only edges fully detached from both endpoints enter
	// the list, so no live pointer can alias a recycled edge.
	freeEdges []*Edge

	// Connected-component bookkeeping (see components.go): the live
	// partition, its cached id-sorted order, the stale queue scratch, and
	// the rebuild-BFS visit stamp counter.
	comps        map[*Component]struct{}
	compOrder    []*Component
	compOrderOK  bool
	anyStale     bool
	staleScratch []*Component
	compStamp    uint64

	// batchScratch is UpdateBatch's reused orchestration state (see
	// batch.go): the group union-find, supergroup chains, and deferred
	// contexts.
	batchScratch batchScratch

	// rec is the optional decision-provenance recorder (nil when
	// untraced); see trace.go. Recording never mutates graph state.
	rec *trace.Recorder
}

// New creates an empty graph.
func New(cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		cfg:       cfg,
		nodes:     make(map[model.Tag]*Node),
		coloredAt: model.EpochNone,
		comps:     make(map[*Component]struct{}),
	}
	return g, nil
}

// Config returns the graph's configuration.
func (g *Graph) Config() Config { return g.cfg }

// Node returns the node for tag, or nil.
func (g *Graph) Node(tag model.Tag) *Node { return g.nodes[tag] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.edges }

// FreeEdgeCount returns the number of recycled Edge structs parked on the
// free list — retained memory that Len/EdgeCount alone would hide.
func (g *Graph) FreeEdgeCount() int { return len(g.freeEdges) }

// Nodes calls f for every node; iteration order is unspecified.
func (g *Graph) Nodes(f func(*Node)) {
	for _, n := range g.nodes {
		f(n)
	}
}

// addNode creates a node for tag at the given level.
func (g *Graph) addNode(tag model.Tag, lvl model.Level) *Node {
	n := &Node{
		Tag:         tag,
		Level:       lvl,
		RecentColor: model.LocationNone,
		SeenAt:      model.EpochNone,
		NewColorAt:  model.EpochNone,
		ConfirmedAt: model.EpochNone,
		parents:     make(map[model.Tag]*Edge),
		children:    make(map[model.Tag]*Edge),
	}
	g.nodes[tag] = n
	g.newComponent(n)
	return n
}

// AddEdge inserts a parent→child edge if absent and returns it. Both
// nodes must already be in the graph.
func (g *Graph) AddEdge(parent, child *Node, now model.Epoch) *Edge {
	if e, ok := child.parents[parent.Tag]; ok {
		return e
	}
	h, err := NewHistory(g.cfg.HistorySize)
	if err != nil {
		panic(err) // validated at construction
	}
	var e *Edge
	if n := len(g.freeEdges); n > 0 {
		e = g.freeEdges[n-1]
		g.freeEdges[n-1] = nil
		g.freeEdges = g.freeEdges[:n-1]
	} else {
		e = new(Edge)
	}
	*e = Edge{
		Parent:       parent,
		Child:        child,
		History:      h,
		UpdateTime:   model.EpochNone,
		CreatedAt:    now,
		conflictedAt: model.EpochNone,
		betaOneAt:    model.EpochNone,
	}
	parent.children[child.Tag] = e
	child.parents[parent.Tag] = e
	g.edges++
	g.unionComponents(parent.comp, child.comp, now)
	if g.rec != nil {
		g.rec.Record(trace.Record{
			Epoch: now, Tag: child.Tag, Mech: trace.MechEdgeCreated,
			Loc: model.LocationNone, Other: parent.Tag,
		})
	}
	return e
}

// RemoveEdge detaches e from both endpoints and recycles the struct. The
// identity check makes removal idempotent and guards against a stale edge
// deleting a newer edge of the same parent-child pair.
func (g *Graph) RemoveEdge(e *Edge) {
	if g.DetachEdge(e) {
		g.recycleEdge(e)
	}
}

// DetachEdge unlinks e from its two endpoints (and clears the child's
// confirmed-parent slot if e held it) without touching any graph-wide
// bookkeeping, and reports whether the edge was live. Both endpoints lie
// in the same component, so concurrent inference workers — each owning a
// disjoint set of components — may detach edges in parallel; the shared
// state (edge count, free list, component staleness) is settled by a
// single RecycleDetached call after the workers join. Callers outside
// that protocol want RemoveEdge.
func (g *Graph) DetachEdge(e *Edge) bool {
	if e.Child.ConfirmedEdge == e {
		e.Child.ConfirmedEdge = nil
	}
	if e.Child.parents[e.Parent.Tag] != e {
		return false
	}
	delete(e.Child.parents, e.Parent.Tag)
	delete(e.Parent.children, e.Child.Tag)
	return true
}

// RecycleDetached completes the removal of edges previously unlinked with
// DetachEdge: adjusts the edge count, parks the structs on the free list,
// and marks the affected components stale. Must be called from the
// goroutine owning the graph, after any concurrent detachers have joined.
func (g *Graph) RecycleDetached(edges []*Edge) {
	for _, e := range edges {
		g.recycleEdge(e)
	}
}

// recycleEdge finishes one detached edge's removal bookkeeping.
func (g *Graph) recycleEdge(e *Edge) {
	g.edges--
	g.freeEdges = append(g.freeEdges, e)
	g.markStale(e.Child.comp)
}

// RemoveNode deletes the node for tag and all incident edges. The
// substrate calls this when an object exits the world through a proper
// channel (the graph-pruning routine of Section IV-C).
func (g *Graph) RemoveNode(tag model.Tag) {
	n, ok := g.nodes[tag]
	if !ok {
		return
	}
	for _, e := range n.parents {
		g.RemoveEdge(e)
	}
	for _, e := range n.children {
		g.RemoveEdge(e)
	}
	// Drop the node from the colored index of the current epoch, if there.
	if n.SeenAt == g.coloredAt && n.RecentColor.Known() && int(n.RecentColor) < len(g.colored[n.Level]) {
		lvl := int(n.Level)
		list := g.colored[lvl][n.RecentColor]
		for i, m := range list {
			if m == n {
				list[i] = list[len(list)-1]
				g.colored[lvl][n.RecentColor] = list[:len(list)-1]
				break
			}
		}
	}
	// The node's edges are already gone (their removal marked the
	// component stale), but an isolated node's removal must queue the
	// rebuild itself so the member list sheds the dead entry.
	g.markStale(n.comp)
	n.comp = nil
	delete(g.nodes, tag)
}

// ColoredNodes returns the nodes observed in epoch now at the given level
// and color. The slice is owned by the graph; do not mutate.
func (g *Graph) ColoredNodes(lvl model.Level, color model.LocationID, now model.Epoch) []*Node {
	if g.coloredAt != now || !color.Known() || int(color) >= len(g.colored[lvl]) {
		return nil
	}
	return g.colored[lvl][color]
}

// EachColored calls f for every node observed in epoch now. Iteration
// order is deterministic: by level, then ascending color, then insertion
// order within a bucket.
func (g *Graph) EachColored(now model.Epoch, f func(*Node)) {
	if g.coloredAt != now {
		return
	}
	for lvl := range g.colored {
		for _, list := range g.colored[lvl] {
			for _, n := range list {
				f(n)
			}
		}
	}
}

// beginEpoch lazily resets the per-epoch colored index.
func (g *Graph) beginEpoch(now model.Epoch) {
	if g.coloredAt == now {
		return
	}
	for i := range g.colored {
		buckets := g.colored[i]
		for k := range buckets {
			buckets[k] = buckets[k][:0]
		}
	}
	g.coloredAt = now
}

// ensureColor grows every level's colored index to cover color c. Must be
// called on the owning goroutine before any concurrent bucket appends.
func (g *Graph) ensureColor(c model.LocationID) {
	need := int(c) + 1
	for i := range g.colored {
		for len(g.colored[i]) < need {
			g.colored[i] = append(g.colored[i], nil)
		}
	}
}

// NodeSizeBytes and EdgeSizeBytes approximate per-object memory costs for
// the memory experiment (Fig. 10). They include the map-entry overhead of
// the adjacency maps (two entries per edge) using a conservative 48 bytes
// per map entry.
const (
	NodeSizeBytes = 160        // struct + two map headers + index slot
	EdgeSizeBytes = 112 + 2*48 // struct (incl. inference scratch slots) + map entries
)

// ApproxBytes estimates the resident size of the graph.
func (g *Graph) ApproxBytes() int64 {
	return int64(len(g.nodes))*NodeSizeBytes + int64(g.edges)*EdgeSizeBytes
}

// Stats is a structural snapshot of the graph, for monitoring and
// diagnostics.
type Stats struct {
	Nodes          int
	NodesByLevel   [model.NumLevels]int
	Edges          int
	ConfirmedEdges int
	Colored        int // nodes observed in the snapshot epoch
	ApproxBytes    int64
}

// Snapshot computes Stats for epoch now in one O(V+E) pass.
func (g *Graph) Snapshot(now model.Epoch) Stats {
	st := Stats{Nodes: len(g.nodes), Edges: g.edges, ApproxBytes: g.ApproxBytes()}
	for _, n := range g.nodes {
		if n.Level.Valid() {
			st.NodesByLevel[n.Level]++
		}
		if n.Colored(now) {
			st.Colored++
		}
		if n.ConfirmedEdge != nil {
			st.ConfirmedEdges++
		}
	}
	return st
}
