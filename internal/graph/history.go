package graph

import (
	"fmt"
	"math"
)

// MaxHistorySize bounds the recent_colocations bit-vector length. The
// paper finds no benefit beyond S=32; we allow up to 64 so the whole
// vector fits one machine word.
const MaxHistorySize = 64

// History is the recent_colocations bit-vector kept on every edge
// (Section III-A): bit 0 is the most recent epoch in which the edge was
// examined, and a set bit records positive co-location evidence (both
// endpoints observed with the same color).
type History struct {
	bits uint64
	size int
}

// NewHistory returns an empty history of the given size (1..MaxHistorySize).
func NewHistory(size int) (History, error) {
	if size < 1 || size > MaxHistorySize {
		return History{}, fmt.Errorf("graph: history size %d out of range [1,%d]", size, MaxHistorySize)
	}
	return History{size: size}, nil
}

// Size returns the capacity S of the bit-vector.
func (h History) Size() int { return h.size }

// Shift expires the oldest bit and opens a fresh (unset) most-recent slot.
// This is the "right shift ... to expire old information" of Fig. 4; we
// shift left internally because bit 0 is the most recent.
func (h *History) Shift() {
	h.bits <<= 1
	if h.size < 64 {
		h.bits &= 1<<uint(h.size) - 1
	}
}

// SetRecent records this epoch's co-location evidence in bit 0.
func (h *History) SetRecent(colocated bool) {
	if colocated {
		h.bits |= 1
	} else {
		h.bits &^= 1
	}
}

// Bit returns the evidence bit i epochs back (0 = most recent).
func (h History) Bit(i int) bool {
	if i < 0 || i >= h.size {
		return false
	}
	return h.bits>>uint(i)&1 == 1
}

// Ones returns the number of set bits.
func (h History) Ones() int {
	n := 0
	for b := h.bits; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Weight computes the normalized Zipf-weighted co-location score of Eq. 1:
//
//	w = Σ_i bit[i]/(i+1)^α  /  Σ_i 1/(i+1)^α
//
// The paper writes 1/i^α from i = 0; we use the standard Zipf index (i+1)
// so the most recent bit has finite weight — identical at the paper's
// chosen α = 0. weights must come from ZipfWeights(size, α).
func (h History) Weight(weights []float64) float64 {
	if len(weights) != h.size {
		panic(fmt.Sprintf("graph: weight table size %d != history size %d", len(weights), h.size))
	}
	var num, den float64
	for i := 0; i < h.size; i++ {
		den += weights[i]
		if h.bits>>uint(i)&1 == 1 {
			num += weights[i]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ZipfWeights precomputes 1/(i+1)^α for i in [0, size).
func ZipfWeights(size int, alpha float64) []float64 {
	w := make([]float64, size)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), alpha)
	}
	return w
}
