package graph

import "spire/internal/telemetry"

// Instruments are the graph's runtime-telemetry gauges: structural state
// growth is the number one thing an operator of the streaming pipeline
// watches (the graph is the only unbounded state the substrate holds).
// A nil *Instruments records nothing.
type Instruments struct {
	Nodes     *telemetry.Gauge
	Edges     *telemetry.Gauge
	FreeEdges *telemetry.Gauge
}

// NewInstruments registers the graph gauges on reg. Returns nil when reg
// is nil, which makes every Record call a no-op.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Nodes:     reg.Gauge("spire_graph_nodes", "Objects currently tracked in the time-varying graph."),
		Edges:     reg.Gauge("spire_graph_edges", "Possible-containment edges currently in the graph."),
		FreeEdges: reg.Gauge("spire_graph_free_edges", "Recycled Edge structs parked on the free list."),
	}
}

// Record captures the graph's structural state into the gauges. The
// caller decides the cadence (the substrate records once per epoch); the
// gauges themselves are safe to read concurrently from a scrape handler.
func (ins *Instruments) Record(g *Graph) {
	if ins == nil {
		return
	}
	ins.Nodes.Set(int64(g.Len()))
	ins.Edges.Set(int64(g.EdgeCount()))
	ins.FreeEdges.Set(int64(g.FreeEdgeCount()))
}
