package graph

import (
	"sync"
	"sync/atomic"

	"spire/internal/epc"
	"spire/internal/model"
)

// Reader-group-parallel graph update.
//
// UpdateBatch applies one epoch's reader groups with the same result —
// bit for bit — as calling Update once per group in slice order. The
// Fig. 4 procedure is order-sensitive wherever two groups' footprints
// overlap: a shared color interleaves through the colored index (edge
// creation reads the bucket other same-colored readers fill), and a
// shared component interleaves through node colors and edge statistics
// (visitEdges reads neighbor colors; BetaOne/BetaEither increments depend
// on which endpoint was colored first). So the concurrency rule is:
//
//	two reader groups may apply concurrently iff they share no color and
//	no connected component.
//
// Groups are chained into "supergroups" by union-find over those two
// keys; each supergroup replays its groups serially in slice order (the
// exact serial interleaving), and disjoint supergroups fan out across the
// worker pool. Everything a group mutates — its color's index buckets,
// its components' nodes, edges, and member lists — is then owned by
// exactly one goroutine. The remaining graph-wide state (edge count,
// free list, component registry, staleness flags) is deferred into a
// per-supergroup updCtx and committed deterministically after the
// workers join.
//
// When the pool is unprofitable or unsound — one worker, one supergroup,
// a trace recorder attached (the recorder is not goroutine-safe), or a
// malformed tag whose mid-stream error semantics the serial path defines
// — UpdateBatch falls back to the plain serial sweep.

// updCtx routes edge creation and removal during an update. In direct
// mode (the serial path) operations hit the graph immediately. In
// deferred mode (one ctx per supergroup) the footprint-local work happens
// inline, while mutations of graph-wide state are accumulated and
// committed after the workers join: edges allocate from a private free
// segment, removals detach but park the struct, merged-away components
// and staleness are recorded rather than applied.
type updCtx struct {
	g        *Graph
	deferred bool

	free      []*Edge      // private allocation segment (deferred)
	detached  []*Edge      // removed edges pending recycle (deferred)
	edgeDelta int          // net edge-count change (deferred)
	dead      []*Component // components merged away (deferred)
	unioned   bool         // a union happened: compOrder is invalid
	anyStale  bool         // a removal happened: components need rebuild

	batch [model.NumLevels][]*Node // step-1 scratch, reused per group
}

// addEdge inserts a parent→child edge if absent, mirroring Graph.AddEdge.
func (ctx *updCtx) addEdge(parent, child *Node, now model.Epoch) *Edge {
	if !ctx.deferred {
		return ctx.g.AddEdge(parent, child, now)
	}
	if e, ok := child.parents[parent.Tag]; ok {
		return e
	}
	g := ctx.g
	h, err := NewHistory(g.cfg.HistorySize)
	if err != nil {
		panic(err) // validated at construction
	}
	var e *Edge
	if n := len(ctx.free); n > 0 {
		e = ctx.free[n-1]
		ctx.free[n-1] = nil
		ctx.free = ctx.free[:n-1]
	} else {
		e = new(Edge)
	}
	*e = Edge{
		Parent:       parent,
		Child:        child,
		History:      h,
		UpdateTime:   model.EpochNone,
		CreatedAt:    now,
		conflictedAt: model.EpochNone,
		betaOneAt:    model.EpochNone,
	}
	parent.children[child.Tag] = e
	child.parents[parent.Tag] = e
	ctx.edgeDelta++
	ctx.union(parent.comp, child.comp, now)
	return e
}

// union mirrors Graph.unionComponents with the registry deletion and
// order invalidation deferred. Both components belong to this ctx's
// supergroup footprint, so the member-list merge is single-owner.
func (ctx *updCtx) union(a, b *Component, now model.Epoch) {
	if a == b {
		a.touch(now)
		return
	}
	if len(a.members) < len(b.members) {
		a, b = b, a
	}
	for _, n := range b.members {
		n.comp = a
	}
	a.members = append(a.members, b.members...)
	if b.id < a.id {
		a.id = b.id
	}
	if b.dirtyAt > a.dirtyAt {
		a.dirtyAt = b.dirtyAt
	}
	a.stale = a.stale || b.stale
	a.touch(now)
	ctx.dead = append(ctx.dead, b)
	ctx.unioned = true
}

// removeEdge removes e, mirroring Graph.RemoveEdge with the recycling
// (edge count, free list, stale flag) deferred.
func (ctx *updCtx) removeEdge(e *Edge) {
	if !ctx.deferred {
		ctx.g.RemoveEdge(e)
		return
	}
	comp := e.Child.comp
	if ctx.g.DetachEdge(e) {
		ctx.detached = append(ctx.detached, e)
		ctx.edgeDelta--
		comp.stale = true // single-owner; graph-wide anyStale deferred
		ctx.anyStale = true
	}
}

// commit applies the deferred graph-wide mutations. Called on the owning
// goroutine after all workers join, in supergroup order.
func (ctx *updCtx) commit() {
	g := ctx.g
	g.edges += ctx.edgeDelta
	for _, c := range ctx.dead {
		delete(g.comps, c)
	}
	if ctx.unioned {
		g.compOrderOK = false
	}
	if ctx.anyStale {
		g.anyStale = true
	}
	// Return the unused remainder of the private free segment, then the
	// newly detached structs.
	g.freeEdges = append(g.freeEdges, ctx.free...)
	g.freeEdges = append(g.freeEdges, ctx.detached...)
}

// batchScratch is the reused orchestration state of UpdateBatch.
type batchScratch struct {
	parent     []int32 // union-find over group indices
	colorOwner map[model.LocationID]int32
	compOwner  map[*Component]int32
	order      []int32 // supergroup roots, by smallest member group
	chain      []int32 // next group in the root's chain (-1 = end)
	tail       []int32 // last group in the root's chain, root-indexed
	ctxs       []*updCtx
}

func (s *batchScratch) find(i int32) int32 {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

// unite merges the supergroups of i and j, keeping the smaller root so
// supergroup identity follows the earliest group in slice order.
func (s *batchScratch) unite(i, j int32) {
	ri, rj := s.find(i), s.find(j)
	if ri == rj {
		return
	}
	if rj < ri {
		ri, rj = rj, ri
	}
	s.parent[rj] = ri
}

// UpdateBatch applies every reader group of one epoch's batch: group i is
// readers[i] reading b.GroupTags(i), all at epoch b.Time. A nil
// readers[i] skips that group (the caller reports unknown readers after
// the epoch, matching the Observation path). The result is byte-identical
// to calling Update per group in slice order, for every worker count;
// workers ≤ 1 — and any condition the parallel path cannot honor — runs
// exactly that serial sweep.
func (g *Graph) UpdateBatch(b *model.Batch, readers []*model.Reader, workers int) error {
	now := b.Time
	if workers <= 1 || g.rec != nil || len(b.Groups) < 2 {
		return g.updateSerial(b, readers, now)
	}
	// The parallel path pre-creates nodes, so a malformed tag would error
	// before any group applied — the serial path errors mid-stream with
	// earlier groups already applied. Preserve those semantics by
	// scanning first and falling back when anything is off.
	for i := range b.Groups {
		r := readers[i]
		if r == nil {
			continue
		}
		if !r.Location.Known() {
			return g.updateSerial(b, readers, now)
		}
		for _, tag := range b.GroupTags(i) {
			if _, ok := epc.LevelOf(tag); !ok {
				return g.updateSerial(b, readers, now)
			}
		}
	}

	g.beginEpoch(now)
	for i := range b.Groups {
		if readers[i] != nil {
			g.ensureColor(readers[i].Location)
		}
	}
	// Pre-create nodes serially (the nodes map and component registry are
	// graph-wide), in the same group/tag order as the serial sweep.
	for i := range b.Groups {
		if readers[i] == nil {
			continue
		}
		for _, tag := range b.GroupTags(i) {
			if g.nodes[tag] == nil {
				lvl, _ := epc.LevelOf(tag)
				g.addNode(tag, lvl)
			}
		}
	}

	// Union groups that share a color or a component into supergroups.
	s := &g.batchScratch
	s.parent = s.parent[:0]
	for i := range b.Groups {
		s.parent = append(s.parent, int32(i))
	}
	if s.colorOwner == nil {
		s.colorOwner = make(map[model.LocationID]int32)
		s.compOwner = make(map[*Component]int32)
	} else {
		clear(s.colorOwner)
		clear(s.compOwner)
	}
	for i := range b.Groups {
		if readers[i] == nil {
			continue
		}
		gi := int32(i)
		if prev, ok := s.colorOwner[readers[i].Location]; ok {
			s.unite(gi, prev)
		} else {
			s.colorOwner[readers[i].Location] = gi
		}
		for _, tag := range b.GroupTags(i) {
			comp := g.nodes[tag].comp
			if prev, ok := s.compOwner[comp]; ok {
				s.unite(gi, prev)
			} else {
				s.compOwner[comp] = gi
			}
		}
	}

	// Chain each supergroup's groups in ascending slice order.
	n := int32(len(b.Groups))
	s.order = s.order[:0]
	if cap(s.chain) < int(n) {
		s.chain = make([]int32, n)
		s.tail = make([]int32, n)
	} else {
		s.chain = s.chain[:n]
		s.tail = s.tail[:n]
	}
	for i := int32(0); i < n; i++ {
		s.chain[i] = -1
		s.tail[i] = -1
	}
	for i := int32(0); i < n; i++ {
		if readers[i] == nil {
			continue
		}
		r := s.find(i)
		if s.tail[r] < 0 {
			s.order = append(s.order, r)
		} else {
			s.chain[s.tail[r]] = i
		}
		s.tail[r] = i
	}
	if len(s.order) < 2 {
		return g.updateSerial(b, readers, now)
	}

	// One deferred ctx per supergroup (structs reused across epochs),
	// splitting the free list into private allocation segments.
	for len(s.ctxs) < len(s.order) {
		s.ctxs = append(s.ctxs, &updCtx{g: g, deferred: true})
	}
	freeAll := g.freeEdges
	g.freeEdges = g.freeEdges[len(g.freeEdges):]
	per := len(freeAll) / len(s.order)
	for k := range s.order {
		lo, hi := k*per, (k+1)*per
		if k == len(s.order)-1 {
			hi = len(freeAll)
		}
		ctx := s.ctxs[k]
		ctx.free = freeAll[lo:hi:hi]
		ctx.detached = ctx.detached[:0]
		ctx.edgeDelta = 0
		ctx.dead = ctx.dead[:0]
		ctx.unioned = false
		ctx.anyStale = false
	}

	spawn := workers
	if spawn > len(s.order) {
		spawn = len(s.order)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(s.order) {
					return
				}
				ctx := s.ctxs[k]
				for i := s.order[k]; i >= 0; i = s.chain[i] {
					g.applyGroup(ctx, readers[i], b.GroupTags(int(i)), now)
				}
			}
		}()
	}
	wg.Wait()
	for _, ctx := range s.ctxs[:len(s.order)] {
		ctx.commit()
	}
	return nil
}

// updateSerial is the serial fallback: Update per group in slice order.
func (g *Graph) updateSerial(b *model.Batch, readers []*model.Reader, now model.Epoch) error {
	for i := range b.Groups {
		if readers[i] == nil {
			continue
		}
		if err := g.Update(readers[i], b.GroupTags(i), now); err != nil {
			return err
		}
	}
	return nil
}

// applyGroup is one reader group's Fig. 4 application inside the parallel
// path — the body of Update minus per-call validation (done up front),
// node creation (pre-created), and tracing (the parallel path never runs
// with a recorder attached). Any behavioral change here must be mirrored
// in Update; the equivalence tests pin the two together.
func (g *Graph) applyGroup(ctx *updCtx, reader *model.Reader, tags []model.Tag, now model.Epoch) {
	c := reader.Location

	// Step 1: color nodes (Fig. 4 lines 2-6).
	batch := &ctx.batch
	for lvl := range batch {
		batch[lvl] = batch[lvl][:0]
	}
	for _, tag := range tags {
		n := g.nodes[tag]
		n.comp.touch(now)
		if n.SeenAt == now {
			if n.RecentColor == c {
				continue // duplicate reading within the epoch
			}
			// A conflicting same-epoch color was set by a group in this
			// same supergroup (a shared tag chains the groups), so the
			// bucket being edited is supergroup-owned.
			g.removeFromIndex(n)
		}
		if n.RecentColor != c {
			n.NewColorAt = now
		}
		n.RecentColor = c
		n.SeenAt = now
		g.colored[n.Level][c] = append(g.colored[n.Level][c], n)
		batch[n.Level] = append(batch[n.Level], n)
	}

	// Special-reader confirmation, as in Update.
	var confirmTop model.Tag
	var confirmParent map[model.Tag]model.Tag
	if reader.Confirming && reader.ConfirmLevel.Valid() {
		cl := reader.ConfirmLevel
		if len(batch[cl]) == 1 && int(cl) > 0 {
			top := batch[cl][0]
			confirmTop = top.Tag
			confirmParent = make(map[model.Tag]model.Tag, len(batch[cl-1]))
			for _, child := range batch[cl-1] {
				confirmParent[child.Tag] = top.Tag
			}
		}
	}

	// Steps 2-4 (Fig. 4 lines 7-31), per level from the bottom up.
	for lvl := 0; lvl < model.NumLevels; lvl++ {
		for _, v := range batch[lvl] {
			if v.NewColorAt == now {
				g.createEdges(ctx, v, c, now)
			}
			g.visitEdges(ctx, v, c, now, reader.ID, confirmTop, confirmParent)
		}
	}
}
