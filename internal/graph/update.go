package graph

import (
	"fmt"

	"spire/internal/epc"
	"spire/internal/model"
	"spire/internal/trace"
)

// Update applies one reader's reading set for the current epoch — the
// stream-driven graph update procedure of Fig. 4. It may be called once
// per reader per epoch, in any order; after the sets of all readers of an
// epoch have been applied the graph is consistent for that epoch.
//
// The four steps:
//  1. create and color the nodes for the read tags;
//  2. for nodes that gained a new color, create possible-containment
//     edges to same-colored nodes in the closest layers above and below;
//  3. remove edges whose endpoints are observed in different locations,
//     and edges contradicted by this (special) reader's confirmations;
//  4. update per-edge co-location history, confirmed parents, conflict
//     counts, and the adaptive-β counters.
func (g *Graph) Update(reader *model.Reader, tags []model.Tag, now model.Epoch) error {
	if reader == nil {
		return fmt.Errorf("graph: nil reader")
	}
	c := reader.Location
	if !c.Known() {
		return fmt.Errorf("graph: reader %d has no known location", reader.ID)
	}
	g.beginEpoch(now)
	g.ensureColor(c)
	ctx := updCtx{g: g}

	// Step 1: create and color nodes (Fig. 4 lines 2-6).
	var batch [model.NumLevels][]*Node
	for _, tag := range tags {
		lvl, ok := epc.LevelOf(tag)
		if !ok {
			return fmt.Errorf("graph: tag %d carries no valid packaging level", tag)
		}
		n := g.nodes[tag]
		if n == nil {
			n = g.addNode(tag, lvl)
		}
		// A read tag dirties its component: its color, fade clock, or
		// history may change, so cached per-component verdicts are void.
		n.comp.touch(now)
		if n.SeenAt == now {
			if n.RecentColor == c {
				continue // duplicate reading within the epoch
			}
			// Conflicting colors within one epoch should have been removed
			// by deduplication; the most recent reader wins, so move the
			// node between index buckets.
			g.removeFromIndex(n)
		}
		if n.RecentColor != c {
			n.NewColorAt = now
		}
		n.RecentColor = c
		n.SeenAt = now
		g.colored[lvl][c] = append(g.colored[lvl][c], n)
		batch[lvl] = append(batch[lvl], n)
		if g.rec != nil && g.rec.Traces(tag) {
			g.rec.Record(trace.Record{
				Epoch: now, Tag: tag, Mech: trace.MechDirectRead,
				Loc: c, Reader: reader.ID,
			})
		}
	}

	// Special readers scan containers of level reader.ConfirmLevel one at
	// a time. When this set contains exactly one such container, it is
	// confirmed as a top-level container and as the parent of every read
	// object one level below it.
	var confirmTop model.Tag
	var confirmParent map[model.Tag]model.Tag
	if reader.Confirming && reader.ConfirmLevel.Valid() {
		cl := reader.ConfirmLevel
		if len(batch[cl]) == 1 && int(cl) > 0 {
			top := batch[cl][0]
			confirmTop = top.Tag
			confirmParent = make(map[model.Tag]model.Tag, len(batch[cl-1]))
			for _, child := range batch[cl-1] {
				confirmParent[child.Tag] = top.Tag
			}
		}
	}

	// Steps 2-4 (Fig. 4 lines 7-31), per level from the bottom up.
	for lvl := 0; lvl < model.NumLevels; lvl++ {
		for _, v := range batch[lvl] {
			if v.NewColorAt == now {
				g.createEdges(&ctx, v, c, now)
			}
			// Steps 3 and 4 share the walk over v's incident edges.
			g.visitEdges(&ctx, v, c, now, reader.ID, confirmTop, confirmParent)
		}
	}
	return nil
}

// removeFromIndex drops n from the current epoch's colored index.
func (g *Graph) removeFromIndex(n *Node) {
	list := g.colored[n.Level][n.RecentColor]
	for i, m := range list {
		if m == n {
			list[i] = list[len(list)-1]
			g.colored[n.Level][n.RecentColor] = list[:len(list)-1]
			return
		}
	}
}

// createEdges implements step 2 (Fig. 4 lines 9-13): connect v to the
// same-colored nodes in the closest populated layer above and below.
// Cross-layer edges arise naturally when the adjacent layer has no node of
// this color (e.g. an item links to a pallet when its case was missed).
func (g *Graph) createEdges(ctx *updCtx, v *Node, c model.LocationID, now model.Epoch) {
	for la := int(v.Level) + 1; la < model.NumLevels; la++ {
		if nodes := g.colored[la][c]; len(nodes) > 0 {
			for _, p := range nodes {
				if p != v {
					ctx.addEdge(p, v, now)
				}
			}
			break
		}
	}
	for lb := int(v.Level) - 1; lb >= 0; lb-- {
		if nodes := g.colored[lb][c]; len(nodes) > 0 {
			for _, ch := range nodes {
				if ch != v {
					ctx.addEdge(v, ch, now)
				}
			}
			break
		}
	}
}

// visitEdges implements steps 3 and 4 (Fig. 4 lines 14-31) for one colored
// node. Edges may legitimately be visited twice in an epoch, once from
// each endpoint; the bookkeeping below is idempotent, and a second visit
// that discovers the partner is in fact colored revises the pessimistic
// verdict of the first.
func (g *Graph) visitEdges(ctx *updCtx, v *Node, c model.LocationID, now model.Epoch, reader model.ReaderID, confirmTop model.Tag, confirmParent map[model.Tag]model.Tag) {
	visit := func(e *Edge) {
		other := e.Parent
		if other == v {
			other = e.Child
		}
		otherColor := other.ColorAt(now)

		// Step 3: remove outdated edges. Only edges that predate this
		// epoch can carry a stale color relationship (fresh edges are
		// created same-colored by construction).
		if e.CreatedAt < now && otherColor.Known() && otherColor != c {
			g.recordDrop(e, now, reader, trace.DropColorMismatch)
			ctx.removeEdge(e)
			return
		}
		// Step 3 continued: drops dictated by a special reader's
		// confirmation — the child is itself a confirmed top-level
		// container, or it has a confirmed parent other than e.Parent.
		if confirmTop != model.NoTag {
			if e.Child.Tag == confirmTop {
				g.recordDrop(e, now, reader, trace.DropConfirmation)
				ctx.removeEdge(e)
				return
			}
			if p, ok := confirmParent[e.Child.Tag]; ok && p != e.Parent.Tag {
				g.recordDrop(e, now, reader, trace.DropConfirmation)
				ctx.removeEdge(e)
				return
			}
		}

		// Step 4: update edge statistics, shifting the history exactly
		// once per epoch.
		if e.UpdateTime < now {
			e.History.Shift()
		}
		if otherColor == c {
			e.History.SetRecent(true)
			if confirmParent != nil {
				if p, ok := confirmParent[e.Child.Tag]; ok && p == e.Parent.Tag {
					if g.rec != nil && e.Child.ConfirmedEdge != e {
						g.rec.Record(trace.Record{
							Epoch: now, Tag: e.Child.Tag, Mech: trace.MechConfirmed,
							Loc: c, Other: e.Parent.Tag, Reader: reader,
						})
					}
					e.Child.ConfirmedEdge = e
					e.Child.ConfirmedAt = now
					e.Child.Conflicts = 0
				}
			}
			if e.Child.ConfirmedEdge == e {
				if e.conflictedAt == now { // revise the earlier one-sided verdict
					e.Child.Conflicts--
					e.conflictedAt = model.EpochNone
				}
				if e.betaOneAt == now {
					e.Child.BetaOne--
					e.betaOneAt = model.EpochNone
				}
				if e.UpdateTime < now {
					e.Child.BetaEither++
				}
			}
		} else {
			e.History.SetRecent(false)
			if e.Child.ConfirmedEdge == e {
				if e.conflictedAt != now {
					e.Child.Conflicts++
					e.conflictedAt = now
				}
				if e.UpdateTime < now {
					e.Child.BetaEither++
				}
				if e.betaOneAt != now {
					e.Child.BetaOne++
					e.betaOneAt = now
				}
			}
		}
		e.UpdateTime = now
	}
	for _, e := range v.parents {
		visit(e)
	}
	for _, e := range v.children {
		visit(e)
	}
}

// recordDrop records a step-3 edge removal when tracing is enabled.
func (g *Graph) recordDrop(e *Edge, now model.Epoch, reader model.ReaderID, reason int32) {
	if g.rec == nil {
		return
	}
	g.rec.Record(trace.Record{
		Epoch: now, Tag: e.Child.Tag, Mech: trace.MechEdgeDropped,
		Loc: model.LocationNone, Other: e.Parent.Tag, Reader: reader, Aux: reason,
	})
}
