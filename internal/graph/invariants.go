package graph

import (
	"fmt"

	"spire/internal/model"
)

// CheckInvariants verifies the structural invariants of the graph model
// after all reader sets of epoch now have been applied. It is used by
// tests and by the property-based suite; it is O(V+E).
//
// Invariants checked:
//   - adjacency maps are mutually consistent and the edge count matches;
//   - a parent edge never points from a lower to a higher node within the
//     same... more precisely, Parent.Level > Child.Level always (edges may
//     cross layers but always point downward);
//   - no edge connects two nodes observed in different locations in epoch
//     now (they must have been removed in step 3);
//   - a node's confirmed edge, if set, is one of its parent edges;
//   - every node observed in epoch now appears exactly once in the colored
//     index under its level and color;
//   - every node belongs to a registered component whose member list
//     contains it, both endpoints of every edge share a component, and a
//     non-stale component's id is the smallest member tag.
func (g *Graph) CheckInvariants(now model.Epoch) error {
	edgeSeen := 0
	for tag, n := range g.nodes {
		if n.Tag != tag {
			return fmt.Errorf("graph: node keyed %d has tag %d", tag, n.Tag)
		}
		for ptag, e := range n.parents {
			if e.Child != n {
				return fmt.Errorf("graph: parent edge of %d has child %d", tag, e.Child.Tag)
			}
			if e.Parent.Tag != ptag {
				return fmt.Errorf("graph: parent edge of %d keyed %d but parent is %d", tag, ptag, e.Parent.Tag)
			}
			if back, ok := e.Parent.children[tag]; !ok || back != e {
				return fmt.Errorf("graph: edge %d→%d missing from parent's children", ptag, tag)
			}
			if e.Parent.Level <= e.Child.Level {
				return fmt.Errorf("graph: edge %d→%d does not point downward (%v→%v)",
					ptag, tag, e.Parent.Level, e.Child.Level)
			}
			pc, cc := e.Parent.ColorAt(now), e.Child.ColorAt(now)
			if pc.Known() && cc.Known() && pc != cc {
				return fmt.Errorf("graph: edge %d→%d connects colors %v and %v at epoch %d",
					ptag, tag, pc, cc, now)
			}
			edgeSeen++
		}
		for ctag, e := range n.children {
			if e.Parent != n || e.Child.Tag != ctag {
				return fmt.Errorf("graph: child edge %d→%d inconsistent", tag, ctag)
			}
			if back, ok := e.Child.parents[tag]; !ok || back != e {
				return fmt.Errorf("graph: edge %d→%d missing from child's parents", tag, ctag)
			}
		}
		if ce := n.ConfirmedEdge; ce != nil {
			if got, ok := n.parents[ce.Parent.Tag]; !ok || got != ce {
				return fmt.Errorf("graph: node %d confirmed edge is not among its parents", tag)
			}
		}
		if n.Colored(now) && !n.RecentColor.Known() {
			return fmt.Errorf("graph: node %d colored with sentinel color %v", tag, n.RecentColor)
		}
	}
	if edgeSeen != g.edges {
		return fmt.Errorf("graph: edge count %d but %d edges found", g.edges, edgeSeen)
	}
	if g.coloredAt == now {
		counted := make(map[model.Tag]int)
		for lvl := range g.colored {
			for color, list := range g.colored[lvl] {
				for _, n := range list {
					counted[n.Tag]++
					if int(n.Level) != lvl || n.RecentColor != model.LocationID(color) || !n.Colored(now) {
						return fmt.Errorf("graph: node %d misfiled in colored index (%v/%v)", n.Tag, n.Level, color)
					}
				}
			}
		}
		for _, n := range g.nodes {
			want := 0
			if n.Colored(now) {
				want = 1
			}
			if counted[n.Tag] != want {
				return fmt.Errorf("graph: node %d appears %d times in colored index, want %d",
					n.Tag, counted[n.Tag], want)
			}
		}
	}
	if err := g.checkComponentInvariants(); err != nil {
		return err
	}
	return nil
}

// checkComponentInvariants validates the component partition. Stale
// components may be too coarse (their member lists hold nodes that have
// since been reassigned or removed), so membership is only enforced for
// the node's own comp pointer; edges must never cross components even
// when stale, since staleness only ever defers a split.
func (g *Graph) checkComponentInvariants() error {
	for tag, n := range g.nodes {
		c := n.comp
		if c == nil {
			return fmt.Errorf("graph: node %d has nil component", tag)
		}
		if _, ok := g.comps[c]; !ok {
			return fmt.Errorf("graph: node %d points at unregistered component %d", tag, c.id)
		}
		found := false
		for _, m := range c.members {
			if m == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("graph: node %d missing from member list of component %d", tag, c.id)
		}
		for _, e := range n.parents {
			if e.Parent.comp != e.Child.comp {
				return fmt.Errorf("graph: edge %d→%d crosses components %d and %d",
					e.Parent.Tag, e.Child.Tag, e.Parent.comp.id, e.Child.comp.id)
			}
		}
	}
	for c := range g.comps {
		if c.stale {
			continue
		}
		min := model.Tag(0)
		live := 0
		for _, m := range c.members {
			if m.comp != c {
				return fmt.Errorf("graph: non-stale component %d lists foreign node %d", c.id, m.Tag)
			}
			if live == 0 || m.Tag < min {
				min = m.Tag
			}
			live++
		}
		if live == 0 {
			return fmt.Errorf("graph: registered component %d has no members", c.id)
		}
		if c.id != min {
			return fmt.Errorf("graph: component id %d but smallest member is %d", c.id, min)
		}
	}
	return nil
}
