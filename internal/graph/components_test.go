package graph

import (
	"math/rand"
	"testing"

	"spire/internal/epc"
	"spire/internal/model"
)

func TestComponentsSingletonAndUnion(t *testing.T) {
	g := mustGraph(t)
	seq := mustSeq(t)
	p, _ := seq.Next(model.LevelPallet)
	c1, _ := seq.Next(model.LevelCase)
	c2, _ := seq.Next(model.LevelCase)

	r := &model.Reader{ID: 1, Location: 7}
	if err := g.Update(r, []model.Tag{p}, 1); err != nil {
		t.Fatal(err)
	}
	comps := g.Components(1)
	if len(comps) != 1 || comps[0].Len() != 1 || comps[0].ID() != p {
		t.Fatalf("singleton component wrong: %+v", comps)
	}
	if got := g.Node(p).Component(); got != comps[0] {
		t.Fatalf("Node.Component mismatch")
	}

	// Reading the cases alongside the pallet links all three into one
	// component whose id is the smallest member tag.
	if err := g.Update(r, []model.Tag{p, c1, c2}, 2); err != nil {
		t.Fatal(err)
	}
	comps = g.Components(2)
	if len(comps) != 1 {
		t.Fatalf("want 1 merged component, got %d", len(comps))
	}
	c := comps[0]
	if c.Len() != 3 {
		t.Fatalf("merged component has %d members, want 3", c.Len())
	}
	want := min(p, min(c1, c2))
	if c.ID() != want {
		t.Fatalf("component id %d, want min member tag %d", c.ID(), want)
	}
	if c.DirtyAt() != 2 {
		t.Fatalf("component dirtyAt %d, want 2", c.DirtyAt())
	}
	if err := g.CheckInvariants(2); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsDirtyOnRead(t *testing.T) {
	g := mustGraph(t)
	seq := mustSeq(t)
	p, _ := seq.Next(model.LevelPallet)
	r := &model.Reader{ID: 1, Location: 7}
	if err := g.Update(r, []model.Tag{p}, 1); err != nil {
		t.Fatal(err)
	}
	c := g.Node(p).Component()
	if c.DirtyAt() != 1 {
		t.Fatalf("dirtyAt %d after read at 1", c.DirtyAt())
	}
	// No reads: the component stays clean at its old epoch.
	if got := g.Node(p).Component(); got != c || c.DirtyAt() != 1 {
		t.Fatalf("untouched component changed: dirtyAt %d", c.DirtyAt())
	}
	// A re-read (even same color) dirties it again.
	if err := g.Update(r, []model.Tag{p}, 9); err != nil {
		t.Fatal(err)
	}
	if c.DirtyAt() != 9 {
		t.Fatalf("dirtyAt %d after re-read at 9, want 9", c.DirtyAt())
	}
}

func TestComponentsSplitOnEdgeRemoval(t *testing.T) {
	g := mustGraph(t)
	seq := mustSeq(t)
	p, _ := seq.Next(model.LevelPallet)
	c1, _ := seq.Next(model.LevelCase)
	c2, _ := seq.Next(model.LevelCase)
	r := &model.Reader{ID: 1, Location: 7}
	if err := g.Update(r, []model.Tag{p, c1, c2}, 1); err != nil {
		t.Fatal(err)
	}
	if n := len(g.Components(1)); n != 1 {
		t.Fatalf("want 1 component, got %d", n)
	}

	// Dropping both edges of c2 splits it off; the rebuild happens lazily
	// at the next Components call and stamps both halves dirty.
	n2 := g.Node(c2)
	var edges []*Edge
	n2.VisitParents(func(e *Edge) { edges = append(edges, e) })
	n2.VisitChildren(func(e *Edge) { edges = append(edges, e) })
	for _, e := range edges {
		g.RemoveEdge(e)
	}
	comps := g.Components(5)
	if len(comps) != 2 {
		t.Fatalf("want 2 components after split, got %d", len(comps))
	}
	for _, c := range comps {
		if c.DirtyAt() != 5 {
			t.Fatalf("rebuilt component %d dirtyAt %d, want rebuild epoch 5", c.ID(), c.DirtyAt())
		}
	}
	if g.Node(c2).Component().Len() != 1 {
		t.Fatalf("split-off node not a singleton")
	}
	if err := g.CheckInvariants(5); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsNodeRemoval(t *testing.T) {
	g := mustGraph(t)
	seq := mustSeq(t)
	p, _ := seq.Next(model.LevelPallet)
	c1, _ := seq.Next(model.LevelCase)
	r := &model.Reader{ID: 1, Location: 7}
	if err := g.Update(r, []model.Tag{p, c1}, 1); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(p)
	comps := g.Components(3)
	if len(comps) != 1 || comps[0].ID() != c1 || comps[0].Len() != 1 {
		t.Fatalf("after removing %d want singleton %d, got %+v", p, c1, comps)
	}
	if err := g.CheckInvariants(3); err != nil {
		t.Fatal(err)
	}
	// Removing the last node leaves an empty partition.
	g.RemoveNode(c1)
	if comps := g.Components(4); len(comps) != 0 {
		t.Fatalf("want empty partition, got %d components", len(comps))
	}
}

func TestComponentsSortedAndStableIDs(t *testing.T) {
	g := mustGraph(t)
	seq := mustSeq(t)
	r1 := &model.Reader{ID: 1, Location: 1}
	r2 := &model.Reader{ID: 2, Location: 2}
	var g1, g2 []model.Tag
	p1, _ := seq.Next(model.LevelPallet)
	p2, _ := seq.Next(model.LevelPallet)
	for i := 0; i < 3; i++ {
		c, _ := seq.Next(model.LevelCase)
		g1 = append(g1, c)
		c2, _ := seq.Next(model.LevelCase)
		g2 = append(g2, c2)
	}
	g1 = append(g1, p1)
	g2 = append(g2, p2)
	if err := g.Update(r1, g1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Update(r2, g2, 1); err != nil {
		t.Fatal(err)
	}
	comps := g.Components(1)
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %d", len(comps))
	}
	if !(comps[0].ID() < comps[1].ID()) {
		t.Fatalf("components not sorted by id: %d, %d", comps[0].ID(), comps[1].ID())
	}
	before := []model.Tag{comps[0].ID(), comps[1].ID()}
	// Re-reading the same sets changes nothing structural: ids stable.
	if err := g.Update(r1, g1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Update(r2, g2, 2); err != nil {
		t.Fatal(err)
	}
	comps = g.Components(2)
	if comps[0].ID() != before[0] || comps[1].ID() != before[1] {
		t.Fatalf("component ids drifted: %v -> [%d %d]", before, comps[0].ID(), comps[1].ID())
	}
}

// TestComponentsRandomizedInvariant drives a random mutation mix and
// validates the partition via CheckInvariants plus an independent BFS
// count after every epoch.
func TestComponentsRandomizedInvariant(t *testing.T) {
	g := mustGraph(t)
	seq := mustSeq(t)
	rng := rand.New(rand.NewSource(17))
	var pool []model.Tag
	for i := 0; i < 8; i++ {
		p, _ := seq.Next(model.LevelPallet)
		pool = append(pool, p)
		for j := 0; j < 3; j++ {
			c, _ := seq.Next(model.LevelCase)
			pool = append(pool, c)
		}
	}
	readers := []*model.Reader{
		{ID: 1, Location: 1},
		{ID: 2, Location: 2},
		{ID: 3, Location: 3},
	}
	for now := model.Epoch(1); now <= 60; now++ {
		// Each tag is read by at most one reader per epoch (deduplication
		// guarantees this upstream of the graph in the real pipeline).
		sets := make([][]model.Tag, len(readers))
		for _, tg := range pool {
			if pick := rng.Intn(len(readers) + 1); pick < len(readers) {
				sets[pick] = append(sets[pick], tg)
			}
		}
		for i, r := range readers {
			if err := g.Update(r, sets[i], now); err != nil {
				t.Fatal(err)
			}
		}
		if now%7 == 0 && g.Len() > 0 {
			g.RemoveNode(pool[rng.Intn(len(pool))])
		}
		comps := g.Components(now)
		if err := g.CheckInvariants(now); err != nil {
			t.Fatalf("epoch %d: %v", now, err)
		}
		total := 0
		seen := make(map[model.Tag]bool)
		for _, c := range comps {
			total += c.Len()
			for _, m := range c.Members() {
				if seen[m.Tag] {
					t.Fatalf("epoch %d: node %d in two components", now, m.Tag)
				}
				seen[m.Tag] = true
			}
		}
		if total != g.Len() {
			t.Fatalf("epoch %d: partition covers %d of %d nodes", now, total, g.Len())
		}
	}
}

// mustGraph and mustSeq keep the component tests terse.
func mustGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustSeq(t *testing.T) *epc.Sequencer {
	t.Helper()
	seq, err := epc.NewSequencer(3)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}
