package graph

import (
	"cmp"
	"slices"

	"spire/internal/model"
)

// Connected-component tracking.
//
// The containment graph naturally decomposes into independent connected
// components: every edge is created between two same-colored nodes, so no
// path ever crosses a component boundary, and the inference sweep of one
// component reads and writes nothing of another. The inference package
// exploits that independence twice — dirty components fan out across a
// worker pool, and clean settled components are served from cached verdict
// slabs — which makes component identity part of the graph's contract.
//
// Identity is maintained incrementally where cheap and lazily where not:
//
//   - AddEdge unions the two endpoint components (smaller member list
//     merged into the larger, the union keeping the smaller id);
//   - edge or node removal only ever *splits* a component, which cannot be
//     resolved locally, so the affected component is marked stale and
//     repartitioned by BFS on the next Components call;
//   - a component's id is the smallest member tag — unique across the
//     partition, and stable for untouched components so per-component
//     caches keyed by id survive across epochs.
//
// Dirtiness: dirtyAt is the last epoch in which any member was read
// (which covers coloring, color changes, and node creation — see
// update.go step 1) or the component gained an edge; removals (retire,
// prune, color-mismatch drop) go through the stale path, and the rebuild
// stamps every resulting component dirty at the rebuild epoch. A consumer
// holding per-component state from epoch e may keep it exactly while
// DirtyAt() <= e.

// Component is one connected component of the graph. It is owned and
// mutated by the graph; consumers treat it as read-only.
type Component struct {
	id      model.Tag
	members []*Node
	dirtyAt model.Epoch
	stale   bool
}

// ID returns the component's identity: the smallest member tag. Ids are
// unique across the live partition. An id is stable while the component
// is untouched; merges and rebuilds may retire or reuse it, but any such
// change also advances DirtyAt.
func (c *Component) ID() model.Tag { return c.id }

// Len returns the number of member nodes.
func (c *Component) Len() int { return len(c.members) }

// Members returns the member nodes in unspecified order. The slice is
// owned by the graph; do not mutate. Stale components (pending rebuild)
// are never handed out by Components, so every listed node belongs to
// the component.
func (c *Component) Members() []*Node { return c.members }

// DirtyAt returns the epoch of the last dirtying touch (model.EpochNone
// for a never-touched component).
func (c *Component) DirtyAt() model.Epoch { return c.dirtyAt }

// touch marks the component dirty as of epoch now.
func (c *Component) touch(now model.Epoch) {
	if c.dirtyAt < now {
		c.dirtyAt = now
	}
}

// Component returns the connected component containing n. Never nil for a
// node in a graph; the result may be stale (pending rebuild) until the
// next Components call.
func (n *Node) Component() *Component { return n.comp }

// newComponent registers a fresh singleton component for n.
func (g *Graph) newComponent(n *Node) {
	c := &Component{id: n.Tag, members: []*Node{n}, dirtyAt: model.EpochNone}
	n.comp = c
	g.comps[c] = struct{}{}
	g.compOrderOK = false
}

// unionComponents merges the components of two nodes being connected by a
// new edge at epoch now, and marks the union dirty.
func (g *Graph) unionComponents(a, b *Component, now model.Epoch) {
	if a == b {
		a.touch(now)
		return
	}
	if len(a.members) < len(b.members) {
		a, b = b, a
	}
	for _, n := range b.members {
		n.comp = a
	}
	a.members = append(a.members, b.members...)
	if b.id < a.id {
		a.id = b.id
	}
	if b.dirtyAt > a.dirtyAt {
		a.dirtyAt = b.dirtyAt
	}
	a.stale = a.stale || b.stale
	a.touch(now)
	delete(g.comps, b)
	g.compOrderOK = false
}

// markStale queues c for repartitioning on the next Components call.
// Until then the component may be too coarse (a pending split), never too
// fine — no live edge ever crosses component boundaries.
func (g *Graph) markStale(c *Component) {
	if c != nil && !c.stale {
		c.stale = true
		g.anyStale = true
	}
}

// Components returns the live connected components sorted by id,
// repartitioning any components made stale by edge or node removals
// since the last call. Every component produced by a rebuild is stamped
// dirty at now. The returned slice and the components are owned by the
// graph and valid until the next mutation.
func (g *Graph) Components(now model.Epoch) []*Component {
	if g.anyStale {
		g.staleScratch = g.staleScratch[:0]
		for c := range g.comps {
			if c.stale {
				g.staleScratch = append(g.staleScratch, c)
			}
		}
		for _, c := range g.staleScratch {
			g.rebuildComponent(c, now)
		}
		g.anyStale = false
	}
	if !g.compOrderOK {
		g.compOrder = g.compOrder[:0]
		for c := range g.comps {
			g.compOrder = append(g.compOrder, c)
		}
		slices.SortFunc(g.compOrder, func(a, b *Component) int { return cmp.Compare(a.id, b.id) })
		g.compOrderOK = true
	}
	return g.compOrder
}

// rebuildComponent repartitions a stale component by BFS over its
// surviving members. Members removed from the graph (comp == nil) or
// already claimed by a newer component are skipped.
func (g *Graph) rebuildComponent(c *Component, now model.Epoch) {
	delete(g.comps, c)
	g.compOrderOK = false
	g.compStamp++
	stamp := g.compStamp
	for _, seed := range c.members {
		if seed.comp != c || seed.compSeen == stamp {
			continue
		}
		nc := &Component{id: seed.Tag, dirtyAt: now}
		seed.compSeen = stamp
		nc.members = append(nc.members, seed)
		// The members slice doubles as the BFS queue.
		for qi := 0; qi < len(nc.members); qi++ {
			m := nc.members[qi]
			if m.Tag < nc.id {
				nc.id = m.Tag
			}
			m.comp = nc
			m.VisitParents(func(e *Edge) {
				if p := e.Parent; p.compSeen != stamp {
					p.compSeen = stamp
					nc.members = append(nc.members, p)
				}
			})
			m.VisitChildren(func(e *Edge) {
				if ch := e.Child; ch.compSeen != stamp {
					ch.compSeen = stamp
					nc.members = append(nc.members, ch)
				}
			})
		}
		g.comps[nc] = struct{}{}
	}
}
