package graph

import (
	"fmt"
	"slices"

	"spire/internal/checkpoint"
	"spire/internal/model"
)

// Snapshot serialization of the time-varying colored graph.
//
// Everything cumulative is captured: node memories (recent color, seen-at,
// confirmation state, adaptive-β counters) and edge evidence
// (recent_colocations bits, update/creation epochs, the idempotency
// stamps). The per-epoch colored index is scratch — beginEpoch rebuilds it
// lazily on the first post-restore update — and the inference scratch
// slots (InferProb/InferStamp) are deliberately NOT serialized: the
// inference pass counter restarts at zero in a new process, so a persisted
// stamp could collide with a fresh pass and leak a stale probability.
// Restored edges carry zeroed scratch, which no pass stamp ever matches.
//
// Nodes and edges are written in sorted tag order so that equal graphs
// always produce identical bytes.

const sectionGraph = "GRPH"

// Minimum encoded sizes, used to validate counts against the remaining
// snapshot body before allocating.
const (
	nodeEncSize = 8 + 1 + 8*8 // tag + level + eight 64-bit fields
	edgeEncSize = 7 * 8       // seven 64-bit fields
)

// EncodeState appends the graph's complete cumulative state to e.
func (g *Graph) EncodeState(e *checkpoint.Encoder) {
	e.Section(sectionGraph)
	e.Uint64(uint64(g.cfg.HistorySize))

	tags := make([]model.Tag, 0, len(g.nodes))
	for t := range g.nodes {
		tags = append(tags, t)
	}
	slices.Sort(tags)

	e.Uint64(uint64(len(tags)))
	for _, t := range tags {
		n := g.nodes[t]
		e.Uint64(uint64(n.Tag))
		e.Uint8(uint8(n.Level))
		e.Int64(int64(n.RecentColor))
		e.Int64(int64(n.SeenAt))
		e.Int64(int64(n.NewColorAt))
		confirmed := model.NoTag
		if n.ConfirmedEdge != nil {
			confirmed = n.ConfirmedEdge.Parent.Tag
		}
		e.Uint64(uint64(confirmed))
		e.Int64(int64(n.ConfirmedAt))
		e.Int64(int64(n.Conflicts))
		e.Int64(int64(n.BetaEither))
		e.Int64(int64(n.BetaOne))
	}

	e.Uint64(uint64(g.edges))
	for _, t := range tags {
		n := g.nodes[t]
		ptags := make([]model.Tag, 0, len(n.parents))
		for p := range n.parents {
			ptags = append(ptags, p)
		}
		slices.Sort(ptags)
		for _, p := range ptags {
			ed := n.parents[p]
			e.Uint64(uint64(ed.Parent.Tag))
			e.Uint64(uint64(ed.Child.Tag))
			e.Uint64(ed.History.bits)
			e.Int64(int64(ed.UpdateTime))
			e.Int64(int64(ed.CreatedAt))
			e.Int64(int64(ed.conflictedAt))
			e.Int64(int64(ed.betaOneAt))
		}
	}
}

// DecodeState reconstructs a graph from d. The returned graph is freshly
// built and fully validated; on any error the caller holds no partially
// restored state.
func DecodeState(d *checkpoint.Decoder) (*Graph, error) {
	d.Section(sectionGraph)
	hist := d.Uint64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if hist < 1 || hist > MaxHistorySize {
		return nil, fmt.Errorf("%w: graph history size %d", checkpoint.ErrCorrupt, hist)
	}
	g, err := New(Config{HistorySize: int(hist)})
	if err != nil {
		return nil, err
	}

	type confirm struct {
		child  model.Tag
		parent model.Tag
	}
	var confirms []confirm
	nNodes := d.Count(nodeEncSize)
	for i := 0; i < nNodes; i++ {
		tag := model.Tag(d.Uint64())
		lvl := model.Level(d.Uint8())
		recent := model.LocationID(d.Int64())
		seenAt := model.Epoch(d.Int64())
		newColorAt := model.Epoch(d.Int64())
		confirmedParent := model.Tag(d.Uint64())
		confirmedAt := model.Epoch(d.Int64())
		conflicts := d.Int64()
		betaEither := d.Int64()
		betaOne := d.Int64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if tag == model.NoTag {
			return nil, fmt.Errorf("%w: graph node %d has zero tag", checkpoint.ErrCorrupt, i)
		}
		if !lvl.Valid() {
			return nil, fmt.Errorf("%w: graph node %d has invalid level %d", checkpoint.ErrCorrupt, tag, lvl)
		}
		if g.nodes[tag] != nil {
			return nil, fmt.Errorf("%w: duplicate graph node %d", checkpoint.ErrCorrupt, tag)
		}
		n := g.addNode(tag, lvl)
		n.RecentColor = recent
		n.SeenAt = seenAt
		n.NewColorAt = newColorAt
		n.ConfirmedAt = confirmedAt
		n.Conflicts = int(conflicts)
		n.BetaEither = int(betaEither)
		n.BetaOne = int(betaOne)
		if confirmedParent != model.NoTag {
			confirms = append(confirms, confirm{child: tag, parent: confirmedParent})
		}
	}

	nEdges := d.Count(edgeEncSize)
	for i := 0; i < nEdges; i++ {
		ptag := model.Tag(d.Uint64())
		ctag := model.Tag(d.Uint64())
		bits := d.Uint64()
		updateTime := model.Epoch(d.Int64())
		createdAt := model.Epoch(d.Int64())
		conflictedAt := model.Epoch(d.Int64())
		betaOneAt := model.Epoch(d.Int64())
		if d.Err() != nil {
			return nil, d.Err()
		}
		parent, child := g.nodes[ptag], g.nodes[ctag]
		if parent == nil || child == nil {
			return nil, fmt.Errorf("%w: graph edge %d→%d references missing node", checkpoint.ErrCorrupt, ptag, ctag)
		}
		if parent.Level <= child.Level {
			return nil, fmt.Errorf("%w: graph edge %d→%d does not point downward", checkpoint.ErrCorrupt, ptag, ctag)
		}
		if child.parents[ptag] != nil {
			return nil, fmt.Errorf("%w: duplicate graph edge %d→%d", checkpoint.ErrCorrupt, ptag, ctag)
		}
		if hist < 64 && bits>>hist != 0 {
			return nil, fmt.Errorf("%w: graph edge %d→%d history bits exceed size %d", checkpoint.ErrCorrupt, ptag, ctag, hist)
		}
		ed := g.AddEdge(parent, child, createdAt)
		ed.History.bits = bits
		ed.UpdateTime = updateTime
		ed.conflictedAt = conflictedAt
		ed.betaOneAt = betaOneAt
	}

	for _, c := range confirms {
		ed := g.nodes[c.child].parents[c.parent]
		if ed == nil {
			return nil, fmt.Errorf("%w: node %d confirmed parent %d has no edge", checkpoint.ErrCorrupt, c.child, c.parent)
		}
		g.nodes[c.child].ConfirmedEdge = ed
	}

	if err := g.CheckInvariants(model.EpochNone); err != nil {
		return nil, fmt.Errorf("%w: restored graph: %v", checkpoint.ErrCorrupt, err)
	}
	return g, nil
}
