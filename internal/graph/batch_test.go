package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"spire/internal/checkpoint"
	"spire/internal/epc"
	"spire/internal/model"
)

// batchScenario is a deterministic random world for differential tests:
// a reader set with shared locations (color collisions), confirming belt
// readers, and a tag population that wanders between locations so edges
// form, conflict, and drop.
type batchScenario struct {
	rng     *rand.Rand
	readers []*model.Reader
	tags    []model.Tag // mixed levels
	at      []int       // tag index -> location index into locs
	locs    []model.LocationID
}

func newBatchScenario(seed int64) *batchScenario {
	rng := rand.New(rand.NewSource(seed))
	s := &batchScenario{rng: rng}
	// Locations 0..5; readers 1..8. Readers 7 and 8 overlap locations of
	// readers 1 and 2 so color collisions occur; reader 3 is a confirming
	// belt for cases.
	s.locs = []model.LocationID{0, 1, 2, 3, 4, 5}
	mk := func(id model.ReaderID, loc model.LocationID) *model.Reader {
		return &model.Reader{ID: id, Location: loc, Period: 1, ReadRate: 1}
	}
	s.readers = []*model.Reader{
		mk(1, 0), mk(2, 1), mk(3, 2), mk(4, 3), mk(5, 4), mk(6, 5), mk(7, 0), mk(8, 1),
	}
	s.readers[2].Confirming = true
	s.readers[2].ConfirmLevel = model.LevelCase
	seq, err := epc.NewSequencer(7)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 8; i++ {
		t, _ := seq.Next(model.LevelPallet)
		s.tags = append(s.tags, t)
	}
	for i := 0; i < 16; i++ {
		t, _ := seq.Next(model.LevelCase)
		s.tags = append(s.tags, t)
	}
	for i := 0; i < 40; i++ {
		t, _ := seq.Next(model.LevelItem)
		s.tags = append(s.tags, t)
	}
	s.at = make([]int, len(s.tags))
	for i := range s.at {
		s.at[i] = rng.Intn(len(s.locs))
	}
	return s
}

// step moves some tags and produces one epoch's batch with its aligned
// reader slice: every reader whose location holds tags reads them (with
// read-rate dropout), producing overlap when two readers share a
// location.
func (s *batchScenario) step(now model.Epoch) (*model.Batch, []*model.Reader) {
	for i := range s.at {
		if s.rng.Intn(5) == 0 {
			s.at[i] = s.rng.Intn(len(s.locs))
		}
	}
	b := model.NewBatch(now)
	var readers []*model.Reader
	for _, r := range s.readers {
		if s.rng.Intn(10) == 0 {
			continue // reader offline this epoch
		}
		b.BeginReader(r.ID)
		readers = append(readers, r)
		for i, t := range s.tags {
			if s.locs[s.at[i]] == r.Location && s.rng.Intn(10) != 0 {
				b.Append(t)
			}
		}
	}
	return b, readers
}

func encodeGraph(g *Graph) []byte {
	var buf bytes.Buffer
	e := checkpoint.NewEncoder()
	g.EncodeState(e)
	if err := e.Flush(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// applySerial is the reference: Update per group in slice order.
func applySerial(t *testing.T, g *Graph, b *model.Batch, readers []*model.Reader) {
	t.Helper()
	for i := range b.Groups {
		if err := g.Update(readers[i], b.GroupTags(i), b.Time); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
}

// TestUpdateBatchMatchesSerial differentially pins the reader-group-
// parallel path against the serial Fig. 4 sweep: for worker counts
// {1,2,4,8} the persisted graph bytes, component partition, and
// invariants must match after every epoch.
func TestUpdateBatchMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				ref, err := New(Config{})
				if err != nil {
					t.Fatal(err)
				}
				par, err := New(Config{})
				if err != nil {
					t.Fatal(err)
				}
				scn := newBatchScenario(seed)
				for now := model.Epoch(1); now <= 120; now++ {
					b, readers := scn.step(now)
					applySerial(t, ref, b.Clone(), readers)
					if err := par.UpdateBatch(b, readers, workers); err != nil {
						t.Fatalf("UpdateBatch: %v", err)
					}
					if err := ref.CheckInvariants(now); err != nil {
						t.Fatalf("seed %d epoch %d: reference invariants: %v", seed, now, err)
					}
					if err := par.CheckInvariants(now); err != nil {
						t.Fatalf("seed %d epoch %d: batch invariants: %v", seed, now, err)
					}
					if !bytes.Equal(encodeGraph(ref), encodeGraph(par)) {
						t.Fatalf("seed %d epoch %d: graph state diverged", seed, now)
					}
					rc, pc := ref.Components(now), par.Components(now)
					if len(rc) != len(pc) {
						t.Fatalf("seed %d epoch %d: %d vs %d components", seed, now, len(rc), len(pc))
					}
					for i := range rc {
						if rc[i].ID() != pc[i].ID() || rc[i].Len() != pc[i].Len() || rc[i].DirtyAt() != pc[i].DirtyAt() {
							t.Fatalf("seed %d epoch %d: component %d diverged: (%d,%d,%d) vs (%d,%d,%d)",
								seed, now, i, rc[i].ID(), rc[i].Len(), rc[i].DirtyAt(),
								pc[i].ID(), pc[i].Len(), pc[i].DirtyAt())
						}
					}
					if ref.EdgeCount() != par.EdgeCount() || ref.Len() != par.Len() {
						t.Fatalf("seed %d epoch %d: size diverged", seed, now)
					}
				}
			}
		})
	}
}

// TestUpdateBatchRetirement interleaves node removal (the exit-retirement
// path) with batched updates, exercising free-list recycling and stale
// component rebuilds under the deferred-commit protocol.
func TestUpdateBatchRetirement(t *testing.T) {
	ref, _ := New(Config{})
	par, _ := New(Config{})
	scn := newBatchScenario(99)
	for now := model.Epoch(1); now <= 150; now++ {
		b, readers := scn.step(now)
		applySerial(t, ref, b.Clone(), readers)
		if err := par.UpdateBatch(b, readers, 4); err != nil {
			t.Fatalf("UpdateBatch: %v", err)
		}
		if now%7 == 0 {
			victim := scn.tags[scn.rng.Intn(len(scn.tags))]
			ref.RemoveNode(victim)
			par.RemoveNode(victim)
		}
		if !bytes.Equal(encodeGraph(ref), encodeGraph(par)) {
			t.Fatalf("epoch %d: graph state diverged", now)
		}
	}
}

// TestUpdateBatchSkipsNilReaders pins the unknown-reader contract: a nil
// entry skips its group, matching the core path that reports unknown
// readers after the epoch.
func TestUpdateBatchSkipsNilReaders(t *testing.T) {
	g, _ := New(Config{})
	item := epc.MustEncode(epc.Identity{Level: model.LevelItem, Company: 1, Serial: 1})
	b := model.NewBatch(1)
	b.BeginReader(1)
	b.Append(item)
	b.BeginReader(2)
	b.Append(item)
	readers := []*model.Reader{
		nil,
		{ID: 2, Location: 3, Period: 1},
	}
	if err := g.UpdateBatch(b, readers, 4); err != nil {
		t.Fatalf("UpdateBatch: %v", err)
	}
	n := g.Node(item)
	if n == nil || n.RecentColor != 3 {
		t.Fatalf("known reader's group must apply: %+v", n)
	}
}

// TestUpdateBatchInvalidTagFallsBackToSerial pins the error semantics: a
// tag without a valid packaging level must produce the serial path's
// mid-stream error, with earlier groups already applied.
func TestUpdateBatchInvalidTagFallsBackToSerial(t *testing.T) {
	g, _ := New(Config{})
	good := epc.MustEncode(epc.Identity{Level: model.LevelItem, Company: 1, Serial: 2})
	b := model.NewBatch(1)
	b.BeginReader(1)
	b.Append(good)
	b.BeginReader(2)
	b.Append(model.Tag(0xFFFFFFFFFFFFFFFF)) // level bits = 3: invalid
	readers := []*model.Reader{
		{ID: 1, Location: 0, Period: 1},
		{ID: 2, Location: 1, Period: 1},
	}
	err := g.UpdateBatch(b, readers, 4)
	if err == nil {
		t.Fatal("want error for invalid level")
	}
	if n := g.Node(good); n == nil || !n.Colored(1) {
		t.Fatalf("earlier group must already be applied when the error surfaces: %+v", n)
	}
}
