package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistoryBounds(t *testing.T) {
	for _, bad := range []int{0, -1, 65} {
		if _, err := NewHistory(bad); err == nil {
			t.Errorf("NewHistory(%d) should fail", bad)
		}
	}
	for _, ok := range []int{1, 32, 64} {
		h, err := NewHistory(ok)
		if err != nil {
			t.Errorf("NewHistory(%d): %v", ok, err)
		}
		if h.Size() != ok {
			t.Errorf("Size = %d, want %d", h.Size(), ok)
		}
	}
}

func TestHistoryShiftAndSet(t *testing.T) {
	h, _ := NewHistory(4)
	h.SetRecent(true) // [1]
	h.Shift()         // [_,1]
	h.SetRecent(true) // [1,1]
	h.Shift()         // [_,1,1]
	h.SetRecent(false)
	if !h.Bit(1) || !h.Bit(2) || h.Bit(0) {
		t.Errorf("bits wrong after shifts: %v %v %v", h.Bit(0), h.Bit(1), h.Bit(2))
	}
	if h.Ones() != 2 {
		t.Errorf("Ones = %d, want 2", h.Ones())
	}
	// Bits fall off the end after size shifts.
	for i := 0; i < 4; i++ {
		h.Shift()
	}
	if h.Ones() != 0 {
		t.Errorf("history must expire after %d shifts, Ones = %d", 4, h.Ones())
	}
}

func TestHistoryBitOutOfRange(t *testing.T) {
	h, _ := NewHistory(4)
	h.SetRecent(true)
	if h.Bit(-1) || h.Bit(4) || h.Bit(100) {
		t.Error("out-of-range bits must read false")
	}
}

func TestHistorySize64NoOverflow(t *testing.T) {
	h, _ := NewHistory(64)
	h.SetRecent(true)
	for i := 0; i < 63; i++ {
		h.Shift()
	}
	if !h.Bit(63) {
		t.Error("bit must survive 63 shifts in a size-64 history")
	}
	h.Shift()
	if h.Ones() != 0 {
		t.Error("bit must expire after 64 shifts")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 0)
	for i, v := range w {
		if v != 1 {
			t.Errorf("α=0 weight[%d] = %v, want 1", i, v)
		}
	}
	w = ZipfWeights(3, 1)
	want := []float64{1, 0.5, 1.0 / 3}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("α=1 weight[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestHistoryWeightEquallyWeighted(t *testing.T) {
	h, _ := NewHistory(8)
	w := ZipfWeights(8, 0)
	if got := h.Weight(w); got != 0 {
		t.Errorf("empty history weight = %v, want 0", got)
	}
	h.SetRecent(true)
	h.Shift()
	h.SetRecent(true) // two of eight bits set
	if got, want := h.Weight(w), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("weight = %v, want %v", got, want)
	}
}

func TestHistoryWeightRecency(t *testing.T) {
	// With α>0 a recent bit must weigh more than an old one.
	w := ZipfWeights(8, 1.5)
	recent, _ := NewHistory(8)
	recent.SetRecent(true)
	old, _ := NewHistory(8)
	old.SetRecent(true)
	for i := 0; i < 7; i++ {
		old.Shift()
	}
	if recent.Weight(w) <= old.Weight(w) {
		t.Errorf("recent bit weight %v must exceed old bit weight %v",
			recent.Weight(w), old.Weight(w))
	}
}

func TestHistoryWeightPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Weight with wrong table size must panic")
		}
	}()
	h, _ := NewHistory(8)
	h.Weight(ZipfWeights(4, 0))
}

// Property: Weight is always in [0,1], monotone in set bits, and a full
// history weighs exactly 1.
func TestQuickHistoryWeightBounds(t *testing.T) {
	f := func(bits uint64, alphaQ uint8) bool {
		alpha := float64(alphaQ%40) / 10 // 0.0 .. 3.9
		w := ZipfWeights(32, alpha)
		h, _ := NewHistory(32)
		for i := 0; i < 32; i++ {
			h.SetRecent(bits>>uint(i)&1 == 1)
			if i < 31 {
				h.Shift()
			}
		}
		v := h.Weight(w)
		if v < 0 || v > 1+1e-12 {
			return false
		}
		full, _ := NewHistory(32)
		for i := 0; i < 32; i++ {
			full.SetRecent(true)
			if i < 31 {
				full.Shift()
			}
		}
		return math.Abs(full.Weight(w)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
