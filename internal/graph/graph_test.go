package graph

import (
	"math/rand"
	"testing"

	"spire/internal/epc"
	"spire/internal/model"
)

// Test fixture: locations A(0) = loading dock, B(1) = conveyor belt,
// C(2) = packaging area, mirroring the paper's running example.
const (
	locA = model.LocationID(0)
	locB = model.LocationID(1)
	locC = model.LocationID(2)
)

var (
	dockReader = &model.Reader{ID: 1, Location: locA, Period: 1, ReadRate: 1}
	beltReader = &model.Reader{ID: 2, Location: locB, Period: 1, ReadRate: 1,
		Confirming: true, ConfirmLevel: model.LevelCase}
	packReader = &model.Reader{ID: 3, Location: locC, Period: 1, ReadRate: 1}
)

func tag(t *testing.T, lvl model.Level, serial uint32) model.Tag {
	t.Helper()
	return epc.MustEncode(epc.Identity{Level: lvl, Company: 1, Serial: serial})
}

func newGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(Config{HistorySize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustUpdate(t *testing.T, g *Graph, r *model.Reader, now model.Epoch, tags ...model.Tag) {
	t.Helper()
	if err := g.Update(r, tags, now); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := g.CheckInvariants(now); err != nil {
		t.Fatalf("invariants after update at %d: %v", now, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Config().HistorySize != DefaultHistorySize {
		t.Errorf("default HistorySize = %d, want %d", g.Config().HistorySize, DefaultHistorySize)
	}
	if _, err := New(Config{HistorySize: -3}); err == nil {
		t.Error("negative history size must fail")
	}
	if _, err := New(Config{HistorySize: 100}); err == nil {
		t.Error("oversized history must fail")
	}
}

func TestUpdateCreatesAndColorsNodes(t *testing.T) {
	g := newGraph(t)
	item := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, item)

	n := g.Node(item)
	if n == nil {
		t.Fatal("node not created")
	}
	if n.Level != model.LevelItem {
		t.Errorf("level = %v, want item", n.Level)
	}
	if !n.Colored(1) || n.ColorAt(1) != locA {
		t.Errorf("node must be colored A at epoch 1; got %v", n.ColorAt(1))
	}
	if n.NewColorAt != 1 {
		t.Errorf("first coloring must count as a new color; NewColorAt = %d", n.NewColorAt)
	}
	if n.ColorAt(2) != model.LocationNone {
		t.Error("node must be uncolored in an epoch it was not observed")
	}
	if n.RecentColor != locA || n.SeenAt != 1 {
		t.Error("uncolored node must retain (recent color, seen at)")
	}
}

func TestUpdateErrors(t *testing.T) {
	g := newGraph(t)
	if err := g.Update(nil, nil, 1); err == nil {
		t.Error("nil reader must fail")
	}
	bad := &model.Reader{ID: 9, Location: model.LocationUnknown}
	if err := g.Update(bad, nil, 1); err == nil {
		t.Error("reader without a known location must fail")
	}
	if err := g.Update(dockReader, []model.Tag{model.NoTag}, 1); err == nil {
		t.Error("invalid tag must fail")
	}
}

func TestSameColorReobservationIsNotNew(t *testing.T) {
	g := newGraph(t)
	item := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, item)
	mustUpdate(t, g, dockReader, 5, item)
	if got := g.Node(item).NewColorAt; got != 1 {
		t.Errorf("re-observation at the same location must not be a new color; NewColorAt = %d", got)
	}
	mustUpdate(t, g, beltReader, 6, item)
	if got := g.Node(item).NewColorAt; got != 6 {
		t.Errorf("observation at a different location is a new color; NewColorAt = %d", got)
	}
}

func TestEdgeCreationAdjacentLayers(t *testing.T) {
	g := newGraph(t)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i1 := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, c1, c2, i1)

	n := g.Node(i1)
	if n.NumParents() != 2 {
		t.Fatalf("item must gain a possible-parent edge to each co-located case; got %d", n.NumParents())
	}
	if n.ParentEdge(c1) == nil || n.ParentEdge(c2) == nil {
		t.Error("edges to both cases expected")
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
}

func TestEdgeCreationCrossLayer(t *testing.T) {
	// An item observed with a pallet but no case links directly to the
	// pallet (the paper's layer-crossing flexibility).
	g := newGraph(t)
	p := tag(t, model.LevelPallet, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, p, i)
	if g.Node(i).ParentEdge(p) == nil {
		t.Error("item must link to the pallet when no case is present")
	}
}

func TestEdgeCreationPrefersAdjacentLayer(t *testing.T) {
	g := newGraph(t)
	p := tag(t, model.LevelPallet, 1)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, p, c, i)
	ni := g.Node(i)
	if ni.ParentEdge(c) == nil {
		t.Error("item must link to the case")
	}
	if ni.ParentEdge(p) != nil {
		t.Error("item must not link past the case to the pallet when a case of its color exists")
	}
	if g.Node(c).ParentEdge(p) == nil {
		t.Error("case must link to the pallet")
	}
}

func TestNoEdgesAcrossColors(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, c)
	mustUpdate(t, g, packReader, 1, i)
	if g.EdgeCount() != 0 {
		t.Errorf("nodes in different locations must not be linked; EdgeCount = %d", g.EdgeCount())
	}
}

func TestEdgeRemovalOnColorSplit(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, c, i)
	if g.Node(i).ParentEdge(c) == nil {
		t.Fatal("setup: edge expected")
	}
	// Epoch 2: the case moves to the packaging area, the item stays.
	mustUpdate(t, g, packReader, 2, c)
	mustUpdate(t, g, dockReader, 2, i)
	if g.Node(i).ParentEdge(c) != nil {
		t.Error("edge between differently-colored observed nodes must be removed")
	}
}

func TestEdgeSurvivesWhenPartnerUnobserved(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, c, i)
	mustUpdate(t, g, dockReader, 2, c) // item missed
	e := g.Node(i).ParentEdge(c)
	if e == nil {
		t.Fatal("edge to an unobserved partner must survive (missed reading, not a move)")
	}
	if e.History.Bit(0) {
		t.Error("missed partner must record negative co-location evidence")
	}
	if !e.History.Bit(1) {
		t.Error("the earlier co-location must have shifted to bit 1")
	}
}

func TestCoLocationHistoryAccumulates(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	for e := model.Epoch(1); e <= 5; e++ {
		mustUpdate(t, g, dockReader, e, c, i)
	}
	e := g.Node(i).ParentEdge(c)
	if e.History.Ones() != 5 {
		t.Errorf("five co-located epochs must set five bits; got %d", e.History.Ones())
	}
}

func TestConfirmingReaderSetsParentAndPrunes(t *testing.T) {
	// The Fig. 3(b) scenario: cases 2 and 3 with item 4 observed together
	// at the dock (ambiguous), then case 2 is scanned alone with item 4 on
	// the belt, confirming case 2 as item 4's container and case 2 as a
	// top-level container.
	g := newGraph(t)
	pallet1 := tag(t, model.LevelPallet, 1)
	case2 := tag(t, model.LevelCase, 2)
	case3 := tag(t, model.LevelCase, 3)
	item4 := tag(t, model.LevelItem, 4)
	mustUpdate(t, g, dockReader, 1, pallet1, case2, case3, item4)

	n4 := g.Node(item4)
	if n4.NumParents() != 2 {
		t.Fatalf("item 4 must start with 2 possible parents, has %d", n4.NumParents())
	}
	// Belt scan: case 2 and item 4 only.
	mustUpdate(t, g, beltReader, 2, case2, item4)

	if g.Node(case2).NumParents() != 0 {
		t.Error("confirmed top-level container must lose its parent edges")
	}
	if n4.ParentEdge(case3) != nil {
		t.Error("item 4's edge to case 3 must be dropped after confirmation")
	}
	e := n4.ParentEdge(case2)
	if e == nil {
		t.Fatal("item 4 must keep its edge to case 2")
	}
	if n4.ConfirmedEdge != e {
		t.Error("case 2 must be item 4's confirmed parent")
	}
	if n4.ConfirmedAt != 2 || n4.Conflicts != 0 {
		t.Errorf("confirmation bookkeeping: at %d conflicts %d", n4.ConfirmedAt, n4.Conflicts)
	}
	if !e.Confirmed() {
		t.Error("Edge.Confirmed must report true for the confirmed edge")
	}
}

func TestConfirmingReaderAmbiguousGroupDoesNothing(t *testing.T) {
	// Two cases on the belt at once: the "one at a time" premise is
	// violated, so nothing may be confirmed.
	g := newGraph(t)
	case1 := tag(t, model.LevelCase, 1)
	case2 := tag(t, model.LevelCase, 2)
	item := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, case1, case2, item)
	if g.Node(item).ConfirmedEdge != nil {
		t.Error("no confirmation with two candidate containers")
	}
}

func TestConflictsCountAfterConfirmation(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c, i) // confirm c contains i
	// Case read alone twice: each is a conflicting observation.
	mustUpdate(t, g, dockReader, 2, c)
	mustUpdate(t, g, dockReader, 3, c)
	n := g.Node(i)
	if n.Conflicts != 2 {
		t.Errorf("Conflicts = %d, want 2", n.Conflicts)
	}
	// Reading both together again is not a conflict.
	mustUpdate(t, g, dockReader, 4, c, i)
	if n.Conflicts != 2 {
		t.Errorf("Conflicts after co-observation = %d, want 2", n.Conflicts)
	}
}

func TestConflictRevisedWhenPartnerColoredLater(t *testing.T) {
	// Within one epoch, the case is processed by one reader before the
	// item is processed by another reader at the same location (e.g. two
	// readers covering one area). The pessimistic conflict recorded on
	// the first visit must be revised on the second.
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c, i) // confirm
	belt2 := &model.Reader{ID: 7, Location: locB, Period: 1}
	mustUpdate(t, g, beltReader, 2, c)
	mustUpdate(t, g, belt2, 2, i)
	n := g.Node(i)
	if n.Conflicts != 0 {
		t.Errorf("Conflicts = %d, want 0 (revised on second visit)", n.Conflicts)
	}
	e := n.ParentEdge(c)
	if !e.History.Bit(0) {
		t.Error("co-location bit must be set once both endpoints are colored")
	}
	if n.BetaEither != 2 || n.BetaOne != 0 {
		t.Errorf("beta counters = either %d one %d, want 2, 0", n.BetaEither, n.BetaOne)
	}
}

func TestAdaptiveBetaCounters(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c, i) // confirm; both read
	mustUpdate(t, g, dockReader, 2, c)    // one read
	mustUpdate(t, g, dockReader, 3, c, i) // both read
	n := g.Node(i)
	if n.BetaEither != 3 || n.BetaOne != 1 {
		t.Fatalf("beta counters = either %d one %d, want 3, 1", n.BetaEither, n.BetaOne)
	}
	if got, want := n.AdaptiveBeta(0.4), 1.0/3; got != want {
		t.Errorf("AdaptiveBeta = %v, want %v", got, want)
	}
	fresh := &Node{}
	if got := fresh.AdaptiveBeta(0.4); got != 0.4 {
		t.Errorf("AdaptiveBeta fallback = %v, want 0.4", got)
	}
}

func TestRemoveNode(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	i2 := tag(t, model.LevelItem, 2)
	mustUpdate(t, g, dockReader, 1, c, i1, i2)
	if g.Len() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("setup: %d nodes %d edges", g.Len(), g.EdgeCount())
	}
	g.RemoveNode(c)
	if g.Len() != 2 || g.EdgeCount() != 0 {
		t.Errorf("after removal: %d nodes %d edges, want 2, 0", g.Len(), g.EdgeCount())
	}
	if err := g.CheckInvariants(1); err != nil {
		t.Errorf("invariants: %v", err)
	}
	g.RemoveNode(c) // idempotent
	if len(g.ColoredNodes(model.LevelCase, locA, 1)) != 0 {
		t.Error("removed node must leave the colored index")
	}
}

func TestColoredIndexResetsAcrossEpochs(t *testing.T) {
	g := newGraph(t)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, i)
	if len(g.ColoredNodes(model.LevelItem, locA, 1)) != 1 {
		t.Fatal("node must be indexed in its epoch")
	}
	if g.ColoredNodes(model.LevelItem, locA, 2) != nil {
		t.Error("index query for a later epoch must be empty")
	}
	mustUpdate(t, g, beltReader, 2, i)
	if len(g.ColoredNodes(model.LevelItem, locA, 2)) != 0 {
		t.Error("stale bucket must be cleared on epoch change")
	}
	if len(g.ColoredNodes(model.LevelItem, locB, 2)) != 1 {
		t.Error("node must appear in its new bucket")
	}
	count := 0
	g.EachColored(2, func(*Node) { count++ })
	if count != 1 {
		t.Errorf("EachColored visited %d nodes, want 1", count)
	}
	g.EachColored(3, func(*Node) { count++ })
	if count != 1 {
		t.Error("EachColored for a fresh epoch must visit nothing")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, c, i)
	n, p := g.Node(i), g.Node(c)
	e1 := n.ParentEdge(c)
	e2 := g.AddEdge(p, n, 5)
	if e1 != e2 {
		t.Error("AddEdge must return the existing edge")
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
}

func TestApproxBytesGrows(t *testing.T) {
	g := newGraph(t)
	empty := g.ApproxBytes()
	mustUpdate(t, g, dockReader, 1, tag(t, model.LevelCase, 1), tag(t, model.LevelItem, 1))
	if g.ApproxBytes() <= empty {
		t.Error("ApproxBytes must grow with content")
	}
}

// TestPaperRunningExample walks the observation sequence of Fig. 1 /
// Fig. 3 and checks the structural outcomes the paper describes.
func TestPaperRunningExample(t *testing.T) {
	g := newGraph(t)
	p1 := tag(t, model.LevelPallet, 1)
	c2 := tag(t, model.LevelCase, 2)
	c3 := tag(t, model.LevelCase, 3)
	i4 := tag(t, model.LevelItem, 4)
	i5 := tag(t, model.LevelItem, 5)
	i6 := tag(t, model.LevelItem, 6)
	// i7 is present but missed at t=1 — it simply never appears.
	c9 := tag(t, model.LevelCase, 9)
	p8 := tag(t, model.LevelPallet, 8)

	// t=1: dock reads objects 1..6 (7 missed).
	mustUpdate(t, g, dockReader, 1, p1, c2, c3, i4, i5, i6)
	for _, it := range []model.Tag{i4, i5, i6} {
		if g.Node(it).NumParents() != 2 {
			t.Fatalf("t=1: item %d must have ambiguous containment (2 cases)", it)
		}
	}

	// t=2: case 2 scanned individually on the belt with item 4.
	mustUpdate(t, g, beltReader, 2, c2, i4)
	if g.Node(c2).NumParents() != 0 {
		t.Error("t=2: edge pallet→case2 must be pruned (top-level confirmation)")
	}
	if g.Node(i4).ParentEdge(c3) != nil {
		t.Error("t=2: edge case3→item4 must be pruned (confirmed parent)")
	}

	// t=3: case 3 scanned on the belt with items 5; case 9 appears in the
	// packaging area. Item 6 fell off (unobserved).
	mustUpdate(t, g, beltReader, 3, c3, i5)
	mustUpdate(t, g, packReader, 3, c9)
	if g.Node(i5).ConfirmedEdge == nil ||
		g.Node(i5).ConfirmedEdge.Parent.Tag != c3 {
		t.Error("t=3: case 3 must be confirmed parent of item 5")
	}

	// t=4: item 6 read at the belt again; pallet 8 assembled in the
	// packaging area from cases 2, 3, 9 (case 2 missed this epoch).
	mustUpdate(t, g, beltReader, 4, i6)
	mustUpdate(t, g, packReader, 4, p8, c3, c9)

	if g.Node(i6).ParentEdge(c3) != nil {
		t.Error("t=4: item 6 (belt) and case 3 (packaging) must be unlinked")
	}
	if g.Node(c3).ParentEdge(p8) == nil || g.Node(c9).ParentEdge(p8) == nil {
		t.Error("t=4: new pallet 8 must link to co-located cases 3 and 9")
	}
	if g.Node(c2).ParentEdge(p8) != nil {
		t.Error("t=4: unobserved case 2 must not yet link to pallet 8")
	}
	if err := g.CheckInvariants(4); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// Property: arbitrary reader/tag sequences never violate the structural
// invariants.
func TestRandomizedUpdatesKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	readers := []*model.Reader{dockReader, beltReader, packReader}
	g := newGraph(t)
	pool := make([]model.Tag, 0, 60)
	for s := uint32(1); s <= 20; s++ {
		pool = append(pool,
			tag(t, model.LevelItem, s),
			tag(t, model.LevelCase, s),
			tag(t, model.LevelPallet, s))
	}
	for now := model.Epoch(1); now <= 200; now++ {
		// Partition a random subset of tags across readers (dedup means a
		// tag goes to at most one reader per epoch).
		perm := rng.Perm(len(pool))
		cut1, cut2 := rng.Intn(20), 20+rng.Intn(20)
		sets := map[*model.Reader][]model.Tag{}
		for i, pi := range perm[:40] {
			r := readers[0]
			if i >= cut1 && i < cut2 {
				r = readers[1]
			} else if i >= cut2 {
				r = readers[2]
			}
			if rng.Float64() < 0.5 {
				sets[r] = append(sets[r], pool[pi])
			}
		}
		for _, r := range readers {
			if err := g.Update(r, sets[r], now); err != nil {
				t.Fatalf("epoch %d: %v", now, err)
			}
		}
		if err := g.CheckInvariants(now); err != nil {
			t.Fatalf("epoch %d: %v", now, err)
		}
		if rng.Intn(10) == 0 {
			g.RemoveNode(pool[rng.Intn(len(pool))])
			if err := g.CheckInvariants(now); err != nil {
				t.Fatalf("epoch %d after removal: %v", now, err)
			}
		}
	}
}
