package graph

import (
	"fmt"
	"runtime"
	"testing"

	"spire/internal/epc"
	"spire/internal/model"
)

// buildShelf populates one shelf with nCases cases of nItems items, all
// colored by the shelf reader in epoch 1.
func buildShelf(b *testing.B, nCases, nItems int) (*Graph, *model.Reader, []model.Tag) {
	b.Helper()
	g, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	reader := &model.Reader{ID: 1, Location: 0, Period: 1}
	var tags []model.Tag
	seq, err := epc.NewSequencer(3)
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < nCases; c++ {
		ct, err := seq.Next(model.LevelCase)
		if err != nil {
			b.Fatal(err)
		}
		tags = append(tags, ct)
		for i := 0; i < nItems; i++ {
			it, err := seq.Next(model.LevelItem)
			if err != nil {
				b.Fatal(err)
			}
			tags = append(tags, it)
		}
	}
	if err := g.Update(reader, tags, 1); err != nil {
		b.Fatal(err)
	}
	return g, reader, tags
}

// BenchmarkUpdateSteadyState measures the per-epoch cost of re-reading a
// populated shelf (no new edges, statistics only) — the dominant update
// pattern in steady state.
func BenchmarkUpdateSteadyState(b *testing.B) {
	for _, size := range []struct{ cases, items int }{{5, 20}, {20, 20}, {50, 20}} {
		name := fmt.Sprintf("cases=%d", size.cases)
		b.Run(name, func(b *testing.B) {
			g, reader, tags := buildShelf(b, size.cases, size.items)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.Update(reader, tags, model.Epoch(i+2)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(tags)), "readings/epoch")
		})
	}
}

// BenchmarkUpdateFirstContact measures the quadratic edge-creation epoch:
// a fresh group colored together for the first time.
func BenchmarkUpdateFirstContact(b *testing.B) {
	reader := &model.Reader{ID: 1, Location: 0, Period: 1}
	seq, err := epc.NewSequencer(3)
	if err != nil {
		b.Fatal(err)
	}
	var tags []model.Tag
	for c := 0; c < 20; c++ {
		ct, _ := seq.Next(model.LevelCase)
		tags = append(tags, ct)
		for i := 0; i < 20; i++ {
			it, _ := seq.Next(model.LevelItem)
			tags = append(tags, it)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Update(reader, tags, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestUpdate measures the batched steady-state update: 64
// shelves, each an independent one-case component, re-read in one epoch
// batch — the workload the reader-group-parallel path targets.
func BenchmarkIngestUpdate(b *testing.B) {
	const shelves, items = 64, 20
	g, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := epc.NewSequencer(3)
	if err != nil {
		b.Fatal(err)
	}
	readers := make([]*model.Reader, 0, shelves)
	batch := model.NewBatch(1)
	for s := 0; s < shelves; s++ {
		r := &model.Reader{ID: model.ReaderID(10 + s), Location: model.LocationID(1 + s), Period: 60}
		readers = append(readers, r)
		ct, err := seq.Next(model.LevelCase)
		if err != nil {
			b.Fatal(err)
		}
		group := []model.Tag{ct}
		for i := 0; i < items; i++ {
			it, err := seq.Next(model.LevelItem)
			if err != nil {
				b.Fatal(err)
			}
			group = append(group, it)
		}
		if err := g.Update(r, group, 1); err != nil {
			b.Fatal(err)
		}
		batch.BeginReader(r.ID)
		for _, t := range group {
			batch.Append(t)
		}
	}
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Time = model.Epoch(i + 2)
				if err := g.UpdateBatch(batch, readers, w); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch.Total()), "readings/op")
		})
	}
}

// BenchmarkHistoryWeight measures the Eq. 1 hot path.
func BenchmarkHistoryWeight(b *testing.B) {
	h, err := NewHistory(32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		h.SetRecent(i%3 != 0)
		h.Shift()
	}
	w := ZipfWeights(32, 0)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.Weight(w)
	}
	_ = sink
}
