package graph

import (
	"testing"

	"spire/internal/model"
)

// TestCrossLayerEdgeResolvesWhenMiddleAppears covers the paper's
// "temporarily capture containment in non-adjacent layers": an item links
// to a pallet while its case is missed; when the case shows up at the
// same location, adjacent-layer edges form alongside.
func TestCrossLayerEdgeResolvesWhenMiddleAppears(t *testing.T) {
	g := newGraph(t)
	p := tag(t, model.LevelPallet, 1)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)

	mustUpdate(t, g, dockReader, 1, p, i) // case missed
	if g.Node(i).ParentEdge(p) == nil {
		t.Fatal("cross-layer edge pallet→item expected")
	}
	// Epoch 2: the case is read too. The item keeps its old pallet edge
	// (it is not newly colored, so no new edges form at the item), but
	// the case gains edges both ways.
	mustUpdate(t, g, dockReader, 2, p, c, i)
	nc := g.Node(c)
	if nc.ParentEdge(p) == nil {
		t.Error("case must link under the pallet")
	}
	if nc.ChildEdge(i) == nil {
		t.Error("case must link to the co-located item")
	}
	if g.Node(i).ParentEdge(p) == nil {
		t.Error("the stale cross-layer edge survives until contradicted")
	}
}

// TestConfirmedEdgeClearedOnRemoval: dropping the confirmed edge must
// clear the node's confirmation pointer.
func TestConfirmedEdgeClearedOnRemoval(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c, i)
	n := g.Node(i)
	if n.ConfirmedEdge == nil {
		t.Fatal("setup: confirmation expected")
	}
	// The two split up: both observed at different locations.
	mustUpdate(t, g, dockReader, 2, c)
	mustUpdate(t, g, packReader, 2, i)
	if n.ParentEdge(c) != nil {
		t.Fatal("edge must be dropped")
	}
	if n.ConfirmedEdge != nil {
		t.Error("dropping the confirmed edge must clear ConfirmedEdge")
	}
}

// TestSameEpochRecolorMovesIndexBucket: if deduplication fails upstream
// and a tag reaches two readers in one epoch, the most recent reader wins
// and the colored index stays consistent.
func TestSameEpochRecolorMovesIndexBucket(t *testing.T) {
	g := newGraph(t)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, dockReader, 1, i)
	mustUpdate(t, g, beltReader, 1, i)
	if got := g.Node(i).ColorAt(1); got != locB {
		t.Errorf("color = %v, want most recent reader's %v", got, locB)
	}
	if n := len(g.ColoredNodes(model.LevelItem, locA, 1)); n != 0 {
		t.Errorf("old bucket still holds %d nodes", n)
	}
	if n := len(g.ColoredNodes(model.LevelItem, locB, 1)); n != 1 {
		t.Errorf("new bucket holds %d nodes, want 1", n)
	}
}

// TestHistoryShiftsOncePerEpochWithTwoReaders: two readers at the same
// location processing overlapping groups in one epoch must not
// double-shift edge histories.
func TestHistoryShiftsOncePerEpochWithTwoReaders(t *testing.T) {
	g := newGraph(t)
	dock2 := &model.Reader{ID: 9, Location: locA, Period: 1}
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	// Epoch 1: both seen together by one reader.
	mustUpdate(t, g, dockReader, 1, c, i)
	// Epoch 2: the case via reader 1, the item via reader 9 (same
	// location, split coverage).
	mustUpdate(t, g, dockReader, 2, c)
	mustUpdate(t, g, dock2, 2, i)
	e := g.Node(i).ParentEdge(c)
	if e == nil {
		t.Fatal("edge must survive")
	}
	if !e.History.Bit(0) {
		t.Error("bit 0 must be revised to co-located once both sides were seen")
	}
	if !e.History.Bit(1) {
		t.Error("bit 1 must hold epoch 1's co-location (exactly one shift)")
	}
	if e.History.Bit(2) {
		t.Error("no third bit may be set: the history shifted twice, not once per epoch")
	}
}

// TestConfirmationRequiresAdjacentLevel: a pallet-level confirming reader
// must not confirm items (two levels down) to anything.
func TestConfirmationRequiresAdjacentLevel(t *testing.T) {
	g := newGraph(t)
	outBelt := &model.Reader{ID: 8, Location: locB, Period: 1,
		Confirming: true, ConfirmLevel: model.LevelPallet}
	p := tag(t, model.LevelPallet, 1)
	c1 := tag(t, model.LevelCase, 1)
	c2 := tag(t, model.LevelCase, 2)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, outBelt, 1, p, c1, c2, i)
	if g.Node(c1).ConfirmedEdge == nil || g.Node(c2).ConfirmedEdge == nil {
		t.Error("cases (adjacent level) must be confirmed to the pallet")
	}
	if g.Node(i).ConfirmedEdge != nil {
		t.Error("items must not be confirmed by a pallet-level reader (ambiguous case)")
	}
	if g.Node(p).NumParents() != 0 {
		t.Error("confirmed top-level container must have no parents")
	}
}

// TestEdgeCountAfterChurn: edges stay bookkept through add/remove cycles.
func TestEdgeCountAfterChurn(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	i2 := tag(t, model.LevelItem, 2)
	mustUpdate(t, g, dockReader, 1, c, i1, i2)
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	// Split: i2 moves away (observed apart), dropping one edge.
	mustUpdate(t, g, dockReader, 2, c, i1)
	mustUpdate(t, g, packReader, 2, i2)
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount after split = %d, want 1", g.EdgeCount())
	}
	// Reunion at the new location re-creates the edge.
	mustUpdate(t, g, packReader, 3, c, i1, i2)
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount after reunion = %d, want 2", g.EdgeCount())
	}
	// Removing the case node drops everything.
	g.RemoveNode(c)
	if g.EdgeCount() != 0 {
		t.Fatalf("EdgeCount after RemoveNode = %d, want 0", g.EdgeCount())
	}
}

// TestRemoveEdgeDirect exercises the exported RemoveEdge path.
func TestRemoveEdgeDirect(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i := tag(t, model.LevelItem, 1)
	mustUpdate(t, g, beltReader, 1, c, i)
	n := g.Node(i)
	e := n.ParentEdge(c)
	g.RemoveEdge(e)
	if n.ParentEdge(c) != nil || g.EdgeCount() != 0 {
		t.Error("edge must be fully detached")
	}
	if n.ConfirmedEdge != nil {
		t.Error("confirmed pointer must clear with the edge")
	}
	g.RemoveEdge(e) // double removal is a no-op
	if g.EdgeCount() != 0 {
		t.Error("double removal must not corrupt the count")
	}
}

// TestSnapshotStats covers the monitoring snapshot.
func TestSnapshotStats(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	i2 := tag(t, model.LevelItem, 2)
	mustUpdate(t, g, beltReader, 1, c, i1) // confirms c→i1
	mustUpdate(t, g, dockReader, 2, i2)
	st := g.Snapshot(2)
	if st.Nodes != 3 || st.NodesByLevel[model.LevelItem] != 2 || st.NodesByLevel[model.LevelCase] != 1 {
		t.Errorf("node stats wrong: %+v", st)
	}
	if st.Edges != 1 || st.ConfirmedEdges != 1 {
		t.Errorf("edge stats wrong: %+v", st)
	}
	if st.Colored != 1 {
		t.Errorf("Colored = %d, want 1 (only i2 observed at epoch 2)", st.Colored)
	}
	if st.ApproxBytes != g.ApproxBytes() {
		t.Error("ApproxBytes mismatch")
	}
}

// TestVisitAccessors covers the allocation-free iteration helpers.
func TestVisitAccessors(t *testing.T) {
	g := newGraph(t)
	c := tag(t, model.LevelCase, 1)
	i1 := tag(t, model.LevelItem, 1)
	i2 := tag(t, model.LevelItem, 2)
	mustUpdate(t, g, dockReader, 1, c, i1, i2)
	nc := g.Node(c)
	kids := 0
	nc.VisitChildren(func(e *Edge) {
		if e.Parent != nc {
			t.Error("child edge parent mismatch")
		}
		kids++
	})
	if kids != 2 || nc.NumChildren() != 2 {
		t.Errorf("children = %d/%d, want 2", kids, nc.NumChildren())
	}
	parents := 0
	g.Node(i1).VisitParents(func(*Edge) { parents++ })
	if parents != 1 || g.Node(i1).NumParents() != 1 {
		t.Errorf("parents = %d, want 1", parents)
	}
	if len(nc.ChildEdges()) != 2 || len(g.Node(i1).ParentEdges()) != 1 {
		t.Error("slice accessors disagree with visitors")
	}
	count := 0
	g.Nodes(func(*Node) { count++ })
	if count != 3 {
		t.Errorf("Nodes visited %d, want 3", count)
	}
}
