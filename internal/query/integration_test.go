package query_test

import (
	"testing"

	"spire/internal/compress"
	"spire/internal/core"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/eventlog"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/sim"
)

// TestPipelineIntoStore drives the full substrate and checks that the
// query layer's answers are consistent with the live inference results.
func TestPipelineIntoStore(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 400
	cfg.PalletInterval = 60
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 80
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:   s.Readers(),
		Locations: s.Locations(),
		Inference: inference.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	store := query.NewStore()
	type check struct {
		at  model.Epoch
		obj model.Tag
		loc model.LocationID
	}
	var checks []check
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Feed(out.Events...); err != nil {
			t.Fatalf("epoch %d: %v", o.Time, err)
		}
		// Sample a few reported states to verify later.
		if o.Time%37 == 0 {
			for g, loc := range out.Result.Locations {
				if loc.Known() {
					checks = append(checks, check{at: o.Time, obj: g, loc: loc})
					break
				}
			}
		}
	}
	if err := store.Feed(sub.Close(s.Now() + 1)...); err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("no checks sampled")
	}
	for _, c := range checks {
		got, ok := store.LocationAt(c.obj, c.at)
		if !ok || got != c.loc {
			t.Errorf("LocationAt(%d, %d) = %v,%v; live pipeline reported %v", c.obj, c.at, got, ok, c.loc)
		}
	}
	// Every item that reached a shelf must have a path through belt and
	// shelf locations; spot-check one.
	for _, g := range store.Objects() {
		if lvl, _ := epc.LevelOf(g); lvl != model.LevelItem {
			continue
		}
		p := store.Path(g)
		if len(p) >= 3 {
			if p[0] != 0 {
				t.Errorf("item %d path %v must start at the entry door", g, p)
			}
			break
		}
	}
}

// TestDurableReplayMatchesDirect persists the output stream through the
// event log and checks that a store rebuilt via Replay answers exactly
// like one fed directly — the crash-recovery contract.
func TestDurableReplayMatchesDirect(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 300
	cfg.PalletInterval = 70
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:   s.Readers(),
		Locations: s.Locations(),
		Inference: inference.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	l, err := eventlog.Open(dir, eventlog.Options{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	direct := query.NewStore()
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(out.Events...); err != nil {
			t.Fatal(err)
		}
		if err := direct.Feed(out.Events...); err != nil {
			t.Fatal(err)
		}
	}
	closing := sub.Close(s.Now() + 1)
	if err := l.Append(closing...); err != nil {
		t.Fatal(err)
	}
	if err := direct.Feed(closing...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	replayed := query.NewStore()
	if err := eventlog.Replay(dir, func(e event.Event) error {
		return replayed.Feed(e)
	}); err != nil {
		t.Fatal(err)
	}
	if replayed.Events() != direct.Events() {
		t.Fatalf("replayed %d events, direct %d", replayed.Events(), direct.Events())
	}
	objs := direct.Objects()
	if len(objs) != len(replayed.Objects()) {
		t.Fatalf("object counts differ")
	}
	for _, g := range objs {
		dh, rh := direct.History(g), replayed.History(g)
		if len(dh) != len(rh) {
			t.Fatalf("object %d: history lengths differ", g)
		}
		for i := range dh {
			if dh[i] != rh[i] {
				t.Errorf("object %d stay %d: %+v vs %+v", g, i, dh[i], rh[i])
			}
		}
	}
}

// TestLevel2StreamThroughDecompressorIntoStore checks the paper's
// query-processor front-end composition: level-2 on the wire, on-demand
// decompression, then queries.
func TestLevel2StreamThroughDecompressorIntoStore(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 300
	cfg.PalletInterval = 70
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 1 // complete inference everywhere: exact equivalence
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.New(core.Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: core.Level2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := compress.NewDecompressor()
	store := query.NewStore()
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dec.Step(out.Events)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Feed(d...); err != nil {
			t.Fatal(err)
		}
	}
	end := s.Now() + 1
	d, err := dec.Step(sub.Close(end))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Feed(d...); err != nil {
		t.Fatal(err)
	}
	if err := store.Feed(dec.Close(end)...); err != nil {
		t.Fatal(err)
	}
	// Contained items must be queriable at their containers' locations
	// even though the wire stream suppressed their location events.
	found := false
	for _, g := range store.Objects() {
		if lvl, _ := epc.LevelOf(g); lvl != model.LevelItem {
			continue
		}
		for _, c := range store.Containments(g) {
			mid := c.Vs
			if c.Ve != model.InfiniteEpoch {
				mid = (c.Vs + c.Ve) / 2
			}
			cloc, okc := store.LocationAt(c.Container, mid)
			iloc, oki := store.LocationAt(g, mid)
			if okc && oki {
				found = true
				if cloc != iloc {
					t.Errorf("item %d at %v but container %d at %v (t=%d)", g, iloc, c.Container, cloc, mid)
				}
			}
		}
	}
	if !found {
		t.Fatal("no contained item verified")
	}
}
