package query

import (
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

const (
	pallet = model.Tag(100)
	caseA  = model.Tag(200)
	caseB  = model.Tag(201)
	item1  = model.Tag(300)
	item2  = model.Tag(301)
)

const (
	dock  = model.LocationID(0)
	belt  = model.LocationID(1)
	shelf = model.LocationID(2)
)

// feedScenario loads a small but complete life cycle:
//
//	t=1   item1, item2 in caseA; caseA in pallet; everything at dock
//	t=10  group moves to belt
//	t=20  caseA leaves the pallet, moves to shelf with items
//	t=30  item2 leaves caseA (stays at shelf)
//	t=40  item2 goes missing
//	t=50  item2 reappears at belt
//	t=60  everything still open
func newScenario(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	evs := []event.Event{
		event.NewStartContainment(caseA, pallet, 1),
		event.NewStartContainment(item1, caseA, 1),
		event.NewStartContainment(item2, caseA, 1),
		event.NewStartLocation(pallet, dock, 1),
		event.NewStartLocation(caseA, dock, 1),
		event.NewStartLocation(item1, dock, 1),
		event.NewStartLocation(item2, dock, 1),

		event.NewEndLocation(pallet, dock, 1, 10),
		event.NewStartLocation(pallet, belt, 10),
		event.NewEndLocation(caseA, dock, 1, 10),
		event.NewStartLocation(caseA, belt, 10),
		event.NewEndLocation(item1, dock, 1, 10),
		event.NewStartLocation(item1, belt, 10),
		event.NewEndLocation(item2, dock, 1, 10),
		event.NewStartLocation(item2, belt, 10),

		event.NewEndContainment(caseA, pallet, 1, 20),
		event.NewEndLocation(caseA, belt, 10, 20),
		event.NewStartLocation(caseA, shelf, 20),
		event.NewEndLocation(item1, belt, 10, 20),
		event.NewStartLocation(item1, shelf, 20),
		event.NewEndLocation(item2, belt, 10, 20),
		event.NewStartLocation(item2, shelf, 20),

		event.NewEndContainment(item2, caseA, 1, 30),

		event.NewEndLocation(item2, shelf, 20, 40),
		event.NewMissing(item2, shelf, 40),

		event.NewStartLocation(item2, belt, 50),
	}
	if err := s.Feed(evs...); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLocationAt(t *testing.T) {
	s := newScenario(t)
	cases := []struct {
		obj  model.Tag
		t    model.Epoch
		want model.LocationID
		ok   bool
	}{
		{item1, 5, dock, true},
		{item1, 10, belt, true}, // half-open: the new stay covers its Vs
		{item1, 15, belt, true},
		{item1, 25, shelf, true},
		{item1, 1000, shelf, true}, // open interval extends forward
		{item2, 45, 0, false},      // missing window
		{item2, 55, belt, true},
		{item2, 0, 0, false}, // before first sighting
		{model.Tag(999), 5, 0, false},
	}
	for _, c := range cases {
		got, ok := s.LocationAt(c.obj, c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("LocationAt(%d, %d) = %v,%v; want %v,%v", c.obj, c.t, got, ok, c.want, c.ok)
		}
	}
}

func TestContainerAt(t *testing.T) {
	s := newScenario(t)
	if c, ok := s.ContainerAt(item2, 15); !ok || c != caseA {
		t.Errorf("item2@15 container = %d,%v; want caseA", c, ok)
	}
	if _, ok := s.ContainerAt(item2, 35); ok {
		t.Error("item2@35 must be uncontained")
	}
	if c, ok := s.ContainerAt(caseA, 10); !ok || c != pallet {
		t.Errorf("caseA@10 container = %d,%v; want pallet", c, ok)
	}
	if _, ok := s.ContainerAt(caseA, 25); ok {
		t.Error("caseA@25 must be uncontained")
	}
	if _, ok := s.ContainerAt(pallet, 5); ok {
		t.Error("pallet must never be contained")
	}
}

func TestTopContainerAt(t *testing.T) {
	s := newScenario(t)
	if got := s.TopContainerAt(item1, 5); got != pallet {
		t.Errorf("item1@5 top = %d, want pallet", got)
	}
	if got := s.TopContainerAt(item1, 25); got != caseA {
		t.Errorf("item1@25 top = %d, want caseA", got)
	}
	if got := s.TopContainerAt(item2, 35); got != item2 {
		t.Errorf("item2@35 top = %d, want itself", got)
	}
}

func TestContentsAt(t *testing.T) {
	s := newScenario(t)
	got := s.ContentsAt(caseA, 5)
	if len(got) != 2 || got[0] != item1 || got[1] != item2 {
		t.Errorf("caseA@5 contents = %v, want [item1 item2]", got)
	}
	got = s.ContentsAt(caseA, 35)
	if len(got) != 1 || got[0] != item1 {
		t.Errorf("caseA@35 contents = %v, want [item1]", got)
	}
	all := s.TransitiveContentsAt(pallet, 5)
	if len(all) != 3 {
		t.Errorf("pallet@5 transitive contents = %v, want 3 objects", all)
	}
	if len(s.TransitiveContentsAt(pallet, 25)) != 0 {
		t.Error("pallet@25 must be empty")
	}
}

func TestObjectsAt(t *testing.T) {
	s := newScenario(t)
	got := s.ObjectsAt(dock, 5)
	if len(got) != 4 {
		t.Errorf("dock@5 = %v, want 4 objects", got)
	}
	got = s.ObjectsAt(shelf, 45)
	if len(got) != 2 || got[0] != caseA || got[1] != item1 {
		t.Errorf("shelf@45 = %v, want [caseA item1]", got)
	}
	if len(s.ObjectsAt(belt, 5)) != 0 {
		t.Error("belt@5 must be empty")
	}
	// The pallet's stay is still open; item2 left and returned, and must
	// not be double-listed.
	got = s.ObjectsAt(belt, 55)
	if len(got) != 2 || got[0] != pallet || got[1] != item2 {
		t.Errorf("belt@55 = %v, want [pallet item2]", got)
	}
}

func TestHistoryAndPath(t *testing.T) {
	s := newScenario(t)
	h := s.History(item2)
	if len(h) != 4 {
		t.Fatalf("item2 history = %v, want 4 stays", h)
	}
	if h[2].Ve != 40 {
		t.Errorf("third stay must close at 40: %+v", h[2])
	}
	if h[3].Ve != model.InfiniteEpoch {
		t.Errorf("final stay must be open: %+v", h[3])
	}
	p := s.Path(item2)
	want := []model.LocationID{dock, belt, shelf, belt}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if n := len(s.Containments(item2)); n != 1 {
		t.Errorf("item2 containments = %d, want 1", n)
	}
}

func TestDwellTime(t *testing.T) {
	s := newScenario(t)
	if d := s.DwellTime(item1, belt, 100); d != 10 {
		t.Errorf("item1 belt dwell = %d, want 10", d)
	}
	// Open interval counts up to asOf.
	if d := s.DwellTime(item1, shelf, 100); d != 80 {
		t.Errorf("item1 shelf dwell = %d, want 80", d)
	}
	if d := s.DwellTime(item2, belt, 60); d != 20 {
		t.Errorf("item2 belt dwell (two stays) = %d, want 20", d)
	}
	if d := s.DwellTime(item1, model.LocationID(9), 100); d != 0 {
		t.Errorf("never-visited location dwell = %d, want 0", d)
	}
}

func TestCoLocated(t *testing.T) {
	s := newScenario(t)
	if !s.CoLocated(item1, item2, 25) {
		t.Error("items must be co-located on the shelf at 25")
	}
	if s.CoLocated(item1, item2, 55) {
		t.Error("items must not be co-located at 55")
	}
	if s.CoLocated(item1, item2, 45) {
		t.Error("a missing object is co-located with nothing")
	}
}

func TestTogetherIntervals(t *testing.T) {
	s := newScenario(t)
	// item1 and item2 share dock [1,10), belt [10,20), shelf [20,40);
	// merged that is one continuous span [1,40).
	spans := s.TogetherIntervals(item1, item2)
	if len(spans) != 1 || spans[0].Vs != 1 || spans[0].Ve != 40 {
		t.Errorf("item1/item2 together = %+v, want [{1 40}]", spans)
	}
	// item2 and the pallet: together at dock and belt [1,20), then apart
	// (pallet stays on the belt while item2 goes to the shelf), and
	// together again when item2 returns to the belt at 50 (open-ended).
	spans = s.TogetherIntervals(item2, pallet)
	if len(spans) != 2 {
		t.Fatalf("item2/pallet together = %+v, want 2 spans", spans)
	}
	if spans[0].Vs != 1 || spans[0].Ve != 20 {
		t.Errorf("first span = %+v, want {1 20}", spans[0])
	}
	if spans[1].Vs != 50 || spans[1].Ve != model.InfiniteEpoch {
		t.Errorf("second span = %+v, want {50 inf}", spans[1])
	}
	if got := s.TogetherIntervals(item1, model.Tag(999)); len(got) != 0 {
		t.Errorf("unknown object together = %+v, want none", got)
	}
}

func TestMissingQueries(t *testing.T) {
	s := newScenario(t)
	reports := s.MissingReports(item2)
	if len(reports) != 1 || reports[0].At != 40 || reports[0].From != shelf {
		t.Fatalf("missing reports = %+v", reports)
	}
	if got := s.MissingAt(45); len(got) != 1 || got[0] != item2 {
		t.Errorf("MissingAt(45) = %v, want [item2]", got)
	}
	if got := s.MissingAt(55); len(got) != 0 {
		t.Errorf("MissingAt(55) = %v, want none (reappeared)", got)
	}
	if got := s.MissingAt(5); len(got) != 0 {
		t.Errorf("MissingAt(5) = %v, want none (before report)", got)
	}
}

func TestObjectsAndEvents(t *testing.T) {
	s := newScenario(t)
	objs := s.Objects()
	if len(objs) != 4 {
		t.Errorf("Objects = %v, want 4", objs)
	}
	if s.Events() == 0 {
		t.Error("Events must count fed events")
	}
}

func TestFeedRejectsMalformed(t *testing.T) {
	cases := [][]event.Event{
		{event.NewEndLocation(1, dock, 1, 5)},
		{event.NewStartLocation(1, dock, 1), event.NewStartLocation(1, belt, 5)},
		{event.NewStartLocation(1, dock, 1), event.NewEndLocation(1, belt, 1, 5)},
		{event.NewEndContainment(1, 2, 1, 5)},
		{event.NewStartContainment(1, 2, 1), event.NewStartContainment(1, 3, 5)},
		{event.NewStartContainment(1, 2, 1), event.NewEndContainment(1, 3, 1, 5)},
		{event.NewStartLocation(1, dock, 1), event.NewMissing(1, dock, 5)},
		{event.NewStartLocation(1, dock, 9), event.NewEndLocation(1, dock, 9, 12), event.NewStartLocation(1, belt, 3)},
		{{Kind: event.Kind(99), Object: 1}},
	}
	for i, evs := range cases {
		s := NewStore()
		if err := s.Feed(evs...); err == nil {
			t.Errorf("case %d: malformed stream accepted", i)
		}
	}
}

func TestWatcherFilters(t *testing.T) {
	w := NewWatcher()
	var missing, anyItem2, located int
	w.Subscribe(Filter{Kinds: []event.Kind{event.Missing}}, func(event.Event) { missing++ })
	w.Subscribe(Filter{Object: item2}, func(event.Event) { anyItem2++ })
	id := w.Subscribe(Filter{Location: shelf, FilterLocation: true, Kinds: []event.Kind{event.StartLocation}}, func(event.Event) { located++ })

	w.Dispatch(
		event.NewStartLocation(item1, shelf, 1),
		event.NewStartLocation(item2, belt, 1),
		event.NewMissing(item2, belt, 5),
	)
	if missing != 1 || anyItem2 != 2 || located != 1 {
		t.Errorf("counts = %d/%d/%d, want 1/2/1", missing, anyItem2, located)
	}
	w.Unsubscribe(id)
	w.Dispatch(event.NewStartLocation(item1, shelf, 9))
	if located != 1 {
		t.Error("unsubscribed callback must not fire")
	}
	// Container filter never matches location events.
	var contained int
	w.Subscribe(Filter{Container: caseA}, func(event.Event) { contained++ })
	w.Dispatch(
		event.NewStartLocation(caseA, shelf, 10),
		event.NewStartContainment(item1, caseA, 10),
		event.NewStartContainment(item1, pallet, 11),
	)
	if contained != 1 {
		t.Errorf("container filter fired %d times, want 1", contained)
	}
}
