// Package query implements an event-processing layer over SPIRE's
// compressed output streams.
//
// The paper positions range-compressed output as "directly queriable
// using recently developed event processors" and plans to feed it to
// higher-level query processing; RFID warehousing work (Gonzalez et al.,
// Lee & Chung) builds tracking and path-oriented queries over exactly
// this kind of interval data. This package provides that layer: a Store
// indexes a level-1 stream incrementally (feed level-2 streams through
// compress.Decompressor first) and answers
//
//   - point queries: where was object o at time t? what contained it?
//     what did container c hold? which objects were at location l?
//   - tracking queries: an object's full stay history, its path through
//     the warehouse, dwell times, co-location with another object;
//   - anomaly queries: missing reports and the set of objects missing at
//     a time t.
//
// All interval queries use the half-open validity convention of the
// stream: a stay [Vs, Ve) covers t with Vs ≤ t < Ve, and an interval
// still open at the end of the fed stream covers every t ≥ Vs.
package query

import (
	"fmt"
	"sort"

	"spire/internal/event"
	"spire/internal/model"
)

// Stay is one location interval of an object.
type Stay struct {
	Location model.LocationID
	Vs       model.Epoch
	Ve       model.Epoch // model.InfiniteEpoch while open
}

// Containment is one containment interval of an object.
type Containment struct {
	Container model.Tag
	Vs        model.Epoch
	Ve        model.Epoch // model.InfiniteEpoch while open
}

// MissingReport is one Missing message.
type MissingReport struct {
	From model.LocationID
	At   model.Epoch
}

// covers reports whether the half-open interval [vs, ve) contains t.
func covers(vs, ve, t model.Epoch) bool { return vs <= t && t < ve }

// Store indexes an event stream. Feed events in stream order; queries may
// interleave with feeding. The zero value is not usable; call NewStore.
type Store struct {
	stays    map[model.Tag][]Stay
	conts    map[model.Tag][]Containment
	missing  map[model.Tag][]MissingReport
	byLoc    map[model.LocationID][]occupancy
	children map[model.Tag]map[model.Tag]struct{} // open containments, inverted
	objects  map[model.Tag]struct{}
	events   int64
	lastTime model.Epoch
}

// occupancy is a stay projected onto its location's index. The stays
// slice owns the authoritative Ve; occupancy carries the object and start
// so lookups re-check the object's stay.
type occupancy struct {
	object model.Tag
	vs     model.Epoch
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		stays:    make(map[model.Tag][]Stay),
		conts:    make(map[model.Tag][]Containment),
		missing:  make(map[model.Tag][]MissingReport),
		byLoc:    make(map[model.LocationID][]occupancy),
		children: make(map[model.Tag]map[model.Tag]struct{}),
		objects:  make(map[model.Tag]struct{}),
		lastTime: model.EpochNone,
	}
}

// Feed indexes events, which must arrive in stream order (the order the
// compressor emitted them). Malformed input — an end without a start, a
// mismatched payload, time running backwards — is rejected.
func (s *Store) Feed(events ...event.Event) error {
	for _, e := range events {
		if err := s.feed(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) feed(e event.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	emitted := e.Vs
	if e.Kind == event.EndLocation || e.Kind == event.EndContainment {
		emitted = e.Ve
	}
	if emitted < s.lastTime {
		return fmt.Errorf("query: event %v emitted at %d before stream time %d", e, emitted, s.lastTime)
	}
	s.lastTime = emitted
	s.objects[e.Object] = struct{}{}

	switch e.Kind {
	case event.StartLocation:
		stays := s.stays[e.Object]
		if n := len(stays); n > 0 && stays[n-1].Ve == model.InfiniteEpoch {
			return fmt.Errorf("query: %v while a location interval is open", e)
		}
		s.stays[e.Object] = append(stays, Stay{Location: e.Location, Vs: e.Vs, Ve: model.InfiniteEpoch})
		s.byLoc[e.Location] = append(s.byLoc[e.Location], occupancy{object: e.Object, vs: e.Vs})
	case event.EndLocation:
		stays := s.stays[e.Object]
		n := len(stays)
		if n == 0 || stays[n-1].Ve != model.InfiniteEpoch {
			return fmt.Errorf("query: %v without an open interval", e)
		}
		if stays[n-1].Location != e.Location || stays[n-1].Vs != e.Vs {
			return fmt.Errorf("query: %v does not match open interval %+v", e, stays[n-1])
		}
		stays[n-1].Ve = e.Ve
	case event.StartContainment:
		conts := s.conts[e.Object]
		if n := len(conts); n > 0 && conts[n-1].Ve == model.InfiniteEpoch {
			return fmt.Errorf("query: %v while a containment interval is open", e)
		}
		s.conts[e.Object] = append(conts, Containment{Container: e.Container, Vs: e.Vs, Ve: model.InfiniteEpoch})
		kids := s.children[e.Container]
		if kids == nil {
			kids = make(map[model.Tag]struct{})
			s.children[e.Container] = kids
		}
		kids[e.Object] = struct{}{}
		s.objects[e.Container] = struct{}{}
	case event.EndContainment:
		conts := s.conts[e.Object]
		n := len(conts)
		if n == 0 || conts[n-1].Ve != model.InfiniteEpoch {
			return fmt.Errorf("query: %v without an open interval", e)
		}
		if conts[n-1].Container != e.Container || conts[n-1].Vs != e.Vs {
			return fmt.Errorf("query: %v does not match open interval %+v", e, conts[n-1])
		}
		conts[n-1].Ve = e.Ve
		delete(s.children[e.Container], e.Object)
	case event.Missing:
		if stays := s.stays[e.Object]; len(stays) > 0 && stays[len(stays)-1].Ve == model.InfiniteEpoch {
			return fmt.Errorf("query: %v inside an open location interval", e)
		}
		s.missing[e.Object] = append(s.missing[e.Object], MissingReport{From: e.Location, At: e.Vs})
	}
	s.events++
	return nil
}

// Events returns the number of events indexed.
func (s *Store) Events() int64 { return s.events }

// Known reports whether the stream has mentioned the object at all.
func (s *Store) Known(obj model.Tag) bool {
	_, ok := s.objects[obj]
	return ok
}

// Objects returns every object the stream has mentioned, in tag order.
func (s *Store) Objects() []model.Tag {
	out := make([]model.Tag, 0, len(s.objects))
	for g := range s.objects {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// staysAt binary-searches an object's stays for the interval covering t.
func staysAt(stays []Stay, t model.Epoch) (Stay, bool) {
	i := sort.Search(len(stays), func(i int) bool { return stays[i].Vs > t })
	if i == 0 {
		return Stay{}, false
	}
	st := stays[i-1]
	if covers(st.Vs, st.Ve, t) {
		return st, true
	}
	return Stay{}, false
}

// LocationAt reports where obj was at time t according to the stream.
func (s *Store) LocationAt(obj model.Tag, t model.Epoch) (model.LocationID, bool) {
	st, ok := staysAt(s.stays[obj], t)
	if !ok {
		return model.LocationUnknown, false
	}
	return st.Location, true
}

// ContainerAt reports obj's direct container at time t.
func (s *Store) ContainerAt(obj model.Tag, t model.Epoch) (model.Tag, bool) {
	conts := s.conts[obj]
	i := sort.Search(len(conts), func(i int) bool { return conts[i].Vs > t })
	if i == 0 {
		return model.NoTag, false
	}
	c := conts[i-1]
	if covers(c.Vs, c.Ve, t) {
		return c.Container, true
	}
	return model.NoTag, false
}

// TopContainerAt follows containment upward at time t; an uncontained
// object is its own top container.
func (s *Store) TopContainerAt(obj model.Tag, t model.Epoch) model.Tag {
	cur := obj
	for hops := 0; hops < 64; hops++ { // defensive bound against cycles
		p, ok := s.ContainerAt(cur, t)
		if !ok {
			return cur
		}
		cur = p
	}
	return cur
}

// ContentsAt lists the objects directly contained in container at t, in
// tag order.
func (s *Store) ContentsAt(container model.Tag, t model.Epoch) []model.Tag {
	var out []model.Tag
	// Scan the containment intervals naming this container. For the open
	// set the inverted index is exact; historical queries re-check the
	// intervals of every object that ever named it.
	for g, conts := range s.conts {
		i := sort.Search(len(conts), func(i int) bool { return conts[i].Vs > t })
		if i == 0 {
			continue
		}
		c := conts[i-1]
		if c.Container == container && covers(c.Vs, c.Ve, t) {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TransitiveContentsAt lists everything inside container at t, at any
// depth, in tag order.
func (s *Store) TransitiveContentsAt(container model.Tag, t model.Epoch) []model.Tag {
	var out []model.Tag
	var walk func(model.Tag)
	walk = func(c model.Tag) {
		for _, g := range s.ContentsAt(c, t) {
			out = append(out, g)
			walk(g)
		}
	}
	walk(container)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ObjectsAt lists the objects at location loc at time t, in tag order.
func (s *Store) ObjectsAt(loc model.LocationID, t model.Epoch) []model.Tag {
	var out []model.Tag
	seen := make(map[model.Tag]bool)
	for _, occ := range s.byLoc[loc] {
		if occ.vs > t || seen[occ.object] {
			continue
		}
		if st, ok := staysAt(s.stays[occ.object], t); ok && st.Location == loc {
			out = append(out, occ.object)
			seen[occ.object] = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// History returns obj's full stay history in time order. The returned
// slice is a copy.
func (s *Store) History(obj model.Tag) []Stay {
	return append([]Stay(nil), s.stays[obj]...)
}

// Containments returns obj's containment history in time order.
func (s *Store) Containments(obj model.Tag) []Containment {
	return append([]Containment(nil), s.conts[obj]...)
}

// Path returns the sequence of locations obj visited, collapsing
// consecutive repeats — the path-query primitive of RFID warehousing.
func (s *Store) Path(obj model.Tag) []model.LocationID {
	var out []model.LocationID
	for _, st := range s.stays[obj] {
		if n := len(out); n == 0 || out[n-1] != st.Location {
			out = append(out, st.Location)
		}
	}
	return out
}

// DwellTime sums the epochs obj spent at loc; an open interval counts up
// to asOf.
func (s *Store) DwellTime(obj model.Tag, loc model.LocationID, asOf model.Epoch) model.Epoch {
	var total model.Epoch
	for _, st := range s.stays[obj] {
		if st.Location != loc {
			continue
		}
		ve := st.Ve
		if ve > asOf {
			ve = asOf
		}
		if ve > st.Vs {
			total += ve - st.Vs
		}
	}
	return total
}

// CoLocated reports whether a and b were at the same known location at t.
func (s *Store) CoLocated(a, b model.Tag, t model.Epoch) bool {
	la, ok := s.LocationAt(a, t)
	if !ok {
		return false
	}
	lb, ok := s.LocationAt(b, t)
	return ok && la == lb
}

// Interval is a half-open time span.
type Interval struct {
	Vs, Ve model.Epoch
}

// TogetherIntervals returns the time spans during which a and b were
// reported at the same known location — the co-location audit primitive
// (e.g. "when were these two pharma lots ever stored together?").
// Open-ended stays yield an open-ended (Ve = model.InfiniteEpoch) span.
func (s *Store) TogetherIntervals(a, b model.Tag) []Interval {
	var out []Interval
	sa, sb := s.stays[a], s.stays[b]
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		x, y := sa[i], sb[j]
		lo := x.Vs
		if y.Vs > lo {
			lo = y.Vs
		}
		hi := x.Ve
		if y.Ve < hi {
			hi = y.Ve
		}
		if lo < hi && x.Location == y.Location {
			// Merge adjacent spans at the same boundary.
			if n := len(out); n > 0 && out[n-1].Ve == lo {
				out[n-1].Ve = hi
			} else {
				out = append(out, Interval{Vs: lo, Ve: hi})
			}
		}
		if x.Ve <= y.Ve {
			i++
		} else {
			j++
		}
	}
	return out
}

// MissingReports returns obj's Missing messages in time order.
func (s *Store) MissingReports(obj model.Tag) []MissingReport {
	return append([]MissingReport(nil), s.missing[obj]...)
}

// MissingAt lists the objects reported missing and not yet re-seen at
// time t, in tag order.
func (s *Store) MissingAt(t model.Epoch) []model.Tag {
	var out []model.Tag
	for g, reports := range s.missing {
		// Last report at or before t.
		var last model.Epoch = model.EpochNone
		for _, r := range reports {
			if r.At <= t && r.At > last {
				last = r.At
			}
		}
		if last == model.EpochNone {
			continue
		}
		// A stay covering t means the object is located. A stay *started*
		// after the report means the object was re-seen — if that stay
		// has since ended without a fresh Missing, the object moved or
		// exited properly and is not missing at t.
		stays := s.stays[g]
		i := sort.Search(len(stays), func(i int) bool { return stays[i].Vs > t })
		if i > 0 {
			st := stays[i-1]
			if covers(st.Vs, st.Ve, t) || st.Vs > last {
				continue
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
