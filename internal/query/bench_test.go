package query

import (
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

// benchStream builds a well-formed stream of nObjects moving through 8
// locations over many epochs.
func benchStream(nObjects, moves int) []event.Event {
	var out []event.Event
	loc := make([]model.LocationID, nObjects)
	since := make([]model.Epoch, nObjects)
	for i := 0; i < nObjects; i++ {
		out = append(out, event.NewStartLocation(model.Tag(i+1), 0, 1))
		since[i] = 1
	}
	t := model.Epoch(1)
	for m := 0; m < moves; m++ {
		t += 5
		i := m % nObjects
		g := model.Tag(i + 1)
		out = append(out,
			event.NewEndLocation(g, loc[i], since[i], t),
			event.NewStartLocation(g, (loc[i]+1)%8, t))
		loc[i] = (loc[i] + 1) % 8
		since[i] = t
	}
	return out
}

func BenchmarkStoreFeed(b *testing.B) {
	evs := benchStream(1000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore()
		if err := s.Feed(evs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(evs)), "events")
}

func BenchmarkLocationAt(b *testing.B) {
	s := NewStore()
	if err := s.Feed(benchStream(1000, 20000)...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocationAt(model.Tag(i%1000+1), model.Epoch(i%100000))
	}
}

func BenchmarkObjectsAt(b *testing.B) {
	s := NewStore()
	if err := s.Feed(benchStream(1000, 20000)...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObjectsAt(model.LocationID(i%8), model.Epoch(i%100000))
	}
}
