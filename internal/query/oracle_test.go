package query

import (
	"math/rand"
	"testing"

	"spire/internal/compress"
	"spire/internal/inference"
	"spire/internal/model"
)

// TestStoreAgainstOracle drives random state sequences through the
// level-1 compressor into a Store and cross-checks every point query
// against the known per-epoch state — the Store's answers must equal what
// the compressor was told, at every (object, epoch) pair.
func TestStoreAgainstOracle(t *testing.T) {
	levelOf := func(g model.Tag) model.Level {
		switch {
		case g >= 300:
			return model.LevelItem
		case g >= 200:
			return model.LevelCase
		default:
			return model.LevelPallet
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tags := []model.Tag{100, 200, 201, 300, 301, 302}
		comp := compress.NewLevel1(levelOf)
		store := NewStore()

		// Oracle state per epoch.
		type state struct {
			loc    map[model.Tag]model.LocationID
			parent map[model.Tag]model.Tag
		}
		var history []state

		loc := map[model.Tag]model.LocationID{}
		parent := map[model.Tag]model.Tag{}
		for _, g := range tags {
			loc[g] = model.LocationID(rng.Intn(3))
			parent[g] = model.NoTag
		}
		const epochs = 200
		for e := 1; e <= epochs; e++ {
			// Random mutations, preserving the containment invariant
			// (child location follows parent).
			for _, g := range tags {
				switch r := rng.Float64(); {
				case r < 0.05:
					loc[g] = model.LocationUnknown
				case r < 0.15:
					loc[g] = model.LocationID(rng.Intn(3))
				}
			}
			for _, g := range tags {
				if levelOf(g) == model.LevelPallet {
					continue
				}
				if rng.Float64() < 0.05 {
					if parent[g] != model.NoTag {
						parent[g] = model.NoTag
					} else {
						// Attach to a random higher-level located object.
						var cands []model.Tag
						for _, p := range tags {
							if levelOf(p) > levelOf(g) && loc[p].Known() {
								cands = append(cands, p)
							}
						}
						if len(cands) > 0 {
							parent[g] = cands[rng.Intn(len(cands))]
						}
					}
				}
			}
			// Children inherit their parent's location (post-conflict
			// invariant).
			for _, g := range tags {
				if p := parent[g]; p != model.NoTag {
					top := p
					for parent[top] != model.NoTag {
						top = parent[top]
					}
					loc[g] = loc[top]
				}
			}

			res := &inference.Result{
				Now:       model.Epoch(e),
				Locations: make(map[model.Tag]model.LocationID),
				Parents:   make(map[model.Tag]model.Tag),
				Observed:  map[model.Tag]bool{},
			}
			snap := state{loc: map[model.Tag]model.LocationID{}, parent: map[model.Tag]model.Tag{}}
			for _, g := range tags {
				res.Locations[g] = loc[g]
				res.Parents[g] = parent[g]
				snap.loc[g] = loc[g]
				snap.parent[g] = parent[g]
			}
			history = append(history, snap)
			if err := store.Feed(comp.Compress(res)...); err != nil {
				t.Fatalf("seed %d epoch %d: %v", seed, e, err)
			}
		}
		if err := store.Feed(comp.Close(epochs + 1)...); err != nil {
			t.Fatal(err)
		}

		// Cross-check every object at sampled epochs.
		for e := 1; e <= epochs; e += 7 {
			snap := history[e-1]
			at := model.Epoch(e)
			for _, g := range tags {
				wantLoc := snap.loc[g]
				gotLoc, ok := store.LocationAt(g, at)
				if wantLoc.Known() != ok || (ok && gotLoc != wantLoc) {
					t.Fatalf("seed %d: LocationAt(%d, %d) = %v,%v; oracle %v",
						seed, g, at, gotLoc, ok, wantLoc)
				}
				wantPar := snap.parent[g]
				gotPar, ok := store.ContainerAt(g, at)
				if (wantPar != model.NoTag) != ok || (ok && gotPar != wantPar) {
					t.Fatalf("seed %d: ContainerAt(%d, %d) = %v,%v; oracle %v",
						seed, g, at, gotPar, ok, wantPar)
				}
				if wantLoc.Known() {
					objs := store.ObjectsAt(wantLoc, at)
					found := false
					for _, o := range objs {
						if o == g {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("seed %d: ObjectsAt(%v, %d) missing %d", seed, wantLoc, at, g)
					}
				}
			}
		}
	}
}
