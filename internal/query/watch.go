package query

import (
	"spire/internal/event"
	"spire/internal/model"
)

// Filter selects events by kind and payload. The zero value matches
// every event: an empty Kinds list matches all kinds and Object/Container
// equal to model.NoTag match any object. Location filtering is opted into
// with FilterLocation, since the zero LocationID names a real location.
type Filter struct {
	Kinds     []event.Kind
	Object    model.Tag
	Container model.Tag

	// Location restricts to location-kind events at this location when
	// FilterLocation is set.
	Location       model.LocationID
	FilterLocation bool
}

// Match reports whether e passes the filter.
func (f Filter) Match(e event.Event) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if e.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Object != model.NoTag && e.Object != f.Object {
		return false
	}
	if f.FilterLocation && (!e.Kind.Location() || e.Location != f.Location) {
		return false
	}
	if f.Container != model.NoTag && (!e.Kind.Containment() || e.Container != f.Container) {
		return false
	}
	return true
}

// Watcher dispatches streaming events to filtered subscribers — the
// "monitoring application" side of the substrate. It is not safe for
// concurrent use; drive it from the pipeline loop.
type Watcher struct {
	subs   map[int]subscription
	nextID int
}

type subscription struct {
	filter Filter
	fn     func(event.Event)
}

// NewWatcher returns an empty watcher.
func NewWatcher() *Watcher {
	return &Watcher{subs: make(map[int]subscription)}
}

// Subscribe registers fn for events passing the filter and returns a
// subscription id for Unsubscribe.
func (w *Watcher) Subscribe(f Filter, fn func(event.Event)) int {
	w.nextID++
	w.subs[w.nextID] = subscription{filter: f, fn: fn}
	return w.nextID
}

// Unsubscribe removes a subscription; unknown ids are ignored.
func (w *Watcher) Unsubscribe(id int) { delete(w.subs, id) }

// Dispatch feeds events to every matching subscriber, in subscription
// order for determinism.
func (w *Watcher) Dispatch(events ...event.Event) {
	if len(w.subs) == 0 {
		return
	}
	ids := make([]int, 0, len(w.subs))
	for id := range w.subs {
		ids = append(ids, id)
	}
	// Insertion sort keeps this allocation-light for the common few-subs
	// case.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, e := range events {
		for _, id := range ids {
			s, ok := w.subs[id]
			if ok && s.filter.Match(e) {
				s.fn(e)
			}
		}
	}
}
