package query

import (
	"spire/internal/event"
	"spire/internal/model"
)

// Filter selects events by kind and payload. The zero value matches
// every event: an empty Kinds list matches all kinds and Object/Container
// equal to model.NoTag match any object. Location filtering is opted into
// with FilterLocation, since the zero LocationID names a real location.
type Filter struct {
	Kinds     []event.Kind
	Object    model.Tag
	Container model.Tag

	// Location restricts to location-kind events at this location when
	// FilterLocation is set.
	Location       model.LocationID
	FilterLocation bool
}

// Match reports whether e passes the filter.
func (f Filter) Match(e event.Event) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if e.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Object != model.NoTag && e.Object != f.Object {
		return false
	}
	if f.FilterLocation && (!e.Kind.Location() || e.Location != f.Location) {
		return false
	}
	if f.Container != model.NoTag && (!e.Kind.Containment() || e.Container != f.Container) {
		return false
	}
	return true
}

// EpochObserver receives the substrate's compressed event stream with
// epoch framing: BeginEpoch advances the observer clock, OnEvent delivers
// each of the epoch's events, EndEpoch marks the batch complete (windows
// closing at or before now can resolve). Complex-event engines attach
// through this hook rather than per-event filters because absence
// semantics need the clock even on event-free epochs.
type EpochObserver interface {
	BeginEpoch(now model.Epoch)
	OnEvent(e event.Event)
	EndEpoch(now model.Epoch)
}

// Watcher dispatches streaming events to filtered subscribers — the
// "monitoring application" side of the substrate. It is not safe for
// concurrent use; drive it from the pipeline loop.
type Watcher struct {
	subs   map[int]subscription
	ids    []int // subscription order, kept sorted incrementally
	epochs []EpochObserver
	nextID int

	// dispatching defers id-slice compaction when a callback unsubscribes
	// mid-dispatch: the entry is removed from subs immediately (so it stops
	// receiving events) and swept from ids after the dispatch loop.
	dispatching bool
	dirty       bool
}

type subscription struct {
	filter Filter
	fn     func(event.Event)
}

// NewWatcher returns an empty watcher.
func NewWatcher() *Watcher {
	return &Watcher{subs: make(map[int]subscription)}
}

// Subscribe registers fn for events passing the filter and returns a
// subscription id for Unsubscribe.
func (w *Watcher) Subscribe(f Filter, fn func(event.Event)) int {
	w.nextID++
	w.subs[w.nextID] = subscription{filter: f, fn: fn}
	// nextID is strictly increasing, so appending keeps ids sorted.
	w.ids = append(w.ids, w.nextID)
	return w.nextID
}

// Unsubscribe removes a subscription; unknown ids are ignored.
func (w *Watcher) Unsubscribe(id int) {
	if _, ok := w.subs[id]; !ok {
		return
	}
	delete(w.subs, id)
	if w.dispatching {
		w.dirty = true // swept after the dispatch loop
		return
	}
	for i, v := range w.ids {
		if v == id {
			w.ids = append(w.ids[:i], w.ids[i+1:]...)
			break
		}
	}
}

// SubscribeEpochs attaches an epoch observer. Observers receive every
// event (unfiltered) plus the epoch framing; they cannot be detached —
// they live as long as the watcher, matching the pipeline wiring pattern.
func (w *Watcher) SubscribeEpochs(o EpochObserver) {
	w.epochs = append(w.epochs, o)
}

// BeginEpoch forwards the epoch-open to attached epoch observers.
func (w *Watcher) BeginEpoch(now model.Epoch) {
	for _, o := range w.epochs {
		o.BeginEpoch(now)
	}
}

// EndEpoch forwards the epoch-close to attached epoch observers.
func (w *Watcher) EndEpoch(now model.Epoch) {
	for _, o := range w.epochs {
		o.EndEpoch(now)
	}
}

// Dispatch feeds events to every matching subscriber in subscription
// order, and to every epoch observer. It allocates nothing: the sorted id
// slice is maintained incrementally by Subscribe/Unsubscribe, so the
// pipeline can call this per epoch without touching the hot-loop
// allocation budget.
func (w *Watcher) Dispatch(events ...event.Event) {
	if len(w.ids) == 0 && len(w.epochs) == 0 {
		return
	}
	w.dispatching = true
	for _, e := range events {
		for _, id := range w.ids {
			if s, ok := w.subs[id]; ok && s.filter.Match(e) {
				s.fn(e)
			}
		}
		for _, o := range w.epochs {
			o.OnEvent(e)
		}
	}
	w.dispatching = false
	if w.dirty {
		w.dirty = false
		live := w.ids[:0]
		for _, id := range w.ids {
			if _, ok := w.subs[id]; ok {
				live = append(live, id)
			}
		}
		w.ids = live
	}
}
