package smurf

import (
	"math/rand"
	"testing"

	"spire/internal/model"
)

func BenchmarkProcessEpoch(b *testing.B) {
	readers := []model.Reader{{ID: 1, Location: 0, Period: 1, ReadRate: 1}}
	c, err := New(DefaultConfig(), readers)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Warm with 2000 tags.
	warm := model.NewObservation(1)
	for i := 0; i < 2000; i++ {
		warm.Add(1, model.Tag(i+1))
	}
	if _, err := c.ProcessEpoch(warm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := model.NewObservation(model.Epoch(i + 2))
		for g := 1; g <= 2000; g++ {
			if rng.Float64() < 0.85 {
				o.Add(1, model.Tag(g))
			}
		}
		if _, err := c.ProcessEpoch(o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2000, "tags")
}
