package smurf

import (
	"math/rand"
	"testing"

	"spire/internal/model"
)

var testReaders = []model.Reader{
	{ID: 1, Location: 0, Period: 1, ReadRate: 1},
	{ID: 2, Location: 1, Period: 1, ReadRate: 1},
	{ID: 3, Location: 2, Period: 20, ReadRate: 1}, // shelf-like reader
}

func newCleaner(t *testing.T, cfg Config) *Cleaner {
	t.Helper()
	c, err := New(cfg, testReaders)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func obs(now model.Epoch, reader model.ReaderID, tags ...model.Tag) *model.Observation {
	o := model.NewObservation(now)
	o.ByReader[reader] = tags
	return o
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Delta: 0, MinWindow: 1, MaxWindow: 10, Alpha: 0.1, FloorP: 0.1},
		{Delta: 1, MinWindow: 1, MaxWindow: 10, Alpha: 0.1, FloorP: 0.1},
		{Delta: 0.05, MinWindow: 0, MaxWindow: 10, Alpha: 0.1, FloorP: 0.1},
		{Delta: 0.05, MinWindow: 9, MaxWindow: 5, Alpha: 0.1, FloorP: 0.1},
		{Delta: 0.05, MinWindow: 1, MaxWindow: 10, Alpha: 0, FloorP: 0.1},
		{Delta: 0.05, MinWindow: 1, MaxWindow: 10, Alpha: 0.1, FloorP: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}, testReaders); err == nil {
		t.Error("New must validate")
	}
}

func TestUnknownReaderRejected(t *testing.T) {
	c := newCleaner(t, DefaultConfig())
	if _, err := c.ProcessEpoch(obs(1, 99, 5)); err == nil {
		t.Error("unknown reader must fail")
	}
}

func TestSmoothsOverMissedReadings(t *testing.T) {
	c := newCleaner(t, DefaultConfig())
	// Read every epoch for a while, then a couple of misses: the tag must
	// remain present at its location.
	for e := model.Epoch(1); e <= 10; e++ {
		if _, err := c.ProcessEpoch(obs(e, 1, 7)); err != nil {
			t.Fatal(err)
		}
	}
	for e := model.Epoch(11); e <= 12; e++ {
		res, err := c.ProcessEpoch(obs(e, 1))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Locations[7]; got != 0 {
			t.Errorf("epoch %d: smoothed location = %v, want L0", e, got)
		}
		if res.Observed[7] {
			t.Error("missed tag must not be marked observed")
		}
	}
}

func TestLongAbsenceReportsAway(t *testing.T) {
	c := newCleaner(t, DefaultConfig())
	for e := model.Epoch(1); e <= 10; e++ {
		if _, err := c.ProcessEpoch(obs(e, 1, 7)); err != nil {
			t.Fatal(err)
		}
	}
	var last model.LocationID
	for e := model.Epoch(11); e <= 60; e++ {
		res, err := c.ProcessEpoch(obs(e, 1))
		if err != nil {
			t.Fatal(err)
		}
		last = res.Locations[7]
	}
	if last != model.LocationUnknown {
		t.Errorf("after long absence location = %v, want unknown", last)
	}
}

func TestTransitionDetectionShrinksWindow(t *testing.T) {
	cfg := DefaultConfig()
	c := newCleaner(t, cfg)
	// Dense reads build a confident rate estimate.
	for e := model.Epoch(1); e <= 30; e++ {
		if _, err := c.ProcessEpoch(obs(e, 1, 7)); err != nil {
			t.Fatal(err)
		}
	}
	// Sudden silence: the transition detector must collapse the window
	// well before a full completeness window (ln(1/δ)/1 ≈ 3, but with the
	// pre-silence window grown the decisive factor is detection).
	away := model.Epoch(-1)
	for e := model.Epoch(31); e <= 80; e++ {
		res, err := c.ProcessEpoch(obs(e, 1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Locations[7] == model.LocationUnknown {
			away = e
			break
		}
	}
	if away < 0 {
		t.Fatal("tag never reported away")
	}
	if away > 45 {
		t.Errorf("transition detected only at epoch %d; expected a prompt collapse", away)
	}
}

func TestLocationFollowsMostRecentReader(t *testing.T) {
	c := newCleaner(t, DefaultConfig())
	for e := model.Epoch(1); e <= 5; e++ {
		if _, err := c.ProcessEpoch(obs(e, 1, 7)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.ProcessEpoch(obs(6, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Locations[7]; got != 1 {
		t.Errorf("location = %v, want L1 (most recent reader)", got)
	}
	if !res.Observed[7] {
		t.Error("tag read this epoch must be observed")
	}
	if res.Parents[7] != model.NoTag {
		t.Error("SMURF must not infer containment")
	}
}

func TestSparseReaderTagHeldPresent(t *testing.T) {
	// A tag owned by a period-20 (shelf-like) reader must be held present
	// between that reader's interrogation cycles: windows count owner
	// cycles, not wall-clock epochs.
	c := newCleaner(t, DefaultConfig())
	for e := model.Epoch(1); e <= 200; e++ {
		var o *model.Observation
		if e%20 == 0 {
			o = obs(e, 3, 7)
		} else {
			o = obs(e, 3)
		}
		res, err := c.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		if e >= 20 && res.Locations[7] != 2 {
			t.Errorf("epoch %d: sparse tag reported %v, want L2", e, res.Locations[7])
		}
	}
}

func TestForgetAndLen(t *testing.T) {
	c := newCleaner(t, DefaultConfig())
	if _, err := c.ProcessEpoch(obs(1, 1, 7, 8)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Forget(7)
	if c.Len() != 1 {
		t.Fatalf("Len after Forget = %d, want 1", c.Len())
	}
}

func TestNoisyStreamAccuracy(t *testing.T) {
	// Statistical sanity: with a 0.7 read rate, the smoothed presence must
	// be far more accurate than the raw readings.
	rng := rand.New(rand.NewSource(3))
	c := newCleaner(t, DefaultConfig())
	present, rawHits, smoothHits := 0, 0, 0
	for e := model.Epoch(1); e <= 400; e++ {
		read := rng.Float64() < 0.7
		var o *model.Observation
		if read {
			o = obs(e, 1, 7)
		} else {
			o = obs(e, 1)
		}
		res, err := c.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		if e <= 5 {
			continue // warm-up
		}
		present++
		if read {
			rawHits++
		}
		if res.Locations[7] == 0 {
			smoothHits++
		}
	}
	if smoothHits <= rawHits {
		t.Errorf("smoothing (%d/%d) must beat raw readings (%d/%d)",
			smoothHits, present, rawHits, present)
	}
	if float64(smoothHits)/float64(present) < 0.95 {
		t.Errorf("smoothed presence %d/%d below 95%%", smoothHits, present)
	}
}
