// Package smurf re-implements SMURF, the adaptive per-tag smoothing
// cleaner of Jeffery, Garofalakis, and Franklin (VLDB 2006), which the
// paper uses as its baseline (Expts 7-8).
//
// SMURF views RFID readings as a random sample of the tags in a reader's
// range and sizes each tag's smoothing window statistically. SMURF runs
// reader-local (it is per-reader middleware in HiFi), so windows are
// counted in the owning reader's interrogation cycles, not wall-clock
// epochs: a shelf reader that interrogates once a minute gives a tag one
// sampling opportunity per minute.
//
// Per tag, the cleaner keeps an exponentially weighted estimate p̂ of the
// per-cycle detection probability, updated at every interrogation cycle of
// the reader that currently "owns" the tag (the last reader to have read
// it). The binomial completeness condition requires a window of
//
//	w* = ceil(ln(1/δ)/p̂)
//
// cycles to keep the false-negative probability below δ; the tag is
// smoothed in (reported present at the owning reader's location) until it
// has missed w* consecutive cycles, after which it is reported away. This
// gap rule is the transition detector: the probability of w* consecutive
// misses while present is (1-p̂)^w* < δ.
//
// As in the paper's comparison, the cleaner is extended with static reader
// locations so its output is a location stream (never containment) that
// level-1 compression can consume.
package smurf

import (
	"fmt"
	"math"

	"spire/internal/inference"
	"spire/internal/model"
)

// Config parameterizes the cleaner.
type Config struct {
	// Delta is the allowed false-negative probability of the completeness
	// condition (typical: 0.05).
	Delta float64
	// MinWindow and MaxWindow clamp w*, in owner-reader cycles.
	MinWindow, MaxWindow int
	// Alpha is the EWMA weight for the per-cycle detection estimate.
	Alpha float64
	// FloorP bounds p̂ away from zero so w* stays finite.
	FloorP float64
}

// DefaultConfig returns the conventional SMURF parameters.
func DefaultConfig() Config {
	return Config{Delta: 0.05, MinWindow: 2, MaxWindow: 30, Alpha: 0.1, FloorP: 0.1}
}

// Validate checks parameter ranges.
func (c Config) Validate() error {
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("smurf: Delta %v out of (0,1)", c.Delta)
	}
	if c.MinWindow < 1 || c.MaxWindow < c.MinWindow {
		return fmt.Errorf("smurf: window range [%d,%d] invalid", c.MinWindow, c.MaxWindow)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("smurf: Alpha %v out of (0,1]", c.Alpha)
	}
	if c.FloorP <= 0 || c.FloorP > 1 {
		return fmt.Errorf("smurf: FloorP %v out of (0,1]", c.FloorP)
	}
	return nil
}

// tagState is the per-tag smoothing state.
type tagState struct {
	owner   model.ReaderID
	loc     model.LocationID
	period  model.Epoch
	p       float64     // EWMA per-cycle detection estimate
	lastAt  model.Epoch // epoch of the last actual reading
	misses  int         // consecutive missed cycles of the owner
	present bool
}

// Cleaner smooths a raw RFID stream tag by tag. It is not safe for
// concurrent use.
type Cleaner struct {
	cfg     Config
	readers map[model.ReaderID]model.Reader
	states  map[model.Tag]*tagState
}

// New builds a Cleaner for the given reader deployment.
func New(cfg Config, readers []model.Reader) (*Cleaner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cleaner{
		cfg:     cfg,
		readers: make(map[model.ReaderID]model.Reader, len(readers)),
		states:  make(map[model.Tag]*tagState),
	}
	for _, r := range readers {
		if r.Period < 1 {
			r.Period = 1
		}
		c.readers[r.ID] = r
	}
	return c, nil
}

// Len reports the number of tags currently tracked.
func (c *Cleaner) Len() int { return len(c.states) }

// Forget drops a tag's state.
func (c *Cleaner) Forget(g model.Tag) { delete(c.states, g) }

// window returns w* for the tag's current detection estimate.
func (c *Cleaner) window(p float64) int {
	w := int(math.Ceil(math.Log(1/c.cfg.Delta) / p))
	if w < c.cfg.MinWindow {
		w = c.cfg.MinWindow
	}
	if w > c.cfg.MaxWindow {
		w = c.cfg.MaxWindow
	}
	return w
}

// ProcessEpoch ingests one epoch's observation and returns the smoothed
// interpretation as an inference.Result: every tag within its smoothing
// window is reported present at the location of the reader that read it
// last; a tag whose window has been missed w* times in a row is reported
// away (model.LocationUnknown). SMURF infers no containment, so Parents
// maps every tag to model.NoTag.
func (c *Cleaner) ProcessEpoch(o *model.Observation) (*inference.Result, error) {
	now := o.Time
	// Ingest readings: the reading reassigns ownership to its reader.
	for rid, tags := range o.ByReader {
		r, ok := c.readers[rid]
		if !ok {
			return nil, fmt.Errorf("smurf: reading from unknown reader %d", rid)
		}
		for _, g := range tags {
			st := c.states[g]
			if st == nil {
				st = &tagState{p: 1}
				c.states[g] = st
			}
			st.owner = rid
			st.loc = r.Location
			st.period = r.Period
			st.lastAt = now
			st.misses = 0
			st.present = true
		}
	}

	res := &inference.Result{
		Now:       now,
		Locations: make(map[model.Tag]model.LocationID, len(c.states)),
		Parents:   make(map[model.Tag]model.Tag, len(c.states)),
		Observed:  make(map[model.Tag]bool),
	}
	for g, st := range c.states {
		// Long-dead tags are forgotten so memory and per-epoch work stay
		// proportional to the live population; the downstream compressor
		// has latched their Missing state already.
		if !st.present && now-st.lastAt > 4*model.Epoch(c.cfg.MaxWindow)*st.period {
			delete(c.states, g)
			continue
		}
		// Update the detection estimate at each interrogation cycle of
		// the owning reader.
		if now%st.period == 0 || st.lastAt == now {
			hit := 0.0
			if st.lastAt == now {
				hit = 1
			}
			st.p = (1-c.cfg.Alpha)*st.p + c.cfg.Alpha*hit
			if st.p < c.cfg.FloorP {
				st.p = c.cfg.FloorP
			}
			if st.lastAt != now && st.present {
				st.misses++
			}
		}
		if st.present && st.misses >= c.window(st.p) {
			st.present = false
		}
		res.Parents[g] = model.NoTag
		if st.present {
			res.Locations[g] = st.loc
			if st.lastAt == now {
				res.Observed[g] = true
			}
		} else {
			res.Locations[g] = model.LocationUnknown
		}
	}
	return res, nil
}
