// Package epc encodes and decodes the 64-bit SGTIN-style tag identifiers
// used throughout SPIRE.
//
// The EPCglobal tag data standard (the paper's reference [8]) requires that
// an object's packaging level — item, case, or pallet — be recoverable from
// its tag ID. SPIRE's data-capture module exploits this to place graph
// nodes into layers without any side information. This package provides a
// compact, reversible encoding:
//
//	bits 62..63  packaging level (2 bits)
//	bits 40..61  company prefix   (22 bits)
//	bits 20..39  item reference   (20 bits)
//	bits  0..19  serial number    (20 bits)
//
// The all-zero tag is reserved (model.NoTag), so Encode never produces it:
// a serial of zero is stored as-is but the company prefix is required to be
// non-zero.
package epc

import (
	"fmt"

	"spire/internal/model"
)

// Field widths and shifts of the packed layout.
const (
	levelBits   = 2
	companyBits = 22
	itemRefBits = 20
	serialBits  = 20

	serialShift  = 0
	itemRefShift = serialShift + serialBits
	companyShift = itemRefShift + itemRefBits
	levelShift   = companyShift + companyBits

	// MaxCompany, MaxItemRef, and MaxSerial are the largest encodable
	// field values.
	MaxCompany = 1<<companyBits - 1
	MaxItemRef = 1<<itemRefBits - 1
	MaxSerial  = 1<<serialBits - 1
)

// Identity is the decoded form of a tag.
type Identity struct {
	Level   model.Level
	Company uint32
	ItemRef uint32
	Serial  uint32
}

// Encode packs an identity into a tag. The company prefix must be non-zero
// (the zero tag is reserved) and every field must fit its width.
func Encode(id Identity) (model.Tag, error) {
	if !id.Level.Valid() {
		return model.NoTag, fmt.Errorf("epc: invalid level %d", id.Level)
	}
	if id.Company == 0 {
		return model.NoTag, fmt.Errorf("epc: company prefix must be non-zero")
	}
	if id.Company > MaxCompany {
		return model.NoTag, fmt.Errorf("epc: company prefix %d exceeds %d", id.Company, MaxCompany)
	}
	if id.ItemRef > MaxItemRef {
		return model.NoTag, fmt.Errorf("epc: item reference %d exceeds %d", id.ItemRef, MaxItemRef)
	}
	if id.Serial > MaxSerial {
		return model.NoTag, fmt.Errorf("epc: serial %d exceeds %d", id.Serial, MaxSerial)
	}
	t := uint64(id.Level)<<levelShift |
		uint64(id.Company)<<companyShift |
		uint64(id.ItemRef)<<itemRefShift |
		uint64(id.Serial)<<serialShift
	return model.Tag(t), nil
}

// MustEncode is Encode for statically valid identities; it panics on error.
func MustEncode(id Identity) model.Tag {
	t, err := Encode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// Decode unpacks a tag into its identity. The zero tag is rejected.
func Decode(t model.Tag) (Identity, error) {
	if t == model.NoTag {
		return Identity{}, fmt.Errorf("epc: cannot decode the zero tag")
	}
	id := Identity{
		Level:   model.Level(uint64(t) >> levelShift),
		Company: uint32(uint64(t) >> companyShift & MaxCompany),
		ItemRef: uint32(uint64(t) >> itemRefShift & MaxItemRef),
		Serial:  uint32(uint64(t) >> serialShift & MaxSerial),
	}
	if !id.Level.Valid() {
		return Identity{}, fmt.Errorf("epc: tag %d carries invalid level %d", t, id.Level)
	}
	if id.Company == 0 {
		return Identity{}, fmt.Errorf("epc: tag %d carries a zero company prefix", t)
	}
	return id, nil
}

// LevelOf extracts just the packaging level, which is all the graph layers
// need. Tags with a corrupt level field report ok=false.
func LevelOf(t model.Tag) (model.Level, bool) {
	l := model.Level(uint64(t) >> levelShift)
	return l, l.Valid() && t != model.NoTag
}

// String renders an identity in a URN-like form for logs and debugging.
func (id Identity) String() string {
	return fmt.Sprintf("epc:%s:%d.%d.%d", id.Level, id.Company, id.ItemRef, id.Serial)
}

// Sequencer hands out fresh tags of each level with a fixed company
// prefix. The simulator uses one sequencer per run so tag streams are
// deterministic under a fixed seed.
type Sequencer struct {
	company uint32
	itemRef [model.NumLevels]uint32
	serial  [model.NumLevels]uint32
}

// NewSequencer returns a sequencer minting tags under the given non-zero
// company prefix.
func NewSequencer(company uint32) (*Sequencer, error) {
	if company == 0 || company > MaxCompany {
		return nil, fmt.Errorf("epc: bad company prefix %d", company)
	}
	return &Sequencer{company: company}, nil
}

// Next mints a fresh tag at the given packaging level.
func (s *Sequencer) Next(lvl model.Level) (model.Tag, error) {
	if !lvl.Valid() {
		return model.NoTag, fmt.Errorf("epc: invalid level %d", lvl)
	}
	i := int(lvl)
	if s.serial[i] == MaxSerial {
		s.serial[i] = 0
		if s.itemRef[i] == MaxItemRef {
			return model.NoTag, fmt.Errorf("epc: tag space exhausted for level %s", lvl)
		}
		s.itemRef[i]++
	} else {
		s.serial[i]++
	}
	return Encode(Identity{
		Level:   lvl,
		Company: s.company,
		ItemRef: s.itemRef[i],
		Serial:  s.serial[i],
	})
}
