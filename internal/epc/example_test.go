package epc_test

import (
	"fmt"

	"spire/internal/epc"
	"spire/internal/model"
)

func ExampleEncode() {
	tag, err := epc.Encode(epc.Identity{
		Level:   model.LevelCase,
		Company: 4711,
		ItemRef: 12,
		Serial:  345,
	})
	if err != nil {
		panic(err)
	}
	id, err := epc.Decode(tag)
	if err != nil {
		panic(err)
	}
	fmt.Println(id)
	lvl, _ := epc.LevelOf(tag)
	fmt.Println("layer:", lvl)
	// Output:
	// epc:case:4711.12.345
	// layer: case
}

func ExampleSequencer() {
	seq, err := epc.NewSequencer(99)
	if err != nil {
		panic(err)
	}
	for _, lvl := range []model.Level{model.LevelPallet, model.LevelCase, model.LevelItem} {
		tag, err := seq.Next(lvl)
		if err != nil {
			panic(err)
		}
		id, _ := epc.Decode(tag)
		fmt.Println(id)
	}
	// Output:
	// epc:pallet:99.0.1
	// epc:case:99.0.1
	// epc:item:99.0.1
}
