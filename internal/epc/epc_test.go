package epc

import (
	"testing"
	"testing/quick"

	"spire/internal/model"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Identity{
		{Level: model.LevelItem, Company: 1, ItemRef: 0, Serial: 0},
		{Level: model.LevelCase, Company: 12345, ItemRef: 77, Serial: 99},
		{Level: model.LevelPallet, Company: MaxCompany, ItemRef: MaxItemRef, Serial: MaxSerial},
	}
	for _, id := range cases {
		tag, err := Encode(id)
		if err != nil {
			t.Fatalf("Encode(%v): %v", id, err)
		}
		got, err := Decode(tag)
		if err != nil {
			t.Fatalf("Decode(%v): %v", tag, err)
		}
		if got != id {
			t.Errorf("round trip: got %v, want %v", got, id)
		}
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	bad := []Identity{
		{Level: model.Level(7), Company: 1},
		{Level: model.LevelItem, Company: 0},
		{Level: model.LevelItem, Company: MaxCompany + 1},
		{Level: model.LevelItem, Company: 1, ItemRef: MaxItemRef + 1},
		{Level: model.LevelItem, Company: 1, Serial: MaxSerial + 1},
	}
	for _, id := range bad {
		if _, err := Encode(id); err == nil {
			t.Errorf("Encode(%v) should fail", id)
		}
	}
}

func TestDecodeRejectsZeroAndCorrupt(t *testing.T) {
	if _, err := Decode(model.NoTag); err == nil {
		t.Error("Decode(NoTag) should fail")
	}
	// Level bits 11 = 3 is not a valid packaging level.
	corrupt := model.Tag(uint64(3)<<levelShift | uint64(1)<<companyShift)
	if _, err := Decode(corrupt); err == nil {
		t.Error("Decode of corrupt level should fail")
	}
	// Zero company prefix.
	noCompany := model.Tag(uint64(model.LevelCase) << levelShift)
	if _, err := Decode(noCompany); err == nil {
		t.Error("Decode of zero company prefix should fail")
	}
}

func TestLevelOf(t *testing.T) {
	tag := MustEncode(Identity{Level: model.LevelPallet, Company: 42, Serial: 7})
	lvl, ok := LevelOf(tag)
	if !ok || lvl != model.LevelPallet {
		t.Errorf("LevelOf = %v,%v; want pallet,true", lvl, ok)
	}
	if _, ok := LevelOf(model.NoTag); ok {
		t.Error("LevelOf(NoTag) must report !ok")
	}
	if _, ok := LevelOf(model.Tag(uint64(3) << levelShift)); ok {
		t.Error("LevelOf of corrupt level must report !ok")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode of invalid identity must panic")
		}
	}()
	MustEncode(Identity{Level: model.LevelItem, Company: 0})
}

func TestIdentityString(t *testing.T) {
	id := Identity{Level: model.LevelCase, Company: 7, ItemRef: 8, Serial: 9}
	if got, want := id.String(), "epc:case:7.8.9"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSequencerDistinctAndTyped(t *testing.T) {
	s, err := NewSequencer(500)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[model.Tag]bool)
	for i := 0; i < 1000; i++ {
		for _, lvl := range []model.Level{model.LevelItem, model.LevelCase, model.LevelPallet} {
			tag, err := s.Next(lvl)
			if err != nil {
				t.Fatalf("Next(%v): %v", lvl, err)
			}
			if seen[tag] {
				t.Fatalf("duplicate tag %d", tag)
			}
			seen[tag] = true
			got, ok := LevelOf(tag)
			if !ok || got != lvl {
				t.Fatalf("tag level = %v, want %v", got, lvl)
			}
		}
	}
}

func TestSequencerRollsItemRef(t *testing.T) {
	s, err := NewSequencer(1)
	if err != nil {
		t.Fatal(err)
	}
	s.serial[model.LevelItem] = MaxSerial
	tag, err := s.Next(model.LevelItem)
	if err != nil {
		t.Fatal(err)
	}
	id, err := Decode(tag)
	if err != nil {
		t.Fatal(err)
	}
	if id.ItemRef != 1 || id.Serial != 0 {
		t.Errorf("rollover produced %v, want itemRef=1 serial=0", id)
	}
	s.serial[model.LevelItem] = MaxSerial
	s.itemRef[model.LevelItem] = MaxItemRef
	if _, err := s.Next(model.LevelItem); err == nil {
		t.Error("exhausted sequencer must error")
	}
}

func TestSequencerValidation(t *testing.T) {
	if _, err := NewSequencer(0); err == nil {
		t.Error("NewSequencer(0) must fail")
	}
	if _, err := NewSequencer(MaxCompany + 1); err == nil {
		t.Error("NewSequencer(overflow) must fail")
	}
	s, _ := NewSequencer(1)
	if _, err := s.Next(model.Level(9)); err == nil {
		t.Error("Next with invalid level must fail")
	}
}

// Property: every encodable identity round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(lvl uint8, company, itemRef, serial uint32) bool {
		id := Identity{
			Level:   model.Level(lvl % 3),
			Company: company%MaxCompany + 1,
			ItemRef: itemRef % (MaxItemRef + 1),
			Serial:  serial % (MaxSerial + 1),
		}
		tag, err := Encode(id)
		if err != nil {
			return false
		}
		got, err := Decode(tag)
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
