package cep

import (
	"sync"

	"spire/internal/event"
	"spire/internal/model"
)

// Config bounds per-subscription engine state.
type Config struct {
	// MaxRuns caps the active (partial-match) runs a subscription may
	// hold; exceeding it evicts the oldest run. 0 selects DefaultMaxRuns.
	MaxRuns int
	// MaxMatches caps a subscription's match buffer; exceeding it drops
	// the oldest match and increments the drop counter (drop-oldest
	// backpressure). 0 selects DefaultMaxMatches.
	MaxMatches int
}

// Default state bounds: generous enough for the warehouse detectors,
// small enough that a hostile pattern (e.g. any() anchoring a run on
// every event) cannot grow engine state with the stream.
const (
	DefaultMaxRuns    = 256
	DefaultMaxMatches = 1024
)

// Match is one completed pattern instance.
type Match struct {
	Sub    int         `json:"sub"`
	Object model.Tag   `json:"object"`
	Start  model.Epoch `json:"start"` // epoch of the first positive step
	At     model.Epoch `json:"at"`    // completion epoch
}

// SubStats is the accounting snapshot of one subscription.
type SubStats struct {
	ID      int    `json:"id"`
	Pattern string `json:"pattern"`
	Runs    int    `json:"runs"`    // active partial matches
	Matches uint64 `json:"matches"` // total matches ever
	Buffer  int    `json:"buffer"`  // matches currently buffered
	Dropped uint64 `json:"dropped"` // matches dropped by backpressure
	Evicted uint64 `json:"evicted"` // runs evicted by the cap
}

// run is one active partial match. Runs are linked into two intrusive
// lists — the per-object list event processing walks, and the
// per-subscription list (creation order) the cap evicts from — plus at
// most one deadline-heap slot. Dead runs are unlinked immediately but may
// linger in the heap until popped; they are recycled through the free
// list once no structure references them.
type run struct {
	sub *subscription
	obj model.Tag

	t1       model.Epoch
	deadline model.Epoch // InfiniteEpoch when the pattern is unbounded
	idx      int         // next unsatisfied step
	binds    [MaxSteps]binding

	dead   bool
	inHeap bool

	objPrev, objNext *run
	subPrev, subNext *run
	free             *run
}

type subscription struct {
	id   int
	pat  *Pattern
	fn   func(Match) // optional live-match callback
	dead bool

	// Creation-order run list: head is the oldest (the eviction victim).
	runHead, runTail *run
	nrun             int

	// Bounded match ring.
	ring    []Match
	rstart  int
	rlen    int
	total   uint64
	dropped uint64
	evicted uint64
}

// Engine evaluates subscriptions incrementally over the output event
// stream. All methods are safe for concurrent use (one mutex): the
// pipeline loop feeds epochs while HTTP handlers subscribe and read
// matches.
type Engine struct {
	mu      sync.Mutex
	cfg     Config
	now     model.Epoch
	subs    map[int]*subscription
	nextID  int
	deadSub int

	// byKind indexes live subscriptions by the kinds their first step can
	// match, so an event only touches subscriptions it could anchor.
	// Entries for dead subscriptions are skipped lazily and compacted when
	// they outnumber the live ones.
	//
	// Subscriptions whose first step names a specific object (obj=N) are
	// discriminated further, by (kind, tag) in byKindTag: an event then
	// visits only the subscriptions anchored on its own object, so ten
	// thousand per-tag watches cost a dispatch one map probe, not ten
	// thousand first-step rejections. Tag-agnostic first steps stay in
	// byKind.
	byKind    [6][]*subscription
	byKindTag [6]map[model.Tag][]*subscription

	objRuns map[model.Tag]*run // head of the per-object run list
	heap    []*run             // min-heap on deadline
	freeRun *run
	nrun    int

	tel *Instruments

	// testEvict observes cap evictions (oldest-run property test): the
	// evicted run's anchor epoch and the oldest retained run's.
	testEvict func(evicted, oldestRetained model.Epoch)
}

// NewEngine builds an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	if cfg.MaxMatches <= 0 {
		cfg.MaxMatches = DefaultMaxMatches
	}
	return &Engine{
		cfg:     cfg,
		subs:    make(map[int]*subscription),
		objRuns: make(map[model.Tag]*run),
	}
}

// Subscribe parses src and registers it, returning the subscription id.
func (e *Engine) Subscribe(src string) (int, error) {
	return e.SubscribeFunc(src, nil)
}

// SubscribeFunc additionally registers a callback invoked inline (under
// the engine lock, on the dispatching goroutine) for every match.
func (e *Engine) SubscribeFunc(src string, fn func(Match)) (int, error) {
	p, err := Parse(src)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	s := &subscription{id: e.nextID, pat: p, fn: fn}
	e.subs[s.id] = s
	for k := event.StartLocation; k <= event.Missing; k++ {
		if !p.Steps[0].Kinds.Has(k) {
			continue
		}
		if tag := p.Steps[0].Tag; tag != model.NoTag {
			if e.byKindTag[k] == nil {
				e.byKindTag[k] = make(map[model.Tag][]*subscription)
			}
			e.byKindTag[k][tag] = append(e.byKindTag[k][tag], s)
		} else {
			e.byKind[k] = append(e.byKind[k], s)
		}
	}
	if e.tel != nil {
		e.tel.Subs.Set(int64(len(e.subs)))
	}
	return s.id, nil
}

// Unsubscribe removes a subscription and frees its runs; unknown ids are
// ignored.
func (e *Engine) Unsubscribe(id int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.subs[id]
	if !ok {
		return
	}
	delete(e.subs, id)
	s.dead = true
	e.deadSub++
	for r := s.runHead; r != nil; {
		next := r.subNext
		e.killRun(r)
		r = next
	}
	// Compact the kind indexes once dead entries dominate, so
	// subscription churn cannot grow them without bound.
	if e.deadSub > len(e.subs)+16 {
		for k := range e.byKind {
			live := e.byKind[k][:0]
			for _, s := range e.byKind[k] {
				if !s.dead {
					live = append(live, s)
				}
			}
			// Clear the tail so dead subscriptions are collectable.
			for i := len(live); i < len(e.byKind[k]); i++ {
				e.byKind[k][i] = nil
			}
			e.byKind[k] = live
		}
		for k := range e.byKindTag {
			for tag, subs := range e.byKindTag[k] {
				live := subs[:0]
				for _, s := range subs {
					if !s.dead {
						live = append(live, s)
					}
				}
				if len(live) == 0 {
					delete(e.byKindTag[k], tag)
					continue
				}
				for i := len(live); i < len(subs); i++ {
					subs[i] = nil
				}
				e.byKindTag[k][tag] = live
			}
		}
		e.deadSub = 0
	}
	if e.tel != nil {
		e.tel.Subs.Set(int64(len(e.subs)))
		e.tel.Runs.Set(int64(e.nrun))
	}
}

// Epoch advances the engine clock to now, processes the epoch's events in
// stream order, and resolves the runs whose windows closed. The clock
// must not go backwards; events carry the epoch they were dispatched in.
func (e *Engine) Epoch(now model.Epoch, events []event.Event) {
	e.mu.Lock()
	if now > e.now {
		e.now = now
	}
	for i := range events {
		e.process(e.now, events[i])
	}
	e.expire(e.now)
	e.mu.Unlock()
}

// BeginEpoch, OnEvent and EndEpoch are the query.Watcher-shaped entry
// points (see Attach in watch.go): BeginEpoch sets the clock, OnEvent
// processes one dispatched event, EndEpoch resolves closed windows.
func (e *Engine) BeginEpoch(now model.Epoch) {
	e.mu.Lock()
	if now > e.now {
		e.now = now
	}
	e.mu.Unlock()
}

// OnEvent processes one event at the current clock.
func (e *Engine) OnEvent(ev event.Event) {
	e.mu.Lock()
	e.process(e.now, ev)
	e.mu.Unlock()
}

// EndEpoch resolves runs whose windows closed at or before now.
func (e *Engine) EndEpoch(now model.Epoch) {
	e.mu.Lock()
	if now > e.now {
		e.now = now
	}
	e.expire(e.now)
	e.mu.Unlock()
}

// Matches copies the buffered matches of a subscription (oldest first)
// along with its stats; ok is false for unknown ids.
func (e *Engine) Matches(id int) (ms []Match, st SubStats, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, found := e.subs[id]
	if !found {
		return nil, SubStats{}, false
	}
	ms = make([]Match, 0, s.rlen)
	for i := 0; i < s.rlen; i++ {
		ms = append(ms, s.ring[(s.rstart+i)%len(s.ring)])
	}
	return ms, e.statsOf(s), true
}

// Subscriptions lists the live subscriptions' stats, ascending by id.
func (e *Engine) Subscriptions() []SubStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SubStats, 0, len(e.subs))
	for _, s := range e.subs {
		out = append(out, e.statsOf(s))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (e *Engine) statsOf(s *subscription) SubStats {
	return SubStats{
		ID: s.id, Pattern: s.pat.String(), Runs: s.nrun,
		Matches: s.total, Buffer: s.rlen, Dropped: s.dropped, Evicted: s.evicted,
	}
}

// Stats summarizes engine-wide state (bounded-state tests).
type Stats struct {
	Subs, Runs, Heap int
}

// EngineStats returns engine-wide state sizes.
func (e *Engine) EngineStats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Subs: len(e.subs), Runs: e.nrun, Heap: len(e.heap)}
}

// process runs one event through the existing runs of its object, then
// considers anchoring new runs. Existing runs advance first: a freshly
// anchored run starts matching from the *next* event (skip-till-next-
// match), so the anchoring event cannot satisfy two steps at once.
func (e *Engine) process(now model.Epoch, ev event.Event) {
	if ev.Object == model.NoTag {
		return
	}
	if e.tel != nil {
		e.tel.Events.Inc()
	}
	for r := e.objRuns[ev.Object]; r != nil; {
		next := r.objNext // advanceRun may unlink r
		e.advanceRun(r, now, ev)
		r = next
	}
	e.anchor(e.byKind[ev.Kind], now, ev)
	if m := e.byKindTag[ev.Kind]; m != nil {
		e.anchor(m[ev.Object], now, ev)
	}
}

// anchor tries to start (or, for single-step patterns, complete) each
// candidate subscription on the event.
func (e *Engine) anchor(subs []*subscription, now model.Epoch, ev event.Event) {
	for _, s := range subs {
		if s.dead || !s.pat.matches(0, ev, nil) {
			continue
		}
		if len(s.pat.Steps) == 1 {
			// Single-step pattern: the anchor is the whole match.
			e.emit(s, Match{Sub: s.id, Object: ev.Object, Start: now, At: now})
			continue
		}
		e.startRun(s, now, ev)
	}
}

// advanceRun applies one event to one run. Precedence when the current
// step is a non-trailing NOT and the event satisfies both the negated
// step and the following positive step: the sequence advances (SASE's
// semantics — negation excludes *other* events between the positives).
func (e *Engine) advanceRun(r *run, now model.Epoch, ev event.Event) {
	if r.dead {
		return
	}
	if now > r.deadline {
		e.resolve(r)
		return
	}
	p := r.sub.pat
	st := &p.Steps[r.idx]
	if st.Neg {
		if r.idx == len(p.Steps)-1 {
			if p.matches(r.idx, ev, &r.binds) {
				e.killRun(r) // absence violated
			}
			return
		}
		if p.matches(r.idx+1, ev, &r.binds) {
			bind(&r.binds, r.idx+1, ev)
			r.idx += 2
			if r.idx >= len(p.Steps) {
				e.complete(r, now)
			}
			return
		}
		if p.matches(r.idx, ev, &r.binds) {
			e.killRun(r)
		}
		return
	}
	if p.matches(r.idx, ev, &r.binds) {
		bind(&r.binds, r.idx, ev)
		r.idx++
		if r.idx >= len(p.Steps) {
			e.complete(r, now)
		}
	}
}

// startRun anchors a new run at the event, evicting the subscription's
// oldest run when the cap is exceeded.
func (e *Engine) startRun(s *subscription, now model.Epoch, ev event.Event) {
	r := e.freeRun
	if r != nil {
		e.freeRun = r.free
		*r = run{}
	} else {
		r = &run{}
	}
	r.sub = s
	r.obj = ev.Object
	r.t1 = now
	r.idx = 1
	bind(&r.binds, 0, ev)
	if s.pat.Within > 0 {
		r.deadline = now + s.pat.Within
		e.heapPush(r)
	} else {
		r.deadline = model.InfiniteEpoch
	}

	// Link: per-object list. Head insertion is O(1); runs are mutually
	// independent, so their relative order within one object is free.
	if head := e.objRuns[ev.Object]; head != nil {
		r.objNext, head.objPrev = head, r
	}
	e.objRuns[ev.Object] = r
	// Link: per-subscription creation-order list.
	if s.runTail == nil {
		s.runHead, s.runTail = r, r
	} else {
		s.runTail.subNext, r.subPrev = r, s.runTail
		s.runTail = r
	}
	s.nrun++
	e.nrun++

	if s.nrun > e.cfg.MaxRuns {
		victim := s.runHead // oldest by construction: t1 is monotonic
		s.evicted++
		if e.tel != nil {
			e.tel.Evicted.Inc()
		}
		if e.testEvict != nil {
			e.testEvict(victim.t1, victim.subNext.t1)
		}
		e.killRun(victim)
	}
	if e.tel != nil {
		e.tel.Runs.Set(int64(e.nrun))
	}
}

// complete emits the match of a fully-satisfied run and retires it.
func (e *Engine) complete(r *run, at model.Epoch) {
	e.emit(r.sub, Match{Sub: r.sub.id, Object: r.obj, Start: r.t1, At: at})
	e.killRun(r)
}

// resolve settles a run whose window has closed: a pending trailing NOT
// becomes a match (the absence held through the window), anything else
// just dies.
func (e *Engine) resolve(r *run) {
	p := r.sub.pat
	if r.idx == len(p.Steps)-1 && p.Steps[r.idx].Neg {
		e.emit(r.sub, Match{Sub: r.sub.id, Object: r.obj, Start: r.t1, At: r.deadline})
	}
	e.killRun(r)
}

// emit appends a match to the subscription's bounded ring, growing it
// geometrically up to the cap and then dropping the oldest buffered match
// on overflow.
func (e *Engine) emit(s *subscription, m Match) {
	s.total++
	if e.tel != nil {
		e.tel.Matches.Inc()
	}
	if s.rlen == len(s.ring) {
		if len(s.ring) < e.cfg.MaxMatches {
			n := 2 * len(s.ring)
			if n == 0 {
				n = 16
			}
			if n > e.cfg.MaxMatches {
				n = e.cfg.MaxMatches
			}
			ring := make([]Match, n)
			for i := 0; i < s.rlen; i++ {
				ring[i] = s.ring[(s.rstart+i)%len(s.ring)]
			}
			s.ring, s.rstart = ring, 0
		} else {
			s.rstart = (s.rstart + 1) % len(s.ring)
			s.rlen--
			s.dropped++
			if e.tel != nil {
				e.tel.Dropped.Inc()
			}
		}
	}
	s.ring[(s.rstart+s.rlen)%len(s.ring)] = m
	s.rlen++
	if s.fn != nil {
		s.fn(m)
	}
}

// killRun unlinks a run from the object and subscription lists and marks
// it dead. Recycling waits until the heap no longer references it.
func (e *Engine) killRun(r *run) {
	if r.dead {
		return
	}
	r.dead = true
	// Object list.
	if r.objPrev != nil {
		r.objPrev.objNext = r.objNext
	} else if r.objNext != nil {
		e.objRuns[r.obj] = r.objNext
	} else {
		delete(e.objRuns, r.obj)
	}
	if r.objNext != nil {
		r.objNext.objPrev = r.objPrev
	}
	r.objPrev, r.objNext = nil, nil
	// Subscription list.
	s := r.sub
	if r.subPrev != nil {
		r.subPrev.subNext = r.subNext
	} else {
		s.runHead = r.subNext
	}
	if r.subNext != nil {
		r.subNext.subPrev = r.subPrev
	} else {
		s.runTail = r.subPrev
	}
	r.subPrev, r.subNext = nil, nil
	s.nrun--
	e.nrun--
	if !r.inHeap {
		e.recycle(r)
	}
	if e.tel != nil {
		e.tel.Runs.Set(int64(e.nrun))
	}
}

func (e *Engine) recycle(r *run) {
	r.sub = nil
	r.free = e.freeRun
	e.freeRun = r
}

// expire pops every run whose deadline is at or before now. Events of
// epoch now were already processed, and the clock is strictly monotonic,
// so nothing inside those windows can still arrive.
func (e *Engine) expire(now model.Epoch) {
	for len(e.heap) > 0 && e.heap[0].deadline <= now {
		r := e.heapPop()
		if r.dead {
			e.recycle(r) // killRun left it for the heap to release
			continue
		}
		e.resolve(r) // kills the run, which recycles it (inHeap is off)
	}
}

// heapPush/heapPop implement the deadline min-heap inline (container/heap
// would box every operation through an interface).
func (e *Engine) heapPush(r *run) {
	r.inHeap = true
	e.heap = append(e.heap, r)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.heap[parent].deadline <= e.heap[i].deadline {
			break
		}
		e.heap[parent], e.heap[i] = e.heap[i], e.heap[parent]
		i = parent
	}
}

func (e *Engine) heapPop() *run {
	r := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = nil
	e.heap = e.heap[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		small := i
		if l < len(e.heap) && e.heap[l].deadline < e.heap[small].deadline {
			small = l
		}
		if rt < len(e.heap) && e.heap[rt].deadline < e.heap[small].deadline {
			small = rt
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	r.inHeap = false
	return r
}

// Validate parses src and reports the first error, for flag validation
// without building an engine.
func Validate(src string) error {
	_, err := Parse(src)
	return err
}
